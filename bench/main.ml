(* The benchmark harness: regenerates every figure and table of the
   evaluation (see EXPERIMENTS.md) and finishes with Bechamel
   micro-benchmarks of the core operations.

   Usage:
     dune exec bench/main.exe                 -- everything, full sizes
     dune exec bench/main.exe -- --fast       -- everything, small sizes
     dune exec bench/main.exe -- fig12        -- one experiment
     dune exec bench/main.exe -- micro        -- micro-benchmarks only
     dune exec bench/main.exe -- --jobs 4 par -- scaling run, 4 domains
     dune exec bench/main.exe -- --shards 8 shard -- one shard count

   All synthetic inputs derive from Bench_util.bench_seed, so two runs
   of the same binary measure identical data. *)

module Bench_util = Simq_experiments.Bench_util

let run_micro () =
  let open Bechamel in
  let walk n =
    Simq_series.Generator.random_walk
      (Random.State.make [| Bench_util.derived_seed n |])
      n
  in
  let s128 = walk 128 and s1024 = walk 1024 in
  let batch =
    Simq_series.Generator.random_walks ~seed:(Bench_util.derived_seed 3)
      ~count:1000 ~n:128
  in
  let dataset = Simq_tsindex.Dataset.of_series ~name:"bench" batch in
  let index = Simq_tsindex.Kindex.build dataset in
  let query = batch.(0) in
  let rules = Simq_rewrite.Rule.levenshtein in
  let tests =
    [
      Test.make ~name:"fft-128" (Staged.stage (fun () -> Simq_dsp.Fft.fft_real s128));
      Test.make ~name:"fft-1024"
        (Staged.stage (fun () -> Simq_dsp.Fft.fft_real s1024));
      Test.make ~name:"mavg20-128"
        (Staged.stage (fun () ->
             Simq_series.Moving_average.circular (Simq_dsp.Window.uniform 20) s128));
      Test.make ~name:"normal-form-128"
        (Staged.stage (fun () -> Simq_series.Normal_form.normalise s128));
      Test.make ~name:"kindex-range-1000"
        (Staged.stage (fun () ->
             ignore (Simq_tsindex.Kindex.range index ~query ~epsilon:2.)));
      Test.make ~name:"kindex-range-mavg20-1000"
        (Staged.stage (fun () ->
             ignore
               (Simq_tsindex.Kindex.range
                  ~spec:(Simq_tsindex.Spec.Moving_average 20) index ~query
                  ~epsilon:2.)));
      Test.make ~name:"kindex-nn5-1000"
        (Staged.stage (fun () ->
             ignore (Simq_tsindex.Kindex.nearest index ~query ~k:5)));
      Test.make ~name:"edit-distance-16"
        (Staged.stage (fun () ->
             ignore
               (Simq_rewrite.Gen_edit.distance ~rules "abcdabcdabcdabcd"
                  "abdcabdcabdcabdc")));
      Test.make ~name:"seqscan-early-1000"
        (Staged.stage (fun () ->
             ignore
               (Simq_tsindex.Seqscan.range_early_abandon dataset ~query
                  ~epsilon:2.)));
    ]
  in
  let test = Test.make_grouped ~name:"micro" ~fmt:"%s %s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw_results = Benchmark.all cfg instances test in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  print_endline "Micro-benchmarks (OLS estimate per run):";
  let rows = ref [] in
  Hashtbl.iter
    (fun measure per_test ->
      if
        String.equal measure (Measure.label Toolkit.Instance.monotonic_clock)
      then
        Hashtbl.iter
          (fun name ols ->
            match Analyze.OLS.estimates ols with
            | Some (est :: _) -> rows := (name, est) :: !rows
            | _ -> ())
          per_test)
    results;
  List.iter
    (fun (name, est) ->
      Printf.printf "  %-34s %12.0f ns/run  (%s)\n" name est
        (Bench_util.fmt_time (est /. 1e9)))
    (List.sort compare !rows);
  print_newline ()

(* [--jobs N] caps the default pool (overrides SIMQ_DOMAINS); returns
   the remaining arguments. Validation matches bin/simq's cmdliner
   converter: anything but an integer >= 1 is a usage error before any
   pool is created. *)
let jobs_usage () =
  prerr_endline "option '--jobs': expected an integer >= 1";
  exit 2

let rec strip_jobs = function
  | [] -> []
  | "--jobs" :: value :: rest -> (
    match int_of_string_opt (String.trim value) with
    | Some domains when domains >= 1 ->
      Simq_parallel.Pool.set_default_domains domains;
      strip_jobs rest
    | _ -> jobs_usage ())
  | "--jobs" :: [] -> jobs_usage ()
  | arg :: rest -> arg :: strip_jobs rest

(* [--metrics[=FILE]], [--trace FILE] and [--metrics-port PORT] enable
   the observability subsystem for the whole run; the exposition /
   Chrome trace is written once all experiments finish ("-" means
   stdout), and the port (or SIMQ_METRICS_PORT) serves the live
   exposition while the run is in flight.

   [--qlog FILE] (with [--qlog-sample N] and [--qlog-slow-ms T])
   installs the ambient query log, so every query the experiments route
   through Planner.range_resilient appends a line. [--metrics-state
   FILE] loads the saved registry state before the run and rewrites it
   afterwards, persisting planner calibration across processes. *)
let metrics_dest = ref None
let trace_dest = ref None
let metrics_port = ref None
let qlog_dest = ref None
let qlog_sample = ref 1
let qlog_slow_ms = ref None
let qlog_max_bytes = ref None
let metrics_state = ref None

let obs_usage opt expected =
  Printf.eprintf "option '%s': expected %s\n" opt expected;
  exit 2

let rec strip_obs = function
  | [] -> []
  | "--metrics" :: rest ->
    metrics_dest := Some "-";
    strip_obs rest
  | "--trace" :: file :: rest ->
    trace_dest := Some file;
    strip_obs rest
  | "--trace" :: [] ->
    prerr_endline "--trace expects a file name";
    exit 2
  | "--metrics-port" :: value :: rest -> (
    match int_of_string_opt (String.trim value) with
    | Some port when port >= 0 && port <= 65535 ->
      metrics_port := Some port;
      strip_obs rest
    | _ ->
      prerr_endline "option '--metrics-port': expected a port number";
      exit 2)
  | "--metrics-port" :: [] ->
    prerr_endline "option '--metrics-port': expected a port number";
    exit 2
  | "--qlog" :: file :: rest ->
    qlog_dest := Some file;
    strip_obs rest
  | "--qlog" :: [] -> obs_usage "--qlog" "a file name"
  | "--qlog-sample" :: value :: rest -> (
    match int_of_string_opt (String.trim value) with
    | Some n when n >= 1 ->
      qlog_sample := n;
      strip_obs rest
    | _ -> obs_usage "--qlog-sample" "an integer >= 1")
  | "--qlog-sample" :: [] -> obs_usage "--qlog-sample" "an integer >= 1"
  | "--qlog-slow-ms" :: value :: rest -> (
    match float_of_string_opt (String.trim value) with
    | Some t when t >= 0. ->
      qlog_slow_ms := Some t;
      strip_obs rest
    | _ -> obs_usage "--qlog-slow-ms" "a duration in milliseconds")
  | "--qlog-slow-ms" :: [] -> obs_usage "--qlog-slow-ms" "a duration in milliseconds"
  | "--qlog-max-bytes" :: value :: rest -> (
    match int_of_string_opt (String.trim value) with
    | Some b when b >= 1 ->
      qlog_max_bytes := Some b;
      strip_obs rest
    | _ -> obs_usage "--qlog-max-bytes" "an integer >= 1")
  | "--qlog-max-bytes" :: [] -> obs_usage "--qlog-max-bytes" "an integer >= 1"
  | "--metrics-state" :: file :: rest ->
    metrics_state := Some file;
    strip_obs rest
  | "--metrics-state" :: [] -> obs_usage "--metrics-state" "a file name"
  | "--shards" :: value :: rest -> (
    match int_of_string_opt (String.trim value) with
    | Some k when k >= 1 ->
      Bench_util.shard_override := Some k;
      strip_obs rest
    | _ -> obs_usage "--shards" "an integer >= 1")
  | "--shards" :: [] -> obs_usage "--shards" "an integer >= 1"
  | arg :: rest when String.length arg > 10 && String.sub arg 0 10 = "--metrics=" ->
    metrics_dest := Some (String.sub arg 10 (String.length arg - 10));
    strip_obs rest
  | arg :: rest -> arg :: strip_obs rest

let dump_obs () =
  let module Metrics = Simq_obs.Metrics in
  let module Trace = Simq_obs.Trace in
  (match !metrics_dest with
  | None -> ()
  | Some "-" -> print_string (Metrics.exposition ())
  | Some file ->
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Metrics.exposition ())));
  (match !trace_dest with
  | None -> ()
  | Some file -> Trace.export_file file);
  match !metrics_state with
  | None -> ()
  | Some file -> Metrics.save_state file

let () =
  let args = Array.to_list Sys.argv |> List.tl |> strip_jobs |> strip_obs in
  if !metrics_dest <> None then Simq_obs.Metrics.set_enabled true;
  if !trace_dest <> None then Simq_obs.Trace.set_enabled true;
  (* Like the CLI: persisted state and qlog deltas need live counters. *)
  if !metrics_state <> None || !qlog_dest <> None then
    Simq_obs.Metrics.set_enabled true;
  (match !metrics_state with
  | Some file when Sys.file_exists file -> (
    match Simq_obs.Metrics.load_state file with
    | () -> ()
    | exception (Failure msg | Sys_error msg) ->
      prerr_endline ("bench: " ^ msg);
      exit 2)
  | _ -> ());
  let qlog =
    match !qlog_dest with
    | None -> None
    | Some file -> (
      match
        Simq_obs.Qlog.create ~sample:!qlog_sample ?slow_ms:!qlog_slow_ms
          ?max_bytes:!qlog_max_bytes file
      with
      | t -> Some t
      | exception Sys_error msg ->
        prerr_endline ("bench: " ^ msg);
        exit 2)
  in
  Simq_obs.Qlog.install qlog;
  let server =
    match Simq_cli.resolve_metrics_port !metrics_port with
    | None -> None
    | Some port ->
      Simq_obs.Metrics.set_enabled true;
      let server = Simq_obs.Serve.start ~port () in
      Printf.eprintf "bench: serving metrics on http://127.0.0.1:%d/metrics\n%!"
        (Simq_obs.Serve.port server);
      Some server
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter Simq_obs.Serve.stop server;
      Simq_obs.Qlog.install None;
      Option.iter Simq_obs.Qlog.close qlog)
    (fun () ->
      let fast = List.mem "--fast" args in
      let names = List.filter (fun a -> a <> "--fast") args in
      let names = if names = [] then [ "all"; "micro" ] else names in
      List.iter
        (fun name ->
          if String.equal name "micro" then run_micro ()
          else
            match Simq_experiments.Experiments.run ~fast name with
            | Ok () -> ()
            | Error msg ->
              prerr_endline msg;
              exit 1)
        names;
      dump_obs ())
