#!/bin/sh
# Smoke test: build everything, run the full test suite, and drive the
# fast benchmark sweep with the observability subsystem switched on.
# Any nonzero exit fails the script immediately.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== bench --fast with metrics and tracing on"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
(
  cd "$workdir"
  dune exec --root "$OLDPWD" "$OLDPWD/bench/main.exe" -- --fast \
    --metrics="$workdir/metrics.prom" --trace "$workdir/trace.json"
)

# The exposition must contain every instrumented family; the trace must
# be non-empty valid JSON (well-formedness is checked structurally by
# the test suite, so a cheap shape check suffices here).
for family in simq_buffer_pool simq_rtree simq_planner simq_pool \
  simq_fault simq_scan simq_kindex simq_join simq_timer; do
  grep -q "^# TYPE $family" "$workdir/metrics.prom" || {
    echo "smoke: family $family missing from the exposition" >&2
    exit 1
  }
done
grep -q '"traceEvents"' "$workdir/trace.json" || {
  echo "smoke: trace.json has no traceEvents" >&2
  exit 1
}

echo "smoke: OK"
