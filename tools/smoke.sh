#!/bin/sh
# Smoke test: drive the built binaries end to end — the fast benchmark
# sweep with observability on, an admission-control rejection (exit 5)
# that still dumps its metrics and trace, a profiled query with both
# profile exports plus a sampled query log aggregated by qlog-top, a
# batch run (a workload file in, one JSON line per query out, with
# metrics, a sampled query log and a --from-qlog replay), a live
# scrape of the TCP exposition endpoint while a bench run is serving
# it, a simq serve daemon on an ephemeral port driven through a
# chaotic stress session (good, malformed and disconnecting clients),
# scraped live, its windowed telemetry polled by simq top (the raw
# /history document once, then the rendered view, both checked for
# non-negative rates), its worst-query store fetched over the in-band
# slow command, shut down in-band, with the drained dumps checked and
# the daemon qlog broken down by trace id, and
# the sharded executor: a --shards query checked bit-identical to the
# unsharded run, a sharded batch, and a sharded daemon verified by
# stress with its qlog aggregated by fanout, and the sketch funnel: a
# --sketch query (plain and sharded) checked bit-identical to the
# unsketched run with its filter counters exposed, an --approx query
# checked superset-free against the exact answers with the sketch
# ladder visible in its profile tree, and an out-of-range --approx
# rejected as a usage error.
#
# Two modes:
#   tools/smoke.sh                full standalone run: dune build @all,
#                                 dune runtest, then the drive below
#   tools/smoke.sh SIMQ BENCH     driven (what `dune build @smoke` runs):
#                                 binaries are supplied, build and test
#                                 are dune dependencies already
#
# Any nonzero exit fails the script immediately.
set -eu

if [ $# -eq 0 ]; then
  cd "$(dirname "$0")/.."
  echo "== dune build @all"
  dune build @all
  echo "== dune runtest"
  dune runtest
  simq=$PWD/_build/default/bin/simq.exe
  bench=$PWD/_build/default/bench/main.exe
else
  case $1 in /*) simq=$1 ;; *) simq=$PWD/$1 ;; esac
  case $2 in /*) bench=$2 ;; *) bench=$PWD/$2 ;; esac
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

echo "== bench --fast with metrics and tracing on"
"$bench" --fast --metrics=metrics.prom --trace trace.json

# The exposition must contain every instrumented family; the trace must
# be non-empty valid JSON (well-formedness is checked structurally by
# the test suite, so a cheap shape check suffices here).
for family in simq_buffer_pool simq_rtree simq_planner simq_pool \
  simq_fault simq_scan simq_kindex simq_join simq_timer simq_admission \
  simq_batch; do
  grep -q "^# TYPE $family" metrics.prom || {
    echo "smoke: family $family missing from the exposition" >&2
    exit 1
  }
done
grep -q '"traceEvents"' trace.json || {
  echo "smoke: trace.json has no traceEvents" >&2
  exit 1
}

echo "== admission rejection exits 5 and still dumps observability"
"$simq" generate --count 200 --length 64 -o smoke.rel
status=0
"$simq" query smoke.rel "RANGE FROM r QUERY s0 EPS 2.5" \
  --admission --max-page-reads 2 --max-comparisons 2 --max-node-accesses 0 \
  --metrics reject.prom --trace reject.json 2>reject.err || status=$?
[ "$status" -eq 5 ] || {
  echo "smoke: expected admission rejection to exit 5, got $status" >&2
  cat reject.err >&2
  exit 1
}
grep -q "rejected by admission control" reject.err || {
  echo "smoke: rejection did not print the one-line reason" >&2
  exit 1
}
grep -q '^simq_admission_decisions_total{decision="reject"} 1' reject.prom || {
  echo "smoke: rejection not counted in the dumped exposition" >&2
  exit 1
}
grep -q '"traceEvents"' reject.json || {
  echo "smoke: rejected run left no trace dump" >&2
  exit 1
}

echo "== profiled query: EXPLAIN ANALYZE text tree and JSON export"
"$simq" query smoke.rel "RANGE FROM r USING mavg(7) QUERY s0 EPS 2.5" \
  --profile >profiled.out
grep -q -- '-> kindex.range' profiled.out || {
  echo "smoke: --profile printed no operator tree" >&2
  exit 1
}
grep -q 'pages=' profiled.out || {
  echo "smoke: profile tree carries no page counts" >&2
  exit 1
}
"$simq" query smoke.rel "RANGE FROM r QUERY s0 EPS 2.5" \
  --admission --profile=profile.json >/dev/null
grep -q '"event":"simq.profile"' profile.json || {
  echo "smoke: --profile=FILE.json did not write the JSON export" >&2
  exit 1
}

echo "== sampled query log over a bench sweep, aggregated by qlog-top"
"$bench" --fast ablation_fault --qlog smoke.qlog --qlog-sample 3 \
  --metrics-state smoke.state >/dev/null
[ -s smoke.qlog ] || {
  echo "smoke: bench --qlog wrote no lines" >&2
  exit 1
}
grep -q '"event":"simq.qlog"' smoke.qlog || {
  echo "smoke: qlog lines are not tagged simq.qlog" >&2
  exit 1
}
grep -q '"event":"simq.metrics-state"' smoke.state || {
  echo "smoke: --metrics-state wrote no registry snapshot" >&2
  exit 1
}
"$simq" qlog-top smoke.qlog >qlogtop.out
grep -q 'top by duration:' qlogtop.out || {
  echo "smoke: qlog-top printed no duration ranking" >&2
  exit 1
}
grep -q 'by path:' qlogtop.out || {
  echo "smoke: qlog-top printed no path breakdown" >&2
  exit 1
}

echo "== batch: a workload file in, one JSON line per query out"
cat >batch.specs <<'EOF'
RANGE FROM r QUERY s0 EPS 2.5
RANGE FROM r USING mavg(7) QUERY s1 EPS 2.5
# comments and the blank line below are skipped

NEAREST 3 FROM r QUERY s2
this is not a query
RANGE FROM r USING rev QUERY s3 EPS 1.5
EOF
"$simq" batch smoke.rel batch.specs --jobs 2 -o batch.jsonl \
  --metrics batch.prom --qlog batch.qlog --qlog-sample 2 2>batch.err
grep -q 'batch: 5 queries (4 ok, 1 failed)' batch.err || {
  echo "smoke: batch summary line wrong or missing" >&2
  cat batch.err >&2
  exit 1
}
[ "$(grep -c '"event":"simq.batch"' batch.jsonl)" -eq 5 ] || {
  echo "smoke: expected one simq.batch line per spec" >&2
  exit 1
}
grep -q '"outcome":"usage"' batch.jsonl || {
  echo "smoke: the malformed spec did not produce a usage error line" >&2
  exit 1
}
[ "$(grep -c '"outcome":"ok"' batch.jsonl)" -eq 4 ] || {
  echo "smoke: expected 4 ok result lines" >&2
  exit 1
}
grep -q '^simq_batch_queries_total 5' batch.prom || {
  echo "smoke: batch executor queries not counted in the exposition" >&2
  exit 1
}
# --qlog-sample 2 keeps sequence numbers 0, 2 and 4 — a pure function
# of the query sequence number, so this count is deterministic.
[ "$(grep -c '"event":"simq.qlog"' batch.qlog)" -eq 3 ] || {
  echo "smoke: sampled batch qlog should hold exactly 3 lines" >&2
  exit 1
}

echo "== batch --from-qlog replays the sampled specs"
"$simq" batch smoke.rel --from-qlog batch.qlog -o replay.jsonl 2>replay.err
grep -q 'batch: 3 queries (3 ok, 0 failed)' replay.err || {
  echo "smoke: qlog replay summary wrong or missing" >&2
  cat replay.err >&2
  exit 1
}
[ "$(grep -c '"event":"simq.batch"' replay.jsonl)" -eq 3 ] || {
  echo "smoke: replay should re-execute the 3 sampled specs" >&2
  exit 1
}

echo "== sharded query: fanout report, shard metrics, unsharded parity"
"$simq" query smoke.rel "RANGE FROM r QUERY s0 EPS 2.5" >plain.out
"$simq" query smoke.rel "RANGE FROM r QUERY s0 EPS 2.5" \
  --shards 4 --metrics shard.prom >shard.out
grep -q '(4 shards: fanout' shard.out || {
  echo "smoke: sharded query printed no scatter-gather report" >&2
  cat shard.out >&2
  exit 1
}
[ "$(grep ' distance ' shard.out)" = "$(grep ' distance ' plain.out)" ] || {
  echo "smoke: sharded answers differ from the unsharded run" >&2
  diff plain.out shard.out >&2 || true
  exit 1
}
grep -q '^# TYPE simq_shard' shard.prom || {
  echo "smoke: simq_shard family missing from the sharded exposition" >&2
  exit 1
}
grep -q '^simq_shard_queries_total 1' shard.prom || {
  echo "smoke: sharded query not counted in the exposition" >&2
  exit 1
}

echo "== sharded batch: every executed spec takes the shard path"
"$simq" batch smoke.rel batch.specs --shards 4 --jobs 2 \
  -o shardbatch.jsonl --metrics shardbatch.prom 2>shardbatch.err
grep -q 'batch: 5 queries (4 ok, 1 failed)' shardbatch.err || {
  echo "smoke: sharded batch summary line wrong or missing" >&2
  cat shardbatch.err >&2
  exit 1
}
[ "$(grep -c '"path":"shard"' shardbatch.jsonl)" -eq 4 ] || {
  echo "smoke: expected all 4 ok lines to report the shard path" >&2
  exit 1
}
grep -q '^simq_shard_queries_total 4' shardbatch.prom || {
  echo "smoke: sharded batch queries not counted in the exposition" >&2
  exit 1
}

echo "== sketch funnel: exact parity, approx guarantee, profile ladder"
"$simq" query smoke.rel "RANGE FROM r QUERY s0 EPS 2.5" --sketch \
  --metrics sketch.prom >sketch.out
[ "$(grep ' distance ' sketch.out)" = "$(grep ' distance ' plain.out)" ] || {
  echo "smoke: sketched answers differ from the unsketched run" >&2
  diff plain.out sketch.out >&2 || true
  exit 1
}
grep -q '^# TYPE simq_sketch_filtered_total' sketch.prom || {
  echo "smoke: sketch filter family missing from the exposition" >&2
  exit 1
}
"$simq" query smoke.rel "RANGE FROM r QUERY s0 EPS 2.5" \
  --sketch --shards 4 >sketchshard.out
[ "$(grep ' distance ' sketchshard.out)" = "$(grep ' distance ' plain.out)" ] || {
  echo "smoke: sketched sharded answers differ from the unsketched run" >&2
  diff plain.out sketchshard.out >&2 || true
  exit 1
}
"$simq" query smoke.rel "RANGE FROM r QUERY s0 EPS 2.5" \
  --approx 0.4 --profile >approx.out
grep -q 'sketch.coarse' approx.out || {
  echo "smoke: approx profile tree shows no sketch ladder" >&2
  cat approx.out >&2
  exit 1
}
# Every approximate answer must be a true answer (superset-free).
grep ' distance ' approx.out >approx.lines || true
while IFS= read -r line; do
  grep -qF -- "$line" plain.out || {
    echo "smoke: approx returned a non-answer: $line" >&2
    exit 1
  }
done <approx.lines
status=0
"$simq" query smoke.rel "RANGE FROM r QUERY s0 EPS 2.5" \
  --approx 1.5 2>approx.err || status=$?
[ "$status" -ne 0 ] || {
  echo "smoke: out-of-range --approx was accepted" >&2
  exit 1
}
grep -q -- '--approx must be in \[0, 1)' approx.err || {
  echo "smoke: out-of-range --approx printed no usage message" >&2
  cat approx.err >&2
  exit 1
}

echo "== live scrape of a serving bench run"
"$bench" --fast --metrics-port 0 2>serve.err &
bench_pid=$!
port=
scraped=0
i=0
while [ "$i" -lt 400 ]; do
  if [ -z "$port" ]; then
    port=$(sed -n 's!.*http://127\.0\.0\.1:\([0-9]*\)/metrics.*!\1!p' serve.err | head -n 1)
  fi
  if [ -n "$port" ] && "$simq" scrape --port "$port" >scrape.prom 2>/dev/null; then
    scraped=1
    break
  fi
  kill -0 "$bench_pid" 2>/dev/null || break
  sleep 0.02
  i=$((i + 1))
done
wait "$bench_pid" || {
  echo "smoke: background bench run failed" >&2
  cat serve.err >&2
  exit 1
}
[ "$scraped" -eq 1 ] || {
  echo "smoke: never reached the live metrics endpoint" >&2
  cat serve.err >&2
  exit 1
}
grep -q '^# TYPE simq_' scrape.prom || {
  echo "smoke: live scrape returned no simq metric families" >&2
  exit 1
}

echo "== serve: daemon + chaotic stress session, live scrape, in-band shutdown"
"$simq" serve smoke.rel --admission --slow-k 3 --qlog daemon.qlog \
  --metrics-state daemon.state --metrics-port 0 2>daemon.err &
daemon_pid=$!
serve_port=
metrics_port=
i=0
while [ -z "$serve_port" ] || [ -z "$metrics_port" ]; do
  serve_port=$(sed -n 's!.*serving queries on 127\.0\.0\.1:\([0-9]*\)$!\1!p' daemon.err | head -n 1)
  metrics_port=$(sed -n 's!.*http://127\.0\.0\.1:\([0-9]*\)/metrics.*!\1!p' daemon.err | head -n 1)
  kill -0 "$daemon_pid" 2>/dev/null || break
  [ "$i" -lt 400 ] || break
  sleep 0.02
  i=$((i + 1))
done
[ -n "$serve_port" ] || {
  echo "smoke: daemon never announced its port" >&2
  cat daemon.err >&2
  exit 1
}
# Scrape the daemon's live exposition while it serves.
[ -n "$metrics_port" ] || {
  echo "smoke: daemon never announced its metrics endpoint" >&2
  cat daemon.err >&2
  exit 1
}
"$simq" scrape --port "$metrics_port" --timeout-ms 5000 >daemon.prom
grep -q '^# TYPE simq_' daemon.prom || {
  echo "smoke: live daemon scrape returned no simq metric families" >&2
  exit 1
}
"$simq" stress smoke.rel --port "$serve_port" --clients 4 --queries 10 \
  --chaos --verify --slow >stress.out || {
  echo "smoke: stress run against the daemon failed" >&2
  cat stress.out >&2
  cat daemon.err >&2
  exit 1
}
grep -q '0 protocol errors' stress.out || {
  echo "smoke: stress saw protocol errors" >&2
  cat stress.out >&2
  exit 1
}
# The in-band slow command: the daemon keeps its --slow-k worst
# queries and answers with one typed document.
grep -q '"event":"simq.serve.slow"' stress.out || {
  echo "smoke: the slow command returned no worst-query document" >&2
  cat stress.out >&2
  exit 1
}
# Poll the windowed telemetry while the daemon still serves: the raw
# /history document once, then the rendered view (which parses it).
"$simq" top --once --port "$metrics_port" --timeout-ms 5000 >top.json
grep -q '"event":"simq.history"' top.json || {
  echo "smoke: simq top --once returned no history document" >&2
  cat top.json >&2
  exit 1
}
if grep -Eq '"(qps|shed_rate|prune_rate|filter_rate)":-' top.json; then
  echo "smoke: the history window reported a negative rate" >&2
  cat top.json >&2
  exit 1
fi
"$simq" top --port "$metrics_port" --iterations 2 --interval-ms 50 \
  --timeout-ms 5000 >top.txt
grep -q 'qps' top.txt || {
  echo "smoke: simq top rendered no windowed rates" >&2
  cat top.txt >&2
  exit 1
}
if grep -Eq 'qps +-' top.txt; then
  echo "smoke: simq top rendered a negative query rate" >&2
  cat top.txt >&2
  exit 1
fi
# A final minimal session drains the daemon in-band.
"$simq" stress smoke.rel --port "$serve_port" --clients 1 --queries 1 \
  --shutdown >>stress.out || {
  echo "smoke: in-band shutdown session failed" >&2
  cat stress.out >&2
  cat daemon.err >&2
  exit 1
}
wait "$daemon_pid" || {
  echo "smoke: daemon did not exit cleanly after shutdown" >&2
  cat daemon.err >&2
  exit 1
}
grep -q 'simq: serve: drained' daemon.err || {
  echo "smoke: daemon printed no drain summary" >&2
  cat daemon.err >&2
  exit 1
}
grep -q '"event":"simq.qlog"' daemon.qlog || {
  echo "smoke: drained daemon left no query log" >&2
  exit 1
}
grep -q '"event":"simq.metrics-state"' daemon.state || {
  echo "smoke: drained daemon left no calibration state" >&2
  exit 1
}
"$simq" qlog-top daemon.qlog --by-trace >daemon.top
grep -q 'top by duration:' daemon.top || {
  echo "smoke: the daemon qlog does not aggregate" >&2
  exit 1
}
grep -q 'by trace:' daemon.top || {
  echo "smoke: the daemon qlog has no per-trace breakdown" >&2
  cat daemon.top >&2
  exit 1
}

echo "== sharded serve: --shards daemon verified by stress, qlog by fanout"
"$simq" serve smoke.rel --shards 4 --qlog sharded.qlog 2>sharded.err &
sharded_pid=$!
sharded_port=
i=0
while [ -z "$sharded_port" ]; do
  sharded_port=$(sed -n 's!.*serving queries on 127\.0\.0\.1:\([0-9]*\)$!\1!p' sharded.err | head -n 1)
  kill -0 "$sharded_pid" 2>/dev/null || break
  [ "$i" -lt 400 ] || break
  sleep 0.02
  i=$((i + 1))
done
[ -n "$sharded_port" ] || {
  echo "smoke: sharded daemon never announced its port" >&2
  cat sharded.err >&2
  exit 1
}
# --verify replays every answered query offline (unsharded) and
# compares bit for bit — the sharded daemon must be invisible there.
"$simq" stress smoke.rel --port "$sharded_port" --clients 4 --queries 10 \
  --verify --shutdown >sharded-stress.out || {
  echo "smoke: stress run against the sharded daemon failed" >&2
  cat sharded-stress.out >&2
  cat sharded.err >&2
  exit 1
}
grep -q '0 protocol errors' sharded-stress.out || {
  echo "smoke: sharded stress saw protocol errors" >&2
  cat sharded-stress.out >&2
  exit 1
}
wait "$sharded_pid" || {
  echo "smoke: sharded daemon did not exit cleanly after shutdown" >&2
  cat sharded.err >&2
  exit 1
}
"$simq" qlog-top sharded.qlog >sharded.top
grep -q 'by fanout:' sharded.top || {
  echo "smoke: sharded daemon qlog has no fanout breakdown" >&2
  cat sharded.top >&2
  exit 1
}
grep -q '4-shard' sharded.top || {
  echo "smoke: fanout breakdown lacks the 4-shard bucket" >&2
  cat sharded.top >&2
  exit 1
}

echo "smoke: OK"
