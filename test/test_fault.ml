(* The fault layer (lib/fault) and the safety invariant the checked
   query entry points promise: under any combination of injected
   transient faults and resource budgets, a query either returns the
   exact sequential-reference answer or a typed [Simq_fault.Error.t] —
   never a wrong answer, never a raw exception — with outcomes
   reproducible for the same seed and identical across domain counts. *)

module Error = Simq_fault.Error
module Injector = Simq_fault.Injector
module Budget = Simq_fault.Budget
module Retry = Simq_fault.Retry
module Pool = Simq_parallel.Pool
module Rstar = Simq_rtree.Rstar
module Check = Simq_rtree.Check
module Relation = Simq_storage.Relation
open Simq_tsindex
module Generator = Simq_series.Generator

(* Backoff delays would dominate the suite; faults are injected, not
   real, so retrying instantly is fine everywhere below. *)
let fast_retry ?(max_attempts = 2) () =
  Retry.policy ~max_attempts ~base_delay_s:0. ()

(* --- Injector ------------------------------------------------------------- *)

let test_injector_schedule () =
  let inj =
    Injector.create
      ~node_accesses:(Injector.transient ~schedule:[ 2; 5 ] ())
      ~seed:7 ()
  in
  let outcomes =
    List.init 6 (fun _ ->
        match Injector.check inj Injector.Node_access with
        | () -> 0
        | exception Injector.Transient_fault { ordinal; _ } -> ordinal)
  in
  Alcotest.(check (list int)) "faults exactly at scheduled ordinals"
    [ 0; 2; 0; 0; 5; 0 ] outcomes;
  Alcotest.(check int) "accesses counted" 6
    (Injector.accesses inj Injector.Node_access);
  Alcotest.(check int) "faults counted" 2
    (Injector.faults inj Injector.Node_access);
  Alcotest.(check int) "sites independent" 0
    (Injector.accesses inj Injector.Page_read)

let fault_ordinals inj site n =
  List.filteri (fun _ o -> o > 0)
    (List.init n (fun _ ->
         match Injector.check inj site with
         | () -> 0
         | exception Injector.Transient_fault { ordinal; _ } -> ordinal))

let test_injector_seed_reproducible () =
  let make () =
    Injector.create
      ~page_reads:(Injector.transient ~probability:0.3 ())
      ~seed:4242 ()
  in
  Alcotest.(check (list int)) "same seed, same fault stream"
    (fault_ordinals (make ()) Injector.Page_read 200)
    (fault_ordinals (make ()) Injector.Page_read 200)

let test_injector_validation () =
  Alcotest.check_raises "probability out of range"
    (Invalid_argument "Injector.transient: probability must be in [0, 1]")
    (fun () -> ignore (Injector.transient ~probability:1.5 ()));
  Alcotest.check_raises "0 is not a valid ordinal"
    (Invalid_argument "Injector.transient: schedule ordinals are 1-based")
    (fun () -> ignore (Injector.transient ~schedule:[ 0 ] ()))

(* --- Budget ---------------------------------------------------------------- *)

let test_budget_unlimited () =
  Alcotest.(check bool) "unlimited" true (Budget.is_unlimited Budget.unlimited);
  Alcotest.(check bool) "create () = unlimited" true
    (Budget.is_unlimited (Budget.create ()));
  Alcotest.(check bool) "no state installed for unlimited budgets" true
    (Budget.state_opt Budget.unlimited = None);
  Alcotest.check_raises "negative limit"
    (Invalid_argument "Budget.create: limits must be >= 0") (fun () ->
      ignore (Budget.create ~max_comparisons:(-1) ()))

let test_budget_limit_latches () =
  let s = Budget.start (Budget.create ~max_comparisons:0 ()) in
  (match Budget.charge_comparisons s 1 with
  | () -> Alcotest.fail "expected Exceeded"
  | exception Budget.Exceeded (Error.Budget_exceeded { resource; spent; limit })
    ->
    Alcotest.(check string) "resource" "comparisons"
      (Error.resource_name resource);
    Alcotest.(check int) "spent" 1 spent;
    Alcotest.(check int) "limit" 0 limit
  | exception Budget.Exceeded e ->
    Alcotest.failf "unexpected error %s" (Error.to_string e));
  (* The error is latched: every later check on any domain re-raises the
     same error — that is the cooperative-cancellation signal. *)
  match Budget.check s with
  | () -> Alcotest.fail "cancelled state must keep failing"
  | exception Budget.Exceeded e ->
    Alcotest.(check string) "latched kind" "budget_exceeded:comparisons"
      (Error.kind e)

let test_budget_accounting () =
  let s =
    Budget.start (Budget.create ~max_page_reads:10 ~max_comparisons:100 ())
  in
  Budget.charge_page_read s;
  Budget.charge_page_read s;
  Budget.charge_page_read s;
  Budget.charge_comparisons s 4;
  Alcotest.(check int) "page reads" 3 (Budget.spent s Error.Page_reads);
  Alcotest.(check int) "comparisons" 4 (Budget.spent s Error.Comparisons);
  Alcotest.(check int) "wall clock has no count" 0
    (Budget.spent s Error.Wall_clock);
  (* Unlimited resources skip accounting entirely (the hot-path cost of
     an uncapped charge is one comparison). *)
  Budget.charge_node_access s;
  Alcotest.(check int) "uncapped resources are not counted" 0
    (Budget.spent s Error.Node_accesses)

let test_budget_deadline () =
  let s = Budget.start (Budget.create ~deadline_s:0. ()) in
  (* [deadline_s = 0.] expires as soon as any wall-clock time passes;
     let the clock tick past the start stamp first. *)
  Unix.sleepf 1e-3;
  match Budget.check s with
  | () -> Alcotest.fail "expected Timeout"
  | exception Budget.Exceeded e ->
    Alcotest.(check string) "kind" "timeout" (Error.kind e)

let test_error_kinds () =
  let timeout = Error.Timeout { elapsed_s = 1.; deadline_s = 0.5 } in
  let io = Error.Io_failed { site = "page_read"; attempts = 3 } in
  let b r = Error.Budget_exceeded { resource = r; spent = 9; limit = 4 } in
  Alcotest.(check string) "timeout" "timeout" (Error.kind timeout);
  Alcotest.(check string) "io" "io_failed" (Error.kind io);
  Alcotest.(check string) "budget" "budget_exceeded:node_accesses"
    (Error.kind (b Error.Node_accesses));
  Alcotest.(check bool) "same kind ignores payload" true
    (Error.same_kind (b Error.Page_reads)
       (Error.Budget_exceeded
          { resource = Error.Page_reads; spent = 100; limit = 4 }));
  Alcotest.(check bool) "different kinds differ" false
    (Error.same_kind timeout io);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "printable: %s" (Error.kind e))
        true
        (String.length (Error.to_string e) > 0))
    [ timeout; io; b Error.Comparisons; Error.Index_unusable { reason = "x" } ]

(* --- Retry ----------------------------------------------------------------- *)

let test_retry_recovers () =
  let inj =
    Injector.create
      ~page_reads:(Injector.transient ~schedule:[ 1 ] ())
      ~seed:1 ()
  in
  let abandoned = ref [] in
  let result =
    Retry.with_retries ~policy:(fast_retry ())
      ~on_retry:(fun ~attempt -> abandoned := attempt :: !abandoned)
      (fun () ->
        Injector.check inj Injector.Page_read;
        "done")
  in
  Alcotest.(check bool) "second attempt succeeds" true (result = Ok "done");
  Alcotest.(check (list int)) "one abandoned attempt" [ 1 ] !abandoned

let test_retry_exhausts () =
  let attempts = ref 0 in
  match
    Retry.with_retries ~policy:(fast_retry ~max_attempts:3 ()) (fun () ->
        incr attempts;
        raise
          (Injector.Transient_fault
             { site = Injector.Node_access; ordinal = !attempts }))
  with
  | Ok _ -> Alcotest.fail "expected Io_failed"
  | Error (Error.Io_failed { site; attempts = reported }) ->
    Alcotest.(check string) "site" "node_access" site;
    Alcotest.(check int) "every attempt used" 3 reported;
    Alcotest.(check int) "f called per attempt" 3 !attempts
  | Error e -> Alcotest.failf "unexpected error %s" (Error.to_string e)

let test_retry_never_retries_budgets () =
  let attempts = ref 0 in
  let blown =
    Error.Budget_exceeded
      { resource = Error.Comparisons; spent = 5; limit = 4 }
  in
  (match
     Retry.with_retries ~policy:(fast_retry ~max_attempts:5 ()) (fun () ->
         incr attempts;
         raise (Budget.Exceeded blown))
   with
  | Ok _ -> Alcotest.fail "expected the budget error"
  | Error e ->
    Alcotest.(check bool) "carried error returned" true (Error.same_kind e blown));
  Alcotest.(check int) "no retry on blown budget" 1 !attempts;
  (* Anything else is a programming error and must propagate. *)
  Alcotest.check_raises "other exceptions propagate" (Failure "boom")
    (fun () -> ignore (Retry.with_retries (fun () -> failwith "boom")))

(* --- Query-level fixtures --------------------------------------------------- *)

let pools =
  [ (1, Pool.sequential); (2, Pool.create ~domains:2); (4, Pool.create ~domains:4) ]

let dataset_of ~seed ~count ~n =
  Dataset.of_series ~pool:Pool.sequential ~name:"fault"
    (Generator.random_walks ~seed ~count ~n)

(* Shared datasets: the properties below draw from this pool instead of
   rebuilding (and re-transforming) series per case. Checked paths must
   leave no injector or budget installed behind, which the properties
   verify implicitly by reusing the datasets hundreds of times. *)
let datasets = Array.init 4 (fun i -> dataset_of ~seed:(100 + i) ~count:36 ~n:32)

let spec_of_index i =
  match i mod 5 with
  | 0 -> Spec.Identity
  | 1 -> Spec.Moving_average 3
  | 2 -> Spec.Moving_average 8
  | 3 -> Spec.Reverse
  | _ -> Spec.Warp 2

(* Complex stretches are only safe in S_pol (Theorem 3). *)
let safe_spec representation spec =
  match (representation, spec) with
  | Simq_geometry.Coords.Rectangular, (Spec.Moving_average _ | Spec.Warp _) ->
    Spec.Reverse
  | _ -> spec

let query_for dataset spec seed =
  let entries = Dataset.entries dataset in
  let base = entries.(seed mod Array.length entries) in
  let state = Random.State.make [| seed |] in
  let perturbed =
    Array.map (fun v -> v +. Random.State.float state 2. -. 1.) base.Dataset.series
  in
  match spec with
  | Spec.Warp m -> Simq_series.Warp.expand m perturbed
  | _ -> perturbed

let sorted_ids answers =
  List.sort compare
    (List.map (fun ((e : Dataset.entry), _) -> e.Dataset.id) answers)

let reference_ids dataset spec query epsilon =
  sorted_ids (Seqscan.reference ~spec dataset ~query ~epsilon)

(* --- Safety property -------------------------------------------------------- *)

(* One randomized resilient-execution scenario: a seeded injector on
   both fault sites, an optional resource budget, and a planner query.
   The safety invariant allows exactly two outcomes. *)

let arb_scenario =
  QCheck.make
    ~print:(fun (dseed, qseed, eps, node_p, page_p, sched, fseed, bkind) ->
      Printf.sprintf
        "dseed=%d qseed=%d eps=%g node_p=%g page_p=%g sched=[%s] fseed=%d \
         bkind=%d"
        dseed qseed eps node_p page_p
        (String.concat ";" (List.map string_of_int sched))
        fseed bkind)
    QCheck.Gen.(
      let* dseed = int_range 0 3 in
      let* qseed = int_range 0 1000 in
      let* eps = float_range 0.1 12. in
      let* node_p = float_range 0. 0.15 in
      let* page_p = float_range 0. 0.05 in
      let* sched = list_size (int_range 0 3) (int_range 1 40) in
      let* fseed = int_range 0 10_000 in
      let* bkind = int_range 0 3 in
      return (dseed, qseed, eps, node_p, page_p, sched, fseed, bkind))

let budget_of_scenario bkind qseed =
  match bkind with
  | 0 -> Budget.unlimited
  | 1 -> Budget.create ~max_node_accesses:(qseed mod 3) ()
  | 2 -> Budget.create ~max_comparisons:(qseed mod 25) ()
  | _ -> Budget.create ~max_page_reads:(qseed mod 4) ()

let prop_safety =
  QCheck.Test.make
    ~name:
      "resilient query under faults+budget: exact reference answer or typed \
       error, reproducible per seed"
    ~count:250 arb_scenario
    (fun (dseed, qseed, eps, node_p, page_p, sched, fseed, bkind) ->
      let dataset = datasets.(dseed) in
      let representation =
        if qseed mod 2 = 0 then Simq_geometry.Coords.Polar
        else Simq_geometry.Coords.Rectangular
      in
      let spec = safe_spec representation (spec_of_index qseed) in
      let query = query_for dataset spec qseed in
      let budget = budget_of_scenario bkind qseed in
      let run () =
        let injector =
          Injector.create
            ~page_reads:(Injector.transient ~probability:page_p ())
            ~node_accesses:
              (Injector.transient ~probability:node_p ~schedule:sched ())
            ~seed:fseed ()
        in
        let index =
          Kindex.build
            ~config:{ Feature.k = 2; representation }
            ~max_fill:8 dataset
        in
        Rstar.set_injector (Kindex.tree index) (Some injector);
        Relation.set_injector (Dataset.relation dataset) (Some injector);
        let counters = Planner.create_counters () in
        let outcome =
          Fun.protect
            ~finally:(fun () ->
              Relation.set_injector (Dataset.relation dataset) None)
            (fun () ->
              Planner.range_resilient ~pool:Pool.sequential ~spec ~budget
                ~retry:(fast_retry ()) ~counters index ~query ~epsilon:eps)
        in
        (outcome, counters)
      in
      let outcome, counters = run () in
      let expected = reference_ids dataset spec query eps in
      (match outcome with
      | Ok r ->
        (* Degraded or not: the answer set must be the Lemma 1 answer. *)
        Alcotest.(check (list int)) "answers = sequential reference" expected
          (sorted_ids r.Planner.answers);
        if r.Planner.degraded then begin
          Alcotest.(check bool) "degradation carries the index error" true
            (r.Planner.index_error <> None);
          Alcotest.(check int) "degradation counted" 1
            counters.Planner.degraded
        end
      | Error e ->
        Alcotest.(check bool) "typed error has a kind" true
          (String.length (Error.kind e) > 0);
        Alcotest.(check int) "failure counted" 1 counters.Planner.failures);
      Alcotest.(check int) "query counted" 1 counters.Planner.queries;
      (* Reproducibility: a fresh injector with the same seed gives the
         same outcome — same answers, or an error of the same kind. *)
      let outcome', _ = run () in
      (match (outcome, outcome') with
      | Ok a, Ok b ->
        Alcotest.(check (list int)) "same seed, same answers"
          (sorted_ids a.Planner.answers) (sorted_ids b.Planner.answers);
        Alcotest.(check bool) "same seed, same path" a.Planner.degraded
          b.Planner.degraded
      | Error a, Error b ->
        Alcotest.(check string) "same seed, same error kind" (Error.kind a)
          (Error.kind b)
      | Ok _, Error e | Error e, Ok _ ->
        Alcotest.failf "same seed diverged (error %s)" (Error.to_string e));
      true)

(* --- Degradation property --------------------------------------------------- *)

let prop_degradation =
  QCheck.Test.make
    ~name:
      "index failure degrades to the scan: exact answers, visible counters"
    ~count:150 arb_scenario
    (fun (dseed, qseed, eps, _, _, _, _, use_validate) ->
      let dataset = datasets.(dseed) in
      let spec = safe_spec Simq_geometry.Coords.Polar (spec_of_index qseed) in
      let query = query_for dataset spec qseed in
      let index = Kindex.build ~max_fill:8 dataset in
      let counters = Planner.create_counters () in
      let validate = use_validate mod 2 = 0 in
      let budget, expected_kind =
        if validate then begin
          (* Corrupt the recorded size: Check must reject the tree and
             the planner must not even attempt the traversal. *)
          let tree = Kindex.tree index in
          Rstar.set_root tree (Rstar.root tree) ~size:(Rstar.size tree + 1);
          Alcotest.(check bool) "corruption detected" false
            (Check.is_valid tree);
          (Budget.unlimited, "index_unusable")
        end
        else
          (* A zero node budget fails any traversal that descends past
             the root; a query region that prunes at (or misses) the
             root completes legitimately, so the expected outcome is
             learned below by mirroring the planner's index attempt. *)
          (Budget.create ~max_node_accesses:0 (), "budget_exceeded:node_accesses")
      in
      let index_survives =
        (not validate)
        &&
        match
          Kindex.range_checked ~spec ~budget ~retry:(fast_retry ()) index
            ~query ~epsilon:eps
        with
        | Ok _ -> true
        | Error _ -> false
      in
      (match
         Planner.range_resilient ~pool:Pool.sequential ~spec ~budget
           ~retry:(fast_retry ()) ~counters ~validate index ~query
           ~epsilon:eps
       with
      | Error e -> Alcotest.failf "fallback failed: %s" (Error.to_string e)
      | Ok r when index_survives ->
        (* The budget never bit: the index path must be kept, with the
           exact reference answer and no degradation recorded. *)
        Alcotest.(check bool) "not degraded" false r.Planner.degraded;
        Alcotest.(check bool) "index answered" true
          (r.Planner.executed = Planner.Use_index);
        Alcotest.(check (list int)) "index answers = reference"
          (reference_ids dataset spec query eps)
          (sorted_ids r.Planner.answers)
      | Ok r ->
        Alcotest.(check bool) "degraded" true r.Planner.degraded;
        Alcotest.(check bool) "scan answered" true
          (r.Planner.executed = Planner.Use_scan);
        (match r.Planner.index_error with
        | None -> Alcotest.fail "missing index error"
        | Some e ->
          Alcotest.(check string) "index error kind" expected_kind
            (Error.kind e));
        Alcotest.(check (list int)) "degraded answers = reference"
          (reference_ids dataset spec query eps)
          (sorted_ids r.Planner.answers));
      let expected_degraded = if index_survives then 0 else 1 in
      Alcotest.(check int) "degradation counted" expected_degraded
        counters.Planner.degraded;
      Alcotest.(check int) "no failure" 0 counters.Planner.failures;
      Alcotest.(check bool) "rate visible" true
        (Planner.degradation_rate counters = float_of_int expected_degraded);
      true)

(* --- Parallel equivalence under faults and budgets --------------------------- *)

let check_result_equal msg (expected : Seqscan.result) (actual : Seqscan.result)
    =
  Alcotest.(check (list (pair int (float 0.))))
    (msg ^ ": answers")
    (List.map (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d)) expected.Seqscan.answers)
    (List.map (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d)) actual.Seqscan.answers);
  Alcotest.(check int) (msg ^ ": full computations")
    expected.Seqscan.full_computations actual.Seqscan.full_computations;
  Alcotest.(check int) (msg ^ ": coefficients touched")
    expected.Seqscan.coefficients_touched actual.Seqscan.coefficients_touched

let prop_parallel_checked =
  QCheck.Test.make
    ~name:
      "checked scan across 1/2/4 domains: same outcome kind, bit-identical \
       answers"
    ~count:100 arb_scenario
    (fun (dseed, qseed, eps, _, page_p, sched, fseed, bkind) ->
      let dataset = datasets.(dseed) in
      let spec = safe_spec Simq_geometry.Coords.Polar (spec_of_index qseed) in
      let query = query_for dataset spec qseed in
      let budget =
        match bkind with
        | 0 | 1 -> Budget.unlimited
        | 2 -> Budget.create ~max_comparisons:(qseed mod 50) ()
        | _ -> Budget.create ~max_page_reads:(qseed mod 6) ()
      in
      let outcomes =
        List.map
          (fun (domains, pool) ->
            (* A fresh injector per run, same seed: the page-fault
               stream is identical whatever the domain count, because
               page accounting runs on the submitting domain only. *)
            let injector =
              Injector.create
                ~page_reads:
                  (Injector.transient ~probability:page_p ~schedule:sched ())
                ~seed:fseed ()
            in
            Relation.set_injector (Dataset.relation dataset) (Some injector);
            let outcome =
              Fun.protect
                ~finally:(fun () ->
                  Relation.set_injector (Dataset.relation dataset) None)
                (fun () ->
                  Seqscan.range_checked ~pool ~spec ~budget
                    ~retry:(fast_retry ()) dataset ~query ~epsilon:eps)
            in
            (domains, outcome))
          pools
      in
      (match outcomes with
      | (_, baseline) :: rest ->
        List.iter
          (fun (domains, outcome) ->
            match (baseline, outcome) with
            | Ok expected, Ok actual ->
              check_result_equal
                (Printf.sprintf "domains=%d vs sequential" domains)
                expected actual
            | Error a, Error b ->
              Alcotest.(check string)
                (Printf.sprintf "error kind, domains=%d" domains)
                (Error.kind a) (Error.kind b)
            | Ok _, Error e | Error e, Ok _ ->
              Alcotest.failf "domains=%d diverged from sequential (error %s)"
                domains (Error.to_string e))
          rest
      | [] -> assert false);
      (* An Ok outcome must also be the Lemma 1 answer. *)
      (match outcomes with
      | (_, Ok r) :: _ ->
        Alcotest.(check (list int)) "checked Ok = reference"
          (reference_ids dataset spec query eps)
          (sorted_ids r.Seqscan.answers)
      | _ -> ());
      true)

let prop_join_checked =
  QCheck.Test.make
    ~name:"checked join: unlimited ≡ unchecked, blown budget is typed"
    ~count:30 arb_scenario
    (fun (dseed, qseed, eps, _, _, _, _, _) ->
      let dataset = datasets.(dseed) in
      let spec = safe_spec Simq_geometry.Coords.Polar (spec_of_index qseed) in
      let index = Kindex.build ~max_fill:8 dataset in
      let epsilon = Float.min eps 4. in
      let unchecked = Join.scan_early_abandon ~pool:Pool.sequential ~spec index ~epsilon in
      List.iter
        (fun (domains, pool) ->
          (match Join.scan_checked ~pool ~spec index ~epsilon with
          | Error e ->
            Alcotest.failf "unlimited budget failed: %s" (Error.to_string e)
          | Ok (r : Join.result) ->
            Alcotest.(check (list (pair int int)))
              (Printf.sprintf "pairs, domains=%d" domains)
              unchecked.Join.pairs r.Join.pairs;
            Alcotest.(check int)
              (Printf.sprintf "computations, domains=%d" domains)
              unchecked.Join.distance_computations r.Join.distance_computations);
          match
            Join.scan_checked ~pool ~spec
              ~budget:(Budget.create ~max_comparisons:0 ())
              index ~epsilon
          with
          | Ok _ -> Alcotest.fail "zero comparison budget cannot succeed"
          | Error e ->
            Alcotest.(check string)
              (Printf.sprintf "blown join budget, domains=%d" domains)
              "budget_exceeded:comparisons" (Error.kind e))
        pools;
      true)

(* --- Checked ≡ unchecked, and end-to-end retry ------------------------------- *)

let test_unlimited_checked_is_unchecked () =
  let dataset = datasets.(0) in
  let spec = Spec.Moving_average 3 in
  let query = query_for dataset spec 17 in
  let epsilon = 5. in
  let plain =
    Seqscan.range_early_abandon ~pool:Pool.sequential ~spec dataset ~query
      ~epsilon
  in
  (match
     Seqscan.range_checked ~pool:Pool.sequential ~spec dataset ~query ~epsilon
   with
  | Error e -> Alcotest.failf "scan failed: %s" (Error.to_string e)
  | Ok checked -> check_result_equal "scan" plain checked);
  let index = Kindex.build ~max_fill:8 dataset in
  let plain = Kindex.range ~spec index ~query ~epsilon in
  match Kindex.range_checked ~spec index ~query ~epsilon with
  | Error e -> Alcotest.failf "index failed: %s" (Error.to_string e)
  | Ok (checked : Kindex.range_result) ->
    Alcotest.(check (list (pair int (float 0.))))
      "index answers"
      (List.map (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d)) plain.Kindex.answers)
      (List.map (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d)) checked.Kindex.answers);
    Alcotest.(check int) "candidates" plain.Kindex.candidates
      checked.Kindex.candidates;
    Alcotest.(check int) "node accesses" plain.Kindex.node_accesses
      checked.Kindex.node_accesses

let test_scan_retry_end_to_end () =
  let dataset = datasets.(1) in
  let query = query_for dataset Spec.Identity 3 in
  let with_schedule schedule retry =
    let injector =
      Injector.create ~page_reads:(Injector.transient ~schedule ()) ~seed:2 ()
    in
    Relation.set_injector (Dataset.relation dataset) (Some injector);
    Fun.protect
      ~finally:(fun () -> Relation.set_injector (Dataset.relation dataset) None)
      (fun () ->
        Seqscan.range_checked ~pool:Pool.sequential ~retry dataset ~query
          ~epsilon:3.)
  in
  (* One scheduled fault on the first page: a single retry absorbs it. *)
  (match with_schedule [ 1 ] (fast_retry ()) with
  | Ok r ->
    let plain =
      Seqscan.range_early_abandon ~pool:Pool.sequential dataset ~query
        ~epsilon:3.
    in
    check_result_equal "retried scan" plain r
  | Error e -> Alcotest.failf "retry should absorb it: %s" (Error.to_string e));
  (* The same fault without retries surfaces as a typed I/O failure. *)
  match with_schedule [ 1 ] Retry.none with
  | Ok _ -> Alcotest.fail "expected Io_failed"
  | Error (Error.Io_failed { site; attempts }) ->
    Alcotest.(check string) "site" "page_read" site;
    Alcotest.(check int) "single attempt" 1 attempts
  | Error e -> Alcotest.failf "unexpected error %s" (Error.to_string e)

let () =
  Alcotest.run "simq_fault"
    [
      ( "injector",
        [
          Alcotest.test_case "scheduled ordinals" `Quick test_injector_schedule;
          Alcotest.test_case "seed reproducibility" `Quick
            test_injector_seed_reproducible;
          Alcotest.test_case "validation" `Quick test_injector_validation;
        ] );
      ( "budget",
        [
          Alcotest.test_case "unlimited" `Quick test_budget_unlimited;
          Alcotest.test_case "limit latches" `Quick test_budget_limit_latches;
          Alcotest.test_case "accounting" `Quick test_budget_accounting;
          Alcotest.test_case "deadline" `Quick test_budget_deadline;
          Alcotest.test_case "error kinds" `Quick test_error_kinds;
        ] );
      ( "retry",
        [
          Alcotest.test_case "recovers" `Quick test_retry_recovers;
          Alcotest.test_case "exhausts" `Quick test_retry_exhausts;
          Alcotest.test_case "budgets not retried" `Quick
            test_retry_never_retries_budgets;
        ] );
      ( "queries",
        [
          Alcotest.test_case "unlimited checked = unchecked" `Quick
            test_unlimited_checked_is_unchecked;
          Alcotest.test_case "scan retry end to end" `Quick
            test_scan_retry_end_to_end;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_safety;
            prop_degradation;
            prop_parallel_checked;
            prop_join_checked;
          ] );
    ]
