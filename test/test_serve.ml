(* The simq serve daemon (lib/serve): the request/response line
   grammar round-trips, workers isolate every kind of abuse (malformed
   lines, oversized lines, mid-query disconnects), a zero in-flight
   cap sheds before any execution-side counter moves, the drain is
   graceful, NN admission vetting is domain-count invariant, and the
   chaos harness finds served answers bit-identical to offline
   execution while the daemon survives. *)

module Protocol = Simq_serve.Protocol
module Engine = Simq_serve.Engine
module Server = Simq_serve.Server
module Stress = Simq_serve.Stress
module Admission = Simq_admission
module Metrics = Simq_obs.Metrics
module Qlog = Simq_obs.Qlog
module J = Simq_obs.Json
module Pool = Simq_parallel.Pool
module Budget = Simq_fault.Budget
module Generator = Simq_series.Generator
open Simq_tsindex

let build_index ?(count = 32) ?(n = 64) () =
  let batch = Generator.random_walks ~seed:4711 ~count ~n in
  Kindex.build (Dataset.of_series ~name:"serve" batch)

let with_daemon ?max_inflight ?max_line_bytes ?qlog ?slow_k ?engine f =
  let engine =
    match engine with Some e -> e | None -> Engine.create (build_index ())
  in
  Server.with_server ?max_inflight ?max_line_bytes ?qlog ?slow_k ~engine
    ~port:0 (fun server -> f server (Server.port server))

let connect port = Stress.Client.connect ~timeout:10. ~host:"127.0.0.1" ~port ()

let member_str name json =
  match J.member name json with Some (J.Str s) -> Some s | _ -> None

let member_int name json =
  match J.member name json with
  | Some (J.Num x) -> Some (int_of_float x)
  | _ -> None

let query_json client spec =
  match Stress.Client.query client spec with
  | Ok json -> json
  | Error msg -> Alcotest.failf "query %S: %s" spec msg

let expect_outcome ~what ~outcome ~exit_code json =
  Alcotest.(check (option string)) (what ^ ": outcome") (Some outcome)
    (member_str "outcome" json);
  Alcotest.(check (option int)) (what ^ ": exit") (Some exit_code)
    (member_int "exit" json)

(* --- the line grammar (QCheck round-trip) ---------------------------------- *)

let arb_raw_line =
  (* Arbitrary bytes, including newlines, NULs, backslashes and
     non-ASCII — everything a hostile or merely unlucky client could
     put in a spec. *)
  QCheck.make ~print:String.escaped
    QCheck.Gen.(
      string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 300))

let prop_escape_roundtrip =
  QCheck.Test.make ~name:"escape/unescape round-trips any bytes" ~count:500
    arb_raw_line (fun s ->
      let escaped = Protocol.escape s in
      String.for_all (fun c -> c <> '\n' && c <> '\r') escaped
      && Protocol.unescape escaped = Ok s)

let test_unescape_rejects_bad_escapes () =
  (match Protocol.unescape "a\\qb" with
  | Error _ -> ()
  | Ok s -> Alcotest.failf "unknown escape accepted as %S" s);
  match Protocol.unescape "dangling\\" with
  | Error _ -> ()
  | Ok s -> Alcotest.failf "dangling backslash accepted as %S" s

let test_escape_handles_newlines () =
  let spec = "RANGE FROM r\nQUERY s1\tEPS 2.0\r" in
  let escaped = Protocol.escape spec in
  Alcotest.(check bool) "single line" false (String.contains escaped '\n');
  Alcotest.(check (result string string)) "round-trips" (Ok spec)
    (Protocol.unescape escaped)

(* --- served answers equal offline execution -------------------------------- *)

let offline_results engine spec =
  match Engine.exec engine spec with
  | Ok o -> J.to_string o.Engine.results
  | Error e ->
    Alcotest.failf "offline %S failed: %s" spec (Simq_cli.message e)

let test_served_equals_offline () =
  let index = build_index () in
  let offline = Engine.create index in
  let engine = Engine.create index in
  with_daemon ~engine (fun _server port ->
      let client = connect port in
      Fun.protect
        ~finally:(fun () -> Stress.Client.close client)
        (fun () ->
          List.iter
            (fun spec ->
              let json = query_json client spec in
              expect_outcome ~what:spec ~outcome:"ok" ~exit_code:0 json;
              let served =
                match J.member "results" json with
                | Some r -> J.to_string r
                | None -> Alcotest.failf "%s: no results" spec
              in
              Alcotest.(check string)
                (spec ^ ": served = offline")
                (offline_results offline spec)
                served)
            [
              "RANGE FROM r QUERY s3 EPS 2.0";
              "RANGE FROM r USING mavg(4) QUERY s1 EPS 3.0 MEAN 0.5";
              "NEAREST 5 FROM r QUERY s2";
              "PAIRS FROM r EPS 1.0 METHOD scan";
            ]))

(* --- worker isolation under abuse ------------------------------------------ *)

let test_malformed_line_isolated () =
  with_daemon (fun _server port ->
      let client = connect port in
      Fun.protect
        ~finally:(fun () -> Stress.Client.close client)
        (fun () ->
          expect_outcome ~what:"garbage" ~outcome:"usage" ~exit_code:1
            (query_json client "DEFINITELY NOT A QUERY");
          expect_outcome ~what:"bad escape" ~outcome:"usage" ~exit_code:1
            (query_json client "RANGE FROM r QUERY s0 EPS 1.0\\q");
          (* The same connection still answers. *)
          expect_outcome ~what:"after abuse" ~outcome:"ok" ~exit_code:0
            (query_json client "NEAREST 2 FROM r QUERY s0")))

let test_oversized_line_isolated () =
  with_daemon ~max_line_bytes:256 (fun _server port ->
      let client = connect port in
      Fun.protect
        ~finally:(fun () -> Stress.Client.close client)
        (fun () ->
          Stress.Client.send_line client (String.make 4096 'x');
          (match Stress.Client.recv_line client with
          | Some line -> (
            match J.parse line with
            | Ok json ->
              expect_outcome ~what:"oversized" ~outcome:"usage" ~exit_code:1
                json
            | Error msg -> Alcotest.failf "unparseable response: %s" msg)
          | None -> Alcotest.fail "connection dropped on oversized line");
          expect_outcome ~what:"after oversized" ~outcome:"ok" ~exit_code:0
            (query_json client "NEAREST 2 FROM r QUERY s0")))

let test_disconnect_mid_query_isolated () =
  with_daemon (fun _server port ->
      (* Fire a query and vanish before the response. *)
      let rude = connect port in
      Stress.Client.send_line rude
        (Protocol.escape "RANGE FROM r QUERY s1 EPS 4.0");
      Stress.Client.close rude;
      (* The daemon must still serve a polite client. *)
      let polite = connect port in
      Fun.protect
        ~finally:(fun () -> Stress.Client.close polite)
        (fun () ->
          expect_outcome ~what:"after disconnect" ~outcome:"ok" ~exit_code:0
            (query_json polite "NEAREST 3 FROM r QUERY s1")))

(* --- load shedding before execution ---------------------------------------- *)

let execution_families =
  [
    "simq_buffer_pool_hits_total"; "simq_buffer_pool_misses_total";
    "simq_scan_candidates_total"; "simq_kindex_candidates_total";
    "simq_rtree_node_accesses_total";
  ]

let test_shed_is_typed_and_executes_nothing () =
  (* Build everything before resetting the registry, so the only
     counter movement we could see is the served query's own. *)
  let engine = Engine.create (build_index ()) in
  Metrics.with_enabled true (fun () ->
      Metrics.reset ();
      with_daemon ~max_inflight:0 ~engine (fun server port ->
          let client = connect port in
          Fun.protect
            ~finally:(fun () -> Stress.Client.close client)
            (fun () ->
              let json = query_json client "RANGE FROM r QUERY s3 EPS 2.0" in
              expect_outcome ~what:"shed" ~outcome:"rejected:in_flight"
                ~exit_code:5 json;
              List.iter
                (fun family ->
                  Alcotest.(check int)
                    (family ^ " untouched")
                    0
                    (Metrics.counter_total (Metrics.counter family)))
                execution_families;
              Alcotest.(check int) "shed counted as a rejection" 1
                (Metrics.counter_total
                   (Metrics.counter
                      ~labels:[ ("decision", "reject") ]
                      "simq_admission_decisions_total"));
              let stats = Server.stats server in
              Alcotest.(check int) "server counted the shed" 1
                stats.Server.shed;
              Alcotest.(check int) "nothing served" 0 stats.Server.served)))

(* --- graceful drain --------------------------------------------------------- *)

let test_shutdown_drains_and_answers () =
  with_daemon (fun server port ->
      let client = connect port in
      expect_outcome ~what:"pre-shutdown" ~outcome:"ok" ~exit_code:0
        (query_json client "NEAREST 2 FROM r QUERY s0");
      Stress.Client.send_line client "shutdown";
      (match Stress.Client.recv_line client with
      | Some line ->
        let json = Result.get_ok (J.parse line) in
        Alcotest.(check (option string))
          "shutdown acknowledged" (Some "simq.serve.shutdown")
          (member_str "event" json)
      | None -> Alcotest.fail "no shutdown acknowledgement");
      Stress.Client.close client;
      (* wait must return: the drain completes on its own. *)
      Server.wait server;
      Alcotest.(check bool) "draining" true (Server.draining server);
      let stats = Server.stats server in
      Alcotest.(check bool) "served at least the one query" true
        (stats.Server.served >= 1))

let test_qlog_records_served_queries () =
  let path = Filename.temp_file "simq_serve" ".qlog" in
  let qlog = Qlog.create path in
  let engine = Engine.create (build_index ()) in
  with_daemon ~qlog ~engine (fun _server port ->
      let client = connect port in
      Fun.protect
        ~finally:(fun () -> Stress.Client.close client)
        (fun () ->
          ignore (query_json client "RANGE FROM r QUERY s3 EPS 2.0");
          ignore (query_json client "NOT A QUERY")));
  Qlog.close qlog;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Sys.remove path;
  Alcotest.(check int) "one entry per request" 2 (List.length lines);
  let outcomes =
    List.map
      (fun line -> member_str "outcome" (Result.get_ok (J.parse line)))
      lines
  in
  Alcotest.(check (list (option string)))
    "outcomes logged in order"
    [ Some "ok"; Some "usage" ]
    outcomes

(* --- NN admission: domain-count invariance and exact degradation ----------- *)

let nn_decisions index ~domains =
  let saved = Pool.default_domains () in
  Pool.set_default_domains domains;
  Fun.protect
    ~finally:(fun () -> Pool.set_default_domains saved)
    (fun () ->
      let admission =
        Admission.create ~registry:(Metrics.create_registry ()) ()
      in
      let query = (Dataset.entries (Kindex.dataset index)).(1).Dataset.series in
      List.map
        (fun (k, budget) ->
          let decision = ref None in
          let result =
            Kindex.nearest_checked ~budget ~admission
              ~on_decision:(fun d -> decision := Some d)
              index ~query ~k
          in
          let ids =
            match result with
            | Ok answers ->
              Ok
                (List.map
                   (fun ((e : Dataset.entry), _) -> e.Dataset.id)
                   answers)
            | Error e -> Error (Simq_fault.Error.kind e)
          in
          (Option.map Admission.decision_name !decision, ids))
        [
          (3, Budget.unlimited);
          (3, Budget.create ~max_node_accesses:0 ~max_comparisons:10_000
                ~max_page_reads:10_000 ());
          (5, Budget.create ~max_node_accesses:0 ~max_page_reads:1 ());
        ])

let test_nn_admission_domain_invariant () =
  let index = build_index () in
  let reference = nn_decisions index ~domains:1 in
  (* The three budgets exercise all three decisions. *)
  Alcotest.(check (list (option string)))
    "admit, degrade and reject all reached"
    [ Some "admit"; Some "degrade_to_scan"; Some "reject" ]
    (List.map fst reference);
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "decisions and answers at %d domains" domains)
        true
        (nn_decisions index ~domains = reference))
    [ 2; 4 ]

let test_nn_degrade_is_exact () =
  let index = build_index () in
  let admission = Admission.create ~registry:(Metrics.create_registry ()) () in
  let query = (Dataset.entries (Kindex.dataset index)).(2).Dataset.series in
  let k = 4 in
  let plain =
    List.map (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d))
      (Kindex.nearest index ~query ~k)
  in
  let degraded =
    match
      Kindex.nearest_checked
        ~budget:
          (Budget.create ~max_node_accesses:0 ~max_comparisons:10_000
             ~max_page_reads:10_000 ())
        ~admission index ~query ~k
    with
    | Ok answers ->
      List.map (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d)) answers
    | Error e -> Alcotest.failf "degraded NN failed: %s" (Simq_fault.Error.kind e)
  in
  Alcotest.(check bool) "degraded NN bit-identical to the index path" true
    (plain = degraded)

(* --- the chaos harness ------------------------------------------------------ *)

let chaos_report index =
  let offline = Engine.create index in
  let oracle spec =
    match Engine.exec offline spec with
    | Ok o -> Some o.Engine.results
    | Error _ -> None
  in
  let engine = Engine.create index in
  Server.with_server ~engine ~port:0 (fun server ->
      Stress.run ~chaos:true ~timeout:30. ~oracle ~host:"127.0.0.1"
        ~port:(Server.port server) ~clients:4 ~per_client:8 ~seed:9001
        ~cardinality:32 ())

let test_chaos_survives_and_matches () =
  let index = build_index () in
  let report = chaos_report index in
  Alcotest.(check bool) "daemon alive" false report.Stress.server_gone;
  Alcotest.(check int) "no protocol violations" 0
    report.Stress.protocol_errors;
  Alcotest.(check int) "no execution failures" 0 report.Stress.failed;
  Alcotest.(check (list (pair string string)))
    "served answers bit-identical to offline" [] report.Stress.mismatches;
  Alcotest.(check bool) "abuse actually happened" true
    (report.Stress.malformed_sent > 0 && report.Stress.disconnects > 0);
  Alcotest.(check bool) "queries actually served" true (report.Stress.ok > 0)

let test_chaos_with_injected_faults () =
  (* Seeded transient faults on the page and node seams while hostile
     clients abuse the protocol: the budgeted engine's resilient paths
     retry or degrade, anything that still escapes becomes a typed
     fault line — and the daemon survives all of it. *)
  let index = build_index () in
  let injector =
    Simq_fault.Injector.create
      ~page_reads:(Simq_fault.Injector.transient ~probability:0.1 ())
      ~node_accesses:(Simq_fault.Injector.transient ~probability:0.1 ())
      ~seed:1312 ()
  in
  Simq_rtree.Rstar.set_injector (Kindex.tree index) (Some injector);
  let report =
    Fun.protect
      ~finally:(fun () ->
        Simq_rtree.Rstar.set_injector (Kindex.tree index) None)
      (fun () ->
        let engine =
          Engine.create
            ~budget:
              (Budget.create ~max_page_reads:1_000_000
                 ~max_node_accesses:1_000_000 ())
            index
        in
        Server.with_server ~engine ~port:0 (fun server ->
            Stress.run ~chaos:true ~timeout:30. ~host:"127.0.0.1"
              ~port:(Server.port server) ~clients:4 ~per_client:8 ~seed:1848
              ~cardinality:32 ()))
  in
  Alcotest.(check bool) "daemon alive under faults" false
    report.Stress.server_gone;
  Alcotest.(check int) "every request answered in protocol" 0
    report.Stress.protocol_errors;
  Alcotest.(check bool) "queries still served" true (report.Stress.ok > 0)

let test_chaos_stream_deterministic () =
  let index = build_index () in
  let a = chaos_report index and b = chaos_report index in
  Alcotest.(check bool)
    "same seed => same workload, abuse and outcomes" true
    (a.Stress.sent = b.Stress.sent
    && a.Stress.ok = b.Stress.ok
    && a.Stress.malformed_sent = b.Stress.malformed_sent
    && a.Stress.disconnects = b.Stress.disconnects)

(* --- request-scoped correlation end to end ---------------------------------- *)

module Trace = Simq_obs.Trace

(* One served query under 4 domains and a 4-shard engine: its qlog
   line, its JSON profile root and every span it emitted carry the
   same request id — and the answer is bit-identical to the
   tracing-off offline run. *)
let test_trace_correlation_end_to_end () =
  let saved = Pool.default_domains () in
  Pool.set_default_domains 4;
  let path = Filename.temp_file "simq_serve_trace" ".qlog" in
  Fun.protect
    ~finally:(fun () ->
      Pool.set_default_domains saved;
      Trace.set_enabled false;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let spec = "RANGE FROM r QUERY s3 EPS 2.0" in
      let index = build_index () in
      let reference = offline_results (Engine.create ~shards:4 index) spec in
      Trace.set_enabled true;
      Trace.reset ();
      let qlog = Qlog.create path in
      let engine = Engine.create ~shards:4 index in
      let served =
        with_daemon ~qlog ~engine (fun _server port ->
            let client = connect port in
            Fun.protect
              ~finally:(fun () -> Stress.Client.close client)
              (fun () ->
                Stress.Client.send_line client
                  ("profile " ^ Protocol.escape spec);
                match Stress.Client.recv_line client with
                | Some line -> Result.get_ok (J.parse line)
                | None -> Alcotest.fail "no response"))
      in
      Qlog.close qlog;
      Trace.set_enabled false;
      expect_outcome ~what:"traced query" ~outcome:"ok" ~exit_code:0 served;
      Alcotest.(check string) "answers unchanged by tracing" reference
        (match J.member "results" served with
        | Some r -> J.to_string r
        | None -> Alcotest.fail "no results in the response");
      let profile_trace =
        match J.member "profile" served with
        | Some p -> (
          match J.member "trace_id" p with
          | Some (J.Num id) -> int_of_float id
          | _ -> Alcotest.fail "profile root carries no trace_id")
        | None -> Alcotest.fail "no profile in the response"
      in
      Alcotest.(check bool) "a real request id" true (profile_trace > 0);
      let qlog_trace =
        let ic = open_in path in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> close_in ic);
        match !lines with
        | [ line ] -> (
          match J.member "trace_id" (Result.get_ok (J.parse line)) with
          | Some (J.Num id) -> int_of_float id
          | _ -> Alcotest.fail "qlog line carries no trace_id")
        | ls -> Alcotest.failf "expected one qlog line, got %d" (List.length ls)
      in
      Alcotest.(check int) "qlog line = profile root" profile_trace qlog_trace;
      let request_spans =
        List.filter (fun t -> t <> 0) (Trace.event_traces ())
      in
      Alcotest.(check bool) "the request recorded spans" true
        (request_spans <> []);
      List.iter
        (fun t ->
          Alcotest.(check int) "every span carries the request id"
            profile_trace t)
        request_spans)

(* --- the slow-query exemplar store over the wire ---------------------------- *)

let test_slow_command_round_trip () =
  let engine = Engine.create (build_index ()) in
  with_daemon ~slow_k:2 ~engine (fun _server port ->
      let client = connect port in
      Fun.protect
        ~finally:(fun () -> Stress.Client.close client)
        (fun () ->
          List.iter
            (fun spec ->
              expect_outcome ~what:spec ~outcome:"ok" ~exit_code:0
                (query_json client spec))
            [
              "RANGE FROM r QUERY s3 EPS 2.0";
              "NEAREST 5 FROM r QUERY s2";
              "PAIRS FROM r EPS 1.0 METHOD scan";
            ];
          Stress.Client.send_line client "slow";
          match Stress.Client.recv_line client with
          | None -> Alcotest.fail "no slow response"
          | Some line ->
            let json = Result.get_ok (J.parse line) in
            Alcotest.(check (option string)) "event" (Some "simq.serve.slow")
              (member_str "event" json);
            let slow =
              match J.member "slow" json with
              | Some s -> s
              | None -> Alcotest.fail "no slow member"
            in
            Alcotest.(check (option int)) "k echoed" (Some 2)
              (member_int "k" slow);
            let entries =
              match J.member "entries" slow with
              | Some (J.Arr l) -> l
              | _ -> Alcotest.fail "no entries array"
            in
            Alcotest.(check int) "exactly worst-k kept" 2
              (List.length entries);
            List.iter
              (fun e ->
                Alcotest.(check bool) "entry carries a request id" true
                  (match J.member "trace_id" e with
                  | Some (J.Num t) -> t > 0.
                  | _ -> false);
                Alcotest.(check bool) "entry carries a rendered tree" true
                  (match member_str "profile" e with
                  | Some p -> String.length p > 0
                  | None -> false))
              entries))

let test_slow_without_store_is_usage () =
  with_daemon (fun _server port ->
      let client = connect port in
      Fun.protect
        ~finally:(fun () -> Stress.Client.close client)
        (fun () ->
          Stress.Client.send_line client "slow";
          (match Stress.Client.recv_line client with
          | None -> Alcotest.fail "connection dropped on slow"
          | Some line ->
            expect_outcome ~what:"slow without a store" ~outcome:"usage"
              ~exit_code:1
              (Result.get_ok (J.parse line)));
          (* The connection survives the refused command. *)
          expect_outcome ~what:"after slow" ~outcome:"ok" ~exit_code:0
            (query_json client "NEAREST 2 FROM r QUERY s0")))

(* --- rotated qlog chains ---------------------------------------------------- *)

let test_rotated_chain_order () =
  let path = Filename.temp_file "simq_rotate" ".qlog" in
  let rotated = path ^ ".1" in
  let write p s =
    let oc = open_out p in
    output_string oc s;
    close_out oc
  in
  write path "newer\n";
  Alcotest.(check (list string)) "unrotated: just the file" [ path ]
    (Qlog.rotated_chain path);
  write rotated "older\n";
  Alcotest.(check (list string)) "rotated pair in stream order"
    [ rotated; path ]
    (Qlog.rotated_chain path);
  Sys.remove path;
  Sys.remove rotated;
  Alcotest.(check (list string)) "nothing on disk" []
    (Qlog.rotated_chain path)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          QCheck_alcotest.to_alcotest prop_escape_roundtrip;
          Alcotest.test_case "bad escapes rejected" `Quick
            test_unescape_rejects_bad_escapes;
          Alcotest.test_case "newlines escape to one line" `Quick
            test_escape_handles_newlines;
        ] );
      ( "serving",
        [
          Alcotest.test_case "served = offline" `Quick
            test_served_equals_offline;
          Alcotest.test_case "qlog records served queries" `Quick
            test_qlog_records_served_queries;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "malformed line" `Quick
            test_malformed_line_isolated;
          Alcotest.test_case "oversized line" `Quick
            test_oversized_line_isolated;
          Alcotest.test_case "mid-query disconnect" `Quick
            test_disconnect_mid_query_isolated;
        ] );
      ( "shedding",
        [
          Alcotest.test_case "typed, counted, executes nothing" `Quick
            test_shed_is_typed_and_executes_nothing;
        ] );
      ( "drain",
        [
          Alcotest.test_case "shutdown drains" `Quick
            test_shutdown_drains_and_answers;
        ] );
      ( "nn-admission",
        [
          Alcotest.test_case "domain-count invariant" `Quick
            test_nn_admission_domain_invariant;
          Alcotest.test_case "degradation is exact" `Quick
            test_nn_degrade_is_exact;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "survives and matches offline" `Quick
            test_chaos_survives_and_matches;
          Alcotest.test_case "survives injected faults" `Quick
            test_chaos_with_injected_faults;
          Alcotest.test_case "deterministic abuse stream" `Quick
            test_chaos_stream_deterministic;
        ] );
      ( "correlation",
        [
          Alcotest.test_case "one id across qlog, profile and spans" `Quick
            test_trace_correlation_end_to_end;
        ] );
      ( "slow-store",
        [
          Alcotest.test_case "slow command round-trips" `Quick
            test_slow_command_round_trip;
          Alcotest.test_case "usage error without a store" `Quick
            test_slow_without_store_is_usage;
        ] );
      ( "qlog-rotation",
        [
          Alcotest.test_case "rotated chain order" `Quick
            test_rotated_chain_order;
        ] );
    ]
