(* The inter-query batch executor (Simq_parallel.Batch) and its wiring
   into Kindex.range_batch / Seqscan.range_batch: batch answers must be
   bit-identical to per-query sequential runs at every pool size (under
   Spec variation), merged metric totals must be invariant in the
   domain count, per-query profile trees (timings stripped) must be
   identical at every domain count, and the qlog size rotation must
   preserve the line stream. *)

module Pool = Simq_parallel.Pool
module Batch = Simq_parallel.Batch
module Profile = Simq_obs.Profile
module Metrics = Simq_obs.Metrics
module Qlog = Simq_obs.Qlog
open Simq_tsindex
module Generator = Simq_series.Generator

let pools =
  [ (1, Pool.sequential); (2, Pool.create ~domains:2); (4, Pool.create ~domains:4) ]

let pool_of n = List.assoc n pools

(* --- Batch.map unit tests --------------------------------------------------- *)

let test_map_order_and_values () =
  let queries = Array.init 23 (fun i -> i) in
  let f ~profile:_ q = (q * q) + 1 in
  let expected = Array.map (fun q -> (q * q) + 1) queries in
  List.iter
    (fun (d, pool) ->
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d" d)
        expected
        (Batch.map ~pool f queries))
    pools

let test_map_empty () =
  List.iter
    (fun (d, pool) ->
      Alcotest.(check (array int))
        (Printf.sprintf "empty, domains=%d" d)
        [||]
        (Batch.map ~pool (fun ~profile:_ q -> q) [||]))
    pools

let test_map_timed_durations () =
  List.iter
    (fun (d, pool) ->
      let results =
        Batch.map_timed ~pool
          (fun ~profile:_ q -> q + 1)
          (Array.init 9 (fun i -> i))
      in
      Array.iteri
        (fun i (r : int Batch.timed) ->
          Alcotest.(check int)
            (Printf.sprintf "value %d, domains=%d" i d)
            (i + 1) r.Batch.value;
          Alcotest.(check bool)
            (Printf.sprintf "duration %d >= 0, domains=%d" i d)
            true
            (r.Batch.duration_s >= 0.))
        results)
    pools

let test_profiles_length_validation () =
  Alcotest.check_raises "wrong profiles length"
    (Invalid_argument "Batch: profiles array must match the query count")
    (fun () ->
      ignore
        (Batch.map ~pool:Pool.sequential
           ~profiles:(Array.init 2 (fun _ -> Profile.create ()))
           (fun ~profile:_ q -> q)
           [| 1; 2; 3 |]))

let test_profiles_are_threaded () =
  List.iter
    (fun (d, pool) ->
      let n = 5 in
      let profiles = Array.init n (fun _ -> Profile.create ()) in
      ignore
        (Batch.map ~pool ~profiles
           (fun ~profile q ->
             let node = Profile.enter profile "batch.test" in
             Profile.add_rows_out node q;
             Profile.leave profile node;
             q)
           (Array.init n (fun i -> i)));
      Array.iteri
        (fun i p ->
          match Profile.find p "batch.test" with
          | None ->
            Alcotest.failf "profile %d has no batch.test node, domains=%d" i d
          | Some node ->
            Alcotest.(check int)
              (Printf.sprintf "profile %d rows_out, domains=%d" i d)
              i (Profile.rows_out node))
        profiles)
    pools

let test_exception_propagates_lowest_index () =
  let queries = Array.init 20 (fun i -> i) in
  let f ~profile:_ q = if q >= 7 then failwith (string_of_int q) else q in
  List.iter
    (fun (d, pool) ->
      match Batch.map ~pool f queries with
      | _ -> Alcotest.failf "domains=%d: expected failure" d
      | exception Failure msg ->
        Alcotest.(check string) (Printf.sprintf "domains=%d" d) "7" msg)
    pools

(* --- batch ≡ per-query sequential (QCheck, under Spec variation) ----------- *)

let dataset_of ~seed ~count ~n =
  Dataset.of_series ~pool:Pool.sequential ~name:"test"
    (Generator.random_walks ~seed ~count ~n)

let query_for dataset spec seed =
  let entries = Dataset.entries dataset in
  let base = entries.(seed mod Array.length entries) in
  let state = Random.State.make [| seed |] in
  let perturbed =
    Array.map
      (fun v -> v +. Random.State.float state 2. -. 1.)
      base.Dataset.series
  in
  match spec with
  | Spec.Warp m -> Simq_series.Warp.expand m perturbed
  | _ -> perturbed

let spec_of_index i =
  match i mod 5 with
  | 0 -> Spec.Identity
  | 1 -> Spec.Moving_average 3
  | 2 -> Spec.Moving_average 8
  | 3 -> Spec.Reverse
  | _ -> Spec.Warp 2

let arb_setup =
  QCheck.make
    ~print:(fun (seed, eps, qseed) ->
      Printf.sprintf "seed=%d eps=%g qseed=%d" seed eps qseed)
    QCheck.Gen.(
      let* seed = int_range 0 1000 in
      let* eps = float_range 0.1 15. in
      let* qseed = int_range 0 1000 in
      return (seed, eps, qseed))

(* Bit-identity of the profiled batch paths against per-query
   sequential runs, plus domain-count invariance of the rendered
   per-query profile trees (timings stripped). *)
let prop_profiled_batch_eq_sequential =
  QCheck.Test.make
    ~name:"profiled range_batch ≡ one-by-one; trees domain-count-invariant"
    ~count:8 arb_setup (fun (seed, epsilon, qseed) ->
      let d = dataset_of ~seed ~count:50 ~n:32 in
      let spec = spec_of_index qseed in
      let queries =
        Array.init 6 (fun i ->
            (query_for d spec (qseed + i), epsilon +. (0.3 *. float_of_int i)))
      in
      let nq = Array.length queries in
      let index = Kindex.build ~max_fill:8 d in
      let expected_kindex =
        Array.map
          (fun (query, epsilon) -> Kindex.range ~spec index ~query ~epsilon)
          queries
      in
      let expected_seqscan =
        Array.map
          (fun (query, epsilon) ->
            Seqscan.range_early_abandon ~pool:Pool.sequential ~spec d ~query
              ~epsilon)
          queries
      in
      let kindex_trees = ref None and seqscan_trees = ref None in
      List.iter
        (fun domains ->
          let pool = pool_of domains in
          let profiles = Array.init nq (fun _ -> Profile.create ()) in
          let batch = Kindex.range_batch ~pool ~profiles ~spec index ~queries in
          Array.iteri
            (fun i (expected : Kindex.range_result) ->
              let actual = batch.(i) in
              let project (r : Kindex.range_result) =
                List.map
                  (fun ((e : Dataset.entry), dist) -> (e.Dataset.id, dist))
                  r.Kindex.answers
              in
              Alcotest.(check (list (pair int (float 0.))))
                (Printf.sprintf "kindex answers q%d domains=%d" i domains)
                (project expected) (project actual);
              Alcotest.(check int)
                (Printf.sprintf "kindex candidates q%d domains=%d" i domains)
                expected.Kindex.candidates actual.Kindex.candidates;
              Alcotest.(check int)
                (Printf.sprintf "kindex node accesses q%d domains=%d" i domains)
                expected.Kindex.node_accesses actual.Kindex.node_accesses)
            expected_kindex;
          let rendered =
            Array.map (fun p -> Profile.render ~timings:false p) profiles
          in
          (match !kindex_trees with
          | None -> kindex_trees := Some rendered
          | Some reference ->
            Alcotest.(check (array string))
              (Printf.sprintf "kindex trees domains=%d" domains)
              reference rendered);
          let profiles = Array.init nq (fun _ -> Profile.create ()) in
          let batch = Seqscan.range_batch ~pool ~profiles ~spec d ~queries in
          Array.iteri
            (fun i (expected : Seqscan.result) ->
              let actual = batch.(i) in
              Alcotest.(check (list (pair int (float 0.))))
                (Printf.sprintf "scan answers q%d domains=%d" i domains)
                (List.map
                   (fun ((e : Dataset.entry), dist) -> (e.Dataset.id, dist))
                   expected.Seqscan.answers)
                (List.map
                   (fun ((e : Dataset.entry), dist) -> (e.Dataset.id, dist))
                   actual.Seqscan.answers);
              Alcotest.(check int)
                (Printf.sprintf "scan full q%d domains=%d" i domains)
                expected.Seqscan.full_computations
                actual.Seqscan.full_computations;
              Alcotest.(check int)
                (Printf.sprintf "scan touched q%d domains=%d" i domains)
                expected.Seqscan.coefficients_touched
                actual.Seqscan.coefficients_touched)
            expected_seqscan;
          let rendered =
            Array.map (fun p -> Profile.render ~timings:false p) profiles
          in
          match !seqscan_trees with
          | None -> seqscan_trees := Some rendered
          | Some reference ->
            Alcotest.(check (array string))
              (Printf.sprintf "seqscan trees domains=%d" domains)
              reference rendered)
        [ 1; 2; 4 ];
      true)

(* --- merged metric totals are domain-count-invariant ------------------------ *)

let test_batch_metric_totals_invariant () =
  let d = dataset_of ~seed:23 ~count:70 ~n:32 in
  let index = Kindex.build ~max_fill:8 d in
  let spec = Spec.Moving_average 4 in
  let queries =
    Array.init 8 (fun i ->
        (query_for d spec (40 + i), 1.0 +. (0.4 *. float_of_int i)))
  in
  let families =
    [ "simq_batch_queries_total"; "simq_scan_candidates_total";
      "simq_scan_survivors_total"; "simq_scan_early_abandon_total" ]
  in
  let ref_totals = ref None in
  List.iter
    (fun (domains, pool) ->
      let totals =
        Metrics.with_enabled true (fun () ->
            Metrics.reset ();
            ignore (Kindex.range_batch ~pool ~spec index ~queries);
            ignore (Seqscan.range_batch ~pool ~spec d ~queries);
            List.map
              (fun f -> Metrics.counter_total (Metrics.counter f))
              families)
      in
      Alcotest.(check int)
        (Printf.sprintf "batch queries counted, domains=%d" domains)
        (2 * Array.length queries)
        (List.hd totals);
      match !ref_totals with
      | None -> ref_totals := Some totals
      | Some expected ->
        Alcotest.(check (list int))
          (Printf.sprintf "merged totals, domains=%d" domains)
          expected totals)
    pools

(* --- qlog size rotation ------------------------------------------------------ *)

let with_qlog_dir f =
  let dir = Filename.temp_file "simq_qlog" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "rot.qlog" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f -> if Sys.file_exists f then Sys.remove f)
        [ path; path ^ ".1" ];
      Unix.rmdir dir)
    (fun () -> f path)

let qlog_entry i =
  {
    Qlog.spec = Printf.sprintf "RANGE FROM r QUERY s%d EPS 2.5" i;
    digest = "0123456789ab";
    decision = None;
    path = Some "index";
    deltas = [];
    duration_s = 0.001;
    outcome = "ok";
    exit_code = 0;
    domains = 1;
    shards = None;
    trace_id = None;
  }

let read_lines file =
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in file in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !lines
  end

let test_qlog_rotation () =
  with_qlog_dir @@ fun path ->
  let entry = qlog_entry in
  let line_bytes = String.length (Qlog.render_line ~seq:0 (entry 0)) + 1 in
  (* A limit of two lines: every third write rotates. *)
  let log = Qlog.create ~max_bytes:(2 * line_bytes) path in
  let total = 10 in
  for i = 0 to total - 1 do
    Qlog.log log (entry i)
  done;
  Qlog.close log;
  let rotated = read_lines (path ^ ".1") in
  let live = read_lines path in
  Alcotest.(check bool) "rotation happened" true (rotated <> []);
  Alcotest.(check bool)
    "live file below the limit"
    true
    (List.length live <= 2);
  (* The surviving tail is contiguous: [path.1] holds the lines just
     before the live file's, and every line is valid JSON with the
     expected sequence numbers. *)
  let seqs =
    List.map
      (fun line ->
        match Simq_obs.Json.parse line with
        | Ok json -> (
          match Simq_obs.Json.member "seq" json with
          | Some (Simq_obs.Json.Num v) -> int_of_float v
          | _ -> Alcotest.failf "line without seq: %s" line)
        | Error msg -> Alcotest.failf "bad JSON after rotation: %s" msg)
      (rotated @ live)
  in
  let expected_start = total - List.length seqs in
  Alcotest.(check (list int))
    "contiguous tail of sequence numbers"
    (List.init (List.length seqs) (fun i -> expected_start + i))
    seqs;
  Alcotest.(check int) "all entries seen" total (Qlog.entries_seen log);
  Alcotest.(check int) "all lines written" total (Qlog.lines_written log)

(* Regression: rotation firing on the final pre-drain line leaves only
   [FILE.1] on disk (the replacement file is created lazily by the
   next write, and there is none). [rotated_chain] must return the
   lone rotation so qlog-top / batch --from-qlog still read a
   contiguous tail. *)
let test_qlog_rotation_on_final_line () =
  with_qlog_dir @@ fun path ->
  (* Every written line reaches the one-byte limit, so every write
     rotates — including the last one before close. *)
  let log = Qlog.create ~max_bytes:1 path in
  for i = 0 to 2 do
    Qlog.log log (qlog_entry i)
  done;
  Qlog.close log;
  Alcotest.(check bool)
    "the live file is absent after a final-line rotation" false
    (Sys.file_exists path);
  Alcotest.(check (list string))
    "rotated_chain returns the lone rotation"
    [ path ^ ".1" ]
    (Qlog.rotated_chain path);
  let seqs =
    List.map
      (fun line ->
        match Simq_obs.Json.parse line with
        | Ok json -> (
          match Simq_obs.Json.member "seq" json with
          | Some (Simq_obs.Json.Num v) -> int_of_float v
          | _ -> Alcotest.failf "line without seq: %s" line)
        | Error msg -> Alcotest.failf "bad JSON after rotation: %s" msg)
      (List.concat_map read_lines (Qlog.rotated_chain path))
  in
  Alcotest.(check (list int)) "the chain holds the final line" [ 2 ] seqs

let () =
  Alcotest.run "simq_batch"
    [
      ( "executor",
        [
          Alcotest.test_case "map order and values" `Quick
            test_map_order_and_values;
          Alcotest.test_case "map empty" `Quick test_map_empty;
          Alcotest.test_case "map_timed durations" `Quick
            test_map_timed_durations;
          Alcotest.test_case "profiles length validated" `Quick
            test_profiles_length_validation;
          Alcotest.test_case "profiles threaded per query" `Quick
            test_profiles_are_threaded;
          Alcotest.test_case "lowest-index exception wins" `Quick
            test_exception_propagates_lowest_index;
        ] );
      ( "equivalence",
        [ QCheck_alcotest.to_alcotest prop_profiled_batch_eq_sequential ]
        @ [
            Alcotest.test_case "metric totals domain-count-invariant" `Quick
              test_batch_metric_totals_invariant;
          ] );
      ( "qlog",
        [
          Alcotest.test_case "size rotation" `Quick test_qlog_rotation;
          Alcotest.test_case "rotation on the final line" `Quick
            test_qlog_rotation_on_final_line;
        ] );
    ]
