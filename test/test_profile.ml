(* The per-query profiling layer (Simq_obs.Profile / Qlog / Json):
   tree construction and rendering, the JSON grammar of both exports,
   deterministic query-log sampling, offline aggregation, and the
   stack-wide invariance guarantee — attaching a profile or a query log
   never changes answers, and the merged counter totals and the
   rendered tree (timings stripped) are identical at every domain
   count. *)

module Profile = Simq_obs.Profile
module Qlog = Simq_obs.Qlog
module Json = Simq_obs.Json
module Metrics = Simq_obs.Metrics
module Pool = Simq_parallel.Pool
module Generator = Simq_series.Generator
open Simq_tsindex

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || go (i + 1)
  in
  go 0

(* --- Json ------------------------------------------------------------- *)

let test_json_roundtrip_basics () =
  let cases =
    [
      Json.Null; Json.Bool true; Json.Bool false; Json.Num 0.;
      Json.Num 42.; Json.Num (-3.5); Json.Num 1e15; Json.Str "";
      Json.Str "plain"; Json.Str "esc \" \\ \n \t \r \b \012 done";
      Json.Str "unicode \xc3\xa9\xe2\x82\xac";
      Json.Arr []; Json.Arr [ Json.Num 1.; Json.Str "two"; Json.Null ];
      Json.Obj [];
      Json.Obj
        [ ("a", Json.Num 1.); ("b", Json.Arr [ Json.Bool false ]);
          ("nested", Json.Obj [ ("c", Json.Str "d") ]) ];
    ]
  in
  List.iter
    (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok v' ->
        Alcotest.(check bool)
          (Printf.sprintf "round trip %s" (Json.to_string v))
          true (v = v')
      | Error msg -> Alcotest.failf "%s did not parse: %s" (Json.to_string v) msg)
    cases

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S must not parse" s)
    [ ""; "{"; "[1,"; "tru"; "\"unterminated"; "{\"a\":}"; "1 2"; "nullx" ]

let json_gen =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun n -> Json.Num (float_of_int n)) (int_range (-1000000) 1000000);
        map (fun f -> Json.Num f) (float_bound_exclusive 1e6);
        map (fun s -> Json.Str s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 1 then scalar
          else
            oneof
              [
                scalar;
                map (fun l -> Json.Arr l) (list_size (int_range 0 4) (self (n / 2)));
                map
                  (fun l -> Json.Obj l)
                  (list_size (int_range 0 4)
                     (pair (string_size ~gen:printable (int_range 1 8)) (self (n / 2))));
              ])
        (min n 16))

let prop_json_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"Json.to_string/parse round trip"
    json_gen (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok v' -> v = v'
      | Error _ -> false)

(* --- Profile ---------------------------------------------------------- *)

let build_sample_profile () =
  let p = Profile.create () in
  let prof = Some p in
  let root = Profile.enter prof "planner" in
  Profile.set_detail root "index";
  let child = Profile.enter prof "kindex.range" in
  let grand = Profile.enter prof "kindex.descent" in
  Profile.add_pages grand 7;
  Profile.add_rows_out grand 3;
  Profile.leave prof grand;
  Profile.add_rows_in child 100;
  Profile.add_rows_out child 3;
  Profile.add_candidates child 3;
  Profile.add_survivors child 2;
  Profile.add_early_abandon child 1;
  Profile.add_event child "retry: attempt 1 abandoned";
  Profile.leave prof child;
  Profile.leave prof root;
  p

let test_profile_tree_shape () =
  let p = build_sample_profile () in
  Alcotest.(check bool) "well formed" true (Profile.well_formed p);
  (match Profile.roots p with
  | [ root ] ->
    Alcotest.(check string) "root name" "planner" (Profile.name root);
    Alcotest.(check string) "root detail" "index" (Profile.detail root);
    (match Profile.children root with
    | [ child ] ->
      Alcotest.(check int) "rows in" 100 (Profile.rows_in child);
      Alcotest.(check int) "survivors" 2 (Profile.survivors child);
      Alcotest.(check (list string))
        "events" [ "retry: attempt 1 abandoned" ]
        (Profile.events child)
    | _ -> Alcotest.fail "one child expected")
  | _ -> Alcotest.fail "one root expected");
  match Profile.find p "kindex.descent" with
  | Some n -> Alcotest.(check int) "found by name" 7 (Profile.pages n)
  | None -> Alcotest.fail "find must locate the grandchild"

let test_profile_render () =
  let p = build_sample_profile () in
  let text = Profile.render ~timings:false p in
  Alcotest.(check bool) "root line" true (contains text "-> planner [index]");
  Alcotest.(check bool)
    "child counters" true
    (contains text "rows_in=100" && contains text "survivors=2");
  Alcotest.(check bool) "event line" true
    (contains text "! retry: attempt 1 abandoned");
  Alcotest.(check bool) "no timings when stripped" false
    (contains text "time=");
  Alcotest.(check bool) "timings present by default" true
    (contains (Profile.render p) "time=")

let test_profile_json_parses () =
  let p = build_sample_profile () in
  match Json.parse (Json.to_string (Profile.to_json p)) with
  | Error msg -> Alcotest.failf "profile JSON did not parse: %s" msg
  | Ok v ->
    (match Json.member "event" v with
    | Some (Json.Str "simq.profile") -> ()
    | _ -> Alcotest.fail "profile JSON must be tagged simq.profile");
    (match Json.member "roots" v with
    | Some (Json.Arr [ root ]) ->
      Alcotest.(check (option string))
        "op" (Some "planner")
        (Option.bind (Json.member "op" root) Json.string_of)
    | _ -> Alcotest.fail "one root expected in JSON")

let test_profile_leave_pops_to_closing () =
  let p = Profile.create () in
  let prof = Some p in
  let outer = Profile.enter prof "outer" in
  let _inner = Profile.enter prof "inner" in
  (* An exception path that only runs the outer Fun.protect's leave:
     the dangling inner node must be closed on the way. *)
  Profile.leave prof outer;
  Alcotest.(check bool) "well formed after pop-until" true
    (Profile.well_formed p)

let test_profile_disabled_is_noop () =
  let n = Profile.enter None "never" in
  Alcotest.(check bool) "no node allocated" true (n = None);
  Profile.add_rows_in n 5;
  Profile.add_event n "nope";
  Profile.leave None n

let prop_profile_well_formed =
  (* Random enter/leave/counter scripts, always closed out at the end,
     must produce a well-formed tree with non-negative counters. *)
  QCheck2.Test.make ~count:200 ~name:"random profile scripts are well formed"
    QCheck2.Gen.(list_size (int_range 0 40) (int_range 0 7))
    (fun script ->
      let p = Profile.create () in
      let prof = Some p in
      let stack = ref [] in
      List.iter
        (fun op ->
          match op with
          | 0 | 1 ->
            stack := Profile.enter prof (Printf.sprintf "op%d" op) :: !stack
          | 2 -> (
            match !stack with
            | n :: rest ->
              Profile.leave prof n;
              stack := rest
            | [] -> ())
          | 3 -> (
            match !stack with
            | n :: _ -> Profile.add_rows_in n 2
            | [] -> ())
          | 4 -> (
            match !stack with
            | n :: _ -> Profile.add_pages n 1
            | [] -> ())
          | 5 -> (
            match !stack with
            | n :: _ -> Profile.add_event n "e"
            | [] -> ())
          | _ -> (
            match !stack with
            | n :: _ -> Profile.add_candidates n 3
            | [] -> ()))
        script;
      List.iter (fun n -> Profile.leave prof n) !stack;
      Profile.well_formed p)

(* --- Qlog ------------------------------------------------------------- *)

let sample_entry ?(duration_s = 0.004) ?(outcome = "ok") ?(exit_code = 0)
    ?shards () =
  {
    Qlog.spec = "range mavg7 eps=0.4";
    digest = "0123456789ab";
    decision = Some "admit";
    path = Some "index";
    deltas = [ ("simq_kindex_candidates_total", 12) ];
    duration_s;
    outcome;
    exit_code;
    domains = 2;
    shards;
    trace_id = Some 42;
  }

let test_qlog_line_grammar () =
  let line = Qlog.render_line ~seq:7 (sample_entry ()) in
  match Json.parse line with
  | Error msg -> Alcotest.failf "qlog line did not parse: %s" msg
  | Ok v ->
    let str f = Option.bind (Json.member f v) Json.string_of in
    let num f = Option.bind (Json.member f v) Json.number in
    Alcotest.(check (option string)) "event" (Some "simq.qlog") (str "event");
    Alcotest.(check (option string)) "spec" (Some "range mavg7 eps=0.4")
      (str "spec");
    Alcotest.(check (option string)) "decision" (Some "admit")
      (str "decision");
    Alcotest.(check (option (float 1e-9))) "seq" (Some 7.) (num "seq");
    Alcotest.(check (option (float 1e-9))) "duration" (Some 4.)
      (num "duration_ms");
    Alcotest.(check (option (float 1e-9))) "trace_id" (Some 42.)
      (num "trace_id");
    (match Json.member "deltas" v with
    | Some (Json.Obj [ ("simq_kindex_candidates_total", Json.Num 12.) ]) -> ()
    | _ -> Alcotest.fail "deltas object expected")

let prop_qlog_lines_parse =
  QCheck2.Test.make ~count:200 ~name:"every rendered qlog line is valid JSON"
    QCheck2.Gen.(
      pair
        (string_size ~gen:(char_range '\000' '\255') (int_range 0 30))
        (pair (option (string_size ~gen:printable (int_range 0 10)))
           (list_size (int_range 0 5)
              (pair (string_size ~gen:printable (int_range 0 12))
                 (int_range 0 100000)))))
    (fun (spec, (path, deltas)) ->
      let entry =
        {
          Qlog.spec;
          digest = "deadbeef0000";
          decision = None;
          path;
          deltas;
          duration_s = 0.123;
          outcome = "ok";
          exit_code = 0;
          domains = 4;
          shards = None;
          trace_id = None;
        }
      in
      match Json.parse (Qlog.render_line ~seq:3 entry) with
      | Ok v -> (
        match Json.member "spec" v with
        | Some (Json.Str s) -> s = spec
        | _ -> false)
      | Error _ -> false)

let test_qlog_sampling () =
  let file = Filename.temp_file "simq_qlog" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let t = Qlog.create ~sample:3 ~slow_ms:50. file in
      for i = 0 to 9 do
        (* Query 5 is slow: logged regardless of the 1-in-3 filter. *)
        let duration_s = if i = 5 then 0.2 else 0.001 in
        Qlog.log t (sample_entry ~duration_s ())
      done;
      Qlog.close t;
      Alcotest.(check int) "all offered" 10 (Qlog.entries_seen t);
      (* Kept: seq 0, 3, 6, 9 by sampling, plus slow seq 5. *)
      Alcotest.(check int) "sampled + slow" 5 (Qlog.lines_written t);
      Qlog.log t (sample_entry ());
      Alcotest.(check int) "log after close is a no-op" 10
        (Qlog.entries_seen t);
      let seqs =
        In_channel.with_open_text file In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> String.trim l <> "")
        |> List.map (fun l ->
               match Json.parse l with
               | Ok v ->
                 int_of_float
                   (Option.value ~default:(-1.)
                      (Option.bind (Json.member "seq" v) Json.number))
               | Error msg -> Alcotest.failf "unparseable line: %s" msg)
      in
      Alcotest.(check (list int))
        "deterministic kept sequence numbers" [ 0; 3; 5; 6; 9 ] seqs)

let test_qlog_counter_deltas () =
  let registry = Metrics.create_registry () in
  let a = Metrics.counter ~registry "test_qlog_a_total" in
  let b = Metrics.counter ~registry "test_qlog_b_total" in
  Metrics.with_enabled true (fun () ->
      Metrics.add a 5;
      let before = Metrics.snapshot ~registry () in
      Metrics.add a 3;
      ignore b;
      let after = Metrics.snapshot ~registry () in
      let deltas = Qlog.counter_deltas ~before ~after in
      Alcotest.(check (list (pair string int)))
        "only moved counters, positive deltas"
        [ ("test_qlog_a_total", 3) ]
        deltas;
      List.iter (fun (_, d) -> Alcotest.(check bool) "positive" true (d > 0))
        deltas)

let test_qlog_aggregate () =
  let mk seq spec path duration_ms pages =
    Qlog.render_line ~seq
      {
        Qlog.spec;
        digest = "d";
        decision = Some (if seq mod 2 = 0 then "admit" else "reject");
        path = Some path;
        deltas = [ ("simq_buffer_pool_misses_total", pages) ];
        duration_s = duration_ms /. 1000.;
        outcome = (if path = "scan" then "ok" else "ok");
        exit_code = 0;
        domains = 1;
        shards =
          (if path = "scan" then None
           else Some { Qlog.fanout = 2; pruned = 1; degraded = 0 });
        (* Line 0 predates the field: it must stay out of by_trace but
           rank with trace 0 in the duration table. *)
        trace_id = (if seq = 0 then None else Some (100 + seq));
      }
  in
  let lines =
    [
      mk 0 "q0" "index" 1. 10; mk 1 "q1" "scan" 9. 200; mk 2 "q2" "index" 3. 30;
      Json.to_string (Json.Obj [ ("event", Json.Str "other") ]);
    ]
  in
  let parsed =
    List.map
      (fun l ->
        match Json.parse l with
        | Ok v -> v
        | Error msg -> Alcotest.failf "fixture line: %s" msg)
      lines
  in
  let agg = Qlog.aggregate ~top:2 parsed in
  Alcotest.(check int) "entries (non-qlog skipped)" 3 agg.Qlog.entries;
  Alcotest.(check (list (pair string int)))
    "by path descending" [ ("index", 2); ("scan", 1) ] agg.Qlog.by_path;
  Alcotest.(check (list (pair int int)))
    "by fanout (unsharded lines stay out)" [ (2, 2) ] agg.Qlog.by_fanout;
  (match agg.Qlog.top_by_duration with
  | (1, "q1", _, 101) :: (2, "q2", _, 102) :: [] -> ()
  | _ -> Alcotest.fail "slowest first, top 2 kept, trace ids carried");
  Alcotest.(check (list int))
    "by trace: heaviest first, traceless lines out" [ 101; 102 ]
    (List.map fst agg.Qlog.by_trace);
  match agg.Qlog.top_by_pages with
  | (1, "q1", 200) :: (2, "q2", 30) :: [] -> ()
  | _ -> Alcotest.fail "pages ranked from buffer-pool deltas"

(* --- Stack-wide invariance ------------------------------------------- *)

(* The families whose per-chunk adds cover the input exactly once (the
   same set ablation_obs checks). *)
let families =
  [
    "simq_scan_candidates_total"; "simq_scan_survivors_total";
    "simq_scan_early_abandon_total"; "simq_kindex_candidates_total";
    "simq_kindex_survivors_total";
  ]

let test_profile_invariance_across_domains () =
  let batch = Generator.random_walks ~seed:1995 ~count:80 ~n:32 in
  let dataset = Dataset.of_series ~pool:Pool.sequential ~name:"inv" batch in
  let index = Kindex.build dataset in
  let queries = [ (batch.(0), 1.5); (batch.(3), 0.7); (batch.(7), 2.5) ] in
  let run_at domains ~profiled =
    let pool = Pool.create ~domains in
    let out =
      Metrics.with_enabled true (fun () ->
          Metrics.reset ();
          List.map
            (fun (q, eps) ->
              let profile = if profiled then Some (Profile.create ()) else None in
              let result =
                Planner.range_resilient ~pool ?profile index ~query:q
                  ~epsilon:eps
              in
              let answers =
                match result with
                | Ok r ->
                  List.map
                    (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d))
                    r.Planner.answers
                | Error _ -> Alcotest.fail "resilient range must succeed"
              in
              let tree =
                Option.map (Profile.render ~timings:false) profile
              in
              Option.iter
                (fun p ->
                  Alcotest.(check bool) "profile well formed" true
                    (Profile.well_formed p))
                profile;
              (answers, tree))
            queries)
    in
    let totals =
      List.map (fun name -> Metrics.counter_total (Metrics.counter name))
        families
    in
    Pool.shutdown pool;
    (out, totals)
  in
  let baseline_answers, baseline_totals = run_at 1 ~profiled:false in
  List.iter
    (fun domains ->
      let on, totals_on = run_at domains ~profiled:true in
      Alcotest.(check bool)
        (Printf.sprintf "answers identical, profile on, %d domains" domains)
        true
        (List.map fst on = List.map fst baseline_answers);
      Alcotest.(check (list int))
        (Printf.sprintf "merged totals identical at %d domains" domains)
        baseline_totals totals_on;
      (* The rendered tree, timings stripped, is domain-count
         independent. *)
      let reference = List.map snd (fst (run_at 1 ~profiled:true)) in
      Alcotest.(check bool)
        (Printf.sprintf "tree structure identical at %d domains" domains)
        true
        (List.map snd on = reference))
    [ 1; 2; 4 ]

let test_qlog_never_changes_answers () =
  let batch = Generator.random_walks ~seed:7 ~count:60 ~n:32 in
  let dataset = Dataset.of_series ~pool:Pool.sequential ~name:"inv" batch in
  let index = Kindex.build dataset in
  let query = batch.(2) and epsilon = 1.2 in
  let run () =
    match Planner.range_resilient index ~query ~epsilon with
    | Ok r ->
      List.map (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d))
        r.Planner.answers
    | Error _ -> Alcotest.fail "resilient range must succeed"
  in
  let off = run () in
  let file = Filename.temp_file "simq_qlog" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Qlog.install None;
      try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let t = Qlog.create file in
      Qlog.install (Some t);
      let on = Metrics.with_enabled true run in
      Qlog.close t;
      Alcotest.(check bool) "answers identical with ambient qlog" true
        (off = on);
      Alcotest.(check int) "one line per query" 1 (Qlog.lines_written t);
      let line = In_channel.with_open_text file In_channel.input_all in
      match Json.parse (String.trim line) with
      | Ok v ->
        Alcotest.(check (option string))
          "path logged" (Some "index")
          (Option.bind (Json.member "path" v) Json.string_of)
      | Error msg -> Alcotest.failf "ambient line unparseable: %s" msg)

let () =
  Alcotest.run "simq_profile"
    [
      ( "json",
        [
          Alcotest.test_case "round trip basics" `Quick
            test_json_roundtrip_basics;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
        ] );
      ( "profile",
        [
          Alcotest.test_case "tree shape and accessors" `Quick
            test_profile_tree_shape;
          Alcotest.test_case "render text tree" `Quick test_profile_render;
          Alcotest.test_case "JSON export parses" `Quick
            test_profile_json_parses;
          Alcotest.test_case "leave pops to the closing node" `Quick
            test_profile_leave_pops_to_closing;
          Alcotest.test_case "disabled path is a no-op" `Quick
            test_profile_disabled_is_noop;
          QCheck_alcotest.to_alcotest prop_profile_well_formed;
        ] );
      ( "qlog",
        [
          Alcotest.test_case "line grammar" `Quick test_qlog_line_grammar;
          Alcotest.test_case "deterministic sampling + slow threshold" `Quick
            test_qlog_sampling;
          Alcotest.test_case "counter deltas" `Quick test_qlog_counter_deltas;
          Alcotest.test_case "offline aggregation" `Quick test_qlog_aggregate;
          QCheck_alcotest.to_alcotest prop_qlog_lines_parse;
        ] );
      ( "invariance",
        [
          Alcotest.test_case "profile on/off across domains" `Quick
            test_profile_invariance_across_domains;
          Alcotest.test_case "ambient qlog never changes answers" `Quick
            test_qlog_never_changes_answers;
        ] );
    ]
