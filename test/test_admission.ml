(* Admission control (lib/admission) and its planner integration: the
   decision is a pure function of workload, budget and registry
   snapshot (identical at every domain count), an admitted run is
   bit-identical to an admission-off run, and a rejected query
   executes nothing — every execution-side counter family stays at
   zero. *)

module Admission = Simq_admission
module Metrics = Simq_obs.Metrics
module Budget = Simq_fault.Budget
module Error = Simq_fault.Error
module Pool = Simq_parallel.Pool
module Generator = Simq_series.Generator
open Simq_tsindex

let fresh_policy () =
  Admission.create ~registry:(Metrics.create_registry ()) ()

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || go (i + 1)
  in
  go 0

let workload ?(cardinality = 100) ?(pages = 13) ?(tree_size = 100)
    ?(tree_height = 2) ?(selectivity = 0.1) ?(sketch_levels = 0) () =
  {
    Admission.cardinality; pages; tree_size; tree_height; selectivity;
    sketch_levels;
  }

(* --- decision unit tests --------------------------------------------------- *)

let test_unlimited_budget_admits () =
  let t = fresh_policy () in
  List.iter
    (fun prefer ->
      match
        Admission.decide t (workload ()) ~prefer ~budget:Budget.unlimited
      with
      | Admission.Admit -> ()
      | d ->
        Alcotest.failf "unlimited budget must admit, got %s"
          (Admission.decision_name d))
    [ Admission.Scan_path; Admission.Index_path ]

let test_scan_rejection_is_exact () =
  let t = fresh_policy () in
  match
    Admission.decide t (workload ~cardinality:100 ())
      ~prefer:Admission.Scan_path
      ~budget:(Budget.create ~max_comparisons:50 ())
  with
  | Admission.Reject { resource; estimated; limit } ->
    Alcotest.(check string)
      "resource" "comparisons" (Error.resource_name resource);
    Alcotest.(check int) "estimated = cardinality (exact)" 100 estimated;
    Alcotest.(check int) "limit carried" 50 limit
  | d ->
    Alcotest.failf "expected a rejection, got %s" (Admission.decision_name d)

let test_index_degrades_to_fitting_scan () =
  let t = fresh_policy () in
  match
    Admission.decide t (workload ()) ~prefer:Admission.Index_path
      ~budget:
        (Budget.create ~max_node_accesses:0 ~max_comparisons:1000
           ~max_page_reads:1000 ())
  with
  | Admission.Degrade_to_scan -> ()
  | d ->
    Alcotest.failf "expected degrade_to_scan, got %s"
      (Admission.decision_name d)

let test_reject_when_no_path_fits () =
  let t = fresh_policy () in
  match
    Admission.decide t (workload ~cardinality:100 ())
      ~prefer:Admission.Index_path
      ~budget:(Budget.create ~max_node_accesses:0 ~max_page_reads:10 ())
  with
  | Admission.Reject { resource; _ } ->
    (* The reported reason is the scan's first violated resource: with
       no scan path left, page reads are checked before comparisons. *)
    Alcotest.(check string)
      "rejected on the scan's page reads" "page_reads"
      (Error.resource_name resource)
  | d ->
    Alcotest.failf "expected a rejection, got %s" (Admission.decision_name d)

let test_rejected_error_is_typed () =
  let reject =
    { Admission.resource = Error.Comparisons; estimated = 9; limit = 3 }
  in
  let e = Admission.error_of_reject reject in
  Alcotest.(check string) "kind" "rejected:comparisons" (Error.kind e);
  let msg = Error.to_string e in
  Alcotest.(check bool)
    "message mentions admission control" true
    (contains msg "admission control")

let test_deadline_prediction_needs_history () =
  let registry = Metrics.create_registry () in
  let t = Admission.create ~registry () in
  let tight = Budget.create ~deadline_s:0.002 () in
  (* No timer history: the deadline cannot be predicted, so the budget
     alone cannot reject. *)
  (match Admission.decide t (workload ()) ~prefer:Admission.Scan_path ~budget:tight with
  | Admission.Admit -> ()
  | d -> Alcotest.failf "no history must admit, got %s" (Admission.decision_name d));
  (* Eight observations around a second: the p95 bucket bound now
     dwarfs a 2 ms deadline. *)
  let h = Metrics.histogram ~registry "simq_timer_seconds" in
  Metrics.with_enabled true (fun () ->
      for _ = 1 to 8 do
        Metrics.observe h 1.0
      done);
  (match Admission.decide t (workload ()) ~prefer:Admission.Scan_path ~budget:tight with
  | Admission.Reject { resource; _ } ->
    Alcotest.(check string) "deadline rejection" "wall_clock"
      (Error.resource_name resource)
  | d -> Alcotest.failf "expected deadline rejection, got %s" (Admission.decision_name d));
  (* A roomy deadline still admits against the same history. *)
  match
    Admission.decide t (workload ()) ~prefer:Admission.Scan_path
      ~budget:(Budget.create ~deadline_s:3600. ())
  with
  | Admission.Admit -> ()
  | d -> Alcotest.failf "roomy deadline must admit, got %s" (Admission.decision_name d)

let test_calibration_is_clamped () =
  let registry = Metrics.create_registry () in
  let t = Admission.create ~registry () in
  let w = workload ~cardinality:1000 ~selectivity:0.01 () in
  let base = Admission.estimate t w in
  Alcotest.(check int)
    "uncalibrated index comparisons = 2 * sel * cardinality" 20
    base.Admission.index_comparisons;
  let est = Metrics.gauge ~registry "simq_planner_estimated_selectivity" in
  let act = Metrics.gauge ~registry "simq_planner_actual_selectivity" in
  Metrics.with_enabled true (fun () ->
      Metrics.set_gauge est 0.001;
      Metrics.set_gauge act 1.0);
  let calibrated = Admission.estimate t w in
  (* actual/estimated = 1000, clamped to 4. *)
  Alcotest.(check int)
    "calibration clamps at 4x" 80 calibrated.Admission.index_comparisons;
  let uncalibrated =
    Admission.estimate (Admission.create ~registry ~calibrate:false ()) w
  in
  Alcotest.(check int)
    "calibrate:false ignores the gauges" 20
    uncalibrated.Admission.index_comparisons

let test_headroom_scales_limits () =
  let t = Admission.create ~registry:(Metrics.create_registry ()) ~headroom:0.5 () in
  match
    Admission.decide t (workload ~cardinality:100 ())
      ~prefer:Admission.Scan_path
      ~budget:(Budget.create ~max_comparisons:150 ())
  with
  | Admission.Reject _ -> ()
  | d ->
    Alcotest.failf
      "headroom 0.5 must reject 100 comparisons against a 150 limit, got %s"
      (Admission.decision_name d)

(* --- planner integration --------------------------------------------------- *)

let dataset =
  Dataset.of_series ~pool:Pool.sequential ~name:"admission"
    (Generator.random_walks ~seed:420 ~count:48 ~n:32)

let index = Kindex.build dataset
let stats = Planner.collect ~samples:500 ~seed:421 dataset
let query = (Dataset.get dataset 0).Dataset.series

let starved_budget () =
  Budget.create ~max_page_reads:3 ~max_node_accesses:0 ()

let roomy_budget () =
  Budget.create ~max_page_reads:1000 ~max_comparisons:1000
    ~max_node_accesses:1000 ()

let run ?pool ?admission ~budget ~epsilon () =
  let counters = Planner.create_counters () in
  let outcome =
    Planner.range_resilient ?pool ~stats ~budget ?admission ~counters index
      ~query ~epsilon
  in
  (outcome, counters)

let sorted_ids answers =
  List.sort compare
    (List.map (fun ((e : Dataset.entry), _) -> e.Dataset.id) answers)

let test_rejection_before_any_execution () =
  let outcome, counters =
    Metrics.with_enabled true (fun () ->
        Metrics.reset ();
        run ~pool:Pool.sequential ~admission:(fresh_policy ())
          ~budget:(starved_budget ()) ~epsilon:2.0 ())
  in
  (match outcome with
  | Error (Error.Rejected _) -> ()
  | Error e -> Alcotest.failf "expected Rejected, got %s" (Error.kind e)
  | Ok _ -> Alcotest.fail "a starved budget must be rejected");
  Alcotest.(check int) "rejection counted" 1 counters.Planner.rejected;
  Alcotest.(check int) "not an execution failure" 0 counters.Planner.failures;
  Alcotest.(check int) "no index attempt" 0 counters.Planner.index_attempts;
  List.iter
    (fun family ->
      Alcotest.(check int)
        (family ^ " untouched")
        0
        (Metrics.counter_total (Metrics.counter family)))
    [
      "simq_buffer_pool_hits_total"; "simq_buffer_pool_misses_total";
      "simq_scan_candidates_total"; "simq_kindex_candidates_total";
      "simq_rtree_node_accesses_total";
    ]

let test_admitted_run_bit_identical_to_admission_off () =
  let budget = roomy_budget () in
  let off, _ = run ~pool:Pool.sequential ~budget ~epsilon:2.0 () in
  let on, _ =
    run ~pool:Pool.sequential ~admission:(fresh_policy ()) ~budget
      ~epsilon:2.0 ()
  in
  match (off, on) with
  | Ok a, Ok b ->
    Alcotest.(check bool) "decision recorded" true
      (b.Planner.admission = Some Admission.Admit
      || b.Planner.admission = Some Admission.Degrade_to_scan);
    Alcotest.(check (list int))
      "identical answer ids" (sorted_ids a.Planner.answers)
      (sorted_ids b.Planner.answers);
    Alcotest.(check bool) "identical distances" true
      (List.map snd a.Planner.answers = List.map snd b.Planner.answers)
  | _ -> Alcotest.fail "roomy budget must complete on both sides"

let test_decisions_identical_at_every_domain_count () =
  let epsilons = [ 0.5; 1.5; 3.0; 6.0 ] in
  let budgets =
    [ starved_budget (); roomy_budget ();
      Budget.create ~max_comparisons:6 () ]
  in
  let outcomes_at domains =
    let pool = Pool.create ~domains in
    let policy = fresh_policy () in
    let outcomes =
      List.concat_map
        (fun epsilon ->
          List.map
            (fun budget ->
              match run ~pool ~admission:policy ~budget ~epsilon () with
              | Ok r, _ ->
                ( Option.map Admission.decision_name r.Planner.admission,
                  Ok (sorted_ids r.Planner.answers) )
              | Error e, _ ->
                ((match e with Error.Rejected _ -> Some "reject" | _ -> None),
                 Result.Error (Error.kind e)))
            budgets)
        epsilons
    in
    Pool.shutdown pool;
    outcomes
  in
  let reference = outcomes_at 1 in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "decisions and outcomes at %d domains" domains)
        true
        (outcomes_at domains = reference))
    [ 2; 4 ]

let test_admission_decision_metric_counts () =
  let registry = Metrics.create_registry () in
  let policy = Admission.create ~registry () in
  Metrics.with_enabled true (fun () ->
      ignore
        (Admission.decide policy (workload ()) ~prefer:Admission.Scan_path
           ~budget:Budget.unlimited);
      ignore
        (Admission.decide policy
           (workload ~cardinality:100 ())
           ~prefer:Admission.Scan_path
           ~budget:(Budget.create ~max_comparisons:5 ())));
  let total d =
    Metrics.counter_total
      (Metrics.counter ~registry ~labels:[ ("decision", d) ]
         "simq_admission_decisions_total")
  in
  Alcotest.(check int) "admit counted" 1 (total "admit");
  Alcotest.(check int) "reject counted" 1 (total "reject");
  Alcotest.(check int) "degrade not counted" 0 (total "degrade_to_scan")

(* --- join integration ------------------------------------------------------ *)

(* The scan join's n (n - 1) / 2 comparison count is a catalogue fact:
   a comparison limit below it rejects before any series is
   materialised, a limit above it admits a run bit-identical to the
   admission-off scan. *)
let test_join_scan_admission () =
  let n = Dataset.cardinality dataset in
  let comparisons = n * (n - 1) / 2 in
  let epsilon = 2.0 in
  let plain = Join.scan_early_abandon ~pool:Pool.sequential index ~epsilon in
  (match
     Join.scan_checked ~pool:Pool.sequential
       ~budget:(Budget.create ~max_comparisons:(comparisons - 1) ())
       ~admission:(fresh_policy ())
       ~on_decision:(fun d ->
         Alcotest.(check string)
           "decision reported" "reject" (Admission.decision_name d))
       index ~epsilon
   with
  | Error (Error.Rejected _) -> ()
  | Error e -> Alcotest.failf "expected Rejected, got %s" (Error.kind e)
  | Ok _ -> Alcotest.fail "an over-cap join must be rejected");
  match
    Join.scan_checked ~pool:Pool.sequential
      ~budget:(Budget.create ~max_comparisons:comparisons ())
      ~admission:(fresh_policy ()) index ~epsilon
  with
  | Ok r ->
    Alcotest.(check bool) "pairs bit-identical" true
      (r.Join.pairs = plain.Join.pairs);
    Alcotest.(check int) "distance computations"
      plain.Join.distance_computations r.Join.distance_computations
  | Error e -> Alcotest.failf "a fitting join must run: %s" (Error.kind e)

let () =
  Alcotest.run "simq_admission"
    [
      ( "decide",
        [
          Alcotest.test_case "unlimited budget admits" `Quick
            test_unlimited_budget_admits;
          Alcotest.test_case "scan rejection is exact" `Quick
            test_scan_rejection_is_exact;
          Alcotest.test_case "index degrades to a fitting scan" `Quick
            test_index_degrades_to_fitting_scan;
          Alcotest.test_case "reject when no path fits" `Quick
            test_reject_when_no_path_fits;
          Alcotest.test_case "rejected error is typed" `Quick
            test_rejected_error_is_typed;
          Alcotest.test_case "deadline prediction needs history" `Quick
            test_deadline_prediction_needs_history;
          Alcotest.test_case "calibration is clamped" `Quick
            test_calibration_is_clamped;
          Alcotest.test_case "headroom scales limits" `Quick
            test_headroom_scales_limits;
        ] );
      ( "planner",
        [
          Alcotest.test_case "rejection before any execution" `Quick
            test_rejection_before_any_execution;
          Alcotest.test_case "admitted run bit-identical to admission-off"
            `Quick test_admitted_run_bit_identical_to_admission_off;
          Alcotest.test_case "decisions identical at every domain count"
            `Quick test_decisions_identical_at_every_domain_count;
          Alcotest.test_case "decision metric counts" `Quick
            test_admission_decision_metric_counts;
          Alcotest.test_case "join scan admission" `Quick
            test_join_scan_admission;
        ] );
    ]
