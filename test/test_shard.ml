(* The sharded scatter-gather layer (Simq_shard): sharded execution is
   invisible — range and NN answers bit-identical to the unsharded
   traversal under every Spec, shard count and domain count, with
   per-query counters and merged metric totals invariant in the domain
   count; catalogue pruning never drops a qualifying shard and a pruned
   shard executes nothing; a fault-tripped shard degrades to its own
   scan without losing the answer; per-shard admission decides
   identically at every domain count, one rejecting shard rejects the
   whole query with nothing executed, and an admitted run is
   bit-identical to an admission-off run. *)

module Pool = Simq_parallel.Pool
module Shard = Simq_shard
module Metrics = Simq_obs.Metrics
module Injector = Simq_fault.Injector
module Budget = Simq_fault.Budget
module Error = Simq_fault.Error
module Admission = Simq_admission
open Simq_tsindex
module Generator = Simq_series.Generator

let pools =
  [ (1, Pool.sequential); (2, Pool.create ~domains:2); (4, Pool.create ~domains:4) ]

let shard_counts = [ 1; 2; 7 ]

let dataset_of ~seed ~count ~n =
  Dataset.of_series ~pool:Pool.sequential ~name:"test"
    (Generator.random_walks ~seed ~count ~n)

let query_for dataset spec seed =
  let entries = Dataset.entries dataset in
  let base = entries.(seed mod Array.length entries) in
  let state = Random.State.make [| seed |] in
  let perturbed =
    Array.map
      (fun v -> v +. Random.State.float state 2. -. 1.)
      base.Dataset.series
  in
  match spec with
  | Spec.Warp m -> Simq_series.Warp.expand m perturbed
  | _ -> perturbed

let spec_of_index i =
  match i mod 5 with
  | 0 -> Spec.Identity
  | 1 -> Spec.Moving_average 3
  | 2 -> Spec.Moving_average 8
  | 3 -> Spec.Reverse
  | _ -> Spec.Warp 2

let pairs answers =
  List.map (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d)) answers

let ids answers =
  List.map (fun ((e : Dataset.entry), _) -> e.Dataset.id) answers

(* NN answers in canonical (distance, entry id) order, whatever order
   the compared traversal returned them in. *)
let canon answers =
  List.sort compare
    (List.map (fun ((e : Dataset.entry), d) -> (d, e.Dataset.id)) answers)

let fresh_policy () = Admission.create ~registry:(Metrics.create_registry ()) ()

(* Clustered sinusoid blocks, contiguous in id order (the partitioner's
   layout), so per-shard catalogue boxes separate and pruning has
   something to refuse. *)
let clustered_batch ~seed ~count ~n ~clusters =
  let state = Random.State.make [| seed |] in
  Array.init count (fun i ->
      let c = i * clusters / count in
      let freq = float_of_int ((c mod 3) + 1) in
      let use_cos = c / 3 mod 2 = 1 in
      let sign = if c / 6 mod 2 = 1 then -1. else 1. in
      Array.init n (fun t ->
          let a = 2. *. Float.pi *. freq *. float_of_int t /. float_of_int n in
          (sign *. 3. *. (if use_cos then cos a else sin a))
          +. Random.State.float state 0.2 -. 0.1))

let clustered_dataset ~clusters ~count ~n =
  Dataset.of_series ~pool:Pool.sequential ~name:"clustered"
    (clustered_batch ~seed:99 ~count ~n ~clusters)

(* --- sharded ≡ unsharded (QCheck, under Spec variation) --------------------- *)

let arb_setup =
  QCheck.make
    ~print:(fun (seed, eps, qseed) ->
      Printf.sprintf "seed=%d eps=%g qseed=%d" seed eps qseed)
    QCheck.Gen.(
      let* seed = int_range 0 1000 in
      let* eps = float_range 0.1 15. in
      let* qseed = int_range 0 1000 in
      return (seed, eps, qseed))

let shard_metric_families =
  [
    "simq_shard_queries_total"; "simq_shard_fanout_total";
    "simq_shard_pruned_total"; "simq_shard_degraded_total";
    "simq_kindex_candidates_total"; "simq_buffer_pool_hits_total";
    "simq_buffer_pool_misses_total";
  ]

let prop_sharded_eq_unsharded =
  QCheck.Test.make
    ~name:"sharded ≡ unsharded under Spec x K x domains; totals invariant"
    ~count:6 arb_setup (fun (seed, epsilon, qseed) ->
      let d = dataset_of ~seed ~count:60 ~n:32 in
      let spec = spec_of_index qseed in
      let query = query_for d spec qseed in
      let index = Kindex.build d in
      let expected = pairs (Kindex.range ~spec index ~query ~epsilon).Kindex.answers in
      let expected_nn = canon (Kindex.nearest ~spec index ~query ~k:5) in
      List.iter
        (fun shards ->
          let sh = Shard.create ~pool:Pool.sequential ~shards d in
          let counters = ref None and totals = ref None in
          List.iter
            (fun (domains, pool) ->
              let label fmt =
                Printf.ksprintf
                  (fun s -> Printf.sprintf "%s K=%d domains=%d" s shards domains)
                  fmt
              in
              let r = ref None in
              let run_totals =
                Metrics.with_enabled true (fun () ->
                    Metrics.reset ();
                    r := Some (Shard.range ~pool ~spec sh ~query ~epsilon);
                    List.map
                      (fun f -> Metrics.counter_total (Metrics.counter f))
                      shard_metric_families)
              in
              let r = Option.get !r in
              Alcotest.(check (list (pair int (float 0.))))
                (label "range answers") expected (pairs r.Shard.answers);
              let c =
                ( r.Shard.candidates, r.Shard.node_accesses,
                  r.Shard.report.Shard.fanout, r.Shard.report.Shard.pruned )
              in
              (match !counters with
              | None -> counters := Some c
              | Some expected ->
                Alcotest.(check (pair (pair int int) (pair int int)))
                  (label "counters domain-invariant")
                  ((let a, b, x, y = expected in ((a, b), (x, y))))
                  (let a, b, x, y = c in ((a, b), (x, y))));
              (match !totals with
              | None -> totals := Some run_totals
              | Some expected ->
                Alcotest.(check (list int))
                  (label "merged totals domain-invariant")
                  expected run_totals);
              let nn = Shard.nearest ~pool ~spec sh ~query ~k:5 in
              Alcotest.(check (list (pair (float 0.) int)))
                (label "nn answers") expected_nn (canon nn.Shard.neighbours);
              Alcotest.(check (list (pair (float 0.) int)))
                (label "nn canonical order")
                (canon nn.Shard.neighbours)
                (List.map
                   (fun ((e : Dataset.entry), dist) -> (dist, e.Dataset.id))
                   nn.Shard.neighbours);
              match
                Shard.range_checked ~pool ~spec sh ~query ~epsilon
              with
              | Ok rc ->
                Alcotest.(check (list (pair int (float 0.))))
                  (label "checked range ≡ plain") expected
                  (pairs rc.Shard.answers)
              | Error e ->
                Alcotest.failf "%s: unexpected error %s"
                  (label "checked range") (Error.kind e))
            pools)
        shard_counts;
      true)

(* --- catalogue pruning ------------------------------------------------------ *)

(* Lemma 1 conservatism at the shard catalogue: a shard whose own
   traversal finds answers must survive the probe. *)
let test_pruning_never_drops_a_qualifying_shard () =
  let clusters = 8 in
  let d = clustered_dataset ~clusters ~count:64 ~n:32 in
  let sh = Shard.create ~pool:Pool.sequential ~shards:clusters d in
  let state = Random.State.make [| 7 |] in
  List.iter
    (fun spec ->
      List.iter
        (fun epsilon ->
          for c = 0 to clusters - 1 do
            let base = (Dataset.get d (c * 8)).Dataset.series in
            let query =
              let p = Simq_workload.Queries.perturb state base ~amount:0.05 in
              match spec with
              | Spec.Warp m -> Simq_series.Warp.expand m p
              | _ -> p
            in
            let survivors = Shard.survivors ~spec sh ~query ~epsilon in
            for i = 0 to Shard.shards sh - 1 do
              let own =
                Kindex.range ~spec (Shard.shard_index sh i) ~query ~epsilon
              in
              if own.Kindex.answers <> [] then
                Alcotest.(check bool)
                  (Printf.sprintf
                     "cluster %d eps=%g shard %d holds answers, survives" c
                     epsilon i)
                  true survivors.(i)
            done
          done)
        [ 0.5; 2.0; 8.0 ])
    [ Spec.Identity; Spec.Moving_average 3 ]

let test_pruned_shards_execute_nothing () =
  let clusters = 8 in
  let d = clustered_dataset ~clusters ~count:64 ~n:32 in
  let sh = Shard.create ~pool:Pool.sequential ~shards:clusters d in
  let query =
    Simq_workload.Queries.perturb
      (Random.State.make [| 8 |])
      (Dataset.get d 0).Dataset.series ~amount:0.05
  in
  let epsilon = 0.5 in
  let survivors = Shard.survivors sh ~query ~epsilon in
  Alcotest.(check bool) "something is pruned" true
    (Array.exists not survivors);
  Metrics.with_enabled true (fun () ->
      Metrics.reset ();
      let r = Shard.range ~pool:Pool.sequential sh ~query ~epsilon in
      Alcotest.(check int) "report counts the pruned shards"
        (Array.length (Array.of_seq
           (Seq.filter not (Array.to_seq survivors))))
        r.Shard.report.Shard.pruned;
      Array.iteri
        (fun i alive ->
          let executed =
            Metrics.counter_total
              (Metrics.counter
                 ~labels:[ ("shard", string_of_int i) ]
                 "simq_shard_executed_total")
          in
          Alcotest.(check int)
            (Printf.sprintf "shard %d executed counter" i)
            (if alive then 1 else 0)
            executed)
        survivors)

(* --- degradation ------------------------------------------------------------ *)

(* An always-firing node-access injector on one shard's tree: its index
   path cannot run, so the checked scatter answers that shard through
   its own scan — that shard only, and the answer ids are still exact
   (the scan's distance accumulation differs from the traversal's only
   in the last ulp). *)
let with_faulty_shard sh i f =
  let tree = Kindex.tree (Shard.shard_index sh i) in
  let injector =
    Injector.create
      ~node_accesses:(Injector.transient ~probability:1. ())
      ~seed:4242 ()
  in
  Simq_rtree.Rstar.set_injector tree (Some injector);
  Fun.protect ~finally:(fun () -> Simq_rtree.Rstar.set_injector tree None) f

let test_degraded_shard_still_exact () =
  let d = dataset_of ~seed:31 ~count:60 ~n:32 in
  let index = Kindex.build d in
  let query = query_for d Spec.Identity 31 in
  let epsilon = 12.0 in
  let expected = Kindex.range index ~query ~epsilon in
  let sh = Shard.create ~pool:Pool.sequential ~shards:4 d in
  with_faulty_shard sh 1 (fun () ->
      List.iter
        (fun (domains, pool) ->
          match Shard.range_checked ~pool sh ~query ~epsilon with
          | Ok r ->
            Alcotest.(check (list int))
              (Printf.sprintf "range ids domains=%d" domains)
              (ids expected.Kindex.answers)
              (ids r.Shard.answers);
            List.iter2
              (fun (_, a) (_, b) ->
                Alcotest.(check (float 1e-9))
                  (Printf.sprintf "range distance domains=%d" domains)
                  a b)
              (pairs expected.Kindex.answers)
              (pairs r.Shard.answers);
            Alcotest.(check int)
              (Printf.sprintf "one degraded shard domains=%d" domains)
              1 r.Shard.report.Shard.degraded;
            Alcotest.(check int)
              (Printf.sprintf "full fanout domains=%d" domains)
              4 r.Shard.report.Shard.fanout
          | Error e ->
            Alcotest.failf "domains=%d: degraded query failed: %s" domains
              (Error.kind e))
        pools)

(* The NN traversal's degradation path is admission-driven (its
   best-first loop charges the budget itself rather than consulting the
   tree injector): a zero node-access budget sends every shard to the
   exact linear selection, and the merge must still be the unsharded
   answer. *)
let test_degraded_shard_nearest_still_exact () =
  let d = dataset_of ~seed:32 ~count:60 ~n:32 in
  let index = Kindex.build d in
  let query = query_for d Spec.Identity 32 in
  let expected = canon (Kindex.nearest index ~query ~k:5) in
  let sh = Shard.create ~pool:Pool.sequential ~shards:4 d in
  List.iter
    (fun (domains, pool) ->
      match
        Shard.nearest_checked ~pool
          ~budget:(Budget.create ~max_node_accesses:0 ())
          ~admission:(fresh_policy ()) sh ~query ~k:5
      with
      | Ok r ->
        Alcotest.(check (list int))
          (Printf.sprintf "nn ids domains=%d" domains)
          (List.map snd expected)
          (List.map snd (canon r.Shard.neighbours));
        List.iter2
          (fun (a, _) (b, _) ->
            Alcotest.(check (float 1e-9))
              (Printf.sprintf "nn distance domains=%d" domains)
              a b)
          expected
          (canon r.Shard.neighbours);
        Alcotest.(check int)
          (Printf.sprintf "every shard degraded domains=%d" domains)
          (Shard.shards sh) r.Shard.nearest_report.Shard.degraded;
        Alcotest.(check int)
          (Printf.sprintf "full fanout domains=%d" domains)
          (Shard.shards sh) r.Shard.nearest_report.Shard.fanout
      | Error e ->
        Alcotest.failf "domains=%d: degraded NN failed: %s" domains
          (Error.kind e))
    pools

(* --- NN gather ties --------------------------------------------------------- *)

(* Exact distance collisions at the k boundary, across shard
   boundaries: three bit-identical series land in different shards, so
   the 2-NN answer must pick the same two of them everywhere. The
   best-first traversal (heap tie order), the sharded canonical
   (distance, id) gather and the degraded linear selection all have to
   agree on the smallest tied ids. *)
let test_nn_gather_ties_canonical () =
  let n = 16 in
  let base = Array.init n (fun t -> 3. *. sin (float_of_int t /. 2.)) in
  let filler i =
    Array.init n (fun t ->
        cos (float_of_int (t * (i + 2)) /. 3.) +. (2. *. float_of_int i) +. 8.)
  in
  let series =
    Array.init 8 (fun i ->
        match i with 1 | 5 | 6 -> Array.copy base | _ -> filler i)
  in
  let d = Dataset.of_series ~pool:Pool.sequential ~name:"ties" series in
  let index = Kindex.build d in
  let query =
    Array.mapi
      (fun t v -> v +. if t mod 2 = 0 then 0.01 else -0.01)
      base
  in
  let k = 2 in
  let scan =
    match Kindex.nearest_scan index ~query ~k with
    | Ok answers -> answers
    | Error e -> Alcotest.failf "nearest_scan failed: %s" (Error.kind e)
  in
  Alcotest.(check (list int))
    "scan breaks the tie on the smallest ids" [ 1; 5 ] (ids scan);
  Alcotest.(check (list (pair (float 0.) int)))
    "tree traversal agrees with the scan tie set" (canon scan)
    (canon (Kindex.nearest index ~query ~k));
  List.iter
    (fun shards ->
      let sh = Shard.create ~pool:Pool.sequential ~shards d in
      List.iter
        (fun (domains, pool) ->
          let label s = Printf.sprintf "%s K=%d domains=%d" s shards domains in
          let nn = Shard.nearest ~pool sh ~query ~k in
          Alcotest.(check (list (pair (float 0.) int)))
            (label "sharded gather agrees on the tie set")
            (canon scan) (canon nn.Shard.neighbours);
          match
            Shard.nearest_checked ~pool
              ~budget:(Budget.create ~max_node_accesses:0 ())
              ~admission:(fresh_policy ()) sh ~query ~k
          with
          | Ok r ->
            Alcotest.(check (list int))
              (label "degraded scan fallback agrees on the tied ids")
              (ids scan)
              (List.map snd (canon r.Shard.neighbours))
          | Error e ->
            Alcotest.failf "%s: degraded NN failed: %s"
              (label "degraded") (Error.kind e))
        pools)
    [ 2; 4 ]

(* --- per-shard admission ---------------------------------------------------- *)

let starved_budget () = Budget.create ~max_page_reads:0 ~max_node_accesses:0 ()
let degrade_budget () = Budget.create ~max_node_accesses:0 ()

let roomy_budget () =
  Budget.create ~max_page_reads:100_000 ~max_comparisons:100_000
    ~max_node_accesses:100_000 ()

let test_one_rejecting_shard_rejects_everything () =
  let d = dataset_of ~seed:33 ~count:60 ~n:32 in
  let sh = Shard.create ~pool:Pool.sequential ~shards:4 d in
  let query = query_for d Spec.Identity 33 in
  Metrics.with_enabled true (fun () ->
      Metrics.reset ();
      (match
         Shard.range_checked ~pool:Pool.sequential
           ~budget:(starved_budget ())
           ~admission:(fresh_policy ()) sh ~query ~epsilon:8.0
       with
      | Error (Error.Rejected _) -> ()
      | Error e -> Alcotest.failf "expected Rejected, got %s" (Error.kind e)
      | Ok _ -> Alcotest.fail "a starved budget must be rejected");
      List.iter
        (fun family ->
          Alcotest.(check int)
            (family ^ " untouched")
            0
            (Metrics.counter_total (Metrics.counter family)))
        [
          "simq_shard_queries_total"; "simq_shard_fanout_total";
          "simq_buffer_pool_hits_total"; "simq_buffer_pool_misses_total";
          "simq_kindex_candidates_total"; "simq_rtree_node_accesses_total";
        ];
      Array.iteri
        (fun i _ ->
          Alcotest.(check int)
            (Printf.sprintf "shard %d never executed" i)
            0
            (Metrics.counter_total
               (Metrics.counter
                  ~labels:[ ("shard", string_of_int i) ]
                  "simq_shard_executed_total")))
        (Array.make (Shard.shards sh) ()))

let test_admission_decisions_identical_at_every_domain_count () =
  let d = dataset_of ~seed:34 ~count:60 ~n:32 in
  let sh = Shard.create ~pool:Pool.sequential ~shards:4 d in
  let query = query_for d Spec.Identity 34 in
  let budgets =
    [ starved_budget (); degrade_budget (); roomy_budget () ]
  in
  let outcomes_at (_, pool) =
    let policy = fresh_policy () in
    List.concat_map
      (fun budget ->
        let decisions = ref [] in
        let outcome =
          match
            Shard.range_checked ~pool ~budget ~admission:policy
              ~on_decision:(fun dec ->
                decisions := Admission.decision_name dec :: !decisions)
              sh ~query ~epsilon:8.0
          with
          | Ok r -> Ok (pairs r.Shard.answers, r.Shard.report.Shard.degraded)
          | Error e -> Result.Error (Error.kind e)
        in
        [ (List.rev !decisions, outcome) ])
      budgets
  in
  let reference = outcomes_at (List.hd pools) in
  List.iter
    (fun (domains, _ as p) ->
      Alcotest.(check bool)
        (Printf.sprintf "decisions and outcomes at %d domains" domains)
        true
        (outcomes_at p = reference))
    (List.tl pools)

let test_admitted_run_bit_identical_to_admission_off () =
  let d = dataset_of ~seed:35 ~count:60 ~n:32 in
  let sh = Shard.create ~pool:Pool.sequential ~shards:4 d in
  let query = query_for d Spec.Identity 35 in
  let plain = Shard.range ~pool:Pool.sequential sh ~query ~epsilon:8.0 in
  match
    Shard.range_checked ~pool:Pool.sequential ~budget:(roomy_budget ())
      ~admission:(fresh_policy ()) sh ~query ~epsilon:8.0
  with
  | Ok r ->
    Alcotest.(check (list (pair int (float 0.))))
      "answers bit-identical" (pairs plain.Shard.answers)
      (pairs r.Shard.answers);
    Alcotest.(check int) "candidates" plain.Shard.candidates r.Shard.candidates;
    Alcotest.(check int) "node accesses" plain.Shard.node_accesses
      r.Shard.node_accesses;
    Alcotest.(check int) "nothing degraded" 0 r.Shard.report.Shard.degraded
  | Error e -> Alcotest.failf "roomy budget must complete: %s" (Error.kind e)

let () =
  Alcotest.run "simq_shard"
    [
      ( "equivalence",
        [ QCheck_alcotest.to_alcotest prop_sharded_eq_unsharded ] );
      ( "pruning",
        [
          Alcotest.test_case "never drops a qualifying shard" `Quick
            test_pruning_never_drops_a_qualifying_shard;
          Alcotest.test_case "pruned shards execute nothing" `Quick
            test_pruned_shards_execute_nothing;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "degraded shard still exact (range)" `Quick
            test_degraded_shard_still_exact;
          Alcotest.test_case "degraded shard still exact (nearest)" `Quick
            test_degraded_shard_nearest_still_exact;
          Alcotest.test_case "nn gather ties are canonical" `Quick
            test_nn_gather_ties_canonical;
        ] );
      ( "admission",
        [
          Alcotest.test_case "one rejecting shard rejects everything" `Quick
            test_one_rejecting_shard_rejects_everything;
          Alcotest.test_case "decisions identical at every domain count"
            `Quick test_admission_decisions_identical_at_every_domain_count;
          Alcotest.test_case "admitted run bit-identical to admission-off"
            `Quick test_admitted_run_bit_identical_to_admission_off;
        ] );
    ]
