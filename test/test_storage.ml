open Simq_storage

(* --- Io_stats ----------------------------------------------------------- *)

let test_io_stats () =
  let s = Io_stats.create () in
  Io_stats.record_page_read s;
  Io_stats.record_page_read s;
  Io_stats.record_page_write s;
  Io_stats.record_cache_hit s;
  Alcotest.(check int) "reads" 2 (Io_stats.page_reads s);
  Alcotest.(check int) "writes" 1 (Io_stats.page_writes s);
  Alcotest.(check int) "hits" 1 (Io_stats.cache_hits s);
  Io_stats.reset s;
  Alcotest.(check int) "reset" 0 (Io_stats.page_reads s)

(* --- Buffer_pool ---------------------------------------------------------- *)

let test_pool_hit_miss () =
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create ~capacity:2 ~stats in
  Alcotest.(check bool) "first is miss" true (Buffer_pool.touch pool 1 = `Miss);
  Alcotest.(check bool) "second touch is hit" true (Buffer_pool.touch pool 1 = `Hit);
  ignore (Buffer_pool.touch pool 2);
  Alcotest.(check int) "resident" 2 (Buffer_pool.resident pool);
  (* Page 3 evicts the LRU page 1. *)
  ignore (Buffer_pool.touch pool 3);
  Alcotest.(check bool) "page 1 evicted" true (Buffer_pool.touch pool 1 = `Miss);
  Alcotest.(check int) "misses counted" 4 (Io_stats.page_reads stats)

let test_pool_lru_order () =
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create ~capacity:2 ~stats in
  ignore (Buffer_pool.touch pool 1);
  ignore (Buffer_pool.touch pool 2);
  ignore (Buffer_pool.touch pool 1);
  (* Now 2 is the LRU; touching 3 evicts it. *)
  ignore (Buffer_pool.touch pool 3);
  Alcotest.(check bool) "1 still resident" true (Buffer_pool.touch pool 1 = `Hit);
  Alcotest.(check bool) "2 evicted" true (Buffer_pool.touch pool 2 = `Miss)

let test_pool_flush () =
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create ~capacity:4 ~stats in
  ignore (Buffer_pool.touch pool 7);
  Buffer_pool.flush pool;
  Alcotest.(check int) "empty" 0 (Buffer_pool.resident pool);
  Alcotest.(check bool) "re-read is miss" true (Buffer_pool.touch pool 7 = `Miss)

let test_pool_flush_keeps_counters () =
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create ~capacity:3 ~stats in
  ignore (Buffer_pool.touch pool 1);
  ignore (Buffer_pool.touch pool 1);
  ignore (Buffer_pool.touch pool 2);
  Buffer_pool.flush pool;
  Alcotest.(check int) "reads survive flush" 2 (Io_stats.page_reads stats);
  Alcotest.(check int) "hits survive flush" 1 (Io_stats.cache_hits stats);
  (* A second flush of an already-empty pool is a no-op. *)
  Buffer_pool.flush pool;
  Alcotest.(check int) "still empty" 0 (Buffer_pool.resident pool);
  ignore (Buffer_pool.touch pool 2);
  Alcotest.(check int) "post-flush miss accumulates" 3
    (Io_stats.page_reads stats)

let test_pool_capacity_one () =
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create ~capacity:1 ~stats in
  Alcotest.(check bool) "first miss" true (Buffer_pool.touch pool 1 = `Miss);
  Alcotest.(check bool) "re-touch hits" true (Buffer_pool.touch pool 1 = `Hit);
  (* Every new page evicts the only resident one. *)
  Alcotest.(check bool) "2 misses" true (Buffer_pool.touch pool 2 = `Miss);
  Alcotest.(check int) "never more than one resident" 1
    (Buffer_pool.resident pool);
  Alcotest.(check bool) "1 was evicted" true (Buffer_pool.touch pool 1 = `Miss);
  Alcotest.(check bool) "2 was evicted in turn" true
    (Buffer_pool.touch pool 2 = `Miss);
  Alcotest.(check int) "resident stays 1" 1 (Buffer_pool.resident pool);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Buffer_pool.create: capacity") (fun () ->
      ignore (Buffer_pool.create ~capacity:0 ~stats))

let test_pool_retouch_eviction_victim () =
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create ~capacity:2 ~stats in
  ignore (Buffer_pool.touch pool 1);
  ignore (Buffer_pool.touch pool 2);
  (* 3 evicts the LRU page 1; re-touching the victim must reload it (a
     miss) and evict 2, the new LRU — not resurrect stale residency. *)
  ignore (Buffer_pool.touch pool 3);
  Alcotest.(check bool) "victim reloads as miss" true
    (Buffer_pool.touch pool 1 = `Miss);
  Alcotest.(check bool) "3 survived" true (Buffer_pool.touch pool 3 = `Hit);
  Alcotest.(check bool) "2 was the next victim" true
    (Buffer_pool.touch pool 2 = `Miss);
  Alcotest.(check int) "capacity respected" 2 (Buffer_pool.resident pool)

(* --- Relation -------------------------------------------------------------- *)

let sample_batch n length =
  Simq_series.Generator.random_walks ~seed:5 ~count:n ~n:length

let test_relation_insert_get () =
  let r = Relation.create ~name:"stocks" () in
  let t1 = Relation.insert r ~name:"AAA" [| 1.; 2.; 3. |] in
  let t2 = Relation.insert r ~name:"BBB" [| 4.; 5.; 6. |] in
  Alcotest.(check int) "ids dense" 0 t1.Relation.id;
  Alcotest.(check int) "ids dense" 1 t2.Relation.id;
  Alcotest.(check int) "cardinality" 2 (Relation.cardinality r);
  let fetched = Relation.get r 1 in
  Alcotest.(check string) "name" "BBB" fetched.Relation.name;
  Alcotest.check_raises "unknown id" Not_found (fun () ->
      ignore (Relation.get r 5))

let test_relation_rejects_bad_series () =
  let r = Relation.create ~name:"bad" () in
  Alcotest.check_raises "empty series"
    (Invalid_argument "Series.validate: empty series") (fun () ->
      ignore (Relation.insert r ~name:"x" [||]))

let test_relation_scan_counts_pages () =
  (* 100 series of 128 floats: each tuple is 1056 bytes, so a 4096-byte
     page holds ~3; a full scan reads every page exactly once through
     the pool. *)
  let r = Relation.of_series ~name:"walks" (sample_batch 100 128) in
  let pages = Relation.pages r in
  Alcotest.(check bool) "plausible page count" true (pages >= 25 && pages <= 35);
  Io_stats.reset (Relation.stats r);
  let seen = Relation.fold r ~init:0 ~f:(fun acc _ -> acc + 1) in
  Alcotest.(check int) "all tuples" 100 seen;
  Alcotest.(check int) "page reads = pages" pages
    (Io_stats.page_reads (Relation.stats r))

let test_relation_repeated_scan_hits_cache () =
  let r =
    Relation.create ~name:"small" ~page_size:4096 ~pool_pages:64 ()
  in
  Array.iter
    (fun s -> ignore (Relation.insert r ~name:"w" s))
    (sample_batch 10 64);
  Io_stats.reset (Relation.stats r);
  Relation.iter r ~f:(fun _ -> ());
  let first_scan = Io_stats.page_reads (Relation.stats r) in
  Relation.iter r ~f:(fun _ -> ());
  Alcotest.(check int) "second scan free (fits in pool)" first_scan
    (Io_stats.page_reads (Relation.stats r))

let test_relation_save_load () =
  let r = Relation.of_series ~name:"persisted" (sample_batch 20 32) in
  let path = Filename.temp_file "simq" ".rel" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Relation.save r path;
      let r' = Relation.load path in
      Alcotest.(check string) "name" "persisted" (Relation.name r');
      Alcotest.(check int) "cardinality" 20 (Relation.cardinality r');
      let orig = Relation.to_array r and copy = Relation.to_array r' in
      Array.iteri
        (fun idx (t : Relation.tuple) ->
          Alcotest.(check bool) "same data" true
            (Simq_series.Series.equal t.Relation.data copy.(idx).Relation.data))
        orig)

let test_relation_to_array_and_iter_agree () =
  let r = Relation.of_series ~name:"x" (sample_batch 7 16) in
  let via_iter = ref [] in
  Relation.iter r ~f:(fun t -> via_iter := t.Relation.id :: !via_iter);
  let ids = Array.to_list (Array.map (fun (t : Relation.tuple) -> t.Relation.id) (Relation.to_array r)) in
  Alcotest.(check (list int)) "ids in order" ids (List.rev !via_iter)

(* --- Csv -------------------------------------------------------------------- *)

let test_csv_roundtrip () =
  let r = Relation.of_series ~name:"csv" (sample_batch 15 24) in
  let path = Filename.temp_file "simq" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.export r path;
      let r' = Csv.import ~name:"csv" path in
      Alcotest.(check int) "cardinality" 15 (Relation.cardinality r');
      Array.iteri
        (fun idx (t : Relation.tuple) ->
          let t' = Relation.get r' idx in
          Alcotest.(check string) "name" t.Relation.name t'.Relation.name;
          Alcotest.(check bool) "data" true
            (Simq_series.Series.equal ~eps:1e-12 t.Relation.data t'.Relation.data))
        (Relation.to_array r))

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc contents)

let test_csv_import_errors () =
  let path = Filename.temp_file "simq" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path "a,1,2,3\nb,4,5\n";
      (try
         ignore (Csv.import ~name:"bad" path);
         Alcotest.fail "expected column mismatch"
       with Failure msg ->
         Alcotest.(check bool) "mentions line" true
           (String.length msg > 0
           && String.equal msg "Csv.import: line 2 has 2 values, expected 3"));
      write_file path "a,1,oops\n";
      (try
         ignore (Csv.import ~name:"bad" path);
         Alcotest.fail "expected bad number"
       with Failure msg ->
         Alcotest.(check string) "bad number message"
           "Csv.import: line 1: bad number \"oops\"" msg
         |> ignore);
      write_file path "\n\n";
      try
        ignore (Csv.import ~name:"bad" path);
        Alcotest.fail "expected empty error"
      with Failure msg ->
        Alcotest.(check string) "empty" "Csv.import: no series found" msg)

let test_csv_blank_lines_skipped () =
  let path = Filename.temp_file "simq" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path "a,1,2\n\nb,3,4\n";
      let r = Csv.import ~name:"ok" path in
      Alcotest.(check int) "two series" 2 (Relation.cardinality r))

let test_csv_crlf () =
  let path = Filename.temp_file "simq" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* A Windows-written file: CRLF terminators, including a blank
         CRLF line and a final line without a terminator. *)
      write_file path "a,1,2\r\n\r\nb,3,4\r\nc,5,6";
      let r = Csv.import ~name:"crlf" path in
      Alcotest.(check int) "three series" 3 (Relation.cardinality r);
      let t = Relation.get r 1 in
      Alcotest.(check string) "name unpolluted" "b" t.Relation.name;
      Alcotest.(check bool) "values parse past the CR" true
        (Simq_series.Series.equal ~eps:0. t.Relation.data [| 3.; 4. |]))

let test_csv_rejects_non_finite () =
  let path = Filename.temp_file "simq" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* nan/inf parse as floats but poison every distance downstream;
         import must refuse them with the offending line number. *)
      write_file path "a,1,2\nb,nan,4\n";
      (try
         ignore (Csv.import ~name:"bad" path);
         Alcotest.fail "expected nan rejection"
       with Failure msg ->
         Alcotest.(check string) "nan message"
           "Csv.import: line 2: non-finite value \"nan\"" msg);
      write_file path "a,1,inf\n";
      try
        ignore (Csv.import ~name:"bad" path);
        Alcotest.fail "expected inf rejection"
      with Failure msg ->
        Alcotest.(check string) "inf message"
          "Csv.import: line 1: non-finite value \"inf\"" msg)

let () =
  Alcotest.run "simq_storage"
    [
      ("io_stats", [ Alcotest.test_case "counters" `Quick test_io_stats ]);
      ( "buffer_pool",
        [
          Alcotest.test_case "hit/miss" `Quick test_pool_hit_miss;
          Alcotest.test_case "lru order" `Quick test_pool_lru_order;
          Alcotest.test_case "flush" `Quick test_pool_flush;
          Alcotest.test_case "flush keeps counters" `Quick
            test_pool_flush_keeps_counters;
          Alcotest.test_case "capacity one" `Quick test_pool_capacity_one;
          Alcotest.test_case "re-touch eviction victim" `Quick
            test_pool_retouch_eviction_victim;
        ] );
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "import errors" `Quick test_csv_import_errors;
          Alcotest.test_case "blank lines skipped" `Quick
            test_csv_blank_lines_skipped;
          Alcotest.test_case "crlf terminators" `Quick test_csv_crlf;
          Alcotest.test_case "rejects non-finite values" `Quick
            test_csv_rejects_non_finite;
        ] );
      ( "relation",
        [
          Alcotest.test_case "insert/get" `Quick test_relation_insert_get;
          Alcotest.test_case "rejects bad series" `Quick
            test_relation_rejects_bad_series;
          Alcotest.test_case "scan counts pages" `Quick
            test_relation_scan_counts_pages;
          Alcotest.test_case "repeated scan hits cache" `Quick
            test_relation_repeated_scan_hits_cache;
          Alcotest.test_case "save/load" `Quick test_relation_save_load;
          Alcotest.test_case "iteration order" `Quick
            test_relation_to_array_and_iter_agree;
        ] );
    ]
