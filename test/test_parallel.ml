(* The domain pool (lib/parallel) and the parallel ≡ sequential
   equivalence the execution layer promises: every parallel variant
   must return bit-identical answers and identical counters to the
   sequential path, under every Spec and both coordinate
   representations (the Lemma 1 invariant must not bend under
   parallelism). *)

module Pool = Simq_parallel.Pool
open Simq_tsindex
module Generator = Simq_series.Generator

(* Shared pools: spawning domains per test case would dominate the
   suite's runtime. Degree 1 must behave exactly like inline code. *)
let pools = [ (1, Pool.sequential); (2, Pool.create ~domains:2); (4, Pool.create ~domains:4) ]
let pool_of n = List.assoc n pools

(* --- Pool unit tests -------------------------------------------------------- *)

let test_map_array_matches_sequential () =
  let arr = Array.init 103 (fun i -> i) in
  let f i = (i * i) + 1 in
  let expected = Array.map f arr in
  List.iter
    (fun (d, pool) ->
      List.iter
        (fun chunk ->
          Alcotest.(check (array int))
            (Printf.sprintf "domains=%d chunk=%d" d chunk)
            expected
            (Pool.map_array ~pool ~chunk f arr))
        [ 1; 7; 64; 1000 ])
    pools

let test_empty_and_singleton () =
  List.iter
    (fun (d, pool) ->
      Alcotest.(check (array int))
        (Printf.sprintf "empty, domains=%d" d)
        [||]
        (Pool.map_array ~pool (fun x -> x + 1) [||]);
      Alcotest.(check (array int))
        (Printf.sprintf "singleton, domains=%d" d)
        [| 42 |]
        (Pool.map_array ~pool ~chunk:5 (fun x -> x + 41) [| 1 |]);
      Alcotest.(check (list int))
        (Printf.sprintf "map_chunks n=0, domains=%d" d)
        []
        (Pool.map_chunks ~pool ~chunk:4 ~n:0 (fun ~lo ~hi -> lo + hi)))
    pools

let test_chunked_iter_covers_exactly_once () =
  List.iter
    (fun (d, pool) ->
      List.iter
        (fun (n, chunk) ->
          let seen = Array.make n 0 in
          Pool.chunked_iter ~pool ~chunk ~n (fun ~lo ~hi ->
              for i = lo to hi - 1 do
                seen.(i) <- seen.(i) + 1
              done);
          Alcotest.(check (array int))
            (Printf.sprintf "domains=%d n=%d chunk=%d" d n chunk)
            (Array.make n 1) seen)
        [ (100, 9); (5, 100); (1, 1); (64, 64) ])
    pools

let test_reduce () =
  let arr = Array.init 57 (fun i -> i + 1) in
  let expected = Array.fold_left (fun acc x -> acc + (x * x)) 0 arr in
  List.iter
    (fun (d, pool) ->
      Alcotest.(check int)
        (Printf.sprintf "sum of squares, domains=%d" d)
        expected
        (Pool.reduce ~pool ~chunk:5 ~map:(fun x -> x * x) ~combine:( + ) 0 arr))
    pools;
  (* Associative but non-commutative combine: chunk merges must stay in
     order. *)
  let words = Array.init 26 (fun i -> String.make 1 (Char.chr (Char.code 'a' + i))) in
  let expected = Array.fold_left ( ^ ) "" words in
  List.iter
    (fun (d, pool) ->
      Alcotest.(check string)
        (Printf.sprintf "ordered concat, domains=%d" d)
        expected
        (Pool.reduce ~pool ~chunk:3 ~map:Fun.id ~combine:( ^ ) "" words))
    pools

let test_exception_propagation () =
  let arr = Array.init 40 (fun i -> i) in
  let f i = if i >= 13 then failwith (string_of_int i) else i in
  List.iter
    (fun (d, pool) ->
      List.iter
        (fun chunk ->
          match Pool.map_array ~pool ~chunk f arr with
          | _ -> Alcotest.failf "domains=%d chunk=%d: expected failure" d chunk
          | exception Failure msg ->
            (* The lowest-index failure wins, as in a sequential run. *)
            Alcotest.(check string)
              (Printf.sprintf "domains=%d chunk=%d" d chunk)
              "13" msg)
        [ 1; 4; 100 ])
    pools

let test_pool_reuse_after_exception () =
  List.iter
    (fun (d, pool) ->
      (try
         ignore
           (Pool.map_array ~pool ~chunk:2
              (fun i -> if i = 7 then raise Exit else i)
              (Array.init 20 Fun.id))
       with Exit -> ());
      Alcotest.(check (array int))
        (Printf.sprintf "reusable after exception, domains=%d" d)
        (Array.init 20 (fun i -> 2 * i))
        (Pool.map_array ~pool ~chunk:3 (fun i -> 2 * i) (Array.init 20 Fun.id)))
    pools

let test_nested_map_array () =
  List.iter
    (fun (d, pool) ->
      let outer =
        Pool.map_array ~pool ~chunk:1
          (fun i ->
            Array.fold_left ( + ) 0
              (Pool.map_array ~pool ~chunk:2 (fun j -> (i * 10) + j)
                 (Array.init 9 Fun.id)))
          (Array.init 6 Fun.id)
      in
      let expected =
        Array.init 6 (fun i ->
            Array.fold_left ( + ) 0 (Array.init 9 (fun j -> (i * 10) + j)))
      in
      Alcotest.(check (array int))
        (Printf.sprintf "nested, domains=%d" d)
        expected outer)
    pools

let test_shutdown_degrades_to_sequential () =
  let pool = Pool.create ~domains:3 in
  Alcotest.(check int) "domains" 3 (Pool.domains pool);
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.(check (array int)) "still works after shutdown"
    (Array.init 30 (fun i -> i + 1))
    (Pool.map_array ~pool ~chunk:4 (fun i -> i + 1) (Array.init 30 Fun.id))

let test_create_validation () =
  Alcotest.check_raises "domains=0" (Invalid_argument "Pool.create: domains must be >= 1")
    (fun () -> ignore (Pool.create ~domains:0));
  Alcotest.check_raises "chunk=0" (Invalid_argument "Pool: chunk must be >= 1")
    (fun () -> ignore (Pool.map_array ~pool:Pool.sequential ~chunk:0 Fun.id [| 1 |]))

(* Must run before the override test: [set_default_domains] permanently
   shadows the environment, so this is the only window where
   [SIMQ_DOMAINS] is consulted. *)
let test_env_domains_garbage_falls_back () =
  let fallback = max 1 (Domain.recommended_domain_count ()) in
  List.iter
    (fun garbage ->
      Unix.putenv "SIMQ_DOMAINS" garbage;
      (* Never raises: garbage warns on stderr and falls back. *)
      Alcotest.(check int)
        (Printf.sprintf "%S falls back" garbage)
        fallback (Pool.default_domains ()))
    [ "bogus"; "0"; "-3"; "2.5"; "" ];
  Unix.putenv "SIMQ_DOMAINS" " 2 ";
  Alcotest.(check int) "valid value honoured, whitespace trimmed" 2
    (Pool.default_domains ());
  Unix.putenv "SIMQ_DOMAINS" "1"

let test_default_domains_override () =
  let before = Pool.default_domains () in
  Pool.set_default_domains 3;
  Alcotest.(check int) "--jobs override wins" 3 (Pool.default_domains ());
  Alcotest.(check int) "default pool resized" 3 (Pool.domains (Pool.default ()));
  Pool.set_default_domains before

(* --- parallel ≡ sequential equivalence -------------------------------------- *)

let dataset_of ~seed ~count ~n =
  Dataset.of_series ~pool:Pool.sequential ~name:"test"
    (Generator.random_walks ~seed ~count ~n)

let query_for dataset spec seed =
  let entries = Dataset.entries dataset in
  let base = entries.(seed mod Array.length entries) in
  let state = Random.State.make [| seed |] in
  let perturbed =
    Array.map
      (fun v -> v +. Random.State.float state 2. -. 1.)
      base.Dataset.series
  in
  match spec with
  | Spec.Warp m -> Simq_series.Warp.expand m perturbed
  | _ -> perturbed

let spec_of_index i =
  match i mod 5 with
  | 0 -> Spec.Identity
  | 1 -> Spec.Moving_average 3
  | 2 -> Spec.Moving_average 8
  | 3 -> Spec.Reverse
  | _ -> Spec.Warp 2

(* Bit-identical: ids, distances (float equality, no tolerance), and
   every counter. *)
let check_result_equal msg (expected : Seqscan.result) (actual : Seqscan.result) =
  Alcotest.(check (list (pair int (float 0.))))
    (msg ^ ": answers")
    (List.map (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d)) expected.Seqscan.answers)
    (List.map (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d)) actual.Seqscan.answers);
  Alcotest.(check int) (msg ^ ": full computations")
    expected.Seqscan.full_computations actual.Seqscan.full_computations;
  Alcotest.(check int) (msg ^ ": coefficients touched")
    expected.Seqscan.coefficients_touched actual.Seqscan.coefficients_touched

let arb_setup =
  QCheck.make
    ~print:(fun (seed, eps, qseed) ->
      Printf.sprintf "seed=%d eps=%g qseed=%d" seed eps qseed)
    QCheck.Gen.(
      let* seed = int_range 0 1000 in
      let* eps = float_range 0.1 15. in
      let* qseed = int_range 0 1000 in
      return (seed, eps, qseed))

let prop_scan_parallel_eq_sequential =
  QCheck.Test.make
    ~name:"parallel scan ≡ sequential scan (every spec, both abandon modes)"
    ~count:20 arb_setup (fun (seed, epsilon, qseed) ->
      let d = dataset_of ~seed ~count:60 ~n:32 in
      let spec = spec_of_index qseed in
      let query = query_for d spec qseed in
      List.iter
        (fun domains ->
          let pool = pool_of domains in
          let seq_full =
            Seqscan.range_full ~pool:Pool.sequential ~spec d ~query ~epsilon
          in
          let par_full = Seqscan.range_full ~pool ~spec d ~query ~epsilon in
          check_result_equal
            (Printf.sprintf "full, %s, domains=%d" (Spec.name spec) domains)
            seq_full par_full;
          let seq_early =
            Seqscan.range_early_abandon ~pool:Pool.sequential ~spec d ~query
              ~epsilon
          in
          let par_early =
            Seqscan.range_early_abandon ~pool ~spec d ~query ~epsilon
          in
          check_result_equal
            (Printf.sprintf "early, %s, domains=%d" (Spec.name spec) domains)
            seq_early par_early;
          (* Lemma 1 stays intact: the scan equals the time-domain
             brute-force reference. *)
          let reference = Seqscan.reference ~spec d ~query ~epsilon in
          Alcotest.(check (list int))
            (Printf.sprintf "reference ids, %s, domains=%d" (Spec.name spec)
               domains)
            (List.map (fun ((e : Dataset.entry), _) -> e.Dataset.id) reference)
            (List.map (fun ((e : Dataset.entry), _) -> e.Dataset.id)
               par_full.Seqscan.answers))
        [ 1; 2; 4 ];
      true)

let prop_join_parallel_eq_sequential =
  QCheck.Test.make ~name:"parallel join scan ≡ sequential (every spec)"
    ~count:12 arb_setup (fun (seed, epsilon, qseed) ->
      let d = dataset_of ~seed ~count:40 ~n:32 in
      let index = Kindex.build ~max_fill:8 d in
      let spec = spec_of_index qseed in
      List.iter
        (fun domains ->
          let pool = pool_of domains in
          List.iter
            (fun (label, join) ->
              let seq : Join.result = join ~pool:Pool.sequential in
              let par : Join.result = join ~pool in
              Alcotest.(check (list (pair int int)))
                (Printf.sprintf "%s pairs, %s, domains=%d" label
                   (Spec.name spec) domains)
                seq.Join.pairs par.Join.pairs;
              Alcotest.(check int)
                (Printf.sprintf "%s computations, %s, domains=%d" label
                   (Spec.name spec) domains)
                seq.Join.distance_computations par.Join.distance_computations)
            [
              ("full", fun ~pool -> Join.scan_full ~pool ~spec index ~epsilon);
              ( "early",
                fun ~pool -> Join.scan_early_abandon ~pool ~spec index ~epsilon
              );
            ])
        [ 1; 2; 4 ];
      true)

let prop_batch_eq_one_by_one =
  QCheck.Test.make
    ~name:"range_batch ≡ one-by-one (kindex + seqscan, both representations)"
    ~count:10 arb_setup (fun (seed, epsilon, qseed) ->
      let d = dataset_of ~seed ~count:50 ~n:32 in
      let spec = spec_of_index qseed in
      let queries_for spec =
        Array.init 7 (fun i ->
            (query_for d spec (qseed + i), epsilon +. (0.3 *. float_of_int i)))
      in
      let queries = queries_for spec in
      List.iter
        (fun representation ->
          (* Complex stretches are only safe in S_pol (Theorem 3). *)
          let spec =
            match (representation, spec) with
            | Simq_geometry.Coords.Rectangular,
              (Spec.Moving_average _ | Spec.Warp _) ->
              Spec.Reverse
            | _ -> spec
          in
          let queries = queries_for spec in
          let config = { Feature.k = 2; representation } in
          let index = Kindex.build ~config ~max_fill:8 d in
          let one_by_one =
            Array.map
              (fun (query, epsilon) -> Kindex.range ~spec index ~query ~epsilon)
              queries
          in
          List.iter
            (fun domains ->
              let pool = pool_of domains in
              let batch = Kindex.range_batch ~pool ~spec index ~queries in
              Array.iteri
                (fun i (expected : Kindex.range_result) ->
                  let actual = batch.(i) in
                  let project (r : Kindex.range_result) =
                    List.map
                      (fun ((e : Dataset.entry), dist) -> (e.Dataset.id, dist))
                      r.Kindex.answers
                  in
                  Alcotest.(check (list (pair int (float 0.))))
                    (Printf.sprintf "answers q%d domains=%d" i domains)
                    (project expected) (project actual);
                  Alcotest.(check int)
                    (Printf.sprintf "candidates q%d domains=%d" i domains)
                    expected.Kindex.candidates actual.Kindex.candidates;
                  Alcotest.(check int)
                    (Printf.sprintf "node accesses q%d domains=%d" i domains)
                    expected.Kindex.node_accesses actual.Kindex.node_accesses)
                one_by_one)
            [ 1; 2; 4 ])
        [ Simq_geometry.Coords.Polar; Simq_geometry.Coords.Rectangular ];
      (* The sequential-scan batch against its own one-by-one loop. *)
      let one_by_one =
        Array.map
          (fun (query, epsilon) ->
            Seqscan.range_early_abandon ~pool:Pool.sequential ~spec d ~query
              ~epsilon)
          queries
      in
      List.iter
        (fun domains ->
          let batch =
            Seqscan.range_batch ~pool:(pool_of domains) ~spec d ~queries
          in
          Array.iteri
            (fun i expected ->
              check_result_equal
                (Printf.sprintf "scan batch q%d domains=%d" i domains)
                expected batch.(i))
            one_by_one)
        [ 1; 2; 4 ];
      true)

let test_parallel_build_eq_sequential () =
  let batch = Generator.random_walks ~seed:11 ~count:80 ~n:64 in
  let seq = Dataset.of_series ~pool:Pool.sequential ~name:"seq" batch in
  List.iter
    (fun (d, pool) ->
      let par = Dataset.of_series ~pool ~name:"par" batch in
      Alcotest.(check int) "cardinality" (Dataset.cardinality seq)
        (Dataset.cardinality par);
      Array.iter2
        (fun (a : Dataset.entry) (b : Dataset.entry) ->
          Alcotest.(check int) "id" a.Dataset.id b.Dataset.id;
          Alcotest.(check bool)
            (Printf.sprintf "normal form bit-identical, domains=%d" d)
            true
            (a.Dataset.normal = b.Dataset.normal);
          Alcotest.(check bool)
            (Printf.sprintf "spectrum bit-identical, domains=%d" d)
            true
            (a.Dataset.spectrum = b.Dataset.spectrum);
          Alcotest.(check (float 0.)) "mean" a.Dataset.mean b.Dataset.mean;
          Alcotest.(check (float 0.)) "std" a.Dataset.std b.Dataset.std)
        (Dataset.entries seq) (Dataset.entries par))
    pools

let test_scan_io_accounting_matches () =
  (* The parallel scan must advance the relation's page statistics
     exactly as the sequential scan does (same touch order). *)
  let batch = Generator.random_walks ~seed:5 ~count:60 ~n:64 in
  let stats_after pool =
    let dataset = Dataset.of_series ~pool:Pool.sequential ~name:"io" batch in
    let query = (Dataset.entries dataset).(0).Dataset.series in
    Simq_storage.Io_stats.reset
      (Simq_storage.Relation.stats (Dataset.relation dataset));
    ignore (Seqscan.range_early_abandon ~pool dataset ~query ~epsilon:2.);
    let stats = Simq_storage.Relation.stats (Dataset.relation dataset) in
    ( Simq_storage.Io_stats.page_reads stats,
      Simq_storage.Io_stats.cache_hits stats )
  in
  let expected = stats_after Pool.sequential in
  List.iter
    (fun (d, pool) ->
      let reads, hits = stats_after pool in
      Alcotest.(check (pair int int))
        (Printf.sprintf "page stats, domains=%d" d)
        expected (reads, hits))
    pools

(* Lemma 1 with the observability layer switched on: instrumentation
   must not perturb the answers or the query counters at any domain
   count, and the merged metric totals of the scan family must
   themselves be invariant in the domain count. *)
let test_scan_with_metrics_enabled () =
  let module Metrics = Simq_obs.Metrics in
  let d = dataset_of ~seed:17 ~count:80 ~n:32 in
  let spec = Spec.Moving_average 5 in
  let query = query_for d spec 17 in
  let epsilon = 1.5 in
  let reference =
    Metrics.with_enabled false (fun () ->
        Seqscan.range_early_abandon ~pool:Pool.sequential ~spec d ~query
          ~epsilon)
  in
  let families =
    [ "simq_scan_candidates_total"; "simq_scan_survivors_total";
      "simq_scan_early_abandon_total" ]
  in
  let ref_totals = ref None in
  List.iter
    (fun (domains, pool) ->
      let result =
        Metrics.with_enabled true (fun () ->
            Metrics.reset ();
            Seqscan.range_early_abandon ~pool ~spec d ~query ~epsilon)
      in
      check_result_equal
        (Printf.sprintf "metrics on, domains=%d" domains)
        reference result;
      let totals =
        List.map (fun f -> Metrics.counter_total (Metrics.counter f)) families
      in
      match !ref_totals with
      | None -> ref_totals := Some totals
      | Some expected ->
        Alcotest.(check (list int))
          (Printf.sprintf "merged totals, domains=%d" domains)
          expected totals)
    pools

let () =
  Alcotest.run "simq_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map_array = Array.map" `Quick
            test_map_array_matches_sequential;
          Alcotest.test_case "empty and singleton" `Quick
            test_empty_and_singleton;
          Alcotest.test_case "chunked_iter covers once" `Quick
            test_chunked_iter_covers_exactly_once;
          Alcotest.test_case "reduce" `Quick test_reduce;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "reuse after exception" `Quick
            test_pool_reuse_after_exception;
          Alcotest.test_case "nested map_array" `Quick test_nested_map_array;
          Alcotest.test_case "shutdown degrades" `Quick
            test_shutdown_degrades_to_sequential;
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "garbage SIMQ_DOMAINS falls back" `Quick
            test_env_domains_garbage_falls_back;
          Alcotest.test_case "default pool override" `Quick
            test_default_domains_override;
        ] );
      ( "equivalence",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_scan_parallel_eq_sequential;
            prop_join_parallel_eq_sequential;
            prop_batch_eq_one_by_one;
          ]
        @ [
            Alcotest.test_case "parallel dataset build" `Quick
              test_parallel_build_eq_sequential;
            Alcotest.test_case "scan I/O accounting" `Quick
              test_scan_io_accounting_matches;
            Alcotest.test_case "Lemma 1 with metrics enabled" `Quick
              test_scan_with_metrics_enabled;
          ] );
    ]
