(* The multi-resolution sketch funnel (Simq_sketch): every level of the
   ladder lower-bounds the exact transformed distance (the per-level
   Lemma 1 that makes exact mode invisible), sketched execution is
   bit-identical to unsketched under every Spec, both coordinate
   representations, and through the sharded executor at every domain
   count with domain-invariant filter counters; approximate mode
   ([?approx a]) returns only true answers and keeps everything inside
   the (1 - a)·ε inner ball; anytime mode turns budget death inside
   verification into a sound partial answer; the funnel shows up as
   [sketch.<level>] operator nodes in a recorded profile. *)

module Pool = Simq_parallel.Pool
module Shard = Simq_shard
module Sketch = Simq_sketch
module Metrics = Simq_obs.Metrics
module Profile = Simq_obs.Profile
module Budget = Simq_fault.Budget
module Coords = Simq_geometry.Coords
open Simq_tsindex
module Generator = Simq_series.Generator

let dataset_of ~seed ~count ~n =
  Dataset.of_series ~pool:Pool.sequential ~name:"test"
    (Generator.random_walks ~seed ~count ~n)

let query_for dataset spec seed =
  let entries = Dataset.entries dataset in
  let base = entries.(seed mod Array.length entries) in
  let state = Random.State.make [| seed |] in
  let perturbed =
    Array.map
      (fun v -> v +. Random.State.float state 2. -. 1.)
      base.Dataset.series
  in
  match spec with
  | Spec.Warp m -> Simq_series.Warp.expand m perturbed
  | _ -> perturbed

let all_specs =
  [
    Spec.Identity;
    Spec.Moving_average 3;
    Spec.Moving_average 8;
    Spec.Reverse;
    Spec.Warp 2;
  ]

let pairs answers =
  List.map (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d)) answers

(* NN answers in canonical (distance, entry id) order. *)
let canon answers =
  List.sort compare
    (List.map (fun ((e : Dataset.entry), d) -> (d, e.Dataset.id)) answers)

(* --- every level lower-bounds the exact distance (QCheck) ------------------- *)

let arb_seeds =
  QCheck.make
    ~print:(fun (seed, qseed) -> Printf.sprintf "seed=%d qseed=%d" seed qseed)
    QCheck.Gen.(
      let* seed = int_range 0 1000 in
      let* qseed = int_range 0 1000 in
      return (seed, qseed))

let prop_levels_lower_bound =
  QCheck.Test.make
    ~name:"every funnel level and the NN bound lower-bound the exact distance"
    ~count:10 arb_seeds (fun (seed, qseed) ->
      let d = dataset_of ~seed ~count:50 ~n:32 in
      let index = Kindex.build d in
      let sketch = Sketch.create d in
      List.iter
        (fun spec ->
          let query = query_for d spec qseed in
          let q = Dataset.prepare_query ~normalise:true query in
          let prepared = Kindex.prepare index spec in
          let dist = Kindex.prepared_distance index prepared q in
          (match Sketch.funnel sketch ~spec ~query:q with
          | None -> (
            match spec with
            | Spec.Warp _ -> ()
            | _ -> Alcotest.failf "no funnel under %s" (Spec.name spec))
          | Some pf ->
            Array.iteri
              (fun level name ->
                Array.iter
                  (fun entry ->
                    let b = pf.Kindex.bound level entry in
                    let x = dist entry in
                    if b > x +. 1e-9 then
                      Alcotest.failf
                        "%s level %s: bound %.17g > distance %.17g (entry %d)"
                        (Spec.name spec) name b x entry.Dataset.id)
                  (Dataset.entries d))
              pf.Kindex.levels);
          match Sketch.nn_bound sketch ~spec ~query:q with
          | None -> ()
          | Some bound ->
            Array.iter
              (fun entry ->
                let b = bound entry in
                let x = dist entry in
                if b > x +. 1e-9 then
                  Alcotest.failf
                    "%s nn bound %.17g > distance %.17g (entry %d)"
                    (Spec.name spec) b x entry.Dataset.id)
              (Dataset.entries d))
        all_specs;
      true)

(* --- sketched ≡ unsketched under Spec x representation (QCheck) ------------- *)

let arb_setup =
  QCheck.make
    ~print:(fun (seed, eps, qseed) ->
      Printf.sprintf "seed=%d eps=%g qseed=%d" seed eps qseed)
    QCheck.Gen.(
      let* seed = int_range 0 1000 in
      let* eps = float_range 0.1 15. in
      let* qseed = int_range 0 1000 in
      return (seed, eps, qseed))

let prop_sketched_eq_unsketched =
  QCheck.Test.make
    ~name:"sketched ≡ unsketched under Spec x representation" ~count:6
    arb_setup (fun (seed, epsilon, qseed) ->
      let d = dataset_of ~seed ~count:60 ~n:32 in
      let sketch = Sketch.create d in
      List.iter
        (fun representation ->
          let config = { Feature.k = 2; representation } in
          let index = Kindex.build ~config d in
          List.iter
            (fun spec ->
              (* Complex stretches are only safe in S_pol (Theorem 3). *)
              let skip =
                representation = Coords.Rectangular
                && (match spec with
                   | Spec.Moving_average _ | Spec.Weighted_ma _
                   | Spec.Warp _ ->
                     true
                   | Spec.Identity | Spec.Reverse -> false)
              in
              if not skip then (
                let query = query_for d spec qseed in
                let funnel q = Sketch.funnel sketch ~spec ~query:q in
                let expected =
                  Kindex.range ~spec index ~query ~epsilon:epsilon
                in
                let sketched =
                  Kindex.range ~spec ~sketch:funnel index ~query
                    ~epsilon:epsilon
                in
                Alcotest.(check (list (pair int (float 0.))))
                  (Printf.sprintf "range %s" (Spec.name spec))
                  (pairs expected.Kindex.answers)
                  (pairs sketched.Kindex.answers);
                let nn_expected = Kindex.nearest ~spec index ~query ~k:5 in
                let nn_sketched =
                  Kindex.nearest ~spec
                    ~sketch:(fun q -> Sketch.nn_bound sketch ~spec ~query:q)
                    index ~query ~k:5
                in
                Alcotest.(check (list (pair (float 0.) int)))
                  (Printf.sprintf "nearest %s" (Spec.name spec))
                  (canon nn_expected) (canon nn_sketched)))
            all_specs)
        [ Coords.Polar; Coords.Rectangular ];
      true)

(* --- sharded sketch parity and domain-invariant counters -------------------- *)

let pools =
  [
    (1, Pool.sequential); (2, Pool.create ~domains:2);
    (4, Pool.create ~domains:4);
  ]

let sketch_counter level =
  Metrics.counter ~labels:[ ("level", level) ] "simq_sketch_filtered_total"

let test_sharded_sketch_parity () =
  let d = dataset_of ~seed:21 ~count:60 ~n:32 in
  let index = Kindex.build d in
  List.iter
    (fun shards ->
      let sh =
        Shard.create ~pool:Pool.sequential ~sketch:Sketch.default ~shards d
      in
      List.iter
        (fun qseed ->
          let query = query_for d Spec.Identity qseed in
          let epsilon = 6. in
          let expected =
            pairs (Kindex.range index ~query ~epsilon).Kindex.answers
          in
          let nn_expected = canon (Kindex.nearest index ~query ~k:5) in
          let totals = ref None in
          List.iter
            (fun (domains, pool) ->
              let label s =
                Printf.sprintf "%s K=%d domains=%d" s shards domains
              in
              let r = ref None in
              let run_totals =
                Metrics.with_enabled true (fun () ->
                    Metrics.reset ();
                    r := Some (Shard.range ~pool sh ~query ~epsilon);
                    [
                      Metrics.counter_total (sketch_counter "coarse");
                      Metrics.counter_total (sketch_counter "segment");
                    ])
              in
              let r = Option.get !r in
              Alcotest.(check (list (pair int (float 0.))))
                (label "sharded sketched range ≡ unsharded unsketched")
                expected (pairs r.Shard.answers);
              Alcotest.(check bool) (label "not partial") false r.Shard.partial;
              (match !totals with
              | None -> totals := Some run_totals
              | Some expected ->
                Alcotest.(check (list int))
                  (label "filter counters domain-invariant")
                  expected run_totals);
              let nn = Shard.nearest ~pool sh ~query ~k:5 in
              Alcotest.(check (list (pair (float 0.) int)))
                (label "sharded sketched nearest") nn_expected
                (canon nn.Shard.neighbours))
            pools)
        [ 3; 14; 25 ])
    [ 1; 2; 7 ]

(* --- approximate mode ------------------------------------------------------- *)

let test_approx_guarantee () =
  let d = dataset_of ~seed:5 ~count:80 ~n:32 in
  let index = Kindex.build d in
  let sketch = Sketch.create d in
  let funnel q = Sketch.funnel sketch ~spec:Spec.Identity ~query:q in
  List.iter
    (fun qseed ->
      let query = query_for d Spec.Identity qseed in
      let epsilon = 7. in
      let exact =
        pairs (Kindex.range index ~query ~epsilon).Kindex.answers
      in
      (* a = 0: the cutoff is ε itself, so the run stays exact. *)
      let at_zero =
        Kindex.range ~sketch:funnel ~approx:0. index ~query ~epsilon
      in
      Alcotest.(check (list (pair int (float 0.))))
        "a=0 ≡ exact" exact
        (pairs at_zero.Kindex.answers);
      List.iter
        (fun a ->
          let r =
            Kindex.range ~sketch:funnel ~approx:a index ~query ~epsilon
          in
          let approx = pairs r.Kindex.answers in
          List.iter
            (fun pair ->
              if not (List.mem pair exact) then
                Alcotest.failf "a=%g returned a non-answer" a)
            approx;
          List.iter
            (fun ((_, dist) as pair) ->
              if dist <= (1. -. a) *. epsilon && not (List.mem pair approx)
              then
                Alcotest.failf
                  "a=%g dropped an inner-ball answer at distance %g" a dist)
            exact)
        [ 0.3; 0.9 ])
    [ 2; 11; 30 ]

let test_approx_rejects_bad_a () =
  let d = dataset_of ~seed:5 ~count:20 ~n:32 in
  let index = Kindex.build d in
  let sketch = Sketch.create d in
  let funnel q = Sketch.funnel sketch ~spec:Spec.Identity ~query:q in
  let query = query_for d Spec.Identity 1 in
  List.iter
    (fun a ->
      Alcotest.check_raises
        (Printf.sprintf "approx %g rejected" a)
        (Invalid_argument "Kindex.range_prepared: approx must be in [0, 1)")
        (fun () ->
          ignore
            (Kindex.range ~sketch:funnel ~approx:a index ~query ~epsilon:1.)))
    [ 1.; 1.5; -0.1 ]

(* --- anytime mode ----------------------------------------------------------- *)

let test_anytime_partial_is_sound () =
  let d = dataset_of ~seed:9 ~count:80 ~n:32 in
  let index = Kindex.build d in
  let sketch = Sketch.create d in
  let funnel q = Sketch.funnel sketch ~spec:Spec.Identity ~query:q in
  let seen_partial = ref false in
  List.iter
    (fun qseed ->
      let query = query_for d Spec.Identity qseed in
      let epsilon = 7. in
      let exact =
        pairs (Kindex.range index ~query ~epsilon).Kindex.answers
      in
      (* Without anytime the dying budget is a typed error... *)
      (match
         Kindex.range_checked
           ~budget:(Budget.create ~max_comparisons:1 ())
           ~sketch:funnel index ~query ~epsilon
       with
      | Ok r ->
        Alcotest.(check (list (pair int (float 0.))))
          "a non-anytime Ok is the exact answer" exact
          (pairs r.Kindex.answers)
      | Error _ -> ());
      (* ...with anytime it is a sound subset marked partial. *)
      match
        Kindex.range_checked
          ~budget:(Budget.create ~max_comparisons:1 ())
          ~sketch:funnel ~anytime:true index ~query ~epsilon
      with
      | Error e -> Alcotest.failf "anytime failed: %s" (Simq_fault.Error.kind e)
      | Ok r ->
        if r.Kindex.partial then seen_partial := true;
        List.iter
          (fun pair ->
            if not (List.mem pair exact) then
              Alcotest.fail "partial answer not in the exact set")
          (pairs r.Kindex.answers))
    [ 2; 11; 30 ];
  Alcotest.(check bool) "a budget died inside verification" true !seen_partial

let test_anytime_with_headroom_is_exact () =
  let d = dataset_of ~seed:9 ~count:60 ~n:32 in
  let index = Kindex.build d in
  let sketch = Sketch.create d in
  let funnel q = Sketch.funnel sketch ~spec:Spec.Identity ~query:q in
  let query = query_for d Spec.Identity 4 in
  let epsilon = 7. in
  let exact = pairs (Kindex.range index ~query ~epsilon).Kindex.answers in
  match
    Kindex.range_checked ~budget:Budget.unlimited ~sketch:funnel ~anytime:true
      index ~query ~epsilon
  with
  | Error e -> Alcotest.failf "unexpected error %s" (Simq_fault.Error.kind e)
  | Ok r ->
    Alcotest.(check bool) "not partial" false r.Kindex.partial;
    Alcotest.(check (list (pair int (float 0.)))) "exact" exact
      (pairs r.Kindex.answers)

(* --- observability ---------------------------------------------------------- *)

let test_profile_shows_funnel () =
  let d = dataset_of ~seed:13 ~count:80 ~n:32 in
  let index = Kindex.build d in
  let sketch = Sketch.create d in
  let funnel q = Sketch.funnel sketch ~spec:Spec.Identity ~query:q in
  let query = query_for d Spec.Identity 3 in
  let p = Profile.create () in
  ignore
    (Kindex.range ~sketch:funnel ~profile:p index ~query ~epsilon:6.);
  List.iter
    (fun name ->
      match Profile.find p name with
      | None -> Alcotest.failf "no %s node in the profile" name
      | Some node ->
        Alcotest.(check bool)
          (name ^ " filtered at least nothing") true
          (Profile.rows_out node <= Profile.rows_in node))
    [ "sketch.coarse"; "sketch.segment" ]

let test_filter_counters_match_on_filtered () =
  let d = dataset_of ~seed:13 ~count:80 ~n:32 in
  let index = Kindex.build d in
  let sketch = Sketch.create d in
  let query = query_for d Spec.Identity 3 in
  let tallied = [| 0; 0 |] in
  let counted q =
    Option.map
      (fun (pf : Kindex.prefilter) ->
        {
          pf with
          Kindex.on_filtered =
            (fun level n ->
              tallied.(level) <- tallied.(level) + n;
              pf.Kindex.on_filtered level n);
        })
      (Sketch.funnel sketch ~spec:Spec.Identity ~query:q)
  in
  let totals =
    Metrics.with_enabled true (fun () ->
        Metrics.reset ();
        ignore (Kindex.range ~sketch:counted index ~query ~epsilon:6.);
        [
          Metrics.counter_total (sketch_counter "coarse");
          Metrics.counter_total (sketch_counter "segment");
        ])
  in
  Alcotest.(check (list int))
    "metric totals equal the on_filtered tallies"
    [ tallied.(0); tallied.(1) ]
    totals;
  Alcotest.(check bool) "the funnel filtered something" true (tallied.(0) > 0)

let () =
  Alcotest.run "simq_sketch"
    [
      ( "lower bounds",
        [ QCheck_alcotest.to_alcotest prop_levels_lower_bound ] );
      ( "exact parity",
        [
          QCheck_alcotest.to_alcotest prop_sketched_eq_unsketched;
          Alcotest.test_case "sharded parity + counters" `Quick
            test_sharded_sketch_parity;
        ] );
      ( "approx",
        [
          Alcotest.test_case "superset-free and inner-ball complete" `Quick
            test_approx_guarantee;
          Alcotest.test_case "a outside [0,1) rejected" `Quick
            test_approx_rejects_bad_a;
        ] );
      ( "anytime",
        [
          Alcotest.test_case "partial answers are sound" `Quick
            test_anytime_partial_is_sound;
          Alcotest.test_case "headroom keeps it exact" `Quick
            test_anytime_with_headroom_is_exact;
        ] );
      ( "observability",
        [
          Alcotest.test_case "funnel nodes in the profile" `Quick
            test_profile_shows_funnel;
          Alcotest.test_case "filter counters match on_filtered" `Quick
            test_filter_counters_match_on_filtered;
        ] );
    ]
