(* The observability layer (lib/obs): the sharded metrics registry and
   the span tracer. The load-bearing promises: merged counter totals
   are identical at every domain count for deterministic work, spans
   nest and never dangle, and the Prometheus exposition is stable and
   parseable. *)

module Metrics = Simq_obs.Metrics
module Trace = Simq_obs.Trace
module Pool = Simq_parallel.Pool
open Simq_tsindex
module Generator = Simq_series.Generator

(* --- registry unit tests ---------------------------------------------------- *)

let test_counter_basics () =
  let r = Metrics.create_registry () in
  let c = Metrics.counter ~registry:r "test_counter_total" in
  Metrics.with_enabled false (fun () ->
      Metrics.incr c;
      Metrics.add c 7);
  Alcotest.(check int) "disabled updates are no-ops" 0 (Metrics.counter_total c);
  Metrics.with_enabled true (fun () ->
      Metrics.incr c;
      Metrics.add c 7;
      Metrics.add c 0);
  Alcotest.(check int) "incr + add merge" 8 (Metrics.counter_total c);
  Metrics.reset ~registry:r ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.counter_total c)

let test_registration_idempotent_and_kind_checked () =
  let r = Metrics.create_registry () in
  let a = Metrics.counter ~registry:r "test_shared_total" in
  let b = Metrics.counter ~registry:r "test_shared_total" in
  Metrics.with_enabled true (fun () ->
      Metrics.incr a;
      Metrics.incr b);
  Alcotest.(check int)
    "both handles hit the same cells" 2 (Metrics.counter_total a);
  Alcotest.(check int)
    "one metric in the snapshot" 1
    (List.length (Metrics.snapshot ~registry:r ()));
  (match Metrics.gauge ~registry:r "test_shared_total" with
  | _ -> Alcotest.fail "kind mismatch must raise"
  | exception Invalid_argument _ -> ())

let test_gauge_last_write_wins () =
  let r = Metrics.create_registry () in
  let g = Metrics.gauge ~registry:r "test_gauge" in
  Metrics.with_enabled false (fun () -> Metrics.set_gauge g 9.);
  Alcotest.(check (float 0.)) "disabled set is a no-op" 0. (Metrics.gauge_value g);
  Metrics.with_enabled true (fun () ->
      Metrics.set_gauge g 1.5;
      Metrics.set_gauge g 2.5);
  Alcotest.(check (float 0.)) "last write wins" 2.5 (Metrics.gauge_value g)

let test_with_enabled_restores () =
  Metrics.set_enabled false;
  Metrics.with_enabled true (fun () ->
      Alcotest.(check bool) "forced on" true (Metrics.on ()));
  Alcotest.(check bool) "restored off" false (Metrics.on ());
  (try Metrics.with_enabled true (fun () -> raise Exit) with Exit -> ());
  Alcotest.(check bool) "restored after exception" false (Metrics.on ())

(* Every positive observation lands in a bucket whose upper bound
   dominates it; non-positive and NaN observations land in bucket 0. *)
let test_histogram_bucketing () =
  for i = 1 to 63 do
    Alcotest.(check bool)
      (Printf.sprintf "bucket_upper monotone at %d" i)
      true
      (Metrics.bucket_upper i > Metrics.bucket_upper (i - 1))
  done;
  let bucket_of v =
    let r = Metrics.create_registry () in
    let h = Metrics.histogram ~registry:r "test_bucket" in
    Metrics.with_enabled true (fun () -> Metrics.observe h v);
    let buckets = Metrics.histogram_buckets h in
    let index = ref (-1) in
    Array.iteri (fun i n -> if n = 1 then index := i) buckets;
    Alcotest.(check int) "exactly one observation" 1
      (Array.fold_left ( + ) 0 buckets);
    !index
  in
  List.iter
    (fun v ->
      let i = bucket_of v in
      Alcotest.(check bool)
        (Printf.sprintf "upper bound dominates %g (bucket %d)" v i)
        true
        (Metrics.bucket_upper i >= v))
    [ 1e-12; 0.3; 0.5; 1.0; 2.0; 3.7; 1e6 ];
  (* the last bucket is a catch-all: values past its bound clamp into
     it rather than vanish *)
  Alcotest.(check int) "overflow clamps to the last bucket" 63 (bucket_of 1e12);
  List.iter
    (fun v ->
      Alcotest.(check int)
        (Printf.sprintf "%g lands in bucket 0" v)
        0 (bucket_of v))
    [ 0.; -5.; Float.nan ]

let test_histogram_sum_and_count () =
  let r = Metrics.create_registry () in
  let h = Metrics.histogram ~registry:r "test_sum" in
  Metrics.with_enabled true (fun () ->
      List.iter (Metrics.observe h) [ 1.0; 0.5; 2.0 ]);
  Alcotest.(check int) "count" 3 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 3.5 (Metrics.histogram_sum h)

(* --- exposition ------------------------------------------------------------- *)

(* A minimal Prometheus text-format check: every non-comment line is
   [name value] or [name_bucket{le="..."} value] with a parseable
   value; cumulative histogram buckets never decrease and the +Inf
   bucket equals [_count]. *)
let check_exposition_parseable text =
  let lines =
    List.filter (fun l -> l <> "" && l.[0] <> '#')
      (String.split_on_char '\n' text)
  in
  Alcotest.(check bool) "has sample lines" true (lines <> []);
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "unparseable line: %s" line
      | Some i -> (
          let value = String.sub line (i + 1) (String.length line - i - 1) in
          match float_of_string_opt value with
          | Some _ -> ()
          | None -> Alcotest.failf "unparseable value in: %s" line))
    lines

let test_exposition_stable_and_parseable () =
  let r = Metrics.create_registry () in
  let c = Metrics.counter ~registry:r ~help:"a counter" "test_expo_total" in
  let g = Metrics.gauge ~registry:r "test_expo_gauge" in
  let h = Metrics.histogram ~registry:r ~help:"a histogram" "test_expo_hist" in
  Metrics.with_enabled true (fun () ->
      Metrics.add c 5;
      Metrics.set_gauge g 0.25;
      List.iter (Metrics.observe h) [ 0.001; 0.5; 4.0; 4.0 ]);
  let text = Metrics.exposition ~registry:r () in
  check_exposition_parseable text;
  Alcotest.(check string)
    "exposition is stable for a fixed registry state" text
    (Metrics.exposition ~registry:r ());
  let names = List.map Metrics.sample_name (Metrics.snapshot ~registry:r ()) in
  Alcotest.(check (list string))
    "snapshot sorted by name"
    [ "test_expo_gauge"; "test_expo_hist"; "test_expo_total" ]
    names;
  let contains needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter sample" true (contains "test_expo_total 5");
  Alcotest.(check bool) "gauge sample" true (contains "test_expo_gauge 0.25");
  Alcotest.(check bool)
    "+Inf bucket equals count" true
    (contains "test_expo_hist_bucket{le=\"+Inf\"} 4"
    && contains "test_expo_hist_count 4");
  (* cumulative buckets never decrease *)
  let last = ref 0 in
  List.iter
    (fun line ->
      if String.length line > 22 && String.sub line 0 22 = "test_expo_hist_bucket{"
      then begin
        let i = String.rindex line ' ' in
        let v = int_of_string (String.sub line (i + 1) (String.length line - i - 1)) in
        Alcotest.(check bool) "cumulative non-decreasing" true (v >= !last);
        last := v
      end)
    (String.split_on_char '\n' text)

(* --- cross-domain determinism ------------------------------------------------ *)

(* Per-item observations and per-chunk adds cover the input exactly
   once whatever the chunking, so merged integer totals must not
   depend on the domain count. *)
let test_merge_deterministic_across_domains () =
  let c = Metrics.counter "test_obs_items_total" in
  let h = Metrics.histogram "test_obs_values" in
  let n = 1000 in
  let values =
    Array.init n (fun i -> float_of_int ((i * 37 mod 97) + 1) /. 8.)
  in
  let totals_at domains =
    let pool = Pool.create ~domains in
    Metrics.with_enabled true (fun () ->
        Metrics.reset ();
        Pool.chunked_iter ~pool ~chunk:64 ~n (fun ~lo ~hi ->
            Metrics.add c (hi - lo);
            for i = lo to hi - 1 do
              Metrics.observe h values.(i)
            done));
    Pool.shutdown pool;
    (Metrics.counter_total c, Metrics.histogram_count h,
     Array.to_list (Metrics.histogram_buckets h))
  in
  let reference = totals_at 1 in
  let total, count, _ = reference in
  Alcotest.(check int) "counter covers every item" n total;
  Alcotest.(check int) "histogram covers every item" n count;
  List.iter
    (fun domains ->
      let total', count', buckets' = totals_at domains in
      let _, _, buckets = reference in
      Alcotest.(check int)
        (Printf.sprintf "counter total, domains=%d" domains)
        total total';
      Alcotest.(check int)
        (Printf.sprintf "histogram count, domains=%d" domains)
        count count';
      Alcotest.(check (list int))
        (Printf.sprintf "bucket counts, domains=%d" domains)
        buckets buckets')
    [ 2; 4 ]

(* The same promise through the real instrumentation: the scan
   families' totals after a fixed workload are identical at 1/2/4
   domains, and the answers stay bit-identical to the metrics-off
   run. *)
let test_instrumented_scan_totals_deterministic () =
  let batch = Generator.random_walks ~seed:1995 ~count:80 ~n:48 in
  let dataset = Dataset.of_series ~pool:Pool.sequential ~name:"obs" batch in
  let query = batch.(0) in
  let epsilon = 2.0 in
  let reference =
    Metrics.with_enabled false (fun () ->
        Seqscan.range_early_abandon ~pool:Pool.sequential dataset ~query
          ~epsilon)
  in
  let families =
    [ "simq_scan_candidates_total"; "simq_scan_survivors_total";
      "simq_scan_early_abandon_total" ]
  in
  let run domains =
    let pool = Pool.create ~domains in
    let result =
      Metrics.with_enabled true (fun () ->
          Metrics.reset ();
          Seqscan.range_early_abandon ~pool dataset ~query ~epsilon)
    in
    let totals =
      List.map (fun f -> Metrics.counter_total (Metrics.counter f)) families
    in
    Pool.shutdown pool;
    (result, totals)
  in
  let _, ref_totals = run 1 in
  Alcotest.(check int)
    "candidates cover the relation" (Array.length (Dataset.entries dataset))
    (List.hd ref_totals);
  List.iter
    (fun domains ->
      let result, totals = run domains in
      Alcotest.(check (list int))
        (Printf.sprintf "family totals, domains=%d" domains)
        ref_totals totals;
      Alcotest.(check (list (pair int (float 0.))))
        (Printf.sprintf "answers unchanged, domains=%d" domains)
        (List.map
           (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d))
           reference.Seqscan.answers)
        (List.map
           (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d))
           result.Seqscan.answers))
    [ 1; 2; 4 ]

(* --- span tracing ------------------------------------------------------------ *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec go i = i + n <= m && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_spans_nest_and_never_dangle () =
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Trace.set_enabled false)
    (fun () ->
      Trace.reset ();
      Trace.with_span "outer" (fun () ->
          Alcotest.(check int) "one open span" 1 (Trace.open_spans ());
          Trace.with_span "inner" (fun () ->
              Alcotest.(check int) "two open spans" 2 (Trace.open_spans ())));
      Alcotest.(check int) "no dangling spans" 0 (Trace.open_spans ());
      Alcotest.(check int) "two finished events" 2 (Trace.event_count ());
      let path = Filename.temp_file "simq_obs" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Trace.export_file path;
          let text = read_file path in
          Alcotest.(check bool)
            "outer is a root span" true
            (contains text "\"name\":\"outer\""
            && contains text "\"args\":{\"id\":1,\"parent\":0,\"trace\":0}");
          Alcotest.(check bool)
            "inner nests under outer" true
            (contains text "\"name\":\"inner\""
            && contains text "\"args\":{\"id\":2,\"parent\":1,\"trace\":0}")))

let test_span_closed_on_exception () =
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Trace.set_enabled false)
    (fun () ->
      Trace.reset ();
      (try Trace.with_span "raises" (fun () -> raise Exit) with Exit -> ());
      Alcotest.(check int) "no dangling span after raise" 0 (Trace.open_spans ());
      Alcotest.(check int) "the span still recorded" 1 (Trace.event_count ()))

let test_trace_disabled_is_free () =
  Trace.set_enabled false;
  Trace.reset ();
  Trace.with_span "ignored" (fun () -> ());
  Alcotest.(check int) "nothing recorded while off" 0 (Trace.event_count ());
  Alcotest.(check int) "nothing open while off" 0 (Trace.open_spans ())

(* --- labels, escaping, validation -------------------------------------------- *)

let count_occurrences haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec go i acc =
    if i + n > m then acc
    else if String.sub haystack i n = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_labeled_children () =
  let r = Metrics.create_registry () in
  let child op =
    Metrics.counter ~registry:r ~help:"per-op totals"
      ~labels:[ ("op", op) ]
      "test_family_total"
  in
  let a = child "alpha" and b = child "beta" in
  Metrics.with_enabled true (fun () ->
      Metrics.add a 3;
      Metrics.incr b);
  Alcotest.(check int) "child totals separate" 3 (Metrics.counter_total a);
  Alcotest.(check int) "child totals separate (b)" 1 (Metrics.counter_total b);
  Alcotest.(check int)
    "same labels retrieve the same cells" 4
    (Metrics.with_enabled true (fun () -> Metrics.incr (child "alpha"));
     Metrics.counter_total a);
  (* canonicalisation: label order does not create a new child *)
  let x =
    Metrics.counter ~registry:r
      ~labels:[ ("a", "1"); ("b", "2") ]
      "test_canon_total"
  in
  let y =
    Metrics.counter ~registry:r
      ~labels:[ ("b", "2"); ("a", "1") ]
      "test_canon_total"
  in
  Metrics.with_enabled true (fun () ->
      Metrics.incr x;
      Metrics.incr y);
  Alcotest.(check int) "label order is canonicalised" 2
    (Metrics.counter_total x);
  let text = Metrics.exposition ~registry:r () in
  Alcotest.(check int)
    "HELP once per family" 1
    (count_occurrences text "# HELP test_family_total per-op totals\n");
  Alcotest.(check int)
    "TYPE once per family" 1
    (count_occurrences text "# TYPE test_family_total counter\n");
  Alcotest.(check int)
    "one sample per child" 1
    (count_occurrences text "test_family_total{op=\"alpha\"} 4\n");
  Alcotest.(check int)
    "one sample per child (beta)" 1
    (count_occurrences text "test_family_total{op=\"beta\"} 1\n");
  let labels =
    List.map Metrics.sample_labels
      (List.filter
         (fun s -> Metrics.sample_name s = "test_family_total")
         (Metrics.snapshot ~registry:r ()))
  in
  Alcotest.(check int) "two children in the snapshot" 2 (List.length labels)

let test_label_value_escaping () =
  let r = Metrics.create_registry () in
  let c =
    Metrics.counter ~registry:r
      ~labels:[ ("q", "a\\b\"c\nd") ]
      "test_escape_total"
  in
  Metrics.with_enabled true (fun () -> Metrics.incr c);
  let text = Metrics.exposition ~registry:r () in
  Alcotest.(check bool)
    "backslash, quote and newline are escaped" true
    (contains text "test_escape_total{q=\"a\\\\b\\\"c\\nd\"} 1");
  Alcotest.(check bool)
    "no raw newline leaks into the sample line" true
    (List.exists
       (fun line -> contains line "test_escape_total{")
       (String.split_on_char '\n' text));
  check_exposition_parseable text

let test_help_escaping () =
  let r = Metrics.create_registry () in
  ignore
    (Metrics.counter ~registry:r ~help:"line one\nline two \\ done"
       "test_help_total");
  let text = Metrics.exposition ~registry:r () in
  Alcotest.(check bool)
    "newline and backslash escaped in HELP" true
    (contains text "# HELP test_help_total line one\\nline two \\\\ done\n")

let test_invalid_names_rejected () =
  let r = Metrics.create_registry () in
  let rejects f =
    match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "metric name %S rejected" name)
        true
        (rejects (fun () -> Metrics.counter ~registry:r name)))
    [ ""; "9starts_with_digit"; "has-dash"; "has space"; "caf\xc3\xa9" ];
  List.iter
    (fun labels ->
      Alcotest.(check bool)
        (Printf.sprintf "label set [%s] rejected"
           (String.concat ";" (List.map fst labels)))
        true
        (rejects (fun () ->
             Metrics.counter ~registry:r ~labels "test_valid_total")))
    [
      [ ("", "v") ];
      [ ("0x", "v") ];
      [ ("has-dash", "v") ];
      [ ("with:colon", "v") ];
      [ ("le", "0.5") ];
      [ ("dup", "a"); ("dup", "b") ];
    ];
  (* colons are legal in metric names (recording-rule style), and any
     byte is legal in a label value *)
  Alcotest.(check bool)
    "colon metric name accepted" false
    (rejects (fun () -> Metrics.counter ~registry:r "ns:test_total"));
  Alcotest.(check bool)
    "arbitrary label value accepted" false
    (rejects (fun () ->
         Metrics.counter ~registry:r
           ~labels:[ ("v", "\x00\xff{}\"\\\n") ]
           "test_any_value_total"))

(* --- exposition grammar property ---------------------------------------------- *)

(* A strict line-by-line parser for the Prometheus text format — the
   oracle for the QCheck property below. Accepts exactly:
     # HELP <metric-name> <escaped-text>
     # TYPE <metric-name> counter|gauge|histogram
     <metric-name>[{<label>="<escaped-value>",...}] <float>
   with metric names [a-zA-Z_:][a-zA-Z0-9_:]*, label names
   [a-zA-Z_][a-zA-Z0-9_]*, and only the backslash, quote and newline
   escapes inside quoted values (backslash and newline in HELP text). *)
let strict_line_ok line =
  let n = String.length line in
  let name_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let name_char c = name_start c || c = ':' || (c >= '0' && c <= '9') in
  let label_char c = name_start c || (c >= '0' && c <= '9') in
  let metric_name_ok s =
    s <> ""
    && (name_start s.[0] || s.[0] = ':')
    && String.for_all name_char s
  in
  let escaped_text_ok s =
    let m = String.length s in
    let rec go i =
      if i >= m then true
      else
        match s.[i] with
        | '\\' -> i + 1 < m && (s.[i + 1] = '\\' || s.[i + 1] = 'n') && go (i + 2)
        | '\n' -> false
        | _ -> go (i + 1)
    in
    go 0
  in
  if n = 0 then true
  else if line.[0] = '#' then begin
    let with_prefix p k =
      let lp = String.length p in
      n >= lp && String.sub line 0 lp = p && k (String.sub line lp (n - lp))
    in
    with_prefix "# HELP " (fun rest ->
        match String.index_opt rest ' ' with
        | None -> metric_name_ok rest
        | Some i ->
          metric_name_ok (String.sub rest 0 i)
          && escaped_text_ok
               (String.sub rest (i + 1) (String.length rest - i - 1)))
    || with_prefix "# TYPE " (fun rest ->
           match String.split_on_char ' ' rest with
           | [ name; kind ] ->
             metric_name_ok name
             && List.mem kind [ "counter"; "gauge"; "histogram" ]
           | _ -> false)
  end
  else begin
    let rec scan_while pred i =
      if i < n && pred line.[i] then scan_while pred (i + 1) else i
    in
    (* quoted label value: consume past the closing quote *)
    let rec value i =
      if i >= n then None
      else
        match line.[i] with
        | '\\' ->
          if
            i + 1 < n
            && (line.[i + 1] = '\\' || line.[i + 1] = '"' || line.[i + 1] = 'n')
          then value (i + 2)
          else None
        | '"' -> Some (i + 1)
        | _ -> value (i + 1)
    in
    let rec labels i =
      (* at the start of a label name *)
      if i >= n || not (name_start line.[i]) then None
      else begin
        let j = scan_while label_char i in
        if j + 1 >= n || line.[j] <> '=' || line.[j + 1] <> '"' then None
        else
          match value (j + 2) with
          | None -> None
          | Some k ->
            if k < n && line.[k] = ',' then labels (k + 1)
            else if k < n && line.[k] = '}' then Some (k + 1)
            else None
      end
    in
    (name_start line.[0] || line.[0] = ':')
    &&
    let i = scan_while name_char 1 in
    let after_labels =
      if i < n && line.[i] = '{' then labels (i + 1) else Some i
    in
    match after_labels with
    | None -> false
    | Some i ->
      i < n
      && line.[i] = ' '
      && Option.is_some
           (float_of_string_opt (String.sub line (i + 1) (n - i - 1)))
  end

let strict_exposition_ok text =
  List.for_all strict_line_ok (String.split_on_char '\n' text)

let test_strict_checker_sanity () =
  List.iter
    (fun line ->
      Alcotest.(check bool) ("accepts: " ^ String.escaped line) true
        (strict_line_ok line))
    [
      "# HELP simq_x_total help with spaces \\n and \\\\";
      "# TYPE simq_x_total counter";
      "simq_x_total 5";
      "ns:rule:total 1.5";
      "simq_x_total{op=\"a\"} 5";
      "simq_x_total{op=\"a\\\"b\\\\c\\nd\",q=\"z\"} 5";
      "simq_hist_bucket{le=\"+Inf\"} 4";
      "simq_hist_bucket{le=\"9.765625e-10\"} 0";
      "simq_gauge nan";
    ];
  List.iter
    (fun line ->
      Alcotest.(check bool) ("rejects: " ^ String.escaped line) false
        (strict_line_ok line))
    [
      "# TYPE simq_x_total summary";
      "# TYPE 9bad counter";
      "9bad 5";
      "simq_x_total";
      "simq_x_total five";
      "simq_x_total{op=a} 5";
      "simq_x_total{op=\"raw\"quote\"} 5";
      "simq_x_total{op=\"bad\\escape\"} 5";
      "simq_x_total{0op=\"a\"} 5";
      "simq_x_total{op=\"unterminated} 5";
    ]

let test_exposition_conforms_to_strict_grammar () =
  (* the default registry, warmed by the instrumented-scan test above,
     plus a registry exercising every metric kind with labels *)
  Alcotest.(check bool)
    "default registry conforms" true
    (strict_exposition_ok (Metrics.exposition ()));
  let r = Metrics.create_registry () in
  let c =
    Metrics.counter ~registry:r ~help:"nasty \\ help\nwith newline"
      ~labels:[ ("v", "a\"b\\c\nd") ]
      "test_strict_total"
  in
  let h =
    Metrics.histogram ~registry:r ~labels:[ ("side", "left") ]
      "test_strict_seconds"
  in
  Metrics.with_enabled true (fun () ->
      Metrics.incr c;
      Metrics.observe h 0.25;
      Metrics.set_gauge (Metrics.gauge ~registry:r "test_strict_gauge") 1e-9);
  Alcotest.(check bool)
    "kinds + labels + escapes conform" true
    (strict_exposition_ok (Metrics.exposition ~registry:r ()))

let arb_nasty_string =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "%S" s)
    QCheck.Gen.(
      string_size ~gen:
        (oneof
           [
             char;
             oneofl [ '"'; '\\'; '\n'; '{'; '}'; '='; ','; ' '; '\x00' ];
           ])
        (int_range 0 24))

let prop_exposition_grammar =
  QCheck.Test.make
    ~name:"exposition conforms to the text-format grammar for any label \
           value and help text"
    ~count:200
    QCheck.(triple arb_nasty_string arb_nasty_string arb_nasty_string)
    (fun (help, v1, v2) ->
      let r = Metrics.create_registry () in
      let child v = Metrics.counter ~registry:r ~help ~labels:[ ("q", v) ] "test_prop_total" in
      let a = child v1 and b = child v2 in
      let g = Metrics.gauge ~registry:r ~help ~labels:[ ("q", v1) ] "test_prop_gauge" in
      let h = Metrics.histogram ~registry:r ~labels:[ ("q", v2) ] "test_prop_seconds" in
      Metrics.with_enabled true (fun () ->
          Metrics.incr a;
          Metrics.add b 2;
          Metrics.set_gauge g 0.5;
          Metrics.observe h 1.0);
      strict_exposition_ok (Metrics.exposition ~registry:r ()))

(* --- the exposition endpoint --------------------------------------------------- *)

module Serve = Simq_obs.Serve

let test_scrape_equals_dump () =
  let r = Metrics.create_registry () in
  let c =
    Metrics.counter ~registry:r ~help:"served"
      ~labels:[ ("decision", "reject") ]
      "test_serve_total"
  in
  Metrics.with_enabled true (fun () -> Metrics.add c 3);
  Serve.with_server ~registry:r ~port:0 (fun server ->
      let port = Serve.port server in
      Alcotest.(check bool) "ephemeral port assigned" true (port > 0);
      let body = Serve.scrape ~port () in
      Alcotest.(check string)
        "scrape equals the dump" (Metrics.exposition ~registry:r ())
        body;
      Alcotest.(check bool)
        "scrape conforms to the strict grammar" true
        (strict_exposition_ok body);
      Metrics.with_enabled true (fun () -> Metrics.add c 2);
      let body' = Serve.scrape ~port () in
      Alcotest.(check string)
        "a second scrape sees the update" (Metrics.exposition ~registry:r ())
        body';
      Alcotest.(check bool)
        "the totals advanced between scrapes" true
        (contains body "test_serve_total{decision=\"reject\"} 3"
        && contains body' "test_serve_total{decision=\"reject\"} 5"))

(* --- persisted registry state ---------------------------------------- *)

let test_state_roundtrip () =
  let file = Filename.temp_file "simq_state" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let src = Metrics.create_registry () in
      let c =
        Metrics.counter ~registry:src ~help:"h" "test_state_total"
          ~labels:[ ("path", "index") ]
      in
      let g = Metrics.gauge ~registry:src "test_state_gauge" in
      let h = Metrics.histogram ~registry:src "test_state_seconds" in
      Metrics.with_enabled true (fun () ->
          Metrics.add c 42;
          Metrics.set_gauge g 1.25;
          Metrics.observe h 0.003;
          Metrics.observe h 7.5);
      Metrics.save_state ~registry:src file;
      let dst = Metrics.create_registry () in
      Metrics.load_state ~registry:dst file;
      Alcotest.(check string)
        "expositions identical after round trip"
        (Metrics.exposition ~registry:src ())
        (Metrics.exposition ~registry:dst ());
      (* Loading into a registry that already carries totals adds; the
         calibration use case overwrites gauges (last write wins). *)
      Metrics.load_state ~registry:dst file;
      let c' =
        Metrics.counter ~registry:dst "test_state_total"
          ~labels:[ ("path", "index") ]
      in
      Alcotest.(check int) "counter totals accumulate" 84
        (Metrics.counter_total c');
      let g' = Metrics.gauge ~registry:dst "test_state_gauge" in
      Alcotest.(check (float 1e-9)) "gauge last write wins" 1.25
        (Metrics.gauge_value g'))

let test_state_survives_disabled_collection () =
  (* The load path must bypass the collection gate: a process that only
     restores state (metrics off) still starts from the saved totals. *)
  let file = Filename.temp_file "simq_state" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let src = Metrics.create_registry () in
      let c = Metrics.counter ~registry:src "test_state_off_total" in
      Metrics.with_enabled true (fun () -> Metrics.add c 9);
      Metrics.save_state ~registry:src file;
      let dst = Metrics.create_registry () in
      Metrics.with_enabled false (fun () -> Metrics.load_state ~registry:dst file);
      Alcotest.(check int) "restored with collection off" 9
        (Metrics.counter_total
           (Metrics.counter ~registry:dst "test_state_off_total")))

let test_state_malformed_is_failure () =
  let file = Filename.temp_file "simq_state" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_text file (fun oc ->
          Out_channel.output_string oc "{ not json");
      let dst = Metrics.create_registry () in
      match Metrics.load_state ~registry:dst file with
      | () -> Alcotest.fail "malformed state must not load"
      | exception Failure msg ->
        Alcotest.(check bool) "error names the file" true
          (let nh = String.length msg and needle = file in
           let nn = String.length needle in
           let rec go i =
             if i + nn > nh then false
             else String.sub msg i nn = needle || go (i + 1)
           in
           go 0))

let test_server_stops () =
  let r = Metrics.create_registry () in
  ignore (Metrics.counter ~registry:r "test_stop_total");
  let port =
    Serve.with_server ~registry:r ~port:0 (fun server -> Serve.port server)
  in
  match Serve.scrape ~port () with
  | _ -> Alcotest.fail "a stopped server must refuse connections"
  | exception _ -> ()

(* --- request-scoped correlation ---------------------------------------------- *)

module Json = Simq_obs.Json

let test_request_ids_unique_and_scoped () =
  let a = Trace.new_request_id () in
  let b = Trace.new_request_id () in
  Alcotest.(check bool) "ids strictly increase" true (0 < a && a < b);
  Alcotest.(check int) "no ambient id outside a scope" 0
    (Trace.current_request ());
  Alcotest.(check int) "domain-local binding shadows the global" b
    (Trace.with_request a (fun () ->
         Trace.with_request ~global:false b (fun () ->
             Trace.current_request ())));
  Alcotest.(check int) "global binding visible" a
    (Trace.with_request a (fun () -> Trace.current_request ()));
  Alcotest.(check int) "bindings restored" 0 (Trace.current_request ());
  (try Trace.with_request a (fun () -> raise Exit) with Exit -> ());
  Alcotest.(check int) "restored after a raise" 0 (Trace.current_request ())

(* Every span a request emits — including those recorded by pool
   worker domains fanning out on its behalf — carries the request's
   id, whatever the domain count. *)
let test_span_trace_stamped_across_domains () =
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Trace.set_enabled false)
    (fun () ->
      List.iter
        (fun domains ->
          Trace.reset ();
          let pool = Pool.create ~domains in
          let id = Trace.new_request_id () in
          Trace.with_request id (fun () ->
              Trace.with_span "request" (fun () ->
                  Pool.chunked_iter ~pool ~chunk:8 ~n:64 (fun ~lo:_ ~hi:_ ->
                      Trace.with_span "chunk" (fun () -> ()))));
          Pool.shutdown pool;
          let traces = Trace.event_traces () in
          Alcotest.(check bool)
            (Printf.sprintf "every span stamped, domains=%d" domains)
            true
            (traces <> [] && List.for_all (fun t -> t = id) traces))
        [ 1; 2; 4 ])

let prop_request_ids_unique =
  QCheck2.Test.make ~count:100
    ~name:"request ids are unique and nested scopes restore"
    QCheck2.Gen.(int_range 1 16)
    (fun n ->
      let ids = List.init n (fun _ -> Trace.new_request_id ()) in
      let distinct = List.length (List.sort_uniq compare ids) = n in
      let scoped =
        List.for_all
          (fun id -> Trace.with_request id Trace.current_request = id)
          ids
      in
      distinct && scoped && Trace.current_request () = 0)

(* --- slow-query exemplar store ------------------------------------------------ *)

module Slow = Simq_obs.Slow

let slow_entry ?(trace_id = 0) ?(profile = "") seq duration_s =
  {
    Slow.seq;
    trace_id;
    digest = "0123456789ab";
    spec = Printf.sprintf "q%d" seq;
    duration_s;
    profile;
  }

let test_slow_store_worst_k () =
  (match Slow.create ~k:0 with
  | _ -> Alcotest.fail "k = 0 must be rejected"
  | exception Invalid_argument _ -> ());
  let s = Slow.create ~k:3 in
  List.iter (Slow.observe s)
    [
      slow_entry 0 0.010; slow_entry 1 0.005; slow_entry 2 0.030;
      slow_entry 3 0.010; slow_entry 4 0.001;
    ];
  let seqs () = List.map (fun e -> e.Slow.seq) (Slow.entries s) in
  Alcotest.(check (list int))
    "worst three, duration desc, ties by ascending seq" [ 2; 0; 3 ]
    (seqs ());
  Slow.observe s (slow_entry 9 0.0001);
  Alcotest.(check (list int)) "a non-displacing observe changes nothing"
    [ 2; 0; 3 ] (seqs ());
  match Json.parse (Json.to_string (Slow.to_json s)) with
  | Error msg -> Alcotest.failf "slow document: %s" msg
  | Ok v ->
    Alcotest.(check (option string)) "self-describing" (Some "simq.slow")
      (Option.bind (Json.member "event" v) Json.string_of);
    Alcotest.(check (option (float 1e-9))) "k" (Some 3.)
      (Option.bind (Json.member "k" v) Json.number)

let prop_slow_store_worst_k =
  QCheck2.Test.make ~count:300
    ~name:"slow store keeps exactly worst-K in deterministic order"
    QCheck2.Gen.(pair (int_range 1 6) (list_size (int_range 0 30) (int_range 0 5)))
    (fun (k, durations) ->
      let s = Slow.create ~k in
      List.iteri
        (fun i d -> Slow.observe s (slow_entry i (float_of_int d /. 1000.)))
        durations;
      let expected =
        List.mapi (fun i d -> (i, float_of_int d /. 1000.)) durations
        |> List.sort (fun (sa, da) (sb, db) ->
               match compare db da with 0 -> compare sa sb | c -> c)
        |> List.filteri (fun i _ -> i < k)
      in
      List.map (fun e -> (e.Slow.seq, e.Slow.duration_s)) (Slow.entries s)
      = expected)

(* --- telemetry history -------------------------------------------------------- *)

module History = Simq_obs.History

let test_history_window_rates () =
  let r = Metrics.create_registry () in
  let q = Metrics.counter ~registry:r "simq_serve_queries_total" in
  let shed = Metrics.counter ~registry:r "simq_serve_shed_total" in
  let timer = Metrics.histogram ~registry:r "simq_timer_seconds" in
  let h = History.create ~registry:r ~capacity:4 ~interval_s:60. () in
  Alcotest.(check int) "empty at creation" 0 (History.length h);
  Metrics.with_enabled true (fun () ->
      History.sample h;
      Metrics.add q 8;
      Metrics.add shed 2;
      Metrics.observe timer 0.004;
      Metrics.observe timer 0.032;
      History.sample h);
  match History.window h with
  | None -> Alcotest.fail "two samples must open a window"
  | Some w ->
    Alcotest.(check int) "queries delta" 8 w.History.queries;
    Alcotest.(check int) "shed delta" 2 w.History.shed;
    Alcotest.(check (float 1e-9)) "shed rate" 0.2 w.History.shed_rate;
    Alcotest.(check bool) "qps non-negative" true (w.History.qps >= 0.);
    Alcotest.(check int) "latency observations" 2 w.History.latency_count;
    Alcotest.(check bool) "p50 bounds the fast observation" true
      (w.History.p50_s >= 0.004);
    Alcotest.(check bool) "p99 bounds the slow observation" true
      (w.History.p99_s >= 0.032);
    Alcotest.(check bool) "quantiles ordered" true
      (w.History.p99_s >= w.History.p50_s)

let test_history_reset_clamps_and_capacity () =
  let r = Metrics.create_registry () in
  let q = Metrics.counter ~registry:r "simq_serve_queries_total" in
  let h = History.create ~registry:r ~capacity:2 ~interval_s:60. () in
  Metrics.with_enabled true (fun () ->
      Metrics.add q 100;
      History.sample h;
      Metrics.reset ~registry:r ();
      History.sample h);
  (match History.window h with
  | None -> Alcotest.fail "window expected"
  | Some w ->
    Alcotest.(check int) "a reset clamps to zero, never negative" 0
      w.History.queries;
    Alcotest.(check (float 0.)) "no rate from a reset" 0. w.History.qps);
  for _ = 1 to 5 do
    History.sample h
  done;
  Alcotest.(check int) "the ring stays bounded" 2 (History.length h)

(* The sampler only snapshots (merge-on-read): totals after identical
   work are identical at every domain count, sampler running or not. *)
let test_history_sampler_keeps_totals () =
  let c = Metrics.counter "test_history_inv_total" in
  let totals_at domains =
    let pool = Pool.create ~domains in
    let h = History.create ~capacity:8 ~interval_s:0.01 () in
    History.start h;
    Metrics.with_enabled true (fun () ->
        Metrics.reset ();
        Pool.chunked_iter ~pool ~chunk:16 ~n:512 (fun ~lo ~hi ->
            Metrics.add c (hi - lo)));
    History.stop h;
    Pool.shutdown pool;
    Alcotest.(check bool) "the sampler sampled" true (History.length h >= 1);
    Metrics.counter_total c
  in
  List.iter
    (fun domains ->
      Alcotest.(check int)
        (Printf.sprintf "totals with a live sampler, domains=%d" domains)
        512 (totals_at domains))
    [ 1; 2; 4 ]

(* The concurrent-scrape regression: a connected-but-silent peer must
   not block other scrapes (each connection gets its own thread), and
   /metrics and /history answer complete documents while it hangs. *)
let test_concurrent_scrapes_with_silent_peer () =
  let r = Metrics.create_registry () in
  let c = Metrics.counter ~registry:r "test_concurrent_total" in
  Metrics.with_enabled true (fun () -> Metrics.add c 4);
  let h = History.create ~registry:r ~capacity:4 ~interval_s:60. () in
  History.sample h;
  Serve.with_server ~registry:r
    ~history:(fun () -> History.document h)
    ~port:0
    (fun server ->
      let port = Serve.port server in
      let silent = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close silent with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect silent
            (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          let metrics_body = Serve.scrape ~timeout:5. ~port () in
          let history_body =
            Serve.scrape ~timeout:5. ~path:"/history" ~port ()
          in
          Alcotest.(check bool) "metrics scrape complete" true
            (contains metrics_body "test_concurrent_total 4");
          match Json.parse history_body with
          | Error msg -> Alcotest.failf "history body: %s" msg
          | Ok v ->
            Alcotest.(check (option string)) "history document served"
              (Some "simq.history")
              (Option.bind (Json.member "event" v) Json.string_of);
            Alcotest.(check bool) "document samples on demand" true
              (match Option.bind (Json.member "samples" v) Json.number with
              | Some n -> n >= 2.
              | None -> false)))

let test_history_endpoint_404_without_provider () =
  let r = Metrics.create_registry () in
  Serve.with_server ~registry:r ~port:0 (fun server ->
      let body = Serve.scrape ~path:"/history" ~port:(Serve.port server) () in
      Alcotest.(check string) "a providerless endpoint answers 404"
        "no history on this endpoint\n" body)

let () =
  Alcotest.run "simq_obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "idempotent registration, kind checked" `Quick
            test_registration_idempotent_and_kind_checked;
          Alcotest.test_case "gauge last write wins" `Quick
            test_gauge_last_write_wins;
          Alcotest.test_case "with_enabled restores" `Quick
            test_with_enabled_restores;
          Alcotest.test_case "histogram bucketing" `Quick
            test_histogram_bucketing;
          Alcotest.test_case "histogram sum and count" `Quick
            test_histogram_sum_and_count;
          Alcotest.test_case "exposition stable and parseable" `Quick
            test_exposition_stable_and_parseable;
        ] );
      ( "labels",
        [
          Alcotest.test_case "labeled children" `Quick test_labeled_children;
          Alcotest.test_case "label value escaping" `Quick
            test_label_value_escaping;
          Alcotest.test_case "help escaping" `Quick test_help_escaping;
          Alcotest.test_case "invalid names rejected" `Quick
            test_invalid_names_rejected;
        ] );
      ( "grammar",
        Alcotest.test_case "strict checker sanity" `Quick
          test_strict_checker_sanity
        :: Alcotest.test_case "exposition conforms" `Quick
             test_exposition_conforms_to_strict_grammar
        :: List.map QCheck_alcotest.to_alcotest [ prop_exposition_grammar ] );
      ( "serve",
        [
          Alcotest.test_case "scrape equals dump" `Quick
            test_scrape_equals_dump;
          Alcotest.test_case "server stops" `Quick test_server_stops;
        ] );
      ( "state",
        [
          Alcotest.test_case "save/load round trip" `Quick
            test_state_roundtrip;
          Alcotest.test_case "load bypasses the collection gate" `Quick
            test_state_survives_disabled_collection;
          Alcotest.test_case "malformed state is a Failure" `Quick
            test_state_malformed_is_failure;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "merged totals vs domain count" `Quick
            test_merge_deterministic_across_domains;
          Alcotest.test_case "instrumented scan totals vs domain count" `Quick
            test_instrumented_scan_totals_deterministic;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "spans nest and never dangle" `Quick
            test_spans_nest_and_never_dangle;
          Alcotest.test_case "span closed on exception" `Quick
            test_span_closed_on_exception;
          Alcotest.test_case "disabled tracing is free" `Quick
            test_trace_disabled_is_free;
        ] );
      ( "request-ids",
        Alcotest.test_case "unique and scoped" `Quick
          test_request_ids_unique_and_scoped
        :: Alcotest.test_case "spans stamped across domains" `Quick
             test_span_trace_stamped_across_domains
        :: List.map QCheck_alcotest.to_alcotest [ prop_request_ids_unique ] );
      ( "slow-store",
        Alcotest.test_case "worst-k, deterministic ties" `Quick
          test_slow_store_worst_k
        :: List.map QCheck_alcotest.to_alcotest [ prop_slow_store_worst_k ] );
      ( "history",
        [
          Alcotest.test_case "window rates and quantiles" `Quick
            test_history_window_rates;
          Alcotest.test_case "reset clamps, ring bounded" `Quick
            test_history_reset_clamps_and_capacity;
          Alcotest.test_case "sampler leaves totals unchanged" `Quick
            test_history_sampler_keeps_totals;
          Alcotest.test_case "concurrent scrapes with a silent peer" `Quick
            test_concurrent_scrapes_with_silent_peer;
          Alcotest.test_case "/history is 404 without a provider" `Quick
            test_history_endpoint_404_without_provider;
        ] );
    ]
