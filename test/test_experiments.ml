(* Smoke tests for the experiment harness: the fast configurations must
   run to completion and their paper-vs-measured claims must hold. The
   timing-sensitive figures are exercised for completion only (CI boxes
   are noisy); the structural claims are asserted. *)

open Simq_experiments

let claims_hold name claims =
  List.iter
    (fun (c : Simq_report.Expectation.claim) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s (%s)" name c.Simq_report.Expectation.expectation
           c.Simq_report.Expectation.measured)
        true
        (c.Simq_report.Expectation.verdict <> Simq_report.Expectation.Fails))
    claims;
  Alcotest.(check bool) (name ^ " produced claims") true (claims <> [])

let test_edit_dp () = claims_hold "edit_dp" (Experiments.edit_dp ~fast:true)
let test_eq10 () = claims_hold "eq10" (Experiments.eq10 ~fast:true)
let test_vptree () = claims_hold "vptree" (Experiments.vptree ~fast:true)

let test_ablation_repr () =
  claims_hold "ablation_repr" (Experiments.ablation_repr ~fast:true)

let test_ablation_k () =
  claims_hold "ablation_k" (Experiments.ablation_k ~fast:true)

(* The fast scaling run asserts parallel = sequential (the speedup claim
   is only Partial in fast mode, so noisy CI timing cannot fail it);
   runs in a temporary directory so BENCH_par.json does not litter the
   source tree. *)
let test_par () =
  let cwd = Sys.getcwd () in
  let dir = Filename.temp_file "simq_par" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Sys.chdir dir;
  Fun.protect
    ~finally:(fun () ->
      Sys.chdir cwd;
      if Sys.file_exists (Filename.concat dir "BENCH_par.json") then
        Sys.remove (Filename.concat dir "BENCH_par.json");
      Sys.rmdir dir)
    (fun () ->
      let claims = Experiments.par ~fast:true in
      Alcotest.(check bool)
        "BENCH_par.json written" true
        (Sys.file_exists "BENCH_par.json");
      claims_hold "par" claims)

let test_table1_structure () =
  (* The structural Table 1 claims (answer sizes) are deterministic;
     filter out the timing ones. *)
  let claims = Experiments.table1 ~fast:true in
  let structural =
    List.filter
      (fun (c : Simq_report.Expectation.claim) ->
        let e = c.Simq_report.Expectation.expectation in
        String.length e > 0
        && (String.starts_with ~prefix:"method d finds" e
           || String.starts_with ~prefix:"the untransformed join" e))
      claims
  in
  Alcotest.(check int) "two structural claims" 2 (List.length structural);
  claims_hold "table1 structure" structural

let test_unknown_experiment () =
  match Experiments.run ~fast:true "nonsense" with
  | Error msg ->
    Alcotest.(check bool) "lists available" true
      (String.length msg > 0)
  | Ok () -> Alcotest.fail "expected an error"

let () =
  Alcotest.run "simq_experiments"
    [
      ( "framework",
        [
          Alcotest.test_case "edit_dp" `Quick test_edit_dp;
          Alcotest.test_case "eq10" `Quick test_eq10;
          Alcotest.test_case "vptree" `Quick test_vptree;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "representation" `Slow test_ablation_repr;
          Alcotest.test_case "feature count" `Slow test_ablation_k;
          Alcotest.test_case "multicore scaling" `Slow test_par;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table1 structural claims" `Slow
            test_table1_structure;
          Alcotest.test_case "unknown name" `Quick test_unknown_experiment;
        ] );
    ]
