open Simq_tsindex

let parse_ok text =
  match Ql.parse text with
  | Ok q -> q
  | Error msg -> Alcotest.failf "parse %S failed: %s" text msg

let parse_err text =
  match Ql.parse text with
  | Ok q -> Alcotest.failf "parse %S unexpectedly succeeded: %a" text Ql.pp q
  | Error msg -> msg

let test_parse_range () =
  match parse_ok "RANGE FROM stocks USING mavg(20) QUERY ibm EPS 2.5" with
  | Ql.Range { source; spec; query; epsilon; mean_window; std_band } ->
    Alcotest.(check string) "source" "stocks" source;
    Alcotest.(check string) "query" "ibm" query;
    Alcotest.(check (float 0.)) "epsilon" 2.5 epsilon;
    Alcotest.(check string) "spec" "mavg20" (Spec.name spec);
    Alcotest.(check bool) "no constraints" true
      (mean_window = None && std_band = None)
  | q -> Alcotest.failf "wrong query class: %a" Ql.pp q

let test_parse_range_constraints () =
  (match parse_ok "RANGE FROM r QUERY q EPS 1 MEAN 5 STD 1.3" with
  | Ql.Range { mean_window; std_band; _ } ->
    Alcotest.(check (option (float 0.))) "mean" (Some 5.) mean_window;
    Alcotest.(check (option (float 0.))) "std" (Some 1.3) std_band
  | q -> Alcotest.failf "wrong query class: %a" Ql.pp q);
  (* Constraints are order-insensitive and individually optional. *)
  match parse_ok "RANGE FROM r QUERY q EPS 1 STD 2" with
  | Ql.Range { mean_window; std_band; _ } ->
    Alcotest.(check (option (float 0.))) "mean absent" None mean_window;
    Alcotest.(check (option (float 0.))) "std" (Some 2.) std_band
  | q -> Alcotest.failf "wrong query class: %a" Ql.pp q

let test_parse_range_defaults_identity () =
  match parse_ok "range from r query q eps 1" with
  | Ql.Range { spec; epsilon; _ } ->
    Alcotest.(check string) "identity" "id" (Spec.name spec);
    Alcotest.(check (float 0.)) "int epsilon accepted" 1. epsilon
  | q -> Alcotest.failf "wrong query class: %a" Ql.pp q

let test_parse_nearest () =
  match parse_ok "NEAREST 5 FROM stocks USING rev QUERY ibm" with
  | Ql.Nearest { k; spec; _ } ->
    Alcotest.(check int) "k" 5 k;
    Alcotest.(check string) "rev" "rev" (Spec.name spec)
  | q -> Alcotest.failf "wrong query class: %a" Ql.pp q

let test_parse_pairs () =
  (match parse_ok "PAIRS FROM stocks USING warp(2) EPS 0.75 METHOD scan-early" with
  | Ql.Pairs { spec; epsilon; method_; _ } ->
    Alcotest.(check string) "warp" "warp2" (Spec.name spec);
    Alcotest.(check (float 0.)) "epsilon" 0.75 epsilon;
    Alcotest.(check bool) "method" true (method_ = Ql.Scan_early)
  | q -> Alcotest.failf "wrong query class: %a" Ql.pp q);
  match parse_ok "PAIRS FROM stocks EPS 1.0" with
  | Ql.Pairs { method_; _ } ->
    Alcotest.(check bool) "default method index" true (method_ = Ql.Index)
  | q -> Alcotest.failf "wrong query class: %a" Ql.pp q

let test_parse_case_insensitive () =
  match parse_ok "RaNgE fRoM r QuErY q EpSiLoN 3.5" with
  | Ql.Range { epsilon; _ } -> Alcotest.(check (float 0.)) "eps" 3.5 epsilon
  | q -> Alcotest.failf "wrong query class: %a" Ql.pp q

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_parse_errors () =
  let check_error text needle =
    let msg = parse_err text in
    Alcotest.(check bool)
      (Printf.sprintf "%S error mentions %S (got %S)" text needle msg)
      true
      (contains ~needle msg)
  in
  check_error "" "unexpected end";
  check_error "SELECT FROM r" "expected RANGE, NEAREST or PAIRS";
  check_error "RANGE FROM r QUERY q" "unexpected end";
  check_error "RANGE FROM r USING bogus QUERY q EPS 1" "unknown transformation";
  check_error "RANGE FROM r QUERY q EPS 1 extra" "trailing input";
  check_error "PAIRS FROM r EPS 1 METHOD turbo" "unknown join method";
  check_error "RANGE FROM r USING mavg 20 QUERY q EPS 1" "expected '('";
  check_error "RANGE FROM r QUERY q EPS abc" "expected epsilon value"

(* Non-finite numbers must die in the grammar: a NaN or infinite
   epsilon would silently make every lower-bound comparison false.
   The words "nan"/"inf" lex as identifiers (rejected where a number
   is expected); the sneaky route is a digit literal that overflows
   [float_of_string] to infinity. *)
let test_parse_rejects_non_finite () =
  let check_error text needle =
    let msg = parse_err text in
    Alcotest.(check bool)
      (Printf.sprintf "%S error mentions %S (got %S)" text needle msg)
      true
      (contains ~needle msg)
  in
  let overflow = "1" ^ String.make 400 '0' ^ ".0" in
  check_error ("RANGE FROM r QUERY q EPS " ^ overflow) "non-finite number";
  check_error ("RANGE FROM r QUERY q EPS 1 MEAN " ^ overflow)
    "non-finite number";
  check_error ("PAIRS FROM r EPS " ^ overflow) "non-finite number";
  check_error "RANGE FROM r QUERY q EPS nan" "expected epsilon value";
  check_error "RANGE FROM r QUERY q EPS inf" "expected epsilon value";
  check_error "RANGE FROM r QUERY q EPS -1.5" "expected epsilon value"

let test_pp_roundtrip () =
  List.iter
    (fun text ->
      let q = parse_ok text in
      let printed = Format.asprintf "%a" Ql.pp q in
      let q' = parse_ok printed in
      Alcotest.(check string) "pp parses back to itself" printed
        (Format.asprintf "%a" Ql.pp q'))
    [
      "RANGE FROM stocks USING mavg(20) QUERY ibm EPS 2.5";
      "RANGE FROM stocks QUERY ibm EPS 2.5 MEAN 5 STD 1.3";
      "NEAREST 3 FROM r QUERY q";
      "PAIRS FROM r USING rev EPS 1.25 METHOD scan";
    ]

(* The grammar property: every printable query round-trips through the
   parser, and the printed form is a fixed point — [pp] after a parse
   of [pp] output reproduces the string exactly. *)
let arb_query =
  let open QCheck.Gen in
  let name = oneofl [ "r"; "stocks"; "rel0" ] in
  let qname = oneofl [ "q"; "ibm"; "s42" ] in
  let spec =
    oneof
      [
        return Spec.Identity;
        return Spec.Reverse;
        map (fun m -> Spec.Moving_average m) (int_range 2 9);
        map
          (fun w -> Spec.Weighted_ma (Simq_dsp.Window.ascending w))
          (int_range 2 9);
        map (fun m -> Spec.Warp m) (int_range 1 4);
      ]
  in
  (* Finite positive values whose %g rendering stays inside the
     grammar's digits-and-dot lexicon (no exponent, no sign). *)
  let pos = map (fun i -> float_of_int i /. 8.) (int_range 1 800) in
  let gen =
    oneof
      [
        ( let* source = name in
          let* spec = spec in
          let* query = qname in
          let* epsilon = pos in
          let* mean_window = opt pos in
          let* std_band = opt (map (fun f -> 1. +. f) pos) in
          return
            (Ql.Range { source; spec; query; epsilon; mean_window; std_band })
        );
        ( let* k = int_range 1 20 in
          let* source = name in
          let* spec = spec in
          let* query = qname in
          return (Ql.Nearest { k; source; spec; query }) );
        ( let* source = name in
          let* spec = spec in
          let* epsilon = pos in
          let* method_ = oneofl [ Ql.Scan_full; Ql.Scan_early; Ql.Index ] in
          return (Ql.Pairs { source; spec; epsilon; method_ }) );
      ]
  in
  QCheck.make ~print:(Format.asprintf "%a" Ql.pp) gen

let prop_pp_parse_roundtrip =
  QCheck.Test.make ~name:"pp output reparses to the same query" ~count:200
    arb_query (fun q ->
      let printed = Format.asprintf "%a" Ql.pp q in
      match Ql.parse printed with
      | Error msg ->
        QCheck.Test.fail_reportf "pp output %S does not parse: %s" printed msg
      | Ok q' ->
        let reprinted = Format.asprintf "%a" Ql.pp q' in
        if String.equal printed reprinted then true
        else
          QCheck.Test.fail_reportf "not a fixed point: %S reparsed as %S"
            printed reprinted)

let () =
  Alcotest.run "simq_ql"
    [
      ( "parse",
        [
          Alcotest.test_case "range" `Quick test_parse_range;
          Alcotest.test_case "range constraints" `Quick
            test_parse_range_constraints;
          Alcotest.test_case "identity default" `Quick
            test_parse_range_defaults_identity;
          Alcotest.test_case "nearest" `Quick test_parse_nearest;
          Alcotest.test_case "pairs" `Quick test_parse_pairs;
          Alcotest.test_case "case insensitive" `Quick test_parse_case_insensitive;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "non-finite numbers rejected" `Quick
            test_parse_rejects_non_finite;
          Alcotest.test_case "pp roundtrip" `Quick test_pp_roundtrip;
          QCheck_alcotest.to_alcotest prop_pp_parse_roundtrip;
        ] );
    ]
