(* The CLI harness library (lib/cli): exit-code mapping, strictly
   positive --jobs parsing, metrics-port resolution, and the
   dump-on-every-exit-path guarantee of [with_obs] — the regression
   tests behind "every non-zero exit of bin/simq still writes the
   requested --metrics/--trace files". *)

module Cli = Simq_cli
module Metrics = Simq_obs.Metrics
module Trace = Simq_obs.Trace
module Serve = Simq_obs.Serve
module Error = Simq_fault.Error

let test_exit_codes () =
  let check name expected err =
    Alcotest.(check int) name expected (Cli.exit_code err)
  in
  check "usage" 1 (Cli.Usage "bad");
  check "file" 2 (Cli.File "missing");
  check "csv" 3 (Cli.Csv_error "ragged");
  check "fault" 4
    (Cli.Fault
       (Error.Budget_exceeded
          { resource = Error.Comparisons; spent = 9; limit = 3 }));
  check "timeout is a fault" 4
    (Cli.Fault (Error.Timeout { elapsed_s = 2.; deadline_s = 1. }));
  check "admission rejection" 5
    (Cli.Fault
       (Error.Rejected
          { resource = Error.Page_reads; estimated = 100; limit = 10 }))

let test_handle () =
  Alcotest.(check int) "ok is 0" 0 (Cli.handle (Ok ()));
  Alcotest.(check int)
    "error maps through exit_code" 5
    (Cli.handle
       (Result.Error
          (Cli.Fault
             (Error.Rejected
                { resource = Error.Comparisons; estimated = 4; limit = 2 }))))

let test_positive_int () =
  let parse = Cmdliner.Arg.conv_parser Cli.positive_int in
  (match parse "3" with
  | Ok 3 -> ()
  | _ -> Alcotest.fail "3 must parse");
  (match parse " 8 " with
  | Ok 8 -> ()
  | _ -> Alcotest.fail "surrounding whitespace must be accepted");
  List.iter
    (fun s ->
      match parse s with
      | Error (`Msg _) -> ()
      | Ok n -> Alcotest.failf "%S must be a usage error, parsed %d" s n)
    [ "0"; "-2"; "x"; ""; "1.5" ]

let test_resolve_metrics_port () =
  Unix.putenv "SIMQ_METRICS_PORT" "";
  Alcotest.(check (option int))
    "explicit wins" (Some 9100)
    (Cli.resolve_metrics_port (Some 9100));
  Alcotest.(check (option int))
    "unset env is none" None
    (Cli.resolve_metrics_port None);
  Unix.putenv "SIMQ_METRICS_PORT" "9234";
  Alcotest.(check (option int))
    "env supplies the port" (Some 9234)
    (Cli.resolve_metrics_port None);
  Unix.putenv "SIMQ_METRICS_PORT" "not-a-port";
  Alcotest.(check (option int))
    "garbage env counts as unset" None
    (Cli.resolve_metrics_port None);
  Unix.putenv "SIMQ_METRICS_PORT" "70000";
  Alcotest.(check (option int))
    "out-of-range env counts as unset" None
    (Cli.resolve_metrics_port None);
  Unix.putenv "SIMQ_METRICS_PORT" ""

let with_temp_files f =
  let metrics_file = Filename.temp_file "simq_cli" ".prom" in
  let trace_file = Filename.temp_file "simq_cli" ".json" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove metrics_file with Sys_error _ -> ());
      try Sys.remove trace_file with Sys_error _ -> ())
    (fun () -> f ~metrics_file ~trace_file)

let file_size file = (Unix.stat file).Unix.st_size

let check_dumped ~metrics_file ~trace_file =
  Alcotest.(check bool)
    "metrics file written" true
    (Sys.file_exists metrics_file && file_size metrics_file > 0);
  Alcotest.(check bool)
    "trace file written" true
    (Sys.file_exists trace_file && file_size trace_file > 0)

(* [with_obs] force-enables collection for the run; put the global
   flags back so later suites see the environment-driven default. *)
let quiet_obs f =
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Trace.set_enabled false)
    f

let test_with_obs_dumps_on_ok () =
  quiet_obs @@ fun () ->
  with_temp_files @@ fun ~metrics_file ~trace_file ->
  let result =
    Cli.with_obs ~metrics:(Some metrics_file) ~trace:(Some trace_file)
      (fun () ->
        Metrics.incr (Metrics.counter "simq_test_cli_ok_total");
        Ok ())
  in
  Alcotest.(check bool) "ok propagates" true (result = Ok ());
  check_dumped ~metrics_file ~trace_file

let test_with_obs_dumps_on_error () =
  quiet_obs @@ fun () ->
  with_temp_files @@ fun ~metrics_file ~trace_file ->
  let result =
    Cli.with_obs ~metrics:(Some metrics_file) ~trace:(Some trace_file)
      (fun () ->
        Metrics.incr (Metrics.counter "simq_test_cli_error_total");
        Result.Error (Cli.Usage "boom"))
  in
  (match result with
  | Result.Error (Cli.Usage "boom") -> ()
  | _ -> Alcotest.fail "the run's own error must win over the dump result");
  check_dumped ~metrics_file ~trace_file;
  let body = In_channel.with_open_text metrics_file In_channel.input_all in
  Alcotest.(check bool)
    "dump describes the failing run" true
    (let needle = "simq_test_cli_error_total" in
     let nh = String.length body and nn = String.length needle in
     let rec go i =
       if i + nn > nh then false
       else String.sub body i nn = needle || go (i + 1)
     in
     go 0)

let test_with_obs_dumps_on_raise () =
  quiet_obs @@ fun () ->
  with_temp_files @@ fun ~metrics_file ~trace_file ->
  (match
     Cli.with_obs ~metrics:(Some metrics_file) ~trace:(Some trace_file)
       (fun () -> failwith "kaboom")
   with
  | _ -> Alcotest.fail "the exception must propagate"
  | exception Failure msg when msg = "kaboom" -> ());
  check_dumped ~metrics_file ~trace_file

let test_with_obs_unwritable_metrics_is_file_error () =
  quiet_obs @@ fun () ->
  let result =
    Cli.with_obs
      ~metrics:(Some "/nonexistent-simq-dir/metrics.prom")
      ~trace:None
      (fun () -> Ok ())
  in
  match result with
  | Result.Error (Cli.File _) -> ()
  | _ -> Alcotest.fail "an unwritable dump destination is a File error"

let test_with_obs_unbindable_port_skips_run () =
  quiet_obs @@ fun () ->
  (* Occupy an ephemeral port, then ask with_obs for the same one. *)
  Serve.with_server ~port:0 @@ fun server ->
  let ran = ref false in
  let result =
    Cli.with_obs
      ~metrics_port:(Serve.port server)
      ~metrics:None ~trace:None
      (fun () ->
        ran := true;
        Ok ())
  in
  (match result with
  | Result.Error (Cli.Usage _) -> ()
  | _ -> Alcotest.fail "an unbindable port is a Usage error");
  Alcotest.(check bool) "f never ran" false !ran

let test_with_obs_serves_during_run () =
  quiet_obs @@ fun () ->
  let scraped = ref "" in
  let result =
    Cli.with_obs ~metrics_port:0 ~metrics:None ~trace:None (fun () ->
        Metrics.incr (Metrics.counter "simq_test_cli_live_total");
        (* Port 0 was rebound to an ephemeral port; with_obs printed it
           to stderr. Find the live server through a scrape of every
           candidate is overkill — instead serve a second registry and
           check the default-registry exposition directly. *)
        scraped := Metrics.exposition ();
        Ok ())
  in
  Alcotest.(check bool) "run completed" true (result = Ok ());
  Alcotest.(check bool)
    "collection was forced on" true
    (let needle = "simq_test_cli_live_total" in
     let body = !scraped in
     let nh = String.length body and nn = String.length needle in
     let rec go i =
       if i + nn > nh then false
       else String.sub body i nn = needle || go (i + 1)
     in
     go 0)

let test_scrape_dead_port_is_file_error () =
  (* Bind an ephemeral port, close it, and scrape the now-dead port:
     the connection refusal must come back as a one-line File error,
     never as an uncaught Unix_error. *)
  let dead_port =
    Serve.with_server ~port:0 (fun server -> Serve.port server)
  in
  match Cli.scrape ~host:"127.0.0.1" ~port:(Some dead_port) () with
  | Result.Error (Cli.File msg) ->
    Alcotest.(check bool) "message names the endpoint" true
      (let needle = Printf.sprintf "127.0.0.1:%d" dead_port in
       let nh = String.length msg and nn = String.length needle in
       let rec go i =
         if i + nn > nh then false
         else String.sub msg i nn = needle || go (i + 1)
       in
       go 0)
  | Result.Error _ -> Alcotest.fail "dead port must be a File error"
  | Ok () -> Alcotest.fail "a dead port cannot scrape"

let test_scrape_no_port_is_usage_error () =
  Unix.putenv "SIMQ_METRICS_PORT" "";
  match Cli.scrape ~host:"127.0.0.1" ~port:None () with
  | Result.Error (Cli.Usage _) -> ()
  | _ -> Alcotest.fail "a missing port is a Usage error"

let test_with_obs_dumps_profile_qlog_state_on_error () =
  quiet_obs @@ fun () ->
  let profile_file = Filename.temp_file "simq_cli" ".profile" in
  let qlog_file = Filename.temp_file "simq_cli" ".jsonl" in
  let state_file = Filename.temp_file "simq_cli" ".state" in
  Sys.remove state_file;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f -> try Sys.remove f with Sys_error _ -> ())
        [ profile_file; qlog_file; state_file ])
    (fun () ->
      let profile = Simq_obs.Profile.create () in
      let qlog = Simq_obs.Qlog.create qlog_file in
      let result =
        Cli.with_obs
          ~profile:(profile, profile_file)
          ~qlog ~metrics_state:state_file ~metrics:None ~trace:None
          (fun () ->
            let n = Simq_obs.Profile.enter (Some profile) "test.op" in
            Simq_obs.Profile.add_rows_out n 3;
            Simq_obs.Profile.leave (Some profile) n;
            Simq_obs.Qlog.log qlog
              {
                Simq_obs.Qlog.spec = "test";
                digest = "0";
                decision = None;
                path = None;
                deltas = [];
                duration_s = 0.;
                outcome = "usage";
                exit_code = 1;
                domains = 1;
                shards = None;
                trace_id = None;
              };
            Result.Error (Cli.Usage "boom"))
      in
      (match result with
      | Result.Error (Cli.Usage "boom") -> ()
      | _ -> Alcotest.fail "the run's own error must win");
      let read f = In_channel.with_open_text f In_channel.input_all in
      Alcotest.(check bool) "profile dumped" true
        (let body = read profile_file in
         let needle = "-> test.op" in
         let nh = String.length body and nn = String.length needle in
         let rec go i =
           if i + nn > nh then false
           else String.sub body i nn = needle || go (i + 1)
         in
         go 0);
      (match Simq_obs.Json.parse (String.trim (read qlog_file)) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "qlog line unparseable: %s" msg);
      Alcotest.(check bool) "qlog closed" true
        (Simq_obs.Qlog.lines_written qlog = 1);
      Alcotest.(check bool) "state saved" true
        (Sys.file_exists state_file && file_size state_file > 0))

let test_with_obs_bad_state_skips_run () =
  quiet_obs @@ fun () ->
  let state_file = Filename.temp_file "simq_cli" ".state" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove state_file with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_text state_file (fun oc ->
          Out_channel.output_string oc "not a state file");
      let ran = ref false in
      match
        Cli.with_obs ~metrics_state:state_file ~metrics:None ~trace:None
          (fun () ->
            ran := true;
            Ok ())
      with
      | Result.Error (Cli.File _) ->
        Alcotest.(check bool) "f never ran" false !ran
      | _ -> Alcotest.fail "an unreadable state file is a File error")

let test_with_obs_profile_json_export () =
  quiet_obs @@ fun () ->
  let dest = Filename.temp_file "simq_cli" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove dest with Sys_error _ -> ())
    (fun () ->
      let profile = Simq_obs.Profile.create () in
      let result =
        Cli.with_obs ~profile:(profile, dest) ~metrics:None ~trace:None
          (fun () ->
            Simq_obs.Profile.leave (Some profile)
              (Simq_obs.Profile.enter (Some profile) "test.json");
            Ok ())
      in
      Alcotest.(check bool) "run ok" true (result = Ok ());
      match
        Simq_obs.Json.parse
          (In_channel.with_open_text dest In_channel.input_all)
      with
      | Ok v -> (
        match Simq_obs.Json.member "event" v with
        | Some (Simq_obs.Json.Str "simq.profile") -> ()
        | _ -> Alcotest.fail "JSON export must be tagged simq.profile")
      | Error msg -> Alcotest.failf ".json destination must emit JSON: %s" msg)

let () =
  Alcotest.run "simq_cli"
    [
      ( "codes",
        [
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "handle" `Quick test_handle;
        ] );
      ( "args",
        [
          Alcotest.test_case "positive_int converter" `Quick
            test_positive_int;
          Alcotest.test_case "resolve_metrics_port" `Quick
            test_resolve_metrics_port;
        ] );
      ( "with_obs",
        [
          Alcotest.test_case "dumps on ok" `Quick test_with_obs_dumps_on_ok;
          Alcotest.test_case "dumps on error" `Quick
            test_with_obs_dumps_on_error;
          Alcotest.test_case "dumps on raise" `Quick
            test_with_obs_dumps_on_raise;
          Alcotest.test_case "unwritable metrics is a File error" `Quick
            test_with_obs_unwritable_metrics_is_file_error;
          Alcotest.test_case "unbindable port skips the run" `Quick
            test_with_obs_unbindable_port_skips_run;
          Alcotest.test_case "serves during the run" `Quick
            test_with_obs_serves_during_run;
          Alcotest.test_case "dumps profile/qlog/state on error" `Quick
            test_with_obs_dumps_profile_qlog_state_on_error;
          Alcotest.test_case "bad state file skips the run" `Quick
            test_with_obs_bad_state_skips_run;
          Alcotest.test_case ".json profile destination" `Quick
            test_with_obs_profile_json_export;
        ] );
      ( "scrape",
        [
          Alcotest.test_case "dead port is a one-line File error" `Quick
            test_scrape_dead_port_is_file_error;
          Alcotest.test_case "missing port is a Usage error" `Quick
            test_scrape_no_port_is_usage_error;
        ] );
    ]
