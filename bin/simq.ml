(* simq: command-line front end.

     simq generate --kind stock --count 1067 --length 128 -o market.rel
     simq info market.rel
     simq query market.rel "RANGE FROM r USING mavg(20) QUERY s0 EPS 2.5"
     simq experiments table1 --fast

   Query series are named [sN]: the relation's N-th series, optionally
   perturbed with --noise; warp(m) queries are expanded to the required
   length automatically. *)

open Cmdliner
module Relation = Simq_storage.Relation
module Budget = Simq_fault.Budget
module Otrace = Simq_obs.Trace
open Simq_tsindex

(* User-facing failures (Simq_cli.error): one line on stderr, a
   distinct exit code — 1 usage / bad arguments, 2 unreadable or
   corrupt files, 3 malformed CSV, 4 budget or fault errors from a
   checked query, 5 refused by admission control. Never a backtrace.
   The mapping and the obs-dump-on-every-exit guarantee live in
   Simq_cli so they are unit testable. *)
open Simq_cli

let ( let* ) r f = Result.bind r f
let usage msg = Error (Usage msg)

let load_relation file =
  if not (Sys.file_exists file) then
    Error (File (Printf.sprintf "no such file: %s" file))
  else
    match Relation.load file with
    | relation -> Ok relation
    | exception (Failure _ | End_of_file | Sys_error _) ->
      Error
        (File (Printf.sprintf "not a relation file (corrupt or truncated): %s" file))

(* --- parallelism --------------------------------------------------------- *)

let jobs_arg =
  Arg.(
    value
    & opt (some Simq_cli.positive_int) None
    & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:
           "Number of domains for parallel execution (overrides the \
            $(b,SIMQ_DOMAINS) environment variable; $(b,1) runs fully \
            sequentially). Must be an integer >= 1; anything else is a \
            usage error.")

let apply_jobs = function
  | None -> ()
  | Some domains -> Simq_parallel.Pool.set_default_domains domains

(* --- observability -------------------------------------------------------- *)

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Collect runtime metrics and dump a Prometheus-style text \
           exposition when the command finishes — to stdout, or to $(docv) \
           when one is given. The $(b,SIMQ_METRICS) environment variable \
           also enables collection (without the dump).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record execution spans and write them as Chrome trace-event JSON \
           to $(docv) when the command finishes (inspect with any trace \
           viewer: chrome://tracing, Perfetto, ...).")

let metrics_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "metrics-port" ] ~docv:"PORT"
        ~doc:
          "Serve the live Prometheus exposition over HTTP on \
           127.0.0.1:$(docv) for the duration of the command ($(b,0) picks \
           an ephemeral port, printed on stderr); scrape it with \
           $(b,simq scrape) or any Prometheus client. Implies metric \
           collection. The $(b,SIMQ_METRICS_PORT) environment variable \
           sets a default.")

(* --- generate ------------------------------------------------------------ *)

let generate kind count length seed out jobs =
  apply_jobs jobs;
  let batch =
    match kind with
    | `Walk -> Simq_series.Generator.random_walks ~seed ~count ~n:length
    | `Stock -> Simq_workload.Stocklike.batch ~seed ~count ~n:length
  in
  let relation = Relation.of_series ~name:(Filename.remove_extension (Filename.basename out)) batch in
  match Relation.save relation out with
  | () ->
    Printf.printf "wrote %d %s series of length %d to %s\n" count
      (match kind with `Walk -> "random-walk" | `Stock -> "stock-like")
      length out;
    Ok ()
  | exception Sys_error msg -> Error (File msg)

let kind_arg =
  let kinds = [ ("walk", `Walk); ("stock", `Stock) ] in
  Arg.(value & opt (enum kinds) `Stock & info [ "kind" ] ~doc:"Data kind: $(b,walk) (the paper's synthetic sequences) or $(b,stock) (regime-switching stock-like prices).")

let count_arg =
  Arg.(value & opt int 1067 & info [ "count" ] ~doc:"Number of series.")

let length_arg =
  Arg.(value & opt int 128 & info [ "length" ] ~doc:"Length of each series.")

let seed_arg = Arg.(value & opt int 1995 & info [ "seed" ] ~doc:"PRNG seed.")

let out_arg =
  Arg.(value & opt string "market.rel" & info [ "o"; "output" ] ~doc:"Output file.")

(* --- info ------------------------------------------------------------------ *)

let info_cmd_impl file =
  let* relation = load_relation file in
  Printf.printf "relation %s: %d series, %d logical pages\n"
    (Relation.name relation)
    (Relation.cardinality relation)
    (Relation.pages relation);
  if Relation.cardinality relation > 0 then begin
    let tuple = Relation.get relation 0 in
    Printf.printf "series length: %d\n" (Array.length tuple.Relation.data)
  end;
  Ok ()

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Relation file written by $(b,simq generate).")

(* --- query ------------------------------------------------------------------ *)

let resolve_query_series dataset spec ~name ~noise =
  let n = Dataset.series_length dataset in
  let* id =
    if String.length name >= 2 && name.[0] = 's' then
      match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
      | Some id when id >= 0 && id < Dataset.cardinality dataset -> Ok id
      | Some id -> usage (Printf.sprintf "series id %d out of range" id)
      | None -> usage (Printf.sprintf "bad query name %S (expected sN)" name)
    else usage (Printf.sprintf "bad query name %S (expected sN)" name)
  in
  let base = (Dataset.get dataset id).Dataset.series in
  let series =
    if noise > 0. then
      Simq_workload.Queries.perturb (Random.State.make [| 17 |]) base
        ~amount:noise
    else base
  in
  match spec with
  | Spec.Warp m -> Ok (Simq_series.Warp.expand m series)
  | _ ->
    assert (Spec.output_length spec ~n = n);
    Ok series

let run_parsed_query index dataset noise ~budget ~admission q =
  match q with
  | Ql.Range { spec; query; epsilon; mean_window = _; std_band = _; _ }
    when Option.is_some budget || admission ->
    (* Budgeted ranges go through the resilient planner: admission
       control (when enabled) vets the query before execution, then the
       index path runs under the budget and degrades to the scan when
       it fails. *)
    let budget = Option.value budget ~default:Budget.unlimited in
    let* series = resolve_query_series dataset spec ~name:query ~noise in
    let counters = Planner.create_counters () in
    (* Admission needs the selectivity histogram; collect is sampled
       from a fixed seed, so the estimate is deterministic. *)
    let stats = if admission then Some (Planner.collect dataset) else None in
    let policy = if admission then Some Simq_admission.default else None in
    let outcome, elapsed =
      Simq_report.Timer.time (fun () ->
          Planner.range_resilient ~spec ~budget ~counters ?stats
            ?admission:policy index ~query:series ~epsilon)
    in
    let* (result : Planner.resilient_result) =
      Result.map_error (fun e -> Fault e) outcome
    in
    Printf.printf "%d answers (path %s%s, %s)\n"
      (List.length result.Planner.answers)
      (Format.asprintf "%a" Planner.pp_plan result.Planner.executed)
      (match (result.Planner.degraded, result.Planner.index_error) with
      | false, _ -> ""
      | true, Some e -> Format.asprintf ", degraded: %a" Simq_fault.Error.pp e
      | true, None -> ", degraded before execution: admission control")
      (Format.asprintf "%a" Simq_report.Timer.pp_seconds elapsed);
    List.iter
      (fun ((e : Dataset.entry), d) ->
        Printf.printf "  %-12s distance %.4f\n" e.Dataset.name d)
      result.Planner.answers;
    Ok ()
  | Ql.Range { spec; query; epsilon; mean_window; std_band; _ } ->
    let* series = resolve_query_series dataset spec ~name:query ~noise in
    let (result : Kindex.range_result), elapsed =
      Simq_report.Timer.time (fun () ->
          Kindex.range ~spec ?mean_window ?std_band index ~query:series
            ~epsilon)
    in
    Printf.printf "%d answers (%d candidates, %d node accesses, %s)\n"
      (List.length result.Kindex.answers)
      result.Kindex.candidates result.Kindex.node_accesses
      (Format.asprintf "%a" Simq_report.Timer.pp_seconds elapsed);
    List.iter
      (fun ((e : Dataset.entry), d) ->
        Printf.printf "  %-12s distance %.4f\n" e.Dataset.name d)
      result.Kindex.answers;
    Ok ()
  | Ql.Nearest _ when Option.is_some budget ->
    usage "budgets (--deadline/--max-*) apply to RANGE and PAIRS scan queries"
  | Ql.Nearest { k; spec; query; _ } ->
    let* series = resolve_query_series dataset spec ~name:query ~noise in
    let results, elapsed =
      Simq_report.Timer.time (fun () ->
          Kindex.nearest ~spec index ~query:series ~k)
    in
    Printf.printf "%d nearest (%s)\n" (List.length results)
      (Format.asprintf "%a" Simq_report.Timer.pp_seconds elapsed);
    List.iter
      (fun ((e : Dataset.entry), d) ->
        Printf.printf "  %-12s distance %.4f\n" e.Dataset.name d)
      results;
    Ok ()
  | Ql.Pairs { method_ = Ql.Index; _ } when Option.is_some budget ->
    usage "budgets (--deadline/--max-*) apply to RANGE and PAIRS scan queries"
  | Ql.Pairs { spec; epsilon; method_; _ } ->
    let join index ~epsilon =
      match (budget, method_) with
      | Some budget, (Ql.Scan_full | Ql.Scan_early) ->
        Result.map_error
          (fun e -> Fault e)
          (Join.scan_checked ~spec ~abandon:(method_ = Ql.Scan_early) ~budget
             index ~epsilon)
      | None, Ql.Scan_full -> Ok (Join.scan_full ~spec index ~epsilon)
      | None, Ql.Scan_early -> Ok (Join.scan_early_abandon ~spec index ~epsilon)
      | _, Ql.Index -> Ok (Join.index_transformed ~spec index ~epsilon)
    in
    let outcome, elapsed =
      Simq_report.Timer.time (fun () -> join index ~epsilon)
    in
    let* (result : Join.result) = outcome in
    Printf.printf
      "%d pairs (%d distance computations, %d node accesses, %s)\n"
      (List.length result.Join.pairs)
      result.Join.distance_computations result.Join.node_accesses
      (Format.asprintf "%a" Simq_report.Timer.pp_seconds elapsed);
    List.iter
      (fun (i, j) ->
        let a = Dataset.get (Kindex.dataset index) i in
        let b = Dataset.get (Kindex.dataset index) j in
        Printf.printf "  %s ~ %s\n" a.Dataset.name b.Dataset.name)
      result.Join.pairs;
    Ok ()

let budget_of ~deadline ~max_page_reads ~max_comparisons ~max_node_accesses =
  match (deadline, max_page_reads, max_comparisons, max_node_accesses) with
  | None, None, None, None -> Ok None
  | _ -> (
    match
      Budget.create ?deadline_s:deadline ?max_page_reads ?max_comparisons
        ?max_node_accesses ()
    with
    | budget -> Ok (Some budget)
    | exception Invalid_argument msg -> usage msg)

let query_impl file text noise jobs metrics trace metrics_port admission
    deadline max_page_reads max_comparisons max_node_accesses =
  apply_jobs jobs;
  (* Every failure below this point — usage errors, bad budgets,
     budget exhaustion, admission rejections — still dumps the
     requested metrics/trace files on the way out. *)
  Simq_cli.with_obs
    ?metrics_port:(Simq_cli.resolve_metrics_port metrics_port)
    ~metrics ~trace (fun () ->
      let* budget =
        budget_of ~deadline ~max_page_reads ~max_comparisons
          ~max_node_accesses
      in
      let* relation = load_relation file in
      Otrace.with_span "query" @@ fun () ->
      let dataset =
        Otrace.with_span "prepare" (fun () -> Dataset.of_relation relation)
      in
      let index = Otrace.with_span "build" (fun () -> Kindex.build dataset) in
      let* q = Result.map_error (fun msg -> Usage msg) (Ql.parse text) in
      Otrace.with_span "execute" (fun () ->
          run_parsed_query index dataset noise ~budget ~admission q))

let ql_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY"
         ~doc:"Similarity query, e.g. 'RANGE FROM r USING mavg(20) QUERY s0 EPS 2.5'.")

let noise_arg =
  Arg.(value & opt float 0. & info [ "noise" ]
         ~doc:"Perturb the query series by this amount (uniform noise).")

let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline" ] ~docv:"SECONDS"
           ~doc:"Per-query wall-clock deadline; exceeding it fails the query \
                 with a timeout error (exit code 4).")

let max_page_reads_arg =
  Arg.(value & opt (some int) None
       & info [ "max-page-reads" ] ~docv:"N"
           ~doc:"Per-query budget of logical page reads.")

let max_comparisons_arg =
  Arg.(value & opt (some int) None
       & info [ "max-comparisons" ] ~docv:"N"
           ~doc:"Per-query budget of distance comparisons.")

let max_node_accesses_arg =
  Arg.(value & opt (some int) None
       & info [ "max-node-accesses" ] ~docv:"N"
           ~doc:"Per-query budget of R-tree node accesses; a RANGE query \
                 that exhausts it degrades to a sequential scan.")

let admission_arg =
  Arg.(value & flag
       & info [ "admission" ]
           ~doc:"Vet budgeted RANGE queries with cost-based admission \
                 control before execution: collect planner statistics, \
                 predict each path's cost from them and the live metrics \
                 registry, and degrade or reject (exit code 5) queries \
                 predicted to exceed the budget — before any page is read.")

(* --- import / export ------------------------------------------------------------ *)

let import_impl csv out =
  if not (Sys.file_exists csv) then
    Error (File (Printf.sprintf "no such file: %s" csv))
  else
    match
      Simq_storage.Csv.import
        ~name:(Filename.remove_extension (Filename.basename out))
        csv
    with
    | relation ->
      Relation.save relation out;
      Printf.printf "imported %d series into %s\n"
        (Relation.cardinality relation)
        out;
      Ok ()
    | exception Failure msg -> Error (Csv_error msg)
    | exception Sys_error msg -> Error (File msg)

let export_impl file out =
  let* relation = load_relation file in
  match Simq_storage.Csv.export relation out with
  | () ->
    Printf.printf "exported %d series to %s\n"
      (Relation.cardinality relation)
      out;
    Ok ()
  | exception Sys_error msg -> Error (File msg)
  | exception Failure msg -> Error (Csv_error msg)

(* --- experiments -------------------------------------------------------------- *)

let experiments_impl name fast jobs metrics trace metrics_port =
  apply_jobs jobs;
  Simq_cli.with_obs
    ?metrics_port:(Simq_cli.resolve_metrics_port metrics_port)
    ~metrics ~trace (fun () ->
      Result.map_error (fun msg -> Usage msg)
        (Simq_experiments.Experiments.run ~fast name))

(* --- scrape ---------------------------------------------------------------- *)

let scrape_impl host port =
  match Simq_cli.resolve_metrics_port port with
  | None ->
    usage "scrape: no port given (use --port or set SIMQ_METRICS_PORT)"
  | Some port -> (
    match Simq_obs.Serve.scrape ~host ~port () with
    | body ->
      print_string body;
      Ok ()
    | exception Unix.Unix_error (err, _, _) ->
      Error
        (File
           (Printf.sprintf "scrape http://%s:%d/metrics: %s" host port
              (Unix.error_message err)))
    | exception Failure msg ->
      Error
        (File (Printf.sprintf "scrape http://%s:%d/metrics: %s" host port msg)))

let experiment_arg =
  Arg.(value & pos 0 string "all" & info [] ~docv:"NAME"
         ~doc:"Experiment: fig8..fig12, table1, edit_dp, eq10, vptree, ablation_*, planner, par or all.")

let fast_arg =
  Arg.(value & flag & info [ "fast" ] ~doc:"Smaller data sizes (seconds instead of minutes).")

(* --- command wiring ------------------------------------------------------------- *)

let handle = Simq_cli.handle

let generate_cmd =
  let doc = "generate a relation of synthetic series" in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(
      const (fun kind count length seed out jobs ->
          handle (generate kind count length seed out jobs))
      $ kind_arg $ count_arg $ length_arg $ seed_arg $ out_arg $ jobs_arg)

let info_cmd =
  let doc = "describe a stored relation" in
  Cmd.v (Cmd.info "info" ~doc)
    Term.(const (fun file -> handle (info_cmd_impl file)) $ file_arg)

let query_cmd =
  let doc = "run a similarity query against a stored relation" in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const (fun file text noise jobs metrics trace metrics_port admission
                 deadline pages comparisons nodes ->
          handle
            (query_impl file text noise jobs metrics trace metrics_port
               admission deadline pages comparisons nodes))
      $ file_arg $ ql_arg $ noise_arg $ jobs_arg $ metrics_arg $ trace_arg
      $ metrics_port_arg $ admission_arg $ deadline_arg $ max_page_reads_arg
      $ max_comparisons_arg $ max_node_accesses_arg)

let import_cmd =
  let doc = "import a CSV file (one series per row: name,v1,v2,...)" in
  Cmd.v (Cmd.info "import" ~doc)
    Term.(
      const (fun csv out -> handle (import_impl csv out))
      $ Arg.(required & pos 0 (some string) None
             & info [] ~docv:"CSV" ~doc:"CSV file to import.")
      $ out_arg)

let export_cmd =
  let doc = "export a stored relation to CSV" in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(
      const (fun file out -> handle (export_impl file out))
      $ file_arg
      $ Arg.(value & opt string "market.csv"
             & info [ "o"; "output" ] ~doc:"Output CSV file."))

let experiments_cmd =
  let doc = "reproduce the paper's experiments" in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(
      const (fun name fast jobs metrics trace metrics_port ->
          handle (experiments_impl name fast jobs metrics trace metrics_port))
      $ experiment_arg $ fast_arg $ jobs_arg $ metrics_arg $ trace_arg
      $ metrics_port_arg)

let scrape_cmd =
  let doc = "fetch the exposition from a running --metrics-port server" in
  Cmd.v (Cmd.info "scrape" ~doc)
    Term.(
      const (fun host port -> handle (scrape_impl host port))
      $ Arg.(value & opt string "127.0.0.1"
             & info [ "host" ] ~docv:"HOST" ~doc:"Host to scrape.")
      $ Arg.(value & opt (some int) None
             & info [ "port" ] ~docv:"PORT"
                 ~doc:"Port of the running $(b,--metrics-port) server; \
                       defaults to $(b,SIMQ_METRICS_PORT)."))

let () =
  let doc = "similarity-based queries on time-series data" in
  let cmd =
    Cmd.group
      (Cmd.info "simq" ~doc ~version:"1.0.0")
      [
        generate_cmd; info_cmd; query_cmd; import_cmd; export_cmd;
        experiments_cmd; scrape_cmd;
      ]
  in
  exit (Cmd.eval' cmd)
