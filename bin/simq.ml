(* simq: command-line front end.

     simq generate --kind stock --count 1067 --length 128 -o market.rel
     simq info market.rel
     simq query market.rel "RANGE FROM r USING mavg(20) QUERY s0 EPS 2.5"
     simq experiments table1 --fast

   Query series are named [sN]: the relation's N-th series, optionally
   perturbed with --noise; warp(m) queries are expanded to the required
   length automatically. *)

open Cmdliner
module Relation = Simq_storage.Relation
module Budget = Simq_fault.Budget
module Otrace = Simq_obs.Trace
module Profile = Simq_obs.Profile
module Qlog = Simq_obs.Qlog
module Clock = Simq_obs.Clock
module Metrics = Simq_obs.Metrics
open Simq_tsindex

(* User-facing failures (Simq_cli.error): one line on stderr, a
   distinct exit code — 1 usage / bad arguments, 2 unreadable or
   corrupt files, 3 malformed CSV, 4 budget or fault errors from a
   checked query, 5 refused by admission control. Never a backtrace.
   The mapping and the obs-dump-on-every-exit guarantee live in
   Simq_cli so they are unit testable. *)
open Simq_cli

let ( let* ) r f = Result.bind r f
let usage msg = Error (Usage msg)

let load_relation file =
  if not (Sys.file_exists file) then
    Error (File (Printf.sprintf "no such file: %s" file))
  else
    match Relation.load file with
    | relation -> Ok relation
    | exception (Failure _ | End_of_file | Sys_error _) ->
      Error
        (File (Printf.sprintf "not a relation file (corrupt or truncated): %s" file))

(* --- parallelism --------------------------------------------------------- *)

let jobs_arg =
  Arg.(
    value
    & opt (some Simq_cli.positive_int) None
    & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:
           "Number of domains for parallel execution (overrides the \
            $(b,SIMQ_DOMAINS) environment variable; $(b,1) runs fully \
            sequentially). Must be an integer >= 1; anything else is a \
            usage error.")

let apply_jobs = function
  | None -> ()
  | Some domains -> Simq_parallel.Pool.set_default_domains domains

(* --- observability -------------------------------------------------------- *)

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Collect runtime metrics and dump a Prometheus-style text \
           exposition when the command finishes — to stdout, or to $(docv) \
           when one is given. The $(b,SIMQ_METRICS) environment variable \
           also enables collection (without the dump).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record execution spans and write them as Chrome trace-event JSON \
           to $(docv) when the command finishes (inspect with any trace \
           viewer: chrome://tracing, Perfetto, ...).")

let metrics_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "metrics-port" ] ~docv:"PORT"
        ~doc:
          "Serve the live Prometheus exposition over HTTP on \
           127.0.0.1:$(docv) for the duration of the command ($(b,0) picks \
           an ephemeral port, printed on stderr); scrape it with \
           $(b,simq scrape) or any Prometheus client. Implies metric \
           collection. The $(b,SIMQ_METRICS_PORT) environment variable \
           sets a default.")

let profile_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Record a per-query EXPLAIN ANALYZE operator tree — wall time, \
           rows, pages, candidates and survivors, early-abandon hits, \
           retry and degradation events per operator — and dump it when \
           the command finishes: to stdout, or to $(docv) when one is \
           given (a $(b,.json) suffix selects the JSON export over the \
           indented text tree).")

let qlog_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "qlog" ] ~docv:"FILE"
        ~doc:
          "Append one self-describing JSON line per executed query to \
           $(docv): spec and digest, admission decision, access path, \
           per-family counter deltas, duration, outcome with its exit \
           code, and domain count. Aggregate offline with \
           $(b,simq qlog-top).")

let qlog_sample_arg =
  Arg.(
    value
    & opt Simq_cli.positive_int 1
    & info [ "qlog-sample" ] ~docv:"N"
        ~doc:
          "Keep 1 in $(docv) query-log lines, keyed off the query \
           sequence number so reruns of a fixed workload log the same \
           queries. Default: keep everything.")

let qlog_slow_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "qlog-slow-ms" ] ~docv:"MS"
        ~doc:
          "Always log queries that take at least $(docv) milliseconds, \
           regardless of $(b,--qlog-sample).")

let qlog_max_bytes_arg =
  Arg.(
    value
    & opt (some Simq_cli.positive_int) None
    & info [ "qlog-max-bytes" ] ~docv:"BYTES"
        ~doc:
          "Rotate the $(b,--qlog) file by size: after a write that takes \
           it to $(docv) bytes or beyond it is renamed to $(i,FILE).1 \
           (replacing any previous rotation) and a fresh file is started, \
           so long runs cannot grow the log unboundedly. Sequence numbers \
           keep counting across rotations.")

let metrics_state_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-state" ] ~docv:"FILE"
        ~doc:
          "Persist the metrics registry across processes: load $(docv) \
           when it exists before the command runs and rewrite it \
           afterwards, so planner calibration gauges survive restarts. \
           Implies metric collection.")

let make_qlog ~sample ~slow_ms ~max_bytes = function
  | None -> Ok None
  | Some path -> (
    match Qlog.create ~sample ?slow_ms ?max_bytes path with
    | t -> Ok (Some t)
    | exception Sys_error msg -> Error (File msg)
    | exception Invalid_argument msg -> Error (Usage msg))

(* --- generate ------------------------------------------------------------ *)

let generate kind count length seed out jobs =
  apply_jobs jobs;
  let batch =
    match kind with
    | `Walk -> Simq_series.Generator.random_walks ~seed ~count ~n:length
    | `Stock -> Simq_workload.Stocklike.batch ~seed ~count ~n:length
  in
  let relation = Relation.of_series ~name:(Filename.remove_extension (Filename.basename out)) batch in
  match Relation.save relation out with
  | () ->
    Printf.printf "wrote %d %s series of length %d to %s\n" count
      (match kind with `Walk -> "random-walk" | `Stock -> "stock-like")
      length out;
    Ok ()
  | exception Sys_error msg -> Error (File msg)

let kind_arg =
  let kinds = [ ("walk", `Walk); ("stock", `Stock) ] in
  Arg.(value & opt (enum kinds) `Stock & info [ "kind" ] ~doc:"Data kind: $(b,walk) (the paper's synthetic sequences) or $(b,stock) (regime-switching stock-like prices).")

let count_arg =
  Arg.(value & opt int 1067 & info [ "count" ] ~doc:"Number of series.")

let length_arg =
  Arg.(value & opt int 128 & info [ "length" ] ~doc:"Length of each series.")

let seed_arg = Arg.(value & opt int 1995 & info [ "seed" ] ~doc:"PRNG seed.")

let out_arg =
  Arg.(value & opt string "market.rel" & info [ "o"; "output" ] ~doc:"Output file.")

(* --- info ------------------------------------------------------------------ *)

let info_cmd_impl file =
  let* relation = load_relation file in
  Printf.printf "relation %s: %d series, %d logical pages\n"
    (Relation.name relation)
    (Relation.cardinality relation)
    (Relation.pages relation);
  if Relation.cardinality relation > 0 then begin
    let tuple = Relation.get relation 0 in
    Printf.printf "series length: %d\n" (Array.length tuple.Relation.data)
  end;
  Ok ()

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Relation file written by $(b,simq generate).")

(* --- query ------------------------------------------------------------------ *)

let resolve_query_series dataset spec ~name ~noise =
  let n = Dataset.series_length dataset in
  let* id =
    if String.length name >= 2 && name.[0] = 's' then
      match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
      | Some id when id >= 0 && id < Dataset.cardinality dataset -> Ok id
      | Some id -> usage (Printf.sprintf "series id %d out of range" id)
      | None -> usage (Printf.sprintf "bad query name %S (expected sN)" name)
    else usage (Printf.sprintf "bad query name %S (expected sN)" name)
  in
  let base = (Dataset.get dataset id).Dataset.series in
  let series =
    if noise > 0. then
      Simq_workload.Queries.perturb (Random.State.make [| 17 |]) base
        ~amount:noise
    else base
  in
  match spec with
  | Spec.Warp m -> Ok (Simq_series.Warp.expand m series)
  | _ ->
    assert (Spec.output_length spec ~n = n);
    Ok series

(* What the query log needs to know about the executed query, filled in
   as the plan unfolds. *)
type query_note = {
  mutable note_path : string option;
  mutable note_decision : string option;
}

let run_parsed_query ?profile ~note index dataset noise ~budget ~admission q =
  match q with
  | Ql.Range { spec; query; epsilon; mean_window = _; std_band = _; _ }
    when Option.is_some budget || admission ->
    (* Budgeted ranges go through the resilient planner: admission
       control (when enabled) vets the query before execution, then the
       index path runs under the budget and degrades to the scan when
       it fails. *)
    let budget = Option.value budget ~default:Budget.unlimited in
    let* series = resolve_query_series dataset spec ~name:query ~noise in
    let counters = Planner.create_counters () in
    (* Admission needs the selectivity histogram; collect is sampled
       from a fixed seed, so the estimate is deterministic. *)
    let stats = if admission then Some (Planner.collect dataset) else None in
    let policy = if admission then Some Simq_admission.default else None in
    let outcome, elapsed =
      Simq_report.Timer.time (fun () ->
          Planner.range_resilient ~spec ~budget ~counters ?stats
            ?admission:policy ?profile index ~query:series ~epsilon)
    in
    (match outcome with
    | Ok (r : Planner.resilient_result) ->
      note.note_path <-
        Some (Format.asprintf "%a" Planner.pp_plan r.Planner.executed);
      note.note_decision <-
        Option.map Simq_admission.decision_name r.Planner.admission
    | Error e ->
      if Simq_fault.Error.kind e = "rejected" then
        note.note_decision <- Some "reject");
    let* (result : Planner.resilient_result) =
      Result.map_error (fun e -> Fault e) outcome
    in
    Printf.printf "%d answers (path %s%s, %s)\n"
      (List.length result.Planner.answers)
      (Format.asprintf "%a" Planner.pp_plan result.Planner.executed)
      (match (result.Planner.degraded, result.Planner.index_error) with
      | false, _ -> ""
      | true, Some e -> Format.asprintf ", degraded: %a" Simq_fault.Error.pp e
      | true, None -> ", degraded before execution: admission control")
      (Format.asprintf "%a" Simq_report.Timer.pp_seconds elapsed);
    List.iter
      (fun ((e : Dataset.entry), d) ->
        Printf.printf "  %-12s distance %.4f\n" e.Dataset.name d)
      result.Planner.answers;
    Ok ()
  | Ql.Range { spec; query; epsilon; mean_window; std_band; _ } ->
    let* series = resolve_query_series dataset spec ~name:query ~noise in
    note.note_path <- Some "index";
    let (result : Kindex.range_result), elapsed =
      Simq_report.Timer.time (fun () ->
          Kindex.range ~spec ?mean_window ?std_band ?profile index
            ~query:series ~epsilon)
    in
    Printf.printf "%d answers (%d candidates, %d node accesses, %s)\n"
      (List.length result.Kindex.answers)
      result.Kindex.candidates result.Kindex.node_accesses
      (Format.asprintf "%a" Simq_report.Timer.pp_seconds elapsed);
    List.iter
      (fun ((e : Dataset.entry), d) ->
        Printf.printf "  %-12s distance %.4f\n" e.Dataset.name d)
      result.Kindex.answers;
    Ok ()
  | Ql.Nearest _ when Option.is_some budget ->
    usage "budgets (--deadline/--max-*) apply to RANGE and PAIRS scan queries"
  | Ql.Nearest { k; spec; query; _ } ->
    let* series = resolve_query_series dataset spec ~name:query ~noise in
    note.note_path <- Some "index";
    let results, elapsed =
      Simq_report.Timer.time (fun () ->
          Kindex.nearest ~spec ?profile index ~query:series ~k)
    in
    Printf.printf "%d nearest (%s)\n" (List.length results)
      (Format.asprintf "%a" Simq_report.Timer.pp_seconds elapsed);
    List.iter
      (fun ((e : Dataset.entry), d) ->
        Printf.printf "  %-12s distance %.4f\n" e.Dataset.name d)
      results;
    Ok ()
  | Ql.Pairs { method_ = Ql.Index; _ } when Option.is_some budget ->
    usage "budgets (--deadline/--max-*) apply to RANGE and PAIRS scan queries"
  | Ql.Pairs { spec; epsilon; method_; _ } ->
    note.note_path <-
      Some (match method_ with Ql.Index -> "index" | _ -> "scan");
    let join index ~epsilon =
      match (budget, method_) with
      | Some budget, (Ql.Scan_full | Ql.Scan_early) ->
        Result.map_error
          (fun e -> Fault e)
          (Join.scan_checked ~spec ~abandon:(method_ = Ql.Scan_early) ~budget
             ?profile index ~epsilon)
      | None, Ql.Scan_full -> Ok (Join.scan_full ~spec ?profile index ~epsilon)
      | None, Ql.Scan_early ->
        Ok (Join.scan_early_abandon ~spec ?profile index ~epsilon)
      | _, Ql.Index -> Ok (Join.index_transformed ~spec ?profile index ~epsilon)
    in
    let outcome, elapsed =
      Simq_report.Timer.time (fun () -> join index ~epsilon)
    in
    let* (result : Join.result) = outcome in
    Printf.printf
      "%d pairs (%d distance computations, %d node accesses, %s)\n"
      (List.length result.Join.pairs)
      result.Join.distance_computations result.Join.node_accesses
      (Format.asprintf "%a" Simq_report.Timer.pp_seconds elapsed);
    List.iter
      (fun (i, j) ->
        let a = Dataset.get (Kindex.dataset index) i in
        let b = Dataset.get (Kindex.dataset index) j in
        Printf.printf "  %s ~ %s\n" a.Dataset.name b.Dataset.name)
      result.Join.pairs;
    Ok ()

let budget_of ~deadline ~max_page_reads ~max_comparisons ~max_node_accesses =
  match (deadline, max_page_reads, max_comparisons, max_node_accesses) with
  | None, None, None, None -> Ok None
  | _ -> (
    match
      Budget.create ?deadline_s:deadline ?max_page_reads ?max_comparisons
        ?max_node_accesses ()
    with
    | budget -> Ok (Some budget)
    | exception Invalid_argument msg -> usage msg)

(* The qlog outcome strings mirror the exit-code mapping: "ok"/0, the
   typed fault kind (4 or 5 for a rejection), and the flat usage /
   file / csv buckets. *)
let outcome_of_result = function
  | Ok () -> ("ok", 0)
  | Error e ->
    let kind =
      match e with
      | Fault f -> Simq_fault.Error.kind f
      | Usage _ -> "usage"
      | File _ -> "file"
      | Csv_error _ -> "csv"
    in
    (kind, Simq_cli.exit_code e)

let query_impl file text noise jobs metrics trace metrics_port metrics_state
    profile qlog qlog_sample qlog_slow_ms qlog_max_bytes admission deadline
    max_page_reads max_comparisons max_node_accesses =
  apply_jobs jobs;
  let profile = Option.map (fun dest -> (Profile.create (), dest)) profile in
  let* qlog =
    make_qlog ~sample:qlog_sample ~slow_ms:qlog_slow_ms
      ~max_bytes:qlog_max_bytes qlog
  in
  (* Every failure below this point — usage errors, bad budgets,
     budget exhaustion, admission rejections — still dumps the
     requested metrics/trace/profile/state files on the way out. *)
  Simq_cli.with_obs
    ?metrics_port:(Simq_cli.resolve_metrics_port metrics_port)
    ?metrics_state ?profile ?qlog ~metrics ~trace (fun () ->
      let* budget =
        budget_of ~deadline ~max_page_reads ~max_comparisons
          ~max_node_accesses
      in
      let* relation = load_relation file in
      Otrace.with_span "query" @@ fun () ->
      let dataset =
        Otrace.with_span "prepare" (fun () -> Dataset.of_relation relation)
      in
      let index = Otrace.with_span "build" (fun () -> Kindex.build dataset) in
      let* q = Result.map_error (fun msg -> Usage msg) (Ql.parse text) in
      let note = { note_path = None; note_decision = None } in
      let run () =
        Otrace.with_span "execute" (fun () ->
            run_parsed_query ?profile:(Option.map fst profile) ~note index
              dataset noise ~budget ~admission q)
      in
      match qlog with
      | None -> run ()
      | Some qlog ->
        let before = Metrics.snapshot () in
        let t0 = Clock.now_ns () in
        let result = run () in
        let duration_s = Clock.elapsed_s t0 in
        let outcome, code = outcome_of_result result in
        Qlog.log qlog
          {
            Qlog.spec = text;
            digest = String.sub (Digest.to_hex (Digest.string text)) 0 12;
            decision = note.note_decision;
            path = note.note_path;
            deltas = Qlog.counter_deltas ~before ~after:(Metrics.snapshot ());
            duration_s;
            outcome;
            exit_code = code;
            domains = Simq_parallel.Pool.domains (Simq_parallel.Pool.default ());
          };
        result)

let ql_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY"
         ~doc:"Similarity query, e.g. 'RANGE FROM r USING mavg(20) QUERY s0 EPS 2.5'.")

let noise_arg =
  Arg.(value & opt float 0. & info [ "noise" ]
         ~doc:"Perturb the query series by this amount (uniform noise).")

let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline" ] ~docv:"SECONDS"
           ~doc:"Per-query wall-clock deadline; exceeding it fails the query \
                 with a timeout error (exit code 4).")

let max_page_reads_arg =
  Arg.(value & opt (some int) None
       & info [ "max-page-reads" ] ~docv:"N"
           ~doc:"Per-query budget of logical page reads.")

let max_comparisons_arg =
  Arg.(value & opt (some int) None
       & info [ "max-comparisons" ] ~docv:"N"
           ~doc:"Per-query budget of distance comparisons.")

let max_node_accesses_arg =
  Arg.(value & opt (some int) None
       & info [ "max-node-accesses" ] ~docv:"N"
           ~doc:"Per-query budget of R-tree node accesses; a RANGE query \
                 that exhausts it degrades to a sequential scan.")

let admission_arg =
  Arg.(value & flag
       & info [ "admission" ]
           ~doc:"Vet budgeted RANGE queries with cost-based admission \
                 control before execution: collect planner statistics, \
                 predict each path's cost from them and the live metrics \
                 registry, and degrade or reject (exit code 5) queries \
                 predicted to exceed the budget — before any page is read.")

(* --- batch ----------------------------------------------------------------- *)

(* Query lines from a specs file ("-" reads stdin); blank lines and
   #-comments are skipped. *)
let read_spec_lines source =
  let read_all ic =
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    List.rev !lines
  in
  let* raw =
    if source = "-" then Ok (read_all stdin)
    else if not (Sys.file_exists source) then
      Error (File (Printf.sprintf "no such file: %s" source))
    else begin
      let ic = open_in source in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (read_all ic))
    end
  in
  Ok
    (List.filter_map
       (fun line ->
         let t = String.trim line in
         if t = "" || t.[0] = '#' then None else Some t)
       raw)

(* The qlog-replay seam: the specs of a sampled query log become the
   batch workload. Non-qlog JSON lines (and malformed ones) are
   skipped, so any --qlog file replays as written. *)
let read_qlog_specs file =
  if not (Sys.file_exists file) then
    Error (File (Printf.sprintf "no such file: %s" file))
  else begin
    let specs = ref [] in
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            if String.trim line <> "" then
              match Simq_obs.Json.parse line with
              | Ok json -> (
                match
                  ( Simq_obs.Json.member "event" json,
                    Simq_obs.Json.member "spec" json )
                with
                | Some (Simq_obs.Json.Str "simq.qlog"),
                  Some (Simq_obs.Json.Str spec) ->
                  specs := spec :: !specs
                | _ -> ())
              | Error _ -> ()
          done
        with End_of_file -> ());
    Ok (List.rev !specs)
  end

let batch_answers_json answers =
  Simq_obs.Json.Arr
    (List.map
       (fun ((e : Dataset.entry), d) ->
         Simq_obs.Json.Obj
           [
             ("id", Simq_obs.Json.Num (float_of_int e.Dataset.id));
             ("name", Simq_obs.Json.Str e.Dataset.name);
             ("distance", Simq_obs.Json.Num d);
           ])
       answers)

(* One batch query against the resident index: the executed path, the
   answer count and the rendered answers. Join scans run on the
   sequential pool — a batched query stays whole on its executing
   domain instead of fanning back out. *)
let run_batch_query ~profile index dataset noise text =
  let* q = Result.map_error (fun msg -> Usage msg) (Ql.parse text) in
  match q with
  | Ql.Range { spec; query; epsilon; mean_window; std_band; _ } ->
    let* series = resolve_query_series dataset spec ~name:query ~noise in
    let (result : Kindex.range_result) =
      Kindex.range ~spec ?mean_window ?std_band ?profile index ~query:series
        ~epsilon
    in
    Ok
      ( "index",
        List.length result.Kindex.answers,
        batch_answers_json result.Kindex.answers )
  | Ql.Nearest { k; spec; query; _ } ->
    let* series = resolve_query_series dataset spec ~name:query ~noise in
    let results = Kindex.nearest ~spec ?profile index ~query:series ~k in
    Ok ("index", List.length results, batch_answers_json results)
  | Ql.Pairs { spec; epsilon; method_; _ } ->
    let seq_pool = Simq_parallel.Pool.sequential in
    let (result : Join.result) =
      match method_ with
      | Ql.Scan_full -> Join.scan_full ~pool:seq_pool ~spec ?profile index ~epsilon
      | Ql.Scan_early ->
        Join.scan_early_abandon ~pool:seq_pool ~spec ?profile index ~epsilon
      | Ql.Index -> Join.index_transformed ~spec ?profile index ~epsilon
    in
    let pairs =
      Simq_obs.Json.Arr
        (List.map
           (fun (i, j) ->
             let a = Dataset.get dataset i and b = Dataset.get dataset j in
             Simq_obs.Json.Obj
               [
                 ("a", Simq_obs.Json.Str a.Dataset.name);
                 ("b", Simq_obs.Json.Str b.Dataset.name);
               ])
           result.Join.pairs)
    in
    Ok
      ( (match method_ with Ql.Index -> "index" | _ -> "scan"),
        List.length result.Join.pairs,
        pairs )

let digest_of text = String.sub (Digest.to_hex (Digest.string text)) 0 12

let batch_line ~seq ~spec (r : _ Simq_parallel.Batch.timed) =
  let module J = Simq_obs.Json in
  let head =
    [
      ("event", J.Str "simq.batch");
      ("v", J.Num 1.);
      ("seq", J.Num (float_of_int seq));
      ("spec", J.Str spec);
      ("digest", J.Str (digest_of spec));
      ("duration_ms", J.Num (r.Simq_parallel.Batch.duration_s *. 1000.));
    ]
  in
  let tail =
    match r.Simq_parallel.Batch.value with
    | Ok (path, count, answers) ->
      [
        ("path", J.Str path);
        ("outcome", J.Str "ok");
        ("exit", J.Num 0.);
        ("answers", J.Num (float_of_int count));
        ("results", answers);
      ]
    | Error e ->
      let outcome, code = outcome_of_result (Error e) in
      [
        ("path", J.Null);
        ("outcome", J.Str outcome);
        ("exit", J.Num (float_of_int code));
        ("error", J.Str (Simq_cli.message e));
      ]
  in
  J.to_string (J.Obj (head @ tail))

(* Per-query profile trees, dumped together: the text form labels each
   tree with its sequence number and spec, the .json form wraps them in
   one self-describing simq.batch-profile object. *)
let dump_batch_profiles ~dest ~texts profiles =
  let module J = Simq_obs.Json in
  let write oc =
    if Filename.check_suffix dest ".json" then begin
      let queries =
        Array.to_list
          (Array.mapi
             (fun i p ->
               J.Obj
                 [
                   ("seq", J.Num (float_of_int i));
                   ("spec", J.Str texts.(i));
                   ("profile", Profile.to_json p);
                 ])
             profiles)
      in
      output_string oc
        (J.to_string
           (J.Obj
              [
                ("event", J.Str "simq.batch-profile");
                ("v", J.Num 1.);
                ("queries", J.Arr queries);
              ]));
      output_char oc '\n'
    end
    else
      Array.iteri
        (fun i p ->
          Printf.fprintf oc "-- query #%d: %s\n%s" i texts.(i)
            (Profile.render p))
        profiles
  in
  if dest = "-" then begin
    write stdout;
    flush stdout;
    Ok ()
  end
  else
    match open_out dest with
    | oc ->
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc);
      Ok ()
    | exception Sys_error msg -> Error (File msg)

let batch_impl file specs from_qlog output noise jobs metrics trace
    metrics_port metrics_state profile qlog qlog_sample qlog_slow_ms
    qlog_max_bytes =
  apply_jobs jobs;
  let* texts =
    match (specs, from_qlog) with
    | Some _, Some _ -> usage "pass either SPECS or --from-qlog, not both"
    | Some source, None -> read_spec_lines source
    | None, Some log -> read_qlog_specs log
    | None, None ->
      usage "pass a SPECS file (\"-\" reads stdin) or --from-qlog FILE"
  in
  let* qlog =
    make_qlog ~sample:qlog_sample ~slow_ms:qlog_slow_ms
      ~max_bytes:qlog_max_bytes qlog
  in
  Simq_cli.with_obs
    ?metrics_port:(Simq_cli.resolve_metrics_port metrics_port)
    ?metrics_state ?qlog ~metrics ~trace (fun () ->
      let* relation = load_relation file in
      let* out =
        match output with
        | None -> Ok None
        | Some path -> (
          match open_out path with
          | oc -> Ok (Some oc)
          | exception Sys_error msg -> Error (File msg))
      in
      Fun.protect
        ~finally:(fun () ->
          match out with Some oc -> close_out_noerr oc | None -> flush stdout)
        (fun () ->
          Otrace.with_span "batch" @@ fun () ->
          let dataset =
            Otrace.with_span "prepare" (fun () -> Dataset.of_relation relation)
          in
          let index =
            Otrace.with_span "build" (fun () -> Kindex.build dataset)
          in
          let texts = Array.of_list texts in
          let n = Array.length texts in
          let profiles =
            Option.map
              (fun _ -> Array.init n (fun _ -> Profile.create ()))
              profile
          in
          (* A failed query becomes its own error line; the rest of the
             batch still runs, and the command still exits 0 — this is
             the serving path, not a transaction. *)
          let run ~profile text =
            match run_batch_query ~profile index dataset noise text with
            | r -> r
            | exception Invalid_argument msg -> Error (Usage msg)
          in
          let results = Simq_parallel.Batch.map_timed ?profiles run texts in
          let oc = Option.value out ~default:stdout in
          let ok_count = ref 0 in
          Array.iteri
            (fun i r ->
              (match r.Simq_parallel.Batch.value with
              | Ok _ -> incr ok_count
              | Error _ -> ());
              output_string oc (batch_line ~seq:i ~spec:texts.(i) r);
              output_char oc '\n')
            results;
          flush oc;
          (* The query log is written after the batch, in query order on
             this domain, so qlog sampling stays a pure function of the
             sequence number at every pool size. Per-query counter
             deltas are not separable under parallel execution, so the
             deltas field stays empty. *)
          (match qlog with
          | None -> ()
          | Some qlog ->
            let domains =
              Simq_parallel.Pool.domains (Simq_parallel.Pool.default ())
            in
            Array.iteri
              (fun i (r : _ Simq_parallel.Batch.timed) ->
                let outcome, code, path =
                  match r.Simq_parallel.Batch.value with
                  | Ok (path, _, _) -> ("ok", 0, Some path)
                  | Error e ->
                    let outcome, code = outcome_of_result (Error e) in
                    (outcome, code, None)
                in
                Qlog.log qlog
                  {
                    Qlog.spec = texts.(i);
                    digest = digest_of texts.(i);
                    decision = None;
                    path;
                    deltas = [];
                    duration_s = r.Simq_parallel.Batch.duration_s;
                    outcome;
                    exit_code = code;
                    domains;
                  })
              results);
          let* () =
            match (profile, profiles) with
            | Some dest, Some profiles ->
              dump_batch_profiles ~dest ~texts profiles
            | _ -> Ok ()
          in
          Printf.eprintf "simq: batch: %d queries (%d ok, %d failed), %d domains\n%!"
            n !ok_count (n - !ok_count)
            (Simq_parallel.Pool.domains (Simq_parallel.Pool.default ()));
          Ok ()))

let specs_arg =
  Arg.(
    value
    & pos 1 (some string) None
    & info [] ~docv:"SPECS"
        ~doc:
          "File of query specs, one query per line ($(b,-) reads stdin); \
           blank lines and $(b,#)-comments are skipped. Exactly one of \
           $(i,SPECS) and $(b,--from-qlog) must be given.")

let from_qlog_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "from-qlog" ] ~docv:"FILE"
        ~doc:
          "Replay the specs of a $(b,--qlog) query log as the batch \
           workload: every $(b,simq.qlog) line's spec is re-executed, in \
           log order. Lines of other event types are skipped.")

let batch_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write the JSON result lines to $(docv) instead of stdout.")

(* --- import / export ------------------------------------------------------------ *)

let import_impl csv out =
  if not (Sys.file_exists csv) then
    Error (File (Printf.sprintf "no such file: %s" csv))
  else
    match
      Simq_storage.Csv.import
        ~name:(Filename.remove_extension (Filename.basename out))
        csv
    with
    | relation ->
      Relation.save relation out;
      Printf.printf "imported %d series into %s\n"
        (Relation.cardinality relation)
        out;
      Ok ()
    | exception Failure msg -> Error (Csv_error msg)
    | exception Sys_error msg -> Error (File msg)

let export_impl file out =
  let* relation = load_relation file in
  match Simq_storage.Csv.export relation out with
  | () ->
    Printf.printf "exported %d series to %s\n"
      (Relation.cardinality relation)
      out;
    Ok ()
  | exception Sys_error msg -> Error (File msg)
  | exception Failure msg -> Error (Csv_error msg)

(* --- experiments -------------------------------------------------------------- *)

let experiments_impl name fast jobs metrics trace metrics_port metrics_state =
  apply_jobs jobs;
  Simq_cli.with_obs
    ?metrics_port:(Simq_cli.resolve_metrics_port metrics_port)
    ?metrics_state ~metrics ~trace (fun () ->
      Result.map_error (fun msg -> Usage msg)
        (Simq_experiments.Experiments.run ~fast name))

(* --- scrape ---------------------------------------------------------------- *)

let scrape_impl host port = Simq_cli.scrape ~host ~port

(* --- qlog-top --------------------------------------------------------------- *)

let qlog_top_impl file top =
  if not (Sys.file_exists file) then
    Error (File (Printf.sprintf "no such file: %s" file))
  else begin
    let parsed = ref [] in
    let malformed = ref 0 in
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            if String.trim line <> "" then
              match Simq_obs.Json.parse line with
              | Ok json -> parsed := json :: !parsed
              | Error _ -> incr malformed
          done
        with End_of_file -> ());
    let agg = Qlog.aggregate ~top (List.rev !parsed) in
    Printf.printf "%s: %d entries, total %.1f ms\n" file agg.Qlog.entries
      (agg.Qlog.total_duration_s *. 1000.);
    if !malformed > 0 then
      Printf.printf "  (%d malformed lines skipped)\n" !malformed;
    let breakdown label table =
      if table <> [] then
        Printf.printf "%-12s %s\n" (label ^ ":")
          (String.concat ", "
             (List.map (fun (k, n) -> Printf.sprintf "%s %d" k n) table))
    in
    breakdown "by path" agg.Qlog.by_path;
    breakdown "by decision" agg.Qlog.by_decision;
    breakdown "by outcome" agg.Qlog.by_outcome;
    if agg.Qlog.top_by_duration <> [] then begin
      Printf.printf "top by duration:\n";
      List.iter
        (fun (seq, spec, d) ->
          Printf.printf "  #%-4d %-44s %10.1f ms\n" seq spec (d *. 1000.))
        agg.Qlog.top_by_duration
    end;
    if agg.Qlog.top_by_pages <> [] then begin
      Printf.printf "top by pages:\n";
      List.iter
        (fun (seq, spec, pages) ->
          Printf.printf "  #%-4d %-44s %7d pages\n" seq spec pages)
        agg.Qlog.top_by_pages
    end;
    Ok ()
  end

let experiment_arg =
  Arg.(value & pos 0 string "all" & info [] ~docv:"NAME"
         ~doc:"Experiment: fig8..fig12, table1, edit_dp, eq10, vptree, ablation_*, planner, par or all.")

let fast_arg =
  Arg.(value & flag & info [ "fast" ] ~doc:"Smaller data sizes (seconds instead of minutes).")

(* --- command wiring ------------------------------------------------------------- *)

let handle = Simq_cli.handle

let generate_cmd =
  let doc = "generate a relation of synthetic series" in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(
      const (fun kind count length seed out jobs ->
          handle (generate kind count length seed out jobs))
      $ kind_arg $ count_arg $ length_arg $ seed_arg $ out_arg $ jobs_arg)

let info_cmd =
  let doc = "describe a stored relation" in
  Cmd.v (Cmd.info "info" ~doc)
    Term.(const (fun file -> handle (info_cmd_impl file)) $ file_arg)

let query_cmd =
  let doc = "run a similarity query against a stored relation" in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const (fun file text noise jobs metrics trace metrics_port metrics_state
                 profile qlog qlog_sample qlog_slow_ms qlog_max_bytes admission
                 deadline pages comparisons nodes ->
          handle
            (query_impl file text noise jobs metrics trace metrics_port
               metrics_state profile qlog qlog_sample qlog_slow_ms
               qlog_max_bytes admission deadline pages comparisons nodes))
      $ file_arg $ ql_arg $ noise_arg $ jobs_arg $ metrics_arg $ trace_arg
      $ metrics_port_arg $ metrics_state_arg $ profile_arg $ qlog_arg
      $ qlog_sample_arg $ qlog_slow_ms_arg $ qlog_max_bytes_arg
      $ admission_arg $ deadline_arg $ max_page_reads_arg
      $ max_comparisons_arg $ max_node_accesses_arg)

let batch_cmd =
  let doc =
    "run a whole file of similarity queries as one batch over a resident \
     index"
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(
      const (fun file specs from_qlog output noise jobs metrics trace
                 metrics_port metrics_state profile qlog qlog_sample
                 qlog_slow_ms qlog_max_bytes ->
          handle
            (batch_impl file specs from_qlog output noise jobs metrics trace
               metrics_port metrics_state profile qlog qlog_sample
               qlog_slow_ms qlog_max_bytes))
      $ file_arg $ specs_arg $ from_qlog_arg $ batch_out_arg $ noise_arg
      $ jobs_arg $ metrics_arg $ trace_arg $ metrics_port_arg
      $ metrics_state_arg $ profile_arg $ qlog_arg $ qlog_sample_arg
      $ qlog_slow_ms_arg $ qlog_max_bytes_arg)

let import_cmd =
  let doc = "import a CSV file (one series per row: name,v1,v2,...)" in
  Cmd.v (Cmd.info "import" ~doc)
    Term.(
      const (fun csv out -> handle (import_impl csv out))
      $ Arg.(required & pos 0 (some string) None
             & info [] ~docv:"CSV" ~doc:"CSV file to import.")
      $ out_arg)

let export_cmd =
  let doc = "export a stored relation to CSV" in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(
      const (fun file out -> handle (export_impl file out))
      $ file_arg
      $ Arg.(value & opt string "market.csv"
             & info [ "o"; "output" ] ~doc:"Output CSV file."))

let experiments_cmd =
  let doc = "reproduce the paper's experiments" in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(
      const (fun name fast jobs metrics trace metrics_port metrics_state ->
          handle
            (experiments_impl name fast jobs metrics trace metrics_port
               metrics_state))
      $ experiment_arg $ fast_arg $ jobs_arg $ metrics_arg $ trace_arg
      $ metrics_port_arg $ metrics_state_arg)

let qlog_top_cmd =
  let doc = "aggregate a --qlog file: totals, breakdowns, top-k queries" in
  Cmd.v (Cmd.info "qlog-top" ~doc)
    Term.(
      const (fun file top -> handle (qlog_top_impl file top))
      $ Arg.(required & pos 0 (some string) None
             & info [] ~docv:"FILE"
                 ~doc:"Query-log file written by $(b,--qlog).")
      $ Arg.(value & opt Simq_cli.positive_int 5
             & info [ "top" ] ~docv:"K"
                 ~doc:"Entries per ranking (slowest, most pages)."))

let scrape_cmd =
  let doc = "fetch the exposition from a running --metrics-port server" in
  Cmd.v (Cmd.info "scrape" ~doc)
    Term.(
      const (fun host port -> handle (scrape_impl host port))
      $ Arg.(value & opt string "127.0.0.1"
             & info [ "host" ] ~docv:"HOST" ~doc:"Host to scrape.")
      $ Arg.(value & opt (some int) None
             & info [ "port" ] ~docv:"PORT"
                 ~doc:"Port of the running $(b,--metrics-port) server; \
                       defaults to $(b,SIMQ_METRICS_PORT)."))

let () =
  let doc = "similarity-based queries on time-series data" in
  let cmd =
    Cmd.group
      (Cmd.info "simq" ~doc ~version:"1.0.0")
      [
        generate_cmd; info_cmd; query_cmd; batch_cmd; import_cmd; export_cmd;
        experiments_cmd; qlog_top_cmd; scrape_cmd;
      ]
  in
  exit (Cmd.eval' cmd)
