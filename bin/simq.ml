(* simq: command-line front end.

     simq generate --kind stock --count 1067 --length 128 -o market.rel
     simq info market.rel
     simq query market.rel "RANGE FROM r USING mavg(20) QUERY s0 EPS 2.5"
     simq experiments table1 --fast

   Query series are named [sN]: the relation's N-th series, optionally
   perturbed with --noise; warp(m) queries are expanded to the required
   length automatically. *)

open Cmdliner
module Relation = Simq_storage.Relation
module Budget = Simq_fault.Budget
module Otrace = Simq_obs.Trace
module Profile = Simq_obs.Profile
module Qlog = Simq_obs.Qlog
module Clock = Simq_obs.Clock
module Metrics = Simq_obs.Metrics
open Simq_tsindex

(* User-facing failures (Simq_cli.error): one line on stderr, a
   distinct exit code — 1 usage / bad arguments, 2 unreadable or
   corrupt files, 3 malformed CSV, 4 budget or fault errors from a
   checked query, 5 refused by admission control. Never a backtrace.
   The mapping and the obs-dump-on-every-exit guarantee live in
   Simq_cli so they are unit testable. *)
open Simq_cli

let ( let* ) r f = Result.bind r f
let usage msg = Error (Usage msg)

let load_relation file =
  if not (Sys.file_exists file) then
    Error (File (Printf.sprintf "no such file: %s" file))
  else
    match Relation.load file with
    | relation -> Ok relation
    | exception (Failure _ | End_of_file | Sys_error _) ->
      Error
        (File (Printf.sprintf "not a relation file (corrupt or truncated): %s" file))

(* --- parallelism --------------------------------------------------------- *)

let jobs_arg =
  Arg.(
    value
    & opt (some Simq_cli.positive_int) None
    & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:
           "Number of domains for parallel execution (overrides the \
            $(b,SIMQ_DOMAINS) environment variable; $(b,1) runs fully \
            sequentially). Must be an integer >= 1; anything else is a \
            usage error.")

let apply_jobs = function
  | None -> ()
  | Some domains -> Simq_parallel.Pool.set_default_domains domains

(* --- observability -------------------------------------------------------- *)

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Collect runtime metrics and dump a Prometheus-style text \
           exposition when the command finishes — to stdout, or to $(docv) \
           when one is given. The $(b,SIMQ_METRICS) environment variable \
           also enables collection (without the dump).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record execution spans and write them as Chrome trace-event JSON \
           to $(docv) when the command finishes (inspect with any trace \
           viewer: chrome://tracing, Perfetto, ...).")

let metrics_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "metrics-port" ] ~docv:"PORT"
        ~doc:
          "Serve the live Prometheus exposition over HTTP on \
           127.0.0.1:$(docv) for the duration of the command ($(b,0) picks \
           an ephemeral port, printed on stderr); scrape it with \
           $(b,simq scrape) or any Prometheus client. Implies metric \
           collection. The $(b,SIMQ_METRICS_PORT) environment variable \
           sets a default.")

let profile_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Record a per-query EXPLAIN ANALYZE operator tree — wall time, \
           rows, pages, candidates and survivors, early-abandon hits, \
           retry and degradation events per operator — and dump it when \
           the command finishes: to stdout, or to $(docv) when one is \
           given (a $(b,.json) suffix selects the JSON export over the \
           indented text tree).")

let qlog_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "qlog" ] ~docv:"FILE"
        ~doc:
          "Append one self-describing JSON line per executed query to \
           $(docv): spec and digest, admission decision, access path, \
           per-family counter deltas, duration, outcome with its exit \
           code, and domain count. Aggregate offline with \
           $(b,simq qlog-top).")

let qlog_sample_arg =
  Arg.(
    value
    & opt Simq_cli.positive_int 1
    & info [ "qlog-sample" ] ~docv:"N"
        ~doc:
          "Keep 1 in $(docv) query-log lines, keyed off the query \
           sequence number so reruns of a fixed workload log the same \
           queries. Default: keep everything.")

let qlog_slow_ms_arg =
  Arg.(
    value
    & opt (some Simq_cli.finite_float) None
    & info [ "qlog-slow-ms" ] ~docv:"MS"
        ~doc:
          "Always log queries that take at least $(docv) milliseconds, \
           regardless of $(b,--qlog-sample).")

let qlog_max_bytes_arg =
  Arg.(
    value
    & opt (some Simq_cli.positive_int) None
    & info [ "qlog-max-bytes" ] ~docv:"BYTES"
        ~doc:
          "Rotate the $(b,--qlog) file by size: after a write that takes \
           it to $(docv) bytes or beyond it is renamed to $(i,FILE).1 \
           (replacing any previous rotation) and a fresh file is started, \
           so long runs cannot grow the log unboundedly. Sequence numbers \
           keep counting across rotations.")

let metrics_state_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-state" ] ~docv:"FILE"
        ~doc:
          "Persist the metrics registry across processes: load $(docv) \
           when it exists before the command runs and rewrite it \
           afterwards, so planner calibration gauges survive restarts. \
           Implies metric collection.")

let make_qlog ~sample ~slow_ms ~max_bytes = function
  | None -> Ok None
  | Some path -> (
    match Qlog.create ~sample ?slow_ms ?max_bytes path with
    | t -> Ok (Some t)
    | exception Sys_error msg -> Error (File msg)
    | exception Invalid_argument msg -> Error (Usage msg))

(* --- generate ------------------------------------------------------------ *)

let generate kind count length seed out jobs =
  apply_jobs jobs;
  let batch =
    match kind with
    | `Walk -> Simq_series.Generator.random_walks ~seed ~count ~n:length
    | `Stock -> Simq_workload.Stocklike.batch ~seed ~count ~n:length
  in
  let relation = Relation.of_series ~name:(Filename.remove_extension (Filename.basename out)) batch in
  match Relation.save relation out with
  | () ->
    Printf.printf "wrote %d %s series of length %d to %s\n" count
      (match kind with `Walk -> "random-walk" | `Stock -> "stock-like")
      length out;
    Ok ()
  | exception Sys_error msg -> Error (File msg)

let kind_arg =
  let kinds = [ ("walk", `Walk); ("stock", `Stock) ] in
  Arg.(value & opt (enum kinds) `Stock & info [ "kind" ] ~doc:"Data kind: $(b,walk) (the paper's synthetic sequences) or $(b,stock) (regime-switching stock-like prices).")

let count_arg =
  Arg.(value & opt int 1067 & info [ "count" ] ~doc:"Number of series.")

let length_arg =
  Arg.(value & opt int 128 & info [ "length" ] ~doc:"Length of each series.")

let seed_arg = Arg.(value & opt int 1995 & info [ "seed" ] ~doc:"PRNG seed.")

let out_arg =
  Arg.(value & opt string "market.rel" & info [ "o"; "output" ] ~doc:"Output file.")

(* --- info ------------------------------------------------------------------ *)

let info_cmd_impl file =
  let* relation = load_relation file in
  Printf.printf "relation %s: %d series, %d logical pages\n"
    (Relation.name relation)
    (Relation.cardinality relation)
    (Relation.pages relation);
  if Relation.cardinality relation > 0 then begin
    let tuple = Relation.get relation 0 in
    Printf.printf "series length: %d\n" (Array.length tuple.Relation.data)
  end;
  Ok ()

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Relation file written by $(b,simq generate).")

(* --- query ------------------------------------------------------------------ *)

(* The sN-name convention and the engine behind serve/batch live in
   Simq_serve.Engine; the one-shot query paths below share them. *)
let resolve_query_series = Simq_serve.Engine.resolve_query_series

(* What the query log needs to know about the executed query, filled in
   as the plan unfolds. *)
type query_note = {
  mutable note_path : string option;
  mutable note_decision : string option;
  mutable note_shards : Qlog.shard_counts option;
}

let note_shard_report note (r : Simq_shard.report) =
  note.note_shards <-
    Some
      {
        Qlog.fanout = r.Simq_shard.fanout;
        pruned = r.Simq_shard.pruned;
        degraded = r.Simq_shard.degraded;
      }

(* Per-shard admission decisions fold into one logged decision:
   reject > degrade_to_scan > admit. *)
let decision_rank = function
  | Simq_admission.Admit -> 0
  | Simq_admission.Degrade_to_scan -> 1
  | Simq_admission.Reject _ -> 2

let note_worst_decision note =
  let worst = ref None in
  fun d ->
    match !worst with
    | Some w when decision_rank w >= decision_rank d -> ()
    | _ ->
      worst := Some d;
      note.note_decision <- Some (Simq_admission.decision_name d)

let report_string (r : Simq_shard.report) =
  Printf.sprintf "%d shards: fanout %d, pruned %d, degraded %d"
    r.Simq_shard.shards r.Simq_shard.fanout r.Simq_shard.pruned
    r.Simq_shard.degraded

let print_answers answers =
  List.iter
    (fun ((e : Dataset.entry), d) ->
      Printf.printf "  %-12s distance %.4f\n" e.Dataset.name d)
    answers

(* The monolithic paths' sketch funnel / NN bound builders; a sharded
   run carries its own per-shard tables inside Simq_shard. *)
let funnel_of sketch spec =
  Option.map (fun sk query -> Simq_sketch.funnel sk ~spec ~query) sketch

let nn_bound_of sketch spec =
  Option.map (fun sk query -> Simq_sketch.nn_bound sk ~spec ~query) sketch

let sketch_levels_of sketch spec =
  if Option.is_some sketch then Simq_sketch.spec_levels spec else 0

let partial_note p = if p then ", partial" else ""

let run_parsed_query ?profile ~note index dataset noise ~budget ~admission
    ~sharded ~sketch ~approx q =
  let anytime = Option.is_some approx in
  match q with
  | Ql.Range { spec; query; epsilon; mean_window = _; std_band = _; _ }
    when Option.is_some budget || admission ->
    (* Budgeted ranges go through the resilient planner: admission
       control (when enabled) vets the query before execution, then the
       index path runs under the budget and degrades to the scan when
       it fails. *)
    let budget = Option.value budget ~default:Budget.unlimited in
    let* series = resolve_query_series dataset spec ~name:query ~noise in
    (match sharded with
    | Some sh ->
      note.note_path <- Some "shard";
      let policy = if admission then Some Simq_admission.default else None in
      let outcome, elapsed =
        Simq_report.Timer.time (fun () ->
            Simq_shard.range_checked ~spec ~budget ?admission:policy
              ~on_decision:(note_worst_decision note) ?approx ~anytime
              ?profile sh ~query:series ~epsilon)
      in
      (match outcome with
      | Error e when Simq_fault.Error.kind e = "rejected" ->
        note.note_decision <- Some "reject"
      | _ -> ());
      let* (r : Simq_shard.range_result) =
        Result.map_error (fun e -> Fault e) outcome
      in
      note_shard_report note r.Simq_shard.report;
      Printf.printf "%d answers (path shard, %s%s%s, %s)\n"
        (List.length r.Simq_shard.answers)
        (report_string r.Simq_shard.report)
        (match note.note_decision with
        | Some d -> ", admission: " ^ d
        | None -> "")
        (partial_note r.Simq_shard.partial)
        (Format.asprintf "%a" Simq_report.Timer.pp_seconds elapsed);
      print_answers r.Simq_shard.answers;
      Ok ()
    | None ->
    let counters = Planner.create_counters () in
    (* Admission needs the selectivity histogram; collect is sampled
       from a fixed seed, so the estimate is deterministic. *)
    let stats = if admission then Some (Planner.collect dataset) else None in
    let policy = if admission then Some Simq_admission.default else None in
    let outcome, elapsed =
      Simq_report.Timer.time (fun () ->
          Planner.range_resilient ~spec ~budget ~counters ?stats
            ?admission:policy ?sketch:(funnel_of sketch spec)
            ~sketch_levels:(sketch_levels_of sketch spec) ?approx ~anytime
            ?profile index ~query:series ~epsilon)
    in
    (match outcome with
    | Ok (r : Planner.resilient_result) ->
      note.note_path <-
        Some (Format.asprintf "%a" Planner.pp_plan r.Planner.executed);
      note.note_decision <-
        Option.map Simq_admission.decision_name r.Planner.admission
    | Error e ->
      if Simq_fault.Error.kind e = "rejected" then
        note.note_decision <- Some "reject");
    let* (result : Planner.resilient_result) =
      Result.map_error (fun e -> Fault e) outcome
    in
    Printf.printf "%d answers (path %s%s%s, %s)\n"
      (List.length result.Planner.answers)
      (Format.asprintf "%a" Planner.pp_plan result.Planner.executed)
      (match (result.Planner.degraded, result.Planner.index_error) with
      | false, _ -> ""
      | true, Some e -> Format.asprintf ", degraded: %a" Simq_fault.Error.pp e
      | true, None -> ", degraded before execution: admission control")
      (partial_note result.Planner.partial)
      (Format.asprintf "%a" Simq_report.Timer.pp_seconds elapsed);
    print_answers result.Planner.answers;
    Ok ())
  | Ql.Range { spec; query; epsilon; mean_window; std_band; _ } -> (
    let* series = resolve_query_series dataset spec ~name:query ~noise in
    match sharded with
    | Some sh ->
      note.note_path <- Some "shard";
      let (r : Simq_shard.range_result), elapsed =
        Simq_report.Timer.time (fun () ->
            Simq_shard.range ~spec ?mean_window ?std_band ?approx ?profile sh
              ~query:series ~epsilon)
      in
      note_shard_report note r.Simq_shard.report;
      Printf.printf "%d answers (%s, %d candidates, %d node accesses, %s)\n"
        (List.length r.Simq_shard.answers)
        (report_string r.Simq_shard.report)
        r.Simq_shard.candidates r.Simq_shard.node_accesses
        (Format.asprintf "%a" Simq_report.Timer.pp_seconds elapsed);
      print_answers r.Simq_shard.answers;
      Ok ()
    | None ->
      note.note_path <- Some "index";
      let (result : Kindex.range_result), elapsed =
        Simq_report.Timer.time (fun () ->
            Kindex.range ~spec ?mean_window ?std_band
              ?sketch:(funnel_of sketch spec) ?approx ?profile index
              ~query:series ~epsilon)
      in
      Printf.printf "%d answers (%d candidates, %d node accesses, %s)\n"
        (List.length result.Kindex.answers)
        result.Kindex.candidates result.Kindex.node_accesses
        (Format.asprintf "%a" Simq_report.Timer.pp_seconds elapsed);
      print_answers result.Kindex.answers;
      Ok ())
  | Ql.Nearest { k; spec; query; _ }
    when Option.is_some budget || admission ->
    (* Budgeted/vetted NN: the same cost model the range planner
       consults decides before any node is visited — admit the
       best-first traversal, degrade to an exact linear selection, or
       reject with the typed error (exit 5). *)
    let budget = Option.value budget ~default:Budget.unlimited in
    let* series = resolve_query_series dataset spec ~name:query ~noise in
    let policy = if admission then Some Simq_admission.default else None in
    (match sharded with
    | Some sh ->
      note.note_path <- Some "shard";
      let outcome, elapsed =
        Simq_report.Timer.time (fun () ->
            Simq_shard.nearest_checked ~spec ~budget ?admission:policy
              ~on_decision:(note_worst_decision note) ?profile sh
              ~query:series ~k)
      in
      (match outcome with
      | Error e when Simq_fault.Error.kind e = "rejected" ->
        note.note_decision <- Some "reject"
      | _ -> ());
      let* (r : Simq_shard.nearest_result) =
        Result.map_error (fun e -> Fault e) outcome
      in
      note_shard_report note r.Simq_shard.nearest_report;
      Printf.printf "%d nearest (path shard, %s%s, %s)\n"
        (List.length r.Simq_shard.neighbours)
        (report_string r.Simq_shard.nearest_report)
        (match note.note_decision with
        | Some d -> ", admission: " ^ d
        | None -> "")
        (Format.asprintf "%a" Simq_report.Timer.pp_seconds elapsed);
      print_answers r.Simq_shard.neighbours;
      Ok ()
    | None ->
      note.note_path <- Some "index";
      let outcome, elapsed =
        Simq_report.Timer.time (fun () ->
            Kindex.nearest_checked ~spec ~budget ?admission:policy
              ?sketch:(nn_bound_of sketch spec)
              ~on_decision:(fun d ->
                note.note_decision <- Some (Simq_admission.decision_name d);
                match d with
                | Simq_admission.Degrade_to_scan ->
                  note.note_path <- Some "scan"
                | Simq_admission.Admit | Simq_admission.Reject _ -> ())
              ?profile index ~query:series ~k)
      in
      let* results = Result.map_error (fun e -> Fault e) outcome in
      Printf.printf "%d nearest (path %s%s, %s)\n" (List.length results)
        (Option.value note.note_path ~default:"index")
        (match note.note_decision with
        | Some d -> ", admission: " ^ d
        | None -> "")
        (Format.asprintf "%a" Simq_report.Timer.pp_seconds elapsed);
      print_answers results;
      Ok ())
  | Ql.Nearest { k; spec; query; _ } -> (
    let* series = resolve_query_series dataset spec ~name:query ~noise in
    match sharded with
    | Some sh ->
      note.note_path <- Some "shard";
      let (r : Simq_shard.nearest_result), elapsed =
        Simq_report.Timer.time (fun () ->
            Simq_shard.nearest ~spec ?profile sh ~query:series ~k)
      in
      note_shard_report note r.Simq_shard.nearest_report;
      Printf.printf "%d nearest (%s, %s)\n"
        (List.length r.Simq_shard.neighbours)
        (report_string r.Simq_shard.nearest_report)
        (Format.asprintf "%a" Simq_report.Timer.pp_seconds elapsed);
      print_answers r.Simq_shard.neighbours;
      Ok ()
    | None ->
      note.note_path <- Some "index";
      let results, elapsed =
        Simq_report.Timer.time (fun () ->
            Kindex.nearest ~spec ?sketch:(nn_bound_of sketch spec) ?profile
              index ~query:series ~k)
      in
      Printf.printf "%d nearest (%s)\n" (List.length results)
        (Format.asprintf "%a" Simq_report.Timer.pp_seconds elapsed);
      print_answers results;
      Ok ())
  | Ql.Pairs { method_ = Ql.Index; _ } when Option.is_some budget ->
    usage
      "budgets (--deadline/--max-*) apply to RANGE, NEAREST and PAIRS scan \
       queries"
  | Ql.Pairs { spec; epsilon; method_; _ } ->
    note.note_path <-
      Some (match method_ with Ql.Index -> "index" | _ -> "scan");
    let join index ~epsilon =
      match (budget, admission, method_) with
      | _, _, Ql.Index ->
        (* Index joins prune through the tree, so the n(n-1)/2 pair
           count admission vets does not describe them. *)
        Ok (Join.index_transformed ~spec ?profile index ~epsilon)
      | None, false, Ql.Scan_full ->
        Ok (Join.scan_full ~spec ?profile index ~epsilon)
      | None, false, Ql.Scan_early ->
        Ok (Join.scan_early_abandon ~spec ?profile index ~epsilon)
      | _, _, ((Ql.Scan_full | Ql.Scan_early) as m) ->
        (* Budgeted or vetted scan joins: admission (when enabled)
           decides from the catalogue pair count before any series is
           materialised — a rejection is the usual exit-5 error. *)
        let budget = Option.value budget ~default:Budget.unlimited in
        let policy = if admission then Some Simq_admission.default else None in
        Result.map_error
          (fun e -> Fault e)
          (Join.scan_checked ~spec ~abandon:(m = Ql.Scan_early) ~budget
             ?admission:policy
             ~on_decision:(fun d ->
               note.note_decision <- Some (Simq_admission.decision_name d))
             ?profile index ~epsilon)
    in
    let outcome, elapsed =
      Simq_report.Timer.time (fun () -> join index ~epsilon)
    in
    let* (result : Join.result) = outcome in
    Printf.printf
      "%d pairs (%d distance computations, %d node accesses, %s)\n"
      (List.length result.Join.pairs)
      result.Join.distance_computations result.Join.node_accesses
      (Format.asprintf "%a" Simq_report.Timer.pp_seconds elapsed);
    List.iter
      (fun (i, j) ->
        let a = Dataset.get (Kindex.dataset index) i in
        let b = Dataset.get (Kindex.dataset index) j in
        Printf.printf "  %s ~ %s\n" a.Dataset.name b.Dataset.name)
      result.Join.pairs;
    Ok ()

let budget_of ~deadline ~max_page_reads ~max_comparisons ~max_node_accesses =
  match (deadline, max_page_reads, max_comparisons, max_node_accesses) with
  | None, None, None, None -> Ok None
  | _ -> (
    match
      Budget.create ?deadline_s:deadline ?max_page_reads ?max_comparisons
        ?max_node_accesses ()
    with
    | budget -> Ok (Some budget)
    | exception Invalid_argument msg -> usage msg)

(* The qlog outcome strings mirror the exit-code mapping: "ok"/0, the
   typed fault kind (4 or 5 for a rejection), and the flat usage /
   file / csv buckets. *)
let outcome_of_result = function
  | Ok () -> ("ok", 0)
  | Error e ->
    let kind =
      match e with
      | Fault f -> Simq_fault.Error.kind f
      | Usage _ -> "usage"
      | File _ -> "file"
      | Csv_error _ -> "csv"
    in
    (kind, Simq_cli.exit_code e)

(* --approx implies --sketch (the funnel is what gets relaxed); its
   value is range-checked here so every entry point rejects the same
   way. *)
let sketch_config ~sketch ~approx =
  match approx with
  | Some a when a < 0. || a >= 1. -> usage "--approx must be in [0, 1)"
  | Some _ -> Ok (Some Simq_sketch.default)
  | None -> Ok (if sketch then Some Simq_sketch.default else None)

let query_impl file text noise shards jobs metrics trace metrics_port
    metrics_state profile qlog qlog_sample qlog_slow_ms qlog_max_bytes
    admission sketch approx deadline max_page_reads max_comparisons
    max_node_accesses =
  apply_jobs jobs;
  (* One CLI invocation is one request: the id correlates the profile
     root, the qlog line and every trace span of this query. *)
  let request = Otrace.new_request_id () in
  let profile = Option.map (fun dest -> (Profile.create (), dest)) profile in
  Option.iter (fun (p, _) -> Profile.set_trace p request) profile;
  let* qlog =
    make_qlog ~sample:qlog_sample ~slow_ms:qlog_slow_ms
      ~max_bytes:qlog_max_bytes qlog
  in
  (* Every failure below this point — usage errors, bad budgets,
     budget exhaustion, admission rejections — still dumps the
     requested metrics/trace/profile/state files on the way out. *)
  Simq_cli.with_obs
    ?metrics_port:(Simq_cli.resolve_metrics_port metrics_port)
    ?metrics_state ?profile ?qlog ~metrics ~trace (fun () ->
      Otrace.with_request request @@ fun () ->
      let* budget =
        budget_of ~deadline ~max_page_reads ~max_comparisons
          ~max_node_accesses
      in
      let* sketch_cfg = sketch_config ~sketch ~approx in
      let* relation = load_relation file in
      Otrace.with_span "query" @@ fun () ->
      let dataset =
        Otrace.with_span "prepare" (fun () -> Dataset.of_relation relation)
      in
      let index = Otrace.with_span "build" (fun () -> Kindex.build dataset) in
      let sharded =
        Option.map
          (fun k ->
            Otrace.with_span "shard" (fun () ->
                Simq_shard.create ?sketch:sketch_cfg ~shards:k dataset))
          shards
      in
      (* The monolithic paths' sketch table; a sharded run sketches
         per shard inside the executor instead. *)
      let msketch =
        match (sketch_cfg, sharded) with
        | Some config, None ->
          Some
            (Otrace.with_span "sketch" (fun () ->
                 Simq_sketch.create ~config dataset))
        | _ -> None
      in
      let* q = Result.map_error (fun msg -> Usage msg) (Ql.parse text) in
      let note =
        { note_path = None; note_decision = None; note_shards = None }
      in
      let run () =
        Otrace.with_span "execute" (fun () ->
            run_parsed_query ?profile:(Option.map fst profile) ~note index
              dataset noise ~budget ~admission ~sharded ~sketch:msketch
              ~approx q)
      in
      match qlog with
      | None -> run ()
      | Some qlog ->
        let before = Metrics.snapshot () in
        let t0 = Clock.now_ns () in
        let result = run () in
        let duration_s = Clock.elapsed_s t0 in
        let outcome, code = outcome_of_result result in
        Qlog.log qlog
          {
            Qlog.spec = text;
            digest = String.sub (Digest.to_hex (Digest.string text)) 0 12;
            decision = note.note_decision;
            path = note.note_path;
            deltas = Qlog.counter_deltas ~before ~after:(Metrics.snapshot ());
            duration_s;
            outcome;
            exit_code = code;
            domains = Simq_parallel.Pool.domains (Simq_parallel.Pool.default ());
            shards = note.note_shards;
            trace_id = Some request;
          };
        result)

let ql_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY"
         ~doc:"Similarity query, e.g. 'RANGE FROM r USING mavg(20) QUERY s0 EPS 2.5'.")

let noise_arg =
  Arg.(value & opt Simq_cli.finite_float 0. & info [ "noise" ]
         ~doc:"Perturb the query series by this amount (uniform noise).")

let shards_arg =
  Arg.(
    value
    & opt (some Simq_cli.positive_int) None
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Partition the relation into $(docv) shards and answer RANGE \
           and NEAREST queries by scatter-gather: per-shard catalogue \
           boxes prune shards that cannot contribute before any of their \
           pages is read, survivors fan out across the domain pool, and \
           the per-shard answers merge deterministically — bit-identical \
           to the unsharded run.")

let deadline_arg =
  Arg.(value & opt (some Simq_cli.finite_float) None
       & info [ "deadline" ] ~docv:"SECONDS"
           ~doc:"Per-query wall-clock deadline; exceeding it fails the query \
                 with a timeout error (exit code 4).")

let max_page_reads_arg =
  Arg.(value & opt (some int) None
       & info [ "max-page-reads" ] ~docv:"N"
           ~doc:"Per-query budget of logical page reads.")

let max_comparisons_arg =
  Arg.(value & opt (some int) None
       & info [ "max-comparisons" ] ~docv:"N"
           ~doc:"Per-query budget of distance comparisons.")

let max_node_accesses_arg =
  Arg.(value & opt (some int) None
       & info [ "max-node-accesses" ] ~docv:"N"
           ~doc:"Per-query budget of R-tree node accesses; a RANGE query \
                 that exhausts it degrades to a sequential scan.")

let admission_arg =
  Arg.(value & flag
       & info [ "admission" ]
           ~doc:"Vet budgeted RANGE and NEAREST queries with cost-based \
                 admission \
                 control before execution: collect planner statistics, \
                 predict each path's cost from them and the live metrics \
                 registry, and degrade or reject (exit code 5) queries \
                 predicted to exceed the budget — before any page is read.")

let sketch_arg =
  Arg.(value & flag
       & info [ "sketch" ]
           ~doc:"Funnel RANGE and NEAREST candidates through the \
                 multi-resolution sketch ladder — a coarse DFT sketch, \
                 then (identity queries) a piecewise-constant segment \
                 sketch — before any exact distance is computed. Every \
                 level lower-bounds the true distance, so the answers are \
                 bit-identical to a run without $(b,--sketch); only the \
                 exact-comparison work drops. Implied by $(b,--approx).")

let approx_arg =
  Arg.(value & opt (some Simq_cli.finite_float) None
       & info [ "approx" ] ~docv:"A"
           ~doc:"Answer RANGE queries approximately: sketch levels dismiss \
                 at the tightened cutoff (1-$(docv))·EPS, so every returned \
                 answer is a true answer within EPS and every series within \
                 (1-$(docv))·EPS is still guaranteed returned ($(docv) in \
                 [0, 1); implies $(b,--sketch)). Under a budget the \
                 verification loop turns progressive: when the budget dies \
                 mid-verification the query returns the sound subset \
                 verified so far (marked 'partial') instead of degrading.")

(* --- batch ----------------------------------------------------------------- *)

(* Query lines from a specs file ("-" reads stdin); blank lines and
   #-comments are skipped. *)
let read_spec_lines source =
  let read_all ic =
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    List.rev !lines
  in
  let* raw =
    if source = "-" then Ok (read_all stdin)
    else if not (Sys.file_exists source) then
      Error (File (Printf.sprintf "no such file: %s" source))
    else begin
      let ic = open_in source in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (read_all ic))
    end
  in
  Ok
    (List.filter_map
       (fun line ->
         let t = String.trim line in
         if t = "" || t.[0] = '#' then None else Some t)
       raw)

(* The qlog-replay seam: the specs of a sampled query log become the
   batch workload. A size-rotated pair replays in stream order —
   FILE.1 (the older rotation) before FILE. Non-qlog JSON lines (and
   malformed ones) are skipped, so any --qlog file replays as
   written. *)
let read_qlog_specs file =
  match Qlog.rotated_chain file with
  | [] -> Error (File (Printf.sprintf "no such file: %s" file))
  | files ->
    let specs = ref [] in
    List.iter
      (fun file ->
        let ic = open_in file in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            try
              while true do
                let line = input_line ic in
                if String.trim line <> "" then
                  match Simq_obs.Json.parse line with
                  | Ok json -> (
                    match
                      ( Simq_obs.Json.member "event" json,
                        Simq_obs.Json.member "spec" json )
                    with
                    | Some (Simq_obs.Json.Str "simq.qlog"),
                      Some (Simq_obs.Json.Str spec) ->
                      specs := spec :: !specs
                    | _ -> ())
                  | Error _ -> ()
              done
            with End_of_file -> ()))
      files;
    Ok (List.rev !specs)

(* One batch query against the resident engine. Join scans run on the
   sequential pool — a batched query stays whole on its executing
   domain instead of fanning back out. *)
let run_batch_query ~profile engine text =
  match
    Simq_serve.Engine.exec ?profile ~pairs_pool:Simq_parallel.Pool.sequential
      engine text
  with
  | Ok (o : Simq_serve.Engine.outcome) ->
    Ok
      ( Option.value o.Simq_serve.Engine.path ~default:"index",
        o.Simq_serve.Engine.answers,
        o.Simq_serve.Engine.results )
  | Error e -> Error e

let digest_of = Simq_serve.Engine.digest

let batch_line ~seq ~spec (r : _ Simq_parallel.Batch.timed) =
  let module J = Simq_obs.Json in
  let head =
    [
      ("event", J.Str "simq.batch");
      ("v", J.Num 1.);
      ("seq", J.Num (float_of_int seq));
      ("spec", J.Str spec);
      ("digest", J.Str (digest_of spec));
      ("duration_ms", J.Num (r.Simq_parallel.Batch.duration_s *. 1000.));
    ]
  in
  let tail =
    match r.Simq_parallel.Batch.value with
    | Ok (path, count, answers) ->
      [
        ("path", J.Str path);
        ("outcome", J.Str "ok");
        ("exit", J.Num 0.);
        ("answers", J.Num (float_of_int count));
        ("results", answers);
      ]
    | Error e ->
      let outcome, code = outcome_of_result (Error e) in
      [
        ("path", J.Null);
        ("outcome", J.Str outcome);
        ("exit", J.Num (float_of_int code));
        ("error", J.Str (Simq_cli.message e));
      ]
  in
  J.to_string (J.Obj (head @ tail))

(* Per-query profile trees, dumped together: the text form labels each
   tree with its sequence number and spec, the .json form wraps them in
   one self-describing simq.batch-profile object. *)
let dump_batch_profiles ~dest ~texts profiles =
  let module J = Simq_obs.Json in
  let write oc =
    if Filename.check_suffix dest ".json" then begin
      let queries =
        Array.to_list
          (Array.mapi
             (fun i p ->
               J.Obj
                 [
                   ("seq", J.Num (float_of_int i));
                   ("spec", J.Str texts.(i));
                   ("profile", Profile.to_json p);
                 ])
             profiles)
      in
      output_string oc
        (J.to_string
           (J.Obj
              [
                ("event", J.Str "simq.batch-profile");
                ("v", J.Num 1.);
                ("queries", J.Arr queries);
              ]));
      output_char oc '\n'
    end
    else
      Array.iteri
        (fun i p ->
          Printf.fprintf oc "-- query #%d: %s\n%s" i texts.(i)
            (Profile.render p))
        profiles
  in
  if dest = "-" then begin
    write stdout;
    flush stdout;
    Ok ()
  end
  else
    match open_out dest with
    | oc ->
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc);
      Ok ()
    | exception Sys_error msg -> Error (File msg)

let batch_impl file specs from_qlog output noise shards sketch approx jobs
    metrics trace metrics_port metrics_state profile qlog qlog_sample
    qlog_slow_ms qlog_max_bytes =
  apply_jobs jobs;
  let* sketch_cfg = sketch_config ~sketch ~approx in
  let* texts =
    match (specs, from_qlog) with
    | Some _, Some _ -> usage "pass either SPECS or --from-qlog, not both"
    | Some source, None -> read_spec_lines source
    | None, Some log -> read_qlog_specs log
    | None, None ->
      usage "pass a SPECS file (\"-\" reads stdin) or --from-qlog FILE"
  in
  let* qlog =
    make_qlog ~sample:qlog_sample ~slow_ms:qlog_slow_ms
      ~max_bytes:qlog_max_bytes qlog
  in
  Simq_cli.with_obs
    ?metrics_port:(Simq_cli.resolve_metrics_port metrics_port)
    ?metrics_state ?qlog ~metrics ~trace (fun () ->
      let* relation = load_relation file in
      let* out =
        match output with
        | None -> Ok None
        | Some path -> (
          match open_out path with
          | oc -> Ok (Some oc)
          | exception Sys_error msg -> Error (File msg))
      in
      Fun.protect
        ~finally:(fun () ->
          match out with Some oc -> close_out_noerr oc | None -> flush stdout)
        (fun () ->
          Otrace.with_span "batch" @@ fun () ->
          let dataset =
            Otrace.with_span "prepare" (fun () -> Dataset.of_relation relation)
          in
          let index =
            Otrace.with_span "build" (fun () -> Kindex.build dataset)
          in
          let engine =
            Simq_serve.Engine.create ~noise ?shards ?sketch:sketch_cfg ?approx
              index
          in
          let texts = Array.of_list texts in
          let n = Array.length texts in
          (* Request ids are pre-allocated in sequence order on this
             domain, so qlog trace ids are a pure function of the
             batch — identical at every pool size. Each task binds its
             id domain-locally ([~global:false]): a batch query runs
             wholly on one pool domain, and concurrent tasks must not
             overwrite each other's ambient id. *)
          let requests = Array.init n (fun _ -> Otrace.new_request_id ()) in
          let profiles =
            Option.map
              (fun _ -> Array.init n (fun _ -> Profile.create ()))
              profile
          in
          (* A failed query becomes its own error line; the rest of the
             batch still runs, and the command still exits 0 — this is
             the serving path, not a transaction. *)
          let run ~profile (i, text) =
            Otrace.with_request ~global:false requests.(i) (fun () ->
                run_batch_query ~profile engine text)
          in
          let results =
            Simq_parallel.Batch.map_timed ?profiles run
              (Array.mapi (fun i text -> (i, text)) texts)
          in
          let oc = Option.value out ~default:stdout in
          let ok_count = ref 0 in
          Array.iteri
            (fun i r ->
              (match r.Simq_parallel.Batch.value with
              | Ok _ -> incr ok_count
              | Error _ -> ());
              output_string oc (batch_line ~seq:i ~spec:texts.(i) r);
              output_char oc '\n')
            results;
          flush oc;
          (* The query log is written after the batch, in query order on
             this domain, so qlog sampling stays a pure function of the
             sequence number at every pool size. Per-query counter
             deltas are not separable under parallel execution, so the
             deltas field stays empty. *)
          (match qlog with
          | None -> ()
          | Some qlog ->
            let domains =
              Simq_parallel.Pool.domains (Simq_parallel.Pool.default ())
            in
            Array.iteri
              (fun i (r : _ Simq_parallel.Batch.timed) ->
                let outcome, code, path =
                  match r.Simq_parallel.Batch.value with
                  | Ok (path, _, _) -> ("ok", 0, Some path)
                  | Error e ->
                    let outcome, code = outcome_of_result (Error e) in
                    (outcome, code, None)
                in
                Qlog.log qlog
                  {
                    Qlog.spec = texts.(i);
                    digest = digest_of texts.(i);
                    decision = None;
                    path;
                    deltas = [];
                    duration_s = r.Simq_parallel.Batch.duration_s;
                    outcome;
                    exit_code = code;
                    domains;
                    (* Like the deltas, per-query shard counts are not
                       separable from the batch pipeline's timed tuples. *)
                    shards = None;
                    trace_id = Some requests.(i);
                  })
              results);
          let* () =
            match (profile, profiles) with
            | Some dest, Some profiles ->
              dump_batch_profiles ~dest ~texts profiles
            | _ -> Ok ()
          in
          Printf.eprintf "simq: batch: %d queries (%d ok, %d failed), %d domains\n%!"
            n !ok_count (n - !ok_count)
            (Simq_parallel.Pool.domains (Simq_parallel.Pool.default ()));
          Ok ()))

let specs_arg =
  Arg.(
    value
    & pos 1 (some string) None
    & info [] ~docv:"SPECS"
        ~doc:
          "File of query specs, one query per line ($(b,-) reads stdin); \
           blank lines and $(b,#)-comments are skipped. Exactly one of \
           $(i,SPECS) and $(b,--from-qlog) must be given.")

let from_qlog_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "from-qlog" ] ~docv:"FILE"
        ~doc:
          "Replay the specs of a $(b,--qlog) query log as the batch \
           workload: every $(b,simq.qlog) line's spec is re-executed, in \
           log order. Lines of other event types are skipped.")

let batch_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write the JSON result lines to $(docv) instead of stdout.")

(* --- import / export ------------------------------------------------------------ *)

let import_impl csv out =
  if not (Sys.file_exists csv) then
    Error (File (Printf.sprintf "no such file: %s" csv))
  else
    match
      Simq_storage.Csv.import
        ~name:(Filename.remove_extension (Filename.basename out))
        csv
    with
    | relation ->
      Relation.save relation out;
      Printf.printf "imported %d series into %s\n"
        (Relation.cardinality relation)
        out;
      Ok ()
    | exception Failure msg -> Error (Csv_error msg)
    | exception Sys_error msg -> Error (File msg)

let export_impl file out =
  let* relation = load_relation file in
  match Simq_storage.Csv.export relation out with
  | () ->
    Printf.printf "exported %d series to %s\n"
      (Relation.cardinality relation)
      out;
    Ok ()
  | exception Sys_error msg -> Error (File msg)
  | exception Failure msg -> Error (Csv_error msg)

(* --- experiments -------------------------------------------------------------- *)

let experiments_impl name fast jobs metrics trace metrics_port metrics_state =
  apply_jobs jobs;
  Simq_cli.with_obs
    ?metrics_port:(Simq_cli.resolve_metrics_port metrics_port)
    ?metrics_state ~metrics ~trace (fun () ->
      Result.map_error (fun msg -> Usage msg)
        (Simq_experiments.Experiments.run ~fast name))

(* --- scrape ---------------------------------------------------------------- *)

let scrape_impl host port timeout_ms =
  Simq_cli.scrape ?timeout_ms ~host ~port ()

(* --- serve / stress --------------------------------------------------------- *)

let ms_to_s ms = float_of_int ms /. 1000.

(* The chaos seam: a seeded transient-fault injector installed on the
   buffer pool and the R*-tree for the lifetime of the daemon. *)
let make_injector ~seed ~page_prob ~node_prob =
  if page_prob <= 0. && node_prob <= 0. then Ok None
  else
    let site prob =
      if prob > 0. then
        Some (Simq_fault.Injector.transient ~probability:prob ())
      else None
    in
    match
      Simq_fault.Injector.create ?page_reads:(site page_prob)
        ?node_accesses:(site node_prob) ~seed ()
    with
    | injector -> Ok (Some injector)
    | exception Invalid_argument msg -> usage msg

let serve_impl file port max_inflight slow_k idle_timeout_ms write_timeout_ms
    noise shards jobs metrics trace metrics_port metrics_state qlog qlog_sample
    qlog_slow_ms qlog_max_bytes admission sketch approx deadline
    max_page_reads max_comparisons max_node_accesses fault_seed
    fault_page_prob fault_node_prob =
  apply_jobs jobs;
  let* sketch_cfg = sketch_config ~sketch ~approx in
  let* qlog =
    make_qlog ~sample:qlog_sample ~slow_ms:qlog_slow_ms
      ~max_bytes:qlog_max_bytes qlog
  in
  (* The drain dumps metrics/qlog/state exactly like a one-shot
     command: with_obs closes the seams on every exit path, after the
     last worker has finished. *)
  Simq_cli.with_obs
    ?metrics_port:(Simq_cli.resolve_metrics_port metrics_port)
    ?metrics_state ?qlog ~metrics ~trace (fun () ->
      let* budget =
        budget_of ~deadline ~max_page_reads ~max_comparisons
          ~max_node_accesses
      in
      let* relation = load_relation file in
      Otrace.with_span "serve" @@ fun () ->
      let dataset =
        Otrace.with_span "prepare" (fun () -> Dataset.of_relation relation)
      in
      let index = Otrace.with_span "build" (fun () -> Kindex.build dataset) in
      let* injector =
        make_injector ~seed:fault_seed ~page_prob:fault_page_prob
          ~node_prob:fault_node_prob
      in
      (match injector with
      | Some _ ->
        Simq_rtree.Rstar.set_injector (Kindex.tree index) injector;
        Relation.set_injector relation injector
      | None -> ());
      Fun.protect
        ~finally:(fun () ->
          match injector with
          | Some _ ->
            Simq_rtree.Rstar.set_injector (Kindex.tree index) None;
            Relation.set_injector relation None
          | None -> ())
        (fun () ->
          let admission_policy =
            if admission then Some Simq_admission.default else None
          in
          let engine =
            Simq_serve.Engine.create ~noise ?budget
              ?admission:admission_policy ?shards ?sketch:sketch_cfg ?approx
              index
          in
          let* server =
            match
              Simq_serve.Server.start ?max_inflight ?slow_k
                ?idle_timeout:(Option.map ms_to_s idle_timeout_ms)
                ?write_timeout:(Option.map ms_to_s write_timeout_ms)
                ?qlog ~engine ~port ()
            with
            | s -> Ok s
            | exception Unix.Unix_error (e, _, _) ->
              Error
                (Usage
                   (Printf.sprintf "cannot bind 127.0.0.1:%d: %s" port
                      (Unix.error_message e)))
            | exception Invalid_argument msg -> Error (Usage msg)
          in
          Printf.eprintf "simq: serving queries on 127.0.0.1:%d\n%!"
            (Simq_serve.Server.port server);
          (* SIGTERM/SIGINT begin the same graceful drain as the
             in-band shutdown command. *)
          let drain _ = Simq_serve.Server.request_drain server in
          let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle drain) in
          let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle drain) in
          Fun.protect
            ~finally:(fun () ->
              Sys.set_signal Sys.sigterm prev_term;
              Sys.set_signal Sys.sigint prev_int;
              Simq_serve.Server.stop server)
            (fun () -> Simq_serve.Server.wait server);
          let {
            Simq_serve.Server.served;
            shed;
            errors;
            connections;
          } =
            Simq_serve.Server.stats server
          in
          Printf.eprintf
            "simq: serve: drained — %d connections, %d queries served, %d \
             shed, %d errors\n\
             %!"
            connections served shed errors;
          Ok ()))

let stress_impl file host port clients per_client seed chaos verify slow
    shutdown timeout_ms noise jobs =
  apply_jobs jobs;
  let* port =
    match port with
    | Some p -> Ok p
    | None -> usage "pass --port PORT of a running simq serve"
  in
  let* relation = load_relation file in
  let cardinality = Relation.cardinality relation in
  if cardinality = 0 then usage "relation is empty"
  else begin
    let* oracle =
      if not verify then Ok None
      else begin
        (* The offline oracle: the same engine the daemon runs, minus
           budget and admission — every served answer an admitted or
           degraded query returns must be bit-identical to it. *)
        let dataset = Dataset.of_relation relation in
        let index = Kindex.build dataset in
        let engine = Simq_serve.Engine.create ~noise index in
        Ok
          (Some
             (fun spec ->
               match Simq_serve.Engine.exec engine spec with
               | Ok o -> Some o.Simq_serve.Engine.results
               | Error _ -> None))
      end
    in
    let report =
      Simq_serve.Stress.run ~chaos
        ?timeout:(Option.map ms_to_s timeout_ms)
        ?oracle ~host ~port ~clients ~per_client
        ~seed:(Simq_experiments.Bench_util.derived_seed seed)
        ~cardinality ()
    in
    Printf.printf
      "stress: %d clients x %d queries: %d sent, %d ok, %d rejected, %d \
       failed, %d protocol errors\n"
      clients per_client report.Simq_serve.Stress.sent
      report.Simq_serve.Stress.ok report.Simq_serve.Stress.rejected
      report.Simq_serve.Stress.failed
      report.Simq_serve.Stress.protocol_errors;
    if chaos then
      Printf.printf "chaos: %d malformed lines, %d mid-query disconnects\n"
        report.Simq_serve.Stress.malformed_sent
        report.Simq_serve.Stress.disconnects;
    let lat = report.Simq_serve.Stress.latencies_s in
    if Array.length lat > 0 then
      Printf.printf "latency ms: p50 %.2f  p90 %.2f  p99 %.2f\n"
        (Simq_serve.Stress.quantile lat 0.5 *. 1000.)
        (Simq_serve.Stress.quantile lat 0.9 *. 1000.)
        (Simq_serve.Stress.quantile lat 0.99 *. 1000.);
    List.iter
      (fun (spec, detail) ->
        Printf.printf "MISMATCH %s: %s\n" spec detail)
      report.Simq_serve.Stress.mismatches;
    let* () =
      if not slow then Ok ()
      else
        match
          Simq_serve.Stress.Client.connect
            ?timeout:(Option.map ms_to_s timeout_ms)
            ~host ~port ()
        with
        | client ->
          Fun.protect
            ~finally:(fun () -> Simq_serve.Stress.Client.close client)
            (fun () ->
              Simq_serve.Stress.Client.send_line client "slow";
              match Simq_serve.Stress.Client.recv_line client with
              | Some line ->
                print_endline line;
                Ok ()
              | None -> usage "stress: no response to the slow command")
        | exception Unix.Unix_error _ ->
          usage "stress: could not connect for the slow command"
    in
    if shutdown then
      (match
         Simq_serve.Stress.Client.connect
           ?timeout:(Option.map ms_to_s timeout_ms)
           ~host ~port ()
       with
      | client ->
        Fun.protect
          ~finally:(fun () -> Simq_serve.Stress.Client.close client)
          (fun () ->
            Simq_serve.Stress.Client.send_line client "shutdown";
            ignore (Simq_serve.Stress.Client.recv_line client))
      | exception Unix.Unix_error _ -> ());
    if report.Simq_serve.Stress.server_gone then
      usage "stress: the daemon died (or refused connections) mid-run"
    else if report.Simq_serve.Stress.protocol_errors > 0 then
      usage "stress: protocol violations observed"
    else if report.Simq_serve.Stress.mismatches <> [] then
      usage "stress: served answers differ from the offline oracle"
    else Ok ()
  end

(* --- top -------------------------------------------------------------------- *)

(* One formatted refresh of the windowed-rate view. The document is
   what [GET /history] answered; malformed JSON is a File error (the
   peer is not a simq history endpoint), absent fields render as 0 so
   an older daemon still produces a readable frame. *)
let render_history body =
  let module J = Simq_obs.Json in
  match J.parse body with
  | Error msg ->
    Error (File (Printf.sprintf "top: malformed history document: %s" msg))
  | Ok json ->
    let num name v =
      Option.value (Option.bind (J.member name v) J.number) ~default:0.
    in
    let samples = num "samples" json in
    (match J.member "window" json with
    | None | Some J.Null ->
      Printf.printf
        "history: %.0f sample(s) — window needs two; try again in one \
         interval\n\
         %!"
        samples;
      Ok ()
    | Some w ->
      let obj name =
        Option.value (J.member name w) ~default:(J.Obj [])
      in
      let shard = obj "shard" in
      let sketch = obj "sketch" in
      let latency = obj "latency" in
      Printf.printf
        "qps %8.1f   shed %5.1f%%   (%.0f queries, %.0f shed in %.2f s; \
         %.0f samples)\n"
        (num "qps" w)
        (num "shed_rate" w *. 100.)
        (num "queries" w) (num "shed" w) (num "dt_s" w) samples;
      Printf.printf "latency ms: p50 %.2f  p99 %.2f  (%.0f observations)\n"
        (num "p50_ms" latency) (num "p99_ms" latency) (num "count" latency);
      Printf.printf "shards: %.0f executed, %.0f pruned (prune rate %.1f%%)\n"
        (num "fanout" shard) (num "pruned" shard)
        (num "prune_rate" shard *. 100.);
      let filtered =
        match J.member "filtered" sketch with
        | Some (J.Obj kvs) ->
          String.concat ""
            (List.map
               (fun (level, v) ->
                 Printf.sprintf "%s %.0f, " level
                   (Option.value (J.number v) ~default:0.))
               kvs)
        | _ -> ""
      in
      Printf.printf "sketch: %sfilter rate %.1f%%\n" filtered
        (num "filter_rate" sketch *. 100.);
      Printf.printf "pool imbalance %.2f\n%!" (num "pool_imbalance" w);
      Ok ())

let top_impl host port once interval_ms iterations timeout_ms =
  match Simq_cli.resolve_metrics_port port with
  | None ->
    usage "top: no port given (use --port or set SIMQ_METRICS_PORT)"
  | Some port ->
    let fetch () =
      match
        Simq_obs.Serve.scrape ~host
          ?timeout:(Option.map ms_to_s timeout_ms)
          ~path:"/history" ~port ()
      with
      | body -> Ok body
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Error
          (File
             (Printf.sprintf "top http://%s:%d/history: timed out after %d ms"
                host port
                (Option.value timeout_ms ~default:0)))
      | exception Unix.Unix_error (err, _, _) ->
        Error
          (File
             (Printf.sprintf "top http://%s:%d/history: %s" host port
                (Unix.error_message err)))
      | exception Failure msg ->
        Error
          (File (Printf.sprintf "top http://%s:%d/history: %s" host port msg))
    in
    if once then
      let* body = fetch () in
      (* The raw JSON document, one line, machine-readable — the body
         already carries its newline. *)
      print_string body;
      Ok ()
    else begin
      let rec loop i =
        let* body = fetch () in
        let* () = render_history body in
        if i + 1 >= iterations then Ok ()
        else begin
          print_newline ();
          Unix.sleepf (ms_to_s interval_ms);
          loop (i + 1)
        end
      in
      loop 0
    end

let serve_port_arg =
  Arg.(
    value
    & opt int 0
    & info [ "port" ] ~docv:"PORT"
        ~doc:
          "Port to serve on (127.0.0.1 only). $(b,0) — the default — \
           picks an ephemeral port, printed on stderr.")

let max_inflight_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:
          "Server-wide cap on queries executing or queued at once: a \
           request arriving while $(docv) are in flight is refused with \
           a typed rejection (exit-5 taxonomy, counted in the admission \
           decision metrics) before any page is read.")

let slow_k_arg =
  Arg.(
    value
    & opt (some Simq_cli.positive_int) None
    & info [ "slow-k" ] ~docv:"K"
        ~doc:
          "Keep the $(docv) slowest queries (spec, trace id, rendered \
           operator tree) in a bounded in-memory exemplar store, served \
           by the in-band $(b,slow) protocol command.")

let idle_timeout_arg =
  Arg.(
    value
    & opt (some Simq_cli.positive_int) None
    & info [ "idle-timeout-ms" ] ~docv:"MS"
        ~doc:
          "Reap connections that send nothing for $(docv) milliseconds.")

let write_timeout_arg =
  Arg.(
    value
    & opt (some Simq_cli.positive_int) None
    & info [ "write-timeout-ms" ] ~docv:"MS"
        ~doc:
          "Give up writing a response after $(docv) milliseconds — a \
           client that stops reading loses its connection instead of \
           wedging a worker.")

let fault_seed_arg =
  Arg.(
    value
    & opt int 1995
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:"PRNG seed for the chaos fault injector.")

let fault_page_prob_arg =
  Arg.(
    value
    & opt Simq_cli.finite_float 0.
    & info [ "fault-page-prob" ] ~docv:"P"
        ~doc:
          "Inject a transient fault on each logical page read with \
           probability $(docv) (chaos testing; budgeted queries retry \
           and degrade, unbudgeted ones answer with a typed fault \
           line).")

let fault_node_prob_arg =
  Arg.(
    value
    & opt Simq_cli.finite_float 0.
    & info [ "fault-node-prob" ] ~docv:"P"
        ~doc:
          "Inject a transient fault on each R*-tree node access with \
           probability $(docv).")

let stress_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"Port of the running $(b,simq serve) daemon.")

let clients_arg =
  Arg.(
    value
    & opt Simq_cli.positive_int 4
    & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client connections.")

let per_client_arg =
  Arg.(
    value
    & opt Simq_cli.positive_int 25
    & info [ "queries" ] ~docv:"M"
        ~doc:"Queries posed per client, drawn from the mixed workload.")

let stress_seed_arg =
  Arg.(
    value
    & opt int 7
    & info [ "seed" ] ~docv:"OFFSET"
        ~doc:
          "Workload seed offset (derived from the documented bench \
           seed); the same offset always poses the same queries.")

let chaos_arg =
  Arg.(
    value
    & flag
    & info [ "chaos" ]
        ~doc:
          "Interleave protocol abuse with the workload: malformed and \
           oversized request lines, mid-query disconnects. The daemon \
           must survive all of it.")

let stress_verify_arg =
  Arg.(
    value
    & flag
    & info [ "verify" ]
        ~doc:
          "Execute every spec offline against the same relation and \
           fail (exit 1) unless each served answer set is bit-identical.")

let stress_slow_arg =
  Arg.(
    value
    & flag
    & info [ "slow" ]
        ~doc:
          "After the run, send the in-band $(b,slow) command and print \
           the daemon's worst-query document (requires $(b,--slow-k) on \
           the server).")

let stress_shutdown_arg =
  Arg.(
    value
    & flag
    & info [ "shutdown" ]
        ~doc:
          "After the run, send the in-band $(b,shutdown) command so the \
           daemon drains gracefully and dumps its observability state.")

let stress_timeout_arg =
  Arg.(
    value
    & opt (some Simq_cli.positive_int) (Some 30000)
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:"Per-operation client timeout; a wedged daemon fails the run.")

(* --- qlog-top --------------------------------------------------------------- *)

let qlog_top_impl file top by_trace =
  (* A size-rotated log is a pair: FILE.1 holds the older lines, FILE
     the newer — aggregate them in stream order. *)
  match Qlog.rotated_chain file with
  | [] -> Error (File (Printf.sprintf "no such file: %s" file))
  | files ->
    let parsed = ref [] in
    let malformed = ref 0 in
    List.iter
      (fun file ->
        let ic = open_in file in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            try
              while true do
                let line = input_line ic in
                if String.trim line <> "" then
                  match Simq_obs.Json.parse line with
                  | Ok json -> parsed := json :: !parsed
                  | Error _ -> incr malformed
              done
            with End_of_file -> ()))
      files;
    let agg = Qlog.aggregate ~top (List.rev !parsed) in
    Printf.printf "%s: %d entries%s, total %.1f ms\n" file agg.Qlog.entries
      (match files with
      | [ _ ] -> ""
      | _ -> Printf.sprintf " (with rotation %s.1)" file)
      (agg.Qlog.total_duration_s *. 1000.);
    if !malformed > 0 then
      Printf.printf "  (%d malformed lines skipped)\n" !malformed;
    let breakdown label table =
      if table <> [] then
        Printf.printf "%-12s %s\n" (label ^ ":")
          (String.concat ", "
             (List.map (fun (k, n) -> Printf.sprintf "%s %d" k n) table))
    in
    breakdown "by path" agg.Qlog.by_path;
    breakdown "by decision" agg.Qlog.by_decision;
    breakdown "by outcome" agg.Qlog.by_outcome;
    breakdown "by fanout"
      (List.map
         (fun (fanout, n) -> (Printf.sprintf "%d-shard" fanout, n))
         agg.Qlog.by_fanout);
    if by_trace && agg.Qlog.by_trace <> [] then begin
      Printf.printf "by trace:\n";
      List.iter
        (fun (trace, d) ->
          Printf.printf "  trace %-8d %10.1f ms\n" trace (d *. 1000.))
        agg.Qlog.by_trace
    end;
    if agg.Qlog.top_by_duration <> [] then begin
      Printf.printf "top by duration:\n";
      List.iter
        (fun (seq, spec, d, trace) ->
          Printf.printf "  #%-4d %-38s trace %-8d %10.1f ms\n" seq spec trace
            (d *. 1000.))
        agg.Qlog.top_by_duration
    end;
    if agg.Qlog.top_by_pages <> [] then begin
      Printf.printf "top by pages:\n";
      List.iter
        (fun (seq, spec, pages) ->
          Printf.printf "  #%-4d %-44s %7d pages\n" seq spec pages)
        agg.Qlog.top_by_pages
    end;
    Ok ()

let experiment_arg =
  Arg.(value & pos 0 string "all" & info [] ~docv:"NAME"
         ~doc:"Experiment: fig8..fig12, table1, edit_dp, eq10, vptree, ablation_*, planner, par, serve, shard or all.")

let fast_arg =
  Arg.(value & flag & info [ "fast" ] ~doc:"Smaller data sizes (seconds instead of minutes).")

(* --- command wiring ------------------------------------------------------------- *)

let handle = Simq_cli.handle

let generate_cmd =
  let doc = "generate a relation of synthetic series" in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(
      const (fun kind count length seed out jobs ->
          handle (generate kind count length seed out jobs))
      $ kind_arg $ count_arg $ length_arg $ seed_arg $ out_arg $ jobs_arg)

let info_cmd =
  let doc = "describe a stored relation" in
  Cmd.v (Cmd.info "info" ~doc)
    Term.(const (fun file -> handle (info_cmd_impl file)) $ file_arg)

let query_cmd =
  let doc = "run a similarity query against a stored relation" in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const (fun file text noise shards jobs metrics trace metrics_port
                 metrics_state profile qlog qlog_sample qlog_slow_ms
                 qlog_max_bytes admission sketch approx deadline pages
                 comparisons nodes ->
          handle
            (query_impl file text noise shards jobs metrics trace metrics_port
               metrics_state profile qlog qlog_sample qlog_slow_ms
               qlog_max_bytes admission sketch approx deadline pages
               comparisons nodes))
      $ file_arg $ ql_arg $ noise_arg $ shards_arg $ jobs_arg $ metrics_arg
      $ trace_arg
      $ metrics_port_arg $ metrics_state_arg $ profile_arg $ qlog_arg
      $ qlog_sample_arg $ qlog_slow_ms_arg $ qlog_max_bytes_arg
      $ admission_arg $ sketch_arg $ approx_arg $ deadline_arg
      $ max_page_reads_arg $ max_comparisons_arg $ max_node_accesses_arg)

let batch_cmd =
  let doc =
    "run a whole file of similarity queries as one batch over a resident \
     index"
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(
      const (fun file specs from_qlog output noise shards sketch approx jobs
                 metrics trace metrics_port metrics_state profile qlog
                 qlog_sample qlog_slow_ms qlog_max_bytes ->
          handle
            (batch_impl file specs from_qlog output noise shards sketch approx
               jobs metrics trace metrics_port metrics_state profile qlog
               qlog_sample qlog_slow_ms qlog_max_bytes))
      $ file_arg $ specs_arg $ from_qlog_arg $ batch_out_arg $ noise_arg
      $ shards_arg $ sketch_arg $ approx_arg $ jobs_arg $ metrics_arg
      $ trace_arg $ metrics_port_arg
      $ metrics_state_arg $ profile_arg $ qlog_arg $ qlog_sample_arg
      $ qlog_slow_ms_arg $ qlog_max_bytes_arg)

let import_cmd =
  let doc = "import a CSV file (one series per row: name,v1,v2,...)" in
  Cmd.v (Cmd.info "import" ~doc)
    Term.(
      const (fun csv out -> handle (import_impl csv out))
      $ Arg.(required & pos 0 (some string) None
             & info [] ~docv:"CSV" ~doc:"CSV file to import.")
      $ out_arg)

let export_cmd =
  let doc = "export a stored relation to CSV" in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(
      const (fun file out -> handle (export_impl file out))
      $ file_arg
      $ Arg.(value & opt string "market.csv"
             & info [ "o"; "output" ] ~doc:"Output CSV file."))

let experiments_cmd =
  let doc = "reproduce the paper's experiments" in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(
      const (fun name fast jobs metrics trace metrics_port metrics_state ->
          handle
            (experiments_impl name fast jobs metrics trace metrics_port
               metrics_state))
      $ experiment_arg $ fast_arg $ jobs_arg $ metrics_arg $ trace_arg
      $ metrics_port_arg $ metrics_state_arg)

let qlog_top_cmd =
  let doc = "aggregate a --qlog file: totals, breakdowns, top-k queries" in
  Cmd.v (Cmd.info "qlog-top" ~doc)
    Term.(
      const (fun file top by_trace -> handle (qlog_top_impl file top by_trace))
      $ Arg.(required & pos 0 (some string) None
             & info [] ~docv:"FILE"
                 ~doc:"Query-log file written by $(b,--qlog).")
      $ Arg.(value & opt Simq_cli.positive_int 5
             & info [ "top" ] ~docv:"K"
                 ~doc:"Entries per ranking (slowest, most pages).")
      $ Arg.(value & flag
             & info [ "by-trace" ]
                 ~doc:"Also break the log down by request trace id \
                       (summed duration, heaviest first); lines \
                       predating the $(b,trace_id) field are left \
                       out."))

let scrape_cmd =
  let doc = "fetch the exposition from a running --metrics-port server" in
  Cmd.v (Cmd.info "scrape" ~doc)
    Term.(
      const (fun host port timeout_ms -> handle (scrape_impl host port timeout_ms))
      $ Arg.(value & opt string "127.0.0.1"
             & info [ "host" ] ~docv:"HOST" ~doc:"Host to scrape.")
      $ Arg.(value & opt (some int) None
             & info [ "port" ] ~docv:"PORT"
                 ~doc:"Port of the running $(b,--metrics-port) server; \
                       defaults to $(b,SIMQ_METRICS_PORT).")
      $ Arg.(value & opt (some Simq_cli.positive_int) None
             & info [ "timeout-ms" ] ~docv:"MS"
                 ~doc:"Give up on the connect or any read after $(docv) \
                       milliseconds: a hung peer becomes the usual \
                       one-line exit-2 error instead of blocking \
                       forever."))

let top_cmd =
  let doc = "watch the windowed rates of a running --metrics-port daemon" in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(
      const (fun host port once interval_ms iterations timeout_ms ->
          handle (top_impl host port once interval_ms iterations timeout_ms))
      $ Arg.(value & opt string "127.0.0.1"
             & info [ "host" ] ~docv:"HOST" ~doc:"Host to poll.")
      $ Arg.(value & opt (some int) None
             & info [ "port" ] ~docv:"PORT"
                 ~doc:"Port of the running $(b,--metrics-port) server; \
                       defaults to $(b,SIMQ_METRICS_PORT).")
      $ Arg.(value & flag
             & info [ "once" ]
                 ~doc:"Print one raw $(b,/history) JSON document and \
                       exit — the machine-readable mode.")
      $ Arg.(value & opt Simq_cli.positive_int 1000
             & info [ "interval-ms" ] ~docv:"MS"
                 ~doc:"Delay between refreshes in text mode.")
      $ Arg.(value & opt Simq_cli.positive_int 10
             & info [ "iterations" ] ~docv:"N"
                 ~doc:"Refreshes before exiting in text mode.")
      $ Arg.(value & opt (some Simq_cli.positive_int) (Some 5000)
             & info [ "timeout-ms" ] ~docv:"MS"
                 ~doc:"Per-poll connect/read timeout; a hung peer is \
                       the usual one-line exit-2 error."))

let serve_cmd =
  let doc =
    "serve similarity queries over a line protocol from a resident index"
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const (fun file port max_inflight slow_k idle_timeout_ms
                 write_timeout_ms noise shards jobs metrics trace metrics_port
                 metrics_state qlog qlog_sample qlog_slow_ms qlog_max_bytes
                 admission sketch approx deadline pages comparisons nodes
                 fault_seed fault_page_prob fault_node_prob ->
          handle
            (serve_impl file port max_inflight slow_k idle_timeout_ms
               write_timeout_ms noise shards jobs metrics trace metrics_port
               metrics_state qlog qlog_sample qlog_slow_ms qlog_max_bytes
               admission sketch approx deadline pages comparisons nodes
               fault_seed fault_page_prob fault_node_prob))
      $ file_arg $ serve_port_arg $ max_inflight_arg $ slow_k_arg
      $ idle_timeout_arg
      $ write_timeout_arg $ noise_arg $ shards_arg $ jobs_arg $ metrics_arg
      $ trace_arg
      $ metrics_port_arg $ metrics_state_arg $ qlog_arg $ qlog_sample_arg
      $ qlog_slow_ms_arg $ qlog_max_bytes_arg $ admission_arg $ sketch_arg
      $ approx_arg $ deadline_arg
      $ max_page_reads_arg $ max_comparisons_arg $ max_node_accesses_arg
      $ fault_seed_arg $ fault_page_prob_arg $ fault_node_prob_arg)

let stress_cmd =
  let doc = "stress (and optionally chaos-test) a running simq serve daemon" in
  Cmd.v (Cmd.info "stress" ~doc)
    Term.(
      const (fun file host port clients per_client seed chaos verify slow
                 shutdown timeout_ms noise jobs ->
          handle
            (stress_impl file host port clients per_client seed chaos verify
               slow shutdown timeout_ms noise jobs))
      $ file_arg
      $ Arg.(value & opt string "127.0.0.1"
             & info [ "host" ] ~docv:"HOST" ~doc:"Host of the daemon.")
      $ stress_port_arg $ clients_arg $ per_client_arg $ stress_seed_arg
      $ chaos_arg $ stress_verify_arg $ stress_slow_arg $ stress_shutdown_arg
      $ stress_timeout_arg $ noise_arg $ jobs_arg)

let () =
  let doc = "similarity-based queries on time-series data" in
  let cmd =
    Cmd.group
      (Cmd.info "simq" ~doc ~version:"1.0.0")
      [
        generate_cmd; info_cmd; query_cmd; batch_cmd; serve_cmd; stress_cmd;
        import_cmd; export_cmd; experiments_cmd; qlog_top_cmd; scrape_cmd;
        top_cmd;
      ]
  in
  exit (Cmd.eval' cmd)
