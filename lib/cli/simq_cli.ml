module Metrics = Simq_obs.Metrics
module Otrace = Simq_obs.Trace
module Serve = Simq_obs.Serve
module Error = Simq_fault.Error

type error =
  | Usage of string
  | File of string
  | Csv_error of string
  | Fault of Error.t

let exit_code = function
  | Usage _ -> 1
  | File _ -> 2
  | Csv_error _ -> 3
  | Fault (Error.Rejected _) -> 5
  | Fault _ -> 4

let message = function
  | Usage msg | File msg | Csv_error msg -> msg
  | Fault e -> Error.to_string e

let handle = function
  | Ok () -> 0
  | Error err ->
    Printf.eprintf "simq: error: %s\n%!" (message err);
    exit_code err

let positive_int =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Ok n
    | _ -> Error (`Msg "expected an integer >= 1")
  in
  Cmdliner.Arg.conv ~docv:"N" (parse, Format.pp_print_int)

(* Mirrors Pool.env_domains: a garbage value warns once and falls back
   to the feature being off, rather than failing the command. *)
let env_port_warned = ref None

let resolve_metrics_port explicit =
  match explicit with
  | Some _ -> explicit
  | None -> (
    match Sys.getenv_opt "SIMQ_METRICS_PORT" with
    | None -> None
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some port when port >= 0 && port <= 65535 -> Some port
      | _ ->
        if !env_port_warned <> Some s then begin
          env_port_warned := Some s;
          Printf.eprintf
            "simq: warning: ignoring invalid SIMQ_METRICS_PORT=%S (expected \
             a port number); not serving metrics\n\
             %!"
            s
        end;
        None))

let ( let* ) = Result.bind

let dump_observability ~metrics ~trace =
  let* () =
    match metrics with
    | None -> Ok ()
    | Some "-" ->
      print_string (Metrics.exposition ());
      Ok ()
    | Some file -> (
      match
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Metrics.exposition ()))
      with
      | () -> Ok ()
      | exception Sys_error msg -> Error (File msg))
  in
  match trace with
  | None -> Ok ()
  | Some file -> (
    match Otrace.export_file file with
    | () -> Ok ()
    | exception Sys_error msg -> Error (File msg))

let with_obs ?metrics_port ~metrics ~trace f =
  if Option.is_some metrics then Metrics.set_enabled true;
  if Option.is_some trace then Otrace.set_enabled true;
  let server =
    match metrics_port with
    | None -> Ok None
    | Some port -> (
      (* A live scrape endpoint is only useful if metrics record. *)
      Metrics.set_enabled true;
      match Serve.start ~port () with
      | server ->
        Printf.eprintf "simq: serving metrics on http://127.0.0.1:%d/metrics\n%!"
          (Serve.port server);
        Ok (Some server)
      | exception Unix.Unix_error (err, _, _) ->
        Error
          (Usage
             (Printf.sprintf "cannot serve metrics on port %d: %s" port
                (Unix.error_message err))))
  in
  let* server = server in
  Fun.protect ~finally:(fun () -> Option.iter Serve.stop server) @@ fun () ->
  let result =
    match f () with
    | result -> result
    | exception exn ->
      let bt = Printexc.get_raw_backtrace () in
      (* The run blew up; the collected metrics/trace describe the
         failing run and must still be written before re-raising. *)
      ignore (dump_observability ~metrics ~trace : (unit, error) result);
      Printexc.raise_with_backtrace exn bt
  in
  let dumped = dump_observability ~metrics ~trace in
  match result with Error _ -> result | Ok () -> dumped
