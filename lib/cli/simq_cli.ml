module Metrics = Simq_obs.Metrics
module Otrace = Simq_obs.Trace
module Serve = Simq_obs.Serve
module History = Simq_obs.History
module Profile = Simq_obs.Profile
module Qlog = Simq_obs.Qlog
module Json = Simq_obs.Json
module Error = Simq_fault.Error

type error =
  | Usage of string
  | File of string
  | Csv_error of string
  | Fault of Error.t

let exit_code = function
  | Usage _ -> 1
  | File _ -> 2
  | Csv_error _ -> 3
  | Fault (Error.Rejected _) -> 5
  | Fault _ -> 4

let message = function
  | Usage msg | File msg | Csv_error msg -> msg
  | Fault e -> Error.to_string e

let handle = function
  | Ok () -> 0
  | Error err ->
    Printf.eprintf "simq: error: %s\n%!" (message err);
    exit_code err

let positive_int =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Ok n
    | _ -> Error (`Msg "expected an integer >= 1")
  in
  Cmdliner.Arg.conv ~docv:"N" (parse, Format.pp_print_int)

(* [float_of_string_opt] accepts "nan" and "inf" (and overflowing
   literals round to infinity): every float the CLI feeds a distance or
   a deadline must be finite, or downstream comparisons silently turn
   false. *)
let finite_float =
  let parse s =
    match float_of_string_opt (String.trim s) with
    | Some f when Float.is_finite f -> Ok f
    | Some _ -> Error (`Msg "expected a finite number")
    | None -> Error (`Msg "expected a number")
  in
  Cmdliner.Arg.conv ~docv:"X" (parse, Format.pp_print_float)

(* Mirrors Pool.env_domains: a garbage value warns once and falls back
   to the feature being off, rather than failing the command. *)
let env_port_warned = ref None

let resolve_metrics_port explicit =
  match explicit with
  | Some _ -> explicit
  | None -> (
    match Sys.getenv_opt "SIMQ_METRICS_PORT" with
    | None -> None
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some port when port >= 0 && port <= 65535 -> Some port
      | _ ->
        if !env_port_warned <> Some s then begin
          env_port_warned := Some s;
          Printf.eprintf
            "simq: warning: ignoring invalid SIMQ_METRICS_PORT=%S (expected \
             a port number); not serving metrics\n\
             %!"
            s
        end;
        None))

let ( let* ) = Result.bind

let dump_observability ~metrics ~trace =
  let* () =
    match metrics with
    | None -> Ok ()
    | Some "-" ->
      print_string (Metrics.exposition ());
      Ok ()
    | Some file -> (
      match
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Metrics.exposition ()))
      with
      | () -> Ok ()
      | exception Sys_error msg -> Error (File msg))
  in
  match trace with
  | None -> Ok ()
  | Some file -> (
    match Otrace.export_file file with
    | () -> Ok ()
    | exception Sys_error msg -> Error (File msg))

let dump_profile = function
  | None -> Ok ()
  | Some (profile, dest) -> (
    let text =
      if dest <> "-" && Filename.check_suffix dest ".json" then
        Json.to_string (Profile.to_json profile) ^ "\n"
      else Profile.render profile
    in
    match dest with
    | "-" ->
      print_string text;
      Ok ()
    | file -> (
      match
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc text)
      with
      | () -> Ok ()
      | exception Sys_error msg -> Error (File msg)))

let save_metrics_state = function
  | None -> Ok ()
  | Some file -> (
    match Metrics.save_state file with
    | () -> Ok ()
    | exception Sys_error msg -> Error (File msg))

let close_qlog qlog =
  match Option.iter Qlog.close qlog with
  | () -> Ok ()
  | exception Sys_error msg -> Error (File msg)

let with_obs ?metrics_port ?history_interval_s ?metrics_state ?profile ?qlog
    ~metrics ~trace f =
  if Option.is_some metrics then Metrics.set_enabled true;
  (* Persisted state is collected state: restoring or saving it without
     collection running would round-trip zeros. Likewise the query
     log's counter deltas are empty unless collection is on. *)
  if Option.is_some metrics_state then Metrics.set_enabled true;
  if Option.is_some qlog then Metrics.set_enabled true;
  if Option.is_some trace then Otrace.set_enabled true;
  let server =
    match metrics_port with
    | None -> Ok None
    | Some port -> (
      (* A live scrape endpoint is only useful if metrics record. The
         history sampler rides along: it only snapshots the registry
         (merge-on-read), so its presence leaves every merged total
         unchanged. *)
      Metrics.set_enabled true;
      let history = History.create ?interval_s:history_interval_s () in
      History.start history;
      match
        Serve.start ~history:(fun () -> History.document history) ~port ()
      with
      | server ->
        Printf.eprintf "simq: serving metrics on http://127.0.0.1:%d/metrics\n%!"
          (Serve.port server);
        Ok (Some (server, history))
      | exception Unix.Unix_error (err, _, _) ->
        History.stop history;
        Error
          (Usage
             (Printf.sprintf "cannot serve metrics on port %d: %s" port
                (Unix.error_message err))))
  in
  let* server = server in
  Fun.protect
    ~finally:(fun () ->
      Option.iter
        (fun (server, history) ->
          History.stop history;
          Serve.stop server)
        server)
  @@ fun () ->
  (* Every exit path runs the whole dump chain; the first failure wins
     but each step still only depends on its own destination. *)
  let dump_all () =
    let* () = dump_observability ~metrics ~trace in
    let* () = dump_profile profile in
    let* () = save_metrics_state metrics_state in
    close_qlog qlog
  in
  let loaded =
    match metrics_state with
    | Some file when Sys.file_exists file -> (
      match Metrics.load_state file with
      | () -> Ok ()
      | exception Failure msg -> Error (File msg)
      | exception Sys_error msg -> Error (File msg))
    | _ -> Ok ()
  in
  match loaded with
  | Error _ as e ->
    (* The saved state could not be restored, so [f] never ran; the log
       still has to be released. *)
    ignore (close_qlog qlog : (unit, error) result);
    e
  | Ok () ->
    let result =
      match f () with
      | result -> result
      | exception exn ->
        let bt = Printexc.get_raw_backtrace () in
        (* The run blew up; the collected metrics/trace/profile/state
           describe the failing run and must still be written before
           re-raising. *)
        ignore (dump_all () : (unit, error) result);
        Printexc.raise_with_backtrace exn bt
    in
    let dumped = dump_all () in
    (match result with Error _ -> result | Ok () -> dumped)

let scrape ?timeout_ms ~host ~port () =
  match resolve_metrics_port port with
  | None ->
    Error (Usage "scrape: no port given (use --port or set SIMQ_METRICS_PORT)")
  | Some port -> (
    let timeout = Option.map (fun ms -> float_of_int ms /. 1000.) timeout_ms in
    match Serve.scrape ~host ?timeout ~port () with
    | body ->
      print_string body;
      Ok ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* SO_RCVTIMEO/SO_SNDTIMEO expiring: a hung peer, not a dead
         one — name the timeout rather than the raw errno. *)
      Error
        (File
           (Printf.sprintf "scrape http://%s:%d/metrics: timed out after %d ms"
              host port
              (Option.value timeout_ms ~default:0)))
    | exception Unix.Unix_error (err, _, _) ->
      Error
        (File
           (Printf.sprintf "scrape http://%s:%d/metrics: %s" host port
              (Unix.error_message err)))
    | exception Failure msg ->
      Error (File (Printf.sprintf "scrape http://%s:%d/metrics: %s" host port msg)))
