(** The command-line harness shared by [bin/simq]: error-to-exit-code
    mapping, exception-safe observability dumps, and the live metrics
    endpoint lifecycle. Kept in a library so the failure paths are unit
    testable — every non-zero exit of the binary must still write the
    requested [--metrics]/[--trace] files, and that guarantee lives
    here. *)

(** User-facing failures: one line on stderr, a distinct exit code,
    never a backtrace. *)
type error =
  | Usage of string  (** bad arguments or malformed query text *)
  | File of string  (** unreadable, corrupt or unwritable files *)
  | Csv_error of string  (** malformed CSV on import/export *)
  | Fault of Simq_fault.Error.t
      (** typed budget/fault errors from a checked query *)

(** [1] usage, [2] file, [3] CSV, [4] budget or fault, [5] refused by
    admission control ([Simq_fault.Error.Rejected]). *)
val exit_code : error -> int

val message : error -> string

(** [handle r] is [0] for [Ok ()]; otherwise prints
    [simq: error: <message>] to stderr and returns {!exit_code}. *)
val handle : (unit, error) result -> int

(** A [Cmdliner] converter for strictly positive integers: [--jobs 0]
    or a negative count is a parse-time usage error, before any code
    (in particular [Simq_parallel.Pool.create]) runs. *)
val positive_int : int Cmdliner.Arg.conv

(** A [Cmdliner] converter for finite floats: ["nan"], ["inf"] and
    overflowing literals are parse-time usage errors, so no non-finite
    value can reach a distance or deadline comparison through the
    CLI. *)
val finite_float : float Cmdliner.Arg.conv

(** [resolve_metrics_port explicit] is [explicit] when given, otherwise
    the [SIMQ_METRICS_PORT] environment variable. An unparsable
    environment value warns once on stderr and counts as unset,
    mirroring the [SIMQ_DOMAINS] handling in [Simq_parallel.Pool]. *)
val resolve_metrics_port : int option -> int option

(** [dump_observability ~metrics ~trace] writes the metric exposition
    ([Some file], with ["-"] meaning stdout) and the Chrome trace JSON.
    Unwritable destinations are reported as [File] errors. *)
val dump_observability :
  metrics:string option -> trace:string option -> (unit, error) result

(** [with_obs ?metrics_port ~metrics ~trace f] enables the requested
    observability subsystems, runs [f], and dumps on the way out —
    {e on every path}: after [Ok], after [Error] (the dump describes
    the failing run), and before re-raising when [f] raises. When
    [metrics_port] is given, metric collection is forced on and the
    exposition is served on [127.0.0.1:port] ({!Simq_obs.Serve}) for
    the duration of [f]; port [0] picks an ephemeral port, printed on
    stderr. A port that cannot be bound is a [Usage] error and [f] is
    not run. The endpoint also answers [GET /history] with the
    windowed-rate document of a {!Simq_obs.History} sampler running
    for the duration of [f] ([history_interval_s] overrides its
    period, default 1 s) — the sampler only snapshots the registry,
    so merged totals are unchanged by its presence.

    The same every-exit-path guarantee extends to the per-query
    forensics: [profile] is a {!Simq_obs.Profile} plus its destination
    (["-"] for stdout; a [.json] suffix selects the JSON export over
    the text tree), [qlog] an open {!Simq_obs.Qlog} closed (hence
    flushed) on the way out — forcing metric collection on, so the
    logged counter deltas are live — and [metrics_state] a
    {!Simq_obs.Metrics.save_state} file — loaded before [f] when it
    exists (forcing metric collection on, like [metrics_port]) and
    rewritten afterwards, so calibration gauges survive restarts. A
    state file that exists but does not parse is a [File] error and
    [f] is not run. *)
val with_obs :
  ?metrics_port:int ->
  ?history_interval_s:float ->
  ?metrics_state:string ->
  ?profile:Simq_obs.Profile.t * string ->
  ?qlog:Simq_obs.Qlog.t ->
  metrics:string option ->
  trace:string option ->
  (unit -> (unit, error) result) ->
  (unit, error) result

(** [scrape ?timeout_ms ~host ~port ()] resolves the port
    ({!resolve_metrics_port}), fetches the live exposition from a
    running {!Simq_obs.Serve} endpoint and prints it to stdout. A
    missing port is a [Usage] error; connection failures (dead or
    non-listening port, peer gone mid-conversation) and malformed
    responses are one-line [File] errors — never an uncaught
    [Unix_error]. With [timeout_ms] (the [--timeout-ms] flag) the
    connect and every read give up after that long, and a hung peer
    becomes the same one-line exit-2 [File] error, naming the
    timeout. *)
val scrape :
  ?timeout_ms:int -> host:string -> port:int option -> unit -> (unit, error) result
