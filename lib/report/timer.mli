(** Timing for the experiment harness, on the observability layer's
    monotonic clock ({!Simq_obs.Clock}). Every measured interval is
    also observed into the [simq_timer_seconds] histogram of
    {!Simq_obs.Metrics}, so tables, CSV side channels and the
    [--metrics] exposition all report the same readings. *)

(** [time f] runs [f ()] once, returning its result and elapsed
    seconds. *)
val time : (unit -> 'a) -> 'a * float

(** [time_median ~runs f] runs [f] [runs] times and returns the last
    result with the median elapsed seconds — robust against scheduler
    noise. [runs] must be positive. *)
val time_median : runs:int -> (unit -> 'a) -> 'a * float

(** [pp_seconds ppf s] prints a human-readable duration
    ([852us], [12.3ms], [2:31.217]). *)
val pp_seconds : Format.formatter -> float -> unit
