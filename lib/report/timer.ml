module Clock = Simq_obs.Clock
module Metrics = Simq_obs.Metrics

(* Every elapsed interval the harness measures is also observed into
   this histogram, so the [--metrics] exposition and the printed/CSV
   tables are two views of the same clock readings. *)
let m_seconds =
  Metrics.histogram ~help:"Every interval measured by Report.Timer, in seconds"
    "simq_timer_seconds"

let time f =
  let start = Clock.now_ns () in
  let result = f () in
  let elapsed = Clock.elapsed_s start in
  Metrics.observe m_seconds elapsed;
  (result, elapsed)

let time_median ~runs f =
  if runs <= 0 then invalid_arg "Timer.time_median: runs must be positive";
  let result = ref None in
  let samples =
    Array.init runs (fun _ ->
        let r, elapsed = time f in
        result := Some r;
        elapsed)
  in
  Array.sort Float.compare samples;
  let median = samples.(runs / 2) in
  match !result with
  | Some r -> (r, median)
  | None -> assert false

let pp_seconds ppf s =
  if s < 1e-3 then Format.fprintf ppf "%.0fus" (s *. 1e6)
  else if s < 1. then Format.fprintf ppf "%.2fms" (s *. 1e3)
  else if s < 60. then Format.fprintf ppf "%.3fs" s
  else begin
    let minutes = int_of_float (s /. 60.) in
    Format.fprintf ppf "%d:%06.3f" minutes (s -. (60. *. float_of_int minutes))
  end
