(* STR: sort by the first dimension, cut into vertical slabs, sort each
   slab by the next dimension, recurse. Groups are split evenly rather
   than greedily so that every node ends up with at least half the
   capacity — which satisfies min_fill because create enforces
   min_fill <= max_fill / 2. *)

(* Split [arr] into [count] contiguous chunks whose sizes differ by at
   most one. *)
let even_chunks count arr =
  let n = Array.length arr in
  let base = n / count and rem = n mod count in
  let rec go idx pos acc =
    if idx = count then List.rev acc
    else begin
      let len = base + if idx < rem then 1 else 0 in
      go (idx + 1) (pos + len) (Array.sub arr pos len :: acc)
    end
  in
  go 0 0 []

let rec tile ~dims ~axis ~capacity items =
  let n = Array.length items in
  if n <= capacity then [ items ]
  else begin
    Array.sort
      (fun ((p1 : float array), _) (p2, _) -> Float.compare p1.(axis) p2.(axis))
      items;
    let groups_needed = (n + capacity - 1) / capacity in
    if axis = dims - 1 then even_chunks groups_needed items
    else begin
      let remaining_dims = dims - axis in
      let slab_count =
        min groups_needed
          (int_of_float
             (Float.ceil
                (float_of_int groups_needed
                ** (1. /. float_of_int remaining_dims))))
      in
      List.concat_map
        (tile ~dims ~axis:(axis + 1) ~capacity)
        (even_chunks (max 1 slab_count) items)
    end
  end

(* Shared core: items carry a sort-key point and a ready-made leaf
   entry. *)
let load_entries ?(max_fill = 32) ?min_fill ~dims keyed =
  let t = Rstar.create ?min_fill ~max_fill ~dims () in
  let n = Array.length keyed in
  if n = 0 then t
  else begin
    let capacity = max_fill in
    let leaves =
      tile ~dims ~axis:0 ~capacity keyed
      |> List.map (fun group ->
             Node.make ~level:0 (Array.to_list (Array.map snd group)))
    in
    if Simq_obs.Metrics.on () then
      List.iter
        (fun leaf ->
          Simq_obs.Metrics.observe Rstar.m_leaf_fanout
            (float_of_int (List.length leaf.Node.entries)))
        leaves;
    let rec build level nodes =
      match nodes with
      | [ only ] -> only
      | _ ->
        let keyed =
          Array.of_list
            (List.map
               (fun n -> (Simq_geometry.Rect.center n.Node.mbr, Node.Child n))
               nodes)
        in
        let groups = tile ~dims ~axis:0 ~capacity keyed in
        build (level + 1)
          (List.map
             (fun group -> Node.make ~level (Array.to_list (Array.map snd group)))
             groups)
    in
    let root = build 1 leaves in
    Rstar.set_root t root ~size:n;
    t
  end

let load ?max_fill ?min_fill ~dims items =
  Array.iter
    (fun (p, _) ->
      if Array.length p <> dims then invalid_arg "Bulk.load: dimension mismatch")
    items;
  load_entries ?max_fill ?min_fill ~dims
    (Array.map
       (fun (p, v) ->
         (p, Node.Data { rect = Simq_geometry.Rect.of_point p; value = v }))
       items)

let load_rects ?max_fill ?min_fill ~dims items =
  Array.iter
    (fun ((r : Simq_geometry.Rect.t), _) ->
      if Simq_geometry.Rect.dims r <> dims then
        invalid_arg "Bulk.load_rects: dimension mismatch")
    items;
  load_entries ?max_fill ?min_fill ~dims
    (Array.map
       (fun (r, v) ->
         (Simq_geometry.Rect.center r, Node.Data { rect = r; value = v }))
       items)
