open Simq_geometry

type 'a item =
  | Node_item of 'a Node.node
  | Data_item of Rect.t * 'a

let nearest_custom ?visit t ~rect_bound ~point_dist ~k =
  if k <= 0 then invalid_arg "Nn.nearest_custom: k must be positive";
  if Rstar.size t = 0 then []
  else begin
    let heap = Simq_pqueue.Heap.create () in
    Simq_pqueue.Heap.push heap (rect_bound (Rstar.root t).Node.mbr)
      (Node_item (Rstar.root t));
    let results = ref [] in
    let found = ref 0 in
    let rec drain () =
      if !found < k then
        match Simq_pqueue.Heap.pop_min heap with
        | None -> ()
        | Some (d, Data_item (r, v)) ->
          results := (r.Rect.lo, v, d) :: !results;
          incr found;
          drain ()
        | Some (_, Node_item node) ->
          (match visit with None -> () | Some f -> f ());
          Rstar.count_access t;
          List.iter
            (fun entry ->
              match entry with
              | Node.Child c -> Simq_pqueue.Heap.push heap (rect_bound c.Node.mbr) (Node_item c)
              | Node.Data { rect; value } ->
                Simq_pqueue.Heap.push heap (point_dist rect value)
                  (Data_item (rect, value)))
            node.Node.entries;
          drain ()
    in
    drain ();
    List.rev !results
  end

let nearest ?transform t ~query ~k =
  let map_rect, map_point =
    match transform with
    | None -> ((fun r -> r), fun p -> p)
    | Some tr ->
      (Linear_transform.apply_rect tr, Linear_transform.apply tr)
  in
  nearest_custom t
    ~rect_bound:(fun r -> Rect.mindist query (map_rect r))
    ~point_dist:(fun r _ -> Point.distance query (map_point r.Rect.lo))
    ~k
