open Simq_geometry

type 'a item =
  | Node_item of 'a Node.node
  | Data_item of Rect.t * 'a
  | Coarse_item of Rect.t * 'a

(* Equal-key heap order: nodes first (so every tied candidate is
   discovered before any tied data entry is emitted), then data entries
   by their caller-supplied rank — making the k-th-boundary tie set
   canonical instead of heap-insertion-order dependent. *)
let node_tie = min_int

let nearest_custom ?visit ?data_rank ?point_bound t ~rect_bound ~point_dist ~k
    =
  if k <= 0 then invalid_arg "Nn.nearest_custom: k must be positive";
  if Rstar.size t = 0 then []
  else begin
    let heap = Simq_pqueue.Heap.create () in
    let rank = match data_rank with None -> fun _ -> 0 | Some f -> f in
    Simq_pqueue.Heap.push_tie heap
      (rect_bound (Rstar.root t).Node.mbr)
      node_tie
      (Node_item (Rstar.root t));
    let results = ref [] in
    let found = ref 0 in
    let rec drain () =
      if !found < k then
        match Simq_pqueue.Heap.pop_min heap with
        | None -> ()
        | Some (d, Data_item (r, v)) ->
          results := (r.Rect.lo, v, d) :: !results;
          incr found;
          drain ()
        | Some (_, Coarse_item (r, v)) ->
          (* Deferred refinement (the multi-step pattern): a data entry
             queued under its cheap lower bound gets its exact distance
             only when it surfaces, then re-queues. Since the bound
             never overestimates, everything still pending lies at
             least as far, so emitted entries are exact. *)
          Simq_pqueue.Heap.push_tie heap (point_dist r v) (rank v)
            (Data_item (r, v));
          drain ()
        | Some (_, Node_item node) ->
          (match visit with None -> () | Some f -> f ());
          Rstar.count_access t;
          List.iter
            (fun entry ->
              match entry with
              | Node.Child c ->
                Simq_pqueue.Heap.push_tie heap (rect_bound c.Node.mbr)
                  node_tie (Node_item c)
              | Node.Data { rect; value } -> (
                match point_bound with
                | None ->
                  Simq_pqueue.Heap.push_tie heap (point_dist rect value)
                    (rank value)
                    (Data_item (rect, value))
                | Some bound ->
                  Simq_pqueue.Heap.push_tie heap (bound rect value)
                    (rank value)
                    (Coarse_item (rect, value))))
            node.Node.entries;
          drain ()
    in
    drain ();
    List.rev !results
  end

let nearest ?transform t ~query ~k =
  let map_rect, map_point =
    match transform with
    | None -> ((fun r -> r), fun p -> p)
    | Some tr ->
      (Linear_transform.apply_rect tr, Linear_transform.apply tr)
  in
  nearest_custom t
    ~rect_bound:(fun r -> Rect.mindist query (map_rect r))
    ~point_dist:(fun r _ -> Point.distance query (map_point r.Rect.lo))
    ~k
