(** An in-memory R*-tree ([BKSS90]) over points of an n-dimensional space,
    carrying one payload value per point.

    The R*-tree improves on Guttman's R-tree [Gut84] with an
    overlap-minimising ChooseSubtree, a margin-driven split and forced
    reinsertion. Every node visit is counted so experiments can report
    node (page) accesses alongside wall-clock time. *)

type 'a t

(** Which member of the R-tree family maintains the tree:
    [Rstar_variant] is the full [BKSS90] algorithm (overlap-minimising
    ChooseSubtree, margin split, forced reinsertion);
    [Guttman_variant] is the classic [Gut84] R-tree (least-enlargement
    ChooseSubtree, quadratic split, no reinsertion), kept as the
    ablation baseline. Queries are identical in both. *)
type variant = Rstar_variant | Guttman_variant

(** [create ~dims ()] is an empty tree for [dims]-dimensional points.
    [max_fill] is the node capacity M (default 32, a typical page
    fanout); [min_fill] defaults to [2*M/5] per [BKSS90]; [variant]
    defaults to [Rstar_variant]. Raises [Invalid_argument] for
    non-positive dims or capacities that cannot satisfy
    [2 <= min_fill <= max_fill/2]. *)
val create :
  ?max_fill:int -> ?min_fill:int -> ?variant:variant -> dims:int -> unit ->
  'a t

val dims : 'a t -> int

(** [size t] is the number of data points stored. *)
val size : 'a t -> int

(** [height t] is the number of levels; 1 for a tree holding only a root
    leaf. *)
val height : 'a t -> int

(** [insert t point value] adds a data point (stored as a degenerate
    rectangle). Raises [Invalid_argument] on dimension mismatch. *)
val insert : 'a t -> Simq_geometry.Point.t -> 'a -> unit

(** [insert_rect t rect value] adds a rectangle data entry — R-trees
    index rectangles natively; the subsequence-index trails use this. *)
val insert_rect : 'a t -> Simq_geometry.Rect.t -> 'a -> unit

(** [delete t ~point ~where] removes one {e point} data entry at exactly [point]
    whose value satisfies [where]; returns [false] when none matches.
    Underfull nodes are dissolved and their entries reinserted
    (CondenseTree). *)
val delete :
  'a t -> point:Simq_geometry.Point.t -> where:('a -> bool) -> bool

(** [fold_region t ~overlaps ~matches ~init ~f] is the generic traversal
    behind every query in the library: descend into each subtree whose
    MBR satisfies [overlaps] and feed [f] every data entry of the
    reached leaves whose rectangle satisfies [matches] (a degenerate
    rectangle for point data — its [lo] is the point). Algorithms 1–2
    of the paper are obtained by making [overlaps] and [matches] apply a
    safe transformation before testing — the index is “transformed on
    the fly”. *)
val fold_region :
  'a t ->
  overlaps:(Simq_geometry.Rect.t -> bool) ->
  matches:(Simq_geometry.Rect.t -> 'a -> bool) ->
  init:'acc ->
  f:('acc -> Simq_geometry.Rect.t -> 'a -> 'acc) ->
  'acc

(** [fold_region_counted t ~overlaps ~matches ~init ~f] is
    {!fold_region} except that the nodes visited are counted into the
    {e returned} value instead of the tree's cumulative
    {!node_accesses} counter. The traversal then writes no shared
    state, so read-only queries may run concurrently from several
    domains; credit the count with {!add_accesses} afterwards if the
    cumulative statistics should include it.

    When [budget] is given, every node visit is checked against it and
    charged one node access, so the traversal may raise
    {!Simq_fault.Budget.Exceeded}; when an injector is installed
    ({!set_injector}) a visit may raise
    {!Simq_fault.Injector.Transient_fault}. Both fire before the node
    is examined or counted. *)
val fold_region_counted :
  ?budget:Simq_fault.Budget.state ->
  'a t ->
  overlaps:(Simq_geometry.Rect.t -> bool) ->
  matches:(Simq_geometry.Rect.t -> 'a -> bool) ->
  init:'acc ->
  f:('acc -> Simq_geometry.Rect.t -> 'a -> 'acc) ->
  'acc * int

(** [add_accesses t n] adds [n] to {!node_accesses} (used with
    {!fold_region_counted}; single-domain callers only). *)
val add_accesses : 'a t -> int -> unit

(** [search_rect t rect] collects all data entries intersecting [rect]
    (for point data: all points inside). Returned points are the data
    rectangles' [lo] corners. *)
val search_rect :
  'a t -> Simq_geometry.Rect.t -> (Simq_geometry.Point.t * 'a) list

(** [search_region t region] collects all data entries intersecting a
    (possibly circular) region. *)
val search_region :
  'a t -> Simq_geometry.Region.t -> (Simq_geometry.Point.t * 'a) list

(** [iter t ~f] visits every stored data entry (point = [lo] corner). *)
val iter : 'a t -> f:(Simq_geometry.Point.t -> 'a -> unit) -> unit

(** [to_list t] is every stored data entry. *)
val to_list : 'a t -> (Simq_geometry.Point.t * 'a) list

(** [node_accesses t] is the cumulative number of nodes visited by
    queries and updates since creation or the last {!reset_stats};
    the in-memory stand-in for the paper's disk accesses. *)
val node_accesses : 'a t -> int

val reset_stats : 'a t -> unit

(** [set_injector t injector] installs (or, with [None], removes) a
    fault injector consulted at every node visit of read traversals
    ({!fold_region}, {!fold_region_counted} and everything built on
    them). Mutations (insert/delete) are deliberately not guarded:
    injecting mid-update could leave the tree structurally invalid,
    and the model is transient {e read} faults. Absent by default —
    zero overhead. *)
val set_injector : 'a t -> Simq_fault.Injector.t option -> unit

(** {2 Internal access for sibling modules}

    Exposed for {!Bulk}, {!Nn}, {!Join} and {!Check}; not part of the
    stable API. *)

val root : 'a t -> 'a Node.node
val set_root : 'a t -> 'a Node.node -> size:int -> unit
val min_fill : 'a t -> int
val max_fill : 'a t -> int
val count_access : 'a t -> unit

(** The shared leaf-fanout histogram ([simq_rtree_leaf_fanout]);
    {!Bulk} observes its leaves into it at load time. *)
val m_leaf_fanout : Simq_obs.Metrics.histogram
