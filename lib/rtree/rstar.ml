open Simq_geometry

let m_node_visits =
  Simq_obs.Metrics.counter ~help:"R*-tree nodes visited (queries and updates)"
    "simq_rtree_node_visits_total"

let m_splits =
  Simq_obs.Metrics.counter ~help:"Node splits" "simq_rtree_splits_total"

let m_reinserts =
  Simq_obs.Metrics.counter ~help:"Entries force-reinserted by OverflowTreatment"
    "simq_rtree_reinserts_total"

let m_leaf_fanout =
  Simq_obs.Metrics.histogram ~help:"Leaf entry counts after splits and bulk loads"
    "simq_rtree_leaf_fanout"

type variant = Rstar_variant | Guttman_variant

type 'a t = {
  mutable root : 'a Node.node;
  mutable size : int;
  dims : int;
  max_fill : int;
  min_fill : int;
  variant : variant;
  mutable node_accesses : int;
  mutable injector : Simq_fault.Injector.t option;
}

(* Fraction of a node reinserted by OverflowTreatment; 30% per BKSS90. *)
let reinsert_fraction = 0.3

let create ?(max_fill = 32) ?min_fill ?(variant = Rstar_variant) ~dims () =
  if dims <= 0 then invalid_arg "Rstar.create: dims must be positive";
  let min_fill =
    match min_fill with
    | Some m -> m
    | None -> max 2 (max_fill * 2 / 5)
  in
  if min_fill < 2 || min_fill > max_fill / 2 then
    invalid_arg "Rstar.create: need 2 <= min_fill <= max_fill/2";
  {
    root = Node.empty_leaf ~dims;
    size = 0;
    dims;
    max_fill;
    min_fill;
    variant;
    node_accesses = 0;
    injector = None;
  }

let dims t = t.dims
let size t = t.size
let height t = t.root.Node.level + 1
let node_accesses t = t.node_accesses
let reset_stats t = t.node_accesses <- 0
let root t = t.root

let set_root t node ~size =
  t.root <- node;
  t.size <- size

let min_fill t = t.min_fill
let max_fill t = t.max_fill
let count_access t =
  t.node_accesses <- t.node_accesses + 1;
  Simq_obs.Metrics.incr m_node_visits
let set_injector t injector = t.injector <- injector

(* --- insertion --------------------------------------------------------- *)

let child_node = function
  | Node.Child c -> c
  | Node.Data _ -> assert false

(* ChooseSubtree. BKSS90: at the level just above the leaves minimise
   overlap enlargement; above that minimise area enlargement. Guttman's
   classic rule is least area enlargement at every level. *)
let choose_child t node entry =
  let e_mbr = Node.entry_mbr entry in
  let children = List.map child_node node.Node.entries in
  let better (score_a, area_a) (score_b, area_b) =
    score_a < score_b || (score_a = score_b && area_a < area_b)
  in
  let pick score =
    match children with
    | [] -> assert false
    | first :: rest ->
      let rec go best best_key = function
        | [] -> best
        | c :: rest ->
          let key = score c in
          if better key best_key then go c key rest else go best best_key rest
      in
      go first (score first) rest
  in
  if node.Node.level = 1 && t.variant = Rstar_variant then begin
    let overlap_delta c =
      let enlarged = Rect.union c.Node.mbr e_mbr in
      List.fold_left
        (fun acc o ->
          if o == c then acc
          else
            acc
            +. Rect.overlap_area enlarged o.Node.mbr
            -. Rect.overlap_area c.Node.mbr o.Node.mbr)
        0. children
    in
    pick (fun c ->
        ( overlap_delta c,
          Rect.enlargement c.Node.mbr ~extra:e_mbr +. (Rect.area c.Node.mbr /. 1e12) ))
  end
  else
    pick (fun c ->
        (Rect.enlargement c.Node.mbr ~extra:e_mbr, Rect.area c.Node.mbr))

(* Guttman's quadratic split: PickSeeds maximises the dead area of the
   seed pair, PickNext assigns the entry with the largest preference
   difference, with the min_fill guard. Returns the new sibling. *)
let quadratic_split t node =
  let entries = Array.of_list node.Node.entries in
  let count = Array.length entries in
  let mbrs = Array.map Node.entry_mbr entries in
  (* PickSeeds. *)
  let seed1 = ref 0 and seed2 = ref 1 and worst = ref Float.neg_infinity in
  for i = 0 to count - 1 do
    for j = i + 1 to count - 1 do
      let dead =
        Rect.area (Rect.union mbrs.(i) mbrs.(j))
        -. Rect.area mbrs.(i) -. Rect.area mbrs.(j)
      in
      if dead > !worst then begin
        worst := dead;
        seed1 := i;
        seed2 := j
      end
    done
  done;
  let group1 = ref [ entries.(!seed1) ] and group2 = ref [ entries.(!seed2) ] in
  let bb1 = ref mbrs.(!seed1) and bb2 = ref mbrs.(!seed2) in
  let n1 = ref 1 and n2 = ref 1 in
  let remaining = ref [] in
  for i = count - 1 downto 0 do
    if i <> !seed1 && i <> !seed2 then remaining := i :: !remaining
  done;
  let assign_to_1 i =
    group1 := entries.(i) :: !group1;
    bb1 := Rect.union !bb1 mbrs.(i);
    incr n1
  and assign_to_2 i =
    group2 := entries.(i) :: !group2;
    bb2 := Rect.union !bb2 mbrs.(i);
    incr n2
  in
  while !remaining <> [] do
    let left = List.length !remaining in
    (* Min-fill guard: if one group must take everything left, do so. *)
    if !n1 + left <= t.min_fill then begin
      List.iter assign_to_1 !remaining;
      remaining := []
    end
    else if !n2 + left <= t.min_fill then begin
      List.iter assign_to_2 !remaining;
      remaining := []
    end
    else begin
      (* PickNext. *)
      let best = ref (-1) and best_diff = ref Float.neg_infinity in
      List.iter
        (fun i ->
          let d1 = Rect.enlargement !bb1 ~extra:mbrs.(i) in
          let d2 = Rect.enlargement !bb2 ~extra:mbrs.(i) in
          let diff = Float.abs (d1 -. d2) in
          if diff > !best_diff then begin
            best_diff := diff;
            best := i
          end)
        !remaining;
      let i = !best in
      remaining := List.filter (fun j -> j <> i) !remaining;
      let d1 = Rect.enlargement !bb1 ~extra:mbrs.(i) in
      let d2 = Rect.enlargement !bb2 ~extra:mbrs.(i) in
      if
        d1 < d2
        || (d1 = d2 && Rect.area !bb1 <= Rect.area !bb2)
      then assign_to_1 i
      else assign_to_2 i
    end
  done;
  node.Node.entries <- !group1;
  Node.recompute_mbr node;
  Node.make ~level:node.Node.level !group2

(* The R* topological split: choose the axis minimising the summed margins
   of all candidate distributions, then the distribution with least
   overlap (ties: least combined area). Returns the new sibling. *)
let rstar_split t node =
  let entries = Array.of_list node.Node.entries in
  let count = Array.length entries in
  let m = t.min_fill in
  assert (count = t.max_fill + 1);
  let mbrs = Array.map Node.entry_mbr entries in
  let bound lo_idx hi_idx order =
    (* MBR of entries order.(lo_idx .. hi_idx). *)
    let acc = ref mbrs.(order.(lo_idx)) in
    for i = lo_idx + 1 to hi_idx do
      acc := Rect.union !acc mbrs.(order.(i))
    done;
    !acc
  in
  let sorted_orders axis =
    let by_lo = Array.init count (fun i -> i) in
    let by_hi = Array.init count (fun i -> i) in
    Array.sort
      (fun a b -> Float.compare mbrs.(a).Rect.lo.(axis) mbrs.(b).Rect.lo.(axis))
      by_lo;
    Array.sort
      (fun a b -> Float.compare mbrs.(a).Rect.hi.(axis) mbrs.(b).Rect.hi.(axis))
      by_hi;
    [ by_lo; by_hi ]
  in
  (* Axis choice by total margin. *)
  let margin_total axis =
    List.fold_left
      (fun acc order ->
        let sub = ref acc in
        for k = m to count - m do
          sub :=
            !sub
            +. Rect.margin (bound 0 (k - 1) order)
            +. Rect.margin (bound k (count - 1) order)
        done;
        !sub)
      0. (sorted_orders axis)
  in
  let best_axis = ref 0 and best_margin = ref Float.infinity in
  for axis = 0 to t.dims - 1 do
    let margin = margin_total axis in
    if margin < !best_margin then begin
      best_margin := margin;
      best_axis := axis
    end
  done;
  (* Distribution choice by overlap, then combined area. *)
  let best = ref None in
  List.iter
    (fun order ->
      for k = m to count - m do
        let bb1 = bound 0 (k - 1) order and bb2 = bound k (count - 1) order in
        let overlap = Rect.overlap_area bb1 bb2 in
        let area = Rect.area bb1 +. Rect.area bb2 in
        let is_better =
          match !best with
          | None -> true
          | Some (o, a, _, _) -> overlap < o || (overlap = o && area < a)
        in
        if is_better then best := Some (overlap, area, order, k)
      done)
    (sorted_orders !best_axis);
  match !best with
  | None -> assert false
  | Some (_, _, order, k) ->
    let group1 = ref [] and group2 = ref [] in
    for i = count - 1 downto 0 do
      let e = entries.(order.(i)) in
      if i < k then group1 := e :: !group1 else group2 := e :: !group2
    done;
    node.Node.entries <- !group1;
    Node.recompute_mbr node;
    Node.make ~level:node.Node.level !group2

let split t node =
  let sibling =
    match t.variant with
    | Rstar_variant -> rstar_split t node
    | Guttman_variant -> quadratic_split t node
  in
  Simq_obs.Metrics.incr m_splits;
  if Simq_obs.Metrics.on () && node.Node.level = 0 then begin
    Simq_obs.Metrics.observe m_leaf_fanout
      (float_of_int (List.length node.Node.entries));
    Simq_obs.Metrics.observe m_leaf_fanout
      (float_of_int (List.length sibling.Node.entries))
  end;
  sibling

(* OverflowTreatment: forced reinsertion of the entries farthest from the
   node centre — once per level per top-level insertion — else split.
   The Guttman variant has no forced reinsertion: it always splits. *)
let overflow t node ~reinserted ~pending ~is_root =
  if
    t.variant = Guttman_variant
    || is_root
    || Hashtbl.mem reinserted node.Node.level
  then Some (split t node)
  else begin
    Hashtbl.add reinserted node.Node.level ();
    let p =
      max 1 (int_of_float (reinsert_fraction *. float_of_int t.max_fill))
    in
    let centre = Rect.center node.Node.mbr in
    let keyed =
      List.map
        (fun e ->
          (Point.squared_distance centre (Rect.center (Node.entry_mbr e)), e))
        node.Node.entries
    in
    let sorted =
      List.sort (fun (d1, _) (d2, _) -> Float.compare d2 d1) keyed
    in
    let rec take_drop n acc = function
      | rest when n = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take_drop (n - 1) (x :: acc) rest
    in
    let far, keep = take_drop p [] sorted in
    Simq_obs.Metrics.add m_reinserts (List.length far);
    node.Node.entries <- List.map snd keep;
    Node.recompute_mbr node;
    List.iter (fun (_, e) -> Queue.add (e, node.Node.level) pending) far;
    None
  end

let rec insert_rec t node entry ~level ~reinserted ~pending =
  count_access t;
  let e_mbr = Node.entry_mbr entry in
  node.Node.mbr <-
    (if node.Node.entries = [] then e_mbr else Rect.union node.Node.mbr e_mbr);
  if node.Node.level = level then begin
    node.Node.entries <- entry :: node.Node.entries;
    if Node.entry_count node > t.max_fill then
      overflow t node ~reinserted ~pending ~is_root:(node == t.root)
    else None
  end
  else begin
    let child = choose_child t node entry in
    match insert_rec t child entry ~level ~reinserted ~pending with
    | None -> None
    | Some sibling ->
      node.Node.entries <- Node.Child sibling :: node.Node.entries;
      Node.recompute_mbr node;
      if Node.entry_count node > t.max_fill then
        overflow t node ~reinserted ~pending ~is_root:(node == t.root)
      else None
  end

let insert_entry t entry ~level ~reinserted ~pending =
  if level > t.root.Node.level then
    (* Can only happen while reinserting orphans of a taller tree that
       has since shrunk; grow the root back. *)
    invalid_arg "Rstar.insert_entry: level above root"
  else
    match insert_rec t t.root entry ~level ~reinserted ~pending with
    | None -> ()
    | Some sibling ->
      let new_root =
        Node.make ~level:(t.root.Node.level + 1)
          [ Node.Child t.root; Node.Child sibling ]
      in
      t.root <- new_root

let drain_pending t ~reinserted ~pending =
  while not (Queue.is_empty pending) do
    let entry, level = Queue.pop pending in
    insert_entry t entry ~level ~reinserted ~pending
  done

let insert_rect t rect value =
  if Rect.dims rect <> t.dims then
    invalid_arg "Rstar.insert_rect: dimension mismatch";
  let reinserted = Hashtbl.create 4 in
  let pending = Queue.create () in
  insert_entry t (Node.Data { rect; value }) ~level:0 ~reinserted ~pending;
  drain_pending t ~reinserted ~pending;
  t.size <- t.size + 1

let insert t point value =
  if Array.length point <> t.dims then
    invalid_arg "Rstar.insert: dimension mismatch";
  insert_rect t (Rect.of_point point) value

(* --- deletion ----------------------------------------------------------- *)

let delete t ~point ~where =
  if Array.length point <> t.dims then
    invalid_arg "Rstar.delete: dimension mismatch";
  let orphans = ref [] in
  let rec go node =
    count_access t;
    if Node.is_leaf node then begin
      let rec remove before = function
        | [] -> false
        | Node.Data { rect; value } :: rest
          when
            Point.equal ~eps:0. rect.Rect.lo point
            && Point.equal ~eps:0. rect.Rect.hi point
            && where value ->
          node.Node.entries <- List.rev_append before rest;
          if node.Node.entries <> [] then Node.recompute_mbr node;
          true
        | e :: rest -> remove (e :: before) rest
      in
      remove [] node.Node.entries
    end
    else begin
      let rec try_children before = function
        | [] -> false
        | (Node.Child c as e) :: rest when Rect.contains_point c.Node.mbr point
          ->
          if go c then begin
            if Node.entry_count c < t.min_fill then begin
              orphans := (c.Node.entries, c.Node.level) :: !orphans;
              node.Node.entries <- List.rev_append before rest
            end
            else node.Node.entries <- List.rev_append before (e :: rest);
            if node.Node.entries <> [] then Node.recompute_mbr node;
            true
          end
          else try_children (e :: before) rest
        | e :: rest -> try_children (e :: before) rest
      in
      try_children [] node.Node.entries
    end
  in
  if t.size = 0 then false
  else if go t.root then begin
    t.size <- t.size - 1;
    (* Shrink the root while it is an internal node with a single child. *)
    let rec shrink () =
      if (not (Node.is_leaf t.root)) && Node.entry_count t.root = 1 then begin
        (match t.root.Node.entries with
        | [ Node.Child only ] -> t.root <- only
        | _ -> ());
        shrink ()
      end
      else if (not (Node.is_leaf t.root)) && Node.entry_count t.root = 0 then
        t.root <- Node.empty_leaf ~dims:t.dims
    in
    (* Reinsert orphaned entries at their original levels. *)
    let reinserted = Hashtbl.create 4 in
    let pending = Queue.create () in
    List.iter
      (fun (entries, level) ->
        List.iter (fun e -> Queue.add (e, level) pending) entries)
      !orphans;
    shrink ();
    (* Orphan subtrees can be as tall as the shrunken root; dissolve any
       that no longer fit below it into their children. An entry with
       target level l that came from node c has c.level = l, and c's own
       entries target level l - 1. *)
    let rec flatten (entry, level) =
      if level <= t.root.Node.level then [ (entry, level) ]
      else
        match entry with
        | Node.Data _ -> [ (entry, 0) ]
        | Node.Child c ->
          List.concat_map (fun e -> flatten (e, level - 1)) c.Node.entries
    in
    let flattened =
      Queue.fold (fun acc item -> flatten item @ acc) [] pending
    in
    Queue.clear pending;
    List.iter (fun item -> Queue.add item pending) flattened;
    drain_pending t ~reinserted ~pending;
    true
  end
  else false

(* --- queries ------------------------------------------------------------ *)

(* The counted variant accumulates node accesses into a local counter
   instead of the tree's cumulative one, so concurrent read-only
   traversals (parallel query batches) never write shared state; the
   caller decides when to credit {!add_accesses}. *)
let fold_region_counted ?budget t ~overlaps ~matches ~init ~f =
  if t.size = 0 then (init, 0)
  else begin
    let accesses = ref 0 in
    (* Faults and budget charges fire per node visit, before the node is
       examined — a faulted read yields no data and no access count. *)
    let guard () =
      (match t.injector with
      | None -> ()
      | Some injector -> Simq_fault.Injector.check injector Node_access);
      match budget with
      | None -> ()
      | Some b ->
        Simq_fault.Budget.check b;
        Simq_fault.Budget.charge_node_access b
    in
    let rec go acc node =
      guard ();
      incr accesses;
      List.fold_left
        (fun acc entry ->
          match entry with
          | Node.Child c -> if overlaps c.Node.mbr then go acc c else acc
          | Node.Data { rect; value } ->
            if matches rect value then f acc rect value else acc)
        acc node.Node.entries
    in
    let acc = if overlaps t.root.Node.mbr then go init t.root else init in
    (acc, !accesses)
  end

let add_accesses t n =
  t.node_accesses <- t.node_accesses + n;
  Simq_obs.Metrics.add m_node_visits n

let fold_region t ~overlaps ~matches ~init ~f =
  let acc, accesses = fold_region_counted t ~overlaps ~matches ~init ~f in
  add_accesses t accesses;
  acc

(* Data entries match when their rectangle intersects the query; for the
   degenerate rectangles that point-level insertions create this is
   exactly point membership. *)
let search_rect t rect =
  fold_region t
    ~overlaps:(fun r -> Rect.intersects rect r)
    ~matches:(fun r _ -> Rect.intersects rect r)
    ~init:[]
    ~f:(fun acc r v -> (r.Rect.lo, v) :: acc)

let search_region t region =
  fold_region t
    ~overlaps:(fun r -> Region.intersects_rect region r)
    ~matches:(fun r _ -> Region.intersects_rect region r)
    ~init:[]
    ~f:(fun acc r v -> (r.Rect.lo, v) :: acc)

let iter t ~f =
  if t.size > 0 then Node.fold_data (fun () r v -> f r.Rect.lo v) () t.root

let to_list t =
  if t.size = 0 then []
  else Node.fold_data (fun acc r v -> (r.Rect.lo, v) :: acc) [] t.root
