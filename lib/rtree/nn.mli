(** Nearest-neighbour search over an R*-tree: best-first traversal
    ordered by MINDIST ([RKV95]; the priority-queue formulation visits
    provably minimal numbers of nodes).

    The optional [transform] applies a safe transformation to every MBR
    and data point during the traversal — the NN variant of the paper's
    Algorithm 2: “as we go down the tree, we apply T to all entries of
    the node we visit”. *)

(** [nearest ?transform t ~query ~k] is the [k] data points minimising
    the distance from [query] to the (transformed) stored point, closest
    first, with their distances. Fewer than [k] results are returned only
    when the tree is smaller than [k]. *)
val nearest :
  ?transform:Simq_geometry.Linear_transform.t ->
  'a Rstar.t ->
  query:Simq_geometry.Point.t ->
  k:int ->
  (Simq_geometry.Point.t * 'a * float) list

(** [nearest_custom t ~rect_bound ~point_dist ~k] is the generic engine:
    [point_dist] receives each data entry's rectangle (degenerate for
    point data) and [rect_bound] must lower-bound it over all entries in
    the rectangle. Used by the polar k-index, where the effective
    distance is computed on decoded complex features.

    [visit] is called once per internal/leaf node expansion, before the
    node's entries are pushed — the hook the budgeted entry points use
    to charge node accesses (it may raise to abort the traversal). *)
val nearest_custom :
  ?visit:(unit -> unit) ->
  'a Rstar.t ->
  rect_bound:(Simq_geometry.Rect.t -> float) ->
  point_dist:(Simq_geometry.Rect.t -> 'a -> float) ->
  k:int ->
  (Simq_geometry.Point.t * 'a * float) list
