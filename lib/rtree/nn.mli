(** Nearest-neighbour search over an R*-tree: best-first traversal
    ordered by MINDIST ([RKV95]; the priority-queue formulation visits
    provably minimal numbers of nodes).

    The optional [transform] applies a safe transformation to every MBR
    and data point during the traversal — the NN variant of the paper's
    Algorithm 2: “as we go down the tree, we apply T to all entries of
    the node we visit”. *)

(** [nearest ?transform t ~query ~k] is the [k] data points minimising
    the distance from [query] to the (transformed) stored point, closest
    first, with their distances. Fewer than [k] results are returned only
    when the tree is smaller than [k]. *)
val nearest :
  ?transform:Simq_geometry.Linear_transform.t ->
  'a Rstar.t ->
  query:Simq_geometry.Point.t ->
  k:int ->
  (Simq_geometry.Point.t * 'a * float) list

(** [nearest_custom t ~rect_bound ~point_dist ~k] is the generic engine:
    [point_dist] receives each data entry's rectangle (degenerate for
    point data) and [rect_bound] must lower-bound it over all entries in
    the rectangle. Used by the polar k-index, where the effective
    distance is computed on decoded complex features.

    [visit] is called once per internal/leaf node expansion, before the
    node's entries are pushed — the hook the budgeted entry points use
    to charge node accesses (it may raise to abort the traversal).

    [data_rank] breaks distance ties among data entries
    deterministically: among equal distances, entries pop (and are
    emitted) in increasing rank, and equal-key internal nodes are
    always expanded before any tied data entry is emitted — so the
    tie set at the k-th boundary is canonical (smallest ranks win)
    rather than heap-insertion-order dependent. Without it, tied
    entries keep the historical arbitrary order.

    [point_bound], when given, must lower-bound [point_dist] on every
    data entry. Entries are then queued under the cheap bound and
    refined to their exact distance only when they surface (the
    multi-step filter-and-refine pattern), which skips [point_dist]
    entirely for entries that never make the top [k]. Results are
    identical to the unbounded traversal. *)
val nearest_custom :
  ?visit:(unit -> unit) ->
  ?data_rank:('a -> int) ->
  ?point_bound:(Simq_geometry.Rect.t -> 'a -> float) ->
  'a Rstar.t ->
  rect_bound:(Simq_geometry.Rect.t -> float) ->
  point_dist:(Simq_geometry.Rect.t -> 'a -> float) ->
  k:int ->
  (Simq_geometry.Point.t * 'a * float) list
