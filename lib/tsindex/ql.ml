type join_method = Scan_full | Scan_early | Index

type t =
  | Range of {
      source : string;
      spec : Spec.t;
      query : string;
      epsilon : float;
      mean_window : float option;
      std_band : float option;
    }
  | Nearest of {
      k : int;
      source : string;
      spec : Spec.t;
      query : string;
    }
  | Pairs of {
      source : string;
      spec : Spec.t;
      epsilon : float;
      method_ : join_method;
    }

(* --- lexer ----------------------------------------------------------- *)

type token =
  | Ident of string  (* lower-cased *)
  | Number of float
  | Int of int
  | Lparen
  | Rparen

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let pos = ref 0 in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '-'
  in
  let is_digit c = (c >= '0' && c <= '9') || c = '.' in
  while !pos < n do
    let c = text.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '(' then begin
      tokens := Lparen :: !tokens;
      incr pos
    end
    else if c = ')' then begin
      tokens := Rparen :: !tokens;
      incr pos
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit text.[!pos] do
        incr pos
      done;
      let lexeme = String.sub text start (!pos - start) in
      if String.contains lexeme '.' then
        match float_of_string_opt lexeme with
        (* Overflowing literals round to infinity: a non-finite epsilon
           would silently make every lower-bound comparison false, so
           the grammar owns only finite numbers. ("nan"/"inf" words lex
           as identifiers and are rejected by the parser.) *)
        | Some f when Float.is_finite f -> tokens := Number f :: !tokens
        | Some _ -> fail "non-finite number %S" lexeme
        | None -> fail "bad number %S" lexeme
      else begin
        match int_of_string_opt lexeme with
        | Some i -> tokens := Int i :: !tokens
        | None -> fail "bad integer %S" lexeme
      end
    end
    else if is_ident_char c then begin
      let start = !pos in
      while !pos < n && is_ident_char text.[!pos] do
        incr pos
      done;
      tokens :=
        Ident (String.lowercase_ascii (String.sub text start (!pos - start)))
        :: !tokens
    end
    else fail "unexpected character %C" c
  done;
  List.rev !tokens

(* --- parser ----------------------------------------------------------- *)

let describe = function
  | Ident s -> Printf.sprintf "%S" s
  | Number f -> Printf.sprintf "number %g" f
  | Int i -> Printf.sprintf "integer %d" i
  | Lparen -> "'('"
  | Rparen -> "')'"

type state = { mutable tokens : token list }

let peek st = match st.tokens with [] -> None | t :: _ -> Some t

let advance st =
  match st.tokens with
  | [] -> fail "unexpected end of query"
  | t :: rest ->
    st.tokens <- rest;
    t

let expect_keyword st kw =
  match advance st with
  | Ident s when String.equal s kw -> ()
  | t -> fail "expected %S, found %s" kw (describe t)

let expect_ident st what =
  match advance st with
  | Ident s -> s
  | t -> fail "expected %s, found %s" what (describe t)

let expect_int st what =
  match advance st with
  | Int i -> i
  | t -> fail "expected %s, found %s" what (describe t)

let expect_number st what =
  match advance st with
  | Number f -> f
  | Int i -> float_of_int i
  | t -> fail "expected %s, found %s" what (describe t)

let int_argument st name =
  (match advance st with
  | Lparen -> ()
  | t -> fail "expected '(' after %s, found %s" name (describe t));
  let v = expect_int st (name ^ " argument") in
  (match advance st with
  | Rparen -> ()
  | t -> fail "expected ')' after %s argument, found %s" name (describe t));
  v

let parse_spec st =
  match peek st with
  | Some (Ident "using") ->
    ignore (advance st);
    (match expect_ident st "transformation name" with
    | "id" -> Spec.Identity
    | "rev" -> Spec.Reverse
    | "mavg" -> Spec.Moving_average (int_argument st "mavg")
    | "wma" -> Spec.Weighted_ma (Simq_dsp.Window.ascending (int_argument st "wma"))
    | "warp" -> Spec.Warp (int_argument st "warp")
    | other -> fail "unknown transformation %S" other)
  | _ -> Spec.Identity

let parse_epsilon st =
  (match advance st with
  | Ident ("eps" | "epsilon") -> ()
  | t -> fail "expected EPS, found %s" (describe t));
  expect_number st "epsilon value"

let parse_method st =
  match peek st with
  | Some (Ident "method") ->
    ignore (advance st);
    (match expect_ident st "join method" with
    | "scan" -> Scan_full
    | "scan-early" -> Scan_early
    | "index" -> Index
    | other -> fail "unknown join method %S (scan | scan-early | index)" other)
  | _ -> Index

let finish st query =
  match peek st with
  | None -> query
  | Some t -> fail "trailing input starting at %s" (describe t)

(* Optional GK95 side constraints: MEAN w and STD f, in either order. *)
let parse_constraints st =
  let mean_window = ref None and std_band = ref None in
  let rec go () =
    match peek st with
    | Some (Ident "mean") ->
      ignore (advance st);
      mean_window := Some (expect_number st "mean window");
      go ()
    | Some (Ident "std") ->
      ignore (advance st);
      std_band := Some (expect_number st "std band");
      go ()
    | _ -> ()
  in
  go ();
  (!mean_window, !std_band)

let parse_query st =
  match advance st with
  | Ident "range" ->
    expect_keyword st "from";
    let source = expect_ident st "relation name" in
    let spec = parse_spec st in
    expect_keyword st "query";
    let query = expect_ident st "query name" in
    let epsilon = parse_epsilon st in
    let mean_window, std_band = parse_constraints st in
    finish st (Range { source; spec; query; epsilon; mean_window; std_band })
  | Ident "nearest" ->
    let k = expect_int st "neighbour count" in
    expect_keyword st "from";
    let source = expect_ident st "relation name" in
    let spec = parse_spec st in
    expect_keyword st "query";
    let query = expect_ident st "query name" in
    finish st (Nearest { k; source; spec; query })
  | Ident "pairs" ->
    expect_keyword st "from";
    let source = expect_ident st "relation name" in
    let spec = parse_spec st in
    let epsilon = parse_epsilon st in
    let method_ = parse_method st in
    finish st (Pairs { source; spec; epsilon; method_ })
  | t -> fail "expected RANGE, NEAREST or PAIRS, found %s" (describe t)

let parse text =
  match tokenize text with
  | exception Parse_error msg -> Error msg
  | tokens -> (
    match parse_query { tokens } with
    | query -> Ok query
    | exception Parse_error msg -> Error msg)

(* Spec.pp prints bare names (mavg20); the query surface needs the
   parseable call syntax back. *)
let pp_spec ppf = function
  | Spec.Identity -> Format.pp_print_string ppf "id"
  | Spec.Reverse -> Format.pp_print_string ppf "rev"
  | Spec.Moving_average m -> Format.fprintf ppf "mavg(%d)" m
  | Spec.Weighted_ma w -> Format.fprintf ppf "wma(%d)" (Simq_dsp.Window.width w)
  | Spec.Warp m -> Format.fprintf ppf "warp(%d)" m

let pp_method ppf = function
  | Scan_full -> Format.pp_print_string ppf "scan"
  | Scan_early -> Format.pp_print_string ppf "scan-early"
  | Index -> Format.pp_print_string ppf "index"

let pp ppf = function
  | Range { source; spec; query; epsilon; mean_window; std_band } ->
    Format.fprintf ppf "RANGE FROM %s USING %a QUERY %s EPS %g" source
      pp_spec spec query epsilon;
    Option.iter (fun w -> Format.fprintf ppf " MEAN %g" w) mean_window;
    Option.iter (fun f -> Format.fprintf ppf " STD %g" f) std_band
  | Nearest { k; source; spec; query } ->
    Format.fprintf ppf "NEAREST %d FROM %s USING %a QUERY %s" k source
      pp_spec spec query
  | Pairs { source; spec; epsilon; method_ } ->
    Format.fprintf ppf "PAIRS FROM %s USING %a EPS %g METHOD %a" source
      pp_spec spec epsilon pp_method method_
