(** The spatial self-join of Section 5 (Table 1): find all pairs of
    series whose (transformed) normal forms are within ε.

    Four methods, as in the paper:
    - {b a} — sequential scan of the Fourier-coefficient relation,
      comparing every sequence to all later ones, transformation applied,
      no early abandoning;
    - {b b} — as (a) with early abandoning of each distance computation;
    - {b c} — scan the relation and pose one index range query per
      sequence, {e without} the transformation;
    - {b d} — as (c), applying the transformation to both the index and
      the search regions.

    Methods a/b report each unordered pair once; c/d report every pair
    in both directions, exactly like the paper's answer-set sizes
    (3×2 and 12×2).

    The scan methods parallelise their outer loop over a
    {!Simq_parallel.Pool} (default the global pool) with row-chunk
    results merged in row order, so the pair list and the counters are
    bit-identical to a single-domain join.

    Every method takes an optional [?profile] ({!Simq_obs.Profile}):
    the scans record one flat [join.scan] operator node (rows in,
    comparisons as candidates, pairs out), the index methods one
    [join.index] node whose pages are the summed R-tree node accesses
    — recorded after the merge on the coordinating domain, so the
    recording is identical at every domain count. *)

type result = {
  pairs : (int * int) list;  (** entry-id pairs; self-pairs excluded *)
  distance_computations : int;
      (** full distance computations (a, b) or postprocessing
          computations (c, d) *)
  node_accesses : int;  (** R-tree nodes visited (0 for a, b) *)
}

(** [scan_full kindex ?pool ?spec ~epsilon] — method (a). *)
val scan_full :
  ?pool:Simq_parallel.Pool.t -> ?spec:Spec.t -> ?profile:Simq_obs.Profile.t ->
  Kindex.t -> epsilon:float ->
  result

(** [scan_early_abandon kindex ?pool ?spec ~epsilon] — method (b). *)
val scan_early_abandon :
  ?pool:Simq_parallel.Pool.t -> ?spec:Spec.t -> ?profile:Simq_obs.Profile.t ->
  Kindex.t -> epsilon:float ->
  result

(** [scan_checked kindex ?pool ?spec ?abandon ?budget ?retry ~epsilon]
    is the scan join ((a) with [abandon:false], (b) — the default —
    otherwise) under a {!Simq_fault.Budget}: the outer loop checks the
    budget per row on every domain and charges the row's comparisons,
    so a blown comparison limit or deadline yields a typed error
    instead of an exception (with an unlimited budget the result is
    bit-identical to the unchecked scan). [retry]/[on_retry] follow
    {!Simq_fault.Retry.with_retries}.

    With [?admission] the join is vetted {e before} execution by
    {!Simq_admission.decide_pairs}: the comparison count
    [n (n - 1) / 2] is a catalogue fact, so the decision is a pure
    function of the budget and a registry snapshot — identical at
    every domain count, and counted in the
    [simq_admission_decisions_total] family. A [Reject] returns the
    typed [Rejected] error with nothing executed (no transformed
    normal or spectrum materialised, no comparison run); an [Admit]
    runs the scan unchanged, bit-identical to an admission-off call.
    [on_decision] observes the decision (for query logs). *)
val scan_checked :
  ?pool:Simq_parallel.Pool.t ->
  ?spec:Spec.t ->
  ?abandon:bool ->
  ?budget:Simq_fault.Budget.t ->
  ?retry:Simq_fault.Retry.policy ->
  ?on_retry:(attempt:int -> unit) ->
  ?admission:Simq_admission.t ->
  ?on_decision:(Simq_admission.decision -> unit) ->
  ?profile:Simq_obs.Profile.t ->
  Kindex.t ->
  epsilon:float ->
  (result, Simq_fault.Error.t) Result.t

(** [index_untransformed kindex ~epsilon] — method (c): no
    transformation on either side. *)
val index_untransformed :
  ?profile:Simq_obs.Profile.t -> Kindex.t -> epsilon:float -> result

(** [index_transformed kindex ?spec ~epsilon] — method (d): [spec] on
    both sides. *)
val index_transformed :
  ?spec:Spec.t -> ?profile:Simq_obs.Profile.t -> Kindex.t -> epsilon:float ->
  result
