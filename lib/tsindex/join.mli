(** The spatial self-join of Section 5 (Table 1): find all pairs of
    series whose (transformed) normal forms are within ε.

    Four methods, as in the paper:
    - {b a} — sequential scan of the Fourier-coefficient relation,
      comparing every sequence to all later ones, transformation applied,
      no early abandoning;
    - {b b} — as (a) with early abandoning of each distance computation;
    - {b c} — scan the relation and pose one index range query per
      sequence, {e without} the transformation;
    - {b d} — as (c), applying the transformation to both the index and
      the search regions.

    Methods a/b report each unordered pair once; c/d report every pair
    in both directions, exactly like the paper's answer-set sizes
    (3×2 and 12×2).

    The scan methods parallelise their outer loop over a
    {!Simq_parallel.Pool} (default the global pool) with row-chunk
    results merged in row order, so the pair list and the counters are
    bit-identical to a single-domain join. *)

type result = {
  pairs : (int * int) list;  (** entry-id pairs; self-pairs excluded *)
  distance_computations : int;
      (** full distance computations (a, b) or postprocessing
          computations (c, d) *)
  node_accesses : int;  (** R-tree nodes visited (0 for a, b) *)
}

(** [scan_full kindex ?pool ?spec ~epsilon] — method (a). *)
val scan_full :
  ?pool:Simq_parallel.Pool.t -> ?spec:Spec.t -> Kindex.t -> epsilon:float ->
  result

(** [scan_early_abandon kindex ?pool ?spec ~epsilon] — method (b). *)
val scan_early_abandon :
  ?pool:Simq_parallel.Pool.t -> ?spec:Spec.t -> Kindex.t -> epsilon:float ->
  result

(** [index_untransformed kindex ~epsilon] — method (c): no
    transformation on either side. *)
val index_untransformed : Kindex.t -> epsilon:float -> result

(** [index_transformed kindex ?spec ~epsilon] — method (d): [spec] on
    both sides. *)
val index_transformed : ?spec:Spec.t -> Kindex.t -> epsilon:float -> result
