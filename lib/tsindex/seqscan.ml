module Cpx = Simq_dsp.Cpx
module Series = Simq_series.Series
module Distance = Simq_series.Distance
module Relation = Simq_storage.Relation
module Pool = Simq_parallel.Pool
module Budget = Simq_fault.Budget
module Retry = Simq_fault.Retry
module Metrics = Simq_obs.Metrics
module Otrace = Simq_obs.Trace
module Profile = Simq_obs.Profile

let m_candidates =
  Metrics.counter ~help:"Entries compared by sequential scans"
    "simq_scan_candidates_total"

let m_survivors =
  Metrics.counter ~help:"Scan comparisons that produced an answer"
    "simq_scan_survivors_total"

let m_abandoned =
  Metrics.counter ~help:"Scan comparisons cut short by early abandoning"
    "simq_scan_early_abandon_total"

type result = {
  answers : (Dataset.entry * float) list;
  full_computations : int;
  coefficients_touched : int;
}

let sq_norm z =
  let re = Cpx.re z and im = Cpx.im z in
  (re *. re) +. (im *. im)

(* The transformed spectrum of an entry, restricted to the first
   [limit] coefficients, produced lazily one coefficient at a time so
   early abandoning does not pay for the whole vector. *)
let transformed_coeff stretch (entry : Dataset.entry) f =
  Cpx.mul stretch.(f) entry.Dataset.spectrum.(f)

let check_query_length dataset spec query =
  let n = Dataset.series_length dataset in
  let expected = Spec.output_length spec ~n in
  if Series.length query <> expected then
    invalid_arg
      (Printf.sprintf "Seqscan: query length %d, expected %d"
         (Series.length query) expected)

(* One full pass of page traffic against the backing relation, in entry
   order — the touch sequence (hence the buffer-pool statistics) a
   sequential scan produces. Kept out of the workers so the I/O
   accounting stays single-domain and deterministic. *)
let account_io dataset =
  let relation = Dataset.relation dataset in
  Array.iter
    (fun (entry : Dataset.entry) ->
      ignore (Relation.get relation entry.Dataset.id))
    (Dataset.entries dataset)

(* Per-entry comparison: the answer (when within ε), whether the
   distance computation ran to completion, and the coefficients (or
   time-domain points) examined. Pure — safe to run from any domain. *)
let compute_warp ~abandon spec epsilon (q : Dataset.entry)
    (entry : Dataset.entry) =
  let transformed = Spec.apply_series spec entry.Dataset.normal in
  let touched = Series.length transformed in
  let d =
    if abandon then
      Distance.euclidean_early_abandon ~threshold:epsilon transformed
        q.Dataset.normal
    else Some (Distance.euclidean transformed q.Dataset.normal)
  in
  match d with
  | Some d when d <= epsilon -> (Some (entry, d), 1, touched)
  | _ -> (None, 1, touched)

let compute_freq ~abandon ~stretch ~n ~limit epsilon (q : Dataset.entry)
    (entry : Dataset.entry) =
  let acc = ref 0. in
  let f = ref 0 in
  let abandoned = ref false in
  while (not !abandoned) && !f < n do
    let diff =
      Cpx.sub (transformed_coeff stretch entry !f) q.Dataset.spectrum.(!f)
    in
    acc := !acc +. sq_norm diff;
    incr f;
    if abandon && !acc > limit then abandoned := true
  done;
  if !abandoned then (None, 0, !f)
  else begin
    let d = sqrt !acc in
    ((if d <= epsilon then Some (entry, d) else None), 1, !f)
  end

(* Frequency-domain scan for the length-preserving transformations; the
   time-warp changes the series length, so its distances are computed in
   the time domain (same value by Parseval, no early-abandon benefit on
   the warped prefix).

   The entry array is cut into chunks fanned out over the pool; each
   chunk keeps its answers in entry order and its own counters, and the
   chunks are merged in chunk order, so answers, distances and counters
   are bit-identical to a single-domain scan. *)
let scan_compute ~pool ~abandon ~normalise_query ?bstate dataset spec query
    epsilon =
  let q = Dataset.prepare_query ~normalise:normalise_query query in
  let n = Dataset.series_length dataset in
  let limit = epsilon *. epsilon in
  let entries = Dataset.entries dataset in
  let count = Array.length entries in
  let compute =
    match spec with
    | Spec.Warp _ -> compute_warp ~abandon spec epsilon q
    | _ ->
      let stretch = Spec.stretch spec ~n in
      compute_freq ~abandon ~stretch ~n ~limit epsilon q
  in
  let chunk = Pool.adaptive_chunk pool count in
  let partials =
    Otrace.with_span "seqscan.compute" @@ fun () ->
    Pool.map_chunks ~pool ~chunk ~n:count (fun ~lo ~hi ->
        let answers = ref [] in
        let full = ref 0 in
        let touched = ref 0 in
        for i = lo to hi - 1 do
          (* Cooperative cancellation: every domain passes through here,
             so a budget blown anywhere stops all chunks promptly. Each
             entry costs one comparison whether or not it abandons. *)
          (match bstate with
          | None -> ()
          | Some b ->
            Budget.check b;
            Budget.charge_comparisons b 1);
          let answer, completed, examined = compute entries.(i) in
          (match answer with
          | Some hit -> answers := hit :: !answers
          | None -> ());
          full := !full + completed;
          touched := !touched + examined
        done;
        let answers = List.rev !answers in
        (* Per-chunk metric adds: totals over all chunks cover the whole
           entry array exactly once, so merged counters are identical at
           every domain count. *)
        Metrics.add m_candidates (hi - lo);
        Metrics.add m_survivors (List.length answers);
        Metrics.add m_abandoned (hi - lo - !full);
        (answers, !full, !touched))
  in
  Otrace.with_span "seqscan.merge" (fun () ->
      let full, touched =
        List.fold_left
          (fun (full, touched) (_, f, t) -> (full + f, touched + t))
          (0, 0) partials
      in
      {
        answers =
          List.sort (fun (a, _) (b, _) -> compare a.Dataset.id b.Dataset.id)
            (List.concat_map (fun (a, _, _) -> a) partials);
        full_computations = full;
        coefficients_touched = touched;
      })

let resolve_pool = function Some pool -> pool | None -> Pool.default ()

(* The common profiled body: one io child (page traffic), one compute
   child, counters recorded on the coordinating domain only, after the
   deterministic chunk merge — so the profile tree and its counters
   are identical at every domain count. *)
let profiled_scan ~pool ~abandon ~normalise_query ?bstate ?profile dataset spec
    query epsilon =
  Otrace.with_span "seqscan.range" (fun () ->
      let count = Array.length (Dataset.entries dataset) in
      let pio = Profile.enter profile "seqscan.io" in
      Otrace.with_span "seqscan.io" (fun () -> account_io dataset);
      Profile.add_pages pio count;
      Profile.leave profile pio;
      let pc = Profile.enter profile "seqscan.compute" in
      let result =
        scan_compute ~pool ~abandon ~normalise_query ?bstate dataset spec
          query epsilon
      in
      let survivors = List.length result.answers in
      Profile.add_rows_in pc count;
      Profile.add_candidates pc count;
      Profile.add_rows_out pc survivors;
      Profile.add_survivors pc survivors;
      Profile.add_early_abandon pc (count - result.full_computations);
      Profile.leave profile pc;
      result)

let scan ?pool ?profile ~abandon ~normalise_query dataset spec query epsilon =
  check_query_length dataset spec query;
  if not (Float.is_finite epsilon) || epsilon < 0. then
    invalid_arg "Seqscan: epsilon must be finite and >= 0";
  let pool = resolve_pool pool in
  let pn = Profile.enter profile "seqscan.range" in
  Fun.protect
    ~finally:(fun () -> Profile.leave profile pn)
    (fun () ->
      let result =
        profiled_scan ~pool ~abandon ~normalise_query ?profile dataset spec
          query epsilon
      in
      Profile.add_rows_in pn (Array.length (Dataset.entries dataset));
      Profile.add_rows_out pn (List.length result.answers);
      result)

let range_full ?pool ?(spec = Spec.Identity) ?(normalise_query = true) ?profile
    dataset ~query ~epsilon =
  scan ?pool ?profile ~abandon:false ~normalise_query dataset spec query
    epsilon

let range_early_abandon ?pool ?(spec = Spec.Identity) ?(normalise_query = true)
    ?profile dataset ~query ~epsilon =
  scan ?pool ?profile ~abandon:true ~normalise_query dataset spec query epsilon

let range_checked ?pool ?(spec = Spec.Identity) ?(normalise_query = true)
    ?(abandon = true) ?(budget = Budget.unlimited) ?retry ?on_retry ?profile
    dataset ~query ~epsilon =
  check_query_length dataset spec query;
  if not (Float.is_finite epsilon) || epsilon < 0. then
    invalid_arg "Seqscan: epsilon must be finite and >= 0";
  let pool = resolve_pool pool in
  let relation = Dataset.relation dataset in
  let pn = Profile.enter profile "seqscan.range" in
  let on_retry ~attempt =
    Profile.add_event pn (Printf.sprintf "retry: attempt %d abandoned" attempt);
    match on_retry with Some f -> f ~attempt | None -> ()
  in
  Fun.protect
    ~finally:(fun () -> Profile.leave profile pn)
    (fun () ->
      let result =
        Retry.with_retries ?policy:retry ~on_retry (fun () ->
            (* A fresh budget state per attempt: limits are per-attempt,
               and a retried scan starts its accounting from zero. *)
            let bstate = Budget.state_opt budget in
            (match bstate with
            | None -> ()
            | Some _ -> Relation.set_budget relation bstate);
            Fun.protect
              ~finally:(fun () ->
                if Option.is_some bstate then Relation.set_budget relation None)
              (fun () ->
                profiled_scan ~pool ~abandon ~normalise_query ?bstate ?profile
                  dataset spec query epsilon))
      in
      (match result with
      | Ok r ->
          Profile.add_rows_in pn (Array.length (Dataset.entries dataset));
          Profile.add_rows_out pn (List.length r.answers)
      | Error e ->
          Profile.add_event pn ("error: " ^ Simq_fault.Error.kind e));
      result)

let range_batch ?pool ?profiles ?(spec = Spec.Identity)
    ?(normalise_query = true) ?(abandon = true) dataset ~queries =
  Array.iter
    (fun (query, epsilon) ->
      check_query_length dataset spec query;
      if not (Float.is_finite epsilon) || epsilon < 0. then
        invalid_arg "Seqscan.range_batch: epsilon must be finite and >= 0")
    queries;
  (* Each query reads the whole relation; account the passes up front,
     in query order, exactly as running the queries one by one would. *)
  Array.iter (fun _ -> account_io dataset) queries;
  let count = Array.length (Dataset.entries dataset) in
  Simq_parallel.Batch.map ?pool ?profiles
    (fun ~profile (query, epsilon) ->
      let pn = Profile.enter profile "seqscan.range" in
      Fun.protect
        ~finally:(fun () -> Profile.leave profile pn)
        (fun () ->
          (* The page traffic really happened up front (see above); the
             profile still shows the per-query cost in its io child. *)
          let pio = Profile.enter profile "seqscan.io" in
          Profile.add_pages pio count;
          Profile.add_event pio "accounted up front, in query order";
          Profile.leave profile pio;
          let pc = Profile.enter profile "seqscan.compute" in
          let result =
            scan_compute ~pool:Pool.sequential ~abandon ~normalise_query
              dataset spec query epsilon
          in
          let survivors = List.length result.answers in
          Profile.add_rows_in pc count;
          Profile.add_candidates pc count;
          Profile.add_rows_out pc survivors;
          Profile.add_survivors pc survivors;
          Profile.add_early_abandon pc (count - result.full_computations);
          Profile.leave profile pc;
          Profile.add_rows_in pn count;
          Profile.add_rows_out pn survivors;
          result))
    queries

let reference ?(spec = Spec.Identity) ?(normalise_query = true) dataset ~query
    ~epsilon =
  check_query_length dataset spec query;
  let q = Dataset.prepare_query ~normalise:normalise_query query in
  Array.to_list (Dataset.entries dataset)
  |> List.filter_map (fun (entry : Dataset.entry) ->
         let d =
           Distance.euclidean
             (Spec.apply_series spec entry.Dataset.normal)
             q.Dataset.normal
         in
         if d <= epsilon then Some (entry, d) else None)
  |> List.sort (fun (a, _) (b, _) -> compare a.Dataset.id b.Dataset.id)
