module Series = Simq_series.Series
module Normal_form = Simq_series.Normal_form
module Relation = Simq_storage.Relation

type entry = {
  id : int;
  name : string;
  series : Series.t;
  normal : Series.t;
  spectrum : Simq_dsp.Cpx.t array;
  mean : float;
  std : float;
}

type t = {
  mutable entries : entry array;  (* amortised growable; [count] live *)
  mutable count : int;
  n : int;
  relation : Relation.t;
}

let prepare ~id ~name series =
  let d = Normal_form.decompose series in
  {
    id;
    name;
    series;
    normal = d.Normal_form.normalised;
    spectrum = Simq_dsp.Fft.fft_real d.Normal_form.normalised;
    mean = d.Normal_form.mean;
    std = d.Normal_form.std;
  }

let of_relation ?pool r =
  if Relation.cardinality r = 0 then
    invalid_arg "Dataset.of_relation: empty relation";
  let tuples = Relation.to_array r in
  let n = Series.length tuples.(0).Relation.data in
  (* Per-entry normalisation + FFT dominates the build cost and is pure,
     so the tuples fan out over the pool; [map_array] keeps positions
     and surfaces the lowest-index length error, like the
     left-to-right sequential map did. *)
  let entries =
    Simq_parallel.Pool.map_array ?pool
      (fun (tuple : Relation.tuple) ->
        if Series.length tuple.Relation.data <> n then
          invalid_arg "Dataset.of_relation: series of unequal lengths";
        prepare ~id:tuple.Relation.id ~name:tuple.Relation.name
          tuple.Relation.data)
      tuples
  in
  { entries; count = Array.length entries; n; relation = r }

let of_series ?pool ~name batch =
  of_relation ?pool (Relation.of_series ~name batch)

let insert t ~name data =
  let data = Series.validate data in
  if Series.length data <> t.n then
    invalid_arg "Dataset.insert: series length mismatch";
  let tuple = Relation.insert t.relation ~name data in
  let entry = prepare ~id:tuple.Relation.id ~name data in
  let capacity = Array.length t.entries in
  if t.count = capacity then begin
    let fresh = Array.make (max 16 (2 * capacity)) entry in
    Array.blit t.entries 0 fresh 0 capacity;
    t.entries <- fresh
  end;
  t.entries.(t.count) <- entry;
  t.count <- t.count + 1;
  entry

let prepare_query ?(normalise = true) q =
  let q = Series.validate q in
  if normalise then prepare ~id:(-1) ~name:"query" q
  else
    {
      id = -1;
      name = "query";
      series = q;
      normal = q;
      spectrum = Simq_dsp.Fft.fft_real q;
      mean = 0.;
      std = 1.;
    }
let entries t = Array.sub t.entries 0 t.count

let get t id =
  if id < 0 || id >= t.count then invalid_arg "Dataset.get: unknown id";
  t.entries.(id)

let cardinality t = t.count
let series_length t = t.n
let relation t = t.relation
