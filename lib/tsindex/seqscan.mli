(** Sequential-scan baselines (Section 5, Figures 10–11).

    Scans run over the relation of Fourier coefficients, not the raw
    series: the DFT packs most of the energy into the first
    coefficients, so the early-abandoning variant can dismiss most
    sequences after a few terms. Page traffic is accounted against the
    backing relation.

    Every scan fans its per-entry comparisons out over a
    {!Simq_parallel.Pool} (default the global pool; size 1 = plain
    sequential execution). Chunk results are merged in entry order, so
    answers, distances and the [result] counters are bit-identical to a
    single-domain scan — parallelism never changes what a query
    returns.

    Every range entry point takes an optional [?profile]
    ({!Simq_obs.Profile}): when present, the scan records a
    [seqscan.range] operator node (with [seqscan.io] and
    [seqscan.compute] children carrying page traffic, candidates,
    survivors and early-abandon tallies) on the coordinating domain,
    after the chunk merge — so the recorded tree and counters are
    identical at every domain count, and the disabled path costs
    nothing. *)

type result = {
  answers : (Dataset.entry * float) list;
  full_computations : int;
      (** distance computations carried to completion *)
  coefficients_touched : int;
      (** total spectrum coefficients examined — the work an early
          abandon saves *)
}

(** [range_full dataset ?pool ?spec ~query ~epsilon] compares the query
    against every entry with no early abandoning (method (a) style). *)
val range_full :
  ?pool:Simq_parallel.Pool.t ->
  ?spec:Spec.t -> ?normalise_query:bool -> ?profile:Simq_obs.Profile.t ->
  Dataset.t -> query:Simq_series.Series.t -> epsilon:float ->
  result

(** [range_early_abandon dataset ?pool ?spec ~query ~epsilon] stops each
    distance computation as soon as the running sum exceeds ε
    (method (b) style). Answers are identical to {!range_full}. *)
val range_early_abandon :
  ?pool:Simq_parallel.Pool.t ->
  ?spec:Spec.t -> ?normalise_query:bool -> ?profile:Simq_obs.Profile.t ->
  Dataset.t -> query:Simq_series.Series.t -> epsilon:float ->
  result

(** [range_checked dataset ?pool ?spec ?abandon ?budget ?retry ~query
    ~epsilon] is the resilient scan: same answers as
    {!range_early_abandon} (or {!range_full} with [abandon:false]) but
    executed under a {!Simq_fault.Budget} and bounded
    {!Simq_fault.Retry}, returning a typed error instead of raising.
    Each attempt gets a fresh budget state, installed on the backing
    relation for its page accounting and checked per entry in every
    scan domain; transient page-read faults from an installed
    {!Simq_fault.Injector} are retried per [retry] (default
    {!Simq_fault.Retry.default}), with [on_retry] told about each
    abandoned attempt. With an unlimited budget and no injector the
    result is bit-identical to the unchecked scan. Argument validation
    errors (wrong query length, negative ε) still raise
    [Invalid_argument]. *)
val range_checked :
  ?pool:Simq_parallel.Pool.t ->
  ?spec:Spec.t ->
  ?normalise_query:bool ->
  ?abandon:bool ->
  ?budget:Simq_fault.Budget.t ->
  ?retry:Simq_fault.Retry.policy ->
  ?on_retry:(attempt:int -> unit) ->
  ?profile:Simq_obs.Profile.t ->
  Dataset.t -> query:Simq_series.Series.t -> epsilon:float ->
  (result, Simq_fault.Error.t) Result.t

(** [range_batch dataset ?pool ?profiles ?spec ?abandon ~queries]
    answers a whole workload of [(query, epsilon)] pairs through
    {!Simq_parallel.Batch} — one query per task over the resident
    dataset (the serving path for many concurrent users). All queries
    are validated before any work starts; element [i] of the result is
    bit-identical to running query [i] alone ([abandon] selects
    {!range_early_abandon} semantics, the default, vs {!range_full}),
    and the relation's page statistics advance exactly as [queries]
    sequential scans would (the passes are accounted up front, in
    query order). With [?profiles] (length = [queries]'s, else
    [Invalid_argument]) query [i] records its [seqscan.range] tree into
    [profiles.(i)]; its [seqscan.io] child notes that the page traffic
    was accounted up front. *)
val range_batch :
  ?pool:Simq_parallel.Pool.t ->
  ?profiles:Simq_obs.Profile.t array ->
  ?spec:Spec.t -> ?normalise_query:bool -> ?abandon:bool -> Dataset.t ->
  queries:(Simq_series.Series.t * float) array ->
  result array

(** [reference dataset ?spec ~query ~epsilon] is the plain time-domain
    brute force used as the test oracle (always single-domain). *)
val reference :
  ?spec:Spec.t -> ?normalise_query:bool -> Dataset.t -> query:Simq_series.Series.t -> epsilon:float ->
  (Dataset.entry * float) list
