(** Subsequence matching — the [FRM94] direction the paper builds on.
    Example 1.2 asks for “the Euclidean distance between p and any
    subsequence of length four of s”; this module answers such queries
    with an index instead of a scan.

    Every length-[window] sliding window of every stored series is
    mapped to its first [k] DFT coefficients (raw, no normalisation —
    subsequence matching compares absolute shapes). Two index layouts:

    - {b point per window} (default): one degenerate rectangle per
      window position;
    - {b MBR trails} ([~trail:T]): the ST-index idea of [FRM94] — [T]
      consecutive windows share one entry whose rectangle bounds their
      feature points. Adjacent windows have similar spectra, so trails
      shrink the index by ~[T]× at the cost of more positions to check
      per candidate entry.

    Both layouts are exact: the coefficient-prefix distance lower-bounds
    the true window distance (Parseval), so the index pass returns a
    superset and postprocessing removes the false hits. *)

type t

type hit = {
  series_id : int;
  offset : int;  (** the matching window starts here *)
  distance : float;
}

(** [build ?k ?max_fill ?trail ~window series] indexes all sliding
    windows of all series. [k] (default 3) is the number of DFT
    coefficients; the index has [2k] dimensions. [trail] selects the
    MBR-trail layout with runs of that many windows. Raises
    [Invalid_argument] when [window] exceeds some series' length,
    [k > window], or [trail < 1]. *)
val build :
  ?k:int ->
  ?max_fill:int ->
  ?trail:int ->
  window:int ->
  Simq_series.Series.t array ->
  t

val window : t -> int

(** [windows_indexed t] is the number of searchable window positions. *)
val windows_indexed : t -> int

(** [index_entries t] is the number of R-tree data entries —
    [windows_indexed] without trails, roughly [windows/T] with. *)
val index_entries : t -> int

(** [range t ~query ~epsilon] is every window within [epsilon] of
    [query] (whose length must equal [window t]), sorted by series id
    then offset, plus the number of window positions postprocessed. *)
(** All four query entry points take an optional [?profile]
    ({!Simq_obs.Profile}): range queries record a [subseq.range]
    operator node with [subseq.descent]/[subseq.postfilter] children,
    nearest queries a [subseq.nearest] node whose pages are the node
    expansions. Profiling never changes an answer and costs nothing
    when absent. *)

val range :
  ?profile:Simq_obs.Profile.t ->
  t -> query:Simq_series.Series.t -> epsilon:float -> hit list * int

(** [range_checked t ?budget ?retry ~query ~epsilon] is {!range} under
    a {!Simq_fault.Budget} and bounded {!Simq_fault.Retry}: node visits
    are charged inside the traversal, every candidate window position
    as one comparison. Returns the exact {!range} result or a typed
    error; each attempt gets a fresh budget state. Argument validation
    still raises [Invalid_argument]. *)
val range_checked :
  ?budget:Simq_fault.Budget.t ->
  ?retry:Simq_fault.Retry.policy ->
  ?on_retry:(attempt:int -> unit) ->
  ?profile:Simq_obs.Profile.t ->
  t ->
  query:Simq_series.Series.t ->
  epsilon:float ->
  (hit list * int, Simq_fault.Error.t) Result.t

(** [nearest t ~query ~k] is the [k] closest windows, closest first
    (ties broken arbitrarily). Exact in both layouts: every popped
    trail contributes at least its best window, so the globally
    re-sorted expansion contains a valid k-NN set. *)
val nearest :
  ?profile:Simq_obs.Profile.t ->
  t -> query:Simq_series.Series.t -> k:int -> hit list

(** [nearest_checked t ?budget ?retry ~query ~k] is {!nearest} under a
    budget: node expansions charge node accesses, each candidate
    entry's window evaluations charge comparisons. Returns the exact
    {!nearest} result or a typed error. *)
val nearest_checked :
  ?budget:Simq_fault.Budget.t ->
  ?retry:Simq_fault.Retry.policy ->
  ?on_retry:(attempt:int -> unit) ->
  ?profile:Simq_obs.Profile.t ->
  t ->
  query:Simq_series.Series.t ->
  k:int ->
  (hit list, Simq_fault.Error.t) Result.t
