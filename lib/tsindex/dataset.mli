(** A prepared data set: every series normalised and transformed to the
    frequency domain once, as the paper does before indexing
    (Section 5: “for every time series, we first transformed it to the
    normal form, and then we found its Fourier coefficients”).

    The spectrum stored is that of the {e normal form}; the original
    mean and standard deviation ride along and become the first two
    index dimensions. *)

type entry = {
  id : int;
  name : string;
  series : Simq_series.Series.t;  (** the original series *)
  normal : Simq_series.Series.t;  (** its normal form *)
  spectrum : Simq_dsp.Cpx.t array;
      (** full unitary DFT of [normal]; coefficient 0 is always 0 *)
  mean : float;
  std : float;
}

type t

(** [of_relation ?pool r] prepares every tuple; the per-entry
    normalisation + FFT (the dominant build cost) fans out over [pool]
    (default {!Simq_parallel.Pool.default}) with results identical to a
    sequential build. Raises [Invalid_argument] when the relation is
    empty or holds series of unequal lengths. *)
val of_relation : ?pool:Simq_parallel.Pool.t -> Simq_storage.Relation.t -> t

(** [of_series ?pool ~name batch] shortcut: wraps the batch in a
    relation and prepares it. *)
val of_series :
  ?pool:Simq_parallel.Pool.t -> name:string -> Simq_series.Series.t array -> t

(** [insert t ~name data] validates, stores and prepares one more
    series (appending it to the backing relation); its id is the new
    cardinality minus one. Raises [Invalid_argument] when the length
    differs from the data set's. *)
val insert : t -> name:string -> Simq_series.Series.t -> entry

(** [prepare_query ?normalise q] transforms an external query series the
    same way (it need not have the data-set length — warp queries are
    longer). With [~normalise:false] the series is used verbatim: pass a
    query that is {e already} in the comparison space, e.g. the moving
    average of a normal form when matching “series whose smoothed normal
    forms track this curve”. *)
val prepare_query : ?normalise:bool -> Simq_series.Series.t -> entry

(** [entries t] is a snapshot of the live entries. *)
val entries : t -> entry array
val get : t -> int -> entry
val cardinality : t -> int

(** [series_length t] is the common length [n]. *)
val series_length : t -> int

(** [relation t] is the backing relation (for page-accounting scans). *)
val relation : t -> Simq_storage.Relation.t
