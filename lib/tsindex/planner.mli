(** A small cost-based planner for range queries: Figure 12 shows the
    index winning only while the answer set is a minority of the
    relation, so a system should pick the access path from the
    predicted answer-set size. The prediction comes from an equi-width
    histogram of sampled pairwise normal-form distances. *)

type stats

(** [collect ?samples ?seed ?buckets dataset] samples pairwise distances
    between normal forms ([samples] pairs, default 2000) into an
    equi-width histogram (default 64 buckets). *)
val collect : ?samples:int -> ?seed:int -> ?buckets:int -> Dataset.t -> stats

(** [selectivity stats ~epsilon] is the estimated fraction of series
    within [epsilon] of a typical query, in [0, 1]; monotone in
    [epsilon], linear interpolation inside buckets. *)
val selectivity : stats -> epsilon:float -> float

(** [estimate_answers stats ~cardinality ~epsilon] scales the
    selectivity to an expected answer count. *)
val estimate_answers : stats -> cardinality:int -> epsilon:float -> float

type plan = Use_index | Use_scan

(** [choose ?scan_threshold stats ~cardinality ~epsilon] picks the access
    path: scan when the expected answer fraction exceeds
    [scan_threshold] (default 0.3, the paper's “one third of the
    relation” crossover). Returns the plan and the expected answer
    count. *)
val choose :
  ?scan_threshold:float -> stats -> cardinality:int -> epsilon:float ->
  plan * float

type result = {
  answers : (Dataset.entry * float) list;
  plan : plan;
  estimated_answers : float;
}

(** [range kindex stats ?spec ~query ~epsilon] plans and executes: the
    answers are identical whichever path runs (both are exact).
    [?profile] records a [planner] node (a [plan] child annotated with
    the choice and estimate, the executed path's node below). *)
val range :
  ?spec:Spec.t ->
  ?profile:Simq_obs.Profile.t ->
  Kindex.t ->
  stats ->
  query:Simq_series.Series.t ->
  epsilon:float ->
  result

val pp_plan : Format.formatter -> plan -> unit

(** {2 Resilient execution}

    The degradation path of the fault layer: run the planned access
    path under a {!Simq_fault.Budget} with bounded retries, and when
    the {e index} path fails — budget exhausted, transient faults
    outlasting every retry, or a failed {!Simq_rtree.Check} validation
    — fall back to the sequential scan for that query. Both paths are
    exact, so a degraded query still returns the Lemma 1 answer; only
    cost changes, and the fallback is recorded in {!counters} so
    reports can show degradation rates. *)

(** Mutable per-workload counters, shared by every query routed through
    {!range_resilient} with the same record. *)
type counters = {
  mutable queries : int;  (** queries routed through {!range_resilient} *)
  mutable index_attempts : int;  (** queries that tried the index path *)
  mutable degraded : int;  (** queries that fell back to the scan *)
  mutable retries : int;  (** transient-fault attempts abandoned *)
  mutable failures : int;  (** executed queries that returned [Error] *)
  mutable rejected : int;
      (** queries refused by admission control before execution (not
          counted in [failures]: nothing ran) *)
}

val create_counters : unit -> counters

(** [degradation_rate c] is [degraded / queries] (0 when idle). *)
val degradation_rate : counters -> float

val pp_counters : Format.formatter -> counters -> unit

type resilient_result = {
  answers : (Dataset.entry * float) list;
  executed : plan;  (** the path that produced the answers *)
  degraded : bool;
      (** the scan answered in place of the planned index path — either
          the index path failed mid-flight, or admission control
          predicted it would and redirected before execution *)
  partial : bool;
      (** the index path ran in anytime mode ([?anytime]) and its
          budget died inside exact verification: the answers are a
          sound subset (see {!Kindex.range_result}). Always [false] on
          the scan path *)
  index_error : Simq_fault.Error.t option;
      (** why the index path was abandoned mid-flight, when [degraded];
          [None] for an admission-time [Degrade_to_scan] (nothing ran) *)
  admission : Simq_admission.decision option;
      (** the admission decision, when an [admission] policy was given *)
}

(** [range_resilient kindex ?stats ?budget ?retry ?counters ?validate
    ?admission ~query ~epsilon] plans ([Use_index] when [stats] is
    omitted), executes under [budget] (default unlimited) with [retry]
    (default {!Simq_fault.Retry.default}), and degrades index failures
    to the scan. Each execution attempt gets a fresh budget state — in
    particular the fallback scan restarts the budget, so a degraded
    query can still complete. [validate:true] (default false) checks
    the R*-tree invariants first and treats a violation as an index
    failure ([Index_unusable]). [Error] is returned only when the
    fallback itself fails. [pool] feeds the scan path's domain pool.

    When [admission] is given, {!Simq_admission.decide} runs between
    planning and execution, on catalogue metadata and the planner
    histogram only — before any page is read. [Admit] leaves the run
    unchanged (bit-identical answers to the same call without
    [admission]); [Degrade_to_scan] runs the scan directly; [Reject]
    returns [Error (Simq_fault.Error.Rejected _)] without executing
    anything, bumping [counters.rejected] only.

    With [?profile] ({!Simq_obs.Profile}) the query records a
    [planner] operator node — [plan] and [admit] children annotated
    with the chosen path and the admission decision, retry and
    degradation events, and the executed access path's own node below
    it. When a process-wide ambient query log is installed
    ({!Simq_obs.Qlog.install} — the bench driver's [--qlog] flag),
    every call also appends one log entry: spec and digest, decision,
    path, counter deltas between the bracketing registry snapshots,
    duration, outcome with its exit-code convention (0 ok, 4 failed,
    5 rejected) and domain count. Neither changes answers, counters or
    decisions.

    [?sketch]/[?approx]/[?anytime] thread the {!Kindex} sketch funnel
    into the index path only — the fallback scan is always exact and
    full, so a degraded query keeps the Lemma 1 answer even in
    approximate mode (a superset of the approximate answers, every one
    true). [?sketch_levels] feeds the funnel's level count into the
    admission workload so the cost model discounts the exact
    comparisons the funnel saves; it defaults to [0] and never changes
    what an executed path returns. *)
val range_resilient :
  ?pool:Simq_parallel.Pool.t ->
  ?spec:Spec.t ->
  ?stats:stats ->
  ?budget:Simq_fault.Budget.t ->
  ?retry:Simq_fault.Retry.policy ->
  ?counters:counters ->
  ?validate:bool ->
  ?admission:Simq_admission.t ->
  ?sketch:(Dataset.entry -> Kindex.prefilter option) ->
  ?sketch_levels:int ->
  ?approx:float ->
  ?anytime:bool ->
  ?profile:Simq_obs.Profile.t ->
  Kindex.t ->
  query:Simq_series.Series.t ->
  epsilon:float ->
  (resilient_result, Simq_fault.Error.t) Result.t
