module Distance = Simq_series.Distance
module Metrics = Simq_obs.Metrics
module Otrace = Simq_obs.Trace
module Profile = Simq_obs.Profile
module Qlog = Simq_obs.Qlog
module Clock = Simq_obs.Clock
module Pool = Simq_parallel.Pool

let m_path_index =
  Metrics.counter ~help:"Queries planned onto the k-index"
    "simq_planner_path_index_total"

let m_path_scan =
  Metrics.counter ~help:"Queries planned onto the sequential scan"
    "simq_planner_path_scan_total"

let m_degraded =
  Metrics.counter ~help:"Index attempts degraded to the sequential scan"
    "simq_planner_degraded_total"

let m_failures =
  Metrics.counter ~help:"Planned queries that returned a typed error"
    "simq_planner_failures_total"

let m_estimated_selectivity =
  Metrics.gauge ~help:"Histogram-estimated selectivity of the last planned query"
    "simq_planner_estimated_selectivity"

let m_actual_selectivity =
  Metrics.gauge ~help:"Actual selectivity of the last planned query"
    "simq_planner_actual_selectivity"

type stats = {
  bucket_width : float;
  counts : int array;  (* counts.(i): distances in [i·w, (i+1)·w) *)
  total : int;
}

let collect ?(samples = 2000) ?(seed = 42) ?(buckets = 64) dataset =
  if samples <= 0 then invalid_arg "Planner.collect: samples must be positive";
  if buckets <= 0 then invalid_arg "Planner.collect: buckets must be positive";
  let entries = Dataset.entries dataset in
  let n = Array.length entries in
  let state = Random.State.make [| seed |] in
  let distances =
    Array.init samples (fun _ ->
        let i = Random.State.int state n in
        let j = Random.State.int state n in
        Distance.euclidean entries.(i).Dataset.normal entries.(j).Dataset.normal)
  in
  let max_distance = Array.fold_left Float.max 0. distances in
  let bucket_width =
    if max_distance = 0. then 1. else max_distance /. float_of_int buckets
  in
  let counts = Array.make buckets 0 in
  Array.iter
    (fun d ->
      let idx = min (buckets - 1) (int_of_float (d /. bucket_width)) in
      counts.(idx) <- counts.(idx) + 1)
    distances;
  { bucket_width; counts; total = samples }

let selectivity stats ~epsilon =
  if epsilon < 0. then 0.
  else begin
    let buckets = Array.length stats.counts in
    let position = epsilon /. stats.bucket_width in
    let whole = int_of_float (Float.floor position) in
    let acc = ref 0. in
    for i = 0 to min (whole - 1) (buckets - 1) do
      acc := !acc +. float_of_int stats.counts.(i)
    done;
    if whole < buckets then begin
      let fraction = position -. Float.of_int whole in
      acc := !acc +. (fraction *. float_of_int stats.counts.(whole))
    end;
    Float.min 1. (!acc /. float_of_int stats.total)
  end

let estimate_answers stats ~cardinality ~epsilon =
  selectivity stats ~epsilon *. float_of_int cardinality

type plan = Use_index | Use_scan

let choose ?(scan_threshold = 0.3) stats ~cardinality ~epsilon =
  let expected = estimate_answers stats ~cardinality ~epsilon in
  let plan =
    if expected > scan_threshold *. float_of_int cardinality then Use_scan
    else Use_index
  in
  (plan, expected)

type result = {
  answers : (Dataset.entry * float) list;
  plan : plan;
  estimated_answers : float;
}

(* Publish one planned query's decision and its estimate-vs-actual
   selectivity (gauges: the last query wins, counters accumulate). *)
let record_plan plan = Metrics.incr (match plan with
  | Use_index -> m_path_index
  | Use_scan -> m_path_scan)

let record_selectivity ~cardinality ~estimated ~actual =
  if Metrics.on () && cardinality > 0 then begin
    let card = float_of_int cardinality in
    Metrics.set_gauge m_estimated_selectivity (estimated /. card);
    Metrics.set_gauge m_actual_selectivity (float_of_int actual /. card)
  end

let plan_name = function Use_index -> "index" | Use_scan -> "scan"

let range ?(spec = Spec.Identity) ?profile kindex stats ~query ~epsilon =
  let dataset = Kindex.dataset kindex in
  let cardinality = Dataset.cardinality dataset in
  let pn = Profile.enter profile "planner" in
  Fun.protect ~finally:(fun () -> Profile.leave profile pn) @@ fun () ->
  let pplan = Profile.enter profile "plan" in
  let plan, estimated_answers =
    Otrace.with_span "plan" (fun () -> choose stats ~cardinality ~epsilon)
  in
  Profile.set_detail pplan
    (Printf.sprintf "%s est=%.1f" (plan_name plan) estimated_answers);
  Profile.leave profile pplan;
  Profile.set_detail pn (plan_name plan);
  record_plan plan;
  let answers =
    match plan with
    | Use_index ->
      (Kindex.range ~spec ?profile kindex ~query ~epsilon).Kindex.answers
    | Use_scan ->
      (Seqscan.range_early_abandon ~spec ?profile dataset ~query ~epsilon)
        .Seqscan.answers
  in
  record_selectivity ~cardinality ~estimated:estimated_answers
    ~actual:(List.length answers);
  Profile.add_rows_out pn (List.length answers);
  { answers; plan; estimated_answers }

let pp_plan ppf plan = Format.pp_print_string ppf (plan_name plan)

(* --- resilient execution -------------------------------------------------- *)

module Budget = Simq_fault.Budget
module Error = Simq_fault.Error

type counters = {
  mutable queries : int;
  mutable index_attempts : int;
  mutable degraded : int;
  mutable retries : int;
  mutable failures : int;
  mutable rejected : int;
}

let create_counters () =
  {
    queries = 0;
    index_attempts = 0;
    degraded = 0;
    retries = 0;
    failures = 0;
    rejected = 0;
  }

let degradation_rate c =
  if c.queries = 0 then 0. else float_of_int c.degraded /. float_of_int c.queries

let pp_counters ppf c =
  Format.fprintf ppf
    "queries=%d index_attempts=%d degraded=%d retries=%d failures=%d \
     rejected=%d"
    c.queries c.index_attempts c.degraded c.retries c.failures c.rejected

type resilient_result = {
  answers : (Dataset.entry * float) list;
  executed : plan;
  degraded : bool;
  partial : bool;
  index_error : Error.t option;
  admission : Simq_admission.decision option;
}

(* Everything admission control needs is catalogue metadata plus one
   histogram lookup: producing it reads no page and visits no node. *)
let admission_workload ?stats ?(sketch_levels = 0) kindex ~epsilon =
  let dataset = Kindex.dataset kindex in
  let tree = Kindex.tree kindex in
  {
    Simq_admission.cardinality = Dataset.cardinality dataset;
    pages = Simq_storage.Relation.pages (Dataset.relation dataset);
    tree_size = Simq_rtree.Rstar.size tree;
    tree_height = Simq_rtree.Rstar.height tree;
    selectivity =
      (match stats with Some stats -> selectivity stats ~epsilon | None -> 1.);
    sketch_levels;
  }

let range_resilient_impl ?pool ?(spec = Spec.Identity) ?stats
    ?(budget = Budget.unlimited) ?retry ?counters ?(validate = false)
    ?admission ?sketch ?(sketch_levels = 0) ?approx ?anytime ?profile kindex
    ~query ~epsilon =
  let bump f = match counters with Some c -> f c | None -> () in
  bump (fun c -> c.queries <- c.queries + 1);
  let pn = Profile.enter profile "planner" in
  Fun.protect ~finally:(fun () -> Profile.leave profile pn) @@ fun () ->
  let on_retry ~attempt =
    Profile.add_event pn (Printf.sprintf "retry: attempt %d abandoned" attempt);
    bump (fun c -> c.retries <- c.retries + 1)
  in
  let dataset = Kindex.dataset kindex in
  let scan () =
    Seqscan.range_checked ?pool ~spec ~budget ?retry ~on_retry ?profile dataset
      ~query ~epsilon
  in
  let failed e =
    bump (fun c -> c.failures <- c.failures + 1);
    Metrics.incr m_failures;
    Profile.add_event pn ("error: " ^ Error.kind e);
    Error e
  in
  let plan =
    match stats with
    | Some stats ->
      let pplan = Profile.enter profile "plan" in
      let plan, estimated =
        Otrace.with_span "plan" (fun () ->
            choose stats ~cardinality:(Dataset.cardinality dataset) ~epsilon)
      in
      Profile.set_detail pplan
        (Printf.sprintf "%s est=%.1f" (plan_name plan) estimated);
      Profile.leave profile pplan;
      plan
    | None -> Use_index
  in
  Profile.set_detail pn (plan_name plan);
  record_plan plan;
  (* Admission control runs between planning and execution: the
     decision is made from catalogue metadata, the planner's histogram
     and the live registry — before any page is touched. *)
  let decision =
    match admission with
    | None -> None
    | Some policy ->
      let padmit = Profile.enter profile "admit" in
      let workload = admission_workload ?stats ~sketch_levels kindex ~epsilon in
      let prefer =
        match plan with
        | Use_index -> Simq_admission.Index_path
        | Use_scan -> Simq_admission.Scan_path
      in
      let d = Simq_admission.decide policy workload ~prefer ~budget in
      Profile.set_detail padmit (Simq_admission.decision_name d);
      Profile.leave profile padmit;
      Some d
  in
  (* The fallback restarts the budget (range_checked derives a fresh
     state per attempt): limits bound each execution attempt, and a
     degraded query must be allowed to finish its scan. *)
  let fallback index_error =
    bump (fun c -> c.degraded <- c.degraded + 1);
    Metrics.incr m_degraded;
    Profile.add_event pn ("degraded: " ^ Error.kind index_error);
    match scan () with
    | Ok (r : Seqscan.result) ->
      Ok
        {
          answers = r.Seqscan.answers;
          executed = Use_scan;
          degraded = true;
          partial = false;
          index_error = Some index_error;
          admission = decision;
        }
    | Error e -> failed e
  in
  let run_scan ~degraded =
    match scan () with
    | Ok (r : Seqscan.result) ->
      Ok
        {
          answers = r.Seqscan.answers;
          executed = Use_scan;
          degraded;
          partial = false;
          index_error = None;
          admission = decision;
        }
    | Error e -> failed e
  in
  let run_index () =
    if validate && not (Simq_rtree.Check.is_valid (Kindex.tree kindex)) then
      fallback (Error.Index_unusable { reason = "R-tree invariant check failed" })
    else begin
      bump (fun c -> c.index_attempts <- c.index_attempts + 1);
      match
        Kindex.range_checked ~spec ~budget ?retry ~on_retry ?sketch ?approx
          ?anytime ?profile kindex ~query ~epsilon
      with
      | Ok (r : Kindex.range_result) ->
        Ok
          {
            answers = r.Kindex.answers;
            executed = Use_index;
            degraded = false;
            partial = r.Kindex.partial;
            index_error = None;
            admission = decision;
          }
      | Error e -> fallback e
    end
  in
  match decision with
  | Some (Simq_admission.Reject reject) ->
    (* Refused before execution: not an execution failure, so only the
       rejection counter moves, and no page was read. *)
    bump (fun c -> c.rejected <- c.rejected + 1);
    Profile.add_event pn "rejected by admission control";
    Error (Simq_admission.error_of_reject reject)
  | Some Simq_admission.Degrade_to_scan ->
    bump (fun c -> c.degraded <- c.degraded + 1);
    Metrics.incr m_degraded;
    Profile.add_event pn "degraded: admission";
    run_scan ~degraded:true
  | None | Some Simq_admission.Admit -> (
    match plan with Use_scan -> run_scan ~degraded:false | Use_index -> run_index ())

(* One qlog entry per executed (or rejected) query: spec text + digest,
   the decision and the path actually taken, the counter deltas between
   the two registry snapshots bracketing the run, duration, outcome and
   the Simq_cli exit-code convention (0 ok, 4 executed-and-failed,
   5 rejected). The ambient log is the bench driver's [--qlog] hook;
   [bin/simq] builds its entries explicitly instead. *)
let qlog_entry ~spec ~epsilon ~query ~pool ~duration_s result =
  let spec_text = Printf.sprintf "range %s eps=%g" (Spec.name spec) epsilon in
  let digest =
    String.sub
      (Digest.to_hex
         (Digest.string (Marshal.to_string (Spec.name spec, epsilon, query) [])))
      0 12
  in
  let decision, path, outcome, exit_code =
    match result with
    | Ok r ->
      ( Option.map Simq_admission.decision_name r.admission,
        Some (plan_name r.executed),
        "ok",
        0 )
    | Error e ->
      let kind = Error.kind e in
      ( (if kind = "rejected" then Some "reject" else None),
        None,
        kind,
        if kind = "rejected" then 5 else 4 )
  in
  {
    Qlog.spec = spec_text;
    digest;
    decision;
    path;
    deltas = [];
    duration_s;
    outcome;
    exit_code;
    domains =
      Pool.domains (match pool with Some p -> p | None -> Pool.default ());
    (* The resilient planner runs one monolithic index; scatter-gather
       queries are logged by their own callers with the gather's
       report. *)
    shards = None;
    trace_id =
      (match Otrace.current_request () with 0 -> None | id -> Some id);
  }

let range_resilient ?pool ?spec ?stats ?budget ?retry ?counters ?validate
    ?admission ?sketch ?sketch_levels ?approx ?anytime ?profile kindex ~query
    ~epsilon =
  match Qlog.ambient () with
  | None ->
    range_resilient_impl ?pool ?spec ?stats ?budget ?retry ?counters ?validate
      ?admission ?sketch ?sketch_levels ?approx ?anytime ?profile kindex
      ~query ~epsilon
  | Some qlog ->
    let before = Metrics.snapshot () in
    let t0 = Clock.now_ns () in
    let result =
      range_resilient_impl ?pool ?spec ?stats ?budget ?retry ?counters
        ?validate ?admission ?sketch ?sketch_levels ?approx ?anytime ?profile
        kindex ~query ~epsilon
    in
    let duration_s = Clock.elapsed_s t0 in
    let entry =
      qlog_entry ~spec:(Option.value spec ~default:Spec.Identity) ~epsilon
        ~query ~pool ~duration_s result
    in
    Qlog.log qlog
      {
        entry with
        Qlog.deltas = Qlog.counter_deltas ~before ~after:(Metrics.snapshot ());
      };
    result
