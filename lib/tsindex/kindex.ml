module Cpx = Simq_dsp.Cpx
module Series = Simq_series.Series
module Distance = Simq_series.Distance
module Geometry = Simq_geometry
module Coords = Geometry.Coords
module Region = Geometry.Region
module Rect = Geometry.Rect
module Linear_transform = Geometry.Linear_transform
module Complex_transform = Geometry.Complex_transform
module Rstar = Simq_rtree.Rstar
module Nn = Simq_rtree.Nn
module Budget = Simq_fault.Budget
module Retry = Simq_fault.Retry
module Metrics = Simq_obs.Metrics
module Otrace = Simq_obs.Trace
module Profile = Simq_obs.Profile

let m_candidates =
  Metrics.counter ~help:"Index candidates returned by k-index traversals"
    "simq_kindex_candidates_total"

let m_survivors =
  Metrics.counter ~help:"Index candidates that survived the postfilter"
    "simq_kindex_survivors_total"

type t = {
  dataset : Dataset.t;
  config : Feature.config;
  tree : int Rstar.t;
}

let build ?(config = Feature.default) ?(max_fill = 32) dataset =
  Feature.validate config ~n:(Dataset.series_length dataset);
  let items =
    Array.map
      (fun (entry : Dataset.entry) ->
        (Feature.point config entry, entry.Dataset.id))
      (Dataset.entries dataset)
  in
  let tree = Simq_rtree.Bulk.load ~max_fill ~dims:(Feature.dims config) items in
  { dataset; config; tree }

(* --- maintenance --------------------------------------------------------- *)

let insert t ~name series =
  let entry = Dataset.insert t.dataset ~name series in
  Rstar.insert t.tree (Feature.point t.config entry) entry.Dataset.id;
  entry

let delete t id =
  match Dataset.get t.dataset id with
  | exception Invalid_argument _ -> false
  | entry ->
    (* Remove from the index only; the backing relation keeps the tuple
       (append-only storage), but no query can reach it any more. *)
    Rstar.delete t.tree
      ~point:(Feature.point t.config entry)
      ~where:(Int.equal id)

let dataset t = t.dataset
let config t = t.config
let tree t = t.tree

type range_result = {
  answers : (Dataset.entry * float) list;
  candidates : int;
  node_accesses : int;
  partial : bool;
}

(* A multi-resolution sketch funnel ([Simq_sketch] builds one per
   query): each level maps an entry to a proved lower bound on the
   true distance, coarse levels first. The postfilter dismisses a
   candidate as soon as one level's bound clears the cutoff — Lemma 1
   applied one resolution at a time — so only the survivors of the
   finest level pay the exact distance. *)
type prefilter = {
  levels : string array;
  bound : int -> Dataset.entry -> float;
  on_filtered : int -> int -> unit;
}

(* [lowered] on the leading feature dimensions, identity on the
   trailing mean/std dimensions. *)
let lift lowered =
  Linear_transform.create
    ~a:(Array.append lowered.Linear_transform.a [| 1.; 1. |])
    ~b:(Array.append lowered.Linear_transform.b [| 0.; 0. |])

(* A transformation prepared for repeated queries: the stretch vector,
   its safe lowering to the index coordinate space (Theorems 2/3) lifted
   over mean/std, both computed once. Identity short circuits so
   untransformed queries skip the per-entry work. *)
type prepared = {
  pspec : Spec.t;
  ptransform : Linear_transform.t option;
  pstretch : Cpx.t array option;
      (* full-length frequency multiplier; None for Identity (not
         needed) and Warp (length changes) *)
}

let prepare t spec =
  match spec with
  | Spec.Identity -> { pspec = spec; ptransform = None; pstretch = None }
  | _ ->
    let n = Dataset.series_length t.dataset in
    let stretch = Spec.stretch spec ~n in
    let ak = Array.sub stretch 1 t.config.Feature.k in
    let ct = Complex_transform.stretch ak in
    let lowered =
      match t.config.Feature.representation with
      | Coords.Polar -> Complex_transform.to_polar ct
      | Coords.Rectangular -> Complex_transform.to_rectangular ct
    in
    let pstretch =
      match spec with
      | Spec.Warp _ -> None
      | _ -> Some stretch
    in
    { pspec = spec; ptransform = Some (lift lowered); pstretch }

let unconstrained = Region.linear ~lo:Float.neg_infinity ~hi:Float.infinity

let full_region t ?mean_range ?std_range ~query_coeffs ~epsilon () =
  let feature_region =
    Coords.search_region t.config.Feature.representation ~query:query_coeffs
      ~epsilon
  in
  let of_range = function
    | None -> unconstrained
    | Some (lo, hi) -> Region.linear ~lo ~hi
  in
  Array.append feature_region [| of_range mean_range; of_range std_range |]

(* Transformed overlap/membership tests, dimension by dimension with no
   intermediate rectangles or points (the traversal's hot path). Data
   entries of the k-index are degenerate rectangles whose [lo] corner is
   the feature point. The overlap test is also the catalogue probe of
   {!range_probe}: applied to any box that bounds a set of feature
   points it is exactly the test the traversal applies to a node MBR,
   so pruning by it is as safe as the tree's own pruning (Lemma 1). *)
let region_tests region ptransform =
  match ptransform with
  | None ->
    ( (fun r -> Region.intersects_rect region r),
      fun (r : Rect.t) (_ : int) -> Region.contains region r.Rect.lo )
  | Some tr ->
    let a = tr.Linear_transform.a and b = tr.Linear_transform.b in
    let dims = Array.length a in
    let overlaps (r : Rect.t) =
      let rec go i =
        i >= dims
        ||
        let lo = (a.(i) *. r.Rect.lo.(i)) +. b.(i) in
        let hi = (a.(i) *. r.Rect.hi.(i)) +. b.(i) in
        let lo, hi = if lo <= hi then (lo, hi) else (hi, lo) in
        Region.meets_interval region.(i) ~lo ~hi && go (i + 1)
      in
      go 0
    in
    let matches (r : Rect.t) (_ : int) =
      let p = r.Rect.lo in
      let rec go i =
        i >= dims
        || Region.contains_value region.(i) ((a.(i) *. p.(i)) +. b.(i))
           && go (i + 1)
      in
      go 0
    in
    (overlaps, matches)

(* The engine behind every range query, with node accesses counted
   locally (never written to the tree) so read-only queries can run
   concurrently from several domains; {!range_prepared} credits the
   tree's cumulative counter afterwards. *)
let range_prepared_counted ?mean_range ?std_range ?bstate ?prefilter ?approx
    ?(anytime = false) ?profile t prepared ~query_coeffs ~epsilon ~distance =
  if not (Float.is_finite epsilon) || epsilon < 0. then
    invalid_arg "Kindex.range_prepared: epsilon must be finite and >= 0";
  (match approx with
  | Some a when not (Float.is_finite a) || a < 0. || a >= 1. ->
    invalid_arg "Kindex.range_prepared: approx must be in [0, 1)"
  | _ -> ());
  if Array.length query_coeffs <> t.config.Feature.k then
    invalid_arg "Kindex.range_prepared: expected k query coefficients";
  let region = full_region t ?mean_range ?std_range ~query_coeffs ~epsilon () in
  let overlaps, matches = region_tests region prepared.ptransform in
  Otrace.with_span "kindex.range" @@ fun () ->
  let pn = Profile.enter profile "kindex.range" in
  Fun.protect ~finally:(fun () -> Profile.leave profile pn) @@ fun () ->
  let pd = Profile.enter profile "kindex.descent" in
  let candidate_ids, node_accesses =
    Otrace.with_span "kindex.descent" (fun () ->
        Rstar.fold_region_counted ?budget:bstate t.tree ~overlaps ~matches
          ~init:[] ~f:(fun acc _ id -> id :: acc))
  in
  let candidates = List.length candidate_ids in
  Profile.add_pages pd node_accesses;
  Profile.add_rows_out pd candidates;
  Profile.leave profile pd;
  Metrics.add m_candidates candidates;
  (* The sketch funnel: every level filters the whole surviving set
     before the next (finer) level runs, so the profile reads as a
     ladder of [sketch.<level>] stages between descent and the exact
     postfilter. In exact mode the cutoff is epsilon itself and Lemma 1
     keeps the answer identical; in approximate mode the cutoff
     tightens to [(1 - a) * epsilon] — dismissals may then lose answers
     whose distance lies in the slack band, never admit a wrong one.
     Bound evaluations read no page and charge nothing against the
     budget: they price strictly below one comparison. *)
  let survivor_ids =
    match prefilter with
    | None -> candidate_ids
    | Some pf ->
      let cutoff =
        match approx with None -> epsilon | Some a -> (1. -. a) *. epsilon
      in
      let ids = ref candidate_ids in
      Array.iteri
        (fun level name ->
          let pl = Profile.enter profile ("sketch." ^ name) in
          let before = List.length !ids in
          ids :=
            List.filter
              (fun id -> pf.bound level (Dataset.get t.dataset id) <= cutoff)
              !ids;
          let after = List.length !ids in
          Profile.add_rows_in pl before;
          Profile.add_rows_out pl after;
          pf.on_filtered level (before - after);
          Profile.leave profile pl)
        pf.levels;
      !ids
  in
  let pp = Profile.enter profile "kindex.postfilter" in
  let partial = ref false in
  let answers =
    Otrace.with_span "kindex.postfilter" @@ fun () ->
    let kept = ref [] in
    (try
       List.iter
         (fun id ->
           (* Each exact-distance evaluation of a candidate is one
              comparison against the budget, like a scan entry. *)
           (match bstate with
           | None -> ()
           | Some b ->
             Budget.check b;
             Budget.charge_comparisons b 1);
           let entry = Dataset.get t.dataset id in
           let d = distance entry in
           if d <= epsilon then kept := (entry, d) :: !kept)
         survivor_ids
     with Budget.Exceeded _ when anytime ->
       (* Anytime mode: the budget died inside the verification loop.
          Every answer already collected paid its exact distance, so
          the result is a sound subset — return it marked partial
          instead of failing the whole query. *)
       partial := true);
    List.sort (fun (a, _) (b, _) -> compare a.Dataset.id b.Dataset.id) !kept
  in
  let survivors = List.length answers in
  Profile.add_rows_in pp (List.length survivor_ids);
  Profile.add_rows_out pp survivors;
  Profile.add_candidates pp candidates;
  Profile.add_survivors pp survivors;
  (if !partial then Profile.add_event pp "anytime: budget exhausted, partial");
  Profile.leave profile pp;
  Profile.add_rows_out pn survivors;
  Profile.add_candidates pn candidates;
  Profile.add_survivors pn survivors;
  Profile.add_pages pn node_accesses;
  Metrics.add m_survivors survivors;
  { answers; candidates; node_accesses; partial = !partial }

let range_prepared ?mean_range ?std_range ?prefilter ?approx ?anytime ?profile
    t prepared ~query_coeffs ~epsilon ~distance =
  let result =
    range_prepared_counted ?mean_range ?std_range ?prefilter ?approx ?anytime
      ?profile t prepared ~query_coeffs ~epsilon ~distance
  in
  Rstar.add_accesses t.tree result.node_accesses;
  result

let range_generic ?(spec = Spec.Identity) t ~query_coeffs ~epsilon ~distance =
  range_prepared t (prepare t spec) ~query_coeffs ~epsilon ~distance

let sq_norm z =
  let re = Cpx.re z and im = Cpx.im z in
  (re *. re) +. (im *. im)

(* The exact distance used in postprocessing. Length-preserving
   transformations are evaluated in the frequency domain against the
   stored spectra (O(n) per candidate, like the paper's scan of the
   Fourier-coefficient relation); the warp changes the length and falls
   back to the time domain. Equal to the time-domain distance by
   Parseval. *)
let prepared_distance t prepared (q : Dataset.entry) =
  let n = Dataset.series_length t.dataset in
  match (prepared.pspec, prepared.pstretch) with
  | Spec.Warp _, _ ->
    fun (entry : Dataset.entry) ->
      Distance.euclidean
        (Spec.apply_series prepared.pspec entry.Dataset.normal)
        q.Dataset.normal
  | Spec.Identity, _ ->
    fun (entry : Dataset.entry) ->
      Distance.euclidean entry.Dataset.normal q.Dataset.normal
  | _, Some stretch ->
    fun (entry : Dataset.entry) ->
      let acc = ref 0. in
      for f = 0 to n - 1 do
        let z =
          Cpx.sub
            (Cpx.mul stretch.(f) entry.Dataset.spectrum.(f))
            q.Dataset.spectrum.(f)
        in
        acc := !acc +. sq_norm z
      done;
      sqrt !acc
  | _, None -> assert false

let check_query_length t spec query =
  let n = Dataset.series_length t.dataset in
  let expected = Spec.output_length spec ~n in
  if Series.length query <> expected then
    invalid_arg
      (Printf.sprintf "Kindex: query length %d, expected %d"
         (Series.length query) expected)

(* Everything about a range request that does not depend on the attempt:
   side-constraint ranges, the prepared transformation and the query
   coefficients. Shared by {!range} and {!range_checked} so a retried
   attempt re-runs only the traversal. *)
let range_request ?mean_window ?std_band ~normalise_query t spec query =
  check_query_length t spec query;
  (* GK95-style side constraints: mean and standard deviation ride along
     as the trailing index dimensions, so simple shifts and scales bound
     the search for free (the paper's reason for indexing normal forms
     with mean/std dimensions). They always refer to the raw query. *)
  let decomposition = Simq_series.Normal_form.decompose query in
  let mean_range =
    Option.map
      (fun w ->
        if w < 0. then invalid_arg "Kindex.range: negative mean_window";
        let m = decomposition.Simq_series.Normal_form.mean in
        (m -. w, m +. w))
      mean_window
  in
  let std_range =
    Option.map
      (fun f ->
        if f < 1. then invalid_arg "Kindex.range: std_band must be >= 1";
        let s = decomposition.Simq_series.Normal_form.std in
        (s /. f, s *. f))
      std_band
  in
  let q = Dataset.prepare_query ~normalise:normalise_query query in
  let query_coeffs = Array.sub q.Dataset.spectrum 1 t.config.Feature.k in
  let prepared = prepare t spec in
  (mean_range, std_range, q, query_coeffs, prepared)

(* The sketch argument of the public entry points is a builder
   ([Simq_sketch.funnel] partially applied): the prepared query entry
   only exists inside the call, so the funnel is built here, once per
   query. *)
let build_funnel sketch q =
  match sketch with None -> None | Some f -> (f q : prefilter option)

let range ?(spec = Spec.Identity) ?(normalise_query = true) ?mean_window
    ?std_band ?sketch ?approx ?anytime ?profile t ~query ~epsilon =
  let mean_range, std_range, q, query_coeffs, prepared =
    range_request ?mean_window ?std_band ~normalise_query t spec query
  in
  range_prepared ?mean_range ?std_range
    ?prefilter:(build_funnel sketch q)
    ?approx ?anytime ?profile t prepared ~query_coeffs ~epsilon
    ~distance:(prepared_distance t prepared q)

let range_checked ?(spec = Spec.Identity) ?(normalise_query = true)
    ?mean_window ?std_band ?(budget = Budget.unlimited) ?retry ?on_retry
    ?sketch ?approx ?anytime ?profile t ~query ~epsilon =
  if not (Float.is_finite epsilon) || epsilon < 0. then
    invalid_arg "Kindex.range: epsilon must be finite and >= 0";
  let mean_range, std_range, q, query_coeffs, prepared =
    range_request ?mean_window ?std_band ~normalise_query t spec query
  in
  let prefilter = build_funnel sketch q in
  let distance = prepared_distance t prepared q in
  Retry.with_retries ?policy:retry ?on_retry (fun () ->
      (* Fresh budget state per attempt; node accesses are credited to
         the tree only for the attempt that succeeds. *)
      let bstate = Budget.state_opt budget in
      let result =
        range_prepared_counted ?mean_range ?std_range ?bstate ?prefilter
          ?approx ?anytime ?profile t prepared ~query_coeffs ~epsilon ~distance
      in
      Rstar.add_accesses t.tree result.node_accesses;
      result)

let range_probe ?(spec = Spec.Identity) ?(normalise_query = true) ?mean_window
    ?std_band t ~query ~epsilon =
  if not (Float.is_finite epsilon) || epsilon < 0. then
    invalid_arg "Kindex.range_probe: epsilon must be finite and >= 0";
  let mean_range, std_range, _, query_coeffs, prepared =
    range_request ?mean_window ?std_band ~normalise_query t spec query
  in
  let region = full_region t ?mean_range ?std_range ~query_coeffs ~epsilon () in
  fst (region_tests region prepared.ptransform)

(* --- query batches -------------------------------------------------------- *)

let range_batch ?pool ?profiles ?(spec = Spec.Identity)
    ?(normalise_query = true) ?sketch ?approx ?anytime t ~queries =
  Array.iter
    (fun (query, epsilon) ->
      check_query_length t spec query;
      if not (Float.is_finite epsilon) || epsilon < 0. then
        invalid_arg "Kindex.range_batch: epsilon must be finite and >= 0")
    queries;
  (* One preparation for the whole workload; the traversals are
     read-only (locally counted accesses, see
     {!Rstar.fold_region_counted}), so one query per batch task. The
     cumulative access counter is credited afterwards, in query order,
     matching a sequential loop's total. *)
  let prepared = prepare t spec in
  let results =
    Simq_parallel.Batch.map ?pool ?profiles
      (fun ~profile (query, epsilon) ->
        let q = Dataset.prepare_query ~normalise:normalise_query query in
        let query_coeffs = Array.sub q.Dataset.spectrum 1 t.config.Feature.k in
        range_prepared_counted ?prefilter:(build_funnel sketch q) ?approx
          ?anytime ?profile t prepared ~query_coeffs ~epsilon
          ~distance:(prepared_distance t prepared q))
      queries
  in
  Array.iter
    (fun (r : range_result) -> Rstar.add_accesses t.tree r.node_accesses)
    results;
  results

(* --- nearest neighbours -------------------------------------------------- *)

let two_pi = 2. *. Float.pi

let pos_mod x =
  let r = Float.rem x two_pi in
  if r < 0. then r +. two_pi else r

(* Shortest angular distance from [theta] to the interval
   [lo, hi] (on the circle). *)
let angle_gap theta ~lo ~hi =
  let width = hi -. lo in
  if width >= two_pi then 0.
  else begin
    let offset = pos_mod (theta -. lo) in
    if offset <= width then 0.
    else begin
      (* Distance to either endpoint, around the circle. *)
      let to_hi = offset -. width in
      let to_lo = two_pi -. offset in
      Float.min to_hi to_lo
    end
  end

(* Minimum |q - z| over complex z with |z| in [mag_lo, mag_hi] and
   angle z within the interval: law of cosines, minimised over the
   magnitude. *)
let polar_mindist q ~mag_lo ~mag_hi ~ang_lo ~ang_hi =
  let qmag = Cpx.abs q and qang = Cpx.angle q in
  let mag_lo = Float.max 0. mag_lo in
  let dtheta = angle_gap qang ~lo:ang_lo ~hi:ang_hi in
  let c = cos dtheta in
  let m_star =
    if c > 0. then Float.min mag_hi (Float.max mag_lo (qmag *. c))
    else mag_lo
  in
  let d2 = (qmag *. qmag) +. (m_star *. m_star) -. (2. *. qmag *. m_star *. c) in
  sqrt (Float.max 0. d2)

let feature_lower_bound t ~query_coeffs (r : Rect.t) =
  let k = t.config.Feature.k in
  let acc = ref 0. in
  for i = 0 to k - 1 do
    let d =
      match t.config.Feature.representation with
      | Coords.Rectangular ->
        let re = Cpx.re query_coeffs.(i) and im = Cpx.im query_coeffs.(i) in
        let clamp v lo hi = Float.max lo (Float.min hi v) in
        let dre = re -. clamp re r.Rect.lo.(2 * i) r.Rect.hi.(2 * i) in
        let dim = im -. clamp im r.Rect.lo.((2 * i) + 1) r.Rect.hi.((2 * i) + 1) in
        sqrt ((dre *. dre) +. (dim *. dim))
      | Coords.Polar ->
        polar_mindist query_coeffs.(i)
          ~mag_lo:r.Rect.lo.(2 * i)
          ~mag_hi:r.Rect.hi.(2 * i)
          ~ang_lo:r.Rect.lo.((2 * i) + 1)
          ~ang_hi:r.Rect.hi.((2 * i) + 1)
    in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

(* The NN sketch argument is also a builder: applied to the prepared
   query it yields a per-entry lower bound (the max over the funnel's
   levels). [Nn.nearest_custom ?point_bound] queues data entries under
   that bound and refines to the exact distance only on pop, so
   entries never reaching the top of the heap never pay the exact
   comparison — the emitted answers stay exact (the multi-step
   refinement of [RKV95], one more resolution down). *)
let nn_point_bound t sketch q =
  match sketch with
  | None -> None
  | Some f ->
    Option.map
      (fun bound (_ : Rect.t) id -> bound (Dataset.get t.dataset id))
      (f q : (Dataset.entry -> float) option)

let nn_detail ~k point_bound =
  match point_bound with
  | None -> Printf.sprintf "k=%d" k
  | Some _ -> Printf.sprintf "k=%d sketch" k

let nearest ?(spec = Spec.Identity) ?(normalise_query = true) ?sketch ?profile
    t ~query ~k =
  check_query_length t spec query;
  let q = Dataset.prepare_query ~normalise:normalise_query query in
  let query_coeffs = Array.sub q.Dataset.spectrum 1 t.config.Feature.k in
  let prepared = prepare t spec in
  let map_rect r =
    match prepared.ptransform with
    | None -> r
    | Some tr -> Linear_transform.apply_rect tr r
  in
  let dist = prepared_distance t prepared q in
  let point_bound = nn_point_bound t sketch q in
  let pn = Profile.enter profile "kindex.nearest" in
  Profile.set_detail pn (nn_detail ~k point_bound);
  let visits = ref 0 in
  let visit =
    match pn with None -> None | Some _ -> Some (fun () -> incr visits)
  in
  let point_dist _ id =
    Profile.add_candidates pn 1;
    dist (Dataset.get t.dataset id)
  in
  Fun.protect ~finally:(fun () -> Profile.leave profile pn) @@ fun () ->
  let answers =
    Otrace.with_span "kindex.nearest" @@ fun () ->
    Nn.nearest_custom ?visit ?point_bound ~data_rank:Fun.id t.tree
      ~rect_bound:(fun r -> feature_lower_bound t ~query_coeffs (map_rect r))
      ~point_dist ~k
    |> List.map (fun (_, id, d) -> (Dataset.get t.dataset id, d))
  in
  Profile.add_pages pn !visits;
  Profile.add_rows_out pn (List.length answers);
  answers

(* The degraded NN path: an exact linear selection over the prepared
   entries, priced as the admission cost model prices a scan — one
   comparison and one logical page read per series. Ties at the [k]
   boundary break on the entry id, so the selection is deterministic
   at every domain count. *)
let nearest_scan_counted ?bstate ?profile t ~dist ~k =
  let pn = Profile.enter profile "kindex.nearest-scan" in
  Fun.protect ~finally:(fun () -> Profile.leave profile pn) @@ fun () ->
  Otrace.with_span "kindex.nearest-scan" @@ fun () ->
  let entries = Dataset.entries t.dataset in
  let scored =
    Array.map
      (fun (entry : Dataset.entry) ->
        (match bstate with
        | None -> ()
        | Some b ->
          Budget.check b;
          Budget.charge_page_read b;
          Budget.charge_comparisons b 1);
        (entry, dist entry))
      entries
  in
  Array.sort
    (fun ((a : Dataset.entry), da) ((b : Dataset.entry), db) ->
      match Float.compare da db with
      | 0 -> compare a.Dataset.id b.Dataset.id
      | c -> c)
    scored;
  let n = Int.min k (Array.length scored) in
  Profile.add_rows_in pn (Array.length scored);
  Profile.add_candidates pn (Array.length scored);
  Profile.add_rows_out pn n;
  Array.to_list (Array.sub scored 0 n)

let nearest_scan ?(spec = Spec.Identity) ?(normalise_query = true)
    ?(budget = Budget.unlimited) ?retry ?on_retry ?profile t ~query ~k =
  check_query_length t spec query;
  if k <= 0 then invalid_arg "Kindex.nearest_scan: k must be positive";
  let q = Dataset.prepare_query ~normalise:normalise_query query in
  let prepared = prepare t spec in
  let dist = prepared_distance t prepared q in
  Retry.with_retries ?policy:retry ?on_retry (fun () ->
      let bstate = Budget.state_opt budget in
      nearest_scan_counted ?bstate ?profile t ~dist ~k)

(* What admission control knows about an NN query before running it:
   catalogue metadata only, and the exact answer fraction k/N in place
   of a histogram estimate — producing it reads no page. *)
let nn_workload t ~k =
  let cardinality = Dataset.cardinality t.dataset in
  {
    Simq_admission.cardinality;
    pages = Simq_storage.Relation.pages (Dataset.relation t.dataset);
    tree_size = Rstar.size t.tree;
    tree_height = Rstar.height t.tree;
    selectivity =
      (if cardinality = 0 then 1.
       else Float.min 1. (float_of_int k /. float_of_int cardinality));
    (* The NN funnel reorders refinement, it does not dismiss: the
       comparison estimate keeps its funnel-free form so NN admission
       decides identically with and without a sketch. *)
    sketch_levels = 0;
  }

let nearest_checked ?(spec = Spec.Identity) ?(normalise_query = true)
    ?(budget = Budget.unlimited) ?retry ?on_retry ?admission ?on_decision
    ?sketch ?profile t ~query ~k =
  check_query_length t spec query;
  if k <= 0 then invalid_arg "Kindex.nearest_checked: k must be positive";
  let q = Dataset.prepare_query ~normalise:normalise_query query in
  let query_coeffs = Array.sub q.Dataset.spectrum 1 t.config.Feature.k in
  let prepared = prepare t spec in
  let map_rect r =
    match prepared.ptransform with
    | None -> r
    | Some tr -> Linear_transform.apply_rect tr r
  in
  let dist = prepared_distance t prepared q in
  let point_bound = nn_point_bound t sketch q in
  let pn = Profile.enter profile "kindex.nearest" in
  Profile.set_detail pn (nn_detail ~k point_bound);
  let visits = ref 0 in
  Fun.protect ~finally:(fun () -> Profile.leave profile pn) @@ fun () ->
  (* Admission runs once, before any attempt: the decision is a pure
     function of catalogue metadata, the budget and a registry
     snapshot, so it cannot flip between retries (or domain counts). *)
  let decision =
    match admission with
    | None -> None
    | Some policy ->
      let d =
        Simq_admission.decide policy (nn_workload t ~k)
          ~prefer:Simq_admission.Index_path ~budget
      in
      Profile.add_event pn ("admission: " ^ Simq_admission.decision_name d);
      (match on_decision with Some f -> f d | None -> ());
      Some d
  in
  let finish result =
    Profile.add_pages pn !visits;
    (match result with
    | Ok answers -> Profile.add_rows_out pn (List.length answers)
    | Error e -> Profile.add_event pn ("error: " ^ Simq_fault.Error.kind e));
    result
  in
  match decision with
  | Some (Simq_admission.Reject reject) ->
    (* Refused before execution: no node is visited, no page read, no
       comparison runs. *)
    finish (Error (Simq_admission.error_of_reject reject))
  | Some Simq_admission.Degrade_to_scan ->
    finish
      (Retry.with_retries ?policy:retry ?on_retry (fun () ->
           let bstate = Budget.state_opt budget in
           nearest_scan_counted ?bstate ?profile t ~dist ~k))
  | Some Simq_admission.Admit | None ->
    finish
      (Retry.with_retries ?policy:retry ?on_retry (fun () ->
           (* Fresh budget state per attempt, like {!range_checked}. Node
              accesses are charged at every node expansion of the best-first
              traversal, exact distances as comparisons — the same accounting
              the range path uses. *)
           let bstate = Budget.state_opt budget in
           let charge =
             Option.map
               (fun b () ->
                 Budget.check b;
                 Budget.charge_node_access b)
               bstate
           in
           let visit =
             match (charge, pn) with
             | None, None -> None
             | _ ->
                 Some
                   (fun () ->
                     incr visits;
                     match charge with Some f -> f () | None -> ())
           in
           let point_dist _ id =
             Profile.add_candidates pn 1;
             (match bstate with
             | None -> ()
             | Some b ->
               Budget.check b;
               Budget.charge_comparisons b 1);
             dist (Dataset.get t.dataset id)
           in
           Otrace.with_span "kindex.nearest" @@ fun () ->
           Nn.nearest_custom ?visit ?point_bound ~data_rank:Fun.id t.tree
             ~rect_bound:(fun r ->
               feature_lower_bound t ~query_coeffs (map_rect r))
             ~point_dist ~k
           |> List.map (fun (_, id, d) -> (Dataset.get t.dataset id, d))))
