module Cpx = Simq_dsp.Cpx
module Distance = Simq_series.Distance
module Pool = Simq_parallel.Pool
module Budget = Simq_fault.Budget
module Retry = Simq_fault.Retry
module Metrics = Simq_obs.Metrics
module Otrace = Simq_obs.Trace
module Profile = Simq_obs.Profile

let m_comparisons =
  Metrics.counter ~help:"Pairwise distance comparisons by join scans"
    "simq_join_comparisons_total"

let m_pairs =
  Metrics.counter ~help:"Joined pairs within epsilon" "simq_join_pairs_total"

type result = {
  pairs : (int * int) list;
  distance_computations : int;
  node_accesses : int;
}

let sq_norm z =
  let re = Cpx.re z and im = Cpx.im z in
  (re *. re) +. (im *. im)

(* Precompute the transformed normal forms (time domain, exact for every
   spec including Warp) and, for the length-preserving specs, the
   transformed spectra used by the frequency-domain scans. Both are
   pure per-entry maps, so they fan out over the pool too. *)
let transformed_normals ?pool kindex spec =
  Pool.map_array ?pool
    (fun (entry : Dataset.entry) -> Spec.apply_series spec entry.Dataset.normal)
    (Dataset.entries (Kindex.dataset kindex))

let transformed_spectra ?pool kindex spec =
  let n = Dataset.series_length (Kindex.dataset kindex) in
  let stretch = Spec.stretch spec ~n in
  Pool.map_array ?pool
    (fun (entry : Dataset.entry) ->
      Cpx.mul_arrays stretch entry.Dataset.spectrum)
    (Dataset.entries (Kindex.dataset kindex))

(* The pairwise scans parallelise over the outer row [i]: a chunk of
   rows produces its pairs in (i, j) order plus its own comparison
   counter, and chunks merge in row order — the pair list and the
   counters come out exactly as the sequential double loop's. Rows
   shrink as [i] grows, so chunks are kept small to balance load. *)
let scan ?pool ?bstate ?profile ~abandon kindex spec epsilon =
  if not (Float.is_finite epsilon) || epsilon < 0. then
    invalid_arg "Join.scan: epsilon must be finite and >= 0";
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let dataset = Kindex.dataset kindex in
  let count = Dataset.cardinality dataset in
  let limit = epsilon *. epsilon in
  let row =
    match spec with
    | Spec.Warp _ ->
      (* Frequency-domain prefixes underestimate warped distances; use
         the exact time-domain comparison instead. *)
      let normals = transformed_normals ~pool kindex spec in
      fun pairs i ->
        let pairs = ref pairs in
        for j = i + 1 to count - 1 do
          let hit =
            if abandon then
              Distance.within ~threshold:epsilon normals.(i) normals.(j)
            else Distance.euclidean normals.(i) normals.(j) <= epsilon
          in
          if hit then pairs := (i, j) :: !pairs
        done;
        !pairs
    | _ ->
      let spectra = transformed_spectra ~pool kindex spec in
      let n = Array.length spectra.(0) in
      fun pairs i ->
        let pairs = ref pairs in
        for j = i + 1 to count - 1 do
          let acc = ref 0. in
          let f = ref 0 in
          let alive = ref true in
          while !alive && !f < n do
            acc := !acc +. sq_norm (Cpx.sub spectra.(i).(!f) spectra.(j).(!f));
            incr f;
            if abandon && !acc > limit then alive := false
          done;
          if !alive && !acc <= limit then pairs := (i, j) :: !pairs
        done;
        !pairs
  in
  let chunk = max 1 (count / (16 * Pool.domains pool)) in
  let pn = Profile.enter profile "join.scan" in
  Fun.protect ~finally:(fun () -> Profile.leave profile pn) @@ fun () ->
  Otrace.with_span "join.scan" @@ fun () ->
  let partials =
    Pool.map_chunks ~pool ~chunk ~n:count (fun ~lo ~hi ->
        let pairs = ref [] in
        let comparisons = ref 0 in
        for i = lo to hi - 1 do
          (* Budget granularity is one outer row: check before the row,
             charge its [count - 1 - i] comparisons after. Every domain
             passes through here, so cancellation reaches all chunks. *)
          (match bstate with None -> () | Some b -> Budget.check b);
          pairs := row !pairs i;
          let c = count - 1 - i in
          (match bstate with
          | None -> ()
          | Some b -> Budget.charge_comparisons b c);
          comparisons := !comparisons + c
        done;
        let pairs = List.rev !pairs in
        Metrics.add m_comparisons !comparisons;
        Metrics.add m_pairs (List.length pairs);
        (pairs, !comparisons))
  in
  Otrace.with_span "join.merge" @@ fun () ->
  let result =
    {
      pairs = List.concat_map fst partials;
      distance_computations =
        List.fold_left (fun acc (_, c) -> acc + c) 0 partials;
      node_accesses = 0;
    }
  in
  Profile.add_rows_in pn count;
  Profile.add_candidates pn result.distance_computations;
  Profile.add_rows_out pn (List.length result.pairs);
  Profile.add_survivors pn (List.length result.pairs);
  result

let scan_full ?pool ?(spec = Spec.Identity) ?profile kindex ~epsilon =
  scan ?pool ?profile ~abandon:false kindex spec epsilon

let scan_early_abandon ?pool ?(spec = Spec.Identity) ?profile kindex ~epsilon =
  scan ?pool ?profile ~abandon:true kindex spec epsilon

let scan_checked ?pool ?(spec = Spec.Identity) ?(abandon = true)
    ?(budget = Budget.unlimited) ?retry ?on_retry ?admission ?on_decision
    ?profile kindex ~epsilon =
  if not (Float.is_finite epsilon) || epsilon < 0. then
    invalid_arg "Join.scan: epsilon must be finite and >= 0";
  (* Admission runs once, before any comparison: the join's comparison
     count n (n - 1) / 2 is a catalogue fact, so the decision is a pure
     function of the budget and a registry snapshot — identical at
     every domain count. *)
  let decision =
    match admission with
    | None -> None
    | Some policy ->
      let n = Dataset.cardinality (Kindex.dataset kindex) in
      let d =
        Simq_admission.decide_pairs policy
          ~comparisons:(n * (n - 1) / 2)
          ~budget
      in
      (match on_decision with Some f -> f d | None -> ());
      Some d
  in
  match decision with
  | Some (Simq_admission.Reject reject) ->
    (* Refused before execution: no transformed normal or spectrum is
       materialised, no comparison runs. *)
    Error (Simq_admission.error_of_reject reject)
  | Some Simq_admission.Admit | Some Simq_admission.Degrade_to_scan | None ->
    Retry.with_retries ?policy:retry ?on_retry (fun () ->
        let bstate = Budget.state_opt budget in
        scan ?pool ?bstate ?profile ~abandon kindex spec epsilon)

(* One index range query per sequence; the transformation (when present)
   applies to both the stored side (via the transformed traversal) and
   the query side (its features and the postprocessing distance). *)
let index_join ?profile kindex spec epsilon =
  if not (Float.is_finite epsilon) || epsilon < 0. then
    invalid_arg "Join.index_join: epsilon must be finite and >= 0";
  let dataset = Kindex.dataset kindex in
  let k = (Kindex.config kindex).Feature.k in
  let normals = transformed_normals kindex spec in
  (* Query features for entry i: the first k coefficients of its
     transformed spectrum (for Warp these are the predicted prefix of the
     warped spectrum, which is all the index needs). *)
  let spectra =
    match spec with
    | Spec.Identity ->
      Array.map
        (fun (e : Dataset.entry) -> e.Dataset.spectrum)
        (Dataset.entries dataset)
    | _ -> transformed_spectra kindex spec
  in
  let prepared = Kindex.prepare kindex spec in
  (* One flat operator node for the whole nested-query loop: a child
     per inner range query would drown the tree in [cardinality]
     nodes. *)
  let pn = Profile.enter profile "join.index" in
  Fun.protect ~finally:(fun () -> Profile.leave profile pn) @@ fun () ->
  Otrace.with_span "join.index" @@ fun () ->
  let pairs = ref [] in
  let computations = ref 0 in
  let node_accesses = ref 0 in
  Array.iter
    (fun (entry : Dataset.entry) ->
      let i = entry.Dataset.id in
      let query_coeffs = Array.sub spectra.(i) 1 k in
      let distance (candidate : Dataset.entry) =
        Distance.euclidean normals.(candidate.Dataset.id) normals.(i)
      in
      let r = Kindex.range_prepared kindex prepared ~query_coeffs ~epsilon ~distance in
      computations := !computations + r.Kindex.candidates;
      node_accesses := !node_accesses + r.Kindex.node_accesses;
      List.iter
        (fun ((candidate : Dataset.entry), _) ->
          if candidate.Dataset.id <> i then
            pairs := (i, candidate.Dataset.id) :: !pairs)
        r.Kindex.answers)
    (Dataset.entries dataset);
  Metrics.add m_comparisons !computations;
  Metrics.add m_pairs (List.length !pairs);
  Profile.add_rows_in pn (Dataset.cardinality dataset);
  Profile.add_candidates pn !computations;
  Profile.add_pages pn !node_accesses;
  Profile.add_rows_out pn (List.length !pairs);
  Profile.add_survivors pn (List.length !pairs);
  { pairs = List.rev !pairs; distance_computations = !computations;
    node_accesses = !node_accesses }

let index_untransformed ?profile kindex ~epsilon =
  index_join ?profile kindex Spec.Identity epsilon

let index_transformed ?(spec = Spec.Identity) ?profile kindex ~epsilon =
  index_join ?profile kindex spec epsilon
