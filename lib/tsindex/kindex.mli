(** The k-index (Section 4): an R*-tree over the first [k] Fourier
    coefficients of the normal forms (plus mean and standard deviation),
    processing similarity queries under safe transformations with the
    paper's Algorithm 2:

    + {b Preprocessing} — transform the query and the transformation to
      the frequency domain and build a search region (Section 3.1);
    + {b Search} — traverse the R-tree, applying the transformation to
      every MBR and data point on the fly (Algorithm 1: the transformed
      index is never materialised);
    + {b Postprocessing} — check every candidate's full record against
      the true distance.

    Lemma 1 (no false dismissals) holds because the distance on the
    first [k] coefficients lower-bounds the full distance; the answer
    returned after postprocessing is therefore exact. *)

type t

(** [build ?config ?max_fill dataset] bulk-loads the index.
    Raises [Invalid_argument] when [config.k] is not below the series
    length. *)
val build : ?config:Feature.config -> ?max_fill:int -> Dataset.t -> t

(** [insert t ~name series] adds one series to the data set and the
    index; later queries see it immediately. Raises [Invalid_argument]
    on a length mismatch. *)
val insert : t -> name:string -> Simq_series.Series.t -> Dataset.entry

(** [delete t id] removes a series from the index (the backing relation
    keeps the tuple, unreachable); [false] when [id] is unknown or
    already removed. *)
val delete : t -> int -> bool

val dataset : t -> Dataset.t
val config : t -> Feature.config

(** [tree t] exposes the underlying R*-tree (payloads are entry ids) for
    inspection and invariant checking. *)
val tree : t -> int Simq_rtree.Rstar.t

type range_result = {
  answers : (Dataset.entry * float) list;
      (** entries whose true (transformed) distance is within ε, with
          that distance *)
  candidates : int;  (** leaf hits before postprocessing (>= answers) *)
  node_accesses : int;  (** R-tree nodes visited by this query *)
  partial : bool;
      (** [true] only in anytime mode ([?anytime]) when the budget
          died inside exact verification: the answers returned are a
          sound subset of the exact answer (each one paid its exact
          distance), and the tail was never verified. Always [false]
          otherwise. *)
}

(** A multi-resolution sketch funnel, run between the index descent
    and the exact postfilter: level [l] (coarse first; [levels.(l)]
    names it, e.g. ["coarse"], ["segment"]) maps an entry to
    [bound l entry], a proved lower bound on the true (transformed)
    distance. A candidate is dismissed as soon as one level's bound
    exceeds the cutoff (ε in exact mode — Lemma 1 applied one
    resolution at a time, so the answer is unchanged; [(1 - a)·ε]
    with [?approx a]). [on_filtered l n] observes the [n] candidates
    level [l] dismissed (the [simq_sketch_filtered_total{level}]
    counters). Bound evaluations read no page and are never charged
    against the budget. {!Simq_sketch} builds funnels whose bounds
    are proved; any caller-supplied bound must lower-bound the exact
    postfilter distance or exact mode loses answers. *)
type prefilter = {
  levels : string array;
  bound : int -> Dataset.entry -> float;
  on_filtered : int -> int -> unit;
}

(** [range t ?spec ~query ~epsilon] finds every series [x] of the data
    set with [D(T (normal x), normal query) <= epsilon], where [T] is
    [spec] (default [Identity]) applied in the time domain. The query
    series must have length [Spec.output_length spec ~n].
    [~normalise_query:false] uses the query verbatim — pass a series
    already in the comparison space (e.g. the moving average of a normal
    form) to match both-sides-transformed semantics. *)
val range :
  ?spec:Spec.t ->
  ?normalise_query:bool ->
  ?mean_window:float ->
  ?std_band:float ->
  ?sketch:(Dataset.entry -> prefilter option) ->
  ?approx:float ->
  ?anytime:bool ->
  ?profile:Simq_obs.Profile.t ->
  t ->
  query:Simq_series.Series.t ->
  epsilon:float ->
  range_result
(** With [?profile] ({!Simq_obs.Profile}) the query records a
    [kindex.range] operator node with [kindex.descent] (node accesses
    as pages, candidates out), one [sketch.<level>] node per funnel
    level (rows in/out — the filter ladder), and [kindex.postfilter]
    (survivors in, answers out) children; [nearest] records a
    [kindex.nearest] node whose pages are the node expansions of the
    best-first traversal. Profiling never changes an answer and costs
    nothing when absent.

    [?sketch] is a funnel {e builder} ({!Simq_sketch.funnel} partially
    applied): called once on the prepared query entry, its result (a
    {!prefilter}) filters candidates between descent and the exact
    postfilter. With no [?approx] the answer is bit-identical to the
    funnel-free run (every level lower-bounds the exact distance —
    Lemma 1). [?approx a] (finite, [0 <= a < 1]) tightens the funnel
    cutoff to [(1 - a)·ε]: every returned answer is still a true
    answer, but answers whose distance lies in [((1 - a)·ε, ε]] may be
    dismissed at sketch resolution — the ε-guaranteed approximate
    mode. [Invalid_argument] when [a] is outside [[0, 1)].
    [?anytime] (checked paths; default false) turns budget exhaustion
    {e inside exact verification} into a partial result
    ([partial = true]) instead of a typed error — exhaustion during
    the descent still fails the query, because no sound subset exists
    yet.

    The optional GK95-style side constraints restrict answers through
    the mean/std index dimensions: [mean_window w] keeps series whose
    mean lies within [w] of the (raw) query's mean; [std_band f]
    (with [f >= 1]) keeps series whose standard deviation is within a
    factor [f] of the query's. The paper's conclusion points out that
    simple shifts and scales compose with the general transformations
    this way. *)

(** [range_checked t ?spec ?budget ?retry ~query ~epsilon] is {!range}
    under a {!Simq_fault.Budget} and bounded {!Simq_fault.Retry}: node
    visits are charged against the budget inside the traversal
    (cooperatively cancellable), candidate postprocessing charges one
    comparison per candidate, and transient node-access faults from an
    injector installed on the tree ({!Simq_rtree.Rstar.set_injector})
    are retried per [retry] (default {!Simq_fault.Retry.default};
    [on_retry] observes abandoned attempts). Returns the exact
    {!range} result or a typed error — never a fault or budget
    exception. Each attempt gets a fresh budget state; the tree's
    cumulative access counter is credited only by a successful
    attempt. Argument validation still raises [Invalid_argument]. *)
val range_checked :
  ?spec:Spec.t ->
  ?normalise_query:bool ->
  ?mean_window:float ->
  ?std_band:float ->
  ?budget:Simq_fault.Budget.t ->
  ?retry:Simq_fault.Retry.policy ->
  ?on_retry:(attempt:int -> unit) ->
  ?sketch:(Dataset.entry -> prefilter option) ->
  ?approx:float ->
  ?anytime:bool ->
  ?profile:Simq_obs.Profile.t ->
  t ->
  query:Simq_series.Series.t ->
  epsilon:float ->
  (range_result, Simq_fault.Error.t) Result.t

(** [range_probe t ?spec ~query ~epsilon] is the pruning predicate of
    the corresponding {!range} traversal, detached from the tree: it
    answers whether a bounding box of feature points (a node MBR, or a
    shard's min/max catalogue box in {!module:Simq_shard}) can hold a
    candidate — the same transformed per-dimension interval test the
    traversal applies to every node. Lemma 1 makes it conservative: a
    box it refuses holds no feature point matching the search region,
    hence no candidate, hence no answer. Building and applying the
    predicate reads no page and visits no node. Argument validation
    (query length, negative ε, side-constraint ranges) raises
    [Invalid_argument] like {!range}. *)
val range_probe :
  ?spec:Spec.t ->
  ?normalise_query:bool ->
  ?mean_window:float ->
  ?std_band:float ->
  t ->
  query:Simq_series.Series.t ->
  epsilon:float ->
  (Simq_geometry.Rect.t -> bool)

(** [range_batch t ?pool ?profiles ?spec ~queries] answers a whole
    workload of [(query, epsilon)] pairs — the serving path for many
    concurrent users, run through {!Simq_parallel.Batch}. The
    transformation is prepared once against the resident index, queries
    run one per task of [pool] (default the global pool), and element
    [i] of the result — answers, candidate count and node accesses — is
    bit-identical to [range t ~query ~epsilon] posed alone. All queries
    are validated before any work starts; the tree's cumulative access
    counter advances by the same total as a sequential loop. With
    [?profiles] (length = [queries]'s, else [Invalid_argument]) query
    [i] records its [kindex.range] operator tree into [profiles.(i)]. *)
val range_batch :
  ?pool:Simq_parallel.Pool.t ->
  ?profiles:Simq_obs.Profile.t array ->
  ?spec:Spec.t ->
  ?normalise_query:bool ->
  ?sketch:(Dataset.entry -> prefilter option) ->
  ?approx:float ->
  ?anytime:bool ->
  t ->
  queries:(Simq_series.Series.t * float) array ->
  range_result array

(** [nearest t ?spec ~query ~k] is the [k] entries minimising the same
    distance, closest first — best-first search with per-feature
    geometric lower bounds, full distances computed on demand
    (the multi-step exact NN of [RKV95]).

    [?sketch] is an NN bound builder ({!Simq_sketch.nn_bound}
    partially applied): called once on the prepared query entry, it
    yields a per-entry lower bound (the max over the funnel's levels)
    under which data entries are queued and refined to their exact
    distance only when they reach the top of the heap — one more
    refinement step, so entries the sketch keeps away from the top
    never pay an exact comparison. The emitted answers are exact and
    bit-identical to the sketch-free run at every domain count. *)
val nearest :
  ?spec:Spec.t -> ?normalise_query:bool ->
  ?sketch:(Dataset.entry -> (Dataset.entry -> float) option) ->
  ?profile:Simq_obs.Profile.t ->
  t ->
  query:Simq_series.Series.t -> k:int -> (Dataset.entry * float) list

(** [nearest_scan t ?spec ?budget ?retry ~query ~k] answers the same
    query as {!nearest} through an exact linear selection over the
    prepared entries — the degraded NN path, exposed so callers (the
    scatter-gather executor of {!module:Simq_shard}) can degrade one
    partition without an admission verdict. Priced like the scan path:
    one comparison and one logical page read per series against
    [budget]; ties at the [k] boundary break on the entry id, so the
    selection is deterministic at every domain count. Returns the
    answers (closest first) or a typed error; each retry attempt gets a
    fresh budget state. *)
val nearest_scan :
  ?spec:Spec.t ->
  ?normalise_query:bool ->
  ?budget:Simq_fault.Budget.t ->
  ?retry:Simq_fault.Retry.policy ->
  ?on_retry:(attempt:int -> unit) ->
  ?profile:Simq_obs.Profile.t ->
  t ->
  query:Simq_series.Series.t ->
  k:int ->
  ((Dataset.entry * float) list, Simq_fault.Error.t) Result.t

(** [nearest_checked t ?spec ?budget ?retry ?admission ~query ~k] is
    {!nearest} under a {!Simq_fault.Budget} and bounded
    {!Simq_fault.Retry}: every node expansion of the best-first
    traversal is checked and charged as a node access, every
    exact-distance evaluation as one comparison. Returns the exact
    {!nearest} result or a typed error; each attempt gets a fresh
    budget state. Argument validation still raises
    [Invalid_argument].

    With [?admission] the query is vetted by the same cost model the
    range planner consults ({!Simq_admission.decide}), {e before} any
    node is visited or page read. The NN workload description uses
    the exact answer fraction [k / cardinality] as its selectivity —
    catalogue facts only, so the decision is a pure function of the
    budget and a registry snapshot, identical at every
    [SIMQ_DOMAINS]/[--jobs] setting. A [Reject] returns the typed
    [Rejected] error with nothing executed; [Degrade_to_scan] answers
    exactly through a linear selection over the prepared entries
    (priced like the scan path: one comparison and one logical page
    read per series, ties at the [k] boundary broken on the entry
    id); [Admit] runs the index traversal unchanged. [on_decision]
    observes the decision (for query logs). *)
val nearest_checked :
  ?spec:Spec.t ->
  ?normalise_query:bool ->
  ?budget:Simq_fault.Budget.t ->
  ?retry:Simq_fault.Retry.policy ->
  ?on_retry:(attempt:int -> unit) ->
  ?admission:Simq_admission.t ->
  ?on_decision:(Simq_admission.decision -> unit) ->
  ?sketch:(Dataset.entry -> (Dataset.entry -> float) option) ->
  ?profile:Simq_obs.Profile.t ->
  t ->
  query:Simq_series.Series.t ->
  k:int ->
  ((Dataset.entry * float) list, Simq_fault.Error.t) Result.t

(** [range_generic t ?spec ~query_coeffs ~epsilon ~distance] is the
    engine behind {!range} and the join methods: [query_coeffs] are the
    [k] complex features of the (already transformed) query side,
    [distance] computes the full distance used in postprocessing, and
    [spec] transforms the data side during traversal. The result is
    exact provided [Spectrum.prefix] of the transformed data spectrum
    against [query_coeffs] lower-bounds [distance] — the Lemma 1
    condition. *)
val range_generic :
  ?spec:Spec.t ->
  t ->
  query_coeffs:Simq_dsp.Cpx.t array ->
  epsilon:float ->
  distance:(Dataset.entry -> float) ->
  range_result

(** {2 Prepared transformations}

    {!range} and {!range_generic} prepare the transformation (stretch
    vector + lowering) on every call. Workloads that pose many queries
    under one transformation — the join methods, experiment loops —
    prepare once instead. *)

type prepared

(** [prepare t spec] precomputes everything [spec] needs against this
    index. *)
val prepare : t -> Spec.t -> prepared

(** [range_prepared t prepared ~query_coeffs ~epsilon ~distance] is
    {!range_generic} with the preparation factored out. [?prefilter]
    is an already-built funnel (the prepared-query entry is the
    caller's here), run under the same exact/approx/anytime contract
    as {!range}'s [?sketch]. *)
val range_prepared :
  ?mean_range:float * float ->
  ?std_range:float * float ->
  ?prefilter:prefilter ->
  ?approx:float ->
  ?anytime:bool ->
  ?profile:Simq_obs.Profile.t ->
  t ->
  prepared ->
  query_coeffs:Simq_dsp.Cpx.t array ->
  epsilon:float ->
  distance:(Dataset.entry -> float) ->
  range_result

(** [prepared_distance t prepared q] is the exact full distance
    [entry -> D(T entry, q)] used by postprocessing: frequency-domain
    against stored spectra for length-preserving transformations,
    time-domain for the warp. *)
val prepared_distance :
  t -> prepared -> Dataset.entry -> Dataset.entry -> float
