module Cpx = Simq_dsp.Cpx
module Series = Simq_series.Series
module Coords = Simq_geometry.Coords
module Region = Simq_geometry.Region
module Rect = Simq_geometry.Rect
module Rstar = Simq_rtree.Rstar
module Budget = Simq_fault.Budget
module Retry = Simq_fault.Retry
module Metrics = Simq_obs.Metrics
module Otrace = Simq_obs.Trace
module Profile = Simq_obs.Profile

let m_candidates =
  Metrics.counter ~help:"Window positions postprocessed by subsequence queries"
    "simq_subseq_candidates_total"

let m_survivors =
  Metrics.counter ~help:"Subsequence windows within epsilon"
    "simq_subseq_survivors_total"

(* A data entry covers [run] consecutive window positions of one series,
   starting at [first]; its rectangle is the MBR of their feature
   points. [run = 1] is the point-per-window layout. *)
type payload = {
  sid : int;
  first : int;
  run : int;
}

type t = {
  series : Series.t array;
  window : int;
  k : int;
  tree : payload Rstar.t;
  count : int;  (* window positions *)
  entries : int;  (* index entries (= count without trails) *)
}

type hit = {
  series_id : int;
  offset : int;
  distance : float;
}

let features ~k values = Array.sub (Simq_dsp.Fft.fft_real values) 0 k
let encode ~k values = Coords.encode Coords.Rectangular (features ~k values)

let build ?(k = 3) ?(max_fill = 32) ?trail ~window series =
  if window <= 0 then invalid_arg "Subseq.build: window must be positive";
  if k < 1 || k > window then invalid_arg "Subseq.build: need 1 <= k <= window";
  (match trail with
  | Some t when t < 1 -> invalid_arg "Subseq.build: trail must be >= 1"
  | _ -> ());
  Array.iter
    (fun s ->
      if Series.length s < window then
        invalid_arg "Subseq.build: window exceeds a series length")
    series;
  let run_length = Option.value trail ~default:1 in
  let items = ref [] in
  let count = ref 0 in
  Array.iteri
    (fun sid s ->
      let positions = Series.length s - window + 1 in
      count := !count + positions;
      let first = ref 0 in
      while !first < positions do
        let run = min run_length (positions - !first) in
        let mbr = ref None in
        for offset = !first to !first + run - 1 do
          let slice = Series.subsequence s ~pos:offset ~len:window in
          let p = Rect.of_point (encode ~k slice) in
          mbr :=
            Some
              (match !mbr with
              | None -> p
              | Some acc -> Rect.union acc p)
        done;
        (match !mbr with
        | Some rect -> items := (rect, { sid; first = !first; run }) :: !items
        | None -> ());
        first := !first + run
      done)
    series;
  let items = Array.of_list !items in
  let tree = Simq_rtree.Bulk.load_rects ~max_fill ~dims:(2 * k) items in
  { series; window; k; tree; count = !count; entries = Array.length items }

let window t = t.window
let windows_indexed t = t.count
let index_entries t = t.entries

let check_query t query =
  if Series.length query <> t.window then
    invalid_arg
      (Printf.sprintf "Subseq: query length %d, expected %d"
         (Series.length query) t.window)

let true_distance t query ~sid ~offset =
  let slice = Series.subsequence t.series.(sid) ~pos:offset ~len:t.window in
  Simq_series.Distance.euclidean slice query

(* Expand a candidate entry: test every window position it covers. *)
let expand_candidate t query ~epsilon payload acc =
  let result = ref acc in
  for offset = payload.first to payload.first + payload.run - 1 do
    let distance = true_distance t query ~sid:payload.sid ~offset in
    if distance <= epsilon then
      result := { series_id = payload.sid; offset; distance } :: !result
  done;
  !result

(* The engine behind {!range} and {!range_checked}: accesses counted
   locally and credited afterwards, each candidate window charged as one
   comparison against an optional budget state. *)
let range_compute ?bstate ?profile t ~query ~epsilon =
  let pn = Profile.enter profile "subseq.range" in
  Fun.protect ~finally:(fun () -> Profile.leave profile pn) @@ fun () ->
  Otrace.with_span "subseq.range" @@ fun () ->
  let query_features = features ~k:t.k query in
  let region =
    Coords.search_region Coords.Rectangular ~query:query_features ~epsilon
  in
  let candidates = ref 0 in
  let pd = Profile.enter profile "subseq.descent" in
  let hits, accesses =
    Otrace.with_span "subseq.descent" (fun () ->
        Rstar.fold_region_counted ?budget:bstate t.tree
          ~overlaps:(fun r -> Region.intersects_rect region r)
          ~matches:(fun r _ -> Region.intersects_rect region r)
          ~init:[]
          ~f:(fun acc _ payload ->
            (match bstate with
            | None -> ()
            | Some b ->
              Budget.check b;
              Budget.charge_comparisons b payload.run);
            candidates := !candidates + payload.run;
            expand_candidate t query ~epsilon payload acc))
  in
  Rstar.add_accesses t.tree accesses;
  Profile.add_pages pd accesses;
  Profile.add_rows_out pd !candidates;
  Profile.leave profile pd;
  let pp = Profile.enter profile "subseq.postfilter" in
  let hits =
    Otrace.with_span "subseq.postfilter" (fun () ->
        List.sort
          (fun a b -> compare (a.series_id, a.offset) (b.series_id, b.offset))
          hits)
  in
  let survivors = List.length hits in
  Profile.add_rows_in pp !candidates;
  Profile.add_rows_out pp survivors;
  Profile.leave profile pp;
  Profile.add_candidates pn !candidates;
  Profile.add_survivors pn survivors;
  Profile.add_pages pn accesses;
  Profile.add_rows_out pn survivors;
  Metrics.add m_candidates !candidates;
  Metrics.add m_survivors survivors;
  (hits, !candidates)

let range ?profile t ~query ~epsilon =
  check_query t query;
  if epsilon < 0. then invalid_arg "Subseq.range: negative epsilon";
  range_compute ?profile t ~query ~epsilon

let range_checked ?(budget = Budget.unlimited) ?retry ?on_retry ?profile t
    ~query ~epsilon =
  check_query t query;
  if epsilon < 0. then invalid_arg "Subseq.range_checked: negative epsilon";
  Retry.with_retries ?policy:retry ?on_retry (fun () ->
      (* Fresh budget state per attempt, matching the other checked
         entry points. *)
      let bstate = Budget.state_opt budget in
      range_compute ?bstate ?profile t ~query ~epsilon)

let nearest_compute ?bstate ?profile t ~query ~k =
  let pn = Profile.enter profile "subseq.nearest" in
  Profile.set_detail pn (Printf.sprintf "k=%d" k);
  Fun.protect ~finally:(fun () -> Profile.leave profile pn) @@ fun () ->
  Otrace.with_span "subseq.nearest" @@ fun () ->
  let query_point = encode ~k:t.k query in
  let visits = ref 0 in
  let charge =
    Option.map
      (fun b () ->
        Budget.check b;
        Budget.charge_node_access b)
      bstate
  in
  let visit =
    match (charge, pn) with
    | None, None -> None
    | _ ->
        Some
          (fun () ->
            incr visits;
            match charge with Some f -> f () | None -> ())
  in
  (* With trails an entry stands for [run] windows; best-first over
     entries keyed by the minimum distance of their windows, expanded as
     they surface, stays exact because the feature-space MINDIST
     lower-bounds every window the rectangle covers. *)
  Simq_rtree.Nn.nearest_custom ?visit t.tree
    ~rect_bound:(fun r -> Rect.mindist query_point r)
    ~point_dist:(fun _ payload ->
      Profile.add_candidates pn payload.run;
      (match bstate with
      | None -> ()
      | Some b ->
        Budget.check b;
        Budget.charge_comparisons b payload.run);
      let best = ref Float.infinity in
      for offset = payload.first to payload.first + payload.run - 1 do
        best :=
          Float.min !best (true_distance t query ~sid:payload.sid ~offset)
      done;
      !best)
    ~k
  |> List.concat_map (fun (_, payload, best) ->
         (* Report the windows of this entry achieving its distance tier:
            re-rank all its windows and keep them; the final take below
            restores global order. *)
         let all = ref [] in
         for offset = payload.first to payload.first + payload.run - 1 do
           all :=
             {
               series_id = payload.sid;
               offset;
               distance = true_distance t query ~sid:payload.sid ~offset;
             }
             :: !all
         done;
         ignore best;
         !all)
  |> List.sort (fun a b -> Float.compare a.distance b.distance)
  |> List.filteri (fun i _ -> i < k)
  |> fun hits ->
  Profile.add_pages pn !visits;
  Profile.add_rows_out pn (List.length hits);
  hits

let nearest ?profile t ~query ~k =
  check_query t query;
  nearest_compute ?profile t ~query ~k

let nearest_checked ?(budget = Budget.unlimited) ?retry ?on_retry ?profile t
    ~query ~k =
  check_query t query;
  if k <= 0 then invalid_arg "Subseq.nearest_checked: k must be positive";
  Retry.with_retries ?policy:retry ?on_retry (fun () ->
      let bstate = Budget.state_opt budget in
      nearest_compute ?bstate ?profile t ~query ~k)
