(** A minimal binary min-heap keyed by floats, used by the best-first
    nearest-neighbour search. Entries carry an optional integer
    tie-break rank: ordering is lexicographic on [(key, tie)], so
    equal-key entries pop in a caller-chosen deterministic order
    instead of heap-internal insertion order. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

(** [push h key v] inserts [v] with priority [key] and tie rank [0]. *)
val push : 'a t -> float -> 'a -> unit

(** [push_tie h key tie v] inserts [v] with priority [(key, tie)]:
    among equal keys, the smallest [tie] pops first. *)
val push_tie : 'a t -> float -> int -> 'a -> unit

(** [pop_min h] removes and returns the entry with the smallest
    [(key, tie)]. *)
val pop_min : 'a t -> (float * 'a) option

(** [peek_min_key h] is the smallest key without removing it. *)
val peek_min_key : 'a t -> float option
