type 'a t = {
  mutable keys : float array;
  mutable ties : int array;
  mutable values : 'a option array;
  mutable count : int;
}

let create () =
  {
    keys = Array.make 16 0.;
    ties = Array.make 16 0;
    values = Array.make 16 None;
    count = 0;
  }

let is_empty h = h.count = 0
let size h = h.count

let grow h =
  let capacity = Array.length h.keys in
  if h.count = capacity then begin
    let keys = Array.make (capacity * 2) 0. in
    let ties = Array.make (capacity * 2) 0 in
    let values = Array.make (capacity * 2) None in
    Array.blit h.keys 0 keys 0 capacity;
    Array.blit h.ties 0 ties 0 capacity;
    Array.blit h.values 0 values 0 capacity;
    h.keys <- keys;
    h.ties <- ties;
    h.values <- values
  end

let swap h a b =
  let k = h.keys.(a) in
  h.keys.(a) <- h.keys.(b);
  h.keys.(b) <- k;
  let t = h.ties.(a) in
  h.ties.(a) <- h.ties.(b);
  h.ties.(b) <- t;
  let v = h.values.(a) in
  h.values.(a) <- h.values.(b);
  h.values.(b) <- v

(* Entries order by (key, tie) lexicographically, so equal-key entries
   pop in a caller-chosen deterministic order instead of heap-internal
   insertion order. *)
let less h a b =
  h.keys.(a) < h.keys.(b)
  || (h.keys.(a) = h.keys.(b) && h.ties.(a) < h.ties.(b))

let push_tie h key tie value =
  grow h;
  h.keys.(h.count) <- key;
  h.ties.(h.count) <- tie;
  h.values.(h.count) <- Some value;
  h.count <- h.count + 1;
  let idx = ref (h.count - 1) in
  while !idx > 0 && less h !idx ((!idx - 1) / 2) do
    swap h !idx ((!idx - 1) / 2);
    idx := (!idx - 1) / 2
  done

let push h key value = push_tie h key 0 value

let pop_min h =
  if h.count = 0 then None
  else begin
    let key = h.keys.(0) in
    let value =
      match h.values.(0) with
      | Some v -> v
      | None -> assert false
    in
    h.count <- h.count - 1;
    h.keys.(0) <- h.keys.(h.count);
    h.ties.(0) <- h.ties.(h.count);
    h.values.(0) <- h.values.(h.count);
    h.values.(h.count) <- None;
    let idx = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !idx) + 1 and r = (2 * !idx) + 2 in
      let smallest = ref !idx in
      if l < h.count && less h l !smallest then smallest := l;
      if r < h.count && less h r !smallest then smallest := r;
      if !smallest = !idx then continue := false
      else begin
        swap h !idx !smallest;
        idx := !smallest
      end
    done;
    Some (key, value)
  end

let peek_min_key h = if h.count = 0 then None else Some h.keys.(0)
