(** Query workload helpers: reproducible query series and the threshold
    calibration used by the answer-set-size experiment (Figure 12 varies
    ε “so that the query gave us different numbers of time series in the
    answer set”). *)

(** [perturb state series ~amount] adds uniform noise in
    [-amount, amount] — queries near, but not identical to, stored
    data. *)
val perturb :
  Random.State.t -> Simq_series.Series.t -> amount:float ->
  Simq_series.Series.t

(** [threshold_for_count distances ~count] is the smallest ε admitting
    at least [count] of the given distances (i.e. the [count]-th
    smallest). Raises [Invalid_argument] when [count] is out of
    range. *)
val threshold_for_count : float array -> count:int -> float

(** [spec_mix ?skew ~seed ~cardinality ~count ()] is a deterministic
    mixed workload of [count] query-language spec strings against a
    relation of [cardinality] series named [r] — roughly 60% RANGE
    (with occasional MEAN/STD side constraints), 30% NEAREST and 10%
    early-abandoning PAIRS, under a mix of [id]/[rev]/[mavg]/[wma]
    transformations (windows up to 7, so any series length >= 16 is
    safe). Query series are named [sN] with [N < cardinality] — the
    [simq query]/[simq serve] convention. [skew] (default [0.], range
    [0, 1]) redirects that fraction of the query ids into one narrow
    band ([cardinality/8] wide) of the id space — the clustered key
    ranges under which sharded execution ([Simq_shard]) shows
    catalogue pruning; the skewed draws come from a side PRNG stream,
    so [skew = 0.] yields byte-identical workloads to earlier
    releases. The same [seed] always yields the same list (seed
    service workloads from [Bench_util.derived_seed]). Raises
    [Invalid_argument] when [cardinality < 1], [count < 0] or [skew]
    is outside [0, 1]. *)
val spec_mix :
  ?skew:float -> seed:int -> cardinality:int -> count:int -> unit ->
  string list

(** [epsilon_for_answer_size ~normals ~query ~target] calibrates ε so a
    range query on the normal forms returns [target] answers: the
    [target]-th smallest Euclidean distance from [query] to [normals]. *)
val epsilon_for_answer_size :
  normals:Simq_series.Series.t array ->
  query:Simq_series.Series.t ->
  target:int ->
  float
