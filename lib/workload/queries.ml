let perturb state series ~amount =
  Array.map (fun v -> v +. Random.State.float state (2. *. amount) -. amount)
    series

let threshold_for_count distances ~count =
  let n = Array.length distances in
  if count < 1 || count > n then
    invalid_arg "Queries.threshold_for_count: count out of range";
  let sorted = Array.copy distances in
  Array.sort Float.compare sorted;
  sorted.(count - 1)

let spec_mix ?(skew = 0.) ~seed ~cardinality ~count () =
  if cardinality < 1 then
    invalid_arg "Queries.spec_mix: cardinality must be >= 1";
  if count < 0 then invalid_arg "Queries.spec_mix: count must be >= 0";
  if skew < 0. || skew > 1. then
    invalid_arg "Queries.spec_mix: skew must be in [0, 1]";
  let state = Random.State.make [| seed |] in
  (* Skewed draws come from a side stream, so skew = 0 leaves the main
     stream — and therefore the historical workload — byte-identical. *)
  let skew_state = Random.State.make [| seed; 7919 |] in
  let band = max 1 (cardinality / 8) in
  (* Bind every random draw before formatting: argument evaluation
     order must not decide the stream. *)
  let query () =
    let id = Random.State.int state cardinality in
    let id =
      if skew > 0. && Random.State.float skew_state 1. < skew then
        (* A clustered key range: the query ids collapse into one
           narrow band of the id space, the non-uniform access pattern
           that lets contiguous-block shards prune. *)
        Random.State.int skew_state band
      else id
    in
    Printf.sprintf "s%d" id
  in
  let using () =
    match Random.State.int state 5 with
    | 0 | 1 -> ""
    | 2 -> " USING rev"
    | 3 ->
      let w = 2 + Random.State.int state 6 in
      Printf.sprintf " USING mavg(%d)" w
    | _ ->
      let w = 2 + Random.State.int state 6 in
      Printf.sprintf " USING wma(%d)" w
  in
  let epsilon () = 0.5 +. Random.State.float state 2.5 in
  List.init count (fun _ ->
      let roll = Random.State.int state 10 in
      if roll < 6 then begin
        let u = using () in
        let q = query () in
        let eps = epsilon () in
        let side =
          match Random.State.int state 4 with
          | 0 ->
            let w = 0.5 +. Random.State.float state 2. in
            Printf.sprintf " MEAN %.2f" w
          | 1 ->
            let f = 1.5 +. Random.State.float state 2. in
            Printf.sprintf " STD %.2f" f
          | _ -> ""
        in
        Printf.sprintf "RANGE FROM r%s QUERY %s EPS %.2f%s" u q eps side
      end
      else if roll < 9 then begin
        let k = 1 + Random.State.int state 8 in
        let u = using () in
        let q = query () in
        Printf.sprintf "NEAREST %d FROM r%s QUERY %s" k u q
      end
      else begin
        let u = using () in
        let eps = epsilon () in
        Printf.sprintf "PAIRS FROM r%s EPS %.2f METHOD scan-early" u eps
      end)

let epsilon_for_answer_size ~normals ~query ~target =
  let distances =
    Array.map (fun s -> Simq_series.Distance.euclidean s query) normals
  in
  threshold_for_count distances ~count:target
