let m_injected =
  Simq_obs.Metrics.counter
    ~help:"Transient faults raised by installed injectors"
    "simq_fault_injected_total"

type site = Page_read | Node_access

let site_name = function Page_read -> "page_read" | Node_access -> "node_access"

exception Transient_fault of { site : site; ordinal : int }

type spec = { probability : float; schedule : int list }

let transient ?(probability = 0.) ?(schedule = []) () =
  if not (probability >= 0. && probability <= 1.) then
    invalid_arg "Injector.transient: probability must be in [0, 1]";
  if List.exists (fun n -> n < 1) schedule then
    invalid_arg "Injector.transient: schedule ordinals are 1-based";
  { probability; schedule }

let never = transient ()

type point = {
  probability : float;
  scheduled : (int, unit) Hashtbl.t;
  rng : Random.State.t;
  mutable ordinal : int;
  mutable faults : int;
}

type t = { lock : Mutex.t; page_reads : point; node_accesses : point }

let create ?(page_reads = never) ?(node_accesses = never) ~seed () =
  let point offset (spec : spec) =
    let scheduled = Hashtbl.create 8 in
    List.iter (fun n -> Hashtbl.replace scheduled n ()) spec.schedule;
    {
      probability = spec.probability;
      scheduled;
      rng = Random.State.make [| seed; offset |];
      ordinal = 0;
      faults = 0;
    }
  in
  {
    lock = Mutex.create ();
    page_reads = point 1 page_reads;
    node_accesses = point 2 node_accesses;
  }

let point t = function
  | Page_read -> t.page_reads
  | Node_access -> t.node_accesses

let check t site =
  let p = point t site in
  Mutex.lock t.lock;
  p.ordinal <- p.ordinal + 1;
  let ordinal = p.ordinal in
  let fault =
    Hashtbl.mem p.scheduled ordinal
    || (p.probability > 0. && Random.State.float p.rng 1. < p.probability)
  in
  if fault then p.faults <- p.faults + 1;
  Mutex.unlock t.lock;
  if fault then begin
    Simq_obs.Metrics.incr m_injected;
    raise (Transient_fault { site; ordinal })
  end

let accesses t site = (point t site).ordinal
let faults t site = (point t site).faults
