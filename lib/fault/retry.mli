(** Bounded retry with exponential backoff, and the conversion of
    in-flight exceptions into typed errors. This is the boundary that
    guarantees checked query entry points never leak a raw fault or
    budget exception to the caller. *)

type policy = { max_attempts : int; base_delay_s : float; backoff : float }

(** [policy ()] defaults to 3 attempts, 1 ms base delay, doubling.
    Raises [Invalid_argument] if [max_attempts < 1], [base_delay_s < 0]
    or [backoff < 1]. *)
val policy :
  ?max_attempts:int -> ?base_delay_s:float -> ?backoff:float -> unit -> policy

(** 3 attempts, 1 ms base delay, backoff 2. *)
val default : policy

(** Single attempt, no backoff. *)
val none : policy

(** [with_retries ?policy ?on_retry f] runs [f] up to
    [policy.max_attempts] times. {!Injector.Transient_fault} triggers a
    retry (after [base_delay_s * backoff^(attempt-1)] seconds,
    reporting the abandoned attempt number to [on_retry]); exhausting
    all attempts yields [Error (Io_failed _)]. {!Budget.Exceeded} is
    not retried — a blown budget fails the attempt immediately with its
    carried error. Any other exception propagates: it is a programming
    error, not a fault. *)
val with_retries :
  ?policy:policy ->
  ?on_retry:(attempt:int -> unit) ->
  (unit -> 'a) ->
  ('a, Error.t) result
