type policy = { max_attempts : int; base_delay_s : float; backoff : float }

let m_retries =
  Simq_obs.Metrics.counter
    ~help:"Retries of transient faults by checked entry points"
    "simq_fault_retries_total"

let policy ?(max_attempts = 3) ?(base_delay_s = 1e-3) ?(backoff = 2.) () =
  if max_attempts < 1 then invalid_arg "Retry.policy: max_attempts must be >= 1";
  if not (base_delay_s >= 0.) then
    invalid_arg "Retry.policy: base_delay_s must be >= 0";
  if not (backoff >= 1.) then invalid_arg "Retry.policy: backoff must be >= 1";
  { max_attempts; base_delay_s; backoff }

let default = policy ()
let none = policy ~max_attempts:1 ~base_delay_s:0. ()

let with_retries ?(policy = default) ?on_retry f =
  let rec go attempt =
    match f () with
    | v -> Ok v
    | exception Budget.Exceeded e -> Error e
    | exception Injector.Transient_fault { site; _ } ->
      if attempt >= policy.max_attempts then
        Error
          (Error.Io_failed { site = Injector.site_name site; attempts = attempt })
      else begin
        Simq_obs.Metrics.incr m_retries;
        (match on_retry with Some g -> g ~attempt | None -> ());
        let delay =
          policy.base_delay_s *. (policy.backoff ** float_of_int (attempt - 1))
        in
        if delay > 0. then Unix.sleepf delay;
        go (attempt + 1)
      end
  in
  go 1
