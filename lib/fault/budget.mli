(** Per-query resource budgets with cooperative cancellation.

    A budget ({!t}) is an immutable set of limits. Each query attempt
    derives a fresh mutable {!state} from it ({!start}); hot loops in
    [Seqscan], [Kindex]/[Rstar] traversal and [Join] call {!check} and
    the [charge_*] functions against that state. The first crossing of
    any limit latches a typed {!Error.t} into the state and raises
    {!Exceeded}; every other domain observes the latch at its next
    {!check}, so cancellation propagates cooperatively across all
    domains of [Simq_parallel.Pool] while the pool's lowest-index
    exception rule still picks one deterministic error.

    Accounting notes: page reads count {e logical} buffer-pool touches
    (hits and misses alike) so budget outcomes do not depend on what an
    earlier query left resident; comparisons count candidate distance
    evaluations; node accesses count R*-tree node visits. Under
    parallel execution the latched [spent] payload may overshoot the
    limit by up to one in-flight charge per domain — outcomes (and
    {!Error.kind}) stay deterministic because total work per query is
    fixed. *)

type t

(** [create ()] with no arguments is {!unlimited}. [deadline_s] is a
    per-query wall-clock deadline in seconds; the [max_*] limits are
    counts. Raises [Invalid_argument] on negative limits. A limit of 0
    fails on the first charge, which is useful for forcing degradation
    in tests. *)
val create :
  ?deadline_s:float ->
  ?max_page_reads:int ->
  ?max_comparisons:int ->
  ?max_node_accesses:int ->
  unit ->
  t

(** No limits: checked query paths skip budget accounting entirely. *)
val unlimited : t

val is_unlimited : t -> bool

(** [limit t r] is the count limit for resource [r], [None] when [r]
    is uncapped (and always for [Wall_clock] — see {!deadline}). Used
    by admission control to compare estimated costs against the
    budget before execution. *)
val limit : t -> Error.resource -> int option

(** [deadline t] is the wall-clock deadline in seconds, if any. *)
val deadline : t -> float option

(** Mutable accounting for one query attempt. Retried attempts each
    get a fresh state, so limits are per-attempt. *)
type state

(** Raised inside query loops when a limit is crossed or the state was
    cancelled by another domain. Checked entry points catch it and
    return the carried error as [Error _]. *)
exception Exceeded of Error.t

(** [start t] begins a new attempt (stamps the deadline clock). *)
val start : t -> state

(** [state_opt t] is [None] when [t] is unlimited — lets callers skip
    installing budget hooks entirely — and [Some (start t)] otherwise. *)
val state_opt : t -> state option

(** [check s] raises {!Exceeded} if [s] was cancelled or its deadline
    has expired; otherwise returns unit. Called at loop heads. *)
val check : state -> unit

val charge_page_read : state -> unit

(** [charge_comparisons s n] adds [n >= 0] distance comparisons. *)
val charge_comparisons : state -> int -> unit

val charge_node_access : state -> unit

(** [spent s r] is the consumption recorded so far for resource [r]
    ([0] for [Wall_clock]). Charges against a resource [s] does not
    limit are skipped, not recorded, so [spent] reports [0] for
    uncapped resources. *)
val spent : state -> Error.resource -> int
