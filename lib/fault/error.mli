(** Typed query failures. Every resilient entry point of the system
    ([Seqscan.range_checked], [Kindex.range_checked],
    [Join.scan_checked], [Planner.range_resilient]) returns
    [(value, Error.t) result]: a query either produces its exact answer
    or one of these structured errors — never a raw exception. *)

(** The resources a {!Budget} can limit. [In_flight] is not a budget
    resource: it names a server-wide concurrency cap, so a load-shed
    rejection from [simq serve] carries the same typed shape
    ([Rejected]) as a cost-model rejection. *)
type resource =
  | Wall_clock
  | Page_reads
  | Comparisons
  | Node_accesses
  | In_flight

type t =
  | Timeout of { elapsed_s : float; deadline_s : float }
      (** the per-query wall-clock deadline expired *)
  | Io_failed of { site : string; attempts : int }
      (** a transient I/O fault persisted through every retry;
          [site] names the injection point ([page_read],
          [node_access]) *)
  | Budget_exceeded of { resource : resource; spent : int; limit : int }
      (** a resource limit was crossed; [spent] is the consumption
          observed when the limit was detected (>= [limit], and may
          slightly exceed it under parallel execution) *)
  | Index_unusable of { reason : string }
      (** the k-index failed structural validation
          ({!Simq_rtree.Check}) and was not queried *)
  | Rejected of { resource : resource; estimated : int; limit : int }
      (** admission control predicted the query cannot finish within
          its budget and refused it {e before} execution — no page was
          read and no comparison ran; [estimated] is the cost model's
          prediction for [resource] (milliseconds for [Wall_clock]) *)

val resource_name : resource -> string

(** [kind e] is a stable, payload-free tag ("timeout",
    "budget_exceeded:comparisons", …). Two runs of the same seeded
    workload produce errors of equal [kind] even when nondeterministic
    payloads (elapsed time, exact spent under parallelism) differ. *)
val kind : t -> string

(** [same_kind a b] compares errors by {!kind} only. *)
val same_kind : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
