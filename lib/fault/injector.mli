(** Deterministic, seeded transient-fault injection.

    An injector is installed on a storage structure
    ([Simq_storage.Buffer_pool.set_injector],
    [Simq_rtree.Rstar.set_injector]) and consulted on every guarded
    access. When it decides an access faults it raises
    {!Transient_fault}, modelling a transient I/O error: the failed
    access is not recorded, and a retry re-issues it as a {e new}
    access (with a new ordinal). When no injector is installed the
    guard is a single [None] match — zero overhead.

    Fault decisions are reproducible: the same [seed] and the same
    access sequence produce the same fault sequence. Internal state is
    mutex-protected, so an injector may be shared across domains, but
    reproducibility then additionally requires a deterministic access
    order (all current injection sites are driven from the submitting
    domain only). *)

(** Where a fault can be injected. *)
type site =
  | Page_read  (** a {!Simq_storage.Buffer_pool.touch} page access *)
  | Node_access  (** an R*-tree node visit during a read traversal *)

val site_name : site -> string

(** Raised by {!check} at a faulting access. [ordinal] is the 1-based
    access number at that site since the injector was created. *)
exception Transient_fault of { site : site; ordinal : int }

(** Per-site fault plan: every access faults independently with
    [probability], and accesses whose ordinals appear in [schedule]
    fault unconditionally ("fail the Nth access"). *)
type spec = { probability : float; schedule : int list }

(** [transient ?probability ?schedule ()] builds a {!spec}. Defaults
    to no faults. Raises [Invalid_argument] if [probability] is outside
    [\[0, 1\]] or a schedule ordinal is [< 1]. *)
val transient : ?probability:float -> ?schedule:int list -> unit -> spec

type t

(** [create ?page_reads ?node_accesses ~seed ()] builds an injector
    with a per-site plan (omitted sites never fault). Seed fault
    streams for benchmarks from [Bench_util.derived_seed] so runs are
    reproducible. *)
val create : ?page_reads:spec -> ?node_accesses:spec -> seed:int -> unit -> t

(** [check t site] records one access at [site] and raises
    {!Transient_fault} if that access faults. *)
val check : t -> site -> unit

(** [accesses t site] is the number of {!check} calls seen at [site]
    (including faulted ones). *)
val accesses : t -> site -> int

(** [faults t site] is the number of faults injected at [site]. *)
val faults : t -> site -> int
