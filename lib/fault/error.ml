type resource =
  | Wall_clock
  | Page_reads
  | Comparisons
  | Node_accesses
  | In_flight

type t =
  | Timeout of { elapsed_s : float; deadline_s : float }
  | Io_failed of { site : string; attempts : int }
  | Budget_exceeded of { resource : resource; spent : int; limit : int }
  | Index_unusable of { reason : string }
  | Rejected of { resource : resource; estimated : int; limit : int }

let resource_name = function
  | Wall_clock -> "wall_clock"
  | Page_reads -> "page_reads"
  | Comparisons -> "comparisons"
  | Node_accesses -> "node_accesses"
  | In_flight -> "in_flight"

let kind = function
  | Timeout _ -> "timeout"
  | Io_failed _ -> "io_failed"
  | Budget_exceeded { resource; _ } -> "budget_exceeded:" ^ resource_name resource
  | Index_unusable _ -> "index_unusable"
  | Rejected { resource; _ } -> "rejected:" ^ resource_name resource

let same_kind a b = String.equal (kind a) (kind b)

let pp ppf = function
  | Timeout { elapsed_s; deadline_s } ->
    Format.fprintf ppf "query timed out after %.3fs (deadline %.3fs)" elapsed_s
      deadline_s
  | Io_failed { site; attempts } ->
    Format.fprintf ppf "I/O failed at %s after %d attempt%s" site attempts
      (if attempts = 1 then "" else "s")
  | Budget_exceeded { resource; spent; limit } ->
    Format.fprintf ppf "budget exceeded: %s spent %d, limit %d"
      (resource_name resource) spent limit
  | Index_unusable { reason } -> Format.fprintf ppf "index unusable: %s" reason
  | Rejected { resource; estimated; limit } ->
    Format.fprintf ppf
      "rejected by admission control: estimated %d %s exceeds the budget's %d"
      estimated (resource_name resource) limit

let to_string e = Format.asprintf "%a" pp e
