let m_exhausted =
  Simq_obs.Metrics.counter
    ~help:"Budget limit crossings latched (one per failed attempt)"
    "simq_fault_budget_exhausted_total"

type t = {
  deadline_s : float;
  max_page_reads : int;
  max_comparisons : int;
  max_node_accesses : int;
}

let unlimited =
  {
    deadline_s = infinity;
    max_page_reads = max_int;
    max_comparisons = max_int;
    max_node_accesses = max_int;
  }

let create ?(deadline_s = infinity) ?(max_page_reads = max_int)
    ?(max_comparisons = max_int) ?(max_node_accesses = max_int) () =
  if not (deadline_s >= 0.) then
    invalid_arg "Budget.create: deadline_s must be >= 0";
  if max_page_reads < 0 || max_comparisons < 0 || max_node_accesses < 0 then
    invalid_arg "Budget.create: limits must be >= 0";
  { deadline_s; max_page_reads; max_comparisons; max_node_accesses }

let limit b resource =
  let cap n = if n = max_int then None else Some n in
  match (resource : Error.resource) with
  | Error.Wall_clock | Error.In_flight -> None
  | Error.Page_reads -> cap b.max_page_reads
  | Error.Comparisons -> cap b.max_comparisons
  | Error.Node_accesses -> cap b.max_node_accesses

let deadline b = if b.deadline_s = infinity then None else Some b.deadline_s

let is_unlimited b =
  b.deadline_s = infinity
  && b.max_page_reads = max_int
  && b.max_comparisons = max_int
  && b.max_node_accesses = max_int

type state = {
  limits : t;
  started_s : float;
  cancelled : Error.t option Atomic.t;
  page_reads : int Atomic.t;
  comparisons : int Atomic.t;
  node_accesses : int Atomic.t;
}

exception Exceeded of Error.t

let start limits =
  {
    limits;
    started_s =
      (if limits.deadline_s = infinity then 0. else Unix.gettimeofday ());
    cancelled = Atomic.make None;
    page_reads = Atomic.make 0;
    comparisons = Atomic.make 0;
    node_accesses = Atomic.make 0;
  }

let state_opt limits = if is_unlimited limits then None else Some (start limits)

(* The first crossing wins the CAS; later chargers (other domains) raise
   that same error, so one query reports one cause. *)
let fail s err =
  if Atomic.compare_and_set s.cancelled None (Some err) then
    Simq_obs.Metrics.incr m_exhausted;
  let e = match Atomic.get s.cancelled with Some e -> e | None -> err in
  raise (Exceeded e)

let check s =
  (match Atomic.get s.cancelled with
  | Some e -> raise (Exceeded e)
  | None -> ());
  if s.limits.deadline_s < infinity then begin
    let elapsed = Unix.gettimeofday () -. s.started_s in
    if elapsed > s.limits.deadline_s then
      fail s
        (Error.Timeout { elapsed_s = elapsed; deadline_s = s.limits.deadline_s })
  end

let charge counter limit resource s n =
  if limit < max_int then begin
    let spent = Atomic.fetch_and_add counter n + n in
    if spent > limit then
      fail s (Error.Budget_exceeded { resource; spent; limit })
  end

let charge_page_read s =
  charge s.page_reads s.limits.max_page_reads Error.Page_reads s 1

let charge_comparisons s n =
  if n < 0 then invalid_arg "Budget.charge_comparisons: negative charge";
  if n > 0 then charge s.comparisons s.limits.max_comparisons Error.Comparisons s n

let charge_node_access s =
  charge s.node_accesses s.limits.max_node_accesses Error.Node_accesses s 1

let spent s = function
  | Error.Wall_clock | Error.In_flight -> 0
  | Error.Page_reads -> Atomic.get s.page_reads
  | Error.Comparisons -> Atomic.get s.comparisons
  | Error.Node_accesses -> Atomic.get s.node_accesses
