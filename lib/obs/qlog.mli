(** The structured query log: one self-describing JSON line per query.

    Where {!Profile} is forensics for one query, the query log is the
    fleet view: each executed query appends one line carrying the
    query spec and its digest, the admission decision and the path
    actually taken, the per-family counter {e deltas} between the
    registry snapshots bracketing the run, the duration, the outcome
    and its mapped exit code, and the domain count. Lines are JSON
    objects tagged ["event":"simq.qlog"], so any JSON-lines tool — or
    [simq qlog-top] — can aggregate a log offline.

    Sampling is deterministic: a 1-in-N filter keyed off the query
    sequence number (queries [0, N, 2N, …] are kept), plus an
    always-log threshold for slow queries, so reruns of a fixed
    workload produce the same set of logged sequence numbers (timing
    can only {e add} slow-query lines).

    A query log never changes an answer: it only reads registry
    snapshots. The optional process-wide {e ambient} log is how the
    bench driver's [--qlog] flag reaches
    {!Simq_tsindex.Planner.range_resilient} without threading a value
    through every experiment. *)

type t
(** An open query log: destination channel, sampling policy, sequence
    counter. Writes are serialised by an internal mutex. *)

(** Scatter-gather accounting of a sharded query ([Simq_shard]): how
    many shards executed, how many the catalogue pruned, how many
    degraded to their per-shard scan. *)
type shard_counts = { fanout : int; pruned : int; degraded : int }

type entry = {
  spec : string;  (** human-readable query text, e.g. ["range mavg7 eps=0.4"] *)
  digest : string;  (** stable hex digest of the query identity *)
  decision : string option;  (** admission decision, when admission ran *)
  path : string option;  (** access path actually executed *)
  deltas : (string * int) list;
      (** per-family counter deltas over the run; see {!counter_deltas} *)
  duration_s : float;
  outcome : string;  (** ["ok"] or the typed error kind *)
  exit_code : int;  (** the {!Simq_cli}-mapped exit code for the outcome *)
  domains : int;  (** domain count the query ran under *)
  shards : shard_counts option;
      (** sharded execution only; rendered as a nested ["shards"]
          object ([null] on unsharded lines) *)
  trace_id : int option;
      (** the request id correlating this line with the query's
          profile root and Chrome trace spans (see
          {!Trace.new_request_id}); rendered as ["trace_id"] ([null]
          when none) *)
}

val create : ?sample:int -> ?slow_ms:float -> ?max_bytes:int -> string -> t
(** [create ?sample ?slow_ms ?max_bytes path] opens [path] for
    appending. [sample] is the 1-in-N keep rate (default [1] — keep
    everything; [Invalid_argument] if [< 1]); [slow_ms] always logs
    entries whose duration reaches it regardless of sampling (default:
    off). [max_bytes] (default: unbounded; [Invalid_argument] if
    [< 1]) rotates by size: after a write that takes the file to
    [max_bytes] or beyond, it is renamed to [path.1] — replacing any
    previous rotation, so at most two files ever exist. The fresh
    [path] is opened lazily by the next written line, so a log whose
    final line triggered rotation leaves only [path.1] behind (a state
    {!rotated_chain} accepts). Sequence numbers keep counting across
    rotations, so sampling stays a pure function of the query sequence
    number. Raises [Sys_error] if the file cannot be opened. *)

val log : t -> entry -> unit
(** Assigns the next sequence number, applies the sampling policy and
    appends (and flushes) the rendered line when kept. *)

val close : t -> unit
(** Flushes and closes the destination. Idempotent; [log] after
    [close] is a no-op. *)

val entries_seen : t -> int
(** Queries offered so far (the next sequence number). *)

val lines_written : t -> int
(** Lines actually written after sampling. *)

val rotated_chain : string -> string list
(** [rotated_chain path] is the existing files of the rotated pair in
    stream order: [path ^ ".1"] (the previous rotation, when present)
    followed by [path] (when present). Size rotation ([?max_bytes])
    keeps exactly one prior file and renames atomically, so reading
    the returned files in order yields a contiguous tail of the line
    stream — the order [simq qlog-top] and [simq batch --from-qlog]
    consume. Every pair state is handled: both files, only [path],
    only [path.1] (rotation fired on the final line and nothing was
    written after it), or neither — the result is then empty. *)

(** {1 The ambient log} *)

val install : t option -> unit
(** Sets (or clears) the process-wide ambient log that
    [Planner.range_resilient] appends to when no explicit log is in
    scope. Used by the bench driver's [--qlog] flag. *)

val ambient : unit -> t option

(** {1 Building entries} *)

val counter_deltas :
  before:Metrics.sample list ->
  after:Metrics.sample list ->
  (string * int) list
(** Pairs two {!Metrics.snapshot}s into per-counter deltas, keyed by
    the exposition name (labels rendered [name{k="v"}]). Only strictly
    positive deltas are kept — counters are monotone, so a registry
    [reset] between the snapshots surfaces as an absent key, never a
    negative delta. Gauges and histograms are ignored. *)

val render_line : seq:int -> entry -> string
(** The JSON line (no trailing newline) for [entry] at sequence
    [seq] — exposed pure so tests can check the grammar without a
    file. *)

(** {1 Offline aggregation (the [simq qlog-top] engine)} *)

type aggregate = {
  entries : int;
  total_duration_s : float;
  by_path : (string * int) list;  (** path → count, descending *)
  by_decision : (string * int) list;
  by_outcome : (string * int) list;
  by_fanout : (int * int) list;
      (** shard fanout → count, ascending fanout; only lines with a
          ["shards"] object participate *)
  by_trace : (int * float) list;
      (** trace id → summed duration, heaviest first (ties by
          ascending id), [top]-limited; only lines carrying a
          non-null ["trace_id"] participate *)
  top_by_duration : (int * string * float * int) list;
      (** (seq, spec, duration_s, trace_id), slowest first; trace is
          [0] for lines without the field *)
  top_by_pages : (int * string * int) list;
      (** (seq, spec, pages), most pages first; pages are the summed
          buffer-pool hit+miss deltas of the line *)
}

val aggregate : ?top:int -> Json.t list -> aggregate
(** Folds parsed qlog lines (non-qlog JSON values are skipped) into
    the breakdown above, keeping the [top] (default 5) heaviest
    entries per ranking. *)
