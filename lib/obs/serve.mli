(** Live telemetry exposition over a plain TCP socket.

    A running server ({!t}) owns one listening socket on the loopback
    interface; an accept thread hands each connection to its own
    answering thread, so two overlapping scrapes each get a complete
    well-formed response. The request line's path selects the
    document: [/metrics] (or anything unrecognised, including an
    empty request) answers the current {!Metrics.exposition} of the
    registry, wrapped in a minimal HTTP/1.1 response ([Content-Type:
    text/plain; version=0.0.4]) so any scraper — Prometheus, [curl],
    or {!val:scrape} — can read it; [/history] answers the [?history]
    provider's document as [application/json] (404 when no provider
    was given). Bodies are rendered per request, so a scrape mid-run
    sees the live merged totals (monotone snapshots of the counters,
    exact once the instrumented work is quiescent).

    The server never mutates the registry: scraping cannot change an
    answer, and the end-of-run file dump still reflects every update.

    The [--metrics-port] flag (or the [SIMQ_METRICS_PORT] environment
    variable) of [bin/simq] and [bench/main.exe] starts one of these
    for the duration of the command. *)

type t

(** [start ~port ()] binds [127.0.0.1:port] (with [SO_REUSEADDR]) and
    begins serving [registry] (default {!Metrics.default}) on a
    background thread. [history] (default: none — [/history] answers
    404) produces the [GET /history] response body per request —
    typically {!History.document} of a running sampler. [port = 0]
    picks an ephemeral port — read it back with {!port}. Raises
    [Unix.Unix_error] when the address is unavailable. *)
val start :
  ?registry:Metrics.registry ->
  ?history:(unit -> string) ->
  port:int ->
  unit ->
  t

(** [port t] is the bound TCP port (useful with [~port:0]). *)
val port : t -> int

(** [stop t] closes the listening socket and joins the serving
    thread. Idempotent. *)
val stop : t -> unit

(** [with_server ?registry ?history ~port f] runs [f server] and
    always stops the server afterwards, even on exceptions. *)
val with_server :
  ?registry:Metrics.registry ->
  ?history:(unit -> string) ->
  port:int ->
  (t -> 'a) ->
  'a

(** [scrape ?host ?timeout ?path ~port ()] connects to a running
    exposition server, issues one HTTP GET for [path] (default
    ["/metrics"]; ["/history"] selects the history document) and
    returns the response body. A self-contained scraper for scripts
    and tests on hosts without [curl]. Raises [Unix.Unix_error] on
    connection failure and [Failure] on a malformed response.

    [timeout] (seconds, [> 0], else [Invalid_argument]) bounds the
    connect and every read/write: a hung or silent peer raises
    [Unix_error] ([EAGAIN]/[EWOULDBLOCK]) instead of blocking forever
    — the [simq scrape --timeout-ms] flag, mapped to the usual
    one-line exit-2 error by [Simq_cli.scrape].

    Both {!start} and [scrape] ignore [SIGPIPE] process-wide on first
    use, so a peer closing mid-conversation surfaces as
    [Unix_error EPIPE] (caught, or mapped by the caller) instead of
    killing the process. *)
val scrape :
  ?host:string -> ?timeout:float -> ?path:string -> port:int -> unit -> string
