(* Bounded worst-K slow-query exemplar store. See slow.mli. *)

type entry = {
  seq : int;
  trace_id : int;
  digest : string;
  spec : string;
  duration_s : float;
  profile : string;
}

type t = {
  k : int;
  mutex : Mutex.t;
  mutable entries : entry list; (* sorted: duration desc, then seq asc *)
}

let create ~k =
  if k < 1 then invalid_arg "Slow.create: k must be >= 1";
  { k; mutex = Mutex.create (); entries = [] }

let k t = t.k

let order a b =
  match compare b.duration_s a.duration_s with
  | 0 -> compare a.seq b.seq
  | c -> c

let take n l =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n l

let observe t entry =
  Mutex.lock t.mutex;
  t.entries <- take t.k (List.sort order (entry :: t.entries));
  Mutex.unlock t.mutex

let entries t =
  Mutex.lock t.mutex;
  let es = t.entries in
  Mutex.unlock t.mutex;
  es

let entry_json e =
  Json.Obj
    [
      ("seq", Json.Num (float_of_int e.seq));
      ( "trace_id",
        if e.trace_id = 0 then Json.Null
        else Json.Num (float_of_int e.trace_id) );
      ("digest", Json.Str e.digest);
      ("spec", Json.Str e.spec);
      ("duration_ms", Json.Num (e.duration_s *. 1000.));
      ("profile", Json.Str e.profile);
    ]

let to_json t =
  Json.Obj
    [
      ("event", Json.Str "simq.slow");
      ("v", Json.Num 1.);
      ("k", Json.Num (float_of_int t.k));
      ("entries", Json.Arr (List.map entry_json (entries t)));
    ]
