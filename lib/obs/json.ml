(* Minimal JSON emitter/parser shared by Qlog, Profile and the
   metrics-state snapshot. See json.mli. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to buf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else Buffer.add_string buf (Printf.sprintf "%.17g" v)

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> if Float.is_finite v then number_to buf v else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (name, value) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf name;
          Buffer.add_char buf ':';
          emit buf value)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over a cursor.                     *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then (
      pos := !pos + len;
      value)
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8_add buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then (
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
    else if code < 0x10000 then (
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
    else (
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "truncated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              loop ()
          | 'n' ->
              Buffer.add_char buf '\n';
              loop ()
          | 'r' ->
              Buffer.add_char buf '\r';
              loop ()
          | 't' ->
              Buffer.add_char buf '\t';
              loop ()
          | 'b' ->
              Buffer.add_char buf '\b';
              loop ()
          | 'f' ->
              Buffer.add_char buf '\012';
              loop ()
          | 'u' ->
              let code = try hex4 () with _ -> fail "bad \\u escape" in
              (* Surrogate pair: decode the low half when present. *)
              let code =
                if code >= 0xD800 && code <= 0xDBFF
                   && !pos + 6 <= n
                   && s.[!pos] = '\\'
                   && s.[!pos + 1] = 'u'
                then (
                  pos := !pos + 2;
                  let low = try hex4 () with _ -> fail "bad \\u escape" in
                  if low >= 0xDC00 && low <= 0xDFFF then
                    0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
                  else fail "bad surrogate pair")
                else code
              in
              utf8_add buf code;
              loop ()
          | _ -> fail "bad escape")
      | c ->
          Buffer.add_char buf c;
          loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let name = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((name, value) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((name, value) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          Arr [])
        else
          let rec items acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (value :: acc)
            | Some ']' ->
                advance ();
                List.rev (value :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "json: %s at offset %d" msg at)

(* ------------------------------------------------------------------ *)
(* Projections                                                         *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let number = function Num v -> Some v | _ -> None
let string_of = function Str s -> Some s | _ -> None
let arr = function Arr items -> Some items | _ -> None
let obj = function Obj fields -> Some fields | _ -> None
