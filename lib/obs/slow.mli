(** Bounded in-memory slow-query exemplar store: the worst [K]
    queries by duration, each carrying enough context to chase one
    slow query without grepping a qlog — its sequence number, request
    id, spec and digest, duration, and rendered profile tree.

    The order is deterministic: duration descending, ties broken by
    ascending sequence number, and exactly the worst [K] are kept —
    an [observe] that does not displace an entry changes nothing. The
    store is an opt-in ([simq serve --slow-k]); a daemon without one
    pays nothing. Thread-safe. *)

type t

(** One exemplar. [trace_id] is [0] when the query ran outside a
    request scope; [profile] is the rendered operator tree
    ({!Profile.render}), empty when profiling was unavailable. *)
type entry = {
  seq : int;
  trace_id : int;
  digest : string;
  spec : string;
  duration_s : float;
  profile : string;
}

val create : k:int -> t
(** A store keeping the worst [k] ([Invalid_argument] if [< 1]). *)

val k : t -> int

val observe : t -> entry -> unit
(** Offers one finished query; kept only while among the worst [k]. *)

val entries : t -> entry list
(** Current exemplars, worst first. *)

val to_json : t -> Json.t
(** The self-describing document served for the [slow] protocol
    command:
    [{"event":"simq.slow","v":1,"k":…,"entries":[…]}]. *)
