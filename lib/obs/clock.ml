let now_ns () = Monotonic_clock.now ()
let elapsed_s t0 = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9
