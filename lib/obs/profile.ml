(* Per-query operator-tree profiling. See profile.mli. *)

type node = {
  node_name : string;
  mutable node_detail : string;
  start_ns : int64;
  mutable node_wall_ns : int64;
  mutable closed : bool;
  mutable node_rows_in : int;
  mutable node_rows_out : int;
  mutable node_pages : int;
  mutable node_candidates : int;
  mutable node_survivors : int;
  mutable node_early_abandon : int;
  mutable node_events : string list; (* reversed *)
  mutable node_children : node list; (* reversed *)
}

type t = {
  mutable roots_rev : node list;
  mutable stack : node list; (* innermost first *)
  mutable trace_id : int; (* 0 = unstamped *)
}

let create () = { roots_rev = []; stack = []; trace_id = 0 }
let set_trace t id = t.trace_id <- id
let trace_id t = t.trace_id

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)

let enter t name =
  match t with
  | None -> None
  | Some t ->
      let node =
        {
          node_name = name;
          node_detail = "";
          start_ns = Clock.now_ns ();
          node_wall_ns = 0L;
          closed = false;
          node_rows_in = 0;
          node_rows_out = 0;
          node_pages = 0;
          node_candidates = 0;
          node_survivors = 0;
          node_early_abandon = 0;
          node_events = [];
          node_children = [];
        }
      in
      (match t.stack with
      | parent :: _ -> parent.node_children <- node :: parent.node_children
      | [] -> t.roots_rev <- node :: t.roots_rev);
      t.stack <- node :: t.stack;
      Some node

let close_at now node =
  if not node.closed then (
    node.node_wall_ns <- Int64.sub now node.start_ns;
    node.closed <- true)

let leave t node =
  match (t, node) with
  | None, _ | _, None -> ()
  | Some t, Some node ->
      if List.memq node t.stack then (
        let now = Clock.now_ns () in
        (* Close everything opened below [node] as well, so one
           protected [leave] per operator survives exception paths. *)
        let rec pop = function
          | top :: rest ->
              close_at now top;
              if top == node then t.stack <- rest else pop rest
          | [] -> t.stack <- []
        in
        pop t.stack)

let set_detail node d =
  match node with None -> () | Some node -> node.node_detail <- d

let add_rows_in node n =
  match node with
  | None -> ()
  | Some node -> node.node_rows_in <- node.node_rows_in + n

let add_rows_out node n =
  match node with
  | None -> ()
  | Some node -> node.node_rows_out <- node.node_rows_out + n

let add_pages node n =
  match node with
  | None -> ()
  | Some node -> node.node_pages <- node.node_pages + n

let add_candidates node n =
  match node with
  | None -> ()
  | Some node -> node.node_candidates <- node.node_candidates + n

let add_survivors node n =
  match node with
  | None -> ()
  | Some node -> node.node_survivors <- node.node_survivors + n

let add_early_abandon node n =
  match node with
  | None -> ()
  | Some node -> node.node_early_abandon <- node.node_early_abandon + n

let add_event node e =
  match node with
  | None -> ()
  | Some node -> node.node_events <- e :: node.node_events

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

let roots t = List.rev t.roots_rev
let children node = List.rev node.node_children
let name node = node.node_name
let detail node = node.node_detail
let wall_ns node = node.node_wall_ns
let rows_in node = node.node_rows_in
let rows_out node = node.node_rows_out
let pages node = node.node_pages
let candidates node = node.node_candidates
let survivors node = node.node_survivors
let early_abandon node = node.node_early_abandon
let events node = List.rev node.node_events

let find t wanted =
  let rec dfs = function
    | [] -> None
    | node :: rest ->
        if node.node_name = wanted then Some node
        else (
          match dfs (children node) with
          | Some _ as hit -> hit
          | None -> dfs rest)
  in
  dfs (roots t)

let well_formed t =
  let rec ok node =
    let children = children node in
    let child_sum =
      List.fold_left
        (fun acc c -> Int64.add acc c.node_wall_ns)
        0L children
    in
    node.closed
    && node.node_rows_in >= 0
    && node.node_rows_out >= 0
    && node.node_pages >= 0
    && node.node_candidates >= 0
    && node.node_survivors >= 0
    && node.node_early_abandon >= 0
    && Int64.compare node.node_wall_ns child_sum >= 0
    && List.for_all ok children
  in
  t.stack = [] && List.for_all ok (roots t)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let fields ~timings node =
  let parts = ref [] in
  let add name v = if v <> 0 then parts := Printf.sprintf "%s=%d" name v :: !parts in
  add "early_abandon" node.node_early_abandon;
  add "survivors" node.node_survivors;
  add "candidates" node.node_candidates;
  add "pages" node.node_pages;
  add "rows_out" node.node_rows_out;
  add "rows_in" node.node_rows_in;
  if timings then
    parts :=
      Printf.sprintf "time=%.3fms" (Int64.to_float node.node_wall_ns /. 1e6)
      :: !parts;
  !parts

let render ?(timings = true) t =
  let buf = Buffer.create 256 in
  let rec emit depth node =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Buffer.add_string buf "-> ";
    Buffer.add_string buf node.node_name;
    if node.node_detail <> "" then (
      Buffer.add_string buf " [";
      Buffer.add_string buf node.node_detail;
      Buffer.add_char buf ']');
    (match fields ~timings node with
    | [] -> ()
    | parts ->
        Buffer.add_string buf "  (";
        Buffer.add_string buf (String.concat " " parts);
        Buffer.add_char buf ')');
    Buffer.add_char buf '\n';
    List.iter
      (fun e ->
        Buffer.add_string buf (String.make ((2 * depth) + 3) ' ');
        Buffer.add_string buf "! ";
        Buffer.add_string buf e;
        Buffer.add_char buf '\n')
      (events node);
    List.iter (emit (depth + 1)) (children node)
  in
  List.iter (emit 0) (roots t);
  Buffer.contents buf

let to_json ?(timings = true) t =
  let rec node_json node =
    let field name v acc = if v = 0 then acc else (name, Json.Num (float_of_int v)) :: acc in
    let fields =
      []
      |> fun acc ->
      (match children node with
      | [] -> acc
      | kids -> [ ("children", Json.Arr (List.map node_json kids)) ])
      |> fun acc ->
      (match events node with
      | [] -> acc
      | evs -> ("events", Json.Arr (List.map (fun e -> Json.Str e) evs)) :: acc)
      |> field "early_abandon" node.node_early_abandon
      |> field "survivors" node.node_survivors
      |> field "candidates" node.node_candidates
      |> field "pages" node.node_pages
      |> field "rows_out" node.node_rows_out
      |> field "rows_in" node.node_rows_in
      |> fun acc ->
      (if timings then
         ("time_ms", Json.Num (Int64.to_float node.node_wall_ns /. 1e6)) :: acc
       else acc)
      |> fun acc ->
      (if node.node_detail <> "" then ("detail", Json.Str node.node_detail) :: acc
       else acc)
    in
    Json.Obj (("op", Json.Str node.node_name) :: fields)
  in
  Json.Obj
    (("event", Json.Str "simq.profile")
     :: ("v", Json.Num 1.)
     ::
     (if t.trace_id <> 0 then
        [ ("trace_id", Json.Num (float_of_int t.trace_id)) ]
      else [])
    @ [ ("roots", Json.Arr (List.map node_json (roots t))) ])
