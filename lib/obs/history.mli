(** Bounded telemetry history: a ring of periodic registry snapshots
    and the windowed-rate view computed over the newest pair.

    Lifetime counters answer "how much ever"; an operator watching a
    live daemon needs "how much {e now}". A history holds up to
    [capacity] timestamped {!Metrics.snapshot}s, taken by a
    fixed-interval sampler thread (and on demand by {!document}, so
    one probe always has a fresh endpoint), and derives windowed
    rates from the deltas between the two newest: qps and shed rate
    from the serve counters, shard pruning rate, per-level sketch
    filter counts, pool imbalance, and latency quantiles read off the
    [simq_timer_seconds] log-scale bucket deltas.

    Reading never writes a metric: the sampler calls
    {!Metrics.snapshot} (an atomic merge-on-read) and stores the
    result, so its presence leaves every merged counter total
    identical at any domain count. A history that is never created or
    started costs nothing — there are no global hooks. *)

type t
(** One history: bounded snapshot ring plus the optional sampler
    thread. All operations are thread-safe. *)

val create :
  ?registry:Metrics.registry -> ?capacity:int -> ?interval_s:float -> unit -> t
(** [create ()] is an empty history over the default registry.
    [capacity] (default [120]; [Invalid_argument] if [< 2]) bounds
    the ring; [interval_s] (default [1.]; [Invalid_argument] unless
    finite positive) is the sampler period. *)

val interval_s : t -> float

val capacity : t -> int

val sample : t -> unit
(** Takes one snapshot now, evicting the oldest at capacity. *)

val start : t -> unit
(** Takes an immediate snapshot and spawns the sampler thread, which
    adds one every [interval_s] until {!stop}. Idempotent while
    running. *)

val stop : t -> unit
(** Stops and joins the sampler thread (within one sleep tick, not
    one interval). Idempotent; the ring survives. *)

val length : t -> int
(** Snapshots currently held. *)

(** The windowed view between the two newest snapshots. Counter
    deltas are clamped at [0] (a registry reset between samples
    surfaces as an empty window, never a negative rate). *)
type window = {
  dt_s : float;  (** seconds between the two snapshots *)
  queries : int;  (** served-query delta ([simq_serve_queries_total]) *)
  shed : int;  (** load-shed delta ([simq_serve_shed_total]) *)
  qps : float;  (** [queries /. dt_s] *)
  shed_rate : float;  (** [shed / (queries + shed)]; [0.] when idle *)
  shard_fanout : int;  (** executed-shard delta *)
  shard_pruned : int;  (** catalogue-pruned shard delta *)
  prune_rate : float;
      (** pruned share of planned shards,
          [pruned / (fanout + pruned)] *)
  sketch_filtered : (string * int) list;
      (** per-level ([coarse], [segment]) sketch dismissal deltas *)
  sketch_filter_rate : float;
      (** sketch-dismissed share of the window's k-index candidates *)
  pool_imbalance : float;
      (** [simq_pool_imbalance_ratio] at the newest snapshot *)
  latency_count : int;  (** timer observations inside the window *)
  p50_s : float;
      (** median windowed timer latency — the upper bound of the
          first [simq_timer_seconds] bucket whose cumulative delta
          count reaches the quantile; [0.] when the window saw no
          observation *)
  p99_s : float;
}

val window : t -> window option
(** The view over the two newest snapshots; [None] with fewer than
    two. *)

val window_json : window -> Json.t
(** The nested ["window"] object of the history document. *)

val to_json : t -> Json.t
(** The self-describing history document:
    [{"event":"simq.history","v":1,"samples":…,"capacity":…,
    "interval_ms":…,"window":…}] with ["window"] [null] while fewer
    than two snapshots exist. *)

val document : t -> string
(** {!sample} then {!to_json}, rendered — the [GET /history] provider
    for {!Serve.start}, so a probe polling faster than the sampler
    still sees a fresh window. *)
