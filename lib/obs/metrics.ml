let shards = 64 (* power of two; indexed by domain id *)
let buckets = 64

let shard_index () = (Domain.self () :> int) land (shards - 1)

let env_enabled () =
  match Sys.getenv_opt "SIMQ_METRICS" with
  | None | Some ("" | "0" | "false" | "off") -> false
  | Some _ -> true

let enabled = Atomic.make (env_enabled ())
let on () = Atomic.get enabled
let set_enabled b = Atomic.set enabled b

let with_enabled b f =
  let prev = Atomic.get enabled in
  Atomic.set enabled b;
  Fun.protect ~finally:(fun () -> Atomic.set enabled prev) f

(* --- name and label validation --------------------------------------------

   The Prometheus text format only admits metric names matching
   [a-zA-Z_:][a-zA-Z0-9_:]* and label names matching
   [a-zA-Z_][a-zA-Z0-9_]*; anything else would render an exposition no
   scraper can parse, so registration rejects it outright. Label
   values may hold any byte — they are escaped at exposition time. *)

let name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let valid_metric_name s =
  s <> ""
  && (name_start s.[0] || s.[0] = ':')
  && String.for_all
       (fun c -> name_start c || c = ':' || (c >= '0' && c <= '9'))
       s

let valid_label_name s =
  s <> ""
  && name_start s.[0]
  && String.for_all (fun c -> name_start c || (c >= '0' && c <= '9')) s

let check_name name =
  if not (valid_metric_name name) then
    invalid_arg
      (Printf.sprintf
         "Simq_obs.Metrics: invalid metric name %S (expected \
          [a-zA-Z_:][a-zA-Z0-9_:]*)"
         name)

(* Canonicalise a label set: sorted by label name, names validated,
   duplicates and the reserved histogram label [le] rejected. *)
let check_labels labels =
  let labels =
    List.sort (fun (a, _) (b, _) -> String.compare a b) labels
  in
  let rec check = function
    | [] -> ()
    | (k, _) :: rest ->
      if not (valid_label_name k) then
        invalid_arg
          (Printf.sprintf
             "Simq_obs.Metrics: invalid label name %S (expected \
              [a-zA-Z_][a-zA-Z0-9_]*)"
             k);
      if String.equal k "le" then
        invalid_arg "Simq_obs.Metrics: label name \"le\" is reserved";
      (match rest with
      | (k', _) :: _ when String.equal k k' ->
        invalid_arg
          (Printf.sprintf "Simq_obs.Metrics: duplicate label name %S" k)
      | _ -> ());
      check rest
  in
  check labels;
  labels

(* Backslash, double quote and newline escaped as in the Prometheus
   text format. *)
let escape_label_value v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* HELP text escaping: only backslash and line feed. *)
let escape_help v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* The rendered {k="v",...} suffix (empty for no labels); doubles as
   the registration identity of a child within its family. *)
let render_labels = function
  | [] -> ""
  | labels ->
    Printf.sprintf "{%s}"
      (String.concat ","
         (List.map
            (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
            labels))

type counter = {
  c_name : string;
  c_labels : (string * string) list;
  c_help : string;
  cells : int Atomic.t array; (* one per shard *)
}

type gauge = {
  g_name : string;
  g_labels : (string * string) list;
  g_help : string;
  cell : float Atomic.t;
}

type histogram = {
  h_name : string;
  h_labels : (string * string) list;
  h_help : string;
  counts : int Atomic.t array array; (* shards x buckets *)
  sums : float Atomic.t array; (* one per shard, CAS-updated *)
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type registry = {
  mutex : Mutex.t;
  mutable metrics : metric list; (* registration order *)
  by_key : (string, metric) Hashtbl.t; (* name + rendered labels *)
  kind_by_name : (string, string) Hashtbl.t; (* family name -> kind tag *)
}

let create_registry () =
  {
    mutex = Mutex.create ();
    metrics = [];
    by_key = Hashtbl.create 32;
    kind_by_name = Hashtbl.create 32;
  }

let default = create_registry ()

let metric_name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let metric_labels = function
  | Counter c -> c.c_labels
  | Gauge g -> g.g_labels
  | Histogram h -> h.h_labels

let register registry name labels kind make expect =
  check_name name;
  let labels = check_labels labels in
  let key = name ^ render_labels labels in
  Mutex.lock registry.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry.mutex)
    (fun () ->
      (* Every child of a family must share the family's kind, whether
         or not it shares the exact label set. *)
      (match Hashtbl.find_opt registry.kind_by_name name with
      | Some k when not (String.equal k kind) ->
        invalid_arg
          (Printf.sprintf
             "Simq_obs.Metrics: %S already registered as a different metric \
              kind"
             name)
      | _ -> ());
      match Hashtbl.find_opt registry.by_key key with
      | Some existing -> (
          match expect existing with
          | Some v -> v
          | None -> assert false (* kind_by_name check above rules this out *))
      | None ->
          let m, v = make labels in
          Hashtbl.add registry.by_key key m;
          Hashtbl.replace registry.kind_by_name name kind;
          registry.metrics <- m :: registry.metrics;
          v)

let counter ?(registry = default) ?(help = "") ?(labels = []) name =
  register registry name labels "counter"
    (fun labels ->
      let c =
        {
          c_name = name;
          c_labels = labels;
          c_help = help;
          cells = Array.init shards (fun _ -> Atomic.make 0);
        }
      in
      (Counter c, c))
    (function Counter c -> Some c | _ -> None)

let gauge ?(registry = default) ?(help = "") ?(labels = []) name =
  register registry name labels "gauge"
    (fun labels ->
      let g =
        { g_name = name; g_labels = labels; g_help = help; cell = Atomic.make 0. }
      in
      (Gauge g, g))
    (function Gauge g -> Some g | _ -> None)

let histogram ?(registry = default) ?(help = "") ?(labels = []) name =
  register registry name labels "histogram"
    (fun labels ->
      let h =
        {
          h_name = name;
          h_labels = labels;
          h_help = help;
          counts =
            Array.init shards (fun _ ->
                Array.init buckets (fun _ -> Atomic.make 0));
          sums = Array.init shards (fun _ -> Atomic.make 0.);
        }
      in
      (Histogram h, h))
    (function Histogram h -> Some h | _ -> None)

(* Bucket [i] holds values with upper bound [2 ^ (i - 30)]: bucket 0
   is everything <= ~1e-9 (and all v <= 0), bucket 63 everything that
   frexp maps past 2^33, i.e. the range covers nanosecond timings up
   to count-scale observations in the billions. *)
let bucket_upper i = Float.ldexp 1.0 (i - 30)

let bucket_of v =
  if v <= 0. || Float.is_nan v then 0
  else
    let _, e = Float.frexp v in
    (* v in (2^(e-1), 2^e]; frexp gives v = m * 2^e with m in [0.5,1) *)
    let i = e + 30 in
    if i < 0 then 0 else if i >= buckets then buckets - 1 else i

let incr c =
  if on () then ignore (Atomic.fetch_and_add c.cells.(shard_index ()) 1)

let add c n =
  if on () && n <> 0 then
    ignore (Atomic.fetch_and_add c.cells.(shard_index ()) n)

let set_gauge g v = if on () then Atomic.set g.cell v

let atomic_float_add cell v =
  let rec go () =
    let cur = Atomic.get cell in
    if not (Atomic.compare_and_set cell cur (cur +. v)) then go ()
  in
  go ()

let observe h v =
  if on () then begin
    let s = shard_index () in
    ignore (Atomic.fetch_and_add h.counts.(s).(bucket_of v) 1);
    atomic_float_add h.sums.(s) v
  end

let counter_total c =
  Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.cells

let gauge_value g = Atomic.get g.cell

let histogram_buckets h =
  let merged = Array.make buckets 0 in
  Array.iter
    (fun shard ->
      Array.iteri (fun i cell -> merged.(i) <- merged.(i) + Atomic.get cell) shard)
    h.counts;
  merged

let histogram_count h =
  Array.fold_left ( + ) 0 (histogram_buckets h)

let histogram_sum h =
  Array.fold_left (fun acc cell -> acc +. Atomic.get cell) 0. h.sums

type sample =
  | Counter_sample of {
      name : string;
      labels : (string * string) list;
      help : string;
      total : int;
    }
  | Gauge_sample of {
      name : string;
      labels : (string * string) list;
      help : string;
      value : float;
    }
  | Histogram_sample of {
      name : string;
      labels : (string * string) list;
      help : string;
      buckets : int array;
      sum : float;
      count : int;
    }

let sample_name = function
  | Counter_sample { name; _ }
  | Gauge_sample { name; _ }
  | Histogram_sample { name; _ } ->
      name

let sample_labels = function
  | Counter_sample { labels; _ }
  | Gauge_sample { labels; _ }
  | Histogram_sample { labels; _ } ->
      labels

let sample_of_metric = function
  | Counter c ->
      Counter_sample
        {
          name = c.c_name;
          labels = c.c_labels;
          help = c.c_help;
          total = counter_total c;
        }
  | Gauge g ->
      Gauge_sample
        {
          name = g.g_name;
          labels = g.g_labels;
          help = g.g_help;
          value = gauge_value g;
        }
  | Histogram h ->
      let buckets = histogram_buckets h in
      Histogram_sample
        {
          name = h.h_name;
          labels = h.h_labels;
          help = h.h_help;
          buckets;
          sum = histogram_sum h;
          count = Array.fold_left ( + ) 0 buckets;
        }

(* Sort by family name, then rendered label set, so children of one
   family are adjacent (HELP/TYPE emitted once per family) and the
   exposition is stable. *)
let metrics_sorted registry =
  Mutex.lock registry.mutex;
  let ms = registry.metrics in
  Mutex.unlock registry.mutex;
  List.sort
    (fun a b ->
      match String.compare (metric_name a) (metric_name b) with
      | 0 ->
        String.compare
          (render_labels (metric_labels a))
          (render_labels (metric_labels b))
      | c -> c)
    ms

let snapshot ?(registry = default) () =
  List.map sample_of_metric (metrics_sorted registry)

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let exposition ?(registry = default) () =
  let buf = Buffer.create 4096 in
  (* HELP/TYPE once per family; children (distinct label sets) follow
     their family's first sample in sorted order. *)
  let last_family = ref "" in
  let header name help kind =
    if name <> !last_family then begin
      last_family := name;
      if help <> "" then
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  (* A histogram bucket line carries the child's labels plus [le]. *)
  let with_le labels le =
    render_labels labels
    |> fun rendered ->
    if rendered = "" then Printf.sprintf "{le=\"%s\"}" le
    else
      Printf.sprintf "%s,le=\"%s\"}"
        (String.sub rendered 0 (String.length rendered - 1))
        le
  in
  List.iter
    (fun sample ->
      match sample with
      | Counter_sample { name; labels; help; total } ->
          header name help "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" name (render_labels labels) total)
      | Gauge_sample { name; labels; help; value } ->
          header name help "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" name (render_labels labels)
               (float_repr value))
      | Histogram_sample { name; labels; help; buckets; sum; count } ->
          header name help "histogram";
          let first_nonempty =
            let rec go i =
              if i >= Array.length buckets then Array.length buckets
              else if buckets.(i) > 0 then i
              else go (i + 1)
            in
            go 0
          in
          let cumulative = ref 0 in
          Array.iteri
            (fun i n ->
              cumulative := !cumulative + n;
              if i >= first_nonempty then
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d\n" name
                     (with_le labels (float_repr (bucket_upper i)))
                     !cumulative))
            buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" name (with_le labels "+Inf")
               count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" name (render_labels labels)
               (float_repr sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" name (render_labels labels)
               count))
    (snapshot ~registry ());
  Buffer.contents buf

let reset ?(registry = default) () =
  List.iter
    (function
      | Counter c -> Array.iter (fun cell -> Atomic.set cell 0) c.cells
      | Gauge g -> Atomic.set g.cell 0.
      | Histogram h ->
          Array.iter (Array.iter (fun cell -> Atomic.set cell 0)) h.counts;
          Array.iter (fun cell -> Atomic.set cell 0.) h.sums)
    (metrics_sorted registry)

(* --- state persistence ----------------------------------------------------

   A registry snapshot as one JSON document, so calibration gauges
   (and any other metric) can survive a process restart. Loading
   writes cells directly — deliberately bypassing the [on ()] gate,
   because restoring state is not an instrumented event — and lands
   counter/histogram contents in shard 0, which the merge-on-read
   accessors fold in like any other shard. *)

let sample_json sample =
  let labels_json labels =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)
  in
  match sample with
  | Counter_sample { name; labels; help; total } ->
      Json.Obj
        [
          ("kind", Json.Str "counter");
          ("name", Json.Str name);
          ("labels", labels_json labels);
          ("help", Json.Str help);
          ("total", Json.Num (float_of_int total));
        ]
  | Gauge_sample { name; labels; help; value } ->
      Json.Obj
        [
          ("kind", Json.Str "gauge");
          ("name", Json.Str name);
          ("labels", labels_json labels);
          ("help", Json.Str help);
          ("value", Json.Num value);
        ]
  | Histogram_sample { name; labels; help; buckets; sum; count = _ } ->
      Json.Obj
        [
          ("kind", Json.Str "histogram");
          ("name", Json.Str name);
          ("labels", labels_json labels);
          ("help", Json.Str help);
          ( "buckets",
            Json.Arr
              (Array.to_list
                 (Array.map (fun n -> Json.Num (float_of_int n)) buckets)) );
          ("sum", Json.Num sum);
        ]

let save_state ?(registry = default) path =
  let doc =
    Json.Obj
      [
        ("event", Json.Str "simq.metrics-state");
        ("v", Json.Num 1.);
        ("metrics", Json.Arr (List.map sample_json (snapshot ~registry ())));
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string doc);
      output_char oc '\n')

let load_state ?(registry = default) path =
  let bad fmt = Printf.ksprintf (fun m -> failwith (path ^ ": " ^ m)) fmt in
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let doc =
    match Json.parse text with Ok v -> v | Error msg -> bad "%s" msg
  in
  (match Json.member "event" doc with
  | Some (Json.Str "simq.metrics-state") -> ()
  | _ -> bad "not a simq.metrics-state document");
  let entries =
    match Json.member "metrics" doc with
    | Some (Json.Arr l) -> l
    | _ -> bad "missing metrics array"
  in
  List.iter
    (fun m ->
      let str field =
        match Json.member field m with
        | Some (Json.Str s) -> s
        | _ -> bad "metric entry missing string field %S" field
      in
      let num field =
        match Json.member field m with
        | Some (Json.Num v) -> v
        | _ -> bad "metric entry missing numeric field %S" field
      in
      let labels =
        match Json.member "labels" m with
        | Some (Json.Obj fields) ->
            List.map
              (fun (k, v) ->
                match v with
                | Json.Str s -> (k, s)
                | _ -> bad "label %S is not a string" k)
              fields
        | _ -> []
      in
      let help = match Json.member "help" m with
        | Some (Json.Str s) -> s
        | _ -> ""
      in
      let name = str "name" in
      let registered make =
        try make () with Invalid_argument msg -> bad "%s" msg
      in
      match str "kind" with
      | "counter" ->
          let c = registered (fun () -> counter ~registry ~help ~labels name) in
          let total = int_of_float (num "total") in
          if total <> 0 then ignore (Atomic.fetch_and_add c.cells.(0) total)
      | "gauge" ->
          let g = registered (fun () -> gauge ~registry ~help ~labels name) in
          Atomic.set g.cell (num "value")
      | "histogram" ->
          let h =
            registered (fun () -> histogram ~registry ~help ~labels name)
          in
          (match Json.member "buckets" m with
          | Some (Json.Arr bs) when List.length bs = buckets ->
              List.iteri
                (fun i b ->
                  match b with
                  | Json.Num v when v <> 0. ->
                      ignore
                        (Atomic.fetch_and_add h.counts.(0).(i)
                           (int_of_float v))
                  | _ -> ())
                bs
          | _ -> bad "histogram %S has no %d-bucket array" name buckets);
          atomic_float_add h.sums.(0) (num "sum")
      | kind -> bad "unknown metric kind %S" kind)
    entries
