let shards = 64 (* power of two; indexed by domain id *)
let buckets = 64

let shard_index () = (Domain.self () :> int) land (shards - 1)

let env_enabled () =
  match Sys.getenv_opt "SIMQ_METRICS" with
  | None | Some ("" | "0" | "false" | "off") -> false
  | Some _ -> true

let enabled = Atomic.make (env_enabled ())
let on () = Atomic.get enabled
let set_enabled b = Atomic.set enabled b

let with_enabled b f =
  let prev = Atomic.get enabled in
  Atomic.set enabled b;
  Fun.protect ~finally:(fun () -> Atomic.set enabled prev) f

type counter = {
  c_name : string;
  c_help : string;
  cells : int Atomic.t array; (* one per shard *)
}

type gauge = { g_name : string; g_help : string; cell : float Atomic.t }

type histogram = {
  h_name : string;
  h_help : string;
  counts : int Atomic.t array array; (* shards x buckets *)
  sums : float Atomic.t array; (* one per shard, CAS-updated *)
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type registry = {
  mutex : Mutex.t;
  mutable metrics : metric list; (* registration order *)
  by_name : (string, metric) Hashtbl.t;
}

let create_registry () =
  { mutex = Mutex.create (); metrics = []; by_name = Hashtbl.create 32 }

let default = create_registry ()

let metric_name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let register registry name make expect =
  Mutex.lock registry.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry.mutex)
    (fun () ->
      match Hashtbl.find_opt registry.by_name name with
      | Some existing -> (
          match expect existing with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Simq_obs.Metrics: %S already registered as a different \
                    metric kind"
                   name))
      | None ->
          let m, v = make () in
          Hashtbl.add registry.by_name name m;
          registry.metrics <- m :: registry.metrics;
          v)

let counter ?(registry = default) ?(help = "") name =
  register registry name
    (fun () ->
      let c =
        {
          c_name = name;
          c_help = help;
          cells = Array.init shards (fun _ -> Atomic.make 0);
        }
      in
      (Counter c, c))
    (function Counter c -> Some c | _ -> None)

let gauge ?(registry = default) ?(help = "") name =
  register registry name
    (fun () ->
      let g = { g_name = name; g_help = help; cell = Atomic.make 0. } in
      (Gauge g, g))
    (function Gauge g -> Some g | _ -> None)

let histogram ?(registry = default) ?(help = "") name =
  register registry name
    (fun () ->
      let h =
        {
          h_name = name;
          h_help = help;
          counts =
            Array.init shards (fun _ ->
                Array.init buckets (fun _ -> Atomic.make 0));
          sums = Array.init shards (fun _ -> Atomic.make 0.);
        }
      in
      (Histogram h, h))
    (function Histogram h -> Some h | _ -> None)

(* Bucket [i] holds values with upper bound [2 ^ (i - 30)]: bucket 0
   is everything <= ~1e-9 (and all v <= 0), bucket 63 everything that
   frexp maps past 2^33, i.e. the range covers nanosecond timings up
   to count-scale observations in the billions. *)
let bucket_upper i = Float.ldexp 1.0 (i - 30)

let bucket_of v =
  if v <= 0. || Float.is_nan v then 0
  else
    let _, e = Float.frexp v in
    (* v in (2^(e-1), 2^e]; frexp gives v = m * 2^e with m in [0.5,1) *)
    let i = e + 30 in
    if i < 0 then 0 else if i >= buckets then buckets - 1 else i

let incr c =
  if on () then ignore (Atomic.fetch_and_add c.cells.(shard_index ()) 1)

let add c n =
  if on () && n <> 0 then
    ignore (Atomic.fetch_and_add c.cells.(shard_index ()) n)

let set_gauge g v = if on () then Atomic.set g.cell v

let atomic_float_add cell v =
  let rec go () =
    let cur = Atomic.get cell in
    if not (Atomic.compare_and_set cell cur (cur +. v)) then go ()
  in
  go ()

let observe h v =
  if on () then begin
    let s = shard_index () in
    ignore (Atomic.fetch_and_add h.counts.(s).(bucket_of v) 1);
    atomic_float_add h.sums.(s) v
  end

let counter_total c =
  Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.cells

let gauge_value g = Atomic.get g.cell

let histogram_buckets h =
  let merged = Array.make buckets 0 in
  Array.iter
    (fun shard ->
      Array.iteri (fun i cell -> merged.(i) <- merged.(i) + Atomic.get cell) shard)
    h.counts;
  merged

let histogram_count h =
  Array.fold_left ( + ) 0 (histogram_buckets h)

let histogram_sum h =
  Array.fold_left (fun acc cell -> acc +. Atomic.get cell) 0. h.sums

type sample =
  | Counter_sample of { name : string; help : string; total : int }
  | Gauge_sample of { name : string; help : string; value : float }
  | Histogram_sample of {
      name : string;
      help : string;
      buckets : int array;
      sum : float;
      count : int;
    }

let sample_name = function
  | Counter_sample { name; _ }
  | Gauge_sample { name; _ }
  | Histogram_sample { name; _ } ->
      name

let sample_of_metric = function
  | Counter c ->
      Counter_sample
        { name = c.c_name; help = c.c_help; total = counter_total c }
  | Gauge g ->
      Gauge_sample { name = g.g_name; help = g.g_help; value = gauge_value g }
  | Histogram h ->
      let buckets = histogram_buckets h in
      Histogram_sample
        {
          name = h.h_name;
          help = h.h_help;
          buckets;
          sum = histogram_sum h;
          count = Array.fold_left ( + ) 0 buckets;
        }

let metrics_sorted registry =
  Mutex.lock registry.mutex;
  let ms = registry.metrics in
  Mutex.unlock registry.mutex;
  List.sort (fun a b -> String.compare (metric_name a) (metric_name b)) ms

let snapshot ?(registry = default) () =
  List.map sample_of_metric (metrics_sorted registry)

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let exposition ?(registry = default) () =
  let buf = Buffer.create 4096 in
  let header name help kind =
    if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun sample ->
      match sample with
      | Counter_sample { name; help; total } ->
          header name help "counter";
          Buffer.add_string buf (Printf.sprintf "%s %d\n" name total)
      | Gauge_sample { name; help; value } ->
          header name help "gauge";
          Buffer.add_string buf (Printf.sprintf "%s %s\n" name (float_repr value))
      | Histogram_sample { name; help; buckets; sum; count } ->
          header name help "histogram";
          let first_nonempty =
            let rec go i =
              if i >= Array.length buckets then Array.length buckets
              else if buckets.(i) > 0 then i
              else go (i + 1)
            in
            go 0
          in
          let cumulative = ref 0 in
          Array.iteri
            (fun i n ->
              cumulative := !cumulative + n;
              if i >= first_nonempty then
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name
                     (float_repr (bucket_upper i))
                     !cumulative))
            buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" name (float_repr sum));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name count))
    (snapshot ~registry ());
  Buffer.contents buf

let reset ?(registry = default) () =
  List.iter
    (function
      | Counter c -> Array.iter (fun cell -> Atomic.set cell 0) c.cells
      | Gauge g -> Atomic.set g.cell 0.
      | Histogram h ->
          Array.iter (Array.iter (fun cell -> Atomic.set cell 0)) h.counts;
          Array.iter (fun cell -> Atomic.set cell 0.) h.sums)
    (metrics_sorted registry)
