(** Per-query operator-tree profiling — the [EXPLAIN ANALYZE] layer.

    A profile is an accumulator attached to one query. The executors
    ({!Simq_tsindex.Seqscan}, {!Simq_tsindex.Kindex},
    {!Simq_tsindex.Join}, {!Simq_tsindex.Subseq} and
    {!Simq_tsindex.Planner}) take it as an optional [?profile]
    argument and, when present, build a tree of operator nodes —
    planner node, access-path node, scan/index/join/subseq leaves —
    each recording wall time (via {!Clock}), rows in/out, pages
    touched, candidates and survivors, early-abandon hits, and
    degradation/retry events.

    Every mutator here takes the {e option}: [enter None _] is [None]
    and the recorders are no-ops on [None], so the disabled path costs
    one immediate function call per site and allocates nothing. When a
    pool is involved, nodes are recorded only on the coordinating
    domain after the deterministic chunk-order merge, so the tree
    {e structure and counters} are identical at every domain count —
    only the timing fields vary (strip them with [~timings:false] to
    compare).

    Profiling is presentation only: it never changes an answer and
    never touches the metrics registry. *)

type t
(** One query's profile: a forest of operator nodes plus the stack of
    currently open ones. Not thread-safe — record from the
    coordinating domain only. *)

type node
(** One operator node. *)

val create : unit -> t
(** A fresh, empty profile (unstamped: {!trace_id} is [0]). *)

val set_trace : t -> int -> unit
(** Stamps the request id of the query this profile belongs to (see
    {!Trace.new_request_id}). Stamped centrally by the serve engine;
    [0] means unstamped. *)

val trace_id : t -> int
(** The stamped request id, [0] when none. *)

(** {1 Recording} *)

val enter : t option -> string -> node option
(** [enter profile name] opens a node named [name] under the innermost
    open node (or as a new root) and starts its clock. [None] in gives
    [None] out. *)

val leave : t option -> node option -> unit
(** [leave profile node] closes [node], fixing its wall time. Nodes
    left open below it (by an exception path) are closed with it, so
    a single [Fun.protect]ed [leave] per operator is enough. Closing a
    node that is not on the open stack is a no-op. *)

val set_detail : node option -> string -> unit
(** A free-form annotation shown next to the name (plan choice,
    admission decision, epsilon…). Last write wins. *)

(** Counter recorders: each adds to the node's tally; no-ops on
    [None]. *)

val add_rows_in : node option -> int -> unit

val add_rows_out : node option -> int -> unit

val add_pages : node option -> int -> unit

val add_candidates : node option -> int -> unit

val add_survivors : node option -> int -> unit

val add_early_abandon : node option -> int -> unit

val add_event : node option -> string -> unit
(** Appends a discrete event line (retry, degradation, typed error) to
    the node, in order. *)

(** {1 Reading} *)

val roots : t -> node list
(** Root nodes in creation order. *)

val children : node -> node list
(** Children in creation order. *)

val name : node -> string

val detail : node -> string

val wall_ns : node -> int64
(** Wall time between [enter] and [leave]; [0L] while still open. *)

val rows_in : node -> int

val rows_out : node -> int

val pages : node -> int

val candidates : node -> int

val survivors : node -> int

val early_abandon : node -> int

val events : node -> string list
(** Events in emission order. *)

val find : t -> string -> node option
(** First node with the given name, depth-first. *)

val well_formed : t -> bool
(** No node left open, every counter non-negative, and every node's
    wall time is at least the sum of its children's (the children run
    sequentially inside the parent's interval, so this holds exactly
    on a monotonic clock). *)

(** {1 Rendering} *)

val render : ?timings:bool -> t -> string
(** The indented [EXPLAIN ANALYZE]-style text tree. With
    [~timings:false] the [time=] fields are omitted, making output for
    a fixed seed and query byte-identical at every [--jobs] setting.
    Default [true]. *)

val to_json : ?timings:bool -> t -> Json.t
(** The same tree as a self-describing JSON object
    ([{"event":"simq.profile","v":1,"roots":[…]}]); zero-valued
    counters are omitted from each node. When the profile carries a
    request id (see {!set_trace}) the root object gains a
    ["trace_id"] member — the correlation key shared with the query's
    qlog line and Chrome trace spans. *)
