(* Bounded telemetry history: periodic registry snapshots and the
   windowed-rate view over the newest pair. See history.mli. *)

type snap = { at_s : float; samples : Metrics.sample list }

type t = {
  registry : Metrics.registry option;
  capacity : int;
  interval_s : float;
  mutex : Mutex.t;
  mutable snaps : snap list; (* newest first, length <= capacity *)
  mutable sampler : Thread.t option;
  stop_flag : bool Atomic.t;
}

let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let create ?registry ?(capacity = 120) ?(interval_s = 1.) () =
  if capacity < 2 then invalid_arg "History.create: capacity must be >= 2";
  if not (Float.is_finite interval_s) || interval_s <= 0. then
    invalid_arg "History.create: interval_s must be positive";
  {
    registry;
    capacity;
    interval_s;
    mutex = Mutex.create ();
    snaps = [];
    sampler = None;
    stop_flag = Atomic.make false;
  }

let interval_s t = t.interval_s
let capacity t = t.capacity

let take n l =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n l

let sample t =
  let samples = Metrics.snapshot ?registry:t.registry () in
  let s = { at_s = now_s (); samples } in
  Mutex.lock t.mutex;
  t.snaps <- take t.capacity (s :: t.snaps);
  Mutex.unlock t.mutex

let length t =
  Mutex.lock t.mutex;
  let n = List.length t.snaps in
  Mutex.unlock t.mutex;
  n

(* The sampler sleeps in short ticks so [stop] joins promptly even
   with a seconds-scale interval. *)
let tick_s = 0.05

let sampler_loop t =
  let rec wait remaining =
    if not (Atomic.get t.stop_flag) && remaining > 0. then begin
      Thread.delay (Float.min tick_s remaining);
      wait (remaining -. tick_s)
    end
  in
  while not (Atomic.get t.stop_flag) do
    wait t.interval_s;
    if not (Atomic.get t.stop_flag) then sample t
  done

let start t =
  match t.sampler with
  | Some _ -> ()
  | None ->
      Atomic.set t.stop_flag false;
      sample t;
      t.sampler <- Some (Thread.create sampler_loop t)

let stop t =
  match t.sampler with
  | None -> ()
  | Some thread ->
      Atomic.set t.stop_flag true;
      Thread.join thread;
      t.sampler <- None

(* ------------------------------------------------------------------ *)
(* The window over the newest snapshot pair                            *)

type window = {
  dt_s : float;
  queries : int;
  shed : int;
  qps : float;
  shed_rate : float;
  shard_fanout : int;
  shard_pruned : int;
  prune_rate : float;
  sketch_filtered : (string * int) list;
  sketch_filter_rate : float;
  pool_imbalance : float;
  latency_count : int;
  p50_s : float;
  p99_s : float;
}

let counter_total name samples =
  List.fold_left
    (fun acc s ->
      match s with
      | Metrics.Counter_sample { name = n; total; _ } when n = name ->
          acc + total
      | _ -> acc)
    0 samples

let counter_by_label name label samples =
  List.filter_map
    (function
      | Metrics.Counter_sample { name = n; labels; total; _ } when n = name ->
          Option.map (fun v -> (v, total)) (List.assoc_opt label labels)
      | _ -> None)
    samples

let gauge_value name samples =
  List.fold_left
    (fun acc s ->
      match s with
      | Metrics.Gauge_sample { name = n; value; _ } when n = name -> value
      | _ -> acc)
    0. samples

let histogram_buckets name samples =
  List.fold_left
    (fun acc s ->
      match s with
      | Metrics.Histogram_sample { name = n; buckets; _ } when n = name -> (
          match acc with
          | None -> Some (Array.copy buckets)
          | Some merged ->
              Array.iteri (fun i b -> merged.(i) <- merged.(i) + b) buckets;
              Some merged)
      | _ -> acc)
    None samples

(* Counters are monotone, so a negative delta only appears after a
   registry reset between samples; clamp rather than report it. *)
let delta a b = max 0 (b - a)

let ratio num den = if den <= 0 then 0. else float_of_int num /. float_of_int den

(* The q-quantile of the windowed timer observations, read off the
   log-scale bucket deltas: the upper bound of the first bucket whose
   cumulative delta count reaches q of the window's total. *)
let bucket_quantile ~before ~after q =
  match (before, after) with
  | Some b, Some a when Array.length b = Array.length a ->
      let n = Array.length a in
      let deltas = Array.init n (fun i -> delta b.(i) a.(i)) in
      let total = Array.fold_left ( + ) 0 deltas in
      if total = 0 then (0, 0.)
      else begin
        let target = q *. float_of_int total in
        let quantile = ref (Metrics.bucket_upper (n - 1)) in
        let cum = ref 0 in
        (try
           for i = 0 to n - 1 do
             cum := !cum + deltas.(i);
             if float_of_int !cum >= target then begin
               quantile := Metrics.bucket_upper i;
               raise Exit
             end
           done
         with Exit -> ());
        (total, !quantile)
      end
  | _ -> (0, 0.)

let window t =
  Mutex.lock t.mutex;
  let snaps = t.snaps in
  Mutex.unlock t.mutex;
  match snaps with
  | newest :: prev :: _ ->
      let c name = delta (counter_total name prev.samples)
          (counter_total name newest.samples)
      in
      let dt_s = newest.at_s -. prev.at_s in
      let queries = c "simq_serve_queries_total" in
      let shed = c "simq_serve_shed_total" in
      let shard_fanout = c "simq_shard_fanout_total" in
      let shard_pruned = c "simq_shard_pruned_total" in
      let filtered_before =
        counter_by_label "simq_sketch_filtered_total" "level" prev.samples
      in
      let sketch_filtered =
        List.map
          (fun (level, total) ->
            let base =
              Option.value ~default:0 (List.assoc_opt level filtered_before)
            in
            (level, delta base total))
          (counter_by_label "simq_sketch_filtered_total" "level" newest.samples)
      in
      let filtered_sum =
        List.fold_left (fun acc (_, d) -> acc + d) 0 sketch_filtered
      in
      let candidates = c "simq_kindex_candidates_total" in
      let latency_count, p50_s =
        bucket_quantile
          ~before:(histogram_buckets "simq_timer_seconds" prev.samples)
          ~after:(histogram_buckets "simq_timer_seconds" newest.samples)
          0.50
      in
      let _, p99_s =
        bucket_quantile
          ~before:(histogram_buckets "simq_timer_seconds" prev.samples)
          ~after:(histogram_buckets "simq_timer_seconds" newest.samples)
          0.99
      in
      Some
        {
          dt_s;
          queries;
          shed;
          qps = (if dt_s > 0. then float_of_int queries /. dt_s else 0.);
          shed_rate = ratio shed (queries + shed);
          shard_fanout;
          shard_pruned;
          prune_rate = ratio shard_pruned (shard_fanout + shard_pruned);
          sketch_filtered;
          sketch_filter_rate = ratio filtered_sum candidates;
          pool_imbalance = gauge_value "simq_pool_imbalance_ratio" newest.samples;
          latency_count;
          p50_s;
          p99_s;
        }
  | _ -> None

let window_json w =
  Json.Obj
    [
      ("dt_s", Json.Num w.dt_s);
      ("queries", Json.Num (float_of_int w.queries));
      ("shed", Json.Num (float_of_int w.shed));
      ("qps", Json.Num w.qps);
      ("shed_rate", Json.Num w.shed_rate);
      ( "shard",
        Json.Obj
          [
            ("fanout", Json.Num (float_of_int w.shard_fanout));
            ("pruned", Json.Num (float_of_int w.shard_pruned));
            ("prune_rate", Json.Num w.prune_rate);
          ] );
      ( "sketch",
        Json.Obj
          [
            ( "filtered",
              Json.Obj
                (List.map
                   (fun (level, d) -> (level, Json.Num (float_of_int d)))
                   w.sketch_filtered) );
            ("filter_rate", Json.Num w.sketch_filter_rate);
          ] );
      ("pool_imbalance", Json.Num w.pool_imbalance);
      ( "latency",
        Json.Obj
          [
            ("count", Json.Num (float_of_int w.latency_count));
            ("p50_ms", Json.Num (w.p50_s *. 1000.));
            ("p99_ms", Json.Num (w.p99_s *. 1000.));
          ] );
    ]

let to_json t =
  Json.Obj
    [
      ("event", Json.Str "simq.history");
      ("v", Json.Num 1.);
      ("samples", Json.Num (float_of_int (length t)));
      ("capacity", Json.Num (float_of_int t.capacity));
      ("interval_ms", Json.Num (t.interval_s *. 1000.));
      ( "window",
        match window t with None -> Json.Null | Some w -> window_json w );
    ]

let document t =
  sample t;
  Json.to_string (to_json t)
