(** Sharded metrics registry: counters, gauges, log-scale histograms.

    Hot-path updates go to a per-domain shard selected from
    [Domain.self ()], so concurrent domains never contend on a lock;
    readers merge the shards on demand ({!snapshot}, {!exposition}).
    Every update is guarded by one branch on a global flag — with
    metrics disabled ({!on} [= false]) the cost of an instrumented
    call site is a single atomic load and conditional jump, mirroring
    the [Simq_fault] guard design.

    Determinism: counter totals and histogram bucket counts are sums
    of non-negative integer increments, so merged totals are identical
    across any [SIMQ_DOMAINS]/[--jobs] setting as long as the
    instrumented work itself is deterministic (which the Lemma 1
    parallel tests enforce). Histogram [sum]s are floating-point and
    merge in shard order, and gauges are last-write-wins, so neither
    is bit-deterministic under parallel execution; pool self-metrics
    (task counts, busy time) inherently depend on the chunking and are
    excluded from the cross-domain determinism guarantee.

    Metric names follow Prometheus conventions
    ([simq_<family>_<what>_total] for counters); registration is
    idempotent by name and label set, so a library module can register
    its metrics at initialisation time and every family appears in the
    exposition even when zero.

    Validity: metric names must match [[a-zA-Z_:][a-zA-Z0-9_:]*] and
    label names [[a-zA-Z_][a-zA-Z0-9_]*] — registration raises
    [Invalid_argument] otherwise, so an unscrapeable exposition can
    never be produced. Label {e values} may hold any bytes; backslash,
    double quote and newline are escaped in the exposition (and in
    [# HELP] text) per the text-format grammar. *)

(** {1 Global enable flag} *)

(** [on ()] is the current state of the global metrics flag. It
    starts enabled iff the [SIMQ_METRICS] environment variable is set
    to anything other than ["", "0", "false", "off"]. *)
val on : unit -> bool

val set_enabled : bool -> unit

(** [with_enabled b f] runs [f ()] with the flag forced to [b],
    restoring the previous state afterwards (even on exceptions). *)
val with_enabled : bool -> (unit -> 'a) -> 'a

(** {1 Registries} *)

type registry

(** The registry used when [?registry] is omitted; all of simq's
    built-in instrumentation lives here. *)
val default : registry

(** [create_registry ()] is a fresh empty registry (used in tests). *)
val create_registry : unit -> registry

(** {1 Metric kinds} *)

type counter
type gauge
type histogram

(** [counter name] registers (or retrieves, if [name] with the same
    [labels] is already registered) a monotonically increasing
    counter. [labels] (default none) distinguishes children of one
    family — e.g. [~labels:["decision", "reject"]] — and is
    canonicalised by label name. Raises [Invalid_argument] if [name]
    is registered as a different kind, if [name] or a label name is
    not a valid Prometheus identifier, on duplicate label names, or
    on the reserved label name ["le"]. *)
val counter :
  ?registry:registry ->
  ?help:string ->
  ?labels:(string * string) list ->
  string ->
  counter

(** [gauge name] registers a last-write-wins floating-point gauge
    (a single atomic cell, not sharded). Validation as {!counter}. *)
val gauge :
  ?registry:registry ->
  ?help:string ->
  ?labels:(string * string) list ->
  string ->
  gauge

(** [histogram name] registers a log-scale histogram: 64 buckets with
    upper bounds [2 ^ (i - 30)], covering roughly [1e-9 .. 8e9] —
    wide enough for seconds-scale timings and count-scale
    observations alike. Observations [<= 0] land in the first
    bucket. Validation as {!counter}. *)
val histogram :
  ?registry:registry ->
  ?help:string ->
  ?labels:(string * string) list ->
  string ->
  histogram

(** {1 Hot-path updates}

    All of these are no-ops (one branch) when [on () = false]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set_gauge : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {1 Reading}

    Readers merge all shards; they are safe to call concurrently with
    updates (values are atomic loads, so a snapshot taken mid-query
    is a consistent-enough monotonic view, exact once quiescent). *)

(** [counter_total c] is the merged total over all shards. *)
val counter_total : counter -> int

val gauge_value : gauge -> float

(** [histogram_count h] is the merged number of observations. *)
val histogram_count : histogram -> int

(** [histogram_sum h] is the merged sum of observed values. *)
val histogram_sum : histogram -> float

(** [histogram_buckets h] is the merged per-bucket (non-cumulative)
    counts, length 64. *)
val histogram_buckets : histogram -> int array

(** One merged metric value, for programmatic consumption. [labels]
    is the child's canonical (name-sorted) label set. *)
type sample =
  | Counter_sample of {
      name : string;
      labels : (string * string) list;
      help : string;
      total : int;
    }
  | Gauge_sample of {
      name : string;
      labels : (string * string) list;
      help : string;
      value : float;
    }
  | Histogram_sample of {
      name : string;
      labels : (string * string) list;
      help : string;
      buckets : int array;  (** non-cumulative, length 64 *)
      sum : float;
      count : int;
    }

val sample_name : sample -> string
val sample_labels : sample -> (string * string) list

(** [snapshot ()] merges every metric of the registry, sorted by
    family name then label set. The shape is stable: the same
    registrations yield the same list of names in the same order. *)
val snapshot : ?registry:registry -> unit -> sample list

(** [bucket_upper i] is the upper bound of histogram bucket [i],
    i.e. [2. ** float (i - 30)]. *)
val bucket_upper : int -> float

(** [exposition ()] renders the registry in Prometheus text format:
    [# HELP]/[# TYPE] headers once per family, counters as
    [name{labels} total], histograms as cumulative
    [name_bucket{labels,le=...}] lines (empty leading buckets
    elided) plus [_sum]/[_count]. Label values are escaped per the
    format grammar. Metrics are sorted by family name then label set,
    so the output is stable for a given registry state. *)
val exposition : ?registry:registry -> unit -> string

(** [reset ()] zeroes every shard of every metric in the registry
    (registrations survive). Used by tests and by the experiment
    harness between runs. *)
val reset : ?registry:registry -> unit -> unit

(** {1 State persistence} *)

(** [save_state path] writes the full merged snapshot of the registry
    (counters, gauges, histogram buckets and sums, with labels and
    help text) as one self-describing JSON document — the mechanism
    behind the [--metrics-state] flag, which keeps the planner's
    calibration gauges ([simq_planner_*]) alive across process
    restarts so admission cost models do not start cold. *)
val save_state : ?registry:registry -> string -> unit

(** [load_state path] reads a {!save_state} document back: unseen
    metrics are registered from their recorded kind/labels/help,
    counter totals and histogram contents are {e added} to the
    registry, gauges are set. Loading bypasses the {!on} gate — it
    restores state rather than instrumenting work — and is
    independent of the domain count. Raises [Failure] on malformed
    content (with the path in the message) and [Sys_error] on I/O
    errors. *)
val load_state : ?registry:registry -> string -> unit
