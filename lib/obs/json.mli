(** A minimal JSON value type with an emitter and a parser.

    The observability layer speaks JSON in several places — the query
    log ({!Qlog}), the profile export ({!Profile.to_json}), the
    metrics-state snapshot ({!Metrics.save_state}) and the offline
    aggregator behind [simq qlog-top] — and the toolchain here has no
    JSON package, so this module is the single shared implementation.
    It covers exactly the JSON we emit: finite numbers, UTF-8 strings
    with standard escapes, arrays and objects. It is not a streaming
    parser and is not meant for untrusted multi-megabyte inputs. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** [to_string v] renders [v] on one line with no trailing newline.
    Integral numbers print without a decimal point; non-finite numbers
    (which valid JSON cannot carry) render as [null]. Strings escape
    the double quote, the backslash and control characters. *)
val to_string : t -> string

(** [parse s] parses one JSON value, requiring that nothing but
    whitespace follows it. Accepts the standard escape sequences
    including [\uXXXX] (decoded to UTF-8). Returns [Error msg] with a
    character offset on malformed input. *)
val parse : string -> (t, string) result

(** [member name v] is the value bound to [name] when [v] is an object
    containing it. *)
val member : string -> t -> t option

(** Projections: [Some] payload when the value has the matching
    constructor. [number] accepts only [Num]; [string_of] only [Str]. *)

val number : t -> float option

val string_of : t -> string option

val arr : t -> t list option

val obj : t -> (string * t) list option
