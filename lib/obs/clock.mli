(** The single monotonic time source of the observability layer.

    [Simq_parallel.Pool] busy-time accounting, {!Trace} spans and
    [Simq_report.Timer] all read this clock, so every timing the
    system emits — [SIMQ_CSV_DIR] tables, [--metrics] histograms,
    [--trace] timelines — comes from one source and cannot
    disagree. *)

(** [now_ns ()] is the current [CLOCK_MONOTONIC] reading in
    nanoseconds (arbitrary epoch). *)
val now_ns : unit -> int64

(** [elapsed_s t0] is the seconds elapsed since the earlier reading
    [t0]. *)
val elapsed_s : int64 -> float
