let enabled = Atomic.make false
let on () = Atomic.get enabled
let set_enabled b = Atomic.set enabled b

(* --- request-scoped correlation ------------------------------------------

   Request ids are allocated unconditionally (one atomic increment per
   query) so qlog/profile correlation works even when span tracing is
   off. The ambient id lives in two places: a per-domain DLS cell for
   the domain that owns the request, and an optional process-global
   cell for the serialized-execution case (the serve daemon's engine
   mutex, the CLI's single query) where pool worker domains fanning
   out on behalf of the request must see it too. *)

let next_request = Atomic.make 1
let new_request_id () = Atomic.fetch_and_add next_request 1
let global_request = Atomic.make 0
let request_key = Domain.DLS.new_key (fun () -> ref 0)

let current_request () =
  let local = Domain.DLS.get request_key in
  if !local <> 0 then !local else Atomic.get global_request

let with_request ?(global = true) id f =
  let local = Domain.DLS.get request_key in
  let saved_local = !local in
  let saved_global = if global then Atomic.get global_request else 0 in
  local := id;
  if global then Atomic.set global_request id;
  Fun.protect
    ~finally:(fun () ->
      local := saved_local;
      if global then Atomic.set global_request saved_global)
    f

(* Base timestamp so exported [ts] values start near zero. *)
let epoch_ns = Monotonic_clock.now ()

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts_ns : int64; (* start, relative to [epoch_ns] *)
  ev_dur_ns : int64;
  ev_tid : int;
  ev_id : int;
  ev_parent : int; (* 0 = root *)
  ev_trace : int; (* 0 = no ambient request *)
}

type buffer = {
  tid : int;
  mutable events : event list; (* newest first *)
  mutable open_stack : int list; (* ids of open spans, innermost first *)
}

let registry_mutex = Mutex.create ()
let buffers : buffer list ref = ref []
let next_id = Atomic.make 1

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b =
        { tid = (Domain.self () :> int); events = []; open_stack = [] }
      in
      Mutex.lock registry_mutex;
      buffers := b :: !buffers;
      Mutex.unlock registry_mutex;
      b)

type span =
  | Disabled
  | Active of {
      id : int;
      parent : int;
      name : string;
      cat : string;
      start_ns : int64;
      trace : int;
      buf : buffer;
    }

let start ?(cat = "simq") name =
  if not (on ()) then Disabled
  else begin
    let buf = Domain.DLS.get buffer_key in
    let id = Atomic.fetch_and_add next_id 1 in
    let parent = match buf.open_stack with [] -> 0 | p :: _ -> p in
    buf.open_stack <- id :: buf.open_stack;
    Active
      {
        id;
        parent;
        name;
        cat;
        start_ns = Monotonic_clock.now ();
        trace = current_request ();
        buf;
      }
  end

let finish = function
  | Disabled -> ()
  | Active { id; parent; name; cat; start_ns; trace; buf } ->
      let now = Monotonic_clock.now () in
      (* Pop this span (tolerate out-of-order finishes by filtering). *)
      (buf.open_stack <-
         (match buf.open_stack with
         | top :: rest when top = id -> rest
         | stack -> List.filter (fun i -> i <> id) stack));
      buf.events <-
        {
          ev_name = name;
          ev_cat = cat;
          ev_ts_ns = Int64.sub start_ns epoch_ns;
          ev_dur_ns = Int64.sub now start_ns;
          ev_tid = buf.tid;
          ev_id = id;
          ev_parent = parent;
          ev_trace = trace;
        }
        :: buf.events

let with_span ?cat name f =
  let s = start ?cat name in
  Fun.protect ~finally:(fun () -> finish s) f

let all_buffers () =
  Mutex.lock registry_mutex;
  let bs = !buffers in
  Mutex.unlock registry_mutex;
  bs

let open_spans () =
  List.fold_left (fun acc b -> acc + List.length b.open_stack) 0 (all_buffers ())

let event_count () =
  List.fold_left (fun acc b -> acc + List.length b.events) 0 (all_buffers ())

let event_traces () =
  List.concat_map (fun b -> List.map (fun e -> e.ev_trace) b.events)
    (all_buffers ())

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let us_of_ns ns = Int64.to_float ns /. 1e3

let export oc =
  let events =
    List.concat_map (fun b -> b.events) (all_buffers ())
    |> List.sort (fun a b -> Int64.compare a.ev_ts_ns b.ev_ts_ns)
  in
  output_string oc "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then output_string oc ",";
      Printf.fprintf oc
        "\n\
         {\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"id\":%d,\"parent\":%d,\"trace\":%d}}"
        (json_escape e.ev_name) (json_escape e.ev_cat) (us_of_ns e.ev_ts_ns)
        (us_of_ns e.ev_dur_ns) e.ev_tid e.ev_id e.ev_parent e.ev_trace)
    events;
  output_string oc "\n],\"displayTimeUnit\":\"ms\"}\n"

let export_file path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> export oc)

let reset () =
  List.iter
    (fun b ->
      b.events <- [];
      b.open_stack <- [])
    (all_buffers ());
  Atomic.set next_id 1
