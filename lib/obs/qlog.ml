(* Structured query log. See qlog.mli. *)

type t = {
  mutable oc : out_channel option;
  (* [oc = None] with [closed = false] means a rotation just renamed
     the live file away: the replacement is opened lazily by the next
     written line, so a log whose last line triggered rotation leaves
     only [path.1] on disk. *)
  mutable closed : bool;
  path : string;
  sample : int;
  slow_ms : float option;
  max_bytes : int option;
  mutable seen : int;
  mutable written : int;
  mutex : Mutex.t;
}

type shard_counts = { fanout : int; pruned : int; degraded : int }

type entry = {
  spec : string;
  digest : string;
  decision : string option;
  path : string option;
  deltas : (string * int) list;
  duration_s : float;
  outcome : string;
  exit_code : int;
  domains : int;
  shards : shard_counts option;
  trace_id : int option;
}

let open_log path =
  open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path

let create ?(sample = 1) ?slow_ms ?max_bytes path =
  if sample < 1 then invalid_arg "Qlog.create: sample must be >= 1";
  (match slow_ms with
  | Some t when t < 0. -> invalid_arg "Qlog.create: slow_ms must be >= 0"
  | _ -> ());
  (match max_bytes with
  | Some b when b < 1 -> invalid_arg "Qlog.create: max_bytes must be >= 1"
  | _ -> ());
  let oc = open_log path in
  {
    oc = Some oc;
    closed = false;
    path;
    sample;
    slow_ms;
    max_bytes;
    seen = 0;
    written = 0;
    mutex = Mutex.create ();
  }

let render_line ~seq entry =
  let opt = function None -> Json.Null | Some s -> Json.Str s in
  Json.to_string
    (Json.Obj
       [
         ("event", Json.Str "simq.qlog");
         ("v", Json.Num 1.);
         ("seq", Json.Num (float_of_int seq));
         ("spec", Json.Str entry.spec);
         ("digest", Json.Str entry.digest);
         ( "trace_id",
           match entry.trace_id with
           | None -> Json.Null
           | Some id -> Json.Num (float_of_int id) );
         ("decision", opt entry.decision);
         ("path", opt entry.path);
         ("duration_ms", Json.Num (entry.duration_s *. 1000.));
         ("outcome", Json.Str entry.outcome);
         ("exit", Json.Num (float_of_int entry.exit_code));
         ("domains", Json.Num (float_of_int entry.domains));
         ( "shards",
           match entry.shards with
           | None -> Json.Null
           | Some s ->
               Json.Obj
                 [
                   ("fanout", Json.Num (float_of_int s.fanout));
                   ("pruned", Json.Num (float_of_int s.pruned));
                   ("degraded", Json.Num (float_of_int s.degraded));
                 ] );
         ( "deltas",
           Json.Obj
             (List.map
                (fun (name, d) -> (name, Json.Num (float_of_int d)))
                entry.deltas) );
       ])

let log t entry =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if not t.closed then begin
        let seq = t.seen in
        t.seen <- t.seen + 1;
        let sampled = seq mod t.sample = 0 in
        let slow =
          match t.slow_ms with
          | Some threshold -> entry.duration_s *. 1000. >= threshold
          | None -> false
        in
        if sampled || slow then (
          let oc =
            match t.oc with
            | Some oc -> oc
            | None ->
                let oc = open_log t.path in
                t.oc <- Some oc;
                oc
          in
          output_string oc (render_line ~seq entry);
          output_char oc '\n';
          flush oc;
          t.written <- t.written + 1;
          (* Size rotation: once the live file reaches the limit it is
             renamed to [path.1] (replacing any previous rotation).
             The fresh file is opened lazily by the next written line —
             a rotation on the final pre-drain line leaves only
             [path.1], a state {!rotated_chain} must accept. [seen]
             keeps counting, so the sampling decision stays a pure
             function of the query sequence number across rotations. *)
          match t.max_bytes with
          | Some limit
            when LargeFile.out_channel_length oc >= Int64.of_int limit ->
              close_out oc;
              Sys.rename t.path (t.path ^ ".1");
              t.oc <- None
          | _ -> ())
      end)

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      t.closed <- true;
      match t.oc with
      | None -> ()
      | Some oc ->
          t.oc <- None;
          close_out oc)

let entries_seen t = t.seen
let lines_written t = t.written

(* The rotation counterpart of the reader side: [path.1] (when it
   exists) holds the lines written immediately before those of [path],
   so reading the pair in this order replays a contiguous tail of the
   line stream. Every pair state is legal — in particular a rotation
   that fired on the final pre-drain line leaves [path.1] with no live
   [path] at all (the replacement file is only created by the next
   written line). *)
let rotated_chain path =
  let prev = path ^ ".1" in
  match (Sys.file_exists prev, Sys.file_exists path) with
  | true, true -> [ prev; path ]
  | true, false -> [ prev ]
  | false, true -> [ path ]
  | false, false -> []

(* ------------------------------------------------------------------ *)
(* Ambient log                                                         *)

let ambient_log : t option Atomic.t = Atomic.make None
let install log = Atomic.set ambient_log log
let ambient () = Atomic.get ambient_log

(* ------------------------------------------------------------------ *)
(* Building entries                                                    *)

let sample_key name labels =
  match labels with
  | [] -> name
  | labels ->
      name ^ "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
      ^ "}"

let counter_deltas ~before ~after =
  let totals samples =
    List.filter_map
      (function
        | Metrics.Counter_sample { name; labels; total; _ } ->
            Some (sample_key name labels, total)
        | _ -> None)
      samples
  in
  let before = totals before in
  List.filter_map
    (fun (key, total) ->
      let base = Option.value ~default:0 (List.assoc_opt key before) in
      let delta = total - base in
      if delta > 0 then Some (key, delta) else None)
    (totals after)

(* ------------------------------------------------------------------ *)
(* Offline aggregation                                                 *)

type aggregate = {
  entries : int;
  total_duration_s : float;
  by_path : (string * int) list;
  by_decision : (string * int) list;
  by_outcome : (string * int) list;
  by_fanout : (int * int) list;
  by_trace : (int * float) list;
  top_by_duration : (int * string * float * int) list;
  top_by_pages : (int * string * int) list;
}

let pages_of_deltas json =
  match Json.member "deltas" json with
  | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (key, v) ->
          let family =
            match String.index_opt key '{' with
            | Some i -> String.sub key 0 i
            | None -> key
          in
          if
            family = "simq_buffer_pool_hits_total"
            || family = "simq_buffer_pool_misses_total"
          then acc + int_of_float (Option.value ~default:0. (Json.number v))
          else acc)
        0 fields
  | _ -> 0

let aggregate ?(top = 5) lines =
  let bump key table =
    match List.assoc_opt key !table with
    | Some n -> table := (key, n + 1) :: List.remove_assoc key !table
    | None -> table := (key, 1) :: !table
  in
  let entries = ref 0 in
  let total = ref 0. in
  let paths = ref [] and decisions = ref [] and outcomes = ref [] in
  let fanouts = ref [] in
  let traces = ref [] in
  let by_duration = ref [] and by_pages = ref [] in
  List.iter
    (fun json ->
      match Json.member "event" json with
      | Some (Json.Str "simq.qlog") ->
          incr entries;
          let str field fallback =
            match Json.member field json with
            | Some (Json.Str s) -> s
            | _ -> fallback
          in
          let num field =
            match Json.member field json with
            | Some (Json.Num v) -> v
            | _ -> 0.
          in
          let seq = int_of_float (num "seq") in
          let spec = str "spec" "?" in
          let duration_s = num "duration_ms" /. 1000. in
          total := !total +. duration_s;
          bump (str "path" "-") paths;
          bump (str "decision" "-") decisions;
          bump (str "outcome" "?") outcomes;
          (* Only sharded queries carry a fanout; unsharded lines have
             a null "shards" member and stay out of the breakdown. *)
          (match Json.member "shards" json with
          | Some (Json.Obj _ as s) -> (
              match Json.member "fanout" s with
              | Some (Json.Num f) -> bump (int_of_float f) fanouts
              | _ -> ())
          | _ -> ());
          (* Lines predating the trace_id field (or with it null) stay
             out of the per-trace breakdown; their trace prints as 0
             in the duration table. *)
          let trace =
            match Json.member "trace_id" json with
            | Some (Json.Num id) -> int_of_float id
            | _ -> 0
          in
          if trace <> 0 then (
            let prior =
              Option.value ~default:0. (List.assoc_opt trace !traces)
            in
            traces :=
              (trace, prior +. duration_s) :: List.remove_assoc trace !traces);
          by_duration := (seq, spec, duration_s, trace) :: !by_duration;
          by_pages := (seq, spec, pages_of_deltas json) :: !by_pages
      | _ -> ())
    lines;
  let descending_counts table =
    List.sort
      (fun (ka, a) (kb, b) ->
        match compare b a with 0 -> compare ka kb | c -> c)
      !table
  in
  let take n l =
    let rec go n = function
      | x :: rest when n > 0 -> x :: go (n - 1) rest
      | _ -> []
    in
    go n l
  in
  {
    entries = !entries;
    total_duration_s = !total;
    by_path = descending_counts paths;
    by_decision = descending_counts decisions;
    by_outcome = descending_counts outcomes;
    by_fanout = List.sort (fun (a, _) (b, _) -> compare a b) !fanouts;
    by_trace =
      take top
        (List.sort
           (fun (ta, a) (tb, b) ->
             match compare b a with 0 -> compare ta tb | c -> c)
           !traces);
    top_by_duration =
      take top
        (List.sort
           (fun (_, _, a, _) (_, _, b, _) -> compare b a)
           (List.rev !by_duration));
    top_by_pages =
      take top
        (List.sort (fun (_, _, a) (_, _, b) -> compare b a) (List.rev !by_pages));
  }
