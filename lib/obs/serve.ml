type t = {
  sock : Unix.file_descr;
  port : int;
  thread : Thread.t;
  stopped : bool Atomic.t;
}

(* A peer that disappears mid-write must surface as [Unix_error
   EPIPE] — which every write path here either swallows or lets the
   caller map — not as SIGPIPE, whose default disposition kills the
   whole process. Forced once, on first use of either socket path. *)
let ignore_sigpipe =
  lazy
    (try
       ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore : Sys.signal_behavior)
     with Invalid_argument _ -> ())

(* The request path from the head's request line ([GET <path>
   HTTP/1.1]); ["/metrics"] when the head is empty or unparseable, so
   a scraper that writes nothing still gets the exposition. *)
let request_path head =
  let line =
    match String.index_opt head '\n' with
    | Some i -> String.sub head 0 i
    | None -> head
  in
  match String.split_on_char ' ' (String.trim line) with
  | _ :: path :: _ when String.length path > 0 && path.[0] = '/' -> path
  | _ -> "/metrics"

(* One request: read the client's header block (best effort — a
   scraper that writes nothing still gets an answer), dispatch on the
   request path, then write the whole response. Bodies are rendered
   per request so every scrape sees the current merged totals. *)
let answer registry history client =
  let head =
    try
      let buf = Bytes.create 1024 in
      (* Read until the blank line ending the request head, a closed
         peer, or a full buffer — whichever comes first. *)
      let rec drain seen =
        if seen >= Bytes.length buf then seen
        else begin
          let n = Unix.read client buf seen (Bytes.length buf - seen) in
          if n <= 0 then seen
          else begin
            let seen = seen + n in
            let head = Bytes.sub_string buf 0 seen in
            let has_blank_line =
              let rec go i =
                i + 3 < String.length head
                && (String.sub head i 4 = "\r\n\r\n"
                   || String.sub head i 2 = "\n\n"
                   || go (i + 1))
              in
              go 0
            in
            if has_blank_line then seen else drain seen
          end
        end
      in
      let seen = drain 0 in
      Bytes.sub_string buf 0 seen
    with Unix.Unix_error _ -> ""
  in
  let status, content_type, body =
    match request_path head with
    | "/history" -> (
        match history with
        | Some document ->
            ("200 OK", "application/json; charset=utf-8", document () ^ "\n")
        | None ->
            ( "404 Not Found",
              "text/plain; charset=utf-8",
              "no history on this endpoint\n" ))
    | _ ->
        ( "200 OK",
          "text/plain; version=0.0.4; charset=utf-8",
          Metrics.exposition ~registry () )
  in
  let response =
    Printf.sprintf
      "HTTP/1.1 %s\r\n\
       Content-Type: %s\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n\
       %s"
      status content_type (String.length body) body
  in
  let n = String.length response in
  let rec write_all off =
    if off < n then
      let written =
        Unix.write_substring client response off (n - off)
      in
      if written > 0 then write_all (off + written)
  in
  try write_all 0 with Unix.Unix_error _ -> ()

(* Each connection gets its own answering thread, so a slow (or
   silent) scraper never blocks a concurrent one — two overlapping
   scrapes each get a complete response. *)
let serve_loop sock stopped registry history =
  let rec loop () =
    match Unix.accept sock with
    | client, _ ->
      ignore
        (Thread.create
           (fun () ->
             Fun.protect
               ~finally:(fun () ->
                 try Unix.close client with Unix.Unix_error _ -> ())
               (fun () -> answer registry history client))
           ()
          : Thread.t);
      if not (Atomic.get stopped) then loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if not (Atomic.get stopped) then loop ()
    | exception Unix.Unix_error _ ->
      (* The listener was closed (by [stop]) or is unusable: exit. *)
      ()
  in
  loop ()

let start ?(registry = Metrics.default) ?history ~port () =
  Lazy.force ignore_sigpipe;
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen sock 16
   with
  | () -> ()
  | exception e ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let stopped = Atomic.make false in
  let thread =
    Thread.create (fun () -> serve_loop sock stopped registry history) ()
  in
  { sock; port; thread; stopped }

let port t = t.port

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    (* Closing the listener fails the blocking [accept] in the serving
       thread, which then observes [stopped] and exits. *)
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    Thread.join t.thread
  end

let with_server ?registry ?history ~port f =
  let t = start ?registry ?history ~port () in
  Fun.protect ~finally:(fun () -> stop t) (fun () -> f t)

(* A socket whose connect, reads and writes all give up after
   [timeout] seconds (SO_RCVTIMEO/SO_SNDTIMEO; on Linux the send
   timeout also bounds the blocking connect). A timed-out call raises
   [Unix_error] with [EAGAIN]/[EWOULDBLOCK] or [EINPROGRESS] — the
   same exception family as any other connection failure, so callers
   that already map [Unix_error] to a one-line error need nothing
   new. *)
let timed_socket ?timeout () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match timeout with
  | None -> ()
  | Some t when t > 0. ->
    (try
       Unix.setsockopt_float sock Unix.SO_RCVTIMEO t;
       Unix.setsockopt_float sock Unix.SO_SNDTIMEO t
     with Unix.Unix_error _ -> ())
  | Some t ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    invalid_arg (Printf.sprintf "Simq_obs.Serve: timeout %g must be > 0" t));
  sock

let scrape ?(host = "127.0.0.1") ?timeout ?(path = "/metrics") ~port () =
  Lazy.force ignore_sigpipe;
  let sock = timed_socket ?timeout () in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      let request =
        Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s\r\n\r\n" path host
      in
      let n = String.length request in
      let rec write_all off =
        if off < n then
          write_all (off + Unix.write_substring sock request off (n - off))
      in
      write_all 0;
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec read_all () =
        let n = Unix.read sock chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          read_all ()
        end
      in
      read_all ();
      let response = Buffer.contents buf in
      (* Split the head from the body at the first blank line. *)
      let rec find_body i =
        if i + 3 < String.length response then
          if String.sub response i 4 = "\r\n\r\n" then Some (i + 4)
          else if String.sub response i 2 = "\n\n" then Some (i + 2)
          else find_body (i + 1)
        else None
      in
      match find_body 0 with
      | Some body_start ->
        String.sub response body_start (String.length response - body_start)
      | None -> failwith "Simq_obs.Serve.scrape: malformed HTTP response")
