type t = {
  sock : Unix.file_descr;
  port : int;
  thread : Thread.t;
  stopped : bool Atomic.t;
}

(* A peer that disappears mid-write must surface as [Unix_error
   EPIPE] — which every write path here either swallows or lets the
   caller map — not as SIGPIPE, whose default disposition kills the
   whole process. Forced once, on first use of either socket path. *)
let ignore_sigpipe =
  lazy
    (try
       ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore : Sys.signal_behavior)
     with Invalid_argument _ -> ())

(* One request: drain the client's header block (best effort — a
   scraper that writes nothing still gets an answer), then write the
   whole response. The body is rendered per request so every scrape
   sees the current merged totals. *)
let answer registry client =
  (try
     let buf = Bytes.create 1024 in
     (* Read until the blank line ending the request head, a closed
        peer, or a full buffer — whichever comes first. *)
     let rec drain seen =
       if seen < Bytes.length buf then begin
         let n = Unix.read client buf seen (Bytes.length buf - seen) in
         if n > 0 then begin
           let seen = seen + n in
           let head = Bytes.sub_string buf 0 seen in
           let has_blank_line =
             let rec go i =
               i + 3 < String.length head
               && (String.sub head i 4 = "\r\n\r\n"
                  || String.sub head i 2 = "\n\n"
                  || go (i + 1))
             in
             go 0
           in
           if not has_blank_line then drain seen
         end
       end
     in
     drain 0
   with Unix.Unix_error _ -> ());
  let body = Metrics.exposition ~registry () in
  let response =
    Printf.sprintf
      "HTTP/1.1 200 OK\r\n\
       Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n\
       %s"
      (String.length body) body
  in
  let n = String.length response in
  let rec write_all off =
    if off < n then
      let written =
        Unix.write_substring client response off (n - off)
      in
      if written > 0 then write_all (off + written)
  in
  try write_all 0 with Unix.Unix_error _ -> ()

let serve_loop sock stopped registry =
  let rec loop () =
    match Unix.accept sock with
    | client, _ ->
      Fun.protect
        ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
        (fun () -> answer registry client);
      if not (Atomic.get stopped) then loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if not (Atomic.get stopped) then loop ()
    | exception Unix.Unix_error _ ->
      (* The listener was closed (by [stop]) or is unusable: exit. *)
      ()
  in
  loop ()

let start ?(registry = Metrics.default) ~port () =
  Lazy.force ignore_sigpipe;
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen sock 16
   with
  | () -> ()
  | exception e ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let stopped = Atomic.make false in
  let thread = Thread.create (fun () -> serve_loop sock stopped registry) () in
  { sock; port; thread; stopped }

let port t = t.port

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    (* Closing the listener fails the blocking [accept] in the serving
       thread, which then observes [stopped] and exits. *)
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    Thread.join t.thread
  end

let with_server ?registry ~port f =
  let t = start ?registry ~port () in
  Fun.protect ~finally:(fun () -> stop t) (fun () -> f t)

(* A socket whose connect, reads and writes all give up after
   [timeout] seconds (SO_RCVTIMEO/SO_SNDTIMEO; on Linux the send
   timeout also bounds the blocking connect). A timed-out call raises
   [Unix_error] with [EAGAIN]/[EWOULDBLOCK] or [EINPROGRESS] — the
   same exception family as any other connection failure, so callers
   that already map [Unix_error] to a one-line error need nothing
   new. *)
let timed_socket ?timeout () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match timeout with
  | None -> ()
  | Some t when t > 0. ->
    (try
       Unix.setsockopt_float sock Unix.SO_RCVTIMEO t;
       Unix.setsockopt_float sock Unix.SO_SNDTIMEO t
     with Unix.Unix_error _ -> ())
  | Some t ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    invalid_arg (Printf.sprintf "Simq_obs.Serve: timeout %g must be > 0" t));
  sock

let scrape ?(host = "127.0.0.1") ?timeout ~port () =
  Lazy.force ignore_sigpipe;
  let sock = timed_socket ?timeout () in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      let request =
        Printf.sprintf "GET /metrics HTTP/1.1\r\nHost: %s\r\n\r\n" host
      in
      let n = String.length request in
      let rec write_all off =
        if off < n then
          write_all (off + Unix.write_substring sock request off (n - off))
      in
      write_all 0;
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec read_all () =
        let n = Unix.read sock chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          read_all ()
        end
      in
      read_all ();
      let response = Buffer.contents buf in
      (* Split the head from the body at the first blank line. *)
      let rec find_body i =
        if i + 3 < String.length response then
          if String.sub response i 4 = "\r\n\r\n" then Some (i + 4)
          else if String.sub response i 2 = "\n\n" then Some (i + 2)
          else find_body (i + 1)
        else None
      in
      match find_body 0 with
      | Some body_start ->
        String.sub response body_start (String.length response - body_start)
      | None -> failwith "Simq_obs.Serve.scrape: malformed HTTP response")
