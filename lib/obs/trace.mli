(** Span tracing with per-domain buffers and Chrome trace-event export.

    A span is a named begin/end interval on the monotonic clock
    (via [bechamel.monotonic_clock], [CLOCK_MONOTONIC] under the
    hood). Spans opened while another span of the same domain is
    still open nest under it; each domain records into its own
    buffer, so tracing never takes a lock on the hot path. The whole
    subsystem is guarded by a global flag ({!on}) — disabled, a span
    site costs one atomic load and branch and allocates nothing.

    {!export} merges every domain's buffer into Chrome trace-event
    JSON (the [chrome://tracing] / Perfetto format): one ["ph":"X"]
    complete event per finished span, with the domain id as [tid] and
    span/parent ids in [args], so a query's
    plan → index descent → postfilter → merge timeline is inspectable
    in any trace viewer. *)

(** [on ()] is the current state of the tracing flag (default
    off; the [--trace FILE] CLI flag turns it on). *)
val on : unit -> bool

val set_enabled : bool -> unit

(** {1 Request-scoped correlation}

    A request id correlates every telemetry record of one query —
    trace spans ([args.trace] in the Chrome export), the profile tree
    root and the qlog line — across domains and shards, even with
    concurrent connections. Ids are allocated unconditionally (one
    atomic increment), independent of the span-tracing flag. *)

(** [new_request_id ()] allocates the next process-unique request id
    (ids start at 1; [0] always means "no request"). *)
val new_request_id : unit -> int

(** [current_request ()] is the ambient request id seen by the
    calling domain: its own domain-local binding when one is set, the
    process-global binding otherwise, [0] when neither is. *)
val current_request : unit -> int

(** [with_request ?global id f] runs [f ()] with [id] as the ambient
    request id, restoring the previous bindings even if [f] raises.
    With [global] (the default) the id is also published
    process-wide, so pool worker domains fanning out on behalf of the
    request observe it — correct whenever request execution is
    serialized (the serve daemon's engine mutex, a CLI query).
    [~global:false] binds only the calling domain — the inter-query
    batch executor's per-task binding, where concurrent tasks each
    own one domain. *)
val with_request : ?global:bool -> int -> (unit -> 'a) -> 'a

(** An open span. [Disabled] (when tracing is off) makes
    {!finish} a no-op. *)
type span

(** [start ?cat name] opens a span on the calling domain, nested
    under the domain's innermost open span. [cat] is the Chrome
    trace category (default ["simq"]). *)
val start : ?cat:string -> string -> span

(** [finish s] closes the span and records one trace event into the
    calling domain's buffer. Spans must be finished on the domain
    that started them and in LIFO order (which [with_span]
    guarantees). *)
val finish : span -> unit

(** [with_span name f] runs [f ()] inside a span, finishing it even
    if [f] raises. *)
val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a

(** [open_spans ()] is the number of started-but-unfinished spans
    across all domains; [0] once every [with_span] has unwound (the
    "no dangling spans" test). *)
val open_spans : unit -> int

(** [event_count ()] is the number of finished spans recorded so
    far. *)
val event_count : unit -> int

(** [event_traces ()] is the request id stamped on each finished
    span, in buffer order ([0] for spans recorded outside any
    request) — the correlation hook for tests. *)
val event_traces : unit -> int list

(** [export oc] writes the merged buffers as a Chrome trace-event
    JSON object ([{"traceEvents": [...]}]) to [oc]. Events are
    sorted by start time. *)
val export : out_channel -> unit

(** [export_file path] is {!export} to a fresh file at [path]. *)
val export_file : string -> unit

(** [reset ()] drops all recorded events and open-span bookkeeping
    (used by tests). *)
val reset : unit -> unit
