(** Span tracing with per-domain buffers and Chrome trace-event export.

    A span is a named begin/end interval on the monotonic clock
    (via [bechamel.monotonic_clock], [CLOCK_MONOTONIC] under the
    hood). Spans opened while another span of the same domain is
    still open nest under it; each domain records into its own
    buffer, so tracing never takes a lock on the hot path. The whole
    subsystem is guarded by a global flag ({!on}) — disabled, a span
    site costs one atomic load and branch and allocates nothing.

    {!export} merges every domain's buffer into Chrome trace-event
    JSON (the [chrome://tracing] / Perfetto format): one ["ph":"X"]
    complete event per finished span, with the domain id as [tid] and
    span/parent ids in [args], so a query's
    plan → index descent → postfilter → merge timeline is inspectable
    in any trace viewer. *)

(** [on ()] is the current state of the tracing flag (default
    off; the [--trace FILE] CLI flag turns it on). *)
val on : unit -> bool

val set_enabled : bool -> unit

(** An open span. [Disabled] (when tracing is off) makes
    {!finish} a no-op. *)
type span

(** [start ?cat name] opens a span on the calling domain, nested
    under the domain's innermost open span. [cat] is the Chrome
    trace category (default ["simq"]). *)
val start : ?cat:string -> string -> span

(** [finish s] closes the span and records one trace event into the
    calling domain's buffer. Spans must be finished on the domain
    that started them and in LIFO order (which [with_span]
    guarantees). *)
val finish : span -> unit

(** [with_span name f] runs [f ()] inside a span, finishing it even
    if [f] raises. *)
val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a

(** [open_spans ()] is the number of started-but-unfinished spans
    across all domains; [0] once every [with_span] has unwound (the
    "no dangling spans" test). *)
val open_spans : unit -> int

(** [event_count ()] is the number of finished spans recorded so
    far. *)
val event_count : unit -> int

(** [export oc] writes the merged buffers as a Chrome trace-event
    JSON object ([{"traceEvents": [...]}]) to [oc]. Events are
    sorted by start time. *)
val export : out_channel -> unit

(** [export_file path] is {!export} to a fresh file at [path]. *)
val export_file : string -> unit

(** [reset ()] drops all recorded events and open-span bookkeeping
    (used by tests). *)
val reset : unit -> unit
