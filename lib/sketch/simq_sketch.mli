(** Multi-resolution sketch filtering for similarity queries.

    A sketch is a tiny per-series summary whose distance to the query
    sketch {e lower-bounds} the true (normal-form) distance, so
    dismissing a candidate whose sketch distance already exceeds the
    range can never lose an answer — the funnel preserves the Lemma 1
    guarantee of no false dismissals while the exact postfilter only
    touches the survivors. Two resolutions are kept per series:

    - {b coarse}: the partial frequency-domain distance over the first
      few DFT coefficients and their conjugate mirrors (the
      high-energy ends of the spectrum the k-index itself is built
      on), valid for every length-preserving transformation because
      the stretch acts coefficient-wise;
    - {b segment}: a piecewise-constant summary — per-segment means of
      the normal form — whose length-weighted mean differences
      lower-bound the euclidean distance by Cauchy–Schwarz. Identity
      queries only, where data and query sides share the time axis.

    Time-warp queries change the series length, so no sketch level
    applies and {!funnel} returns [None] — the query runs exactly as
    without a sketch. *)

type t

type config = {
  coarse : int;
      (** DFT coefficients taken from {e each} end of the spectrum for
          the coarse level (so up to [2 * coarse] terms). Must be
          >= 1. *)
  segments : int;
      (** segment count of the piecewise-constant level (capped at the
          series length). Must be >= 1. *)
}

(** [{ coarse = 2; segments = 8 }]. *)
val default : config

(** [create ?config dataset] precomputes the segment sketches of every
    entry in [dataset]. Coarse sketches need no extra storage — they
    read the spectra the dataset already holds. Entries appended to
    the dataset later are sketched on the fly. Raises
    [Invalid_argument] on a non-positive [config] field. *)
val create : ?config:config -> Simq_tsindex.Dataset.t -> t

val config : t -> config

(** [spec_levels spec] is the number of funnel levels available under
    [spec]: 0 for a warp, 2 for the identity, 1 for the other
    length-preserving transformations. Feed it to the admission cost
    model ([sketch_levels]). *)
val spec_levels : Simq_tsindex.Spec.t -> int

(** [funnel t ~spec ~query] is the candidate prefilter for one
    prepared query, coarse level first, or [None] when [spec] supports
    no sketch. Each level's bound is a lower bound on the exact
    postfilter distance (including the slack needed to absorb
    last-ulp rounding), so {!Simq_tsindex.Kindex} may dismiss on it
    without breaking exact-mode parity. Dismissals are counted in the
    [simq_sketch_filtered_total{level}] metric family. *)
val funnel :
  t ->
  spec:Simq_tsindex.Spec.t ->
  query:Simq_tsindex.Dataset.entry ->
  Simq_tsindex.Kindex.prefilter option

(** [nn_bound t ~spec ~query] is the strongest per-entry lower bound
    (the max over the available levels), or [None] when [spec]
    supports no sketch. Feed it to
    {!Simq_tsindex.Kindex.nearest}[ ~sketch] to defer exact distance
    refinement in the nearest-neighbour traversal. *)
val nn_bound :
  t ->
  spec:Simq_tsindex.Spec.t ->
  query:Simq_tsindex.Dataset.entry ->
  (Simq_tsindex.Dataset.entry -> float) option
