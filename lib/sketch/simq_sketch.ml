module Cpx = Simq_dsp.Cpx
module Dataset = Simq_tsindex.Dataset
module Spec = Simq_tsindex.Spec
module Kindex = Simq_tsindex.Kindex
module Metrics = Simq_obs.Metrics

let m_filtered_coarse =
  Metrics.counter ~help:"Candidates dismissed by the sketch funnel, by level"
    ~labels:[ ("level", "coarse") ]
    "simq_sketch_filtered_total"

let m_filtered_segment =
  Metrics.counter ~help:"Candidates dismissed by the sketch funnel, by level"
    ~labels:[ ("level", "segment") ]
    "simq_sketch_filtered_total"

type config = { coarse : int; segments : int }

let default = { coarse = 2; segments = 8 }

type t = {
  dataset : Dataset.t;
  config : config;
  (* Segment means of the normal forms present at build time, indexed
     by entry id. Entries inserted later fall off the end and are
     sketched on the fly — no mutation, so concurrent traversals never
     race on the table. *)
  segmeans : float array array;
}

(* Both-ends coarse frequency set: {1..c} and their conjugate mirrors
   {n-c..n-1}, deduplicated and clamped inside [1, n-1] (coefficient 0
   of a normal form is always 0 on both sides). For real series the
   mirror of f carries the conjugate coefficient, so taking both
   halves doubles the captured energy without reading more of the
   record. *)
let coarse_freqs ~n ~coarse =
  let mem f l = List.exists (Int.equal f) l in
  let add acc f = if f >= 1 && f <= n - 1 && not (mem f acc) then f :: acc else acc in
  let acc = ref [] in
  for f = 1 to coarse do
    acc := add !acc f;
    acc := add !acc (n - f)
  done;
  Array.of_list (List.sort compare !acc)

(* Segment lengths of an n-point series cut into [segments] pieces:
   the first [n mod s] segments carry one extra point. Query and data
   sides must agree on the cut, so it is a pure function of (n, s). *)
let seg_lengths ~n ~segments =
  let s = Int.min segments n in
  let base = n / s and rem = n mod s in
  Array.init s (fun j -> base + if j < rem then 1 else 0)

let seg_means ~lengths series =
  let means = Array.make (Array.length lengths) 0. in
  let pos = ref 0 in
  Array.iteri
    (fun j len ->
      let acc = ref 0. in
      for i = !pos to !pos + len - 1 do
        acc := !acc +. series.(i)
      done;
      pos := !pos + len;
      means.(j) <- !acc /. float_of_int len)
    lengths;
  means

let create ?(config = default) dataset =
  if config.coarse < 1 then
    invalid_arg "Simq_sketch.create: coarse must be >= 1";
  if config.segments < 1 then
    invalid_arg "Simq_sketch.create: segments must be >= 1";
  let n = Dataset.series_length dataset in
  let lengths = seg_lengths ~n ~segments:config.segments in
  let segmeans =
    Array.map
      (fun (entry : Dataset.entry) -> seg_means ~lengths entry.Dataset.normal)
      (Dataset.entries dataset)
  in
  { dataset; config; segmeans }

let config t = t.config

(* Every bound is scaled by this slack so a last-ulp rounding
   difference between a partial sum and the exact distance (computed
   in a different order, or in the time domain via Parseval) can never
   push a bound above the true distance — a false dismissal would
   break the exact-mode parity of Lemma 1. *)
let slack = 1. -. 1e-9

let sq_norm z =
  let re = Cpx.re z and im = Cpx.im z in
  (re *. re) +. (im *. im)

(* Partial frequency-domain distance over the coarse set: for every
   length-preserving transformation the exact postfilter distance is
   sqrt (sum over all f of |s_f X_f - Q_f|^2) (by Parseval for the
   identity), and any subset of the non-negative terms lower-bounds
   it. *)
let coarse_bound ~freqs ~stretch ~(q : Dataset.entry) (entry : Dataset.entry) =
  let acc = ref 0. in
  Array.iter
    (fun f ->
      let x = entry.Dataset.spectrum.(f) in
      let x = match stretch with None -> x | Some s -> Cpx.mul s.(f) x in
      acc := !acc +. sq_norm (Cpx.sub x q.Dataset.spectrum.(f)))
    freqs;
  sqrt !acc *. slack

let entry_segmeans t ~lengths (entry : Dataset.entry) =
  if entry.Dataset.id < Array.length t.segmeans then
    t.segmeans.(entry.Dataset.id)
  else seg_means ~lengths entry.Dataset.normal

(* Piecewise-constant lower bound (identity only): by Cauchy-Schwarz,
   the squared distance inside segment j is at least
   L_j (mean_x(j) - mean_q(j))^2, so the weighted mean differences
   lower-bound the full euclidean distance on the normal forms. *)
let segment_bound t ~lengths ~qmeans (entry : Dataset.entry) =
  let means = entry_segmeans t ~lengths entry in
  let acc = ref 0. in
  Array.iteri
    (fun j len ->
      let d = means.(j) -. qmeans.(j) in
      acc := !acc +. (float_of_int len *. d *. d))
    lengths;
  sqrt !acc *. slack

let spec_levels = function
  | Spec.Warp _ -> 0
  | Spec.Identity -> 2
  | Spec.Reverse | Spec.Moving_average _ | Spec.Weighted_ma _ -> 1

let on_filtered levels level n =
  match levels.(level) with
  | "coarse" -> Metrics.add m_filtered_coarse n
  | _ -> Metrics.add m_filtered_segment n

(* The per-level bounds for one prepared query, or None when the
   transformation supports no sketch (the warp changes the length, so
   neither the spectra nor the segment cuts align). *)
let level_bounds t ~spec ~(query : Dataset.entry) =
  let n = Dataset.series_length t.dataset in
  match spec with
  | Spec.Warp _ -> None
  | Spec.Identity ->
    let freqs = coarse_freqs ~n ~coarse:t.config.coarse in
    let lengths = seg_lengths ~n ~segments:t.config.segments in
    let qmeans = seg_means ~lengths query.Dataset.normal in
    Some
      [|
        ("coarse", coarse_bound ~freqs ~stretch:None ~q:query);
        ("segment", segment_bound t ~lengths ~qmeans);
      |]
  | _ ->
    let freqs = coarse_freqs ~n ~coarse:t.config.coarse in
    let stretch = Spec.stretch spec ~n in
    Some [| ("coarse", coarse_bound ~freqs ~stretch:(Some stretch) ~q:query) |]

let funnel t ~spec ~query =
  match level_bounds t ~spec ~query with
  | None -> None
  | Some bounds ->
    let levels = Array.map fst bounds in
    Some
      {
        Kindex.levels;
        bound = (fun level entry -> (snd bounds.(level)) entry);
        on_filtered = on_filtered levels;
      }

let nn_bound t ~spec ~query =
  match level_bounds t ~spec ~query with
  | None -> None
  | Some bounds ->
    Some
      (fun entry ->
        Array.fold_left
          (fun acc (_, bound) -> Float.max acc (bound entry))
          0. bounds)
