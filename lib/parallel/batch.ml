module Metrics = Simq_obs.Metrics
module Otrace = Simq_obs.Trace
module Clock = Simq_obs.Clock

let m_queries =
  Metrics.counter ~help:"Queries executed by the batch executor"
    "simq_batch_queries_total"

let m_seconds =
  Metrics.histogram ~help:"Per-query wall time inside batch runs"
    "simq_batch_seconds"

type 'a timed = { value : 'a; duration_s : float }

let check_profiles ~n = function
  | None -> ()
  | Some profiles ->
    if Array.length profiles <> n then
      invalid_arg "Batch: profiles array must match the query count"

let profile_for profiles i =
  match profiles with None -> None | Some ps -> Some ps.(i)

let map_timed ?pool ?profiles f queries =
  let n = Array.length queries in
  check_profiles ~n profiles;
  if n = 0 then [||]
  else
    Otrace.with_span "batch.run" @@ fun () ->
    (* One query per pool task: chunk 1 gives full n-way fan-out, and
       the per-chunk scheduling overhead is negligible against a whole
       query. [map_chunks] delivers results in query order, so the
       answer array is positioned exactly as a sequential loop's. *)
    let results =
      Pool.map_chunks ?pool ~chunk:1 ~n (fun ~lo ~hi:_ ->
          let t0 = Clock.now_ns () in
          let value =
            Otrace.with_span "batch.query" @@ fun () ->
            f ~profile:(profile_for profiles lo) queries.(lo)
          in
          let duration_s = Clock.elapsed_s t0 in
          Metrics.incr m_queries;
          Metrics.observe m_seconds duration_s;
          { value; duration_s })
    in
    Array.of_list results

let map ?pool ?profiles f queries =
  Array.map (fun r -> r.value) (map_timed ?pool ?profiles f queries)
