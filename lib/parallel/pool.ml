let m_tasks =
  Simq_obs.Metrics.counter ~help:"Chunks executed by the domain pool"
    "simq_pool_tasks_total"

let m_busy =
  Simq_obs.Metrics.histogram ~help:"Per-chunk busy time in seconds"
    "simq_pool_busy_seconds"

let m_imbalance =
  Simq_obs.Metrics.gauge
    ~help:"Last job's max/mean per-domain busy time (1 = perfectly balanced)"
    "simq_pool_imbalance_ratio"

(* Per-domain busy-time slots for one job, indexed like the metrics
   shards; each participating domain only writes its own slot. *)
let busy_slots = 64

(* --- adaptive chunking knobs --------------------------------------------- *)

(* A chunk never holds fewer elements than this: below the quantum the
   scheduling overhead (claim, finish bookkeeping, wake-ups) dominates
   the work, so tiny inputs collapse to one chunk and run inline. *)
let min_chunk_quantum = 64

(* Fresh pools start coarse — [coarse_chunks_per_domain] chunks per
   domain — and split finer only when a finished job's measured
   per-domain busy times are imbalanced, up to
   [max_chunks_per_domain]. *)
let coarse_chunks_per_domain = 2
let max_chunks_per_domain = 16

(* Controller thresholds on the max/mean per-domain busy-time ratio of
   the job that just finished: above [imbalance_split_ratio] the next
   job gets twice as many chunks per domain; below
   [imbalance_coarsen_ratio] (near-perfect balance) it gets half. *)
let imbalance_split_ratio = 1.25
let imbalance_coarsen_ratio = 1.05

(* A job is one parallel operation: [total] chunks, claimed one at a
   time through the atomic [next] counter by every domain working on it
   (the submitter always participates, workers join when idle). [run]
   must not raise — the public operations wrap chunk bodies and park
   exceptions so they can be re-raised in the caller in chunk order. *)
type job = {
  next : int Atomic.t;  (* next unclaimed chunk *)
  total : int;
  run : int -> unit;
  fin_mutex : Mutex.t;
  fin_cond : Condition.t;
  mutable remaining : int;  (* chunks not yet completed; fin_mutex *)
}

type t = {
  size : int;
  lock : Mutex.t;  (* guards [jobs], [stopped], [workers] *)
  work_available : Condition.t;
  mutable jobs : job list;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  split : int Atomic.t;
      (* current chunks-per-domain target of the adaptive controller;
         only ever between [coarse_chunks_per_domain] and
         [max_chunks_per_domain] *)
}

let domains t = t.size

let execute_job job =
  let rec loop () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.total then begin
      job.run i;
      Mutex.lock job.fin_mutex;
      job.remaining <- job.remaining - 1;
      if job.remaining = 0 then Condition.broadcast job.fin_cond;
      Mutex.unlock job.fin_mutex;
      loop ()
    end
  in
  loop ()

(* With [t.lock] held: drop exhausted jobs, return one with work left. *)
let find_job t =
  let active = List.filter (fun j -> Atomic.get j.next < j.total) t.jobs in
  t.jobs <- active;
  match active with [] -> None | j :: _ -> Some j

let rec worker t =
  Mutex.lock t.lock;
  let rec await () =
    if t.stopped then None
    else
      match find_job t with
      | Some j -> Some j
      | None ->
        Condition.wait t.work_available t.lock;
        await ()
  in
  let job = await () in
  Mutex.unlock t.lock;
  match job with
  | None -> ()
  | Some j ->
    execute_job j;
    worker t

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      size = domains;
      lock = Mutex.create ();
      work_available = Condition.create ();
      jobs = [];
      stopped = false;
      workers = [];
      split = Atomic.make coarse_chunks_per_domain;
    }
  in
  if domains > 1 then
    t.workers <-
      List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let sequential = create ~domains:1

let shutdown t =
  Mutex.lock t.lock;
  t.stopped <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

(* Wrap a chunk body with busy-time accounting; [busy] is the
   per-domain slot array of one job (absent on the inline path, where
   only the metric families are fed). Slot timing always runs on the
   parallel branch — it feeds the adaptive controller — at the cost of
   two clock reads per chunk, negligible against a quantum of work. *)
let instrument_run ~metrics run busy i =
  let t0 = Simq_obs.Clock.now_ns () in
  run i;
  let dt = Simq_obs.Clock.elapsed_s t0 in
  if metrics then begin
    Simq_obs.Metrics.incr m_tasks;
    Simq_obs.Metrics.observe m_busy dt
  end;
  match busy with
  | None -> ()
  | Some slots ->
    let s = (Domain.self () :> int) land (busy_slots - 1) in
    slots.(s) <- slots.(s) +. dt

(* Digest the per-domain busy times of the job just finished: publish
   the max/mean ratio (when metrics are on) and steer the adaptive
   split — observed imbalance means the next job should cut finer
   chunks, near-perfect balance that coarser ones suffice. Chunk-size
   choices never change answers (all merges are chunk-order
   deterministic), so the controller is free to react to timing. *)
let digest_imbalance t slots =
  let mx = ref 0. and sum = ref 0. and active = ref 0 in
  Array.iter
    (fun v ->
      if v > 0. then begin
        if v > !mx then mx := v;
        sum := !sum +. v;
        incr active
      end)
    slots;
  if !active > 0 && !sum > 0. then begin
    let ratio = !mx /. (!sum /. float_of_int !active) in
    if Simq_obs.Metrics.on () then
      Simq_obs.Metrics.set_gauge m_imbalance ratio;
    let split = Atomic.get t.split in
    if ratio > imbalance_split_ratio then
      Atomic.set t.split (min (split * 2) max_chunks_per_domain)
    else if ratio < imbalance_coarsen_ratio then
      Atomic.set t.split (max (split / 2) coarse_chunks_per_domain)
  end

(* Run [total] chunks, caller participating; returns when every chunk
   has completed. [run] must not raise. *)
let run_chunks t ~total run =
  if total > 0 then
    if t.size <= 1 || t.stopped || total = 1 then begin
      let run =
        if Simq_obs.Metrics.on () then instrument_run ~metrics:true run None
        else run
      in
      for i = 0 to total - 1 do
        run i
      done
    end
    else begin
      let busy = Array.make busy_slots 0. in
      let run = instrument_run ~metrics:(Simq_obs.Metrics.on ()) run (Some busy) in
      let job =
        {
          next = Atomic.make 0;
          total;
          run;
          fin_mutex = Mutex.create ();
          fin_cond = Condition.create ();
          remaining = total;
        }
      in
      Mutex.lock t.lock;
      t.jobs <- t.jobs @ [ job ];
      Condition.broadcast t.work_available;
      Mutex.unlock t.lock;
      execute_job job;
      Mutex.lock job.fin_mutex;
      while job.remaining > 0 do
        Condition.wait job.fin_cond job.fin_mutex
      done;
      Mutex.unlock job.fin_mutex;
      Mutex.lock t.lock;
      t.jobs <- List.filter (fun j -> j != job) t.jobs;
      Mutex.unlock t.lock;
      digest_imbalance t busy
    end

(* --- the default pool ---------------------------------------------------- *)

let default_lock = Mutex.create ()
let default_override = ref None
let default_pool = ref None

(* Warn once per distinct garbage value, not per call: default_domains
   runs on every default-pool resolution. Guarded by default_lock. *)
let env_warned = ref None

let env_domains () =
  match Sys.getenv_opt "SIMQ_DOMAINS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ ->
      if !env_warned <> Some s then begin
        env_warned := Some s;
        Printf.eprintf
          "simq: warning: ignoring invalid SIMQ_DOMAINS=%S (expected an \
           integer >= 1); using the default domain count\n\
           %!"
          s
      end;
      None)

let default_domains_locked () =
  match !default_override with
  | Some n -> n
  | None -> (
    match env_domains () with
    | Some n -> n
    | None -> max 1 (Domain.recommended_domain_count ()))

let default_domains () =
  Mutex.lock default_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock default_lock)
    default_domains_locked

let set_default_domains n =
  if n < 1 then invalid_arg "Pool.set_default_domains: need >= 1";
  Mutex.lock default_lock;
  default_override := Some n;
  Mutex.unlock default_lock

let default () =
  Mutex.lock default_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock default_lock)
    (fun () ->
      let wanted = default_domains_locked () in
      match !default_pool with
      | Some p when p.size = wanted && not p.stopped -> p
      | other ->
        Option.iter shutdown other;
        let p = create ~domains:wanted in
        default_pool := Some p;
        p)

(* --- operations ---------------------------------------------------------- *)

let resolve = function Some pool -> pool | None -> default ()

(* The controller's current chunk size for an [n]-element operation:
   [split * size] chunks, but never a chunk below the minimum-work
   quantum — so an input smaller than the quantum is one chunk and
   runs inline, whatever the pool size. *)
let adaptive_chunk pool n =
  if n <= 0 then 1
  else begin
    let target = Atomic.get pool.split * pool.size in
    max min_chunk_quantum ((n + target - 1) / target)
  end

let default_chunk = adaptive_chunk
let chunks_per_domain pool = Atomic.get pool.split

let check_chunk chunk =
  if chunk < 1 then invalid_arg "Pool: chunk must be >= 1"

(* Re-raise the error of the lowest-indexed failing chunk — what a
   sequential left-to-right run would have raised first. *)
let raise_first_error errors =
  Array.iter (function Some e -> raise e | None -> ()) errors

let map_array ?pool ?chunk f arr =
  let pool = resolve pool in
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let chunk =
      match chunk with
      | Some c ->
        check_chunk c;
        c
      | None -> default_chunk pool n
    in
    let chunks = (n + chunk - 1) / chunk in
    if pool.size <= 1 || chunks = 1 then Array.map f arr
    else begin
      (* Zero-copy merge: element 0 is computed in the caller (as a
         sequential run would first), seeds the pre-sized result
         buffer, and every chunk writes its slice in place — no
         Option boxing, no final copy. *)
      let results = Array.make n (f arr.(0)) in
      let errors = Array.make chunks None in
      run_chunks pool ~total:chunks (fun c ->
          let lo = max 1 (c * chunk) and hi = min n ((c + 1) * chunk) in
          try
            for i = lo to hi - 1 do
              results.(i) <- f arr.(i)
            done
          with e -> errors.(c) <- Some e);
      raise_first_error errors;
      results
    end
  end

let map_chunks ?pool ~chunk ~n f =
  let pool = resolve pool in
  if n <= 0 then []
  else begin
    check_chunk chunk;
    let chunks = (n + chunk - 1) / chunk in
    let results = Array.make chunks None in
    let errors = Array.make chunks None in
    run_chunks pool ~total:chunks (fun c ->
        let lo = c * chunk and hi = min n ((c + 1) * chunk) in
        try results.(c) <- Some (f ~lo ~hi) with e -> errors.(c) <- Some e);
    raise_first_error errors;
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end

let chunked_iter ?pool ~chunk ~n f =
  let units = map_chunks ?pool ~chunk ~n f in
  ignore (units : unit list)

let reduce ?pool ?chunk ~map ~combine init arr =
  let pool = resolve pool in
  let n = Array.length arr in
  if n = 0 then init
  else begin
    let chunk =
      match chunk with
      | Some c ->
        check_chunk c;
        c
      | None -> default_chunk pool n
    in
    (* Pre-sized partials buffer written in place by each chunk, folded
       in chunk order — no intermediate list. Chunk grouping is the
       same at every domain count for a fixed [chunk], so even
       non-associative combines stay deterministic. *)
    let chunks = (n + chunk - 1) / chunk in
    let partials = Array.make chunks None in
    let errors = Array.make chunks None in
    run_chunks pool ~total:chunks (fun c ->
        let lo = c * chunk and hi = min n ((c + 1) * chunk) in
        try
          let acc = ref (map arr.(lo)) in
          for i = lo + 1 to hi - 1 do
            acc := combine !acc (map arr.(i))
          done;
          partials.(c) <- Some !acc
        with e -> errors.(c) <- Some e);
    raise_first_error errors;
    Array.fold_left
      (fun acc p ->
        match p with Some v -> combine acc v | None -> assert false)
      init partials
  end
