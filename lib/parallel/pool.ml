let m_tasks =
  Simq_obs.Metrics.counter ~help:"Chunks executed by the domain pool"
    "simq_pool_tasks_total"

let m_busy =
  Simq_obs.Metrics.histogram ~help:"Per-chunk busy time in seconds"
    "simq_pool_busy_seconds"

let m_imbalance =
  Simq_obs.Metrics.gauge
    ~help:"Last job's max/mean per-domain busy time (1 = perfectly balanced)"
    "simq_pool_imbalance_ratio"

(* Per-domain busy-time slots for one job, indexed like the metrics
   shards; each participating domain only writes its own slot. *)
let busy_slots = 64

(* A job is one parallel operation: [total] chunks, claimed one at a
   time through the atomic [next] counter by every domain working on it
   (the submitter always participates, workers join when idle). [run]
   must not raise — the public operations wrap chunk bodies and park
   exceptions so they can be re-raised in the caller in chunk order. *)
type job = {
  next : int Atomic.t;  (* next unclaimed chunk *)
  total : int;
  run : int -> unit;
  fin_mutex : Mutex.t;
  fin_cond : Condition.t;
  mutable remaining : int;  (* chunks not yet completed; fin_mutex *)
}

type t = {
  size : int;
  lock : Mutex.t;  (* guards [jobs], [stopped], [workers] *)
  work_available : Condition.t;
  mutable jobs : job list;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

let domains t = t.size

let execute_job job =
  let rec loop () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.total then begin
      job.run i;
      Mutex.lock job.fin_mutex;
      job.remaining <- job.remaining - 1;
      if job.remaining = 0 then Condition.broadcast job.fin_cond;
      Mutex.unlock job.fin_mutex;
      loop ()
    end
  in
  loop ()

(* With [t.lock] held: drop exhausted jobs, return one with work left. *)
let find_job t =
  let active = List.filter (fun j -> Atomic.get j.next < j.total) t.jobs in
  t.jobs <- active;
  match active with [] -> None | j :: _ -> Some j

let rec worker t =
  Mutex.lock t.lock;
  let rec await () =
    if t.stopped then None
    else
      match find_job t with
      | Some j -> Some j
      | None ->
        Condition.wait t.work_available t.lock;
        await ()
  in
  let job = await () in
  Mutex.unlock t.lock;
  match job with
  | None -> ()
  | Some j ->
    execute_job j;
    worker t

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      size = domains;
      lock = Mutex.create ();
      work_available = Condition.create ();
      jobs = [];
      stopped = false;
      workers = [];
    }
  in
  if domains > 1 then
    t.workers <-
      List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let sequential = create ~domains:1

let shutdown t =
  Mutex.lock t.lock;
  t.stopped <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

(* Wrap a chunk body with task/busy-time accounting; [busy] is the
   per-domain slot array of one job (absent on the inline path). *)
let instrument_run run busy i =
  let t0 = Simq_obs.Clock.now_ns () in
  run i;
  let dt = Simq_obs.Clock.elapsed_s t0 in
  Simq_obs.Metrics.incr m_tasks;
  Simq_obs.Metrics.observe m_busy dt;
  match busy with
  | None -> ()
  | Some slots ->
    let s = (Domain.self () :> int) land (busy_slots - 1) in
    slots.(s) <- slots.(s) +. dt

(* Publish max/mean per-domain busy time for the job just finished. *)
let publish_imbalance slots =
  let active = List.filter (fun v -> v > 0.) (Array.to_list slots) in
  match active with
  | [] -> ()
  | _ ->
    let mx = List.fold_left Float.max 0. active in
    let mean =
      List.fold_left ( +. ) 0. active /. float_of_int (List.length active)
    in
    if mean > 0. then Simq_obs.Metrics.set_gauge m_imbalance (mx /. mean)

(* Run [total] chunks, caller participating; returns when every chunk
   has completed. [run] must not raise. *)
let run_chunks t ~total run =
  if total > 0 then
    if t.size <= 1 || t.stopped || total = 1 then begin
      let run =
        if Simq_obs.Metrics.on () then instrument_run run None else run
      in
      for i = 0 to total - 1 do
        run i
      done
    end
    else begin
      let busy =
        if Simq_obs.Metrics.on () then Some (Array.make busy_slots 0.)
        else None
      in
      let run =
        match busy with None -> run | Some _ -> instrument_run run busy
      in
      let job =
        {
          next = Atomic.make 0;
          total;
          run;
          fin_mutex = Mutex.create ();
          fin_cond = Condition.create ();
          remaining = total;
        }
      in
      Mutex.lock t.lock;
      t.jobs <- t.jobs @ [ job ];
      Condition.broadcast t.work_available;
      Mutex.unlock t.lock;
      execute_job job;
      Mutex.lock job.fin_mutex;
      while job.remaining > 0 do
        Condition.wait job.fin_cond job.fin_mutex
      done;
      Mutex.unlock job.fin_mutex;
      Mutex.lock t.lock;
      t.jobs <- List.filter (fun j -> j != job) t.jobs;
      Mutex.unlock t.lock;
      match busy with Some slots -> publish_imbalance slots | None -> ()
    end

(* --- the default pool ---------------------------------------------------- *)

let default_lock = Mutex.create ()
let default_override = ref None
let default_pool = ref None

(* Warn once per distinct garbage value, not per call: default_domains
   runs on every default-pool resolution. Guarded by default_lock. *)
let env_warned = ref None

let env_domains () =
  match Sys.getenv_opt "SIMQ_DOMAINS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ ->
      if !env_warned <> Some s then begin
        env_warned := Some s;
        Printf.eprintf
          "simq: warning: ignoring invalid SIMQ_DOMAINS=%S (expected an \
           integer >= 1); using the default domain count\n\
           %!"
          s
      end;
      None)

let default_domains_locked () =
  match !default_override with
  | Some n -> n
  | None -> (
    match env_domains () with
    | Some n -> n
    | None -> max 1 (Domain.recommended_domain_count ()))

let default_domains () =
  Mutex.lock default_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock default_lock)
    default_domains_locked

let set_default_domains n =
  if n < 1 then invalid_arg "Pool.set_default_domains: need >= 1";
  Mutex.lock default_lock;
  default_override := Some n;
  Mutex.unlock default_lock

let default () =
  Mutex.lock default_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock default_lock)
    (fun () ->
      let wanted = default_domains_locked () in
      match !default_pool with
      | Some p when p.size = wanted && not p.stopped -> p
      | other ->
        Option.iter shutdown other;
        let p = create ~domains:wanted in
        default_pool := Some p;
        p)

(* --- operations ---------------------------------------------------------- *)

let resolve = function Some pool -> pool | None -> default ()

(* About eight chunks per domain so uneven per-element costs balance. *)
let default_chunk pool n = max 1 (n / (8 * pool.size))

let check_chunk chunk =
  if chunk < 1 then invalid_arg "Pool: chunk must be >= 1"

(* Re-raise the error of the lowest-indexed failing chunk — what a
   sequential left-to-right run would have raised first. *)
let raise_first_error errors =
  Array.iter (function Some e -> raise e | None -> ()) errors

let map_array ?pool ?chunk f arr =
  let pool = resolve pool in
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let chunk =
      match chunk with
      | Some c ->
        check_chunk c;
        c
      | None -> default_chunk pool n
    in
    let chunks = (n + chunk - 1) / chunk in
    if pool.size <= 1 || chunks = 1 then Array.map f arr
    else begin
      let results = Array.make n None in
      let errors = Array.make chunks None in
      run_chunks pool ~total:chunks (fun c ->
          let lo = c * chunk and hi = min n ((c + 1) * chunk) in
          try
            for i = lo to hi - 1 do
              results.(i) <- Some (f arr.(i))
            done
          with e -> errors.(c) <- Some e);
      raise_first_error errors;
      Array.map (function Some v -> v | None -> assert false) results
    end
  end

let map_chunks ?pool ~chunk ~n f =
  let pool = resolve pool in
  if n <= 0 then []
  else begin
    check_chunk chunk;
    let chunks = (n + chunk - 1) / chunk in
    let results = Array.make chunks None in
    let errors = Array.make chunks None in
    run_chunks pool ~total:chunks (fun c ->
        let lo = c * chunk and hi = min n ((c + 1) * chunk) in
        try results.(c) <- Some (f ~lo ~hi) with e -> errors.(c) <- Some e);
    raise_first_error errors;
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end

let chunked_iter ?pool ~chunk ~n f =
  let units = map_chunks ?pool ~chunk ~n f in
  ignore (units : unit list)

let reduce ?pool ?chunk ~map ~combine init arr =
  let pool = resolve pool in
  let n = Array.length arr in
  if n = 0 then init
  else begin
    let chunk =
      match chunk with
      | Some c ->
        check_chunk c;
        c
      | None -> default_chunk pool n
    in
    let partials =
      map_chunks ~pool ~chunk ~n (fun ~lo ~hi ->
          let acc = ref (map arr.(lo)) in
          for i = lo + 1 to hi - 1 do
            acc := combine !acc (map arr.(i))
          done;
          !acc)
    in
    List.fold_left combine init partials
  end
