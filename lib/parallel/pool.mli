(** A fixed-size domain pool for the embarrassingly parallel hot paths
    (dataset preparation, sequential scans, self-joins, query batches).

    Built on stdlib [Domain]/[Mutex]/[Condition] only — no external
    dependencies. A pool of [domains] means a parallelism degree of
    [domains]: the calling domain always participates in the work it
    submits, and [domains - 1] worker domains are spawned at creation.
    A pool of size 1 spawns nothing and runs every operation inline in
    the caller, which makes it {e bit-identical} to plain sequential
    code — this is the mode the test suite defaults to.

    {b Determinism.} All combining operations deliver per-chunk results
    to the caller {e in chunk order}, regardless of the order in which
    domains finished them. Parallel callers that merge per-chunk
    counters and answer lists in that order therefore produce output
    bit-identical to a sequential run — the property the Lemma 1
    equivalence tests rely on.

    {b Exceptions.} When chunk bodies raise, every chunk still runs to
    completion (or failure), and the exception raised by the {e
    lowest-indexed} failing chunk is re-raised in the caller — again
    matching what a sequential left-to-right run would have raised
    first. The pool remains usable afterwards.

    {b Nesting.} A task running on the pool may itself submit work to
    the same pool: the submitter drives its own sub-job to completion,
    so nested calls cannot deadlock (idle workers help when available). *)

type t

(** [create ~domains] is a pool of parallelism degree [domains]
    ([domains - 1] spawned worker domains). Raises [Invalid_argument]
    when [domains < 1]. *)
val create : domains:int -> t

(** [domains t] is the pool's parallelism degree (>= 1). *)
val domains : t -> int

(** [sequential] is the shared degree-1 pool: every operation runs
    inline in the caller. *)
val sequential : t

(** [shutdown t] terminates the worker domains and joins them. Further
    use of [t] degrades to sequential execution; [shutdown] is
    idempotent and a no-op on {!sequential}. *)
val shutdown : t -> unit

(** {2 The default pool}

    A global pool, created lazily on first use. Its size is, in order
    of precedence: the last {!set_default_domains} (the [--jobs] CLI
    flag), the [SIMQ_DOMAINS] environment variable, or
    [Domain.recommended_domain_count ()]. [SIMQ_DOMAINS=1] (or
    [--jobs 1]) makes every default-pool operation fully sequential.
    An unusable [SIMQ_DOMAINS] value (non-numeric, zero or negative)
    never raises: it is ignored with a one-time stderr warning and the
    next precedence level applies. *)

(** [default ()] is the global pool, created on first call. *)
val default : unit -> t

(** [default_domains ()] is the size {!default} has or would have. *)
val default_domains : unit -> int

(** [set_default_domains n] overrides the default-pool size (the
    [--jobs] flag). An already-created default pool of a different size
    is shut down and recreated lazily. Raises [Invalid_argument] when
    [n < 1]. *)
val set_default_domains : int -> unit

(** {2 Parallel operations}

    Every operation takes [?pool] (default {!default}) and an optional
    [?chunk] — the number of consecutive elements handed to a domain at
    a time. The default is [max 1 (n / (8 * domains))]: about eight
    chunks per domain, so uneven per-element costs still balance. *)

(** [map_array ?pool ?chunk f arr] is [Array.map f arr], computed in
    parallel. Results are positioned exactly as [Array.map] would. *)
val map_array : ?pool:t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array

(** [chunked_iter ?pool ~chunk ~n f] calls [f ~lo ~hi] over the
    disjoint ranges [\[lo, hi)] covering [0 .. n-1], [chunk] indices per
    range, in parallel. [f] must only write state owned by its range. *)
val chunked_iter : ?pool:t -> chunk:int -> n:int -> (lo:int -> hi:int -> unit) -> unit

(** [map_chunks ?pool ~chunk ~n f] runs [f ~lo ~hi] over the same
    ranges as {!chunked_iter} and returns the per-chunk results {e in
    chunk order} — the deterministic-merge building block behind the
    parallel scans and joins. *)
val map_chunks : ?pool:t -> chunk:int -> n:int -> (lo:int -> hi:int -> 'b) -> 'b list

(** [reduce ?pool ?chunk ~map ~combine init arr] folds [combine] over
    [map x] for every element of [arr]:
    [combine (... (combine init (map arr.(0))) ...) (map arr.(n-1))]
    with the combines of one chunk evaluated left-to-right inside the
    chunk and chunks combined left-to-right — associative [combine]
    therefore yields the sequential answer, and even non-associative
    floating-point reductions are deterministic for a fixed [chunk]. *)
val reduce :
  ?pool:t -> ?chunk:int -> map:('a -> 'b) -> combine:('b -> 'b -> 'b) ->
  'b -> 'a array -> 'b
