(** A fixed-size domain pool for the embarrassingly parallel hot paths
    (dataset preparation, sequential scans, self-joins, query batches).

    Built on stdlib [Domain]/[Mutex]/[Condition] only — no external
    dependencies. A pool of [domains] means a parallelism degree of
    [domains]: the calling domain always participates in the work it
    submits, and [domains - 1] worker domains are spawned at creation.
    A pool of size 1 spawns nothing and runs every operation inline in
    the caller, which makes it {e bit-identical} to plain sequential
    code — this is the mode the test suite defaults to.

    {b Determinism.} All combining operations deliver per-chunk results
    to the caller {e in chunk order}, regardless of the order in which
    domains finished them. Parallel callers that merge per-chunk
    counters and answer lists in that order therefore produce output
    bit-identical to a sequential run — the property the Lemma 1
    equivalence tests rely on.

    {b Exceptions.} When chunk bodies raise, every chunk still runs to
    completion (or failure), and the exception raised by the {e
    lowest-indexed} failing chunk is re-raised in the caller — again
    matching what a sequential left-to-right run would have raised
    first. ({!map_array} evaluates element 0 in the caller before
    fanning out, so an exception there propagates immediately, exactly
    as a sequential run's would.) The pool remains usable afterwards.

    {b Nesting.} A task running on the pool may itself submit work to
    the same pool: the submitter drives its own sub-job to completion,
    so nested calls cannot deadlock (idle workers help when available). *)

type t

(** [create ~domains] is a pool of parallelism degree [domains]
    ([domains - 1] spawned worker domains). Raises [Invalid_argument]
    when [domains < 1]. *)
val create : domains:int -> t

(** [domains t] is the pool's parallelism degree (>= 1). *)
val domains : t -> int

(** [sequential] is the shared degree-1 pool: every operation runs
    inline in the caller. *)
val sequential : t

(** [shutdown t] terminates the worker domains and joins them. Further
    use of [t] degrades to sequential execution; [shutdown] is
    idempotent and a no-op on {!sequential}. *)
val shutdown : t -> unit

(** {2 The default pool}

    A global pool, created lazily on first use. Its size is, in order
    of precedence: the last {!set_default_domains} (the [--jobs] CLI
    flag), the [SIMQ_DOMAINS] environment variable, or
    [Domain.recommended_domain_count ()]. [SIMQ_DOMAINS=1] (or
    [--jobs 1]) makes every default-pool operation fully sequential.
    An unusable [SIMQ_DOMAINS] value (non-numeric, zero or negative)
    never raises: it is ignored with a one-time stderr warning and the
    next precedence level applies. *)

(** [default ()] is the global pool, created on first call. *)
val default : unit -> t

(** [default_domains ()] is the size {!default} has or would have. *)
val default_domains : unit -> int

(** [set_default_domains n] overrides the default-pool size (the
    [--jobs] flag). An already-created default pool of a different size
    is shut down and recreated lazily. Raises [Invalid_argument] when
    [n < 1]. *)
val set_default_domains : int -> unit

(** {2 Adaptive chunking}

    When [?chunk] is omitted, the pool picks the chunk size itself and
    adapts it to the workload: jobs start {e coarse}
    ({!coarse_chunks_per_domain} chunks per domain, amortising
    scheduling overhead) and split finer — up to
    {!max_chunks_per_domain} per domain — only when the measured
    per-domain busy times of a finished job are imbalanced (the
    [simq_pool_imbalance_ratio] gauge); near-perfect balance coarsens
    them again. A chunk never holds fewer than {!min_chunk_quantum}
    elements, so inputs smaller than the quantum collapse to a single
    chunk and run inline in the caller. Chunk sizing only moves work
    between domains — per-chunk answers and counters merge in chunk
    order — so adaptation never changes an answer. *)

(** Minimum elements per automatically sized chunk (the minimum-work
    quantum below which scheduling overhead dominates). *)
val min_chunk_quantum : int

(** Chunks per domain a fresh pool starts with. *)
val coarse_chunks_per_domain : int

(** Upper bound on chunks per domain the controller will split to. *)
val max_chunks_per_domain : int

(** [adaptive_chunk pool n] is the chunk size the controller currently
    picks for an [n]-element operation on [pool] — what every operation
    below uses when [?chunk] is omitted. Exposed so callers that cut
    chunks themselves (the scans) follow the same policy. *)
val adaptive_chunk : t -> int -> int

(** [chunks_per_domain pool] is the controller's current
    chunks-per-domain target, between {!coarse_chunks_per_domain} and
    {!max_chunks_per_domain}. *)
val chunks_per_domain : t -> int

(** {2 Parallel operations}

    Every operation takes [?pool] (default {!default}) and an optional
    [?chunk] — the number of consecutive elements handed to a domain at
    a time. The default is {!adaptive_chunk}. *)

(** [map_array ?pool ?chunk f arr] is [Array.map f arr], computed in
    parallel. Results are positioned exactly as [Array.map] would. *)
val map_array : ?pool:t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array

(** [chunked_iter ?pool ~chunk ~n f] calls [f ~lo ~hi] over the
    disjoint ranges [\[lo, hi)] covering [0 .. n-1], [chunk] indices per
    range, in parallel. [f] must only write state owned by its range. *)
val chunked_iter : ?pool:t -> chunk:int -> n:int -> (lo:int -> hi:int -> unit) -> unit

(** [map_chunks ?pool ~chunk ~n f] runs [f ~lo ~hi] over the same
    ranges as {!chunked_iter} and returns the per-chunk results {e in
    chunk order} — the deterministic-merge building block behind the
    parallel scans and joins. *)
val map_chunks : ?pool:t -> chunk:int -> n:int -> (lo:int -> hi:int -> 'b) -> 'b list

(** [reduce ?pool ?chunk ~map ~combine init arr] folds [combine] over
    [map x] for every element of [arr]:
    [combine (... (combine init (map arr.(0))) ...) (map arr.(n-1))]
    with the combines of one chunk evaluated left-to-right inside the
    chunk and chunks combined left-to-right — associative [combine]
    therefore yields the sequential answer, and even non-associative
    floating-point reductions are deterministic for a fixed [chunk]. *)
val reduce :
  ?pool:t -> ?chunk:int -> map:('a -> 'b) -> combine:('b -> 'b -> 'b) ->
  'b -> 'a array -> 'b
