(** The inter-query batch executor: many {e independent} queries over a
    shared resident dataset or index, one query per {!Pool} task — the
    TSseek-style alternative to slicing a single small query ever
    thinner. Coarse units amortise the scheduling overhead, and because
    the queries are independent there is no merge step at all.

    {b Determinism.} Result [i] is whatever [f] returns for query [i];
    queries never observe each other, and the result array is
    positioned exactly as a sequential loop's, so a batch is
    bit-identical to running its queries one by one — at every pool
    size. Exceptions propagate like {!Pool.map_chunks}: the
    lowest-indexed failing query's exception is re-raised after every
    query has run.

    {b Observability.} Each executed query increments
    [simq_batch_queries_total] and observes its wall time in
    [simq_batch_seconds] (on the executing domain — merged totals are
    identical at every domain count). A batch runs inside a
    [batch.run] trace span with one [batch.query] span per query.
    [?profiles] gives every query its own {!Simq_obs.Profile} tree:
    each profile is only ever touched by the one domain running its
    query, so the per-query trees (timings aside) come out identical
    at every domain count. *)

(** A query result with the wall time its execution took on whichever
    domain ran it. Durations are timing, not part of the bit-identity
    contract. *)
type 'a timed = { value : 'a; duration_s : float }

(** [map ?pool ?profiles f queries] runs [f ~profile queries.(i)] for
    every [i], one query per task of [pool] (default {!Pool.default}),
    and returns the results in query order. [profile] is
    [Some profiles.(i)] when [?profiles] is given, [None] otherwise.
    Raises [Invalid_argument] when [profiles] is present but its length
    differs from [queries]'s. *)
val map :
  ?pool:Pool.t ->
  ?profiles:Simq_obs.Profile.t array ->
  (profile:Simq_obs.Profile.t option -> 'a -> 'b) ->
  'a array ->
  'b array

(** [map_timed ?pool ?profiles f queries] is {!map} with each result
    carrying its per-query wall time — what the [simq batch] command
    and the [par] experiment's batch column report. *)
val map_timed :
  ?pool:Pool.t ->
  ?profiles:Simq_obs.Profile.t array ->
  (profile:Simq_obs.Profile.t option -> 'a -> 'b) ->
  'a array ->
  'b timed array
