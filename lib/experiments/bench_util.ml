let time_per_query ~repeats f =
  if repeats <= 0 then invalid_arg "Bench_util.time_per_query";
  f ();
  let _, elapsed =
    Simq_report.Timer.time (fun () ->
        for _ = 1 to repeats do
          f ()
        done)
  in
  elapsed /. float_of_int repeats

let mean = function
  | [] -> invalid_arg "Bench_util.mean: empty"
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let fmt_time s = Format.asprintf "%a" Simq_report.Timer.pp_seconds s

let queries_for ~seed ~count batch =
  let state = Random.State.make [| seed |] in
  List.init count (fun i ->
      let base = batch.(i * 31 mod Array.length batch) in
      Simq_workload.Queries.perturb state base ~amount:1.0)

let bench_seed = 1995

let derived_seed offset = (bench_seed * 31) + offset

let shard_override : int option ref = ref None
