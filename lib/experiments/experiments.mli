(** The experiment suite: one function per figure/table of the
    evaluation (Section 5 of the companion implementation paper — see
    DESIGN.md for the provenance note), plus framework-level benchmarks
    for the components the theory paper introduces without measuring.

    Every function prints its table to stdout and returns the
    paper-vs-measured claims it checked. [fast] shrinks data sizes so
    the whole suite runs in seconds (used by tests and smoke runs). *)

type claim = Simq_report.Expectation.claim

(** Figure 8: time per range query vs sequence length; identity
    transformation vs no transformation. *)
val fig8 : fast:bool -> claim list

(** Figure 9: the same comparison vs number of sequences. *)
val fig9 : fast:bool -> claim list

(** Figure 10: index vs sequential scan, varying sequence length. *)
val fig10 : fast:bool -> claim list

(** Figure 11: index vs sequential scan, varying number of sequences. *)
val fig11 : fast:bool -> claim list

(** Figure 12: time per query vs answer-set size on stock-like data;
    locates the index/scan crossover. *)
val fig12 : fast:bool -> claim list

(** Table 1: the spatial self-join under T_mavg20 by methods a–d. *)
val table1 : fast:bool -> claim list

(** Framework benchmark: generalised edit-distance DP scaling. *)
val edit_dp : fast:bool -> claim list

(** Framework benchmark: Eq. 10 similarity search scaling with the
    transformation set and cost bound. *)
val eq10 : fast:bool -> claim list

(** Framework benchmark: VP-tree vs linear scan distance computations. *)
val vptree : fast:bool -> claim list

(** Ablation: how many DFT coefficients the index should keep. *)
val ablation_k : fast:bool -> claim list

(** Ablation: polar vs rectangular coordinate representation. *)
val ablation_repr : fast:bool -> claim list

(** Ablation: R* heuristics vs Guttman's classic R-tree vs STR bulk
    loading. *)
val ablation_rtree : fast:bool -> claim list

(** Ablation: subsequence index layout — point-per-window vs FRM94 MBR
    trails. *)
val ablation_trails : fast:bool -> claim list

(** Ablation: the fault layer — guard-hook overhead with nothing
    installed, and exactness plus degradation rates under injected
    transient node faults. *)
val ablation_fault : fast:bool -> claim list

(** Ablation: the observability layer — answers bit-identical with
    metrics on and off, the on/off cost ratio, and cross-domain
    determinism of merged counter totals at 1/2/4 domains. *)
val ablation_obs : fast:bool -> claim list

(** Ablation: the profiling layer — answers and query counters
    bit-identical with a profile attached, the per-query cost of
    recording the operator tree on both access paths (asserted < 1.5x),
    and cross-domain determinism of the rendered tree (timings
    stripped) at 1/2/4 domains; writes [BENCH_profile.json] in the
    working directory. *)
val ablation_profile : fast:bool -> claim list

(** Ablation: the admission layer — rejection precision and recall
    against ground-truth over-budget runs, identical decisions at
    1/2/4 domains, zero execution-side counter movement on a rejected
    query, and answer sets bit-identical to admission-off runs;
    writes [BENCH_admission.json] in the working directory. *)
val ablation_admission : fast:bool -> claim list

(** Planner instrumentation: estimated vs actual answer counts across a
    selectivity sweep, the chosen access path per query, and the
    registry's planner counter family cross-checked against the per-run
    tally; writes [BENCH_planner.json] in the working directory. *)
val planner : fast:bool -> claim list

(** Scaling: the multicore execution layer at 1/2/4/N domains — dataset
    build, sequential scan, scan self-join and the batched query path —
    asserting bit-identical answers at every domain count and writing
    the speedup curves to [BENCH_par.json] in the working directory.
    The >= 2x speedup claim is asserted only on full (non-[fast]) runs
    with at least four cores; elsewhere it is reported as partial. *)
val par : fast:bool -> claim list

(** Service: an in-process [simq serve] daemon stressed by the
    deterministic multi-client harness — throughput and latency
    quantiles at 1/2/4 domains under a small in-flight cap with every
    served answer verified bit-identical to offline execution, a
    full-shed phase under a zero cap, and a chaos phase (protocol
    abuse plus seeded transient faults) the daemon must survive;
    writes [BENCH_serve.json] in the working directory. *)
val serve : fast:bool -> claim list

(** Sharding: the scatter-gather executor on clustered data at
    K = 1/4/16 shards x 1/2/4 domains (the bench driver's [--shards]
    flag narrows the K sweep) — range and NN answers asserted
    bit-identical to the unsharded traversal everywhere with a
    domain-invariant catalogue plan, the pruning rate on clustered
    data and on the skewed [spec_mix] service workload, exactness
    under a fault-tripped (scan-degraded) shard, and the pruning
    speedup of the largest-K scatter (asserted only on full runs);
    writes [BENCH_shard.json] in the working directory. *)
val shard : fast:bool -> claim list

(** [all ~fast] runs everything in order and prints the claim summary. *)
val all : fast:bool -> unit

(** [run ~fast name] runs one experiment by name
    ("fig8" … "table1", "edit_dp", "eq10", "vptree",
    "ablation_k", "ablation_repr", "ablation_rtree",
    "ablation_trails", "ablation_fault", "ablation_obs",
    "ablation_profile", "ablation_admission", "planner", "par",
    "serve", "shard", "all").
    Unknown names return [Error] with the available names. *)
val run : fast:bool -> string -> (unit, string) result
