module Series = Simq_series.Series
module Generator = Simq_series.Generator
module Normal_form = Simq_series.Normal_form
module Distance = Simq_series.Distance
module Queries = Simq_workload.Queries
module Stocklike = Simq_workload.Stocklike
module Table = Simq_report.Table
module Expectation = Simq_report.Expectation
open Simq_tsindex

type claim = Expectation.claim

let fmt = Bench_util.fmt_time

(* The identity transformation exercised through the full transformed
   machinery: a 1-day moving average has transfer function 1 everywhere,
   so results match the plain query while every MBR and point still goes
   through the vector multiplication of Algorithm 1 (exactly the paper's
   T_i trick). *)
let exercised_identity = Spec.Moving_average 1

let build_walks ~seed ~count ~n =
  let batch = Generator.random_walks ~seed ~count ~n in
  let dataset = Dataset.of_series ~name:"walks" batch in
  (batch, dataset, Kindex.build dataset)

let calibrated_epsilon dataset query ~target =
  let normals =
    Array.map (fun (e : Dataset.entry) -> e.Dataset.normal)
      (Dataset.entries dataset)
  in
  Queries.epsilon_for_answer_size ~normals
    ~query:(Normal_form.normalise query)
    ~target

(* A selective per-query threshold: 1.5x the distance to the query's
   nearest series (its perturbation source), so every query has at least
   one answer and stays selective regardless of where the source sits in
   feature space. *)
let selective_epsilon dataset query =
  1.5 *. calibrated_epsilon dataset query ~target:1

let with_selective_epsilons dataset queries =
  List.map (fun query -> (query, selective_epsilon dataset query)) queries

(* --- Figures 8 and 9: transformed vs plain queries ----------------------- *)

let transformed_vs_plain ~label ~configs =
  let table =
    Table.create ~title:label
      ~columns:
        [ "config"; "plain"; "with T_i"; "ratio"; "accesses"; "accesses T_i" ]
  in
  let ratios = ref [] in
  let access_pairs = ref [] in
  List.iter
    (fun (name, dataset, index, queries) ->
      ignore dataset;
      let repeats = 10 in
      let plain_times, ident_times = (ref [], ref []) in
      let plain_accesses = ref 0 and ident_accesses = ref 0 in
      List.iter
        (fun (query, epsilon) ->
          plain_times :=
            Bench_util.time_per_query ~repeats (fun () ->
                ignore (Kindex.range index ~query ~epsilon))
            :: !plain_times;
          ident_times :=
            Bench_util.time_per_query ~repeats (fun () ->
                ignore
                  (Kindex.range ~spec:exercised_identity index ~query ~epsilon))
            :: !ident_times;
          let plain = Kindex.range index ~query ~epsilon in
          let ident =
            Kindex.range ~spec:exercised_identity index ~query ~epsilon
          in
          plain_accesses := !plain_accesses + plain.Kindex.node_accesses;
          ident_accesses := !ident_accesses + ident.Kindex.node_accesses)
        queries;
      let plain = Bench_util.mean !plain_times in
      let ident = Bench_util.mean !ident_times in
      ratios := (ident /. plain) :: !ratios;
      access_pairs := (!plain_accesses, !ident_accesses) :: !access_pairs;
      Table.add_row table
        [
          name;
          fmt plain;
          fmt ident;
          Printf.sprintf "%.2f" (ident /. plain);
          string_of_int !plain_accesses;
          string_of_int !ident_accesses;
        ])
    configs;
  Table.print table;
  let same_accesses = List.for_all (fun (a, b) -> a = b) !access_pairs in
  let max_ratio = List.fold_left Float.max 0. !ratios in
  ( same_accesses,
    max_ratio,
    [
      Expectation.check ~experiment:label
        ~expectation:"number of disk (node) accesses identical with and \
                      without the transformation"
        ~measured:
          (if same_accesses then "identical at every configuration"
           else "differ")
        same_accesses;
      Expectation.check ~experiment:label
        ~expectation:
          "transformed query costs only a constant more (CPU for the \
           vector multiplication)"
        ~measured:(Printf.sprintf "worst-case ratio %.2fx" max_ratio)
        (max_ratio < 3.);
    ] )

let fig8 ~fast =
  let lengths = if fast then [ 64; 128; 256 ] else [ 64; 128; 256; 512; 1024 ] in
  let count = if fast then 300 else 1000 in
  let configs =
    List.map
      (fun n ->
        let batch, dataset, index = build_walks ~seed:(800 + n) ~count ~n in
        let queries =
          with_selective_epsilons dataset
            (Bench_util.queries_for ~seed:n ~count:5 batch)
        in
        (Printf.sprintf "n=%d" n, dataset, index, queries))
      lengths
  in
  let _, _, claims =
    transformed_vs_plain
      ~label:
        (Printf.sprintf
           "Figure 8: time per query vs sequence length (%d sequences)" count)
      ~configs
  in
  claims

let fig9 ~fast =
  let counts =
    if fast then [ 500; 1000; 2000 ] else [ 500; 1000; 2000; 4000; 8000; 12000 ]
  in
  let n = 128 in
  let configs =
    List.map
      (fun count ->
        let batch, dataset, index = build_walks ~seed:(900 + count) ~count ~n in
        let queries =
          with_selective_epsilons dataset
            (Bench_util.queries_for ~seed:count ~count:5 batch)
        in
        (Printf.sprintf "N=%d" count, dataset, index, queries))
      counts
  in
  let _, _, claims =
    transformed_vs_plain
      ~label:"Figure 9: time per query vs number of sequences (n=128)"
      ~configs
  in
  claims

(* --- Figures 10 and 11: index vs sequential scan -------------------------- *)

let index_vs_scan ~label ~configs =
  let table =
    Table.create ~title:label
      ~columns:
        [
          "config"; "index"; "scan (early)"; "scan (full)"; "speedup";
          "idx accesses"; "scan pages";
        ]
  in
  let speedups = ref [] in
  let io_ratios = ref [] in
  List.iter
    (fun (name, dataset, index, queries) ->
      let repeats = 5 in
      let collect f =
        Bench_util.mean
          (List.map
             (fun (query, epsilon) ->
               Bench_util.time_per_query ~repeats (fun () -> f query epsilon))
             queries)
      in
      let t_index =
        collect (fun query epsilon ->
            ignore (Kindex.range index ~query ~epsilon))
      in
      let t_early =
        collect (fun query epsilon ->
            ignore (Seqscan.range_early_abandon dataset ~query ~epsilon))
      in
      let t_full =
        collect (fun query epsilon ->
            ignore (Seqscan.range_full dataset ~query ~epsilon))
      in
      (* I/O accounting: a scan must fetch every page of the relation; the
         index touches its nodes. *)
      let query, epsilon = List.hd queries in
      let accesses = (Kindex.range index ~query ~epsilon).Kindex.node_accesses in
      let pages = Simq_storage.Relation.pages (Dataset.relation dataset) in
      speedups := (t_early /. t_index) :: !speedups;
      io_ratios := (float_of_int pages /. float_of_int (max 1 accesses)) :: !io_ratios;
      Table.add_row table
        [
          name;
          fmt t_index;
          fmt t_early;
          fmt t_full;
          Printf.sprintf "%.1fx" (t_early /. t_index);
          string_of_int accesses;
          string_of_int pages;
        ])
    configs;
  Table.print table;
  let speedups = List.rev !speedups in
  let io_ratios = List.rev !io_ratios in
  let always_faster = List.for_all (fun s -> s > 1.) speedups in
  let first = List.hd speedups in
  let last = List.nth speedups (List.length speedups - 1) in
  let io_first = List.hd io_ratios in
  let io_last = List.nth io_ratios (List.length io_ratios - 1) in
  [
    Expectation.check ~experiment:label
      ~expectation:"the index outperforms sequential scanning"
      ~measured:
        (Printf.sprintf "speedup %.1fx (smallest config) to %.1fx (largest)"
           first last)
      always_faster;
    Expectation.check ~experiment:label
      ~expectation:
        "the I/O advantage (scan pages vs index node accesses) grows with          the data size"
      ~measured:(Printf.sprintf "%.0fx -> %.0fx" io_first io_last)
      (io_last > io_first);
  ]

let fig10 ~fast =
  let lengths = if fast then [ 64; 128; 256 ] else [ 64; 128; 256; 512; 1024 ] in
  let count = if fast then 300 else 1000 in
  let configs =
    List.map
      (fun n ->
        let batch, dataset, index = build_walks ~seed:(1000 + n) ~count ~n in
        let queries =
          with_selective_epsilons dataset
            (Bench_util.queries_for ~seed:n ~count:5 batch)
        in
        (Printf.sprintf "n=%d" n, dataset, index, queries))
      lengths
  in
  index_vs_scan
    ~label:
      (Printf.sprintf
         "Figure 10: index vs sequential scan, varying length (%d sequences)"
         count)
    ~configs

let fig11 ~fast =
  let counts =
    if fast then [ 500; 1000; 2000 ] else [ 500; 1000; 2000; 4000; 8000; 12000 ]
  in
  let configs =
    List.map
      (fun count ->
        let batch, dataset, index =
          build_walks ~seed:(1100 + count) ~count ~n:128
        in
        let queries =
          with_selective_epsilons dataset
            (Bench_util.queries_for ~seed:count ~count:5 batch)
        in
        (Printf.sprintf "N=%d" count, dataset, index, queries))
      counts
  in
  index_vs_scan
    ~label:"Figure 11: index vs sequential scan, varying number of sequences"
    ~configs

(* --- Figure 12: answer-set size --------------------------------------------- *)

let fig12 ~fast =
  let count = if fast then 400 else 1067 in
  let market = Stocklike.batch ~seed:Bench_util.bench_seed ~count ~n:128 in
  let dataset = Dataset.of_series ~name:"stocks" market in
  let index = Kindex.build dataset in
  let state = Random.State.make [| 12 |] in
  let query = Queries.perturb state market.(0) ~amount:0.2 in
  let targets =
    List.filter
      (fun t -> t <= count)
      [ 1; 10; 25; 50; 100; 200; 300; 355; 400; 500; 700; 1000 ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Figure 12: time per query vs answer-set size (%d stock-like \
            series, n=128)"
           count)
      ~columns:[ "answers"; "index"; "scan (early)"; "index wins" ]
  in
  let crossover = ref None in
  List.iter
    (fun target ->
      let epsilon = calibrated_epsilon dataset query ~target in
      let repeats = 5 in
      let t_index =
        Bench_util.time_per_query ~repeats (fun () ->
            ignore (Kindex.range index ~query ~epsilon))
      in
      let t_scan =
        Bench_util.time_per_query ~repeats (fun () ->
            ignore (Seqscan.range_early_abandon dataset ~query ~epsilon))
      in
      let wins = t_index < t_scan in
      if (not wins) && !crossover = None then crossover := Some target;
      Table.add_row table
        [
          string_of_int target;
          fmt t_index;
          fmt t_scan;
          (if wins then "yes" else "no");
        ])
    targets;
  Table.print table;
  let measured =
    match !crossover with
    | None -> Printf.sprintf "index still ahead at %d answers" (List.hd (List.rev targets))
    | Some t ->
      Printf.sprintf "scan catches up around %d answers (%.0f%% of relation)"
        t
        (100. *. float_of_int t /. float_of_int count)
  in
  [
    Expectation.check
      ~experiment:"Figure 12"
      ~expectation:
        "the index wins for selective queries; sequential scan catches up \
         once the answer set nears a third of the relation"
      ~measured
      (match !crossover with
      | None -> true (* index ahead everywhere: stronger than the paper *)
      | Some t -> float_of_int t >= 0.1 *. float_of_int count);
  ]

(* --- Table 1: the self-join -------------------------------------------------- *)

let table1 ~fast =
  let count = if fast then 250 else 1067 in
  let market = Stocklike.batch ~seed:Bench_util.bench_seed ~count ~n:128 in
  let dataset = Dataset.of_series ~name:"stocks" market in
  let index = Kindex.build dataset in
  let spec = Spec.Moving_average 20 in
  (* Calibrate epsilon so the transformed join finds 12 unordered pairs,
     like the paper's answer set. *)
  let normals =
    Array.map
      (fun (e : Dataset.entry) -> Spec.apply_series spec e.Dataset.normal)
      (Dataset.entries dataset)
  in
  let pair_distances =
    let acc = ref [] in
    Array.iteri
      (fun i a ->
        for j = i + 1 to Array.length normals - 1 do
          acc := Distance.euclidean a normals.(j) :: !acc
        done)
      normals;
    Array.of_list !acc
  in
  (* Tiny slack keeps the boundary pair inside despite the 1e-12-scale
     difference between time- and frequency-domain distance values. *)
  let epsilon =
    Queries.threshold_for_count pair_distances ~count:12 *. (1. +. 1e-9)
  in
  (* Method a is slow; time it once. The faster methods get the median
     of three runs so near-equal comparisons are not at the mercy of
     scheduler noise. *)
  let a, ta = Simq_report.Timer.time (fun () -> Join.scan_full ~spec index ~epsilon) in
  let run f = Simq_report.Timer.time_median ~runs:3 f in
  let b, tb = run (fun () -> Join.scan_early_abandon ~spec index ~epsilon) in
  let c, tc = run (fun () -> Join.index_untransformed index ~epsilon) in
  let d, td = run (fun () -> Join.index_transformed ~spec index ~epsilon) in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Table 1: spatial self-join under T_mavg20 (%d series, n=128, \
            eps=%.3f)"
           count epsilon)
      ~columns:[ "method"; "time"; "answer size"; "dist comps"; "node accesses" ]
  in
  let row name result t =
    Table.add_row table
      [
        name;
        fmt t;
        string_of_int (List.length result.Join.pairs);
        string_of_int result.Join.distance_computations;
        string_of_int result.Join.node_accesses;
      ]
  in
  row "a  scan, no early abandon" a ta;
  row "b  scan, early abandon" b tb;
  row "c  index, no transformation" c tc;
  row "d  index, with T_mavg20" d td;
  Table.print table;
  let na = List.length a.Join.pairs
  and nd = List.length d.Join.pairs
  and nc = List.length c.Join.pairs in
  (* I/O model: the scan joins read the remaining relation once per outer
     sequence; the index joins touch tree nodes plus the candidate
     records they postprocess. *)
  let pages = Simq_storage.Relation.pages (Dataset.relation dataset) in
  let scan_page_reads = pages * (count - 1) / 2 in
  let index_io r = r.Join.node_accesses + r.Join.distance_computations in
  let io_ratio r = float_of_int scan_page_reads /. float_of_int (index_io r) in
  [
    Expectation.check ~experiment:"Table 1"
      ~expectation:"method d finds the paper-sized answer set, twice (both \
                    directions)"
      ~measured:(Printf.sprintf "a=%d pairs, d=%d" na nd)
      (na = 12 && nd = 24);
    Expectation.check ~experiment:"Table 1"
      ~expectation:"the untransformed join (c) finds fewer pairs than the \
                    transformed one (d)"
      ~measured:(Printf.sprintf "c=%d, d=%d" nc nd)
      (nc < nd);
    Expectation.check ~experiment:"Table 1"
      ~expectation:"early abandoning beats the naive scan (paper: 10x)"
      ~measured:(Printf.sprintf "a=%s, b=%s (%.1fx)" (fmt ta) (fmt tb) (ta /. tb))
      (tb < ta);
    Expectation.check ~experiment:"Table 1"
      ~expectation:
        "the index joins beat the early-abandon scan in I/O (paper's 9-15x \
         was disk-bound)"
      ~measured:
        (Printf.sprintf
           "scan join ~%d page reads; index joins %d (c, %.0fx less) / %d \
            (d, %.0fx less) accesses"
           scan_page_reads (index_io c) (io_ratio c) (index_io d) (io_ratio d))
      (io_ratio c > 4. && io_ratio d > 4.);
    Expectation.check ~experiment:"Table 1"
      ~expectation:
        "in wall-clock terms the index joins stay competitive with the \
         early-abandon scan (in-memory scans are far cheaper than 1995 \
         disk scans; the paper's ratio shows up in the I/O counts above)"
      ~measured:
        (Printf.sprintf "b=%s, c=%s, d=%s" (fmt tb) (fmt tc) (fmt td))
      (tc < 1.5 *. tb && td < 3. *. tb);
    Expectation.check ~experiment:"Table 1"
      ~expectation:"d is a bit slower than c (transformation + larger answer)"
      ~measured:(Printf.sprintf "c=%s, d=%s" (fmt tc) (fmt td))
      (td >= tc *. 0.8);
  ]

(* --- framework benchmarks ------------------------------------------------------ *)

let random_string state len =
  String.init len (fun _ -> Char.chr (Char.code 'a' + Random.State.int state 6))

let edit_dp ~fast =
  let open Simq_rewrite in
  let lengths = if fast then [ 8; 16; 32 ] else [ 8; 16; 32; 64; 128 ] in
  let rules =
    Rule.rewrite ~lhs:"ab" ~rhs:"ba" ~cost:0.5
    :: Rule.rewrite ~lhs:"abc" ~rhs:"x" ~cost:0.7
    :: Rule.levenshtein
  in
  let state = Random.State.make [| 5 |] in
  let table =
    Table.create
      ~title:"Framework: generalised edit-distance DP (rule set of 5)"
      ~columns:[ "length"; "time/pair"; "cells/us" ]
  in
  let times =
    List.map
      (fun len ->
        let pairs =
          List.init 10 (fun _ ->
              (random_string state len, random_string state len))
        in
        let t =
          Bench_util.time_per_query ~repeats:3 (fun () ->
              List.iter
                (fun (x, y) -> ignore (Gen_edit.distance ~rules x y))
                pairs)
          /. 10.
        in
        let cells = float_of_int ((len + 1) * (len + 1)) in
        Table.add_row table
          [
            string_of_int len;
            fmt t;
            Printf.sprintf "%.0f" (cells /. (t *. 1e6));
          ];
        (len, t))
      lengths
  in
  Table.print table;
  let _, t_min = List.hd times in
  let len_max, t_max = List.nth times (List.length times - 1) in
  let len_min, _ = List.hd times in
  let growth = t_max /. t_min in
  let quadratic = float_of_int (len_max * len_max) /. float_of_int (len_min * len_min) in
  [
    Expectation.check ~experiment:"Framework DP"
      ~expectation:"minimal-cost reduction is polynomial (≈ quadratic) under \
                    the non-cascading semantics"
      ~measured:
        (Printf.sprintf "time grew %.0fx for a %.0fx cell-count increase"
           growth quadratic)
      (growth < 8. *. quadratic);
  ]

let eq10 ~fast =
  let open Simq_core in
  let shift delta cost =
    Transformation.create
      ~name:(Printf.sprintf "shift%+g" delta)
      ~cost
      (fun x -> x +. delta)
  in
  let d0 x y = Float.abs (x -. y) in
  let sizes = if fast then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let table =
    Table.create
      ~title:"Framework: Eq. 10 similarity search (bound 10, 1-d objects)"
      ~columns:[ "transformations"; "time/distance"; "expansions bounded" ]
  in
  List.iter
    (fun size ->
      let transformations =
        List.init size (fun i -> shift (float_of_int (i + 1)) 1.)
      in
      let t =
        Bench_util.time_per_query ~repeats:20 (fun () ->
            ignore
              (Similarity.distance ~bound:10. ~max_expansions:100_000
                 ~transformations ~d0 0. 37.))
      in
      Table.add_row table [ string_of_int size; fmt t; "yes" ])
    sizes;
  Table.print table;
  [
    Expectation.check ~experiment:"Framework Eq.10"
      ~expectation:"cost-bounded similarity distance is computable by \
                    best-first search"
      ~measured:"all configurations completed within the expansion budget"
      true;
  ]

let vptree ~fast =
  let open Simq_metric in
  let count = if fast then 500 else 5000 in
  let state = Random.State.make [| 6 |] in
  let items =
    Array.init count (fun _ ->
        Array.init 4 (fun _ -> Random.State.float state 100.))
  in
  let euclid (a : float array) b =
    let acc = ref 0. in
    for i = 0 to 3 do
      let d = a.(i) -. b.(i) in
      acc := !acc +. (d *. d)
    done;
    sqrt !acc
  in
  let counted, calls = Metric.counted euclid in
  let tree = Vp_tree.build ~dist:counted items in
  let build_calls = calls () in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Framework: VP-tree vs linear scan (%d 4-d points, distance \
            computations per range query)"
           count)
      ~columns:[ "radius"; "vp-tree"; "linear scan"; "saved" ]
  in
  let all_saved = ref true in
  List.iter
    (fun radius ->
      let before = calls () in
      ignore (Vp_tree.range tree ~query:items.(0) ~radius);
      let vp_calls = calls () - before in
      if vp_calls >= count then all_saved := false;
      Table.add_row table
        [
          Printf.sprintf "%.0f" radius;
          string_of_int vp_calls;
          string_of_int count;
          Printf.sprintf "%.0f%%"
            (100. *. (1. -. (float_of_int vp_calls /. float_of_int count)));
        ])
    [ 5.; 10.; 20.; 40. ];
  Table.print table;
  ignore build_calls;
  [
    Expectation.check ~experiment:"Framework VP-tree"
      ~expectation:"the metric index prunes distance computations for \
                    selective queries"
      ~measured:
        (if !all_saved then "fewer computations than a scan at every radius"
         else "no pruning at some radius")
      !all_saved;
  ]

(* --- ablations --------------------------------------------------------------------- *)

(* How many DFT coefficients should the index keep? More features mean
   fewer false hits but a higher-dimensional (worse-behaved) tree. *)
let ablation_k ~fast =
  let count = if fast then 300 else 1067 in
  let market = Stocklike.batch ~seed:Bench_util.bench_seed ~count ~n:128 in
  let dataset = Dataset.of_series ~name:"stocks" market in
  let state = Random.State.make [| 7 |] in
  let queries =
    List.init 10 (fun i ->
        Queries.perturb state market.(i * 13 mod count) ~amount:0.3)
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation: index feature count k (%d stock-like series, n=128)"
           count)
      ~columns:[ "k"; "dims"; "time/query"; "candidates"; "answers" ]
  in
  let candidate_counts =
    List.map
      (fun k ->
        let config = { Feature.k; representation = Simq_geometry.Coords.Polar } in
        let index = Kindex.build ~config dataset in
        let run query =
          let epsilon = selective_epsilon dataset query in
          Kindex.range index ~query ~epsilon
        in
        let results = List.map run queries in
        let candidates =
          List.fold_left (fun acc r -> acc + r.Kindex.candidates) 0 results
        in
        let answers =
          List.fold_left
            (fun acc r -> acc + List.length r.Kindex.answers)
            0 results
        in
        let time =
          Bench_util.time_per_query ~repeats:5 (fun () ->
              List.iter (fun q -> ignore (run q)) queries)
          /. float_of_int (List.length queries)
        in
        Table.add_row table
          [
            string_of_int k;
            string_of_int (Feature.dims config);
            fmt time;
            string_of_int candidates;
            string_of_int answers;
          ];
        candidates)
      [ 1; 2; 3; 4 ]
  in
  Table.print table;
  let first = List.hd candidate_counts in
  let last = List.nth candidate_counts (List.length candidate_counts - 1) in
  [
    Expectation.check ~experiment:"Ablation k"
      ~expectation:"more coefficients filter more candidates (the DFT \
                    energy-concentration argument)"
      ~measured:(Printf.sprintf "candidates %d (k=1) -> %d (k=4)" first last)
      (last <= first);
  ]

(* Polar vs rectangular coordinates, for the transformations that are
   safe in both (Theorems 2 and 3 overlap on real stretches). *)
let ablation_repr ~fast =
  let count = if fast then 300 else 1067 in
  let market = Stocklike.batch ~seed:Bench_util.bench_seed ~count ~n:128 in
  let dataset = Dataset.of_series ~name:"stocks" market in
  let state = Random.State.make [| 8 |] in
  let queries =
    List.init 10 (fun i ->
        Queries.perturb state market.(i * 13 mod count) ~amount:0.3)
  in
  let table =
    Table.create
      ~title:"Ablation: polar vs rectangular representation (spec = rev & id)"
      ~columns:[ "representation"; "time/query"; "candidates"; "answers" ]
  in
  let run_with representation =
    let config = { Feature.k = 2; representation } in
    let index = Kindex.build ~config dataset in
    let run spec query =
      let epsilon = selective_epsilon dataset query in
      Kindex.range ~spec index ~query ~epsilon
    in
    (* Reversal exercises the transformed traversal for the timing;
       identity yields non-empty answer sets for the equality check. *)
    let results = List.map (run Spec.Reverse) queries in
    let candidates =
      List.fold_left (fun acc r -> acc + r.Kindex.candidates) 0 results
    in
    let answers =
      List.fold_left
        (fun acc r -> acc + List.length r.Kindex.answers)
        0
        (List.map (run Spec.Identity) queries)
    in
    let time =
      Bench_util.time_per_query ~repeats:5 (fun () ->
          List.iter (fun q -> ignore (run Spec.Reverse q)) queries)
      /. float_of_int (List.length queries)
    in
    let name =
      match representation with
      | Simq_geometry.Coords.Polar -> "polar"
      | Simq_geometry.Coords.Rectangular -> "rectangular"
    in
    Table.add_row table
      [ name; fmt time; string_of_int candidates; string_of_int answers ];
    (candidates, answers)
  in
  let polar_c, polar_a = run_with Simq_geometry.Coords.Polar in
  let rect_c, rect_a = run_with Simq_geometry.Coords.Rectangular in
  Table.print table;
  ignore (polar_c, rect_c);
  [
    Expectation.check ~experiment:"Ablation repr"
      ~expectation:"both representations return the same answers (both are \
                    safe for real stretches); the paper chose polar for the \
                    wider class of safe transformations"
      ~measured:
        (Printf.sprintf "answers polar=%d rect=%d; candidates %d vs %d"
           polar_a rect_a polar_c rect_c)
      (polar_a = rect_a && polar_a > 0);
  ]

(* R* vs Guttman insertion vs STR bulk loading, on the real feature
   distribution. *)
let ablation_rtree ~fast =
  let count = if fast then 500 else 2000 in
  let market = Stocklike.batch ~seed:Bench_util.bench_seed ~count ~n:128 in
  let dataset = Dataset.of_series ~name:"stocks" market in
  let config = Feature.default in
  let points =
    Array.map
      (fun (e : Dataset.entry) -> (Feature.point config e, e.Dataset.id))
      (Dataset.entries dataset)
  in
  let dims = Feature.dims config in
  let module Rstar = Simq_rtree.Rstar in
  let query_rects =
    let state = Random.State.make [| 9 |] in
    List.init 20 (fun _ ->
        let p, _ = points.(Random.State.int state count) in
        let lo = Array.map (fun v -> v -. 0.2) p in
        let hi = Array.map (fun v -> v +. 0.2) p in
        Simq_geometry.Rect.create ~lo ~hi)
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation: R-tree construction (%d six-dimensional feature \
            points)"
           count)
      ~columns:[ "method"; "build time"; "accesses / 20 queries" ]
  in
  let measure name build =
    let tree, build_time = Simq_report.Timer.time build in
    Rstar.reset_stats tree;
    List.iter (fun rect -> ignore (Rstar.search_rect tree rect)) query_rects;
    let accesses = Rstar.node_accesses tree in
    Table.add_row table [ name; fmt build_time; string_of_int accesses ];
    (build_time, accesses)
  in
  let insert_build variant () =
    let tree = Rstar.create ~variant ~dims () in
    Array.iter (fun (p, v) -> Rstar.insert tree p v) points;
    tree
  in
  let _, rstar_accesses =
    measure "R* insertion" (insert_build Rstar.Rstar_variant)
  in
  let _, guttman_accesses =
    measure "Guttman insertion" (insert_build Rstar.Guttman_variant)
  in
  let bulk_time, bulk_accesses =
    measure "STR bulk load" (fun () -> Simq_rtree.Bulk.load ~dims points)
  in
  ignore bulk_time;
  Table.print table;
  [
    Expectation.check ~experiment:"Ablation rtree"
      ~expectation:"the R* heuristics (BKSS90) produce a better tree than \
                    Guttman's classic R-tree"
      ~measured:
        (Printf.sprintf "query accesses: R*=%d, Guttman=%d, STR=%d"
           rstar_accesses guttman_accesses bulk_accesses)
      (rstar_accesses <= guttman_accesses);
  ]

(* Subsequence index layouts: one entry per window vs FRM94-style MBR
   trails. *)
let ablation_trails ~fast =
  let count = if fast then 20 else 60 in
  let n = 512 and window = 32 in
  let series = Stocklike.batch ~seed:(Bench_util.derived_seed 29) ~count ~n in
  let state = Random.State.make [| 10 |] in
  let queries =
    List.init 10 (fun i ->
        let sid = i * 7 mod count in
        let off = Random.State.int state (n - window + 1) in
        Queries.perturb state
          (Series.subsequence series.(sid) ~pos:off ~len:window)
          ~amount:0.05)
  in
  let epsilon = 1.0 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation: subsequence index layout (%d series x %d, window %d)"
           count n window)
      ~columns:
        [ "layout"; "entries"; "build"; "time/query"; "positions checked" ]
  in
  let run name build =
    let index, build_time = Simq_report.Timer.time build in
    let checked = ref 0 in
    let time =
      Bench_util.time_per_query ~repeats:3 (fun () ->
          checked := 0;
          List.iter
            (fun query ->
              let _, c = Subseq.range index ~query ~epsilon in
              checked := !checked + c)
            queries)
      /. float_of_int (List.length queries)
    in
    Table.add_row table
      [
        name;
        string_of_int (Subseq.index_entries index);
        fmt build_time;
        fmt time;
        string_of_int !checked;
      ];
    (Subseq.index_entries index, time)
  in
  let point_entries, _ = run "point per window" (fun () -> Subseq.build ~window series) in
  let trail_entries, _ =
    run "MBR trails (T=8)" (fun () -> Subseq.build ~trail:8 ~window series)
  in
  Table.print table;
  [
    Expectation.check ~experiment:"Ablation trails"
      ~expectation:"MBR trails shrink the subsequence index by ~T x with \
                    identical answers (FRM94's ST-index tradeoff)"
      ~measured:
        (Printf.sprintf "%d entries -> %d" point_entries trail_entries)
      (trail_entries * 7 <= point_entries);
  ]

(* --- multicore scaling ------------------------------------------------------------ *)

(* The parallel execution layer under the paper's workloads, from both
   ends of the multicore overhaul: intra-query chunking (dataset
   preparation, the sequential-scan baseline, the scan self-join) and
   the inter-query batch executor, each at 1/2/4/N domains. Build, scan
   and batch run on a large dataset (10^5 series full / smaller in
   fast mode) where per-chunk work dwarfs scheduling overhead; the
   quadratic self-join keeps a moderate dataset. Two claims: the
   answers are bit-identical at every domain count (always asserted —
   this is Lemma 1 under parallelism), and at 4 domains every speedup
   column exceeds 1.0 (asserted only on full runs with >= 4 cores;
   timing on oversubscribed or tiny configurations is noise). *)
let par ~fast =
  let module Pool = Simq_parallel.Pool in
  let count = if fast then 150 else 600 in
  let n = if fast then 64 else 128 in
  let repeats = if fast then 1 else 2 in
  let batch = Stocklike.batch ~seed:Bench_util.bench_seed ~count ~n in
  let dataset = Dataset.of_series ~pool:Pool.sequential ~name:"stocks" batch in
  let index = Kindex.build dataset in
  let query =
    Queries.perturb
      (Random.State.make [| Bench_util.derived_seed 11 |])
      batch.(0) ~amount:0.5
  in
  let epsilon = calibrated_epsilon dataset query ~target:10 in
  let join_epsilon = epsilon /. 2. in
  (* The large workload: enough per-chunk work that the adaptive
     chunking has something to amortise, and a 16-query batch for the
     inter-query executor. *)
  let large_count = if fast then 4_000 else 100_000 in
  let large_n = 64 in
  let large_batch =
    Stocklike.batch ~seed:(Bench_util.derived_seed 13) ~count:large_count
      ~n:large_n
  in
  let large_dataset =
    Dataset.of_series ~pool:Pool.sequential ~name:"stocks-large" large_batch
  in
  let large_query =
    Queries.perturb
      (Random.State.make [| Bench_util.derived_seed 14 |])
      large_batch.(0) ~amount:0.5
  in
  let large_epsilon =
    calibrated_epsilon large_dataset large_query ~target:20
  in
  let batch_queries =
    Array.of_list
      (List.map
         (fun q -> (q, large_epsilon))
         (Bench_util.queries_for ~seed:(Bench_util.derived_seed 12) ~count:16
            large_batch))
  in
  let ref_scan =
    Seqscan.range_early_abandon ~pool:Pool.sequential large_dataset
      ~query:large_query ~epsilon:large_epsilon
  in
  let ref_join =
    Join.scan_early_abandon ~pool:Pool.sequential index ~epsilon:join_epsilon
  in
  let ref_batch =
    Seqscan.range_batch ~pool:Pool.sequential large_dataset
      ~queries:batch_queries
  in
  let cores = max 1 (Domain.recommended_domain_count ()) in
  let domain_counts =
    List.sort_uniq compare (if cores > 4 then [ 1; 2; 4; cores ] else [ 1; 2; 4 ])
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Scaling: domain pool (%d stock-like series n=%d; self-join on \
            %d n=%d; %d core%s)"
           large_count large_n count n cores
           (if cores = 1 then "" else "s"))
      ~columns:[ "domains"; "build"; "scan"; "self-join"; "batch(16)" ]
  in
  let scan_equal (a : Seqscan.result) (b : Seqscan.result) =
    List.map (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d)) a.Seqscan.answers
    = List.map (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d)) b.Seqscan.answers
    && a.Seqscan.full_computations = b.Seqscan.full_computations
    && a.Seqscan.coefficients_touched = b.Seqscan.coefficients_touched
  in
  let all_equal = ref true in
  let runs =
    List.map
      (fun domains ->
        let pool = Pool.create ~domains in
        let built = ref large_dataset in
        let build_time =
          Bench_util.time_per_query ~repeats (fun () ->
              built := Dataset.of_series ~pool ~name:"stocks-large" large_batch)
        in
        let scan = ref ref_scan in
        let scan_time =
          Bench_util.time_per_query ~repeats (fun () ->
              scan :=
                Seqscan.range_early_abandon ~pool large_dataset
                  ~query:large_query ~epsilon:large_epsilon)
        in
        let join = ref ref_join in
        let join_time =
          Bench_util.time_per_query ~repeats (fun () ->
              join :=
                Join.scan_early_abandon ~pool index ~epsilon:join_epsilon)
        in
        let batch_results = ref ref_batch in
        let batch_time =
          Bench_util.time_per_query ~repeats (fun () ->
              batch_results :=
                Seqscan.range_batch ~pool large_dataset ~queries:batch_queries)
        in
        let build_ok =
          Array.for_all2
            (fun (a : Dataset.entry) (b : Dataset.entry) ->
              a.Dataset.normal = b.Dataset.normal
              && a.Dataset.spectrum = b.Dataset.spectrum)
            (Dataset.entries large_dataset)
            (Dataset.entries !built)
        in
        let join_ok =
          !join.Join.pairs = ref_join.Join.pairs
          && !join.Join.distance_computations
             = ref_join.Join.distance_computations
        in
        let batch_ok =
          Array.length !batch_results = Array.length ref_batch
          && Array.for_all2 scan_equal ref_batch !batch_results
        in
        if not (build_ok && scan_equal ref_scan !scan && join_ok && batch_ok)
        then all_equal := false;
        Pool.shutdown pool;
        Table.add_row table
          [
            string_of_int domains; fmt build_time; fmt scan_time;
            fmt join_time; fmt batch_time;
          ];
        (domains, build_time, scan_time, join_time, batch_time))
      domain_counts
  in
  Table.print table;
  let base sel = match runs with (_, b, s, j, q) :: _ -> sel (b, s, j, q) | [] -> 1. in
  let speedup sel (_, b, s, j, q) =
    let t = sel (b, s, j, q) in
    if t > 0. then base sel /. t else 1.
  in
  let sel_build (b, _, _, _) = b
  and sel_scan (_, s, _, _) = s
  and sel_join (_, _, j, _) = j
  and sel_batch (_, _, _, q) = q in
  let at4 =
    List.find_opt (fun (d, _, _, _, _) -> d = 4) runs
    |> Option.value ~default:(List.nth runs (List.length runs - 1))
  in
  let s_build = speedup sel_build at4
  and s_scan = speedup sel_scan at4
  and s_join = speedup sel_join at4
  and s_batch = speedup sel_batch at4 in
  (* BENCH_par.json: the raw speedup curves, for tracking across runs. *)
  let oc = open_out "BENCH_par.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"par\",\n  \"fast\": %b,\n  \"seed\": %d,\n\
    \  \"series\": { \"count\": %d, \"n\": %d, \"batch_queries\": %d },\n\
    \  \"join_series\": { \"count\": %d, \"n\": %d },\n\
    \  \"adaptive_chunking\": { \"min_chunk_quantum\": %d, \
     \"coarse_chunks_per_domain\": %d, \"max_chunks_per_domain\": %d },\n\
    \  \"recommended_domain_count\": %d,\n  \"runs\": [\n"
    fast Bench_util.bench_seed large_count large_n
    (Array.length batch_queries) count n Pool.min_chunk_quantum
    Pool.coarse_chunks_per_domain Pool.max_chunks_per_domain cores;
  List.iteri
    (fun i (d, b, s, j, q) ->
      Printf.fprintf oc
        "    { \"domains\": %d, \"build_s\": %.6f, \"scan_s\": %.6f, \
         \"join_s\": %.6f, \"batch_s\": %.6f, \"build_speedup\": %.3f, \
         \"scan_speedup\": %.3f, \"join_speedup\": %.3f, \
         \"batch_speedup\": %.3f }%s\n"
        d b s j q
        (speedup sel_build (d, b, s, j, q))
        (speedup sel_scan (d, b, s, j, q))
        (speedup sel_join (d, b, s, j, q))
        (speedup sel_batch (d, b, s, j, q))
        (if i = List.length runs - 1 then "" else ","))
    runs;
  Printf.fprintf oc "  ],\n  \"all_results_equal\": %b\n}\n" !all_equal;
  close_out oc;
  print_endline "wrote BENCH_par.json";
  let speedup_claim =
    let measured =
      Printf.sprintf
        "4-domain speedups: build %.2fx, scan %.2fx, join %.2fx, batch %.2fx"
        s_build s_scan s_join s_batch
    in
    if (not fast) && cores >= 4 then
      Expectation.check ~experiment:"Scaling"
        ~expectation:
          "at 4 domains every speedup column — dataset build, scan, \
           self-join and the query batch — exceeds 1.0"
        ~measured
        (List.for_all (fun s -> s > 1.) [ s_build; s_scan; s_join; s_batch ])
    else
      Expectation.partial ~experiment:"Scaling"
        ~expectation:
          "at 4 domains every speedup column — dataset build, scan, \
           self-join and the query batch — exceeds 1.0"
        ~measured:
          (Printf.sprintf "%s (%s — timing not asserted)" measured
             (if cores < 4 then
                Printf.sprintf "only %d core%s available" cores
                  (if cores = 1 then "" else "s")
              else "fast mode"))
  in
  [
    Expectation.check ~experiment:"Scaling"
      ~expectation:
        "parallel execution is invisible in the answers: every domain \
         count returns bit-identical results and counters (Lemma 1 \
         under parallelism)"
      ~measured:
        (if !all_equal then
           Printf.sprintf "identical at every domain count in %s"
             (String.concat "/" (List.map string_of_int domain_counts))
         else "MISMATCH against the single-domain reference")
      !all_equal;
    speedup_claim;
  ]

(* --- fault injection and budgets ------------------------------------------------- *)

(* The resilience layer's two promises, measured: (1) the guard hooks in
   the scan and traversal loops cost ~nothing while no injector or
   budget is installed — the checked entry points with an unlimited
   budget return bit-identical answers at indistinguishable cost; and
   (2) under seeded transient node faults every query still returns the
   exact answer (possibly by degrading to the scan), with the
   degradation rate growing with the fault rate and visible in the
   planner counters. *)
let ablation_fault ~fast =
  let module Pool = Simq_parallel.Pool in
  let module Injector = Simq_fault.Injector in
  let module Retry = Simq_fault.Retry in
  let count = if fast then 200 else 600 in
  let n = if fast then 64 else 128 in
  let repeats = if fast then 3 else 10 in
  let batch = Stocklike.batch ~seed:(Bench_util.derived_seed 31) ~count ~n in
  let dataset = Dataset.of_series ~pool:Pool.sequential ~name:"stocks" batch in
  let index = Kindex.build dataset in
  let queries =
    with_selective_epsilons dataset
      (Bench_util.queries_for ~seed:(Bench_util.derived_seed 32) ~count:12
         batch)
  in
  let answer_ids answers =
    List.map (fun ((e : Dataset.entry), _) -> e.Dataset.id) answers
  in
  (* Part 1: guard-hook overhead with nothing installed. *)
  let time f =
    Bench_util.time_per_query ~repeats (fun () -> List.iter f queries)
    /. float_of_int (List.length queries)
  in
  let get = function Ok r -> r | Error _ -> assert false in
  let t_index_plain =
    time (fun (q, eps) -> ignore (Kindex.range index ~query:q ~epsilon:eps))
  in
  let t_index_checked =
    time (fun (q, eps) ->
        ignore (get (Kindex.range_checked index ~query:q ~epsilon:eps)))
  in
  let t_scan_plain =
    time (fun (q, eps) ->
        ignore
          (Seqscan.range_early_abandon ~pool:Pool.sequential dataset ~query:q
             ~epsilon:eps))
  in
  let t_scan_checked =
    time (fun (q, eps) ->
        ignore
          (get
             (Seqscan.range_checked ~pool:Pool.sequential dataset ~query:q
                ~epsilon:eps)))
  in
  let guards_exact =
    List.for_all
      (fun (q, eps) ->
        let plain = Kindex.range index ~query:q ~epsilon:eps in
        let checked = get (Kindex.range_checked index ~query:q ~epsilon:eps) in
        let scan_plain =
          Seqscan.range_early_abandon ~pool:Pool.sequential dataset ~query:q
            ~epsilon:eps
        in
        let scan_checked =
          get
            (Seqscan.range_checked ~pool:Pool.sequential dataset ~query:q
               ~epsilon:eps)
        in
        checked.Kindex.answers = plain.Kindex.answers
        && checked.Kindex.candidates = plain.Kindex.candidates
        && scan_checked.Seqscan.answers = scan_plain.Seqscan.answers
        && scan_checked.Seqscan.full_computations
           = scan_plain.Seqscan.full_computations)
      queries
  in
  let overhead checked plain = if plain > 0. then checked /. plain else 1. in
  let oh_index = overhead t_index_checked t_index_plain in
  let oh_scan = overhead t_scan_checked t_scan_plain in
  let overhead_table =
    Table.create
      ~title:
        (Printf.sprintf
           "Fault layer: guard overhead, nothing installed (%d series, n=%d)"
           count n)
      ~columns:[ "path"; "plain"; "checked"; "ratio" ]
  in
  Table.add_row overhead_table
    [ "k-index range"; fmt t_index_plain; fmt t_index_checked;
      Printf.sprintf "%.3f" oh_index ];
  Table.add_row overhead_table
    [ "seq scan"; fmt t_scan_plain; fmt t_scan_checked;
      Printf.sprintf "%.3f" oh_scan ];
  Table.print overhead_table;
  (* Part 2: degradation rate vs node-access fault rate. *)
  let reference =
    List.map
      (fun (q, eps) -> answer_ids (Kindex.range index ~query:q ~epsilon:eps).Kindex.answers)
      queries
  in
  let retry = Retry.policy ~max_attempts:2 ~base_delay_s:0. () in
  let rates = [ 0.0; 0.02; 0.1; 0.3 ] in
  let degradation_table =
    Table.create
      ~title:
        (Printf.sprintf
           "Fault layer: degradation under transient node faults (%d queries, \
            retry x%d)"
           (List.length queries) retry.Retry.max_attempts)
      ~columns:
        [ "fault rate"; "degraded"; "retries"; "failures"; "degradation rate";
          "exact" ]
  in
  let curve =
    List.map
      (fun probability ->
        let injector =
          Injector.create
            ~node_accesses:(Injector.transient ~probability ())
            ~seed:(Bench_util.derived_seed 33)
            ()
        in
        Simq_rtree.Rstar.set_injector (Kindex.tree index) (Some injector);
        let counters = Planner.create_counters () in
        let exact =
          List.for_all2
            (fun (q, eps) expected ->
              match
                Planner.range_resilient ~pool:Pool.sequential ~retry ~counters
                  index ~query:q ~epsilon:eps
              with
              | Ok r -> answer_ids r.Planner.answers = expected
              | Error _ -> true (* a structured error is safe; silence isn't *))
            queries reference
        in
        Simq_rtree.Rstar.set_injector (Kindex.tree index) None;
        let rate = Planner.degradation_rate counters in
        Table.add_row degradation_table
          [
            Printf.sprintf "%.2f" probability;
            string_of_int counters.Planner.degraded;
            string_of_int counters.Planner.retries;
            string_of_int counters.Planner.failures;
            Printf.sprintf "%.2f" rate;
            (if exact then "yes" else "NO");
          ];
        (probability, rate, exact))
      rates
  in
  Table.print degradation_table;
  let rate_at p =
    match List.find_opt (fun (p', _, _) -> p' = p) curve with
    | Some (_, r, _) -> r
    | None -> 0.
  in
  let all_exact = List.for_all (fun (_, _, e) -> e) curve in
  let overhead_measured =
    Printf.sprintf "checked/plain ratio: %.3f (index), %.3f (scan)" oh_index
      oh_scan
  in
  let overhead_claim =
    if fast then
      Expectation.partial ~experiment:"Fault layer"
        ~expectation:
          "guard hooks cost ~0 with no injector or budget installed"
        ~measured:
          (overhead_measured ^ " (fast mode — timing not asserted)")
    else
      Expectation.check ~experiment:"Fault layer"
        ~expectation:
          "guard hooks cost ~0 with no injector or budget installed \
           (checked/plain < 1.5)"
        ~measured:overhead_measured
        (oh_index < 1.5 && oh_scan < 1.5)
  in
  [
    Expectation.check ~experiment:"Fault layer"
      ~expectation:
        "checked entry points with an unlimited budget return answers and \
         counters bit-identical to the unchecked paths"
      ~measured:(if guards_exact then "identical" else "MISMATCH")
      guards_exact;
    overhead_claim;
    Expectation.check ~experiment:"Fault layer"
      ~expectation:
        "under injected node faults every query returns the exact answer \
         (degrading to the scan when retries run out); degradation is 0 \
         with no faults and visible in the counters at the highest rate"
      ~measured:
        (Printf.sprintf
           "degradation rate %.2f at fault rate 0, %.2f at %.2f; answers %s"
           (rate_at 0.) (rate_at 0.3) 0.3
           (if all_exact then "exact" else "WRONG"))
      (all_exact && rate_at 0. = 0. && rate_at 0.3 > 0.);
  ]

(* --- planner instrumentation ------------------------------------------------------ *)

(* The cost-based planner, observed end to end: sweep epsilon across the
   selectivity range of one workload, record for each query the chosen
   access path and the estimated vs actual answer count, and cross-check
   the registry's planner counter family against the per-run tally. The
   sweep (plans, estimates, actuals, counters) is written to
   BENCH_planner.json in the working directory, like BENCH_par.json. *)
let planner ~fast =
  let module Pool = Simq_parallel.Pool in
  let module Metrics = Simq_obs.Metrics in
  let count = if fast then 200 else 600 in
  let n = if fast then 64 else 128 in
  let batch = Stocklike.batch ~seed:(Bench_util.derived_seed 51) ~count ~n in
  let dataset = Dataset.of_series ~pool:Pool.sequential ~name:"stocks" batch in
  let index = Kindex.build dataset in
  let stats = Planner.collect ~seed:(Bench_util.derived_seed 52) dataset in
  let query =
    Queries.perturb
      (Random.State.make [| Bench_util.derived_seed 53 |])
      batch.(0) ~amount:0.5
  in
  let targets =
    List.sort_uniq compare
      (if fast then [ 1; 5; 20; count / 2; count ]
       else [ 1; 5; 20; 60; count / 3; 2 * count / 3; count ])
  in
  let m_path_index = Metrics.counter "simq_planner_path_index_total" in
  let m_path_scan = Metrics.counter "simq_planner_path_scan_total" in
  let rows =
    Metrics.with_enabled true (fun () ->
        Metrics.reset ();
        List.map
          (fun target ->
            let epsilon = calibrated_epsilon dataset query ~target in
            let r = Planner.range index stats ~query ~epsilon in
            (target, epsilon, r.Planner.plan, r.Planner.estimated_answers,
             List.length r.Planner.answers))
          targets)
  in
  let plan_name = function
    | Planner.Use_index -> "index"
    | Planner.Use_scan -> "scan"
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Planner: estimated vs actual answers across the selectivity \
            range (%d stock-like series, n=%d)"
           count n)
      ~columns:[ "target"; "epsilon"; "plan"; "estimated"; "actual" ]
  in
  List.iter
    (fun (target, epsilon, plan, estimated, actual) ->
      Table.add_row table
        [
          string_of_int target; Printf.sprintf "%.3f" epsilon; plan_name plan;
          Printf.sprintf "%.1f" estimated; string_of_int actual;
        ])
    rows;
  Table.print table;
  let n_index =
    List.length (List.filter (fun (_, _, p, _, _) -> p = Planner.Use_index) rows)
  in
  let n_scan = List.length rows - n_index in
  let c_index = Metrics.counter_total m_path_index in
  let c_scan = Metrics.counter_total m_path_scan in
  (* BENCH_planner.json: the sweep and the registry counters, for
     tracking across runs. *)
  let oc = open_out "BENCH_planner.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"planner\",\n  \"fast\": %b,\n  \"seed\": %d,\n\
    \  \"series\": { \"count\": %d, \"n\": %d },\n  \"sweep\": [\n"
    fast Bench_util.bench_seed count n;
  List.iteri
    (fun i (target, epsilon, plan, estimated, actual) ->
      Printf.fprintf oc
        "    { \"target\": %d, \"epsilon\": %.6f, \"plan\": %S, \
         \"estimated_answers\": %.3f, \"actual_answers\": %d }%s\n"
        target epsilon (plan_name plan) estimated actual
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc
    "  ],\n\
    \  \"counters\": { \"path_index\": %d, \"path_scan\": %d }\n}\n" c_index
    c_scan;
  close_out oc;
  print_endline "wrote BENCH_planner.json";
  let first_plan = match rows with (_, _, p, _, _) :: _ -> p | [] -> Planner.Use_scan in
  let last_plan =
    match List.rev rows with (_, _, p, _, _) :: _ -> p | [] -> Planner.Use_index
  in
  let estimates_monotone =
    let rec check = function
      | (_, _, _, a, _) :: ((_, _, _, b, _) :: _ as rest) ->
        a <= b && check rest
      | _ -> true
    in
    check rows
  in
  let mean_rel_error =
    Bench_util.mean
      (List.map
         (fun (_, _, _, estimated, actual) ->
           Float.abs (estimated -. float_of_int actual)
           /. Float.max 1. (float_of_int actual))
         rows)
  in
  [
    Expectation.check ~experiment:"Planner"
      ~expectation:
        "the planner picks the index at the selective end of the sweep and \
         the scan once the answer set covers the relation (the Figure 12 \
         crossover)"
      ~measured:
        (Printf.sprintf "plan %s at target 1, %s at target %d"
           (plan_name first_plan) (plan_name last_plan) count)
      (first_plan = Planner.Use_index && last_plan = Planner.Use_scan);
    Expectation.check ~experiment:"Planner"
      ~expectation:
        "the registry's planner counters agree with the per-run tally of \
         chosen paths"
      ~measured:
        (Printf.sprintf "registry index/scan = %d/%d, tally = %d/%d" c_index
           c_scan n_index n_scan)
      (c_index = n_index && c_scan = n_scan);
    Expectation.check ~experiment:"Planner"
      ~expectation:
        "estimated answer counts are monotone in epsilon (the selectivity \
         histogram is cumulative)"
      ~measured:
        (Printf.sprintf "monotone: %b, mean relative error %.2f"
           estimates_monotone mean_rel_error)
      estimates_monotone;
  ]

(* --- observability overhead and determinism --------------------------------------- *)

(* The observability layer's two promises, measured with the same
   methodology as [ablation_fault]: (1) instrumentation is invisible —
   answers are bit-identical with metrics on and off, and the enabled
   cost stays within a modest constant of the disabled cost (the
   disabled cost itself is one atomic load and branch per site, which no
   timer resolves); and (2) the merged integer counter totals of the
   query-level families are identical at every domain count — the
   instrumentation inherits the Lemma 1 determinism of the paths it
   observes. *)
let ablation_obs ~fast =
  let module Pool = Simq_parallel.Pool in
  let module Metrics = Simq_obs.Metrics in
  let count = if fast then 200 else 600 in
  let n = if fast then 64 else 128 in
  let repeats = if fast then 3 else 10 in
  let batch = Stocklike.batch ~seed:(Bench_util.derived_seed 61) ~count ~n in
  let dataset = Dataset.of_series ~pool:Pool.sequential ~name:"stocks" batch in
  let index = Kindex.build dataset in
  let queries =
    with_selective_epsilons dataset
      (Bench_util.queries_for ~seed:(Bench_util.derived_seed 62) ~count:12
         batch)
  in
  (* Part 1: cost and answers, metrics off vs on. *)
  let time f =
    Bench_util.time_per_query ~repeats (fun () -> List.iter f queries)
    /. float_of_int (List.length queries)
  in
  let run_index (q, eps) = ignore (Kindex.range index ~query:q ~epsilon:eps) in
  let run_scan (q, eps) =
    ignore
      (Seqscan.range_early_abandon ~pool:Pool.sequential dataset ~query:q
         ~epsilon:eps)
  in
  let t_index_off = Metrics.with_enabled false (fun () -> time run_index) in
  let t_index_on = Metrics.with_enabled true (fun () -> time run_index) in
  let t_scan_off = Metrics.with_enabled false (fun () -> time run_scan) in
  let t_scan_on = Metrics.with_enabled true (fun () -> time run_scan) in
  let answers_equal =
    List.for_all
      (fun (q, eps) ->
        let off =
          Metrics.with_enabled false (fun () ->
              Kindex.range index ~query:q ~epsilon:eps)
        in
        let on =
          Metrics.with_enabled true (fun () ->
              Kindex.range index ~query:q ~epsilon:eps)
        in
        off.Kindex.answers = on.Kindex.answers
        && off.Kindex.candidates = on.Kindex.candidates
        && off.Kindex.node_accesses = on.Kindex.node_accesses)
      queries
  in
  let overhead on off = if off > 0. then on /. off else 1. in
  let oh_index = overhead t_index_on t_index_off in
  let oh_scan = overhead t_scan_on t_scan_off in
  let overhead_table =
    Table.create
      ~title:
        (Printf.sprintf
           "Observability: metrics off vs on (%d series, n=%d)" count n)
      ~columns:[ "path"; "off"; "on"; "ratio" ]
  in
  Table.add_row overhead_table
    [ "k-index range"; fmt t_index_off; fmt t_index_on;
      Printf.sprintf "%.3f" oh_index ];
  Table.add_row overhead_table
    [ "seq scan"; fmt t_scan_off; fmt t_scan_on;
      Printf.sprintf "%.3f" oh_scan ];
  Table.print overhead_table;
  (* Part 2: merged counter totals across domain counts. The families
     checked are the query-level ones whose per-chunk adds cover the
     whole input exactly once (see the determinism note in
     Simq_obs.Metrics); pool self-metrics are excluded by design. *)
  let families =
    [
      "simq_scan_candidates_total"; "simq_scan_survivors_total";
      "simq_scan_early_abandon_total"; "simq_kindex_candidates_total";
      "simq_kindex_survivors_total";
    ]
  in
  let totals_at domains =
    let pool = Pool.create ~domains in
    let answers =
      Metrics.with_enabled true (fun () ->
          Metrics.reset ();
          List.map
            (fun (q, eps) ->
              let scan =
                Seqscan.range_early_abandon ~pool dataset ~query:q ~epsilon:eps
              in
              let idx = Kindex.range index ~query:q ~epsilon:eps in
              ( List.map
                  (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d))
                  scan.Seqscan.answers,
                List.map
                  (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d))
                  idx.Kindex.answers ))
            queries)
    in
    let totals =
      List.map (fun name -> Metrics.counter_total (Metrics.counter name))
        families
    in
    Pool.shutdown pool;
    (answers, totals)
  in
  let domain_counts = [ 1; 2; 4 ] in
  let runs = List.map (fun d -> (d, totals_at d)) domain_counts in
  let determinism_table =
    Table.create
      ~title:"Observability: merged counter totals vs domain count"
      ~columns:
        ("domains"
        :: List.map
             (fun name ->
               (* strip the simq_ prefix and _total suffix for width *)
               String.sub name 5 (String.length name - 11))
             families)
  in
  List.iter
    (fun (d, (_, totals)) ->
      Table.add_row determinism_table
        (string_of_int d :: List.map string_of_int totals))
    runs;
  Table.print determinism_table;
  let reference = match runs with (_, r) :: _ -> r | [] -> ([], []) in
  let deterministic =
    List.for_all (fun (_, (answers, totals)) ->
        answers = fst reference && totals = snd reference)
      runs
  in
  (* Part 3: request-id threading. Allocating and publishing a request
     id per query is one atomic increment and two ref writes — the
     on/off ratio on the index path must stay within the same modest
     constant as metric collection itself. *)
  let module Otrace = Simq_obs.Trace in
  let run_index_traced (q, eps) =
    Otrace.with_request
      (Otrace.new_request_id ())
      (fun () -> ignore (Kindex.range index ~query:q ~epsilon:eps))
  in
  (* A fresh adjacent baseline: the two arms must share allocator and
     cache state, or the ratio measures the experiment's history
     instead of the id threading. *)
  let t_ids_off = Metrics.with_enabled false (fun () -> time run_index) in
  let t_ids_on = Metrics.with_enabled false (fun () -> time run_index_traced) in
  let oh_ids = overhead t_ids_on t_ids_off in
  let ids_table =
    Table.create
      ~title:"Observability: request-id threading off vs on (k-index range)"
      ~columns:[ "mode"; "per query"; "ratio" ]
  in
  Table.add_row ids_table [ "plain"; fmt t_ids_off; "1.000" ];
  Table.add_row ids_table
    [ "with request ids"; fmt t_ids_on; Printf.sprintf "%.3f" oh_ids ];
  Table.print ids_table;
  (* Part 4: the same workload with a live history sampler — the
     sampler only snapshots the registry (merge-on-read), so every
     merged total must equal the sampler-free run at every domain
     count. *)
  let module History = Simq_obs.History in
  let totals_with_sampler domains =
    let pool = Pool.create ~domains in
    let history = History.create ~capacity:16 ~interval_s:0.01 () in
    History.start history;
    let totals =
      Metrics.with_enabled true (fun () ->
          Metrics.reset ();
          List.iter
            (fun (q, eps) ->
              ignore
                (Seqscan.range_early_abandon ~pool dataset ~query:q
                   ~epsilon:eps);
              ignore (Kindex.range index ~query:q ~epsilon:eps))
            queries;
          List.map
            (fun name -> Metrics.counter_total (Metrics.counter name))
            families)
    in
    History.stop history;
    Pool.shutdown pool;
    (totals, History.length history)
  in
  let sampler_runs =
    List.map (fun d -> (d, totals_with_sampler d)) domain_counts
  in
  let sampler_table =
    Table.create
      ~title:"Observability: merged totals with a live history sampler"
      ~columns:
        ("domains" :: "samples"
        :: List.map
             (fun name -> String.sub name 5 (String.length name - 11))
             families)
  in
  List.iter
    (fun (d, (totals, samples)) ->
      Table.add_row sampler_table
        (string_of_int d :: string_of_int samples
        :: List.map string_of_int totals))
    sampler_runs;
  Table.print sampler_table;
  let sampler_invariant =
    List.for_all
      (fun (_, (totals, _)) -> totals = snd reference)
      sampler_runs
  in
  (* BENCH_obs.json: the overhead ratios and the sampler sweep, for
     tracking across runs. *)
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"obs\",\n  \"fast\": %b,\n  \"seed\": %d,\n\
    \  \"series\": { \"count\": %d, \"n\": %d },\n\
    \  \"overhead\": { \"index\": %.6f, \"scan\": %.6f, \"request_ids\": \
     %.6f },\n\
    \  \"sampler_sweep\": [\n"
    fast Bench_util.bench_seed count n oh_index oh_scan oh_ids;
  List.iteri
    (fun i (d, (totals, samples)) ->
      Printf.fprintf oc
        "    { \"domains\": %d, \"samples\": %d, \"totals\": [%s] }%s\n" d
        samples
        (String.concat ", " (List.map string_of_int totals))
        (if i = List.length sampler_runs - 1 then "" else ","))
    sampler_runs;
  Printf.fprintf oc "  ],\n  \"sampler_invariant\": %b\n}\n" sampler_invariant;
  close_out oc;
  print_endline "wrote BENCH_obs.json";
  let overhead_measured =
    Printf.sprintf "on/off ratio: %.3f (index), %.3f (scan)" oh_index oh_scan
  in
  let overhead_claim =
    if fast then
      Expectation.partial ~experiment:"Observability"
        ~expectation:"enabling metrics costs only a modest constant"
        ~measured:(overhead_measured ^ " (fast mode — timing not asserted)")
    else
      Expectation.check ~experiment:"Observability"
        ~expectation:
          "enabling metrics costs only a modest constant (on/off < 1.5; \
           disabled cost is one branch per site)"
        ~measured:overhead_measured
        (oh_index < 1.5 && oh_scan < 1.5)
  in
  let ids_measured = Printf.sprintf "on/off ratio: %.3f (index)" oh_ids in
  let ids_claim =
    if fast then
      Expectation.partial ~experiment:"Observability"
        ~expectation:"request-id threading costs only a modest constant"
        ~measured:(ids_measured ^ " (fast mode — timing not asserted)")
    else
      Expectation.check ~experiment:"Observability"
        ~expectation:
          "request-id threading costs only a modest constant (on/off < \
           1.5; one atomic increment and two ref writes per query)"
        ~measured:ids_measured (oh_ids < 1.5)
  in
  [
    Expectation.check ~experiment:"Observability"
      ~expectation:
        "instrumentation is invisible in the answers: results and query \
         counters are bit-identical with metrics on and off"
      ~measured:(if answers_equal then "identical" else "MISMATCH")
      answers_equal;
    overhead_claim;
    ids_claim;
    Expectation.check ~experiment:"Observability"
      ~expectation:
        "merged integer counter totals of the query-level families are \
         identical at every domain count, and so are the answers"
      ~measured:
        (if deterministic then
           Printf.sprintf "identical totals and answers at %s domains"
             (String.concat "/" (List.map string_of_int domain_counts))
         else "MISMATCH against the single-domain reference")
      deterministic;
    Expectation.check ~experiment:"Observability"
      ~expectation:
        "a live history sampler only snapshots the registry: every merged \
         counter total equals the sampler-free run at every domain count"
      ~measured:
        (if sampler_invariant then
           Printf.sprintf "identical totals at %s domains with the sampler \
                           running"
             (String.concat "/" (List.map string_of_int domain_counts))
         else "MISMATCH against the sampler-free reference")
      sampler_invariant;
  ]

(* --- per-query profiling ----------------------------------------------------------- *)

(* The profiling layer end to end: answers and query counters
   bit-identical with a profile attached, the attach cost on both
   access paths (metrics enabled in both arms, so the ratio isolates
   the operator-tree recording itself), and cross-domain determinism —
   the rendered tree, timings stripped, is character-identical at 1, 2
   and 4 domains. Writes BENCH_profile.json. *)
let ablation_profile ~fast =
  let module Pool = Simq_parallel.Pool in
  let module Metrics = Simq_obs.Metrics in
  let module Profile = Simq_obs.Profile in
  let module Json = Simq_obs.Json in
  let count = if fast then 200 else 600 in
  let n = if fast then 64 else 128 in
  let repeats = if fast then 3 else 10 in
  let batch = Stocklike.batch ~seed:(Bench_util.derived_seed 81) ~count ~n in
  let dataset = Dataset.of_series ~pool:Pool.sequential ~name:"stocks" batch in
  let index = Kindex.build dataset in
  let queries =
    with_selective_epsilons dataset
      (Bench_util.queries_for ~seed:(Bench_util.derived_seed 82) ~count:12
         batch)
  in
  let time f =
    Metrics.with_enabled true (fun () ->
        Bench_util.time_per_query ~repeats (fun () -> List.iter f queries))
    /. float_of_int (List.length queries)
  in
  let run_index ?profile (q, eps) =
    ignore (Kindex.range ?profile index ~query:q ~epsilon:eps)
  in
  let run_scan ?profile (q, eps) =
    ignore
      (Seqscan.range_early_abandon ~pool:Pool.sequential ?profile dataset
         ~query:q ~epsilon:eps)
  in
  let t_index_off = time (fun q -> run_index q) in
  let t_index_on = time (fun q -> run_index ~profile:(Profile.create ()) q) in
  let t_scan_off = time (fun q -> run_scan q) in
  let t_scan_on = time (fun q -> run_scan ~profile:(Profile.create ()) q) in
  let answers_equal =
    List.for_all
      (fun (q, eps) ->
        let off = Kindex.range index ~query:q ~epsilon:eps in
        let pi = Profile.create () in
        let on = Kindex.range ~profile:pi index ~query:q ~epsilon:eps in
        let scan_off =
          Seqscan.range_early_abandon ~pool:Pool.sequential dataset ~query:q
            ~epsilon:eps
        in
        let ps = Profile.create () in
        let scan_on =
          Seqscan.range_early_abandon ~pool:Pool.sequential ~profile:ps dataset
            ~query:q ~epsilon:eps
        in
        off.Kindex.answers = on.Kindex.answers
        && off.Kindex.candidates = on.Kindex.candidates
        && off.Kindex.node_accesses = on.Kindex.node_accesses
        && scan_off.Seqscan.answers = scan_on.Seqscan.answers
        && scan_off.Seqscan.full_computations
           = scan_on.Seqscan.full_computations
        && Profile.well_formed pi && Profile.well_formed ps)
      queries
  in
  (* The scan fans out over the pool, but the profile is recorded on the
     coordinating domain after the deterministic chunk merge — so the
     tree, timings stripped, must not depend on the domain count. *)
  let render_at domains =
    let pool = Pool.create ~domains in
    let trees =
      List.map
        (fun (q, eps) ->
          let profile = Profile.create () in
          ignore
            (Seqscan.range_early_abandon ~pool ~profile dataset ~query:q
               ~epsilon:eps);
          Profile.render ~timings:false profile)
        queries
    in
    Pool.shutdown pool;
    trees
  in
  let domain_counts = [ 1; 2; 4 ] in
  let renders = List.map (fun d -> (d, render_at d)) domain_counts in
  let reference = match renders with (_, r) :: _ -> r | [] -> [] in
  let structure_deterministic =
    List.for_all (fun (_, r) -> r = reference) renders
  in
  let overhead on off = if off > 0. then on /. off else 1. in
  let oh_index = overhead t_index_on t_index_off in
  let oh_scan = overhead t_scan_on t_scan_off in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Per-query profiling: profile off vs on (%d series, n=%d)" count n)
      ~columns:[ "path"; "off"; "on"; "ratio" ]
  in
  Table.add_row table
    [ "k-index range"; fmt t_index_off; fmt t_index_on;
      Printf.sprintf "%.3f" oh_index ];
  Table.add_row table
    [ "seq scan"; fmt t_scan_off; fmt t_scan_on;
      Printf.sprintf "%.3f" oh_scan ];
  Table.print table;
  let sample_tree =
    match queries with
    | (q, eps) :: _ ->
      let profile = Profile.create () in
      ignore
        (Seqscan.range_early_abandon ~pool:Pool.sequential ~profile dataset
           ~query:q ~epsilon:eps);
      Profile.to_json ~timings:false profile
    | [] -> Json.Null
  in
  let oc = open_out "BENCH_profile.json" in
  output_string oc
    (Json.to_string
       (Json.Obj
          [
            ("experiment", Json.Str "ablation_profile");
            ("fast", Json.Bool fast);
            ("seed", Json.Num (float_of_int Bench_util.bench_seed));
            ( "series",
              Json.Obj
                [
                  ("count", Json.Num (float_of_int count));
                  ("n", Json.Num (float_of_int n));
                ] );
            ( "per_query_s",
              Json.Obj
                [
                  ("index_off", Json.Num t_index_off);
                  ("index_on", Json.Num t_index_on);
                  ("scan_off", Json.Num t_scan_off);
                  ("scan_on", Json.Num t_scan_on);
                ] );
            ( "ratio",
              Json.Obj
                [ ("index", Json.Num oh_index); ("scan", Json.Num oh_scan) ] );
            ("structure_deterministic", Json.Bool structure_deterministic);
            ("sample_tree", sample_tree);
          ]));
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_profile.json";
  [
    Expectation.check ~experiment:"Profiling"
      ~expectation:
        "an attached profile is invisible in the answers: results and \
         query counters are bit-identical with and without it, and the \
         recorded tree is well formed"
      ~measured:(if answers_equal then "identical" else "MISMATCH")
      answers_equal;
    Expectation.check ~experiment:"Profiling"
      ~expectation:
        "recording the operator tree costs only a modest constant per \
         query (on/off < 1.5 on both access paths)"
      ~measured:
        (Printf.sprintf "on/off ratio: %.3f (index), %.3f (scan)" oh_index
           oh_scan)
      (oh_index < 1.5 && oh_scan < 1.5);
    Expectation.check ~experiment:"Profiling"
      ~expectation:
        "the rendered tree (timings stripped) is identical at every \
         domain count"
      ~measured:
        (if structure_deterministic then
           Printf.sprintf "identical trees at %s domains"
             (String.concat "/" (List.map string_of_int domain_counts))
         else "MISMATCH against the single-domain reference")
      structure_deterministic;
  ]

(* --- admission control ------------------------------------------------------------ *)

(* The admission layer end to end: sweep queries across the selectivity
   range under over- and under-provisioned budgets, compare every
   admission decision against the ground truth of an admission-off run
   of the same (query, budget), and check the three promises the design
   makes — rejection precision on truly over-budget runs, identical
   decisions at every domain count, and not a single page touch, node
   access or comparison on a rejected query. The per-case log and the
   precision/recall summary are written to BENCH_admission.json. *)
let ablation_admission ~fast =
  let module Pool = Simq_parallel.Pool in
  let module Metrics = Simq_obs.Metrics in
  let module Budget = Simq_fault.Budget in
  let count = if fast then 200 else 600 in
  let n = if fast then 64 else 128 in
  let batch = Stocklike.batch ~seed:(Bench_util.derived_seed 71) ~count ~n in
  let dataset = Dataset.of_series ~pool:Pool.sequential ~name:"stocks" batch in
  let index = Kindex.build dataset in
  let stats = Planner.collect ~seed:(Bench_util.derived_seed 72) dataset in
  let pages = Simq_storage.Relation.pages (Dataset.relation dataset) in
  let query =
    Queries.perturb
      (Random.State.make [| Bench_util.derived_seed 73 |])
      batch.(0) ~amount:0.5
  in
  let targets = [ 1; 5; count / 2; count ] in
  (* Budgets with wide margins on both sides of the true cost: the
     roomy ones cover several times the catalogue cost of either path,
     the starved ones a fraction of it — the regime where a cost-based
     admission decision can be held to a precision target. *)
  let budgets =
    [
      ( "roomy",
        Budget.create ~max_page_reads:(4 * count) ~max_comparisons:(4 * count)
          ~max_node_accesses:(8 * count) () );
      ( "comparison-starved",
        Budget.create ~max_comparisons:(max 1 (count / 8)) () );
      ( "io-starved",
        Budget.create ~max_page_reads:(max 1 (pages / 8))
          ~max_node_accesses:0 () );
      ("deadline-roomy", Budget.create ~deadline_s:60. ());
    ]
  in
  let cases =
    List.concat_map
      (fun target ->
        let epsilon = calibrated_epsilon dataset query ~target in
        List.map
          (fun (bname, budget) -> (target, epsilon, bname, budget))
          budgets)
      targets
  in
  let ids answers =
    List.map (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d)) answers
  in
  (* Ground truth: the same (query, budget) without admission control.
     An [Error] outcome means no access path fits the budget even with
     degradation — exactly the runs a perfect admission layer rejects. *)
  let ground_truth =
    List.map
      (fun (_, epsilon, _, budget) ->
        match
          Planner.range_resilient ~pool:Pool.sequential ~stats ~budget index
            ~query ~epsilon
        with
        | Ok r -> `Fits (ids r.Planner.answers)
        | Error _ -> `Over_budget)
      cases
  in
  (* Admission-on runs at 1, 2 and 4 domains, each with a fresh policy
     against an isolated registry: the calibration gauges and the timer
     histogram read as unset, so every domain count decides from the
     same registry snapshot. *)
  let outcomes_at domains =
    let pool = Pool.create ~domains in
    let policy =
      Simq_admission.create ~registry:(Metrics.create_registry ()) ()
    in
    let outcomes =
      List.map
        (fun (_, epsilon, _, budget) ->
          match
            Planner.range_resilient ~pool ~stats ~budget ~admission:policy
              index ~query ~epsilon
          with
          | Ok r ->
            ( (match r.Planner.admission with
              | Some d -> Simq_admission.decision_name d
              | None -> "none"),
              `Fits (ids r.Planner.answers) )
          | Error (Simq_fault.Error.Rejected _) -> ("reject", `Over_budget)
          | Error _ -> ("admit", `Over_budget))
        cases
    in
    Pool.shutdown pool;
    outcomes
  in
  let domain_counts = [ 1; 2; 4 ] in
  let runs = List.map (fun d -> (d, outcomes_at d)) domain_counts in
  let reference = List.assoc 1 runs in
  let decisions_deterministic =
    List.for_all (fun (_, outcomes) -> outcomes = reference) runs
  in
  (* Rejection precision/recall against the ground truth. *)
  let paired = List.combine (List.combine cases ground_truth) reference in
  let count_where p = List.length (List.filter p paired) in
  let tp =
    count_where (fun ((_, gt), (dec, _)) -> dec = "reject" && gt = `Over_budget)
  in
  let fp =
    count_where (fun ((_, gt), (dec, _)) -> dec = "reject" && gt <> `Over_budget)
  in
  let fn =
    count_where (fun ((_, gt), (dec, _)) -> dec <> "reject" && gt = `Over_budget)
  in
  let ratio num denom =
    if denom = 0 then 1. else float_of_int num /. float_of_int denom
  in
  let precision = ratio tp (tp + fp) in
  let recall = ratio tp (tp + fn) in
  (* Runs that completed on both sides must agree bit for bit: an
     admission layer may refuse work but never change an answer. *)
  let answers_match =
    List.for_all
      (fun ((_, gt), (_, outcome)) ->
        match (gt, outcome) with
        | `Fits a, `Fits b -> a = b
        | `Over_budget, _ | _, `Over_budget -> true)
      paired
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Admission: decision vs ground truth (%d stock-like series, \
            n=%d, %d pages)"
           count n pages)
      ~columns:[ "target"; "budget"; "ground truth"; "decision"; "agrees" ]
  in
  List.iter
    (fun (((target, _, bname, _), gt), (dec, _)) ->
      let gt_name =
        match gt with `Fits _ -> "fits" | `Over_budget -> "over budget"
      in
      let agrees = (dec = "reject") = (gt = `Over_budget) in
      Table.add_row table
        [
          string_of_int target; bname; gt_name; dec;
          (if agrees then "yes" else "NO");
        ])
    paired;
  Table.print table;
  (* A rejected query must leave every execution-side counter family at
     zero: the decision ran before any page was touched. *)
  let exec_families =
    [
      "simq_buffer_pool_hits_total"; "simq_buffer_pool_misses_total";
      "simq_scan_candidates_total"; "simq_kindex_candidates_total";
      "simq_rtree_node_accesses_total";
    ]
  in
  let rejection_untouched, rejection_totals =
    match
      List.find_opt (fun ((_, _), (dec, _)) -> dec = "reject") paired
    with
    | None -> (false, [])
    | Some (((_, epsilon, _, budget), _), _) ->
      Metrics.with_enabled true (fun () ->
          Metrics.reset ();
          let policy =
            Simq_admission.create ~registry:(Metrics.create_registry ()) ()
          in
          let result =
            Planner.range_resilient ~pool:Pool.sequential ~stats ~budget
              ~admission:policy index ~query ~epsilon
          in
          let rejected =
            match result with
            | Error (Simq_fault.Error.Rejected _) -> true
            | _ -> false
          in
          let totals =
            List.map
              (fun f -> Metrics.counter_total (Metrics.counter f))
              exec_families
          in
          (rejected && List.for_all (fun t -> t = 0) totals, totals))
  in
  (* BENCH_admission.json: the per-case log and the summary numbers. *)
  let oc = open_out "BENCH_admission.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"admission\",\n  \"fast\": %b,\n  \"seed\": %d,\n\
    \  \"series\": { \"count\": %d, \"n\": %d },\n  \"pages\": %d,\n\
    \  \"cases\": [\n"
    fast Bench_util.bench_seed count n pages;
  List.iteri
    (fun i (((target, epsilon, bname, _), gt), (dec, _)) ->
      Printf.fprintf oc
        "    { \"target\": %d, \"epsilon\": %.6f, \"budget\": %S, \
         \"ground_truth\": %S, \"decision\": %S }%s\n"
        target epsilon bname
        (match gt with `Fits _ -> "fits" | `Over_budget -> "over_budget")
        dec
        (if i = List.length paired - 1 then "" else ","))
    paired;
  Printf.fprintf oc
    "  ],\n\
    \  \"rejections\": { \"true_positive\": %d, \"false_positive\": %d, \
     \"false_negative\": %d },\n\
    \  \"precision\": %.3f,\n  \"recall\": %.3f,\n\
    \  \"decisions_identical_at_domains\": %b,\n\
    \  \"rejection_reads_nothing\": %b\n}\n"
    tp fp fn precision recall decisions_deterministic rejection_untouched;
  close_out oc;
  print_endline "wrote BENCH_admission.json";
  [
    Expectation.check ~experiment:"Admission"
      ~expectation:
        "rejections are precise: at least 9 of 10 rejected queries are \
         genuinely over budget (admission-off runs of the same query and \
         budget fail)"
      ~measured:
        (Printf.sprintf "precision %.2f, recall %.2f (tp=%d fp=%d fn=%d)"
           precision recall tp fp fn)
      (precision >= 0.9 && tp > 0);
    Expectation.check ~experiment:"Admission"
      ~expectation:
        "decisions are a pure function of the workload, budget and \
         registry snapshot: identical at 1/2/4 domains"
      ~measured:
        (if decisions_deterministic then "identical at every domain count"
         else "MISMATCH against the single-domain run")
      decisions_deterministic;
    Expectation.check ~experiment:"Admission"
      ~expectation:
        "a rejected query executes nothing: page-touch, scan, k-index and \
         R-tree counter families all stay at zero"
      ~measured:
        (Printf.sprintf "execution-family totals on a rejected run: [%s]"
           (String.concat "; " (List.map string_of_int rejection_totals)))
      rejection_untouched;
    Expectation.check ~experiment:"Admission"
      ~expectation:
        "admission control never changes an answer: runs completing on \
         both sides return bit-identical answer sets"
      ~measured:(if answers_match then "identical" else "MISMATCH")
      answers_match;
  ]

(* --- serve: the resident daemon under concurrent load ----------------------- *)

(* An in-process [simq serve] daemon stressed by the deterministic
   multi-client harness: a clean throughput/latency sweep at 1, 2 and
   4 domains with offline bit-identical verification and a small
   in-flight cap (so the shed path is exercised under real
   contention), a full-shed phase under a zero cap, and a chaos phase
   (protocol abuse plus seeded transient faults against a budgeted
   engine) that the daemon must survive. Writes BENCH_serve.json. *)
let serve ~fast =
  let module Server = Simq_serve.Server in
  let module Stress = Simq_serve.Stress in
  let module Engine = Simq_serve.Engine in
  let module Clock = Simq_obs.Clock in
  let module Pool = Simq_parallel.Pool in
  let count = if fast then 48 else 96 in
  let n = 128 in
  let _, _, index =
    build_walks ~seed:(Bench_util.derived_seed 71) ~count ~n
  in
  let clients = 4 in
  let per_client = if fast then 10 else 30 in
  let harness_seed = Bench_util.derived_seed 72 in
  let oracle_engine = Engine.create index in
  let oracle spec =
    match Engine.exec oracle_engine spec with
    | Ok o -> Some o.Engine.results
    | Error _ -> None
  in
  let stress ?chaos ?oracle server =
    let t0 = Clock.now_ns () in
    let report =
      Stress.run ?chaos ?oracle ~host:"127.0.0.1" ~port:(Server.port server)
        ~clients ~per_client ~seed:harness_seed ~cardinality:count ()
    in
    (report, Clock.elapsed_s t0)
  in
  let table =
    Table.create ~title:"simq serve: 4 concurrent clients, cap 2"
      ~columns:
        [ "domains"; "sent"; "ok"; "shed"; "qps"; "p50"; "p90"; "p99" ]
  in
  let saved_domains = Pool.default_domains () in
  let sweep, shed_phase, chaos_phase =
    Fun.protect
      ~finally:(fun () -> Pool.set_default_domains saved_domains)
      (fun () ->
        let sweep =
          List.map
            (fun domains ->
              Pool.set_default_domains domains;
              let engine = Engine.create index in
              Server.with_server ~max_inflight:2 ~engine ~port:0
                (fun server ->
                  let report, elapsed = stress ~oracle server in
                  let q p = Stress.quantile report.Stress.latencies_s p in
                  let qps =
                    if elapsed > 0. then
                      float_of_int report.Stress.sent /. elapsed
                    else 0.
                  in
                  Table.add_row table
                    [
                      string_of_int domains;
                      string_of_int report.Stress.sent;
                      string_of_int report.Stress.ok;
                      string_of_int report.Stress.rejected;
                      Printf.sprintf "%.0f" qps;
                      fmt (q 0.5);
                      fmt (q 0.9);
                      fmt (q 0.99);
                    ];
                  (domains, report, qps, q 0.5, q 0.9, q 0.99)))
            [ 1; 2; 4 ]
        in
        (* Full shed: a zero cap refuses every query before it reads a
           page; the daemon stays up and every refusal is a typed
           exit-5 response. *)
        Pool.set_default_domains 1;
        let shed_phase =
          let engine = Engine.create index in
          Server.with_server ~max_inflight:0 ~engine ~port:0 (fun server ->
              fst (stress server))
        in
        (* Chaos: malformed and oversized lines, mid-query
           disconnects, and seeded transient faults on the page and
           node seams — against a budgeted engine, whose resilient
           paths retry or degrade. *)
        let chaos_phase =
          let injector =
            Simq_fault.Injector.create
              ~page_reads:(Simq_fault.Injector.transient ~probability:0.05 ())
              ~node_accesses:
                (Simq_fault.Injector.transient ~probability:0.05 ())
              ~seed:(Bench_util.derived_seed 73) ()
          in
          Simq_rtree.Rstar.set_injector (Kindex.tree index) (Some injector);
          Fun.protect
            ~finally:(fun () ->
              Simq_rtree.Rstar.set_injector (Kindex.tree index) None)
            (fun () ->
              let budget =
                Simq_fault.Budget.create ~max_page_reads:200_000
                  ~max_node_accesses:200_000 ()
              in
              let engine = Engine.create ~budget index in
              Server.with_server ~engine ~port:0 (fun server ->
                  fst (stress ~chaos:true server)))
        in
        (sweep, shed_phase, chaos_phase))
  in
  Table.print table;
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"serve\",\n  \"fast\": %b,\n  \"seed\": %d,\n\
    \  \"series\": { \"count\": %d, \"n\": %d },\n\
    \  \"clients\": %d,\n  \"queries_per_client\": %d,\n  \"runs\": [\n"
    fast Bench_util.bench_seed count n clients per_client;
  List.iteri
    (fun i (domains, (r : Stress.report), qps, p50, p90, p99) ->
      Printf.fprintf oc
        "    { \"domains\": %d, \"sent\": %d, \"ok\": %d, \"shed\": %d, \
         \"failed\": %d, \"qps\": %.1f, \"p50_ms\": %.3f, \"p90_ms\": \
         %.3f, \"p99_ms\": %.3f, \"shed_rate\": %.3f }%s\n"
        domains r.Stress.sent r.Stress.ok r.Stress.rejected r.Stress.failed
        qps (p50 *. 1000.) (p90 *. 1000.) (p99 *. 1000.)
        (if r.Stress.sent > 0 then
           float_of_int r.Stress.rejected /. float_of_int r.Stress.sent
         else 0.)
        (if i = 2 then "" else ","))
    sweep;
  Printf.fprintf oc
    "  ],\n\
    \  \"shed\": { \"sent\": %d, \"shed\": %d, \"ok\": %d, \"shed_rate\": \
     %.3f },\n\
    \  \"chaos\": { \"sent\": %d, \"ok\": %d, \"malformed\": %d, \
     \"disconnects\": %d, \"protocol_errors\": %d, \"server_gone\": %b }\n\
     }\n"
    shed_phase.Stress.sent shed_phase.Stress.rejected shed_phase.Stress.ok
    (if shed_phase.Stress.sent > 0 then
       float_of_int shed_phase.Stress.rejected
       /. float_of_int shed_phase.Stress.sent
     else 0.)
    chaos_phase.Stress.sent chaos_phase.Stress.ok
    chaos_phase.Stress.malformed_sent chaos_phase.Stress.disconnects
    chaos_phase.Stress.protocol_errors chaos_phase.Stress.server_gone;
  close_out oc;
  print_endline "wrote BENCH_serve.json";
  let healthy =
    List.for_all
      (fun (_, (r : Stress.report), _, _, _, _) ->
        (not r.Stress.server_gone)
        && r.Stress.protocol_errors = 0
        && r.Stress.mismatches = [])
      sweep
  in
  let total_ok =
    List.fold_left (fun acc (_, r, _, _, _, _) -> acc + r.Stress.ok) 0 sweep
  in
  [
    Expectation.check ~experiment:"Service"
      ~expectation:
        "every answer served to 4 concurrent clients at 1, 2 and 4 \
         domains is bit-identical to the offline execution of the same \
         spec, with zero protocol violations"
      ~measured:
        (Printf.sprintf "%d ok answers verified, %d shed under the cap"
           total_ok
           (List.fold_left
              (fun acc (_, (r : Stress.report), _, _, _, _) ->
                acc + r.Stress.rejected)
              0 sweep))
      (healthy && total_ok > 0);
    Expectation.check ~experiment:"Service"
      ~expectation:
        "a zero in-flight cap sheds every request as a typed exit-5 \
         rejection before execution; the daemon stays up"
      ~measured:
        (Printf.sprintf "%d sent, %d shed, %d executed"
           shed_phase.Stress.sent shed_phase.Stress.rejected
           shed_phase.Stress.ok)
      ((not shed_phase.Stress.server_gone)
      && shed_phase.Stress.sent > 0
      && shed_phase.Stress.rejected = shed_phase.Stress.sent
      && shed_phase.Stress.ok = 0);
    Expectation.check ~experiment:"Service"
      ~expectation:
        "chaos (malformed lines, oversized lines, mid-query \
         disconnects, seeded transient faults) never kills the daemon \
         and never corrupts the protocol: one response per surviving \
         request, liveness probe answered"
      ~measured:
        (Printf.sprintf
           "%d queries + %d abusive lines + %d disconnects: gone=%b, \
            protocol_errors=%d"
           chaos_phase.Stress.sent chaos_phase.Stress.malformed_sent
           chaos_phase.Stress.disconnects chaos_phase.Stress.server_gone
           chaos_phase.Stress.protocol_errors)
      ((not chaos_phase.Stress.server_gone)
      && chaos_phase.Stress.protocol_errors = 0);
  ]

(* --- sharded scatter-gather ------------------------------------------------------ *)

(* Clustered synthetic data for the shard catalogue: contiguous id
   blocks of sinusoids whose dominant DFT bin, sin/cos mix and sign
   differ per block, so after normalisation each block occupies its own
   corner of feature space and the per-shard min/max boxes separate.
   Because the blocks are contiguous in id order — the partitioner's
   own layout — a query aimed at one cluster lets the catalogue prune
   the shards holding the others. *)
let clustered_batch ~seed ~count ~n ~clusters =
  let state = Random.State.make [| seed |] in
  Array.init count (fun i ->
      let c = i * clusters / count in
      let freq = float_of_int ((c mod 3) + 1) in
      let use_cos = c / 3 mod 2 = 1 in
      let sign = if c / 6 mod 2 = 1 then -1. else 1. in
      Array.init n (fun t ->
          let a = 2. *. Float.pi *. freq *. float_of_int t /. float_of_int n in
          (sign *. 3. *. (if use_cos then cos a else sin a))
          +. Random.State.float state 0.3 -. 0.15))

(* The sharded scatter-gather executor measured four ways: (1) answers
   (range and NN) bit-identical to the unsharded traversal at every
   K x domain count, with the catalogue plan — fanout and pruned
   counts — invariant across domain counts; (2) pruning rate on
   clustered data, plus the skewed service workload (spec_mix with the
   shard-skew knob) driven through a sharded serve engine; (3) a
   fault-tripped shard degrades to its own scan without losing
   exactness; (4) the pruning speedup of the K-way scatter over the
   single-shard run, asserted only on full runs (small-data timing is
   noise). Writes BENCH_shard.json. *)
let shard ~fast =
  let module Pool = Simq_parallel.Pool in
  let module Injector = Simq_fault.Injector in
  let module Shard = Simq_shard in
  let clusters = 16 in
  let count = if fast then 240 else 7680 in
  let n = if fast then 64 else 128 in
  let repeats = if fast then 2 else 3 in
  let batch =
    clustered_batch ~seed:(Bench_util.derived_seed 41) ~count ~n ~clusters
  in
  let dataset =
    Dataset.of_series ~pool:Pool.sequential ~name:"clustered" batch
  in
  let index = Kindex.build dataset in
  (* The clustered workload: each query perturbs a stored series, so
     its (selective) search region sits inside one cluster's corner. *)
  let state = Random.State.make [| Bench_util.derived_seed 42 |] in
  let block = count / clusters in
  let queries =
    List.init 12 (fun i ->
        let id = (i * 5 mod clusters * block) + (i * 7 mod block) in
        Queries.perturb state batch.(id) ~amount:0.1)
  in
  let queries = with_selective_epsilons dataset queries in
  let nqueries = List.length queries in
  let answer_pairs answers =
    List.map (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d)) answers
  in
  let canon answers =
    List.sort compare
      (List.map (fun ((e : Dataset.entry), d) -> (d, e.Dataset.id)) answers)
  in
  let reference =
    List.map
      (fun (q, eps) ->
        answer_pairs (Kindex.range index ~query:q ~epsilon:eps).Kindex.answers)
      queries
  in
  let nn_reference =
    List.map (fun (q, _) -> canon (Kindex.nearest index ~query:q ~k:5)) queries
  in
  let shard_counts =
    match !Bench_util.shard_override with
    | Some k -> [ k ]
    | None -> [ 1; 4; 16 ]
  in
  let domain_counts = [ 1; 2; 4 ] in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Sharded scatter-gather (%d clustered series n=%d, %d clusters, \
            %d range + %d NN queries)"
           count n clusters nqueries nqueries)
      ~columns:
        [ "shards"; "domains"; "range"; "nn"; "fanout"; "pruned"; "speedup" ]
  in
  let all_equal = ref true in
  (* The catalogue plan is decided before the scatter, so fanout and
     pruned totals must not move with the domain count. *)
  let plans : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
  let baseline = ref None in
  let runs =
    List.concat_map
      (fun shards ->
        let sh = Shard.create ~pool:Pool.sequential ~shards dataset in
        let k = Shard.shards sh in
        List.map
          (fun domains ->
            let pool = Pool.create ~domains in
            let fanout = ref 0 and pruned = ref 0 in
            let answers = ref [] in
            let range_time =
              Bench_util.time_per_query ~repeats (fun () ->
                  fanout := 0;
                  pruned := 0;
                  answers :=
                    List.map
                      (fun (q, eps) ->
                        let r = Shard.range ~pool sh ~query:q ~epsilon:eps in
                        fanout := !fanout + r.Shard.report.Shard.fanout;
                        pruned := !pruned + r.Shard.report.Shard.pruned;
                        answer_pairs r.Shard.answers)
                      queries)
              /. float_of_int nqueries
            in
            let nn = ref [] in
            let nn_time =
              Bench_util.time_per_query ~repeats (fun () ->
                  nn :=
                    List.map
                      (fun (q, _) ->
                        canon
                          (Shard.nearest ~pool sh ~query:q ~k:5)
                            .Shard.neighbours)
                      queries)
              /. float_of_int nqueries
            in
            Pool.shutdown pool;
            if !answers <> reference || !nn <> nn_reference then
              all_equal := false;
            (match Hashtbl.find_opt plans k with
            | None -> Hashtbl.add plans k (!fanout, !pruned)
            | Some plan ->
              if plan <> (!fanout, !pruned) then all_equal := false);
            if !baseline = None then baseline := Some range_time;
            let speedup =
              match !baseline with
              | Some b when range_time > 0. -> b /. range_time
              | _ -> 1.
            in
            Table.add_row table
              [
                string_of_int k; string_of_int domains; fmt range_time;
                fmt nn_time; string_of_int !fanout; string_of_int !pruned;
                Printf.sprintf "%.2f" speedup;
              ];
            (k, domains, range_time, nn_time, !fanout, !pruned, speedup))
          domain_counts)
      shard_counts
  in
  Table.print table;
  (* A fault-tripped shard degrades alone: an always-firing node-access
     injector on shard 0's tree defeats its index path; the checked
     scatter answers that shard through its own scan. The scan's
     distance accumulation differs from the traversal's in the last
     ulp, so — like the fault ablation — degraded parity is on the
     answer id sets. *)
  let answer_ids answers =
    List.map (fun ((e : Dataset.entry), _) -> e.Dataset.id) answers
  in
  let reference_ids = List.map (List.map fst) reference in
  let sh4 = Shard.create ~pool:Pool.sequential ~shards:4 dataset in
  let injector =
    Injector.create
      ~node_accesses:(Injector.transient ~probability:1. ())
      ~seed:(Bench_util.derived_seed 43) ()
  in
  Simq_rtree.Rstar.set_injector (Kindex.tree (Shard.shard_index sh4 0))
    (Some injector);
  let degraded_ok, degraded_total =
    Fun.protect
      ~finally:(fun () ->
        Simq_rtree.Rstar.set_injector
          (Kindex.tree (Shard.shard_index sh4 0))
          None)
      (fun () ->
        List.fold_left2
          (fun (ok, total) (q, eps) expected ->
            match
              Shard.range_checked ~pool:Pool.sequential sh4 ~query:q
                ~epsilon:eps
            with
            | Ok r ->
              ( ok && answer_ids r.Shard.answers = expected,
                total + r.Shard.report.Shard.degraded )
            | Error _ -> (false, total))
          (true, 0) queries reference_ids)
  in
  (* The realistic non-uniform service workload: spec_mix with the
     shard-skew knob collapses most query ids into one narrow id band,
     and a sharded serve engine answers the very spec strings an
     unsharded one would — catalogue pruning shows up in the per-query
     shard counts the engine notes for the query log. *)
  let engine = Simq_serve.Engine.create ~shards:16 index in
  let specs =
    Queries.spec_mix ~skew:0.8 ~seed:(Bench_util.derived_seed 44)
      ~cardinality:count ~count:(if fast then 40 else 120) ()
  in
  let skew_fanout = ref 0 and skew_pruned = ref 0 and skew_lines = ref 0 in
  List.iter
    (fun spec ->
      let note = Simq_serve.Engine.note () in
      (match Simq_serve.Engine.exec ~note engine spec with
      | Ok _ | Error _ -> ());
      match note.Simq_serve.Engine.note_shards with
      | Some s ->
        skew_fanout := !skew_fanout + s.Simq_obs.Qlog.fanout;
        skew_pruned := !skew_pruned + s.Simq_obs.Qlog.pruned;
        incr skew_lines
      | None -> ())
    specs;
  let max_k =
    List.fold_left (fun acc (k, _, _, _, _, _, _) -> max acc k) 1 runs
  in
  let pruned_at_max =
    List.fold_left
      (fun acc (k, d, _, _, _, p, _) -> if k = max_k && d = 1 then p else acc)
      0 runs
  in
  let speedup_at_max =
    List.fold_left
      (fun acc (k, d, _, _, _, _, s) ->
        if k = max_k && d = 1 then s else acc)
      1. runs
  in
  let oc = open_out "BENCH_shard.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"shard\",\n  \"fast\": %b,\n  \"seed\": %d,\n\
    \  \"series\": { \"count\": %d, \"n\": %d, \"clusters\": %d, \
     \"queries\": %d },\n\
    \  \"runs\": [\n"
    fast Bench_util.bench_seed count n clusters nqueries;
  List.iteri
    (fun i (k, d, range_s, nn_s, fanout, pruned, speedup) ->
      Printf.fprintf oc
        "    { \"shards\": %d, \"domains\": %d, \"range_s\": %.6f, \
         \"nn_s\": %.6f, \"fanout\": %d, \"pruned\": %d, \
         \"pruning_rate\": %.3f, \"speedup\": %.3f }%s\n"
        k d range_s nn_s fanout pruned
        (float_of_int pruned /. float_of_int (nqueries * k))
        speedup
        (if i = List.length runs - 1 then "" else ","))
    runs;
  Printf.fprintf oc
    "  ],\n  \"degraded_parity\": { \"ok\": %b, \"degraded_shards\": %d },\n\
    \  \"skewed_workload\": { \"specs\": %d, \"sharded_lines\": %d, \
     \"fanout\": %d, \"pruned\": %d },\n\
    \  \"all_results_equal\": %b\n}\n"
    degraded_ok degraded_total (List.length specs) !skew_lines !skew_fanout
    !skew_pruned !all_equal;
  close_out oc;
  print_endline "wrote BENCH_shard.json";
  let pruning_measured =
    Printf.sprintf
      "K=%d pruned %d of %d shard visits; skewed workload pruned %d over \
       %d sharded queries"
      max_k pruned_at_max (nqueries * max_k) !skew_pruned !skew_lines
  in
  let pruning_claim =
    if max_k >= 4 then
      Expectation.check ~experiment:"Sharding"
        ~expectation:
          "the shard catalogue prunes: clustered data and the skewed \
           service workload both refuse shards before touching any page"
        ~measured:pruning_measured
        (pruned_at_max > 0 && !skew_pruned > 0)
    else
      Expectation.partial ~experiment:"Sharding"
        ~expectation:
          "the shard catalogue prunes: clustered data and the skewed \
           service workload both refuse shards before touching any page"
        ~measured:
          (Printf.sprintf "%s (--shards %d leaves nothing to prune)"
             pruning_measured max_k)
  in
  let speedup_measured =
    Printf.sprintf
      "K=%d single-domain scatter runs %.2fx the single-shard baseline"
      max_k speedup_at_max
  in
  let speedup_claim =
    if (not fast) && max_k >= 4 && List.length shard_counts > 1 then
      Expectation.check ~experiment:"Sharding"
        ~expectation:
          "catalogue pruning pays: the largest-K scatter beats the \
           single-shard run at one domain"
        ~measured:speedup_measured
        (speedup_at_max > 1.)
    else
      Expectation.partial ~experiment:"Sharding"
        ~expectation:
          "catalogue pruning pays: the largest-K scatter beats the \
           single-shard run at one domain"
        ~measured:
          (Printf.sprintf "%s (timing not asserted in %s)" speedup_measured
             (if fast then "fast mode" else "a narrowed sweep"))
  in
  [
    Expectation.check ~experiment:"Sharding"
      ~expectation:
        "sharded scatter-gather is invisible in the answers: every \
         K x domain count returns bit-identical range and NN results, \
         with a domain-invariant catalogue plan"
      ~measured:
        (if !all_equal then
           Printf.sprintf "identical for K in %s at %s domains"
             (String.concat "/" (List.map string_of_int shard_counts))
             (String.concat "/" (List.map string_of_int domain_counts))
         else "MISMATCH against the unsharded reference")
      !all_equal;
    pruning_claim;
    Expectation.check ~experiment:"Sharding"
      ~expectation:
        "a fault-tripped shard degrades to its own scan — that shard \
         only — and the gathered answer stays exact"
      ~measured:
        (Printf.sprintf "%d degraded shard visits over %d queries, exact=%b"
           degraded_total nqueries degraded_ok)
      (degraded_ok && degraded_total >= 1);
    speedup_claim;
  ]

(* --- ablation: multi-resolution sketch funnel ------------------------------ *)

(* The sketch funnel in front of the k-index, on four claims: (1) exact
   mode is invisible — sketched answers bit-identical to unsketched
   under every sketchable spec, unsharded and sharded, at 1, 2 and 4
   domains; (2) the funnel filters — each level of the ladder dismisses
   a measurable share of the candidates before any exact distance
   runs; (3) approximate mode keeps its epsilon-guarantee — every
   returned answer is a true answer within epsilon (superset-free) and
   every series within (1-a)·epsilon is still returned; (4) anytime
   mode under a dying budget returns a sound subset marked partial.
   The raw ladder rows save to BENCH_sketch.json. *)
let ablation_sketch ~fast =
  let module Pool = Simq_parallel.Pool in
  let module Shard = Simq_shard in
  let module Sketch = Simq_sketch in
  let module Budget = Simq_fault.Budget in
  let count = if fast then 240 else 2048 in
  let n = if fast then 64 else 128 in
  let repeats = if fast then 2 else 3 in
  let batch = Stocklike.batch ~seed:(Bench_util.derived_seed 91) ~count ~n in
  let dataset =
    Dataset.of_series ~pool:Pool.sequential ~name:"stocks" batch
  in
  let index = Kindex.build dataset in
  let sketch = Sketch.create dataset in
  let state = Random.State.make [| Bench_util.derived_seed 92 |] in
  let queries =
    List.init 12 (fun i ->
        Queries.perturb state batch.(i * 17 mod count) ~amount:0.25)
  in
  let queries = with_selective_epsilons dataset queries in
  let nqueries = List.length queries in
  let pairs answers =
    List.map (fun ((e : Dataset.entry), d) -> (e.Dataset.id, d)) answers
  in
  let canon answers =
    List.sort compare
      (List.map (fun ((e : Dataset.entry), d) -> (d, e.Dataset.id)) answers)
  in
  let specs =
    [
      ("identity", Spec.Identity);
      ("mavg(8)", Spec.Moving_average 8);
      ("rev", Spec.Reverse);
    ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation: sketch funnel (%d stock-like series n=%d, %d range \
            queries per spec)"
           count n nqueries)
      ~columns:
        [
          "spec"; "candidates"; "after coarse"; "after segment"; "plain";
          "sketched";
        ]
  in
  let all_exact = ref true in
  let rows =
    List.map
      (fun (label, spec) ->
        let reference =
          List.map
            (fun (q, eps) ->
              pairs (Kindex.range ~spec index ~query:q ~epsilon:eps).Kindex.answers)
            queries
        in
        (* One counted pass tallies the ladder; the timed passes use the
           plain funnel so repeats do not inflate the tally. *)
        let candidates = ref 0 in
        let filtered = [| 0; 0 |] in
        let counted q =
          Option.map
            (fun (pf : Kindex.prefilter) ->
              {
                pf with
                Kindex.on_filtered =
                  (fun level dismissed ->
                    filtered.(level) <- filtered.(level) + dismissed;
                    pf.Kindex.on_filtered level dismissed);
              })
            (Sketch.funnel sketch ~spec ~query:q)
        in
        let funnel q = Sketch.funnel sketch ~spec ~query:q in
        let sketched =
          List.map
            (fun (q, eps) ->
              let r =
                Kindex.range ~spec ~sketch:counted index ~query:q ~epsilon:eps
              in
              candidates := !candidates + r.Kindex.candidates;
              pairs r.Kindex.answers)
            queries
        in
        if sketched <> reference then all_exact := false;
        let plain_time =
          Bench_util.time_per_query ~repeats (fun () ->
              List.iter
                (fun (q, eps) ->
                  ignore (Kindex.range ~spec index ~query:q ~epsilon:eps))
                queries)
          /. float_of_int nqueries
        in
        let sketched_time =
          Bench_util.time_per_query ~repeats (fun () ->
              List.iter
                (fun (q, eps) ->
                  ignore
                    (Kindex.range ~spec ~sketch:funnel index ~query:q
                       ~epsilon:eps))
                queries)
          /. float_of_int nqueries
        in
        let after_coarse = !candidates - filtered.(0) in
        let after_segment = after_coarse - filtered.(1) in
        Table.add_row table
          [
            label; string_of_int !candidates; string_of_int after_coarse;
            string_of_int after_segment; fmt plain_time; fmt sketched_time;
          ];
        (label, !candidates, after_coarse, after_segment, plain_time,
         sketched_time))
      specs
  in
  Table.print table;
  (* NN parity: the deferred-refinement bound reorders work, never
     answers. *)
  let nn_reference =
    List.map (fun (q, _) -> canon (Kindex.nearest index ~query:q ~k:5)) queries
  in
  let nn_sketched =
    List.map
      (fun (q, _) ->
        canon
          (Kindex.nearest
             ~sketch:(fun q -> Sketch.nn_bound sketch ~spec:Spec.Identity ~query:q)
             index ~query:q ~k:5))
      queries
  in
  if nn_sketched <> nn_reference then all_exact := false;
  (* Sharded parity: a sketched 4-shard executor at 1, 2 and 4 domains
     against the unsharded unsketched reference. *)
  let identity_reference =
    List.map
      (fun (q, eps) ->
        pairs (Kindex.range index ~query:q ~epsilon:eps).Kindex.answers)
      queries
  in
  let sh =
    Shard.create ~pool:Pool.sequential ~sketch:Sketch.default ~shards:4
      dataset
  in
  let domain_counts = [ 1; 2; 4 ] in
  let shard_exact = ref true in
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains in
      List.iter2
        (fun (q, eps) expected ->
          let r = Shard.range ~pool sh ~query:q ~epsilon:eps in
          if pairs r.Shard.answers <> expected then shard_exact := false)
        queries identity_reference;
      List.iter2
        (fun (q, _) expected ->
          let r = Shard.nearest ~pool sh ~query:q ~k:5 in
          if canon r.Shard.neighbours <> expected then shard_exact := false)
        queries nn_reference;
      Pool.shutdown pool)
    domain_counts;
  (* Approximate mode: superset-free (every answer true), inner-ball
     complete (everything within (1-a)·epsilon kept), recall measured
     against the exact answer set. *)
  let a = 0.25 in
  let funnel q = Sketch.funnel sketch ~spec:Spec.Identity ~query:q in
  let superset_free = ref true and inner_complete = ref true in
  let kept = ref 0 and exact_total = ref 0 in
  List.iter2
    (fun (q, eps) exact ->
      let approx =
        pairs
          (Kindex.range ~sketch:funnel ~approx:a index ~query:q ~epsilon:eps)
            .Kindex.answers
      in
      List.iter
        (fun pair -> if not (List.mem pair exact) then superset_free := false)
        approx;
      List.iter
        (fun ((_, d) as pair) ->
          if d <= (1. -. a) *. eps && not (List.mem pair approx) then
            inner_complete := false)
        exact;
      kept := !kept + List.length approx;
      exact_total := !exact_total + List.length exact)
    queries identity_reference;
  let recall =
    if !exact_total = 0 then 1.
    else float_of_int !kept /. float_of_int !exact_total
  in
  (* Anytime mode: a one-comparison budget dies inside verification;
     the partial answer must still be a sound subset. *)
  let any_partial = ref false and partial_sound = ref true in
  List.iter2
    (fun (q, eps) exact ->
      let budget = Budget.create ~max_comparisons:1 () in
      match
        Kindex.range_checked ~budget ~sketch:funnel ~approx:a ~anytime:true
          index ~query:q ~epsilon:eps
      with
      | Ok r ->
        if r.Kindex.partial then any_partial := true;
        List.iter
          (fun pair ->
            if not (List.mem pair exact) then partial_sound := false)
          (pairs r.Kindex.answers)
      | Error _ -> partial_sound := false)
    queries identity_reference;
  (* BENCH_sketch.json: the raw ladder, for tracking across runs. *)
  let oc = open_out "BENCH_sketch.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"ablation_sketch\",\n  \"fast\": %b,\n\
    \  \"seed\": %d,\n\
    \  \"series\": { \"count\": %d, \"n\": %d, \"queries\": %d },\n\
    \  \"config\": { \"coarse\": %d, \"segments\": %d },\n  \"ladder\": [\n"
    fast Bench_util.bench_seed count n nqueries Sketch.default.Sketch.coarse
    Sketch.default.Sketch.segments;
  List.iteri
    (fun i (label, candidates, after_coarse, after_segment, plain_time,
            sketched_time) ->
      Printf.fprintf oc
        "    { \"spec\": \"%s\", \"candidates\": %d, \"after_coarse\": %d, \
         \"after_segment\": %d, \"plain_s\": %.6f, \"sketched_s\": %.6f }%s\n"
        label candidates after_coarse after_segment plain_time sketched_time
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc
    "  ],\n  \"exact_parity\": %b,\n  \"shard_parity\": %b,\n\
    \  \"approx\": { \"a\": %.2f, \"recall\": %.4f, \"superset_free\": %b, \
     \"inner_complete\": %b },\n  \"anytime_partial\": %b\n}\n"
    !all_exact !shard_exact a recall !superset_free !inner_complete
    !any_partial;
  close_out oc;
  print_endline "wrote BENCH_sketch.json";
  let _, candidates0, _, after_segment0, _, _ = List.hd rows in
  [
    Expectation.check ~experiment:"Ablation sketch"
      ~expectation:
        "exact mode is invisible: sketched range and NN answers are \
         bit-identical to the unsketched traversal under every sketchable \
         spec (Lemma 1 per level)"
      ~measured:
        (Printf.sprintf "%d specs x %d queries, NN k=5: parity %b"
           (List.length specs) nqueries !all_exact)
      !all_exact;
    Expectation.check ~experiment:"Ablation sketch"
      ~expectation:
        "a sketched 4-shard executor answers bit-identically to the \
         unsharded run at 1, 2 and 4 domains"
      ~measured:(Printf.sprintf "3 domain counts: parity %b" !shard_exact)
      !shard_exact;
    Expectation.check ~experiment:"Ablation sketch"
      ~expectation:
        "the funnel dismisses candidates before any exact distance runs"
      ~measured:
        (Printf.sprintf "identity: %d candidates -> %d funnel survivors"
           candidates0 after_segment0)
      (after_segment0 < candidates0);
    Expectation.check ~experiment:"Ablation sketch"
      ~expectation:
        "approximate mode keeps the epsilon-guarantee: superset-free, \
         inner-ball complete, recall >= 1 - a"
      ~measured:
        (Printf.sprintf
           "a=%.2f: recall %.3f, superset_free %b, inner_complete %b" a
           recall !superset_free !inner_complete)
      (!superset_free && !inner_complete && recall >= 1. -. a);
    Expectation.check ~experiment:"Ablation sketch"
      ~expectation:
        "anytime mode returns a sound subset when the budget dies inside \
         verification, marked partial"
      ~measured:
        (Printf.sprintf "max_comparisons=1: partial seen %b, sound %b"
           !any_partial !partial_sound)
      (!any_partial && !partial_sound);
  ]

(* --- dispatcher ------------------------------------------------------------------ *)

let suite =
  [
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("table1", table1);
    ("edit_dp", edit_dp);
    ("eq10", eq10);
    ("vptree", vptree);
    ("ablation_k", ablation_k);
    ("ablation_repr", ablation_repr);
    ("ablation_rtree", ablation_rtree);
    ("ablation_trails", ablation_trails);
    ("ablation_fault", ablation_fault);
    ("ablation_obs", ablation_obs);
    ("ablation_profile", ablation_profile);
    ("ablation_admission", ablation_admission);
    ("ablation_sketch", ablation_sketch);
    ("planner", planner);
    ("par", par);
    ("serve", serve);
    ("shard", shard);
  ]

let all ~fast =
  let claims = List.concat_map (fun (_, f) -> f ~fast) suite in
  Expectation.print_summary claims

let run ~fast name =
  if String.equal name "all" then begin
    all ~fast;
    Ok ()
  end
  else
    match List.assoc_opt name suite with
    | Some f ->
      Expectation.print_summary (f ~fast);
      Ok ()
    | None ->
      Error
        (Printf.sprintf "unknown experiment %S; available: %s, all" name
           (String.concat ", " (List.map fst suite)))
