(** Shared measurement helpers for the experiment harness. *)

(** [time_per_query ~repeats f] runs [f] [repeats] times and returns the
    mean seconds per run (after one untimed warmup). *)
val time_per_query : repeats:int -> (unit -> unit) -> float

(** [mean xs] of a non-empty list. *)
val mean : float list -> float

(** [fmt_time s] renders seconds compactly ([420us], [1.3ms], …). *)
val fmt_time : float -> string

(** [queries_for ~seed ~count batch] draws [count] query series by
    perturbing members of [batch] (±1.0 noise). *)
val queries_for :
  seed:int -> count:int -> Simq_series.Series.t array ->
  Simq_series.Series.t list

(** {2 Seeding}

    Every synthetic dataset, query workload and micro-benchmark input in
    the bench harness derives from one seed, so a whole run is
    reproducible from a single number. *)

(** The root seed of the benchmark harness (the paper's publication
    year). Changing it re-draws every synthetic input at once. *)
val bench_seed : int

(** [derived_seed offset] is a deterministic per-generator stream seed
    derived from {!bench_seed}; distinct offsets give independent
    streams. *)
val derived_seed : int -> int

(** {2 Sharding}

    The bench driver's [--shards K] flag narrows the [shard]
    experiment's shard-count sweep to one value; [None] (the default)
    sweeps the documented K list. *)
val shard_override : int option ref
