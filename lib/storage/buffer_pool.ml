(* LRU via a logical clock: each resident page carries its last-touch
   stamp, eviction removes the minimum. Pool capacities in the
   experiments are small, so the linear eviction scan is irrelevant. *)

type t = {
  capacity : int;
  stats : Io_stats.t;
  resident : (int, int) Hashtbl.t;  (* page id -> last-touch stamp *)
  mutable clock : int;
  mutable injector : Simq_fault.Injector.t option;
  mutable budget : Simq_fault.Budget.state option;
}

let create ~capacity ~stats =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity";
  {
    capacity;
    stats;
    resident = Hashtbl.create (2 * capacity);
    clock = 0;
    injector = None;
    budget = None;
  }

let set_injector t injector = t.injector <- injector
let set_budget t budget = t.budget <- budget

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun page stamp acc ->
        match acc with
        | Some (_, best) when best <= stamp -> acc
        | _ -> Some (page, stamp))
      t.resident None
  in
  match victim with
  | Some (page, _) -> Hashtbl.remove t.resident page
  | None -> ()

let touch t page =
  (match t.injector with
  | None -> ()
  | Some injector -> Simq_fault.Injector.check injector Page_read);
  (match t.budget with
  | None -> ()
  | Some budget ->
    Simq_fault.Budget.check budget;
    Simq_fault.Budget.charge_page_read budget);
  t.clock <- t.clock + 1;
  if Hashtbl.mem t.resident page then begin
    Hashtbl.replace t.resident page t.clock;
    Io_stats.record_cache_hit t.stats;
    `Hit
  end
  else begin
    Io_stats.record_page_read t.stats;
    if Hashtbl.length t.resident >= t.capacity then evict_lru t;
    Hashtbl.replace t.resident page t.clock;
    `Miss
  end

let resident t = Hashtbl.length t.resident
let flush t = Hashtbl.reset t.resident
