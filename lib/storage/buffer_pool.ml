(* LRU via a logical clock: each resident page carries its last-touch
   stamp, eviction removes the minimum. Pool capacities in the
   experiments are small, so the linear eviction scan is irrelevant. *)

let m_hits =
  Simq_obs.Metrics.counter ~help:"Buffer-pool touches served from residence"
    "simq_buffer_pool_hits_total"

let m_misses =
  Simq_obs.Metrics.counter ~help:"Buffer-pool touches that read the page"
    "simq_buffer_pool_misses_total"

let m_evictions =
  Simq_obs.Metrics.counter ~help:"LRU evictions" "simq_buffer_pool_evictions_total"

let m_faults =
  Simq_obs.Metrics.counter ~help:"Injected faults surfaced at page touches"
    "simq_buffer_pool_faults_total"

type t = {
  capacity : int;
  stats : Io_stats.t;
  resident : (int, int) Hashtbl.t;  (* page id -> last-touch stamp *)
  mutable clock : int;
  mutable injector : Simq_fault.Injector.t option;
  mutable budget : Simq_fault.Budget.state option;
}

let create ~capacity ~stats =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity";
  {
    capacity;
    stats;
    resident = Hashtbl.create (2 * capacity);
    clock = 0;
    injector = None;
    budget = None;
  }

let set_injector t injector = t.injector <- injector
let set_budget t budget = t.budget <- budget

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun page stamp acc ->
        match acc with
        | Some (_, best) when best <= stamp -> acc
        | _ -> Some (page, stamp))
      t.resident None
  in
  match victim with
  | Some (page, _) ->
    Hashtbl.remove t.resident page;
    Simq_obs.Metrics.incr m_evictions
  | None -> ()

let touch t page =
  (match t.injector with
  | None -> ()
  | Some injector -> (
      try Simq_fault.Injector.check injector Page_read
      with Simq_fault.Injector.Transient_fault _ as e ->
        Simq_obs.Metrics.incr m_faults;
        raise e));
  (match t.budget with
  | None -> ()
  | Some budget ->
    Simq_fault.Budget.check budget;
    Simq_fault.Budget.charge_page_read budget);
  t.clock <- t.clock + 1;
  if Hashtbl.mem t.resident page then begin
    Hashtbl.replace t.resident page t.clock;
    Io_stats.record_cache_hit t.stats;
    Simq_obs.Metrics.incr m_hits;
    `Hit
  end
  else begin
    Io_stats.record_page_read t.stats;
    Simq_obs.Metrics.incr m_misses;
    if Hashtbl.length t.resident >= t.capacity then evict_lru t;
    Hashtbl.replace t.resident page t.clock;
    `Miss
  end

let resident t = Hashtbl.length t.resident
let flush t = Hashtbl.reset t.resident
