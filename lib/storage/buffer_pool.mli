(** An LRU buffer pool over page identifiers. Data lives in memory; the
    pool tracks which pages {e would} be resident, so cache misses equal
    the disk reads a paged implementation would issue. *)

type t

(** [create ~capacity ~stats] keeps at most [capacity] pages resident
    and records hits/misses in [stats]. Raises [Invalid_argument] when
    [capacity <= 0]. *)
val create : capacity:int -> stats:Io_stats.t -> t

(** [touch pool page] accesses [page]: [`Hit] when resident, [`Miss]
    (counted as a page read, least-recently-used page evicted if
    necessary) otherwise. When an injector is installed the access may
    raise {!Simq_fault.Injector.Transient_fault} {e before} any
    counter is updated; when a budget state is installed the touch is
    first checked and charged as one logical page read and may raise
    {!Simq_fault.Budget.Exceeded}. *)
val touch : t -> int -> [ `Hit | `Miss ]

(** [set_injector pool injector] installs (or, with [None], removes)
    a fault injector consulted on every {!touch}. Absent by default —
    the guard then costs a single pattern match. *)
val set_injector : t -> Simq_fault.Injector.t option -> unit

(** [set_budget pool budget] installs (or removes) the budget state
    charged one logical page read per {!touch} — hits and misses
    alike, so budget outcomes do not depend on residency left behind
    by earlier queries. Install for the duration of a single query
    attempt and remove afterwards. *)
val set_budget : t -> Simq_fault.Budget.state option -> unit

(** [resident pool] is the number of currently resident pages. *)
val resident : t -> int

(** [flush pool] empties the pool (counters keep their values). *)
val flush : t -> unit
