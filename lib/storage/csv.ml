let export relation path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Relation.iter relation ~f:(fun tuple ->
          if
            String.contains tuple.Relation.name ','
            || String.contains tuple.Relation.name '\n'
          then failwith ("Csv.export: unquotable name " ^ tuple.Relation.name);
          output_string oc tuple.Relation.name;
          Array.iter
            (fun v -> Printf.fprintf oc ",%.17g" v)
            tuple.Relation.data;
          output_char oc '\n'))

let import ?page_size ?pool_pages ~name path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let relation = Relation.create ?page_size ?pool_pages ~name () in
      let expected_columns = ref None in
      let line_number = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr line_number;
           (* Tolerate CRLF files: input_line keeps the '\r'. *)
           let line =
             let len = String.length line in
             if len > 0 && line.[len - 1] = '\r' then String.sub line 0 (len - 1)
             else line
           in
           if String.trim line <> "" then begin
             match String.split_on_char ',' line with
             | [] | [ _ ] ->
               failwith
                 (Printf.sprintf "Csv.import: line %d has no values"
                    !line_number)
             | series_name :: cells ->
               let columns = List.length cells in
               (match !expected_columns with
               | None -> expected_columns := Some columns
               | Some expected when expected <> columns ->
                 failwith
                   (Printf.sprintf
                      "Csv.import: line %d has %d values, expected %d"
                      !line_number columns expected)
               | Some _ -> ());
               let data =
                 Array.of_list
                   (List.map
                      (fun cell ->
                        match float_of_string_opt (String.trim cell) with
                        | Some v when Float.is_finite v -> v
                        | Some _ ->
                          failwith
                            (Printf.sprintf
                               "Csv.import: line %d: non-finite value %S"
                               !line_number cell)
                        | None ->
                          failwith
                            (Printf.sprintf
                               "Csv.import: line %d: bad number %S"
                               !line_number cell))
                      cells)
               in
               ignore (Relation.insert relation ~name:series_name data)
           end
         done
       with End_of_file -> ());
      if Relation.cardinality relation = 0 then
        failwith "Csv.import: no series found";
      Io_stats.reset (Relation.stats relation);
      relation)
