module Series = Simq_series.Series

type tuple = {
  id : int;
  name : string;
  data : Series.t;
}

type t = {
  name : string;
  page_size : int;
  mutable tuples : tuple array;  (* amortised growable buffer *)
  mutable count : int;
  mutable offsets : int array;  (* byte offset of each tuple *)
  mutable next_offset : int;
  stats : Io_stats.t;
  pool : Buffer_pool.t;
}

(* A float is 8 bytes; a modest per-tuple header covers id, name and
   slot bookkeeping. *)
let tuple_bytes tuple = (8 * Array.length tuple.data) + 32

let create ?(page_size = 4096) ?(pool_pages = 64) ~name () =
  if page_size <= 64 then invalid_arg "Relation.create: page_size too small";
  let stats = Io_stats.create () in
  {
    name;
    page_size;
    tuples = [||];
    count = 0;
    offsets = [||];
    next_offset = 0;
    stats;
    pool = Buffer_pool.create ~capacity:pool_pages ~stats;
  }

let name t = t.name
let cardinality t = t.count
let set_injector t injector = Buffer_pool.set_injector t.pool injector
let set_budget t budget = Buffer_pool.set_budget t.pool budget

let ensure_capacity t =
  let capacity = Array.length t.tuples in
  if t.count = capacity then begin
    let fresh = max 16 (2 * capacity) in
    let tuples =
      Array.make fresh { id = -1; name = ""; data = [| 0. |] }
    in
    let offsets = Array.make fresh 0 in
    Array.blit t.tuples 0 tuples 0 capacity;
    Array.blit t.offsets 0 offsets 0 capacity;
    t.tuples <- tuples;
    t.offsets <- offsets
  end

let insert t ~name data =
  let data = Series.validate data in
  ensure_capacity t;
  let tuple = { id = t.count; name; data } in
  t.tuples.(t.count) <- tuple;
  t.offsets.(t.count) <- t.next_offset;
  t.next_offset <- t.next_offset + tuple_bytes tuple;
  t.count <- t.count + 1;
  Io_stats.record_page_write t.stats;
  tuple

let of_series ?page_size ~name batch =
  let t = create ?page_size ~name () in
  Array.iteri
    (fun idx data -> ignore (insert t ~name:(Printf.sprintf "seq-%04d" idx) data))
    batch;
  t

let page_of t offset = offset / t.page_size

(* Touch every page the tuple spans. *)
let touch_tuple t idx =
  let first = page_of t t.offsets.(idx) in
  let last = page_of t (t.offsets.(idx) + tuple_bytes t.tuples.(idx) - 1) in
  for page = first to last do
    ignore (Buffer_pool.touch t.pool page)
  done

let get t id =
  if id < 0 || id >= t.count then raise Not_found;
  touch_tuple t id;
  t.tuples.(id)

let fold t ~init ~f =
  let acc = ref init in
  for idx = 0 to t.count - 1 do
    touch_tuple t idx;
    acc := f !acc t.tuples.(idx)
  done;
  !acc

let iter t ~f = fold t ~init:() ~f:(fun () tuple -> f tuple)
let to_array t = Array.init t.count (fun idx -> t.tuples.(idx))

let pages t =
  if t.next_offset = 0 then 0
  else 1 + page_of t (t.next_offset - 1)

let stats t = t.stats

type snapshot = {
  snap_name : string;
  snap_tuples : tuple array;
}

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Marshal.to_channel oc
        { snap_name = t.name; snap_tuples = to_array t }
        [])

let load ?page_size ?pool_pages path =
  let ic = open_in_bin path in
  let snapshot =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> (Marshal.from_channel ic : snapshot))
  in
  let t = create ?page_size ?pool_pages ~name:snapshot.snap_name () in
  Array.iter
    (fun (tuple : tuple) -> ignore (insert t ~name:tuple.name tuple.data))
    snapshot.snap_tuples;
  Io_stats.reset t.stats;
  t
