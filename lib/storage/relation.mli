(** Relations of time sequences. The paper treats relations as unary —
    sets of sequences — “in practice of course they may have other
    attributes”; tuples here carry an id and a symbolic name (ticker,
    sensor, …) next to the data.

    Tuples are laid out on fixed-size logical pages in insertion order;
    scans and point lookups account their page traffic through an LRU
    buffer pool, so sequential-scan baselines report page reads the way
    the paper reports disk accesses. *)

type tuple = {
  id : int;           (** dense, assigned at insertion, starting from 0 *)
  name : string;
  data : Simq_series.Series.t;
}

type t

(** [create ~name ()] is an empty relation. [page_size] is the logical
    page size in bytes (default 4096); [pool_pages] the buffer-pool
    capacity in pages (default 64). *)
val create : ?page_size:int -> ?pool_pages:int -> name:string -> unit -> t

val name : t -> string
val cardinality : t -> int

(** [insert t ~name data] validates [data], appends it, and returns the
    new tuple. *)
val insert : t -> name:string -> Simq_series.Series.t -> tuple

(** [of_series ~name batch] bulk-creates a relation with generated tuple
    names. *)
val of_series : ?page_size:int -> name:string -> Simq_series.Series.t array -> t

(** [get t id] fetches one tuple through the buffer pool. Raises
    [Not_found] for unknown ids. *)
val get : t -> int -> tuple

(** [fold t ~init ~f] scans all tuples in storage order, touching each
    data page once. *)
val fold : t -> init:'acc -> f:('acc -> tuple -> 'acc) -> 'acc

val iter : t -> f:(tuple -> unit) -> unit
val to_array : t -> tuple array

(** [pages t] is the number of logical pages the relation occupies. *)
val pages : t -> int

(** [stats t] exposes the I/O counters ({!Io_stats.reset} to clear
    between measurements). *)
val stats : t -> Io_stats.t

(** [set_injector t injector] installs (or removes) a fault injector on
    the relation's buffer pool: every page touched by {!get}, {!fold}
    and {!iter} may then raise
    {!Simq_fault.Injector.Transient_fault}. See
    {!Buffer_pool.set_injector}. *)
val set_injector : t -> Simq_fault.Injector.t option -> unit

(** [set_budget t budget] installs (or removes) a per-query budget
    state charged for every logical page touch. See
    {!Buffer_pool.set_budget}. *)
val set_budget : t -> Simq_fault.Budget.state option -> unit

(** [save t path] / [load path] persist and restore a relation
    (marshalled; same OCaml version required on both ends). *)
val save : t -> string -> unit

val load : ?page_size:int -> ?pool_pages:int -> string -> t
