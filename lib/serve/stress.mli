(** The deterministic multi-client stress and chaos harness behind
    [simq stress] and the [serve] experiment.

    [N] client threads each pose [M] queries from the mixed workload
    {!Simq_workload.Queries.spec_mix} against a running daemon. The
    spec streams are pure functions of the harness seed (derive it
    from [Bench_util.derived_seed] so every harness stream descends
    from the documented bench seed) — per-client seeds are split
    deterministically from it, so the same seed always poses the same
    queries on the same connections. Chaos mode interleaves protocol
    abuse between queries: malformed request lines, an oversized line,
    and mid-query disconnects, all drawn from the same seeded
    stream.

    The report asserts the robustness contract: the daemon never dies
    ([server_gone = false]), every well-formed query gets exactly one
    well-formed response ([protocol_errors = 0]), and — when an
    offline [oracle] is supplied — every served answer set is
    bit-identical to the offline execution of the same spec
    ([mismatches = []]). Rejections (admission or load shedding,
    exit 5) are legitimate outcomes, counted separately. *)

module Client : sig
  (** A blocking line-protocol client — the "new client path" of the
      service; every operation honours the connect-time [timeout]. *)

  type t

  (** [connect ?timeout ~host ~port ()] opens a TCP connection;
      [timeout] (seconds, must be positive) bounds the connect and
      every subsequent read and write ([Unix_error
      EAGAIN]/[EWOULDBLOCK] on expiry). Raises [Unix.Unix_error] on
      connection failure. *)
  val connect : ?timeout:float -> host:string -> port:int -> unit -> t

  (** [send_line t line] writes one raw request line (the newline is
      appended). The line travels verbatim — escape specs with
      {!Protocol.escape}. *)
  val send_line : t -> string -> unit

  (** [recv_line t] reads one response line; [None] on a closed
      peer. *)
  val recv_line : t -> string option

  (** [query t spec] escapes and sends [spec], then reads and parses
      the one JSON response line. [Error] describes a protocol
      violation (closed peer, unparseable response). *)
  val query : t -> string -> (Simq_obs.Json.t, string) result

  val close : t -> unit
end

type report = {
  sent : int;  (** well-formed queries posed *)
  ok : int;  (** outcome ["ok"] responses *)
  rejected : int;  (** exit-5 responses: admission rejections and sheds *)
  failed : int;  (** other error responses (usage, fault, …) *)
  protocol_errors : int;
      (** responses that were missing or unparseable — always 0
          against a healthy daemon *)
  malformed_sent : int;  (** chaos: abusive lines injected *)
  disconnects : int;  (** chaos: connections dropped mid-query *)
  server_gone : bool;
      (** a client could not (re)connect — the daemon died *)
  latencies_s : float array;
      (** client-observed latency of every [ok] response, sorted
          ascending *)
  mismatches : (string * string) list;
      (** [(spec, detail)] for served answers that differ from the
          oracle's — always empty when both sides are exact *)
}

(** [quantile sorted q] interpolates the [q]-quantile ([0 <= q <= 1])
    of a sorted latency array; [0.] when empty. *)
val quantile : float array -> float -> float

(** [run ?chaos ?timeout ?oracle ~host ~port ~clients ~per_client
    ~seed ~cardinality ()] drives the full harness and joins every
    client before reporting. [oracle spec] is the offline answer
    ([None] skips verification for that spec — e.g. the offline run
    itself failed); it is consulted after the run, once per distinct
    spec. [timeout] (default 30 s) bounds every client operation so a
    wedged daemon fails the harness instead of hanging it. *)
val run :
  ?chaos:bool ->
  ?timeout:float ->
  ?oracle:(string -> Simq_obs.Json.t option) ->
  host:string ->
  port:int ->
  clients:int ->
  per_client:int ->
  seed:int ->
  cardinality:int ->
  unit ->
  report
