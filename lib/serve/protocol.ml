let max_line_bytes = 65536

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then Ok (Buffer.contents buf)
    else
      match s.[i] with
      | '\\' ->
        if i + 1 >= n then Error "dangling backslash at end of line"
        else begin
          match s.[i + 1] with
          | '\\' -> Buffer.add_char buf '\\'; go (i + 2)
          | 'n' -> Buffer.add_char buf '\n'; go (i + 2)
          | 'r' -> Buffer.add_char buf '\r'; go (i + 2)
          | 't' -> Buffer.add_char buf '\t'; go (i + 2)
          | c -> Error (Printf.sprintf "unknown escape \\%c" c)
        end
      | c -> Buffer.add_char buf c; go (i + 1)
  in
  go 0

type request =
  | Ping
  | Shutdown
  | Slow
  | Query of {
      profile : bool;
      spec : string;
    }

let profile_prefix = "profile "

let parse_request line =
  if line = "ping" then Ok Ping
  else if line = "shutdown" then Ok Shutdown
  else if line = "slow" then Ok Slow
  else begin
    let profile, payload =
      let p = String.length profile_prefix in
      if String.length line > p && String.sub line 0 p = profile_prefix then
        (true, String.sub line p (String.length line - p))
      else (false, line)
    in
    match unescape payload with
    | Ok spec -> Ok (Query { profile; spec })
    | Error msg -> Error msg
  end

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

module J = Simq_obs.Json

let head ~event ~seq = [ ("event", J.Str event); ("v", J.Num 1.); ("seq", J.Num (float_of_int seq)) ]

let opt_str = function None -> J.Null | Some s -> J.Str s

let ok_line ~seq ~spec ~path ~decision ~answers ~results ~duration_s ?profile () =
  let tail =
    match profile with None -> [] | Some p -> [ ("profile", p) ]
  in
  J.to_string
    (J.Obj
       (head ~event:"simq.serve" ~seq
       @ [
           ("spec", J.Str spec);
           ("path", opt_str path);
           ("decision", opt_str decision);
           ("outcome", J.Str "ok");
           ("exit", J.Num 0.);
           ("answers", J.Num (float_of_int answers));
           ("results", results);
           ("duration_ms", J.Num (duration_s *. 1000.));
         ]
       @ tail))

let error_line ~seq ?spec ~outcome ~exit_code ~message () =
  J.to_string
    (J.Obj
       (head ~event:"simq.serve" ~seq
       @ [
           ("spec", opt_str spec);
           ("outcome", J.Str outcome);
           ("exit", J.Num (float_of_int exit_code));
           ("error", J.Str message);
         ]))

let pong_line ~seq = J.to_string (J.Obj (head ~event:"simq.serve.pong" ~seq))

let slow_line ~seq slow =
  J.to_string (J.Obj (head ~event:"simq.serve.slow" ~seq @ [ ("slow", slow) ]))

let shutdown_line ~seq =
  J.to_string (J.Obj (head ~event:"simq.serve.shutdown" ~seq))
