module J = Simq_obs.Json
module Clock = Simq_obs.Clock

module Client = struct
  type t = {
    fd : Unix.file_descr;
    pending : Buffer.t;
    chunk : Bytes.t;
  }

  let connect ?timeout ~host ~port () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (match timeout with
    | None -> ()
    | Some s when s > 0. -> (
      try
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
      with Unix.Unix_error _ -> ())
    | Some s ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      invalid_arg
        (Printf.sprintf "Simq_serve.Stress.Client: timeout %g must be > 0" s));
    match
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
    with
    | () -> { fd; pending = Buffer.create 4096; chunk = Bytes.create 8192 }
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

  let send_line t line =
    let line = line ^ "\n" in
    let n = String.length line in
    let rec go off =
      if off < n then
        match Unix.write_substring t.fd line off (n - off) with
        | written -> go (off + written)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    go 0

  let recv_line t =
    let take () =
      let s = Buffer.contents t.pending in
      match String.index_opt s '\n' with
      | None -> None
      | Some i ->
        Buffer.clear t.pending;
        Buffer.add_substring t.pending s (i + 1) (String.length s - i - 1);
        Some (String.sub s 0 i)
    in
    let rec go () =
      match take () with
      | Some line -> Some line
      | None -> (
        match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
        | 0 -> None
        | n ->
          Buffer.add_subbytes t.pending t.chunk 0 n;
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
    in
    go ()

  let query t spec =
    match
      send_line t (Protocol.escape spec);
      recv_line t
    with
    | None -> Error "connection closed by server"
    | Some line -> (
      match J.parse line with
      | Ok json -> Ok json
      | Error msg -> Error ("unparseable response: " ^ msg))
    | exception Unix.Unix_error (e, _, _) ->
      Error ("connection error: " ^ Unix.error_message e)

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end

type report = {
  sent : int;
  ok : int;
  rejected : int;
  failed : int;
  protocol_errors : int;
  malformed_sent : int;
  disconnects : int;
  server_gone : bool;
  latencies_s : float array;
  mismatches : (string * string) list;
}

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Int.min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

(* Per-client mutable tallies, merged after the join — each client
   thread touches only its own record. *)
type tally = {
  mutable t_sent : int;
  mutable t_ok : int;
  mutable t_rejected : int;
  mutable t_failed : int;
  mutable t_protocol : int;
  mutable t_malformed : int;
  mutable t_disconnects : int;
  mutable t_gone : bool;
  mutable t_latencies : float list;
  mutable t_answers : (string * string) list;
      (** (spec, rendered results) of every ok response *)
}

let fresh_tally () =
  {
    t_sent = 0;
    t_ok = 0;
    t_rejected = 0;
    t_failed = 0;
    t_protocol = 0;
    t_malformed = 0;
    t_disconnects = 0;
    t_gone = false;
    t_latencies = [];
    t_answers = [];
  }

(* Deterministic per-client seed split: distinct odd strides keep the
   client streams disjoint for any harness seed. *)
let client_seed seed i = seed + (1009 * (i + 1))

let malformed_lines =
  [|
    "DEFINITELY NOT A QUERY";
    "RANGE FROM r QUERY s0 EPS 1.0\\q";
    String.make (Protocol.max_line_bytes + 64) 'x';
  |]

exception Client_gone

let run_client ~chaos ~timeout ~host ~port ~seed ~cardinality ~per_client
    tally =
  let specs =
    Simq_workload.Queries.spec_mix ~seed ~cardinality ~count:per_client ()
  in
  let rng = Random.State.make [| seed lxor 0x5f3759df |] in
  let conn = ref None in
  let connect () =
    match Client.connect ~timeout ~host ~port () with
    | c ->
      conn := Some c;
      c
    | exception (Unix.Unix_error _ | Invalid_argument _) ->
      tally.t_gone <- true;
      raise Client_gone
  in
  let current () = match !conn with Some c -> c | None -> connect () in
  let expect_response c =
    (* An abusive line must produce exactly one error line and a
       still-living connection. *)
    match Client.recv_line c with
    | Some _ -> ()
    | None ->
      tally.t_protocol <- tally.t_protocol + 1;
      Client.close c;
      conn := None
    | exception Unix.Unix_error _ ->
      tally.t_protocol <- tally.t_protocol + 1;
      Client.close c;
      conn := None
  in
  let pose spec =
    let c = current () in
    let t0 = Clock.now_ns () in
    tally.t_sent <- tally.t_sent + 1;
    match Client.query c spec with
    | Ok json -> (
      let elapsed = Clock.elapsed_s t0 in
      match J.member "outcome" json with
      | Some (J.Str "ok") ->
        tally.t_ok <- tally.t_ok + 1;
        tally.t_latencies <- elapsed :: tally.t_latencies;
        let results =
          match J.member "results" json with
          | Some r -> J.to_string r
          | None -> "missing"
        in
        tally.t_answers <- (spec, results) :: tally.t_answers
      | Some (J.Str _) -> (
        match J.member "exit" json with
        | Some (J.Num code) when int_of_float code = 5 ->
          tally.t_rejected <- tally.t_rejected + 1
        | _ -> tally.t_failed <- tally.t_failed + 1)
      | _ -> tally.t_protocol <- tally.t_protocol + 1)
    | Error _ ->
      tally.t_protocol <- tally.t_protocol + 1;
      Client.close c;
      conn := None;
      ignore (connect ())
  in
  (try
     List.iter
       (fun spec ->
         if chaos then begin
           (* Fixed draw order keeps the stream deterministic whatever
              the branches do. *)
           let abuse = Random.State.int rng 8 in
           let which = Random.State.int rng (Array.length malformed_lines) in
           let drop = Random.State.int rng 8 in
           if abuse < 2 then begin
             let c = current () in
             tally.t_malformed <- tally.t_malformed + 1;
             (try Client.send_line c malformed_lines.(which)
              with Unix.Unix_error _ -> ());
             expect_response c;
             ignore (current ())
           end;
           if drop = 0 then begin
             (* Mid-query disconnect: fire the query, vanish before the
                response. *)
             let c = current () in
             tally.t_disconnects <- tally.t_disconnects + 1;
             (try Client.send_line c (Protocol.escape spec)
              with Unix.Unix_error _ -> ());
             Client.close c;
             conn := None
           end
           else pose spec
         end
         else pose spec)
       specs;
     (* Liveness probe: the daemon must still answer after the abuse. *)
     let c = current () in
     Client.send_line c "ping";
     (match Client.recv_line c with
     | Some _ -> ()
     | None | (exception Unix.Unix_error _) ->
       tally.t_protocol <- tally.t_protocol + 1)
   with
  | Client_gone -> ()
  | Unix.Unix_error _ -> tally.t_gone <- true);
  match !conn with
  | Some c ->
    Client.close c;
    conn := None
  | None -> ()

let run ?(chaos = false) ?(timeout = 30.) ?oracle ~host ~port ~clients
    ~per_client ~seed ~cardinality () =
  if clients < 1 then invalid_arg "Simq_serve.Stress.run: clients must be >= 1";
  if per_client < 0 then
    invalid_arg "Simq_serve.Stress.run: per_client must be >= 0";
  let tallies = Array.init clients (fun _ -> fresh_tally ()) in
  let threads =
    Array.to_list
      (Array.mapi
         (fun i tally ->
           Thread.create
             (fun () ->
               run_client ~chaos ~timeout ~host ~port
                 ~seed:(client_seed seed i) ~cardinality ~per_client tally)
             ())
         tallies)
  in
  List.iter Thread.join threads;
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let latencies =
    Array.of_list
      (Array.fold_left (fun acc t -> t.t_latencies @ acc) [] tallies)
  in
  Array.sort Float.compare latencies;
  let mismatches =
    match oracle with
    | None -> []
    | Some oracle ->
      let expected = Hashtbl.create 64 in
      let expect spec =
        match Hashtbl.find_opt expected spec with
        | Some e -> e
        | None ->
          let e = Option.map J.to_string (oracle spec) in
          Hashtbl.add expected spec e;
          e
      in
      let seen = Hashtbl.create 16 in
      Array.fold_left
        (fun acc t ->
          List.fold_left
            (fun acc (spec, served) ->
              match expect spec with
              | Some want
                when want <> served && not (Hashtbl.mem seen spec) ->
                Hashtbl.add seen spec ();
                (spec, Printf.sprintf "served %s, oracle %s" served want)
                :: acc
              | _ -> acc)
            acc t.t_answers)
        [] tallies
  in
  {
    sent = sum (fun t -> t.t_sent);
    ok = sum (fun t -> t.t_ok);
    rejected = sum (fun t -> t.t_rejected);
    failed = sum (fun t -> t.t_failed);
    protocol_errors = sum (fun t -> t.t_protocol);
    malformed_sent = sum (fun t -> t.t_malformed);
    disconnects = sum (fun t -> t.t_disconnects);
    server_gone = Array.exists (fun t -> t.t_gone) tallies;
    latencies_s = latencies;
    mismatches;
  }
