(** The [simq serve] daemon core: a loopback TCP listener answering
    {!Protocol} requests against a resident {!Engine}, built to stay
    alive under hostile clients and injected faults.

    Robustness properties (the chaos suite in [test/test_serve.ml]
    exercises each):

    - {b worker isolation} — every connection runs on its own thread;
      a malformed line, an oversized line, a query that fails, or any
      exception escaping the engine becomes a one-line error response
      carrying the {!Simq_cli} exit-code taxonomy, never a dead
      server;
    - {b load shedding} — with [max_inflight] set, a request arriving
      while that many queries are executing or queued is refused
      through {!Simq_admission.shed} (a typed [rejected]/exit-5
      response on the [in_flight] resource, counted in the admission
      decision metrics) {e before} any page is read;
    - {b slow peers} — [idle_timeout] reaps connections that stop
      sending (the read times out); [write_timeout] bounds every
      response write, so a client that stops reading cannot wedge a
      worker;
    - {b graceful drain} — {!request_drain} (the [shutdown] command, or
      the SIGTERM/SIGINT handlers installed by the CLI) stops the
      accept loop, lets in-flight queries finish and their responses
      flush, then closes every connection; {!wait} returns once the
      last worker exits, after which the CLI dumps
      metrics/qlog/state.

    Queries execute one at a time under an engine mutex (connection
    I/O stays concurrent), so registry snapshots bracket exactly one
    query and the query-log entry stream is well-formed; the executed
    query is timed through {!Simq_report.Timer}, feeding the
    [simq_timer_seconds] histogram the admission policy calibrates
    against.

    Every query line is issued a request id
    ({!Simq_obs.Trace.new_request_id}) published for the duration of
    its serialized execution, so the query's qlog line ([trace_id]),
    profile root and every trace span it emits — across pool domains
    and shards — carry the same id even with concurrent connections.
    The daemon also counts traffic ([simq_serve_queries_total],
    [simq_serve_shed_total]) for the {!Simq_obs.History} window. *)

type t

(** [start ?max_inflight ?max_line_bytes ?idle_timeout ?write_timeout
    ?policy ?qlog ~engine ~port ()] binds [127.0.0.1:port] (0 picks an
    ephemeral port — see {!port}) and starts the accept thread.
    [policy] (default {!Simq_admission.default}) accounts shed
    requests; [qlog] receives one entry per executed query, exactly as
    [simq query --qlog] writes them. [max_line_bytes] defaults to
    {!Protocol.max_line_bytes}; timeouts are in seconds and must be
    positive when given ([Invalid_argument] otherwise, as is
    [max_inflight < 0]). [slow_k] (default: none; [Invalid_argument]
    if [< 1]) keeps a worst-[k] slow-query exemplar store
    ({!Simq_obs.Slow}) fed by every executed query — each query is
    then profiled internally for its rendered tree, though the
    response only carries a profile when the client asked — and
    served by the [slow] protocol command. Raises [Unix.Unix_error]
    when the port cannot be bound. *)
val start :
  ?max_inflight:int ->
  ?max_line_bytes:int ->
  ?idle_timeout:float ->
  ?write_timeout:float ->
  ?policy:Simq_admission.t ->
  ?qlog:Simq_obs.Qlog.t ->
  ?slow_k:int ->
  engine:Engine.t ->
  port:int ->
  unit ->
  t

(** The bound port — the ephemeral one when [start] was given 0. *)
val port : t -> int

type stats = {
  served : int;  (** queries executed (whatever their outcome) *)
  shed : int;  (** requests refused by the in-flight cap *)
  errors : int;  (** error responses other than sheds *)
  connections : int;  (** connections ever accepted *)
}

(** Monotonic totals since [start]; safe from any thread. *)
val stats : t -> stats

(** [request_drain t] begins a graceful shutdown: the listener stops
    accepting, workers finish the query they are executing, every
    connection is then closed. Idempotent, safe from signal handlers
    and worker threads. *)
val request_drain : t -> unit

val draining : t -> bool

(** [wait t] blocks until the accept thread and every worker have
    exited (i.e. until someone calls {!request_drain} — or a client
    sends [shutdown] — and the drain completes). *)
val wait : t -> unit

(** [stop t] is {!request_drain} followed by {!wait} and resource
    cleanup. Idempotent. *)
val stop : t -> unit

(** [with_server ?... ~engine ~port f] runs [f] against a started
    server and stops it on every exit path. *)
val with_server :
  ?max_inflight:int ->
  ?max_line_bytes:int ->
  ?idle_timeout:float ->
  ?write_timeout:float ->
  ?policy:Simq_admission.t ->
  ?qlog:Simq_obs.Qlog.t ->
  ?slow_k:int ->
  engine:Engine.t ->
  port:int ->
  (t -> 'a) ->
  'a
