module Metrics = Simq_obs.Metrics
module Qlog = Simq_obs.Qlog
module Profile = Simq_obs.Profile
module Trace = Simq_obs.Trace
module Slow = Simq_obs.Slow

(* Serve-side traffic counters: one increment per protocol query on
   the worker thread, so the merged totals are trivially
   domain-invariant. They feed the history window's qps and shed
   rate. *)
let m_queries =
  Metrics.counter ~help:"Queries executed by the serve daemon (any outcome)"
    "simq_serve_queries_total"

let m_shed =
  Metrics.counter ~help:"Queries shed by the serve daemon's in-flight cap"
    "simq_serve_shed_total"

(* A client that disappears mid-response must surface as EPIPE on the
   write, not as a process-killing SIGPIPE. *)
let ignore_sigpipe =
  lazy
    (try
       ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore : Sys.signal_behavior)
     with Invalid_argument _ -> ())

type t = {
  listener : Unix.file_descr;
  port : int;
  engine : Engine.t;
  policy : Simq_admission.t;
  qlog : Qlog.t option;
  slow : Slow.t option;
  max_inflight : int option;
  max_line_bytes : int;
  stopping : bool Atomic.t;
  inflight : int Atomic.t;
  n_served : int Atomic.t;
  n_shed : int Atomic.t;
  n_errors : int Atomic.t;
  n_connections : int Atomic.t;
  engine_mutex : Mutex.t;
  conns_mutex : Mutex.t;
  mutable conns : Unix.file_descr list;
  mutable workers : Thread.t list;  (** under [conns_mutex] *)
  mutable accept_thread : Thread.t option;
}

type stats = {
  served : int;
  shed : int;
  errors : int;
  connections : int;
}

let stats t =
  {
    served = Atomic.get t.n_served;
    shed = Atomic.get t.n_shed;
    errors = Atomic.get t.n_errors;
    connections = Atomic.get t.n_connections;
  }

let port t = t.port
let draining t = Atomic.get t.stopping

let request_drain t =
  if not (Atomic.exchange t.stopping true) then begin
    (* On Linux, shutting a listening socket down fails the blocked
       [accept] in the accept thread, which then observes [stopping]
       and exits — the same wake-up the metrics endpoint uses. *)
    (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (* Waking every blocked read with EOF: in-flight queries still
       finish and their responses still flush (the write side is left
       open); the worker exits at its next read. *)
    let conns =
      Mutex.protect t.conns_mutex (fun () -> t.conns)
    in
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      conns
  end

(* ------------------------------------------------------------------ *)
(* Per-connection worker                                               *)

(* Unwinds one connection: EOF, peer reset, write failure, a timed-out
   idle read, or the drain. Never escapes the worker. *)
exception Conn_done

let write_line fd line =
  let line = line ^ "\n" in
  let n = String.length line in
  let rec go off =
    if off < n then
      match Unix.write_substring fd line off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ ->
        (* EPIPE/ECONNRESET from a gone peer, EAGAIN from a slow one
           that blew the write timeout: the connection is done. *)
        raise Conn_done
  in
  go 0

let outcome_of_error (e : Simq_cli.error) =
  let kind =
    match e with
    | Simq_cli.Fault f -> Simq_fault.Error.kind f
    | Simq_cli.Usage _ -> "usage"
    | Simq_cli.File _ -> "file"
    | Simq_cli.Csv_error _ -> "csv"
  in
  (kind, Simq_cli.exit_code e)

let log_query t ~spec ~trace ~decision ~path ?shards ~deltas ~duration_s
    ~outcome ~exit_code () =
  match t.qlog with
  | None -> ()
  | Some qlog ->
    Qlog.log qlog
      {
        Qlog.spec;
        digest = Engine.digest spec;
        decision;
        path;
        deltas;
        duration_s;
        outcome;
        exit_code;
        domains = Simq_parallel.Pool.domains (Simq_parallel.Pool.default ());
        shards;
        trace_id = Some trace;
      }

(* The load-shed path: refused through the admission policy before the
   engine mutex is even contended — no page read, no execution-side
   counter moves. *)
let shed_response t ~seq ~trace ~spec ~inflight ~limit =
  Atomic.incr t.n_shed;
  Metrics.incr m_shed;
  let reject = Simq_admission.shed t.policy ~inflight ~limit in
  let e = Simq_admission.error_of_reject reject in
  let message = Format.asprintf "%a" Simq_fault.Error.pp e in
  let outcome = Simq_fault.Error.kind e in
  let exit_code = Simq_cli.exit_code (Simq_cli.Fault e) in
  log_query t ~spec ~trace ~decision:(Some "reject") ~path:None ~deltas:[]
    ~duration_s:0. ~outcome ~exit_code ();
  Protocol.error_line ~seq ~spec ~outcome ~exit_code ~message ()

let run_query t ~seq ~profile ~spec =
  (* One request id per protocol query line — the correlation key of
     its qlog line, profile root and trace spans; allocated before the
     shed check so even a shed line is attributable. *)
  let trace = Trace.new_request_id () in
  let cur = Atomic.fetch_and_add t.inflight 1 in
  let sheds =
    match t.max_inflight with Some m -> cur >= m | None -> false
  in
  if sheds then begin
    Atomic.decr t.inflight;
    shed_response t ~seq ~trace ~spec ~inflight:(cur + 1)
      ~limit:(Option.get t.max_inflight)
  end
  else
    Fun.protect
      ~finally:(fun () -> Atomic.decr t.inflight)
      (fun () ->
        (* The slow store needs a rendered tree for every query, so it
           forces a profile; the response only carries one when the
           client asked. *)
        let prof =
          if profile || t.slow <> None then Some (Profile.create ()) else None
        in
        let note = Engine.note () in
        let result, duration_s =
          Mutex.protect t.engine_mutex (fun () ->
              (* Engine execution is serialized under the mutex, so
                 publishing the request id process-wide is race-free
                 and pool worker domains fanning out for this query
                 observe it. *)
              Trace.with_request trace (fun () ->
                  let before =
                    match t.qlog with
                    | Some _ -> Some (Metrics.snapshot ())
                    | None -> None
                  in
                  let result, duration_s =
                    Simq_report.Timer.time (fun () ->
                        match Engine.exec ?profile:prof ~note t.engine spec with
                        | r -> `Result r
                        | exception e -> `Escaped e)
                  in
                  let deltas =
                    match before with
                    | Some before ->
                      Qlog.counter_deltas ~before ~after:(Metrics.snapshot ())
                    | None -> []
                  in
                  (* After the delta bracket, so qlog deltas keep
                     showing only execution-side families (and a
                     rejected query's stay empty). *)
                  Metrics.incr m_queries;
                  let outcome, exit_code =
                    match result with
                    | `Result (Ok _) -> ("ok", 0)
                    | `Result (Error e) -> outcome_of_error e
                    | `Escaped _ -> ("fault", 4)
                  in
                  log_query t ~spec ~trace ~decision:note.Engine.note_decision
                    ~path:note.Engine.note_path ?shards:note.Engine.note_shards
                    ~deltas ~duration_s ~outcome ~exit_code ();
                  (result, duration_s)))
        in
        Atomic.incr t.n_served;
        (match t.slow with
        | Some store ->
          Slow.observe store
            {
              Slow.seq;
              trace_id = trace;
              digest = Engine.digest spec;
              spec;
              duration_s;
              profile =
                (match prof with Some p -> Profile.render p | None -> "");
            }
        | None -> ());
        match result with
        | `Result (Ok (o : Engine.outcome)) ->
          Protocol.ok_line ~seq ~spec ~path:o.Engine.path
            ~decision:o.Engine.decision ~answers:o.Engine.answers
            ~results:o.Engine.results ~duration_s
            ?profile:
              (if profile then Option.map Profile.to_json prof else None)
            ()
        | `Result (Error e) ->
          Atomic.incr t.n_errors;
          let outcome, exit_code = outcome_of_error e in
          Protocol.error_line ~seq ~spec ~outcome ~exit_code
            ~message:(Simq_cli.message e) ()
        | `Escaped e ->
          (* Worker isolation: anything escaping the engine becomes an
             exit-4 fault line, never a dead thread. *)
          Atomic.incr t.n_errors;
          Protocol.error_line ~seq ~spec ~outcome:"fault" ~exit_code:4
            ~message:(Printexc.to_string e) ())

let handle_line t fd ~next_seq line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if line = "" then ()
  else begin
    let seq = next_seq () in
    match Protocol.parse_request line with
    | Error msg ->
      Atomic.incr t.n_errors;
      write_line fd
        (Protocol.error_line ~seq ~outcome:"usage" ~exit_code:1
           ~message:("bad request line: " ^ msg) ())
    | Ok Protocol.Ping -> write_line fd (Protocol.pong_line ~seq)
    | Ok Protocol.Slow -> (
      match t.slow with
      | Some store -> write_line fd (Protocol.slow_line ~seq (Slow.to_json store))
      | None ->
        Atomic.incr t.n_errors;
        write_line fd
          (Protocol.error_line ~seq ~outcome:"usage" ~exit_code:1
             ~message:"no slow-query store on this daemon (start with --slow-k)"
             ()))
    | Ok Protocol.Shutdown ->
      write_line fd (Protocol.shutdown_line ~seq);
      request_drain t;
      raise Conn_done
    | Ok (Protocol.Query { profile; spec }) ->
      if Atomic.get t.stopping then raise Conn_done;
      write_line fd (run_query t ~seq ~profile ~spec)
  end

let worker t fd =
  let seq = ref 0 in
  let next_seq () =
    let s = !seq in
    incr seq;
    s
  in
  let pending = Buffer.create 4096 in
  let chunk = Bytes.create 8192 in
  let discarding = ref false in
  (* The first complete line of [pending], leaving the rest. *)
  let take_line () =
    let s = Buffer.contents pending in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
      Buffer.clear pending;
      Buffer.add_substring pending s (i + 1) (String.length s - i - 1);
      Some (String.sub s 0 i)
  in
  let rec drain_lines () =
    match take_line () with
    | Some line ->
      (* When discarding, this newline ends the oversized line; the
         bytes before it belong to it and are dropped. *)
      if !discarding then discarding := false else handle_line t fd ~next_seq line;
      drain_lines ()
    | None ->
      if Buffer.length pending > t.max_line_bytes then begin
        if not !discarding then begin
          discarding := true;
          Atomic.incr t.n_errors;
          write_line fd
            (Protocol.error_line ~seq:(next_seq ()) ~outcome:"usage"
               ~exit_code:1
               ~message:
                 (Printf.sprintf "request line exceeds %d bytes; discarded"
                    t.max_line_bytes)
               ())
        end;
        Buffer.clear pending
      end
  in
  let rec read_loop () =
    if Atomic.get t.stopping && Buffer.length pending = 0 then ()
    else begin
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes pending chunk 0 n;
        drain_lines ();
        read_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_loop ()
      | exception Unix.Unix_error _ ->
        (* Idle timeout (EAGAIN), peer reset, or the drain: reap. *)
        ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect t.conns_mutex (fun () ->
          t.conns <- List.filter (fun c -> c != fd) t.conns);
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> try read_loop () with Conn_done -> () | _ -> ())

(* ------------------------------------------------------------------ *)
(* Accept loop and lifecycle                                           *)

let accept_loop t ~idle_timeout ~write_timeout =
  let rec loop () =
    match Unix.accept t.listener with
    | fd, _ ->
      if Atomic.get t.stopping then begin
        (try Unix.close fd with Unix.Unix_error _ -> ())
      end
      else begin
        (try
           (match idle_timeout with
           | Some s -> Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
           | None -> ());
           match write_timeout with
           | Some s -> Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
           | None -> ()
         with Unix.Unix_error _ -> ());
        Atomic.incr t.n_connections;
        Mutex.protect t.conns_mutex (fun () ->
            t.conns <- fd :: t.conns;
            t.workers <- Thread.create (worker t) fd :: t.workers);
        loop ()
      end
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if not (Atomic.get t.stopping) then loop ()
    | exception Unix.Unix_error ((Unix.EINVAL | Unix.EBADF), _, _) ->
      (* The listener was shut down or closed: drain. *)
      ()
    | exception Unix.Unix_error _ ->
      (* Transient accept failure (ECONNABORTED, fd pressure): a
         long-running daemon backs off instead of dying. *)
      if not (Atomic.get t.stopping) then begin
        Thread.delay 0.05;
        loop ()
      end
  in
  loop ()

let start ?max_inflight ?(max_line_bytes = Protocol.max_line_bytes)
    ?idle_timeout ?write_timeout ?(policy = Simq_admission.default) ?qlog
    ?slow_k ~engine ~port () =
  Lazy.force ignore_sigpipe;
  (match max_inflight with
  | Some m when m < 0 ->
    invalid_arg "Simq_serve.Server: max_inflight must be >= 0"
  | _ -> ());
  let slow =
    match slow_k with
    | None -> None
    | Some k ->
      if k < 1 then invalid_arg "Simq_serve.Server: slow_k must be >= 1";
      Some (Slow.create ~k)
  in
  if max_line_bytes < 1 then
    invalid_arg "Simq_serve.Server: max_line_bytes must be positive";
  List.iter
    (fun (name, v) ->
      match v with
      | Some s when s <= 0. ->
        invalid_arg (Printf.sprintf "Simq_serve.Server: %s must be > 0" name)
      | _ -> ())
    [ ("idle_timeout", idle_timeout); ("write_timeout", write_timeout) ];
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match
     Unix.setsockopt listener Unix.SO_REUSEADDR true;
     Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen listener 64
   with
  | () -> ()
  | exception e ->
    (try Unix.close listener with Unix.Unix_error _ -> ());
    raise e);
  let port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let t =
    {
      listener;
      port;
      engine;
      policy;
      qlog;
      slow;
      max_inflight;
      max_line_bytes;
      stopping = Atomic.make false;
      inflight = Atomic.make 0;
      n_served = Atomic.make 0;
      n_shed = Atomic.make 0;
      n_errors = Atomic.make 0;
      n_connections = Atomic.make 0;
      engine_mutex = Mutex.create ();
      conns_mutex = Mutex.create ();
      conns = [];
      workers = [];
      accept_thread = None;
    }
  in
  t.accept_thread <-
    Some (Thread.create (fun () -> accept_loop t ~idle_timeout ~write_timeout) ());
  t

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (* Workers are spawned only by the accept thread, so once it has
     exited this snapshot is complete. *)
  let workers = Mutex.protect t.conns_mutex (fun () -> t.workers) in
  List.iter Thread.join workers

let stop t =
  request_drain t;
  wait t;
  try Unix.close t.listener with Unix.Unix_error _ -> ()

let with_server ?max_inflight ?max_line_bytes ?idle_timeout ?write_timeout
    ?policy ?qlog ?slow_k ~engine ~port f =
  let t =
    start ?max_inflight ?max_line_bytes ?idle_timeout ?write_timeout ?policy
      ?qlog ?slow_k ~engine ~port ()
  in
  Fun.protect ~finally:(fun () -> stop t) (fun () -> f t)
