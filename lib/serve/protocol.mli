(** The [simq serve] line protocol: one request per line in, one
    self-describing JSON line out.

    Requests are newline-framed. A query spec travels {e escaped}
    ({!escape}) so that multi-line text — or any byte sequence — fits
    on one line; the reserved command words [ping], [shutdown] and the
    [profile ] prefix are matched on the raw line before unescaping
    (query-language keywords are case-insensitive, so no legal spec
    collides with the lowercase command words). Responses reuse the
    JSON-lines vocabulary of [simq batch]: an ["event"] tag, the
    outcome string with its mapped exit code, and the rendered answers
    — any JSON-lines tool can aggregate a session transcript.

    Everything here is pure string/JSON manipulation, shared by the
    server ({!Server}), the stress harness ({!Stress}) and the tests;
    no sockets. *)

(** Hard cap on the length of one request line, in bytes. The server
    answers an over-long line with a [usage] error and discards input
    to the next newline, so one runaway client cannot balloon server
    memory. *)
val max_line_bytes : int

(** [escape s] maps backslash, newline, carriage return and tab to
    two-character escapes ([\\], [\n], [\r], [\t]); every other byte —
    including non-ASCII — passes through. [unescape] inverts it;
    a trailing backslash or an unknown escape is an error.
    [unescape (escape s) = Ok s] for every string. *)
val escape : string -> string

val unescape : string -> (string, string) result

type request =
  | Ping  (** liveness probe; answered without touching the engine *)
  | Shutdown
      (** ask the server to drain: stop accepting, finish in-flight
          queries, dump observability state *)
  | Slow
      (** [slow]: fetch the daemon's slow-query exemplar store
          ({!Simq_obs.Slow}) — a usage error when the daemon runs
          without one *)
  | Query of {
      profile : bool;
          (** [profile <spec>]: attach the per-query operator tree
              ({!Simq_obs.Profile}) to the response *)
      spec : string;  (** unescaped query-language text *)
    }

(** [parse_request line] classifies one raw request line. Errors name
    the offending escape; blank lines are the caller's concern. *)
val parse_request : string -> (request, string) result

(** {1 Response lines}

    Each renderer returns one JSON line {e without} the trailing
    newline. [seq] is the per-connection response sequence number, so
    a client can match pipelined requests to responses. *)

(** [ok_line ~seq ~spec ~path ~decision ~answers ~results ~duration_s
    ?profile ()] is the success response: ["event":"simq.serve"],
    outcome ["ok"]/exit [0], the executed access path and admission
    decision when known, the answer count, the rendered answer rows
    and the server-side execution time. *)
val ok_line :
  seq:int ->
  spec:string ->
  path:string option ->
  decision:string option ->
  answers:int ->
  results:Simq_obs.Json.t ->
  duration_s:float ->
  ?profile:Simq_obs.Json.t ->
  unit ->
  string

(** [error_line ~seq ?spec ~outcome ~exit_code ~message ()] is the
    failure response, carrying the {!Simq_cli} outcome string and exit
    code ([usage]/1, [file]/2, the typed fault kind/4, [rejected]/5)
    and a one-line human-readable message. *)
val error_line :
  seq:int ->
  ?spec:string ->
  outcome:string ->
  exit_code:int ->
  message:string ->
  unit ->
  string

(** [pong_line ~seq] answers {!Ping} (["event":"simq.serve.pong"]). *)
val pong_line : seq:int -> string

(** [slow_line ~seq store] answers {!Slow}
    (["event":"simq.serve.slow"]) with the rendered exemplar store
    ({!Simq_obs.Slow.to_json}) under the ["slow"] member. *)
val slow_line : seq:int -> Simq_obs.Json.t -> string

(** [shutdown_line ~seq] acknowledges {!Shutdown}
    (["event":"simq.serve.shutdown"]) before the connection closes. *)
val shutdown_line : seq:int -> string
