(** The resident query engine behind [simq serve] and [simq batch]:
    one loaded relation, one built k-index, one lazily collected
    planner histogram and one admission policy, executing
    query-language text against them over and over without paying the
    load/build cost per query.

    The execution semantics are exactly those of the one-shot
    [simq query] paths: a plain engine (no budget, no admission)
    answers through the k-index directly; a {e checked} engine (a
    budget, an admission policy, or both) routes RANGE queries through
    {!Simq_tsindex.Planner.range_resilient} (admission vetting, then
    budgeted execution with scan degradation), NEAREST queries through
    {!Simq_tsindex.Kindex.nearest_checked} (same vetting, exact
    linear-selection degradation), and scan PAIRS through
    {!Simq_tsindex.Join.scan_checked}. Both paths of every degradation
    are exact, so for every query a checked engine {e admits or
    degrades}, the answers are bit-identical to the plain engine's —
    the invariant the stress harness verifies against a served
    daemon.

    A {e sharded} engine ([?shards]) additionally partitions the
    relation through {!Simq_shard} and routes RANGE/NEAREST through
    the scatter-gather executor (catalogue pruning, per-shard
    admission and degradation, deterministic merge); every sharded
    execution is bit-identical to the corresponding unsharded one, so
    the stress oracle needs no sharding awareness. Side-constrained
    ranges under a budget are the one exception routed to the
    monolithic checked traversal — the per-shard degradation scan does
    not model mean/std constraints — and both executions are exact. *)

type t

(** [create ?noise ?budget ?admission ?shards index] wraps a built
    index. [noise] perturbs every resolved query series as [simq query
    --noise] does (default [0.]); [budget] bounds each executed query;
    [admission] vets each RANGE/NEAREST query against the cost model
    before execution; [shards] partitions the relation into that many
    shards and answers RANGE/NEAREST by scatter-gather. The planner
    histogram backing admission is collected from a fixed seed on
    first use, so engine decisions are deterministic for a given
    registry state.

    [?sketch] builds a {!Simq_sketch} table (per shard on a sharded
    engine) and threads the funnel into every RANGE/NEAREST execution;
    without [?approx] the answers stay bit-identical to an unsketched
    engine's. [?approx a] (finite, [0 <= a < 1], else
    [Invalid_argument] here) makes RANGE queries approximate —
    sketch-dismissal at the [(1 - a) epsilon] cutoff, only true
    answers returned — and progressive: a budgeted engine whose budget
    dies inside exact verification returns the sound subset it
    verified instead of degrading to the scan. *)
val create :
  ?noise:float ->
  ?budget:Simq_fault.Budget.t ->
  ?admission:Simq_admission.t ->
  ?shards:int ->
  ?sketch:Simq_sketch.config ->
  ?approx:float ->
  Simq_tsindex.Kindex.t ->
  t

val index : t -> Simq_tsindex.Kindex.t

(** The shard set behind a sharded engine ([None] on plain ones). *)
val sharded : t -> Simq_shard.t option

(** Shared degradation/rejection counters across every RANGE routed
    through the resilient planner by this engine. *)
val counters : t -> Simq_tsindex.Planner.counters

(** [digest text] is the stable 12-hex-character query identity used
    by the query log and the batch/serve response lines. *)
val digest : string -> string

(** [resolve_query_series dataset spec ~name ~noise] resolves the
    [sN] query-name convention against the data set: entry [N]'s
    series, perturbed by [noise] when positive (fixed PRNG seed, so
    reruns see the same perturbation), expanded first when [spec] is
    the time warp. Unknown or out-of-range names are [Usage]
    errors. *)
val resolve_query_series :
  Simq_tsindex.Dataset.t ->
  Simq_tsindex.Spec.t ->
  name:string ->
  noise:float ->
  (Simq_series.Series.t, Simq_cli.error) result

(** What the query log wants to know about an execution, filled in as
    the plan unfolds — meaningful even when {!exec} returns an error
    (a rejected query records its ["reject"] decision here). *)
type note = {
  mutable note_path : string option;  (** access path actually executed *)
  mutable note_decision : string option;
      (** admission decision; on a sharded engine the worst per-shard
          decision (reject > degrade_to_scan > admit) *)
  mutable note_shards : Simq_obs.Qlog.shard_counts option;
      (** scatter-gather accounting, set on sharded executions *)
}

val note : unit -> note

(** A successful execution: the executed path and admission decision
    (as in the {!note}), the answer count, and the rendered answer
    rows — [{id; name; distance}] objects for RANGE/NEAREST, [{a; b}]
    name pairs for PAIRS — ready for a response or batch line. *)
type outcome = {
  path : string option;
  decision : string option;
  answers : int;
  results : Simq_obs.Json.t;
}

(** [exec ?profile ?pairs_pool ?note t text] parses and executes one
    query. [pairs_pool] feeds the PAIRS scan methods' domain pool
    (batch passes {!Simq_parallel.Pool.sequential} so a batched query
    stays whole on its executing domain). Parse failures and argument
    violations are [Usage] errors; budget exhaustion, unretried faults
    and admission rejections are typed [Fault] errors — [exec] never
    raises on query-dependent input. *)
val exec :
  ?profile:Simq_obs.Profile.t ->
  ?pairs_pool:Simq_parallel.Pool.t ->
  ?note:note ->
  t ->
  string ->
  (outcome, Simq_cli.error) result
