module Budget = Simq_fault.Budget
module Dataset = Simq_tsindex.Dataset
module Kindex = Simq_tsindex.Kindex
module Planner = Simq_tsindex.Planner
module Join = Simq_tsindex.Join
module Ql = Simq_tsindex.Ql
module Spec = Simq_tsindex.Spec
module Qlog = Simq_obs.Qlog
module J = Simq_obs.Json

let ( let* ) = Result.bind
let usage msg = Error (Simq_cli.Usage msg)

type t = {
  index : Kindex.t;
  dataset : Dataset.t;
  noise : float;
  budget : Budget.t option;
  admission : Simq_admission.t option;
  sharded : Simq_shard.t option;
  sketch : Simq_sketch.t option;  (* the monolithic paths' sketch table *)
  approx : float option;
  anytime : bool;
  mutable stats : Planner.stats option;
  counters : Planner.counters;
}

let create ?(noise = 0.) ?budget ?admission ?shards ?sketch ?approx index =
  (match approx with
  | Some a when (not (Float.is_finite a)) || a < 0. || a >= 1. ->
    invalid_arg "Engine.create: approx must be in [0, 1)"
  | _ -> ());
  {
    index;
    dataset = Kindex.dataset index;
    noise;
    budget;
    admission;
    sharded =
      Option.map
        (fun k -> Simq_shard.create ?sketch ~shards:k (Kindex.dataset index))
        shards;
    sketch =
      Option.map
        (fun config -> Simq_sketch.create ~config (Kindex.dataset index))
        sketch;
    approx;
    (* Approximate mode is progressive: a budgeted engine returns the
       sound subset it verified when the budget dies mid-verification
       instead of degrading to the scan. *)
    anytime = Option.is_some approx;
    stats = None;
    counters = Planner.create_counters ();
  }

let index t = t.index
let sharded t = t.sharded
let counters t = t.counters

(* A budget or an admission policy routes queries through the checked
   paths; a plain engine is the oracle the stress harness compares
   against. *)
let checked t = Option.is_some t.budget || Option.is_some t.admission

(* The monolithic paths' funnel and NN-bound builders; sharded
   executions carry their own per-shard tables inside {!Simq_shard}. *)
let funnel t spec =
  Option.map (fun sk query -> Simq_sketch.funnel sk ~spec ~query) t.sketch

let nn_bound t spec =
  Option.map (fun sk query -> Simq_sketch.nn_bound sk ~spec ~query) t.sketch

let sketch_levels t spec =
  if Option.is_some t.sketch then Simq_sketch.spec_levels spec else 0

let stats t =
  match t.stats with
  | Some s -> s
  | None ->
    let s = Planner.collect t.dataset in
    t.stats <- Some s;
    s

let digest text = String.sub (Digest.to_hex (Digest.string text)) 0 12

let resolve_query_series dataset spec ~name ~noise =
  let n = Dataset.series_length dataset in
  let* id =
    if String.length name >= 2 && name.[0] = 's' then
      match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
      | Some id when id >= 0 && id < Dataset.cardinality dataset -> Ok id
      | Some id -> usage (Printf.sprintf "series id %d out of range" id)
      | None -> usage (Printf.sprintf "bad query name %S (expected sN)" name)
    else usage (Printf.sprintf "bad query name %S (expected sN)" name)
  in
  let base = (Dataset.get dataset id).Dataset.series in
  let series =
    if noise > 0. then
      Simq_workload.Queries.perturb (Random.State.make [| 17 |]) base
        ~amount:noise
    else base
  in
  match spec with
  | Spec.Warp m -> Ok (Simq_series.Warp.expand m series)
  | _ ->
    assert (Spec.output_length spec ~n = n);
    Ok series

type note = {
  mutable note_path : string option;
  mutable note_decision : string option;
  mutable note_shards : Qlog.shard_counts option;
}

let note () = { note_path = None; note_decision = None; note_shards = None }

let note_report note (r : Simq_shard.report) =
  note.note_shards <-
    Some
      {
        Qlog.fanout = r.Simq_shard.fanout;
        pruned = r.Simq_shard.pruned;
        degraded = r.Simq_shard.degraded;
      }

(* Per-shard admission decisions fold into one logged decision:
   reject > degrade_to_scan > admit (a query with one degraded and
   three admitted shards logs as degraded). *)
let decision_rank = function
  | Simq_admission.Admit -> 0
  | Simq_admission.Degrade_to_scan -> 1
  | Simq_admission.Reject _ -> 2

let note_shard_decision note =
  let worst = ref None in
  fun d ->
    match !worst with
    | Some w when decision_rank w >= decision_rank d -> ()
    | _ ->
      worst := Some d;
      note.note_decision <- Some (Simq_admission.decision_name d)

type outcome = {
  path : string option;
  decision : string option;
  answers : int;
  results : J.t;
}

let answers_json answers =
  J.Arr
    (List.map
       (fun ((e : Dataset.entry), d) ->
         J.Obj
           [
             ("id", J.Num (float_of_int e.Dataset.id));
             ("name", J.Str e.Dataset.name);
             ("distance", J.Num d);
           ])
       answers)

let pairs_json dataset pairs =
  J.Arr
    (List.map
       (fun (i, j) ->
         let a = Dataset.get dataset i and b = Dataset.get dataset j in
         J.Obj [ ("a", J.Str a.Dataset.name); ("b", J.Str b.Dataset.name) ])
       pairs)

let finish note ~answers ~results =
  Ok
    {
      path = note.note_path;
      decision = note.note_decision;
      answers;
      results;
    }

let fault e = Error (Simq_cli.Fault e)

let exec_parsed ?profile ?pairs_pool ~note t text =
  let* q = Result.map_error (fun m -> Simq_cli.Usage m) (Ql.parse text) in
  match q with
  | Ql.Range { spec; query; epsilon; mean_window; std_band; _ }
    when (not (checked t)) || Option.is_some mean_window
         || Option.is_some std_band ->
    (* The direct k-index path: a plain engine always, and the
       side-constrained ranges the planner paths do not model — a
       budget still applies through the checked traversal. *)
    let* series =
      resolve_query_series t.dataset spec ~name:query ~noise:t.noise
    in
    (match (t.sharded, t.budget) with
    | Some sharded, None ->
      (* Scatter-gather, unbudgeted: side constraints participate in
         both the catalogue probe and the per-shard traversals. *)
      note.note_path <- Some "shard";
      let r =
        Simq_shard.range ~spec ?mean_window ?std_band ?approx:t.approx
          ?profile sharded ~query:series ~epsilon
      in
      note_report note r.Simq_shard.report;
      finish note
        ~answers:(List.length r.Simq_shard.answers)
        ~results:(answers_json r.Simq_shard.answers)
    | _ ->
      (* Side-constrained ranges under a budget run the monolithic
         checked traversal even on a sharded engine: the per-shard
         degradation scan does not model mean/std constraints. Both
         executions are exact, so the answers are identical. *)
      note.note_path <- Some "index";
      let* (r : Kindex.range_result) =
        match t.budget with
        | None ->
          Ok
            (Kindex.range ~spec ?mean_window ?std_band
               ?sketch:(funnel t spec) ?approx:t.approx ?profile t.index
               ~query:series ~epsilon)
        | Some budget ->
          Result.map_error
            (fun e -> Simq_cli.Fault e)
            (Kindex.range_checked ~spec ?mean_window ?std_band ~budget
               ?sketch:(funnel t spec) ?approx:t.approx ~anytime:t.anytime
               ?profile t.index ~query:series ~epsilon)
      in
      finish note
        ~answers:(List.length r.Kindex.answers)
        ~results:(answers_json r.Kindex.answers))
  | Ql.Range { spec; query; epsilon; _ } ->
    let budget = Option.value t.budget ~default:Budget.unlimited in
    let* series =
      resolve_query_series t.dataset spec ~name:query ~noise:t.noise
    in
    (match t.sharded with
    | Some sharded ->
      note.note_path <- Some "shard";
      (match
         Simq_shard.range_checked ~spec ~budget ?admission:t.admission
           ~on_decision:(note_shard_decision note) ?approx:t.approx
           ~anytime:t.anytime ?profile sharded ~query:series ~epsilon
       with
      | Ok r ->
        note_report note r.Simq_shard.report;
        finish note
          ~answers:(List.length r.Simq_shard.answers)
          ~results:(answers_json r.Simq_shard.answers)
      | Error e ->
        if Simq_fault.Error.kind e = "rejected" then
          note.note_decision <- Some "reject";
        fault e)
    | None ->
      let stats = Option.map (fun _ -> stats t) t.admission in
      let outcome =
        Planner.range_resilient ~spec ~budget ~counters:t.counters ?stats
          ?admission:t.admission ?sketch:(funnel t spec)
          ~sketch_levels:(sketch_levels t spec) ?approx:t.approx
          ~anytime:t.anytime ?profile t.index ~query:series ~epsilon
      in
      (match outcome with
      | Ok (r : Planner.resilient_result) ->
        note.note_path <-
          Some (Format.asprintf "%a" Planner.pp_plan r.Planner.executed);
        note.note_decision <-
          Option.map Simq_admission.decision_name r.Planner.admission;
        finish note
          ~answers:(List.length r.Planner.answers)
          ~results:(answers_json r.Planner.answers)
      | Error e ->
        if Simq_fault.Error.kind e = "rejected" then
          note.note_decision <- Some "reject";
        fault e))
  | Ql.Nearest { k; spec; query; _ } when not (checked t) ->
    let* series =
      resolve_query_series t.dataset spec ~name:query ~noise:t.noise
    in
    (match t.sharded with
    | Some sharded ->
      note.note_path <- Some "shard";
      let r = Simq_shard.nearest ~spec ?profile sharded ~query:series ~k in
      note_report note r.Simq_shard.nearest_report;
      finish note
        ~answers:(List.length r.Simq_shard.neighbours)
        ~results:(answers_json r.Simq_shard.neighbours)
    | None ->
      note.note_path <- Some "index";
      let results =
        Kindex.nearest ~spec ?sketch:(nn_bound t spec) ?profile t.index
          ~query:series ~k
      in
      finish note ~answers:(List.length results)
        ~results:(answers_json results))
  | Ql.Nearest { k; spec; query; _ } ->
    let budget = Option.value t.budget ~default:Budget.unlimited in
    let* series =
      resolve_query_series t.dataset spec ~name:query ~noise:t.noise
    in
    (match t.sharded with
    | Some sharded ->
      note.note_path <- Some "shard";
      (match
         Simq_shard.nearest_checked ~spec ~budget ?admission:t.admission
           ~on_decision:(note_shard_decision note) ?profile sharded
           ~query:series ~k
       with
      | Ok r ->
        note_report note r.Simq_shard.nearest_report;
        finish note
          ~answers:(List.length r.Simq_shard.neighbours)
          ~results:(answers_json r.Simq_shard.neighbours)
      | Error e ->
        if Simq_fault.Error.kind e = "rejected" then
          note.note_decision <- Some "reject";
        fault e)
    | None ->
      note.note_path <- Some "index";
      let outcome =
        Kindex.nearest_checked ~spec ~budget ?admission:t.admission
          ?sketch:(nn_bound t spec)
          ~on_decision:(fun d ->
            note.note_decision <- Some (Simq_admission.decision_name d);
            match d with
            | Simq_admission.Degrade_to_scan -> note.note_path <- Some "scan"
            | Simq_admission.Admit | Simq_admission.Reject _ -> ())
          ?profile t.index ~query:series ~k
      in
      (match outcome with
      | Ok results ->
        finish note ~answers:(List.length results)
          ~results:(answers_json results)
      | Error e -> fault e))
  | Ql.Pairs { spec; epsilon; method_; _ } -> (
    note.note_path <-
      Some (match method_ with Ql.Index -> "index" | _ -> "scan");
    match (t.budget, method_) with
    | Some _, Ql.Index ->
      usage
        "budgets (--deadline/--max-*) apply to RANGE, NEAREST and PAIRS \
         scan queries"
    | _, (Ql.Scan_full | Ql.Scan_early) when checked t -> (
      (* Budgeted or vetted scan joins: admission (when the engine has
         a policy) decides from the catalogue pair count before any
         series is materialised. *)
      let budget = Option.value t.budget ~default:Budget.unlimited in
      match
        Join.scan_checked ?pool:pairs_pool ~spec
          ~abandon:(method_ = Ql.Scan_early) ~budget ?admission:t.admission
          ~on_decision:(fun d ->
            note.note_decision <- Some (Simq_admission.decision_name d))
          ?profile t.index ~epsilon
      with
      | Ok (r : Join.result) ->
        finish note
          ~answers:(List.length r.Join.pairs)
          ~results:(pairs_json t.dataset r.Join.pairs)
      | Error e ->
        if Simq_fault.Error.kind e = "rejected" then
          note.note_decision <- Some "reject";
        fault e)
    | _, _ ->
      let (r : Join.result) =
        match method_ with
        | Ql.Scan_full ->
          Join.scan_full ?pool:pairs_pool ~spec ?profile t.index ~epsilon
        | Ql.Scan_early ->
          Join.scan_early_abandon ?pool:pairs_pool ~spec ?profile t.index
            ~epsilon
        | Ql.Index -> Join.index_transformed ~spec ?profile t.index ~epsilon
      in
      finish note
        ~answers:(List.length r.Join.pairs)
        ~results:(pairs_json t.dataset r.Join.pairs))

let exec ?profile ?pairs_pool ?note:n t text =
  let note = match n with Some n -> n | None -> note () in
  (* The one central stamping point: a profile built inside a request
     scope carries the request id on its JSON root, correlating it
     with the query's qlog line and trace spans. *)
  (match (profile, Simq_obs.Trace.current_request ()) with
  | Some p, id when id <> 0 -> Simq_obs.Profile.set_trace p id
  | _ -> ());
  match exec_parsed ?profile ?pairs_pool ~note t text with
  | r -> r
  | exception Invalid_argument msg -> usage msg
