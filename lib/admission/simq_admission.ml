module Metrics = Simq_obs.Metrics
module Otrace = Simq_obs.Trace
module Budget = Simq_fault.Budget
module Error = Simq_fault.Error

type workload = {
  cardinality : int;
  pages : int;
  tree_size : int;
  tree_height : int;
  selectivity : float;
  sketch_levels : int;
}

type path = Index_path | Scan_path

type estimate = {
  scan_page_reads : int;
  scan_comparisons : int;
  index_node_accesses : int;
  index_comparisons : int;
  est_query_seconds : float option;
}

type reject = {
  resource : Error.resource;
  estimated : int;
  limit : int;
}

type decision = Admit | Degrade_to_scan | Reject of reject

type t = {
  headroom : float;
  calibrate : bool;
  g_estimated : Metrics.gauge;
  g_actual : Metrics.gauge;
  h_timer : Metrics.histogram;
  m_admit : Metrics.counter;
  m_degrade : Metrics.counter;
  m_reject : Metrics.counter;
}

let create ?registry ?(headroom = 1.) ?(calibrate = true) () =
  if not (headroom > 0.) then
    invalid_arg "Simq_admission.create: headroom must be > 0";
  let decision d =
    Metrics.counter ?registry
      ~help:"Admission decisions, by outcome"
      ~labels:[ ("decision", d) ]
      "simq_admission_decisions_total"
  in
  {
    headroom;
    calibrate;
    (* Retrieve-or-register: the planner and timer own these when they
       are linked in; an isolated registry simply reads zeroes. *)
    g_estimated = Metrics.gauge ?registry "simq_planner_estimated_selectivity";
    g_actual = Metrics.gauge ?registry "simq_planner_actual_selectivity";
    h_timer = Metrics.histogram ?registry "simq_timer_seconds";
    m_admit = decision "admit";
    m_degrade = decision "degrade_to_scan";
    m_reject = decision "reject";
  }

let default = create ()

(* The planner's bias observed so far: actual / estimated selectivity
   of the last planned query, clamped to [1/4, 4] so one outlier does
   not swing every later decision. 1 when either gauge is unset. *)
let calibration t =
  if not t.calibrate then 1.
  else begin
    let est = Metrics.gauge_value t.g_estimated in
    let act = Metrics.gauge_value t.g_actual in
    if est > 0. && act > 0. then Float.min 4. (Float.max 0.25 (act /. est))
    else 1.
  end

(* A conservative per-query wall-clock prediction: the p95 bucket
   upper bound of [simq_timer_seconds], once at least 8 timed queries
   have been observed. Integer bucket counts and fixed bucket bounds,
   so the prediction is deterministic for a given registry snapshot. *)
let predicted_seconds t =
  let buckets = Metrics.histogram_buckets t.h_timer in
  let count = Array.fold_left ( + ) 0 buckets in
  if count < 8 then None
  else begin
    let target = count - (count / 20) in
    let rec go i cumulative =
      if i >= Array.length buckets then
        Metrics.bucket_upper (Array.length buckets - 1)
      else begin
        let cumulative = cumulative + buckets.(i) in
        if cumulative >= target then Metrics.bucket_upper i
        else go (i + 1) cumulative
      end
    in
    Some (go 0 0)
  end

let ceil_pos v = if v <= 0. then 0 else int_of_float (Float.ceil v)

let estimate t w =
  let sel =
    Float.min 1. (Float.max 0. w.selectivity *. calibration t)
  in
  {
    (* The scan compares every series exactly once, and the budget
       counts page reads as logical buffer-pool touches (hits and
       misses alike, one per entry) — so both scan costs equal the
       cardinality: catalogue facts, not estimates. *)
    scan_page_reads = w.cardinality;
    scan_comparisons = w.cardinality;
    (* Index heuristics: a root-to-leaf descent plus a visited-node
       share and a candidate set proportional to the calibrated
       selectivity (feature-space candidates exceed true answers, hence
       the factor 2 margin). *)
    index_node_accesses =
      w.tree_height + ceil_pos (sel *. float_of_int w.tree_size /. 4.);
    (* Each sketch-funnel level is modelled as halving the candidates
       that reach the exact postfilter: bound evaluations read no page
       and are not charged as comparisons, so the funnel only lowers
       the comparison estimate (capped at four levels so a bogus count
       cannot zero it out). *)
    index_comparisons =
      (let discount = 1 lsl Int.min 4 (Int.max 0 w.sketch_levels) in
       ceil_pos (2. *. sel *. float_of_int w.cardinality /. float_of_int discount));
    est_query_seconds = predicted_seconds t;
  }

let ms_of_seconds s = ceil_pos (s *. 1000.)

(* The first budget limit a path's estimate crosses, in a fixed
   resource order, so the rejection reason is deterministic. *)
let violation t estimated limit_opt resource =
  match limit_opt with
  | Some limit when float_of_int estimated > t.headroom *. float_of_int limit
    ->
    Some { resource; estimated; limit }
  | _ -> None

let first_violation candidates =
  List.fold_left
    (fun acc c -> match acc with Some _ -> acc | None -> c)
    None candidates

let decide_pure t w ~prefer ~budget =
  if Budget.is_unlimited budget then Admit
  else begin
    let e = estimate t w in
    let deadline_reject =
      match (Budget.deadline budget, e.est_query_seconds) with
      | Some deadline, Some predicted
        when predicted > t.headroom *. deadline ->
        Some
          {
            resource = Error.Wall_clock;
            estimated = ms_of_seconds predicted;
            limit = ms_of_seconds deadline;
          }
      | _ -> None
    in
    let scan_reject =
      first_violation
        [
          violation t e.scan_page_reads
            (Budget.limit budget Error.Page_reads)
            Error.Page_reads;
          violation t e.scan_comparisons
            (Budget.limit budget Error.Comparisons)
            Error.Comparisons;
        ]
    in
    let index_reject =
      first_violation
        [
          violation t e.index_node_accesses
            (Budget.limit budget Error.Node_accesses)
            Error.Node_accesses;
          violation t e.index_comparisons
            (Budget.limit budget Error.Comparisons)
            Error.Comparisons;
        ]
    in
    match deadline_reject with
    | Some r -> Reject r
    | None -> (
      match prefer with
      | Scan_path -> (
        match scan_reject with None -> Admit | Some r -> Reject r)
      | Index_path -> (
        match index_reject with
        | None -> Admit
        | Some _ -> (
          match scan_reject with
          | None -> Degrade_to_scan
          | Some r -> Reject r)))
  end

let decide t w ~prefer ~budget =
  Otrace.with_span "admit" @@ fun () ->
  let decision = decide_pure t w ~prefer ~budget in
  Metrics.incr
    (match decision with
    | Admit -> t.m_admit
    | Degrade_to_scan -> t.m_degrade
    | Reject _ -> t.m_reject);
  decision

(* The pairwise join costs [n (n - 1) / 2] comparisons — a catalogue
   fact, like the scan costs — and reads no page (it runs over the
   resident spectra), so only the comparison limit and the deadline
   prediction can refuse it, and there is no cheaper path to degrade
   to. *)
let decide_pairs t ~comparisons ~budget =
  Otrace.with_span "admit" @@ fun () ->
  let decision =
    if Budget.is_unlimited budget then Admit
    else begin
      let deadline_reject =
        match (Budget.deadline budget, predicted_seconds t) with
        | Some deadline, Some predicted
          when predicted > t.headroom *. deadline ->
          Some
            {
              resource = Error.Wall_clock;
              estimated = ms_of_seconds predicted;
              limit = ms_of_seconds deadline;
            }
        | _ -> None
      in
      match deadline_reject with
      | Some r -> Reject r
      | None -> (
        match
          violation t comparisons
            (Budget.limit budget Error.Comparisons)
            Error.Comparisons
        with
        | Some r -> Reject r
        | None -> Admit)
    end
  in
  Metrics.incr
    (match decision with
    | Admit -> t.m_admit
    | Degrade_to_scan -> t.m_degrade
    | Reject _ -> t.m_reject);
  decision

let shed t ~inflight ~limit =
  Otrace.with_span "admit" @@ fun () ->
  Metrics.incr t.m_reject;
  { resource = Error.In_flight; estimated = inflight; limit }

let error_of_reject { resource; estimated; limit } =
  Error.Rejected { resource; estimated; limit }

let decision_name = function
  | Admit -> "admit"
  | Degrade_to_scan -> "degrade_to_scan"
  | Reject _ -> "reject"

let pp_decision ppf = function
  | Admit -> Format.pp_print_string ppf "admit"
  | Degrade_to_scan -> Format.pp_print_string ppf "degrade_to_scan"
  | Reject { resource; estimated; limit } ->
    Format.fprintf ppf "reject (estimated %d %s > limit %d)" estimated
      (Error.resource_name resource)
      limit
