(** Cost-based admission control: reject over-budget queries {e before}
    execution.

    [JMM95] bounds every similarity predicate by a cost; the fault
    layer ([Simq_fault.Budget]) enforces that bound at runtime, failing
    a query {e mid-flight} once a limit is crossed. Admission control
    closes the loop the ROADMAP left open: combine the planner's
    selectivity histogram with the live metrics registry
    ([Simq_obs.Metrics]) and the query's budget into a pre-execution
    {!decision} — the query is admitted, redirected to the cheaper
    access path, or refused outright with a typed reason, before a
    single page is touched.

    The cost model:
    - the {e scan} path costs one comparison per series and one logical
      page read per series ([Simq_fault.Budget] counts buffer-pool
      touches, hits and misses alike) — both known from the catalogue,
      so scan-path decisions are exact;
    - the {e index} path costs are predicted from the planner's
      histogram selectivity, calibrated by the live
      [simq_planner_estimated_selectivity] /
      [simq_planner_actual_selectivity] gauges (when the planner has
      been systematically under- or over-estimating, the ratio corrects
      the next estimate);
    - the wall-clock deadline is compared against a conservative
      per-query time predicted from the [simq_timer_seconds] histogram
      (its p95 bucket upper bound, once enough queries have been
      observed).

    Decisions are a pure function of the workload description, the
    budget, and a registry snapshot: the same query against the same
    registry state yields the same decision at every
    [SIMQ_DOMAINS]/[--jobs] setting, and an {!Admit} never changes
    what the executed query returns. Every decision is counted in the
    [simq_admission_decisions_total] metric family (labelled by
    decision) and wrapped in an ["admit"] trace span. *)

(** What the optimiser knows about a query before running it — all
    catalogue metadata and one histogram estimate; producing it reads
    no page. *)
type workload = {
  cardinality : int;  (** series in the relation *)
  pages : int;  (** logical pages of the backing relation *)
  tree_size : int;  (** entries indexed by the k-index *)
  tree_height : int;  (** R*-tree levels (1 = root only) *)
  selectivity : float;
      (** the planner histogram's estimated answer fraction in [0, 1]
          ([Planner.selectivity]); use [1.] when no statistics are
          available — the scan-path costs do not depend on it *)
  sketch_levels : int;
      (** sketch-funnel levels ([Simq_sketch]) the index path will run
          in front of its exact postfilter; [0] when no funnel is
          installed. Each level is modelled as halving the candidates
          that survive to the exact comparisons (capped at four
          levels), so a funnel lowers only [index_comparisons] — bound
          evaluations read no page and are never charged. *)
}

(** The access path the planner intends to run. *)
type path = Index_path | Scan_path

(** The cost model's per-path predictions for one query. *)
type estimate = {
  scan_page_reads : int;
      (** exact: one logical buffer-pool touch per series *)
  scan_comparisons : int;  (** exact: every series, once *)
  index_node_accesses : int;  (** heuristic, from calibrated selectivity *)
  index_comparisons : int;  (** heuristic: predicted candidate count *)
  est_query_seconds : float option;
      (** p95-style per-query seconds from [simq_timer_seconds];
          [None] until enough observations exist *)
}

type reject = {
  resource : Simq_fault.Error.resource;
  estimated : int;  (** predicted cost (milliseconds for [Wall_clock]) *)
  limit : int;  (** the budget limit it exceeds *)
}

type decision =
  | Admit  (** run the planned path unchanged *)
  | Degrade_to_scan
      (** the index path cannot finish within the budget but the
          sequential scan can: run the scan instead *)
  | Reject of reject  (** no path fits: refuse before execution *)

(** Admission policy: where to read live metrics from and how eagerly
    to admit. *)
type t

(** [create ()] is the default policy against [Simq_obs.Metrics.default].
    [headroom] scales every limit before comparison (default [1.]:
    admit while the estimate fits the limit exactly; [0.5] admits only
    queries predicted to use at most half the budget). [calibrate]
    (default [true]) applies the live estimated-vs-actual selectivity
    correction. Raises [Invalid_argument] when [headroom <= 0]. *)
val create :
  ?registry:Simq_obs.Metrics.registry ->
  ?headroom:float ->
  ?calibrate:bool ->
  unit ->
  t

val default : t

(** [estimate t w] is the cost model's prediction for [w], reading the
    calibration gauges and timer histogram from [t]'s registry. *)
val estimate : t -> workload -> estimate

(** [decide t w ~prefer ~budget] admits, degrades or rejects the query
    before execution. An unlimited budget always admits. With
    [prefer = Scan_path] the only outcomes are [Admit] and [Reject]
    (there is nothing cheaper to degrade to). Counted in
    [simq_admission_decisions_total{decision="..."}] and spanned as
    ["admit"]. *)
val decide : t -> workload -> prefer:path -> budget:Simq_fault.Budget.t -> decision

(** [decide_pairs t ~comparisons ~budget] vets a pairwise scan join
    before execution. The join performs exactly [comparisons] distance
    comparisons ([n (n - 1) / 2] for a self-join — a catalogue fact,
    not an estimate) and reads no page through the buffer pool, so
    only the comparison limit and the deadline prediction can refuse
    it; the outcomes are [Admit] and [Reject] (the scan join {e is}
    the bottom path — nothing cheaper to degrade to). An unlimited
    budget always admits. Counted in
    [simq_admission_decisions_total{decision="..."}] and spanned as
    ["admit"], like every other decision. *)
val decide_pairs :
  t -> comparisons:int -> budget:Simq_fault.Budget.t -> decision

(** [shed t ~inflight ~limit] is the load-shedding rejection of a
    long-running server whose in-flight request cap is full: a
    {!reject} on the [In_flight] pseudo-resource ([inflight] requests
    against a cap of [limit]), counted in
    [simq_admission_decisions_total{decision="reject"}] like any other
    refusal and spanned as ["admit"]. The caller turns it into the
    typed error with {!error_of_reject} — before any page is read. *)
val shed : t -> inflight:int -> limit:int -> reject

(** [error_of_reject r] is the typed error a rejected query returns
    ([Simq_fault.Error.Rejected]). *)
val error_of_reject : reject -> Simq_fault.Error.t

(** ["admit"], ["degrade_to_scan"] or ["reject"] — the decision label
    used in the metric family. *)
val decision_name : decision -> string

val pp_decision : Format.formatter -> decision -> unit
